# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench perf perf-check figures faults serve result-race examples clean

all: build vet test

build:
	$(GO) build ./...

# Static diagnostics: Go's own vet, the softcache-analyze invariant suite
# over the codebase itself (see docs/ANALYSIS.md "Codebase analyzers"),
# then softcache-vet over the example DSL program and every built-in
# benchmark (error-severity findings fail).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/softcache-analyze ./...
	$(GO) run ./cmd/softcache-vet -source examples/dsl/stencil.loop
	$(GO) run ./cmd/softcache-vet -workload all -scale test

test:
	$(GO) test ./...

# Quick benchmark pass at test scale (set SOFTCACHE_BENCH_SCALE=paper for
# full-size runs).
bench:
	$(GO) test -bench=. -benchmem ./...

# Full kernel benchmark matrix; refreshes the committed BENCH_kernel.json
# baseline (run on a quiet machine). See docs/PERF.md.
perf:
	$(GO) run ./cmd/softcache-perf -out BENCH_kernel.json

# Quick matrix gated against the committed baseline (what CI runs).
perf-check:
	$(GO) run ./cmd/softcache-perf -quick -baseline BENCH_kernel.json \
		-out /tmp/bench-current.json -max-regress 0.15

# Regenerate every figure of the paper at full scale, refreshing
# EXPERIMENTS.md, results/*.csv and results/figures.html.
figures:
	$(GO) run ./cmd/softcache-bench -all -scale paper -workers 4 \
		-md EXPERIMENTS.md -csv results -html results/figures.html

# Push the fault-injection corpus through the trace -> simulate pipeline:
# every corrupted input must end in an error, never a panic.
faults:
	$(GO) run ./cmd/softcache-bench -faults -workers 4

# Run the simulation service daemon on the default port. See docs/SERVE.md.
serve:
	$(GO) run ./cmd/softcache-served

# The result-cache equivalence layer under the race detector — what CI's
# "result-cache equivalence suite" step runs. See docs/SERVE.md "Result
# cache".
result-race:
	$(GO) test -race -count=1 ./internal/resultcache
	$(GO) test -race -count=1 -run 'Result|Fingerprint|PrefixCollision|RestartedShard' \
		./internal/serve ./internal/cluster ./cmd/softcache-served

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/matvec
	$(GO) run ./examples/spmv_scarce
	$(GO) run ./examples/blocking
	$(GO) run ./examples/prefetch
	$(GO) run ./examples/dsl

clean:
	$(GO) clean ./...
