// prefetch walks through §4.4: the bounce-back cache doubling as a
// prefetch buffer, the spatial hint gating hardware prefetch initiation,
// and the software-prefetch extension (explicit PREFETCH instructions
// inserted by the compiler pass, Mowry-style).
//
//	go run ./examples/prefetch
package main

import (
	"fmt"
	"log"

	"softcache/internal/core"
	"softcache/internal/locality"
	"softcache/internal/tracegen"
	"softcache/internal/workloads"
)

func main() {
	fmt.Println("Prefetching on the matrix-vector multiply (paper fig. 12 + extension)")
	fmt.Println()

	tr, err := workloads.Trace("MV", workloads.ScalePaper, 1)
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string, res core.Result) {
		fmt.Printf("%-34s AMAT %6.3f  miss %6.4f  traffic %5.3f  pf issued %7d  pf hits %7d\n",
			label, res.AMAT(), res.MissRatio(), res.Stats.WordsPerReference(),
			res.Stats.PrefetchesIssued, res.Stats.PrefetchHits)
	}

	for _, c := range []struct {
		label string
		cfg   core.Config
	}{
		{"Standard", core.Standard()},
		{"Standard + unguided prefetch", core.WithPrefetch(core.Standard(), false)},
		{"Soft", core.Soft()},
		{"Soft + hint-guided hw prefetch", core.WithPrefetch(core.Soft(), true)},
	} {
		res, err := core.Simulate(c.cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		show(c.label, res)
	}

	// The software variant: the compiler inserts PREFETCH instructions a
	// few iterations ahead of every qualifying (spatial, streaming)
	// reference. The prefetch distance is the knob: too short and the
	// data is late, too long and the buffer quota evicts it before use.
	fmt.Println()
	fmt.Println("Software prefetching (explicit PREFETCH instructions):")
	for _, d := range []int{1, 2, 4, 8, 16} {
		p, err := workloads.BuildProgram("MV", workloads.ScalePaper)
		if err != nil {
			log.Fatal(err)
		}
		inserted, err := locality.InsertPrefetches(p, d)
		if err != nil {
			log.Fatal(err)
		}
		pfTrace, err := tracegen.Generate(p, tracegen.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Simulate(core.Soft(), pfTrace)
		if err != nil {
			log.Fatal(err)
		}
		show(fmt.Sprintf("Soft + sw prefetch d=%-2d (%d sites)", d, inserted), res)
	}
	fmt.Println()
	fmt.Println("The hint-guided hardware scheme needs no new instructions; the")
	fmt.Println("software scheme buys a little more at a well-chosen distance and")
	fmt.Println("decays gracefully when the distance overruns the buffer quota.")
}
