// spmv_scarce reproduces the paper's §4.1 argument: sparse codes have
// *scarce* locality — each X element is reused only nnz-per-row times, at
// randomized distances — and no compiler analysis applies, so user
// directives carry the tags. Avoiding pollution by the matrix and index
// streams is what makes that scarce locality exploitable.
//
// The example builds the same CSR kernel three ways — untagged, with the
// paper's directives, and with deliberately inverted directives — and shows
// that only the correct directives help (and that wrong ones are the case
// software-assisted caches must stay safe under).
//
//	go run ./examples/spmv_scarce
package main

import (
	"fmt"
	"log"

	"softcache/internal/core"
	"softcache/internal/loopir"
	"softcache/internal/timing"
	"softcache/internal/tracegen"
)

const (
	n         = 1200
	nnzPerRow = 30
)

// buildSpMV constructs the §4.1 CSR loop. tagMode selects how the
// references are tagged: "none" (no directives — nothing is analysable),
// "paper" (stream arrays spatial-only, X temporal), or "inverted"
// (deliberately wrong: streams temporal, X spatial).
func buildSpMV(tagMode string) (*loopir.Program, error) {
	rng := timing.NewRNG(0x5eed_5b3c)
	rowPtr := make([]int, n+1)
	var cols []int
	for i := 0; i < n; i++ {
		rowPtr[i] = len(cols)
		nnz := 1 + rng.Intn(2*nnzPerRow-1)
		for k := 0; k < nnz; k++ {
			cols = append(cols, rng.Intn(n))
		}
	}
	rowPtr[n] = len(cols)

	p := loopir.NewProgram("SpMV-" + tagMode)
	p.DeclareArray("A", len(cols))
	p.DeclareArray("X", n)
	p.DeclareArray("Y", n)
	p.DeclareIndexArray("Index", cols)
	p.DeclareIndexArray("D", rowPtr)

	var yT, dT, idxT, aT, xT loopir.Tags
	switch tagMode {
	case "none":
		// Everything untagged: what a compiler without sparse support
		// and without user directives produces.
	case "paper":
		yT = loopir.Tags{Temporal: true, Spatial: true}
		dT = loopir.Tags{Spatial: true}
		idxT = loopir.Tags{Spatial: true}
		aT = loopir.Tags{Spatial: true}
		xT = loopir.Tags{Temporal: true}
	case "inverted":
		idxT = loopir.Tags{Temporal: true}
		aT = loopir.Tags{Temporal: true}
		xT = loopir.Tags{Spatial: true}
	default:
		return nil, fmt.Errorf("unknown tag mode %q", tagMode)
	}

	j1, j2 := loopir.V("j1"), loopir.V("j2")
	p.Add(
		loopir.Do("j1", loopir.C(0), loopir.C(n-1),
			loopir.Read("Y", j1).WithTags(yT.Temporal, yT.Spatial),
			loopir.Read("D", j1).WithTags(dT.Temporal, dT.Spatial),
			loopir.Do("j2",
				loopir.Load("D", j1),
				loopir.Plus(loopir.Load("D", loopir.Plus(j1, 1)), -1),
				loopir.Read("Index", j2).WithTags(idxT.Temporal, idxT.Spatial),
				loopir.Read("A", j2).WithTags(aT.Temporal, aT.Spatial),
				loopir.Read("X", loopir.Load("Index", j2)).WithTags(xT.Temporal, xT.Spatial),
			),
			loopir.Store("Y", j1).WithTags(yT.Temporal, yT.Spatial),
		),
	)
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

func main() {
	fmt.Println("Sparse matrix-vector multiply: X is reused ~30x per element at")
	fmt.Println("randomised distances; A and Index stream by and pollute the cache.")
	fmt.Println()
	fmt.Printf("%-22s %8s %12s %10s\n", "tagging", "AMAT", "miss ratio", "traffic")
	for _, mode := range []string{"none", "paper", "inverted"} {
		p, err := buildSpMV(mode)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := tracegen.Generate(p, tracegen.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Simulate(core.Soft(), tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8.3f %12.4f %10.3f\n",
			mode, res.AMAT(), res.MissRatio(), res.Stats.WordsPerReference())
	}
	fmt.Println()
	fmt.Println("\"none\" degenerates to a plain cache+victim pair; \"paper\" exploits")
	fmt.Println("the scarce locality; \"inverted\" shows the design degrades gently")
	fmt.Println("rather than catastrophically under wrong directives.")
}
