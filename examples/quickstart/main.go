// Quickstart: build a loop nest, let the analyser tag it, generate the
// trace, and compare the paper's baseline cache against the software-
// assisted design.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"softcache/internal/core"
	"softcache/internal/locality"
	"softcache/internal/loopir"
	"softcache/internal/tracegen"
)

func main() {
	// A dense matrix-vector multiply: the paper's §2.2 motivating loop.
	// A streams (spatial locality only), X is reused on every outer
	// iteration (temporal), Y is accumulated (both).
	const n = 768
	p := loopir.NewProgram("quickstart-mv")
	p.DeclareArray("A", n, n)
	p.DeclareArray("X", n)
	p.DeclareArray("Y", n)
	p.Add(
		loopir.Do("j1", loopir.C(0), loopir.C(n-1),
			loopir.Read("Y", loopir.V("j1")),
			loopir.Do("j2", loopir.C(0), loopir.C(n-1),
				loopir.Read("A", loopir.V("j2"), loopir.V("j1")),
				loopir.Read("X", loopir.V("j2")),
			),
			loopir.Store("Y", loopir.V("j1")),
		),
	)
	if err := p.Finalize(); err != nil {
		log.Fatal(err)
	}

	// The compiler side: §2.3's elementary subscript analysis derives one
	// temporal and one spatial bit per reference site.
	tags, err := locality.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.StringTagged(map[int]loopir.Tags(tags)))

	// The trace: addresses + tags + issue gaps, deterministic per seed.
	tr, err := tracegen.Generate(p, tracegen.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d references\n\n", tr.Len())

	// The hardware side: same trace, two cache designs.
	for _, c := range []struct {
		name string
		cfg  core.Config
	}{
		{"Standard (8K direct-mapped, 32B lines)", core.Standard()},
		{"Soft (64B virtual lines + 256B bounce-back)", core.Soft()},
	} {
		res, err := core.Simulate(c.cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-45s AMAT %.3f cycles, miss ratio %.4f, traffic %.3f words/ref\n",
			c.name, res.AMAT(), res.MissRatio(), res.Stats.WordsPerReference())
	}
}
