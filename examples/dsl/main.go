// dsl demonstrates the loop-nest source language: a kernel written as text
// is compiled, tagged by the paper's locality analysis, traced and
// simulated — the same workflow the paper used with Sage++ on Fortran.
//
//	go run ./examples/dsl
package main

import (
	_ "embed"
	"fmt"
	"log"

	"softcache/internal/core"
	"softcache/internal/lang"
	"softcache/internal/locality"
	"softcache/internal/loopir"
	"softcache/internal/tracegen"
)

//go:embed stencil.loop
var source string

func main() {
	p, err := lang.Parse(source)
	if err != nil {
		log.Fatal(err)
	}
	tags, err := locality.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Compiled and tagged loop nest:")
	fmt.Println(p.StringTagged(map[int]loopir.Tags(tags)))

	tr, err := tracegen.Generate(p, tracegen.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d references\n\n", tr.Len())

	for _, c := range []struct {
		label string
		cfg   core.Config
	}{
		{"Standard", core.Standard()},
		{"Soft", core.Soft()},
		{"Soft + variable virtual lines", core.SoftVariable()},
	} {
		res, err := core.Simulate(c.cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s AMAT %.3f cycles, miss ratio %.4f\n", c.label, res.AMAT(), res.MissRatio())
	}
}
