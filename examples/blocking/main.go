// blocking reproduces the paper's §4.2/§4.3 discussion: software-assisted
// caches let blocked algorithms use block sizes near the theoretical
// optimum (pollution no longer forces conservative blocking) and make data
// copying cheaper and safer.
//
//	go run ./examples/blocking
package main

import (
	"fmt"
	"log"

	"softcache/internal/core"
	"softcache/internal/tracegen"
	"softcache/internal/workloads"
)

func main() {
	fmt.Println("Blocked matrix-vector multiply: AMAT vs block size (§4.2, fig. 11a)")
	fmt.Printf("%8s %12s %10s\n", "block", "Standard", "Soft")
	for _, b := range []int{10, 20, 40, 50, 100, 200, 500, 1000} {
		p, err := workloads.BlockedMV(workloads.ScalePaper, b)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := tracegen.Generate(p, tracegen.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		std, err := core.Simulate(core.Standard(), tr)
		if err != nil {
			log.Fatal(err)
		}
		soft, err := core.Simulate(core.Soft(), tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12.3f %10.3f\n", b, std.AMAT(), soft.AMAT())
	}

	fmt.Println()
	fmt.Println("Blocked matrix-matrix multiply with/without copying (§4.3, fig. 11b)")
	fmt.Printf("%4s %15s %13s %14s %12s\n", "LD", "NoCopy(stand)", "Copy(stand)", "NoCopy(soft)", "Copy(soft)")
	for _, ld := range []int{116, 120, 124, 126} {
		row := make([]float64, 0, 4)
		for _, copying := range []bool{false, true} {
			p, err := workloads.BlockedMM(workloads.ScalePaper, ld, copying)
			if err != nil {
				log.Fatal(err)
			}
			tr, err := tracegen.Generate(p, tracegen.Options{Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			std, err := core.Simulate(core.Standard(), tr)
			if err != nil {
				log.Fatal(err)
			}
			soft, err := core.Simulate(core.Soft(), tr)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, std.AMAT(), soft.AMAT())
		}
		// row = [noCopyStd, noCopySoft, copyStd, copySoft]
		fmt.Printf("%4d %15.3f %13.3f %14.3f %12.3f\n", ld, row[0], row[2], row[1], row[3])
	}
	fmt.Println()
	fmt.Println("Copying flattens the leading-dimension spikes; software control")
	fmt.Println("removes most of its refill cost (the local-memory array is tagged")
	fmt.Println("temporal, so refill streams cannot flush it).")
}
