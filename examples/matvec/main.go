// matvec dissects the paper's §2.2 analysis of the matrix-vector multiply
// loop: why a victim cache cannot recover X's long-distance cyclic reuse,
// and how the bounce-back cache does. It runs the same trace through five
// designs and then watches the fate of one X line across an outer
// iteration.
//
//	go run ./examples/matvec
package main

import (
	"fmt"
	"log"

	"softcache/internal/cache"
	"softcache/internal/core"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

func main() {
	tr, err := workloads.Trace("MV", workloads.ScalePaper, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MV: %d references; N chosen so X fits in the 8K cache but each\n", tr.Len())
	fmt.Println("column of A flushes most of it between reuses (cache pollution).")
	fmt.Println()

	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"Standard", core.Standard()},
		{"Standard+Victim", core.Victim()},
		{"Soft temporal only", core.SoftTemporal()},
		{"Soft spatial only", core.SoftSpatial()},
		{"Soft (combined)", core.Soft()},
	}
	fmt.Printf("%-20s %8s %12s %12s %14s\n", "design", "AMAT", "miss ratio", "BB hits", "bounced back")
	for _, c := range configs {
		res, err := core.Simulate(c.cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %8.3f %12.4f %12d %14d\n",
			c.name, res.AMAT(), res.MissRatio(), res.Stats.BounceBackHits, res.Stats.BouncedBack)
	}

	// Now follow one line of X through the Soft hierarchy: it is loaded,
	// polluted out of the main cache by A's column, parked in the
	// bounce-back cache, and bounced back instead of discarded because its
	// temporal bit is set.
	fmt.Println("\nLife of one X line under Soft (line containing X[0]):")
	sim, err := core.NewSimulator(core.Soft())
	if err != nil {
		log.Fatal(err)
	}
	var xAddr uint64
	// X's first reference is the first record whose tags are
	// temporal+spatial inside the inner loop; find it by scanning for the
	// second distinct temporal array touched (Y is first).
	seen := map[uint32]bool{}
	for _, r := range tr.Records {
		if r.Temporal && r.Spatial && !seen[r.RefID] {
			seen[r.RefID] = true
			if len(seen) == 3 { // Y-load, A is not temporal, X-load
				xAddr = r.Addr
				break
			}
		}
	}
	if xAddr == 0 {
		// Fall back: X is the third array in the address map.
		xAddr = tr.Records[2].Addr
	}

	lastWhere := cache.LineInfo{Where: cache.LineWhere(-1)}
	transitions := 0
	for i, r := range tr.Records {
		sim.Access(r)
		info := sim.Inspect(xAddr)
		if info.Where != lastWhere.Where && transitions < 12 {
			fmt.Printf("  after ref %8d: %-12s (temporal bit %v)\n", i, info.Where, info.Temporal)
			lastWhere = info
			transitions++
		}
		if transitions >= 12 {
			break
		}
	}
	stats := sim.Stats()
	fmt.Printf("\n(partial run) bounce-backs so far: %d, swaps: %d\n", stats.BouncedBack, stats.Swaps)
	printTagLegend(tr)
}

func printTagLegend(tr *trace.Trace) {
	c := tr.CountTags()
	fmt.Printf("\ntrace tag mix: none=%d spatial=%d temporal=%d both=%d\n",
		c.None, c.SpatialOnly, c.TemporalOnly, c.Both)
}
