package vet

import (
	"fmt"
	"sort"
	"strings"

	"softcache/internal/depend"
	"softcache/internal/locality"
	"softcache/internal/loopir"
)

func init() {
	registerPass(Pass{
		Name: "bounds",
		Doc:  "subscripts provably or possibly outside declared array dimensions",
		Run:  runBounds,
	})
	registerPass(Pass{
		Name: "deadstore",
		Doc:  "stores overwritten before any read of the same element",
		Run:  runDeadStore,
	})
	registerPass(Pass{
		Name: "stride",
		Doc:  "cache-hostile stride-N innermost sweeps, with loop-interchange advisories",
		Run:  runStride,
	})
	registerPass(Pass{
		Name: "callpoison",
		Doc:  "loop bodies whose CALL destroyed derived tags (§2.3 no-interprocedural rule)",
		Run:  runCallPoison,
	})
	registerPass(Pass{
		Name: "indirect",
		Doc:  "indirect subscripts the analysis cannot tag, where a §4.1 directive would help",
		Run:  runIndirect,
	})
}

// ---------------------------------------------------------------- bounds --

// interval is a conservative integer range. exact means the range is tight
// (every value in it is actually taken), which holds for constants and for
// single-variable affine forms over constant-bound loops; sums of two or
// more variables, or variables with derived bounds, are over-approximate.
type interval struct {
	lo, hi int
	known  bool
	exact  bool
}

func constInterval(k int) interval { return interval{lo: k, hi: k, known: true, exact: true} }

func (iv interval) add(o interval) interval {
	if !iv.known || !o.known {
		return interval{}
	}
	// A sum is exact only when one side is a constant.
	exact := iv.exact && o.exact && (iv.lo == iv.hi || o.lo == o.hi)
	return interval{lo: iv.lo + o.lo, hi: iv.hi + o.hi, known: true, exact: exact}
}

func (iv interval) scale(k int) interval {
	if !iv.known {
		return interval{}
	}
	lo, hi := iv.lo*k, iv.hi*k
	if k < 0 {
		lo, hi = hi, lo
	}
	return interval{lo: lo, hi: hi, known: true, exact: iv.exact}
}

// boundsChecker walks the program with a per-variable interval
// environment.
type boundsChecker struct {
	prog     *loopir.Program
	graph    *depend.Graph
	env      map[string]interval
	findings []Finding
}

func runBounds(ctx *Context) ([]Finding, error) {
	c := &boundsChecker{prog: ctx.Prog, graph: ctx.Graph, env: map[string]interval{}}
	c.walk(ctx.Prog.Body)
	return c.findings, nil
}

func (c *boundsChecker) walk(body []loopir.Stmt) {
	for _, st := range body {
		switch s := st.(type) {
		case *loopir.Loop:
			lo := c.eval(s.Lower)
			hi := c.eval(s.Upper)
			iv := interval{}
			if lo.known && hi.known {
				if lo.lo > hi.hi {
					// The loop provably never executes: its body is dead
					// code and cannot fault.
					continue
				}
				// The loop variable spans [min lower, max upper]; exact
				// only when both bounds are constants.
				iv = interval{lo: lo.lo, hi: hi.hi, known: true,
					exact: lo.exact && hi.exact && lo.lo == lo.hi && hi.lo == hi.hi}
			}
			c.env[s.Var] = iv
			c.walk(s.Body)
			delete(c.env, s.Var)
		case *loopir.Access:
			c.checkAccess(s)
		}
		// Prefetches are non-faulting by design (out-of-range addresses
		// are silently dropped), so they are not checked.
	}
}

// eval computes the interval of a subscript under the current environment.
// Indirect components take the min/max of the backing data array — sound
// whenever the indirect index itself is in range, which checkIndirectIndex
// verifies separately.
func (c *boundsChecker) eval(s loopir.Subscript) interval {
	iv := constInterval(s.Const)
	for _, t := range s.Terms {
		v, ok := c.env[t.Var]
		if !ok || !v.known {
			return interval{}
		}
		iv = iv.add(v.scale(t.Coef))
	}
	if s.Ind != nil {
		data := c.prog.Data[s.Ind.Array]
		if len(data) == 0 {
			return interval{}
		}
		lo, hi := data[0], data[0]
		for _, v := range data {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		iv = iv.add(interval{lo: lo, hi: hi, known: true})
	}
	return iv
}

func (c *boundsChecker) checkAccess(a *loopir.Access) {
	arr := c.prog.Arrays[a.Array]
	r := c.graph.RefByID(a.ID)
	for d, sub := range a.Index {
		c.checkIndirectIndex(r, sub)
		iv := c.eval(sub)
		if !iv.known {
			continue
		}
		dim := arr.Dims[d]
		if iv.lo >= 0 && iv.hi < dim {
			continue
		}
		sev, verb := Warning, "may fall"
		if iv.exact {
			// The range is tight: some executed iteration is provably out
			// of bounds, and trace generation will abort there.
			sev, verb = Error, "falls"
		}
		c.findings = append(c.findings, findingAt("bounds", sev, r,
			"subscript %d of %s spans [%d, %d], which %s outside the declared dimension [0, %d)",
			d+1, a.Array, iv.lo, iv.hi, verb, dim))
	}
}

// checkIndirectIndex verifies that the index into an indirection data
// array stays inside the array: the generator aborts on violations.
func (c *boundsChecker) checkIndirectIndex(r *depend.Ref, sub loopir.Subscript) {
	if sub.Ind == nil {
		return
	}
	iv := c.eval(sub.Ind.Sub)
	if !iv.known {
		return
	}
	n := len(c.prog.Data[sub.Ind.Array])
	if iv.lo >= 0 && iv.hi < n {
		return
	}
	sev := Warning
	if iv.exact {
		sev = Error
	}
	c.findings = append(c.findings, findingAt("bounds", sev, r,
		"indirect index into %s spans [%d, %d], outside the data array's [0, %d)",
		sub.Ind.Array, iv.lo, iv.hi, n))
}

// ------------------------------------------------------------- deadstore --

// runDeadStore flags stores whose value is overwritten by a later store to
// the same element in the same loop body with no possible intervening
// read: the first store is wasted work (and wasted write-buffer traffic).
// The analysis is per statement list and purely affine: any read of the
// array, any CALL, any nested loop touching the array, or any indirect
// reference to it conservatively keeps a store alive.
func runDeadStore(ctx *Context) ([]Finding, error) {
	var findings []Finding
	var walk func(body []loopir.Stmt)
	walk = func(body []loopir.Stmt) {
		live := map[string]*depend.Ref{} // lin-subscript key -> pending store
		kill := func(array string) {
			for k := range live {
				if strings.HasPrefix(k, array+"|") {
					delete(live, k)
				}
			}
		}
		for _, st := range body {
			switch s := st.(type) {
			case *loopir.Access:
				r := ctx.Graph.RefByID(s.ID)
				if r.Indirect {
					// An indirect reference may alias any element.
					kill(s.Array)
					continue
				}
				if !s.Write {
					kill(s.Array)
					continue
				}
				key := s.Array + "|" + r.Lin.String()
				if prev, ok := live[key]; ok {
					findings = append(findings, findingAt("deadstore", Warning, prev,
						"store to %s is overwritten by %s before any read of the element",
						s.Array, r))
				}
				live[key] = r
			case *loopir.Call:
				// An opaque call may read anything.
				live = map[string]*depend.Ref{}
			case *loopir.Loop:
				arrs, hasCall := arraysTouched(s.Body)
				if hasCall {
					live = map[string]*depend.Ref{}
				} else {
					for _, arr := range arrs {
						kill(arr)
					}
				}
				walk(s.Body)
			}
		}
	}
	walk(ctx.Prog.Body)
	return findings, nil
}

// arraysTouched lists the arrays referenced anywhere under body; hasCall
// reports an opaque CALL under it, which may touch anything.
func arraysTouched(body []loopir.Stmt) (arrs []string, hasCall bool) {
	seen := map[string]bool{}
	var walk func(body []loopir.Stmt)
	walk = func(body []loopir.Stmt) {
		for _, st := range body {
			switch s := st.(type) {
			case *loopir.Access:
				seen[s.Array] = true
			case *loopir.Call:
				hasCall = true
			case *loopir.Loop:
				walk(s.Body)
			}
		}
	}
	walk(body)
	for a := range seen {
		arrs = append(arrs, a)
	}
	sort.Strings(arrs)
	return arrs, hasCall
}

// ---------------------------------------------------------------- stride --

// runStride flags references whose innermost stride defeats the 32-byte
// line (the paper's spatial threshold): every iteration touches a new
// line, so the sweep pays one miss per element and fetches bytes it never
// uses. When some enclosing loop traverses the same subscript with a small
// coefficient, the finding carries a concrete interchange advisory — the
// §4.2-style transformation the dependence graph is meant to enable.
func runStride(ctx *Context) ([]Finding, error) {
	var findings []Finding
	for _, r := range ctx.Graph.Refs {
		coef, known := r.InnermostCoef()
		if !known || abs(coef) < depend.SpatialMaxCoef {
			continue
		}
		elem := ctx.Prog.Arrays[r.Access.Array].ElemSize
		inner := r.Innermost()
		msg := fmt.Sprintf("innermost DO %s sweeps %s with stride %d elements (%d bytes): every iteration touches a new cache line",
			inner.Var, r.Access.Array, coef, abs(coef)*elem)
		if alt := interchangeCandidate(r); alt != nil {
			msg += fmt.Sprintf("; interchanging DO %s inward would make this reference stride-%d",
				alt.Var, abs(r.Lin.Coef(alt.Var)))
			if ok, why := interchangeSafe(r); !ok {
				msg += " (" + why + ")"
			}
		} else {
			msg += "; no enclosing loop offers a low-stride alternative"
		}
		findings = append(findings, findingAt("stride", Warning, r, "%s", msg))
	}
	return findings, nil
}

// interchangeCandidate picks the enclosing loop whose variable has the
// smallest nonzero |coefficient| below the spatial threshold — the loop
// that, moved innermost, would make the reference a unit-ish-stride sweep.
func interchangeCandidate(r *depend.Ref) *loopir.Loop {
	var best *loopir.Loop
	bestCoef := 0
	for _, l := range r.Loops[:len(r.Loops)-1] {
		c := abs(r.Lin.Coef(l.Var))
		if c == 0 || c >= depend.SpatialMaxCoef {
			continue
		}
		if best == nil || c < bestCoef {
			best, bestCoef = l, c
		}
	}
	return best
}

// interchangeSafe reports whether the elementary model sees an obstacle to
// interchanging the reference's loop nest: a group dependence carried by a
// non-innermost loop can change meaning under interchange, so the advisory
// is downgraded to "verify dependences" rather than silently asserted.
func interchangeSafe(r *depend.Ref) (bool, string) {
	for _, d := range r.GroupDeps() {
		if d.Level > 0 && d.Level < len(r.Loops) {
			return false, fmt.Sprintf("note: a %s dependence is carried by DO %s — verify legality before interchanging",
				d.Class, d.Carrier.Var)
		}
	}
	return true, ""
}

// ------------------------------------------------------------ callpoison --

// runCallPoison reports, per poisoned loop body, every tag the CALL
// destroyed: the tags an interprocedural analysis would have derived
// (locality.Options.IgnoreCalls) minus what the paper's rule left.
func runCallPoison(ctx *Context) ([]Finding, error) {
	wouldBe := locality.Derive(ctx.Graph, locality.Options{IgnoreCalls: true})
	byBody := map[int][]*depend.Ref{}
	var order []int
	for _, r := range ctx.Graph.Refs {
		if !r.Poisoned || r.Access.Force != nil {
			continue
		}
		if _, seen := byBody[r.Body]; !seen {
			order = append(order, r.Body)
		}
		byBody[r.Body] = append(byBody[r.Body], r)
	}
	var findings []Finding
	for _, body := range order {
		refs := byBody[body]
		var lost []string
		for _, r := range refs {
			w := wouldBe[r.Access.ID]
			if !w.Temporal && !w.Spatial {
				continue
			}
			lost = append(lost, fmt.Sprintf("%s [%s]", r, tagNames(w)))
		}
		if len(lost) == 0 {
			continue
		}
		first := refs[0]
		call := firstCall(first.Innermost().Body)
		callName := "a CALL"
		f := Finding{
			Pass:     "callpoison",
			Severity: Warning,
			Line:     first.Access.Pos.Line,
			Col:      first.Access.Pos.Col,
			RefID:    first.Access.ID,
		}
		if call != nil {
			callName = "CALL " + call.Name
			if call.Pos.IsValid() {
				f.Line, f.Col = call.Pos.Line, call.Pos.Col
			}
		}
		f.Site = fmt.Sprintf("DO %s body", first.Innermost().Var)
		f.Message = fmt.Sprintf("%s poisons this loop body (no interprocedural analysis): destroyed %s",
			callName, strings.Join(lost, ", "))
		findings = append(findings, f)
	}
	return findings, nil
}

func tagNames(t loopir.Tags) string {
	switch {
	case t.Temporal && t.Spatial:
		return "temporal, spatial"
	case t.Temporal:
		return "temporal"
	case t.Spatial:
		return "spatial"
	}
	return "none"
}

// firstCall returns the first CALL statement under body, depth-first.
func firstCall(body []loopir.Stmt) *loopir.Call {
	for _, st := range body {
		switch s := st.(type) {
		case *loopir.Call:
			return s
		case *loopir.Loop:
			if c := firstCall(s.Body); c != nil {
				return c
			}
		}
	}
	return nil
}

// -------------------------------------------------------------- indirect --

// runIndirect marks the boundary of affine analysis: references whose
// subscripts go through an integer data array (X(Index(j)) in the paper's
// SpMV loop) can never be tagged by the compiler; §4.1's answer is a user
// directive, so the pass stays quiet when one is already present.
func runIndirect(ctx *Context) ([]Finding, error) {
	var findings []Finding
	for _, r := range ctx.Graph.Refs {
		if !r.Indirect || r.Access.Force != nil {
			continue
		}
		findings = append(findings, findingAt("indirect", Info, r,
			"indirect subscript through %s defeats affine analysis; a §4.1 tags(...) directive could assert this reference's locality",
			r.Lin.Ind.Array))
	}
	return findings, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
