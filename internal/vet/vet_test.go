package vet_test

import (
	"strings"
	"testing"

	"softcache/internal/lang"
	"softcache/internal/vet"
	"softcache/internal/workloads"
)

// run parses src and vets it without the dynamic audit.
func run(t *testing.T, src string) *vet.Result {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := vet.Run(p, vet.Options{})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	return res
}

// byPass filters findings of one pass.
func byPass(res *vet.Result, pass string) []vet.Finding {
	var out []vet.Finding
	for _, f := range res.Findings {
		if f.Pass == pass {
			out = append(out, f)
		}
	}
	return out
}

const fig5Src = `
program fig5
array A(100, 100)
array B(100, 101)
array X(100)
array Y(100)
do i = 0, 99
  do j = 0, 99
    load Y(i)
    load A(i, j)
    load B(j, i)
    load B(j, i + 1)
    load X(j)
    store Y(i)
  end
end
`

// TestFig5Clean: the paper's fig. 5 loop is in bounds and free of dead
// stores and indirect subscripts; its only diagnostic is the stride
// warning on A(I,J) — the column sweep §2.2 builds its argument on —
// complete with the interchange advisory.
func TestFig5Clean(t *testing.T) {
	res := run(t, fig5Src)
	if res.HasErrors() {
		t.Fatalf("unexpected errors:\n%v", res.Findings)
	}
	for _, pass := range []string{"bounds", "deadstore", "indirect", "callpoison"} {
		if fs := byPass(res, pass); len(fs) != 0 {
			t.Errorf("pass %s: unexpected findings %v", pass, fs)
		}
	}
	strides := byPass(res, "stride")
	if len(strides) != 1 {
		t.Fatalf("stride findings = %v, want exactly 1 (A)", strides)
	}
	f := strides[0]
	if !strings.Contains(f.Site, "A(") {
		t.Errorf("stride finding site = %q, want the A reference", f.Site)
	}
	if !strings.Contains(f.Message, "stride 100 elements") {
		t.Errorf("message %q does not report the 100-element stride", f.Message)
	}
	if !strings.Contains(f.Message, "interchanging DO i inward would make this reference stride-1") {
		t.Errorf("message %q lacks the interchange advisory", f.Message)
	}
	if f.Line == 0 || f.Col == 0 {
		t.Errorf("finding carries no source position: %+v", f)
	}
}

// TestFlippedMV: the matrix-vector loop with the loop order flipped (DO j2
// outer, DO j1 inner) makes A a stride-96 sweep; vet must flag it and
// advise interchanging j2 inward (restoring the natural order).
func TestFlippedMV(t *testing.T) {
	res := run(t, `
program mv_flipped
array A(96, 96)
array X(96)
array Y(96)
do j2 = 0, 95
  do j1 = 0, 95
    load A(j2, j1)
    load X(j2)
    load Y(j1)
  end
end
`)
	strides := byPass(res, "stride")
	if len(strides) != 1 {
		t.Fatalf("stride findings = %v, want exactly 1 (A)", strides)
	}
	msg := strides[0].Message
	if !strings.Contains(msg, "stride 96 elements") ||
		!strings.Contains(msg, "interchanging DO j2 inward would make this reference stride-1") {
		t.Errorf("flipped-MV advisory wrong: %q", msg)
	}
}

func TestBoundsExactError(t *testing.T) {
	res := run(t, `
program oob
array A(10)
do i = 0, 10
  load A(i)
end
`)
	fs := byPass(res, "bounds")
	if len(fs) != 1 || fs[0].Severity != vet.Error {
		t.Fatalf("bounds findings = %v, want one Error", fs)
	}
	if !strings.Contains(fs[0].Message, "[0, 10]") || !strings.Contains(fs[0].Message, "[0, 10)") {
		t.Errorf("message %q should report span [0, 10] vs dim [0, 10)", fs[0].Message)
	}
	if !res.HasErrors() {
		t.Error("Result.HasErrors() = false, want true")
	}
}

// TestBoundsApproxWarning: a two-variable subscript's interval is an
// over-approximation, so a potential violation is only a warning.
func TestBoundsApproxWarning(t *testing.T) {
	res := run(t, `
program maybe
array A(18)
do i = 0, 9
  do j = 0, 9
    load A(i + j)
  end
end
`)
	fs := byPass(res, "bounds")
	if len(fs) != 1 || fs[0].Severity != vet.Warning {
		t.Fatalf("bounds findings = %v, want one Warning", fs)
	}
	if !strings.Contains(fs[0].Message, "may fall") {
		t.Errorf("approximate violation should hedge: %q", fs[0].Message)
	}
}

func TestBoundsInBounds(t *testing.T) {
	res := run(t, `
program fine
array A(19)
do i = 0, 9
  do j = 0, 9
    load A(i + j)
  end
end
`)
	if fs := byPass(res, "bounds"); len(fs) != 0 {
		t.Fatalf("bounds findings = %v, want none", fs)
	}
}

func TestDeadStore(t *testing.T) {
	res := run(t, `
program dead
array Y(100)
do i = 0, 99
  store Y(i)
  store Y(i)
end
`)
	fs := byPass(res, "deadstore")
	if len(fs) != 1 {
		t.Fatalf("deadstore findings = %v, want exactly 1", fs)
	}
	if !strings.Contains(fs[0].Message, "overwritten") {
		t.Errorf("message = %q", fs[0].Message)
	}
}

// TestDeadStoreKills: an intervening read, call or nested loop touching
// the array keeps the first store alive.
func TestDeadStoreKills(t *testing.T) {
	for name, src := range map[string]string{
		"read": `
program live
array Y(100)
do i = 0, 99
  store Y(i)
  load Y(i)
  store Y(i)
end
`,
		"call": `
program live
array Y(100)
do i = 0, 99
  store Y(i)
  call f
  store Y(i)
end
`,
		"nested": `
program live
array Y(100)
do i = 0, 99
  store Y(i)
  do j = 0, 99
    load Y(j)
  end
  store Y(i)
end
`,
	} {
		if fs := byPass(run(t, src), "deadstore"); len(fs) != 0 {
			t.Errorf("%s: deadstore findings = %v, want none", name, fs)
		}
	}
}

func TestCallPoison(t *testing.T) {
	res := run(t, `
program poisoned
array X(100)
do i = 0, 99
  do j = 0, 99
    load X(j)
    call helper
  end
end
`)
	fs := byPass(res, "callpoison")
	if len(fs) != 1 {
		t.Fatalf("callpoison findings = %v, want exactly 1", fs)
	}
	msg := fs[0].Message
	if !strings.Contains(msg, "CALL helper") {
		t.Errorf("message %q does not name the call", msg)
	}
	// X(j) would be temporal (invariant along i) and spatial (stride 1).
	if !strings.Contains(msg, "X(j)") || !strings.Contains(msg, "temporal, spatial") {
		t.Errorf("message %q does not list the destroyed tags of X(j)", msg)
	}
}

func TestIndirect(t *testing.T) {
	res := run(t, `
program spmv
array X(8)
data Index = [0, 2, 4, 6]
do j = 0, 3
  load X(Index[j])
end
`)
	fs := byPass(res, "indirect")
	if len(fs) != 1 || fs[0].Severity != vet.Info {
		t.Fatalf("indirect findings = %v, want one Info", fs)
	}
	if !strings.Contains(fs[0].Message, "directive") {
		t.Errorf("message = %q", fs[0].Message)
	}
}

// TestIndirectDirectiveSilences: a §4.1 tags(...) directive answers the
// indirect advisory, so it is not repeated.
func TestIndirectDirectiveSilences(t *testing.T) {
	res := run(t, `
program spmv
array X(8)
data Index = [0, 2, 4, 6]
do j = 0, 3
  load X(Index[j]) tags(temporal)
end
`)
	if fs := byPass(res, "indirect"); len(fs) != 0 {
		t.Fatalf("indirect findings = %v, want none with a directive", fs)
	}
}

// TestIndirectIndexBounds: the subscript *into* the indirection array is
// itself checked (the generator aborts on violations).
func TestIndirectIndexBounds(t *testing.T) {
	res := run(t, `
program badind
array X(8)
data Index = [0, 2, 4, 6]
do j = 0, 4
  load X(Index[j])
end
`)
	found := false
	for _, f := range byPass(res, "bounds") {
		if f.Severity == vet.Error && strings.Contains(f.Message, "indirect index into Index") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no error for out-of-range indirect index: %v", res.Findings)
	}
}

// TestAuditMV is the acceptance check: on the paper's matrix-vector loop
// the static tags must agree with observed reuse at >=0.9 precision for
// both tag kinds.
func TestAuditMV(t *testing.T) {
	auditPrecision(t, "MV")
}

// TestAuditLIV does the same for the Livermore kernel workload.
func TestAuditLIV(t *testing.T) {
	auditPrecision(t, "LIV")
}

func auditPrecision(t *testing.T, name string) {
	t.Helper()
	p, err := workloads.BuildProgram(name, workloads.ScaleTest)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	res, err := vet.Run(p, vet.Options{Audit: true, Seed: 1})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	a := res.Audit
	if a == nil {
		t.Fatal("no audit report despite Options.Audit")
	}
	if a.Records == 0 || len(a.Refs) == 0 {
		t.Fatalf("empty audit: %+v", a)
	}
	if a.Temporal.Precision < 0.9 {
		t.Errorf("%s temporal precision = %.3f, want >= 0.9", name, a.Temporal.Precision)
	}
	if a.Spatial.Precision < 0.9 {
		t.Errorf("%s spatial precision = %.3f, want >= 0.9", name, a.Spatial.Precision)
	}
}

// TestAuditSkippedWithoutFlag: dynamic passes only run when asked.
func TestAuditSkippedWithoutFlag(t *testing.T) {
	res := run(t, fig5Src)
	if res.Audit != nil {
		t.Fatal("audit ran without Options.Audit")
	}
	if fs := byPass(res, "tagaudit"); len(fs) != 0 {
		t.Fatalf("tagaudit findings without Options.Audit: %v", fs)
	}
}

// TestFindingsSorted: errors come first, then source order.
func TestFindingsSorted(t *testing.T) {
	res := run(t, `
program mixed
array A(10)
array B(100)
data D = [5]
do i = 0, 99
  load B(D[0])
  load A(i)
end
`)
	if len(res.Findings) < 2 {
		t.Fatalf("findings = %v, want at least the bounds error and the indirect info", res.Findings)
	}
	for i := 1; i < len(res.Findings); i++ {
		if res.Findings[i].Severity > res.Findings[i-1].Severity {
			t.Fatalf("findings not sorted by severity: %v", res.Findings)
		}
	}
}
