// Package vet is a multi-pass diagnostics framework over loop-nest
// programs: the compiler front half the paper assumes but never shows.
// Each pass inspects the dependence graph (package depend) and the derived
// tagging (package locality) and reports findings — a severity, a message,
// and when the program came from a .loop source, the line/column of the
// offending statement.
//
// The shipped passes:
//
//   - bounds:     subscripts provably or possibly outside declared dims
//   - deadstore:  stores overwritten before any read of the same element
//   - stride:     cache-hostile stride-N innermost sweeps, with a concrete
//     loop-interchange advisory when an enclosing loop offers a
//     unit-stride alternative
//   - callpoison: loop bodies whose CALL destroyed tags the analysis had
//     derived, listing every lost tag (§2.3's no-interprocedural rule)
//   - indirect:   indirect subscripts the affine analysis cannot tag,
//     where a §4.1 user directive would help
//   - tagaudit:   replays the generated trace through a reuse-distance
//     oracle (package stackdist) and reports per-reference precision and
//     recall of the static temporal/spatial tags against observed reuse —
//     the quantitative check behind the paper's "elementary techniques
//     suffice" claim
//
// cmd/softcache-vet runs the passes from the command line.
package vet

import (
	"fmt"
	"sort"

	"softcache/internal/depend"
	"softcache/internal/locality"
	"softcache/internal/loopir"
)

// Severity ranks findings. Error-severity findings mean the program will
// abort at trace-generation time (or is meaningfully broken); softcache-vet
// exits nonzero only for those.
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON encodes severities as their lowercase names.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Finding is one diagnostic.
type Finding struct {
	// Pass names the pass that produced the finding.
	Pass string `json:"pass"`
	// Severity ranks it; Error makes softcache-vet exit nonzero.
	Severity Severity `json:"severity"`
	// Line and Col locate the offending statement in the .loop source
	// (0 when the program was built in Go and carries no positions).
	Line int `json:"line,omitempty"`
	Col  int `json:"col,omitempty"`
	// RefID is the access site the finding is about (0 when it concerns
	// a whole loop body or the program).
	RefID int `json:"ref,omitempty"`
	// Site renders the site or statement, e.g. "load A(j2,j1)#2".
	Site string `json:"site,omitempty"`
	// Message is the human-readable diagnostic.
	Message string `json:"message"`
}

// String renders the finding one-per-line, compiler style.
func (f Finding) String() string {
	loc := "-"
	if f.Line > 0 {
		loc = fmt.Sprintf("%d:%d", f.Line, f.Col)
	}
	if f.Site != "" {
		return fmt.Sprintf("%s: %s [%s]: %s: %s", loc, f.Severity, f.Pass, f.Site, f.Message)
	}
	return fmt.Sprintf("%s: %s [%s]: %s", loc, f.Severity, f.Pass, f.Message)
}

// Pass is one registered diagnostic pass.
type Pass struct {
	Name string
	// Doc is a one-line description shown by softcache-vet.
	Doc string
	// Dynamic passes generate and replay a trace; they only run when
	// Options.Audit is set.
	Dynamic bool
	Run     func(*Context) ([]Finding, error)
}

// passes is the registry, in execution order.
var passes []Pass

func registerPass(p Pass) { passes = append(passes, p) }

// Passes returns the registered passes in execution order.
func Passes() []Pass { return append([]Pass(nil), passes...) }

// Options configure a vet run.
type Options struct {
	// Audit enables the dynamic tag-precision audit (trace generation and
	// replay; costs time proportional to the trace).
	Audit bool
	// Seed drives trace generation for the audit (0 means 1).
	Seed uint64
	// WindowLines is the reuse-oracle window in distinct cache lines: two
	// touches further apart than this do not count as observed reuse.
	// 0 means the default of 65536 lines (2 MiB of 32-byte lines).
	WindowLines int
	// LineBytes is the cache-line size for the oracle (0 means 32, the
	// paper's physical line).
	LineBytes int
	// MaxRecords bounds audit trace generation (0 means the tracegen
	// default).
	MaxRecords int
}

// Context carries the analysed program through the passes.
type Context struct {
	Prog  *loopir.Program
	Graph *depend.Graph
	Tags  locality.Tagging
	Opts  Options

	audit *AuditReport // set by the tagaudit pass, collected by Run
}

// Result is a full vet run.
type Result struct {
	Program  string    `json:"program"`
	Findings []Finding `json:"findings"`
	// Audit is the tag-precision audit report (nil unless Options.Audit).
	Audit *AuditReport `json:"audit,omitempty"`
}

// Count returns the number of findings at the given severity.
func (r *Result) Count(s Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == s {
			n++
		}
	}
	return n
}

// HasErrors reports whether any finding is error-severity.
func (r *Result) HasErrors() bool { return r.Count(Error) > 0 }

// Run analyses the program and executes every registered pass (dynamic
// passes only when opts.Audit is set). The program is finalized as a side
// effect.
func Run(p *loopir.Program, opts Options) (*Result, error) {
	g, err := depend.Analyze(p)
	if err != nil {
		return nil, fmt.Errorf("vet: %w", err)
	}
	ctx := &Context{Prog: p, Graph: g, Tags: locality.Derive(g, locality.Options{}), Opts: opts}
	res := &Result{Program: p.Name}
	for _, pass := range passes {
		if pass.Dynamic && !opts.Audit {
			continue
		}
		fs, err := pass.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("vet: pass %s: %w", pass.Name, err)
		}
		if audit, ok := ctx.popAudit(); ok {
			res.Audit = audit
		}
		res.Findings = append(res.Findings, fs...)
	}
	sortFindings(res.Findings)
	return res, nil
}

// sortFindings orders by severity (errors first), then source position,
// then ref, keeping the output stable for tests and diffs.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.RefID < b.RefID
	})
}

// pendingAudit lets the audit pass hand its structured report to Run
// without widening the generic pass signature.
func (c *Context) popAudit() (*AuditReport, bool) {
	if c.audit == nil {
		return nil, false
	}
	a := c.audit
	c.audit = nil
	return a, true
}

// site renders a reference for findings.
func site(r *depend.Ref) string { return r.String() }

// findingAt builds a finding anchored at a reference site.
func findingAt(pass string, sev Severity, r *depend.Ref, format string, args ...interface{}) Finding {
	return Finding{
		Pass:     pass,
		Severity: sev,
		Line:     r.Access.Pos.Line,
		Col:      r.Access.Pos.Col,
		RefID:    r.Access.ID,
		Site:     site(r),
		Message:  fmt.Sprintf(format, args...),
	}
}
