package vet

import (
	"fmt"

	"softcache/internal/stackdist"
	"softcache/internal/tracegen"
)

func init() {
	registerPass(Pass{
		Name:    "tagaudit",
		Doc:     "replay the trace through a reuse-distance oracle and score the static tags",
		Dynamic: true,
		Run:     runTagAudit,
	})
}

// RefAudit scores one static reference site against observed reuse.
type RefAudit struct {
	RefID int    `json:"ref"`
	Site  string `json:"site"`
	Line  int    `json:"line,omitempty"`
	Col   int    `json:"col,omitempty"`
	// TaggedTemporal / TaggedSpatial are the static tags under audit
	// (after directives, poisoning and group demotion).
	TaggedTemporal bool `json:"tagged_temporal"`
	TaggedSpatial  bool `json:"tagged_spatial"`
	// Dynamic counts the reference's records in the trace.
	Dynamic uint64 `json:"dynamic"`
	// TemporalObserved / SpatialObserved count the dynamic references for
	// which the oracle saw the corresponding reuse within the window.
	TemporalObserved uint64 `json:"temporal_observed"`
	SpatialObserved  uint64 `json:"spatial_observed"`
}

// PrecisionRecall scores one tag kind over a whole program, weighted by
// dynamic reference counts (a site executed a million times matters more
// than one executed once):
//
//	precision = observed reuse among tagged references / tagged references
//	recall    = tagged among references with observed reuse / observed reuse
//
// Precision is the cost side (a wrong tag mis-prioritises a line); recall
// is the benefit side (reuse the analysis failed to promise).
type PrecisionRecall struct {
	TaggedRefs   uint64  `json:"tagged_refs"`
	ObservedRefs uint64  `json:"observed_refs"`
	TruePositive uint64  `json:"true_positive"`
	Precision    float64 `json:"precision"`
	Recall       float64 `json:"recall"`
}

func (pr *PrecisionRecall) finish() {
	if pr.TaggedRefs > 0 {
		pr.Precision = float64(pr.TruePositive) / float64(pr.TaggedRefs)
	}
	if pr.ObservedRefs > 0 {
		pr.Recall = float64(pr.TruePositive) / float64(pr.ObservedRefs)
	}
}

// AuditReport is the tag-precision audit of one program: the static
// temporal/spatial tags replayed against the reuse the trace actually
// exhibits (see stackdist.ObserveReuse for the oracle's definition of
// observed reuse).
type AuditReport struct {
	Program     string     `json:"program"`
	Records     uint64     `json:"records"`
	Seed        uint64     `json:"seed"`
	LineBytes   int        `json:"line_bytes"`
	WindowLines int        `json:"window_lines"`
	Refs        []RefAudit `json:"refs"`
	// Temporal and Spatial are the dynamic-reference-weighted scores over
	// all sites.
	Temporal PrecisionRecall `json:"temporal"`
	Spatial  PrecisionRecall `json:"spatial"`
}

// Audit generates the program's trace and scores the tagging against the
// reuse oracle. It is the engine behind the tagaudit pass, exported for
// cmd/softcache-vet's all-workloads table and the bench experiment.
func Audit(ctx *Context) (*AuditReport, error) {
	opts := ctx.Opts
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	lineBytes := opts.LineBytes
	if lineBytes <= 0 {
		lineBytes = 32
	}
	window := opts.WindowLines
	if window <= 0 {
		window = 1 << 16
	}
	tr, err := tracegen.GenerateTagged(ctx.Prog, ctx.Tags, tracegen.Options{
		Seed:       seed,
		MaxRecords: opts.MaxRecords,
	})
	if err != nil {
		return nil, fmt.Errorf("trace generation: %w", err)
	}
	reuse := stackdist.ObserveReuse(tr, lineBytes, window)

	type counts struct{ dyn, temporal, spatial uint64 }
	byRef := map[int]*counts{}
	for i, rec := range tr.Records {
		if rec.SoftwarePrefetch {
			continue
		}
		c := byRef[int(rec.RefID)]
		if c == nil {
			c = &counts{}
			byRef[int(rec.RefID)] = c
		}
		c.dyn++
		if reuse[i].Temporal {
			c.temporal++
		}
		if reuse[i].Spatial {
			c.spatial++
		}
	}

	rep := &AuditReport{
		Program:     ctx.Prog.Name,
		Records:     uint64(tr.Len()),
		Seed:        seed,
		LineBytes:   lineBytes,
		WindowLines: window,
	}
	for _, r := range ctx.Graph.Refs {
		t := ctx.Tags[r.Access.ID]
		ra := RefAudit{
			RefID:          r.Access.ID,
			Site:           r.String(),
			Line:           r.Access.Pos.Line,
			Col:            r.Access.Pos.Col,
			TaggedTemporal: t.Temporal,
			TaggedSpatial:  t.Spatial,
		}
		if c := byRef[r.Access.ID]; c != nil {
			ra.Dynamic = c.dyn
			ra.TemporalObserved = c.temporal
			ra.SpatialObserved = c.spatial
		}
		rep.Refs = append(rep.Refs, ra)

		// Weighted aggregation: every dynamic reference of the site votes
		// with its own observation; the tag is per site.
		if ra.Dynamic > 0 {
			if t.Temporal {
				rep.Temporal.TaggedRefs += ra.Dynamic
				rep.Temporal.TruePositive += ra.TemporalObserved
			}
			rep.Temporal.ObservedRefs += ra.TemporalObserved
			if t.Spatial {
				rep.Spatial.TaggedRefs += ra.Dynamic
				rep.Spatial.TruePositive += ra.SpatialObserved
			}
			rep.Spatial.ObservedRefs += ra.SpatialObserved
		}
	}
	rep.Temporal.finish()
	rep.Spatial.finish()
	return rep, nil
}

// runTagAudit is the pass wrapper: it stores the structured report on the
// context (Run lifts it into the Result) and emits findings for sites
// whose tags disagree badly with the observed reuse.
func runTagAudit(ctx *Context) ([]Finding, error) {
	rep, err := Audit(ctx)
	if err != nil {
		return nil, err
	}
	ctx.audit = rep
	var findings []Finding
	for _, ra := range rep.Refs {
		if ra.Dynamic == 0 {
			continue
		}
		r := ctx.Graph.RefByID(ra.RefID)
		if ra.TaggedTemporal && low(ra.TemporalObserved, ra.Dynamic) {
			findings = append(findings, findingAt("tagaudit", Info, r,
				"temporal tag confirmed by only %d of %d dynamic references (%.0f%%): the promised reuse rarely happens within the window",
				ra.TemporalObserved, ra.Dynamic, pct(ra.TemporalObserved, ra.Dynamic)))
		}
		if ra.TaggedSpatial && low(ra.SpatialObserved, ra.Dynamic) {
			findings = append(findings, findingAt("tagaudit", Info, r,
				"spatial tag confirmed by only %d of %d dynamic references (%.0f%%): neighbouring words are rarely touched within the window",
				ra.SpatialObserved, ra.Dynamic, pct(ra.SpatialObserved, ra.Dynamic)))
		}
	}
	return findings, nil
}

// low reports whether fewer than half of the dynamic references confirm
// the tag — the threshold for calling a site out individually.
func low(observed, dynamic uint64) bool { return observed*2 < dynamic }

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
