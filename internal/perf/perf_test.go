package perf

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"softcache/internal/cache"
)

func TestMatrixPinned(t *testing.T) {
	full := Matrix(false)
	quick := Matrix(true)
	if len(full) != 12 {
		t.Fatalf("full matrix has %d cases, want 12 (2 scales x 3 virtual-line sizes x bb on/off)", len(full))
	}
	if len(quick) != 6 {
		t.Fatalf("quick matrix has %d cases, want 6", len(quick))
	}
	fullNames := map[string]bool{}
	for _, s := range full {
		if fullNames[s.Name] {
			t.Fatalf("duplicate case name %q", s.Name)
		}
		fullNames[s.Name] = true
		if _, err := cache.New(s.Config()); err != nil {
			t.Errorf("case %s has invalid config: %v", s.Name, err)
		}
	}
	for _, s := range quick {
		if !fullNames[s.Name] {
			t.Errorf("quick case %s not part of the full matrix", s.Name)
		}
		if strings.Contains(s.Name, "paper") {
			t.Errorf("quick matrix contains paper-scale case %s", s.Name)
		}
	}
}

func TestRunnerReportAndGate(t *testing.T) {
	specs := Matrix(true)[:2]
	fused := FusedMatrix(true)[:1]
	r := Runner{MinIters: 1, MinTime: time.Millisecond}
	report, err := r.Run(context.Background(), specs, fused)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Cases) != len(specs) {
		t.Fatalf("got %d cases, want %d", len(report.Cases), len(specs))
	}
	for _, c := range report.Cases {
		if c.Records <= 0 || c.Iters <= 0 || c.NsPerRecord <= 0 || c.RecordsPerSec <= 0 || c.AMAT <= 0 {
			t.Errorf("case %s has implausible measurement: %+v", c.Name, c)
		}
	}
	if len(report.Matrix) != len(fused) {
		t.Fatalf("got %d matrix rows, want %d", len(report.Matrix), len(fused))
	}
	for _, m := range report.Matrix {
		if m.Configs <= 1 || m.Records <= 0 || m.Iters <= 0 ||
			m.FusedNsPerRecord <= 0 || m.LoopNsPerRecord <= 0 || m.Speedup <= 0 || m.MeanAMAT <= 0 {
			t.Errorf("matrix row %s has implausible measurement: %+v", m.Name, m)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
	if err := WriteJSON(path, report); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Cases) != len(report.Cases) || loaded.Schema != SchemaID {
		t.Fatalf("round trip lost data: %+v", loaded)
	}

	// Identical runs pass any gate; a doubled ns/record must trip it.
	if err := Gate(loaded, report, 0.15); err != nil {
		t.Fatalf("identical reports tripped the gate: %v", err)
	}
	slow := *report
	slow.Cases = append([]Measurement(nil), report.Cases...)
	slow.Cases[0].NsPerRecord *= 2
	err = Gate(loaded, &slow, 0.15)
	if err == nil {
		t.Fatal("2x regression passed the 15% gate")
	}
	if !strings.Contains(err.Error(), slow.Cases[0].Name) {
		t.Fatalf("gate error does not name the regressed case: %v", err)
	}

	// New cases (absent from the baseline) never trip the gate.
	extra := slow.Cases[0]
	extra.Name = "synthetic/new-case"
	fresh := *report
	fresh.Cases = append(append([]Measurement(nil), report.Cases...), extra)
	if err := Gate(loaded, &fresh, 0.15); err != nil {
		t.Fatalf("baseline-less case tripped the gate: %v", err)
	}

	// A fused-matrix regression trips the gate too.
	slowMatrix := *report
	slowMatrix.Cases = append([]Measurement(nil), report.Cases...)
	slowMatrix.Matrix = append([]MatrixMeasurement(nil), report.Matrix...)
	slowMatrix.Matrix[0].FusedNsPerRecord *= 2
	err = Gate(loaded, &slowMatrix, 0.15)
	if err == nil {
		t.Fatal("2x fused regression passed the 15% gate")
	}
	if !strings.Contains(err.Error(), slowMatrix.Matrix[0].Name) {
		t.Fatalf("gate error does not name the regressed matrix row: %v", err)
	}

	mdPlain := Markdown(nil, report)
	mdDelta := Markdown(loaded, report)
	for _, c := range report.Cases {
		if !strings.Contains(mdPlain, c.Name) || !strings.Contains(mdDelta, c.Name) {
			t.Errorf("markdown report missing case %s", c.Name)
		}
	}
	for _, m := range report.Matrix {
		if !strings.Contains(mdPlain, m.Name) || !strings.Contains(mdDelta, m.Name) {
			t.Errorf("markdown report missing matrix row %s", m.Name)
		}
	}
	if !strings.Contains(mdDelta, "Δ ns/record") {
		t.Error("delta report lacks the delta column")
	}
	if !strings.Contains(mdDelta, "speedup") {
		t.Error("report lacks the fused speedup column")
	}
}

// TestFusedMatrixPinned mirrors TestMatrixPinned for the fused rows: names
// are unique, quick is a subset of full, and every group builds.
func TestFusedMatrixPinned(t *testing.T) {
	full := FusedMatrix(false)
	quick := FusedMatrix(true)
	if len(full) != 6 {
		t.Fatalf("full fused matrix has %d rows, want 6 (2 scales x 3 groups)", len(full))
	}
	if len(quick) != 3 {
		t.Fatalf("quick fused matrix has %d rows, want 3", len(quick))
	}
	fullNames := map[string]bool{}
	for _, m := range full {
		if fullNames[m.Name] {
			t.Fatalf("duplicate fused row name %q", m.Name)
		}
		fullNames[m.Name] = true
		cfgs, err := m.Configs()
		if err != nil {
			t.Fatalf("row %s: %v", m.Name, err)
		}
		if len(cfgs) < 2 {
			t.Fatalf("row %s has %d configs; fusion needs at least 2", m.Name, len(cfgs))
		}
		for i, cfg := range cfgs {
			if _, err := cache.New(cfg); err != nil {
				t.Errorf("row %s config %d invalid: %v", m.Name, i, err)
			}
		}
	}
	for _, m := range quick {
		if !fullNames[m.Name] {
			t.Errorf("quick row %s not part of the full matrix", m.Name)
		}
		if strings.Contains(m.Name, "paper") {
			t.Errorf("quick fused matrix contains paper-scale row %s", m.Name)
		}
	}
	if _, err := (MatrixSpec{Group: "no-such-group"}).Configs(); err == nil {
		t.Error("unknown group accepted")
	}
}

// TestReadJSONAcceptsV1 keeps pre-matrix baselines loadable: the case gate
// still works against them, and the fused rows simply have no baseline.
func TestReadJSONAcceptsV1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.json")
	v1 := &Report{Schema: "softcache-perf/v1", Cases: []Measurement{{
		CaseSpec:    CaseSpec{Name: "MV/test/vl0/bb0"},
		NsPerRecord: 10,
	}}}
	if err := WriteJSON(path, v1); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(path)
	if err != nil {
		t.Fatalf("v1 baseline rejected: %v", err)
	}
	if len(loaded.Matrix) != 0 || len(loaded.Cases) != 1 {
		t.Fatalf("v1 round trip: %+v", loaded)
	}
	cur := &Report{Schema: SchemaID,
		Cases:  []Measurement{{CaseSpec: CaseSpec{Name: "MV/test/vl0/bb0"}, NsPerRecord: 30}},
		Matrix: []MatrixMeasurement{{MatrixSpec: MatrixSpec{Name: "fused/x"}, FusedNsPerRecord: 5}},
	}
	if err := Gate(loaded, cur, 0.15); err == nil {
		t.Fatal("case regression against v1 baseline passed the gate")
	}
	if err := Gate(loaded, &Report{Schema: SchemaID, Matrix: cur.Matrix}, 0.15); err != nil {
		t.Fatalf("fused rows without v1 baseline tripped the gate: %v", err)
	}
}

func TestReadJSONRejectsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := WriteJSON(path, &Report{Schema: "something/else"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(path); err == nil {
		t.Fatal("foreign schema accepted")
	}
}
