package perf

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"softcache/internal/cache"
)

func TestMatrixPinned(t *testing.T) {
	full := Matrix(false)
	quick := Matrix(true)
	if len(full) != 12 {
		t.Fatalf("full matrix has %d cases, want 12 (2 scales x 3 virtual-line sizes x bb on/off)", len(full))
	}
	if len(quick) != 6 {
		t.Fatalf("quick matrix has %d cases, want 6", len(quick))
	}
	fullNames := map[string]bool{}
	for _, s := range full {
		if fullNames[s.Name] {
			t.Fatalf("duplicate case name %q", s.Name)
		}
		fullNames[s.Name] = true
		if _, err := cache.New(s.Config()); err != nil {
			t.Errorf("case %s has invalid config: %v", s.Name, err)
		}
	}
	for _, s := range quick {
		if !fullNames[s.Name] {
			t.Errorf("quick case %s not part of the full matrix", s.Name)
		}
		if strings.Contains(s.Name, "paper") {
			t.Errorf("quick matrix contains paper-scale case %s", s.Name)
		}
	}
}

func TestRunnerReportAndGate(t *testing.T) {
	specs := Matrix(true)[:2]
	r := Runner{MinIters: 1, MinTime: time.Millisecond}
	report, err := r.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Cases) != len(specs) {
		t.Fatalf("got %d cases, want %d", len(report.Cases), len(specs))
	}
	for _, c := range report.Cases {
		if c.Records <= 0 || c.Iters <= 0 || c.NsPerRecord <= 0 || c.RecordsPerSec <= 0 || c.AMAT <= 0 {
			t.Errorf("case %s has implausible measurement: %+v", c.Name, c)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
	if err := WriteJSON(path, report); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Cases) != len(report.Cases) || loaded.Schema != SchemaID {
		t.Fatalf("round trip lost data: %+v", loaded)
	}

	// Identical runs pass any gate; a doubled ns/record must trip it.
	if err := Gate(loaded, report, 0.15); err != nil {
		t.Fatalf("identical reports tripped the gate: %v", err)
	}
	slow := *report
	slow.Cases = append([]Measurement(nil), report.Cases...)
	slow.Cases[0].NsPerRecord *= 2
	err = Gate(loaded, &slow, 0.15)
	if err == nil {
		t.Fatal("2x regression passed the 15% gate")
	}
	if !strings.Contains(err.Error(), slow.Cases[0].Name) {
		t.Fatalf("gate error does not name the regressed case: %v", err)
	}

	// New cases (absent from the baseline) never trip the gate.
	extra := slow.Cases[0]
	extra.Name = "synthetic/new-case"
	fresh := *report
	fresh.Cases = append(append([]Measurement(nil), report.Cases...), extra)
	if err := Gate(loaded, &fresh, 0.15); err != nil {
		t.Fatalf("baseline-less case tripped the gate: %v", err)
	}

	mdPlain := Markdown(nil, report)
	mdDelta := Markdown(loaded, report)
	for _, c := range report.Cases {
		if !strings.Contains(mdPlain, c.Name) || !strings.Contains(mdDelta, c.Name) {
			t.Errorf("markdown report missing case %s", c.Name)
		}
	}
	if !strings.Contains(mdDelta, "Δ ns/record") {
		t.Error("delta report lacks the delta column")
	}
}

func TestReadJSONRejectsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := WriteJSON(path, &Report{Schema: "something/else"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(path); err == nil {
		t.Fatal("foreign schema accepted")
	}
}
