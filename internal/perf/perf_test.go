package perf

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"softcache/internal/cache"
	"softcache/internal/workloads"
)

// testShardedGroup is a test-scale sharded group (the pinned matrix is
// paper-scale, too slow for unit tests).
func testShardedGroup(config string, counts ...int) []ShardedSpec {
	var specs []ShardedSpec
	for _, shards := range counts {
		s := ShardedSpec{
			Workload:  "MV",
			Scale:     workloads.ScaleTest,
			ScaleName: workloads.ScaleTest.String(),
			Config:    config,
			Shards:    shards,
		}
		s.Name = fmt.Sprintf("%s/s%d", s.groupKey(), shards)
		specs = append(specs, s)
	}
	return specs
}

func TestMatrixPinned(t *testing.T) {
	full := Matrix(false)
	quick := Matrix(true)
	if len(full) != 12 {
		t.Fatalf("full matrix has %d cases, want 12 (2 scales x 3 virtual-line sizes x bb on/off)", len(full))
	}
	if len(quick) != 6 {
		t.Fatalf("quick matrix has %d cases, want 6", len(quick))
	}
	fullNames := map[string]bool{}
	for _, s := range full {
		if fullNames[s.Name] {
			t.Fatalf("duplicate case name %q", s.Name)
		}
		fullNames[s.Name] = true
		if _, err := cache.New(s.Config()); err != nil {
			t.Errorf("case %s has invalid config: %v", s.Name, err)
		}
	}
	for _, s := range quick {
		if !fullNames[s.Name] {
			t.Errorf("quick case %s not part of the full matrix", s.Name)
		}
		if strings.Contains(s.Name, "paper") {
			t.Errorf("quick matrix contains paper-scale case %s", s.Name)
		}
	}
}

func TestRunnerReportAndGate(t *testing.T) {
	specs := Matrix(true)[:2]
	fused := FusedMatrix(true)[:1]
	sharded := testShardedGroup("standard", 1, 2)
	decode := DecodeMatrix(true)[:2]
	r := Runner{MinIters: 1, MinTime: time.Millisecond}
	report, err := r.Run(context.Background(), specs, fused, sharded, decode)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Cases) != len(specs) {
		t.Fatalf("got %d cases, want %d", len(report.Cases), len(specs))
	}
	for _, c := range report.Cases {
		if c.Records <= 0 || c.Iters <= 0 || c.NsPerRecord <= 0 || c.RecordsPerSec <= 0 || c.AMAT <= 0 {
			t.Errorf("case %s has implausible measurement: %+v", c.Name, c)
		}
	}
	if len(report.Matrix) != len(fused) {
		t.Fatalf("got %d matrix rows, want %d", len(report.Matrix), len(fused))
	}
	for _, m := range report.Matrix {
		if m.Configs <= 1 || m.Records <= 0 || m.Iters <= 0 ||
			m.FusedNsPerRecord <= 0 || m.LoopNsPerRecord <= 0 || m.Speedup <= 0 || m.MeanAMAT <= 0 {
			t.Errorf("matrix row %s has implausible measurement: %+v", m.Name, m)
		}
	}
	if len(report.Sharded) != len(sharded) {
		t.Fatalf("got %d sharded rows, want %d", len(report.Sharded), len(sharded))
	}
	var seqAMAT float64
	for _, s := range report.Sharded {
		if s.Records <= 0 || s.Iters <= 0 || s.NsPerRecord <= 0 || s.RecordsPerSec <= 0 ||
			s.AMAT <= 0 || s.Speedup <= 0 || s.EffectiveShards < 1 {
			t.Errorf("sharded row %s has implausible measurement: %+v", s.Name, s)
		}
		if !s.Exact {
			t.Errorf("sharded row %s: the standard config must plan exactly", s.Name)
		}
		if s.Shards == 1 {
			seqAMAT = s.AMAT
		}
	}
	// Exact rows are behaviour-identical: the AMAT fingerprint must not
	// move across shard counts.
	for _, s := range report.Sharded {
		if s.AMAT != seqAMAT {
			t.Errorf("sharded row %s: AMAT %v differs from sequential %v on an exact plan", s.Name, s.AMAT, seqAMAT)
		}
	}
	if len(report.Decode) != len(decode) {
		t.Fatalf("got %d decode rows, want %d", len(report.Decode), len(decode))
	}
	for _, d := range report.Decode {
		if d.Records <= 0 || d.Iters <= 0 || d.FlatBytes <= 0 || d.SCTZBytes <= 0 ||
			d.Compression <= 0 || d.FlatNsPerRecord <= 0 || d.SCTZNsPerRecord <= 0 || d.Ratio <= 0 {
			t.Errorf("decode row %s has implausible measurement: %+v", d.Name, d)
		}
		if d.SCTZBytes >= d.FlatBytes {
			t.Errorf("decode row %s: sctz %d bytes not smaller than flat %d", d.Name, d.SCTZBytes, d.FlatBytes)
		}
	}
	// Pin the decode timings before the gate checks: the absolute
	// corpus-weighted sctz<=flat gate reads the measured numbers, and
	// millisecond test-scale runs are too noisy to promise that here.
	for i := range report.Decode {
		report.Decode[i].FlatNsPerRecord = 10
		report.Decode[i].SCTZNsPerRecord = 8
		report.Decode[i].Ratio = 0.8
	}

	path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
	if err := WriteJSON(path, report); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Cases) != len(report.Cases) || loaded.Schema != SchemaID {
		t.Fatalf("round trip lost data: %+v", loaded)
	}

	// Identical runs pass any gate; a doubled ns/record must trip it.
	if err := Gate(loaded, report, 0.15); err != nil {
		t.Fatalf("identical reports tripped the gate: %v", err)
	}
	slow := *report
	slow.Cases = append([]Measurement(nil), report.Cases...)
	slow.Cases[0].NsPerRecord *= 2
	err = Gate(loaded, &slow, 0.15)
	if err == nil {
		t.Fatal("2x regression passed the 15% gate")
	}
	if !strings.Contains(err.Error(), slow.Cases[0].Name) {
		t.Fatalf("gate error does not name the regressed case: %v", err)
	}

	// New cases (absent from the baseline) never trip the gate.
	extra := slow.Cases[0]
	extra.Name = "synthetic/new-case"
	fresh := *report
	fresh.Cases = append(append([]Measurement(nil), report.Cases...), extra)
	if err := Gate(loaded, &fresh, 0.15); err != nil {
		t.Fatalf("baseline-less case tripped the gate: %v", err)
	}

	// A fused-matrix regression trips the gate too.
	slowMatrix := *report
	slowMatrix.Cases = append([]Measurement(nil), report.Cases...)
	slowMatrix.Matrix = append([]MatrixMeasurement(nil), report.Matrix...)
	slowMatrix.Matrix[0].FusedNsPerRecord *= 2
	err = Gate(loaded, &slowMatrix, 0.15)
	if err == nil {
		t.Fatal("2x fused regression passed the 15% gate")
	}
	if !strings.Contains(err.Error(), slowMatrix.Matrix[0].Name) {
		t.Fatalf("gate error does not name the regressed matrix row: %v", err)
	}

	// A sharded-row regression trips the gate too.
	slowSharded := *report
	slowSharded.Cases = append([]Measurement(nil), report.Cases...)
	slowSharded.Sharded = append([]ShardedMeasurement(nil), report.Sharded...)
	slowSharded.Sharded[0].NsPerRecord *= 2
	err = Gate(loaded, &slowSharded, 0.15)
	if err == nil {
		t.Fatal("2x sharded regression passed the 15% gate")
	}
	if !strings.Contains(err.Error(), slowSharded.Sharded[0].Name) {
		t.Fatalf("gate error does not name the regressed sharded row: %v", err)
	}

	// A decode-row sctz regression trips the gate too.
	slowDecode := *report
	slowDecode.Cases = append([]Measurement(nil), report.Cases...)
	slowDecode.Decode = append([]DecodeMeasurement(nil), report.Decode...)
	slowDecode.Decode[0].SCTZNsPerRecord *= 2
	err = Gate(loaded, &slowDecode, 0.15)
	if err == nil {
		t.Fatal("2x sctz decode regression passed the 15% gate")
	}
	if !strings.Contains(err.Error(), slowDecode.Decode[0].Name) {
		t.Fatalf("gate error does not name the regressed decode row: %v", err)
	}

	// The corpus-weighted sctz<=flat budget is absolute: even against an
	// identical baseline (no relative regression at all), sctz decoding
	// slower than flat on the paper-scale corpus fails the suite.
	overBudget := *report
	overBudget.Decode = append([]DecodeMeasurement(nil), report.Decode...)
	for i := range overBudget.Decode {
		overBudget.Decode[i].ScaleName = workloads.ScalePaper.String()
		overBudget.Decode[i].SCTZNsPerRecord = overBudget.Decode[i].FlatNsPerRecord * 1.05
		overBudget.Decode[i].Ratio = 1.05
	}
	err = Gate(&overBudget, &overBudget, 0.15)
	if err == nil {
		t.Fatal("sctz above the flat corpus-weighted budget passed the gate")
	}
	if !strings.Contains(err.Error(), "corpus-weighted") {
		t.Fatalf("gate error does not name the corpus-weighted budget: %v", err)
	}

	mdPlain := Markdown(nil, report)
	mdDelta := Markdown(loaded, report)
	for _, c := range report.Cases {
		if !strings.Contains(mdPlain, c.Name) || !strings.Contains(mdDelta, c.Name) {
			t.Errorf("markdown report missing case %s", c.Name)
		}
	}
	for _, m := range report.Matrix {
		if !strings.Contains(mdPlain, m.Name) || !strings.Contains(mdDelta, m.Name) {
			t.Errorf("markdown report missing matrix row %s", m.Name)
		}
	}
	for _, s := range report.Sharded {
		if !strings.Contains(mdPlain, s.Name) || !strings.Contains(mdDelta, s.Name) {
			t.Errorf("markdown report missing sharded row %s", s.Name)
		}
	}
	for _, d := range report.Decode {
		if !strings.Contains(mdPlain, d.Name) || !strings.Contains(mdDelta, d.Name) {
			t.Errorf("markdown report missing decode row %s", d.Name)
		}
	}
	if !strings.Contains(mdPlain, "Set-sharded kernel") {
		t.Error("report lacks the sharded section")
	}
	if !strings.Contains(mdPlain, "Trace codec decode matrix") || !strings.Contains(mdPlain, "Corpus-weighted:") {
		t.Error("report lacks the decode section or its corpus-weighted summary")
	}
	if !strings.Contains(mdDelta, "Δ ns/record") {
		t.Error("delta report lacks the delta column")
	}
	if !strings.Contains(mdDelta, "speedup") {
		t.Error("report lacks the fused speedup column")
	}
}

// TestFusedMatrixPinned mirrors TestMatrixPinned for the fused rows: names
// are unique, quick is a subset of full, and every group builds.
func TestFusedMatrixPinned(t *testing.T) {
	full := FusedMatrix(false)
	quick := FusedMatrix(true)
	if len(full) != 6 {
		t.Fatalf("full fused matrix has %d rows, want 6 (2 scales x 3 groups)", len(full))
	}
	if len(quick) != 3 {
		t.Fatalf("quick fused matrix has %d rows, want 3", len(quick))
	}
	fullNames := map[string]bool{}
	for _, m := range full {
		if fullNames[m.Name] {
			t.Fatalf("duplicate fused row name %q", m.Name)
		}
		fullNames[m.Name] = true
		cfgs, err := m.Configs()
		if err != nil {
			t.Fatalf("row %s: %v", m.Name, err)
		}
		if len(cfgs) < 2 {
			t.Fatalf("row %s has %d configs; fusion needs at least 2", m.Name, len(cfgs))
		}
		for i, cfg := range cfgs {
			if _, err := cache.New(cfg); err != nil {
				t.Errorf("row %s config %d invalid: %v", m.Name, i, err)
			}
		}
	}
	for _, m := range quick {
		if !fullNames[m.Name] {
			t.Errorf("quick row %s not part of the full matrix", m.Name)
		}
		if strings.Contains(m.Name, "paper") {
			t.Errorf("quick fused matrix contains paper-scale row %s", m.Name)
		}
	}
	if _, err := (MatrixSpec{Group: "no-such-group"}).Configs(); err == nil {
		t.Error("unknown group accepted")
	}
}

// TestShardedMatrixPinned mirrors TestMatrixPinned for the sharded rows:
// names are unique, every config builds and plans, the shards=1 speedup
// denominator is present in every group, and the cap semantics hold.
func TestShardedMatrixPinned(t *testing.T) {
	if got := ShardedMatrix(0); got != nil {
		t.Fatalf("ShardedMatrix(0) = %d rows, want none", len(got))
	}
	four := ShardedMatrix(4)
	if len(four) != 6 {
		t.Fatalf("ShardedMatrix(4) has %d rows, want 6 (2 configs x shards {1,2,4})", len(four))
	}
	names := map[string]bool{}
	ones := map[string]bool{}
	for _, s := range four {
		if names[s.Name] {
			t.Fatalf("duplicate sharded row name %q", s.Name)
		}
		names[s.Name] = true
		if !strings.Contains(s.Name, "paper") {
			t.Errorf("sharded row %s is not paper-scale", s.Name)
		}
		cfg, err := s.BuildConfig()
		if err != nil {
			t.Fatalf("row %s: %v", s.Name, err)
		}
		if _, err := cache.PlanShards(cfg, s.Shards); err != nil {
			t.Errorf("row %s does not plan: %v", s.Name, err)
		}
		if s.Shards == 1 {
			ones[s.groupKey()] = true
		}
	}
	for _, s := range four {
		if !ones[s.groupKey()] {
			t.Errorf("group %s lacks its shards=1 speedup denominator", s.groupKey())
		}
	}
	if got := ShardedMatrix(2); len(got) != 4 {
		t.Errorf("ShardedMatrix(2) has %d rows, want 4", len(got))
	}
	// A wide host appends its own full-width row.
	wide := ShardedMatrix(8)
	found := false
	for _, s := range wide {
		if s.Shards == 8 {
			found = true
		}
	}
	if !found || len(wide) != 8 {
		t.Errorf("ShardedMatrix(8) = %d rows (s8 present: %v), want 8 rows with s8", len(wide), found)
	}
	if _, err := (ShardedSpec{Config: "no-such"}).BuildConfig(); err == nil {
		t.Error("unknown sharded config accepted")
	}
}

// TestDecodeMatrixPinned mirrors TestMatrixPinned for the decode rows:
// names are unique, quick is the test-scale subset of full, and every
// workload names a known corpus trace.
func TestDecodeMatrixPinned(t *testing.T) {
	full := DecodeMatrix(false)
	quick := DecodeMatrix(true)
	if len(full) != 6 {
		t.Fatalf("full decode matrix has %d rows, want 6 (2 scales x 3 workloads)", len(full))
	}
	if len(quick) != 3 {
		t.Fatalf("quick decode matrix has %d rows, want 3", len(quick))
	}
	fullNames := map[string]bool{}
	for _, d := range full {
		if fullNames[d.Name] {
			t.Fatalf("duplicate decode row name %q", d.Name)
		}
		fullNames[d.Name] = true
		if _, err := workloads.Get(d.Workload); err != nil {
			t.Errorf("row %s names unknown workload: %v", d.Name, err)
		}
	}
	for _, d := range quick {
		if !fullNames[d.Name] {
			t.Errorf("quick row %s not part of the full matrix", d.Name)
		}
		if strings.Contains(d.Name, "paper") {
			t.Errorf("quick decode matrix contains paper-scale row %s", d.Name)
		}
	}
}

// TestReadJSONAcceptsV3 keeps pre-decode baselines loadable: cases, fused
// and sharded rows still gate, decode rows are simply baseline-less (the
// absolute corpus-weighted budget still applies to the current run).
func TestReadJSONAcceptsV3(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v3.json")
	v3 := &Report{Schema: "softcache-perf/v3",
		Cases:   []Measurement{{CaseSpec: CaseSpec{Name: "MV/test/vl0/bb0"}, NsPerRecord: 10}},
		Sharded: []ShardedMeasurement{{ShardedSpec: ShardedSpec{Name: "sharded/x/s4"}, NsPerRecord: 3}},
	}
	if err := WriteJSON(path, v3); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(path)
	if err != nil {
		t.Fatalf("v3 baseline rejected: %v", err)
	}
	cur := &Report{Schema: SchemaID,
		Cases:   v3.Cases,
		Sharded: []ShardedMeasurement{{ShardedSpec: ShardedSpec{Name: "sharded/x/s4"}, NsPerRecord: 9}},
		Decode: []DecodeMeasurement{{
			DecodeSpec:      DecodeSpec{Name: "decode/MV/test"},
			Records:         100,
			FlatNsPerRecord: 10, SCTZNsPerRecord: 8, Ratio: 0.8,
		}},
	}
	if err := Gate(loaded, cur, 0.15); err == nil {
		t.Fatal("sharded regression against v3 baseline passed the gate")
	}
	if err := Gate(loaded, &Report{Schema: SchemaID, Decode: cur.Decode}, 0.15); err != nil {
		t.Fatalf("decode rows without v3 baseline tripped the gate: %v", err)
	}
}

// TestReadJSONAcceptsV2 keeps pre-sharded baselines loadable: cases and
// fused rows still gate, sharded rows are simply baseline-less.
func TestReadJSONAcceptsV2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v2.json")
	v2 := &Report{Schema: "softcache-perf/v2",
		Cases:  []Measurement{{CaseSpec: CaseSpec{Name: "MV/test/vl0/bb0"}, NsPerRecord: 10}},
		Matrix: []MatrixMeasurement{{MatrixSpec: MatrixSpec{Name: "fused/x"}, FusedNsPerRecord: 5}},
	}
	if err := WriteJSON(path, v2); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(path)
	if err != nil {
		t.Fatalf("v2 baseline rejected: %v", err)
	}
	cur := &Report{Schema: SchemaID,
		Cases:   v2.Cases,
		Matrix:  []MatrixMeasurement{{MatrixSpec: MatrixSpec{Name: "fused/x"}, FusedNsPerRecord: 20}},
		Sharded: []ShardedMeasurement{{ShardedSpec: ShardedSpec{Name: "sharded/x/s4"}, NsPerRecord: 3}},
	}
	if err := Gate(loaded, cur, 0.15); err == nil {
		t.Fatal("fused regression against v2 baseline passed the gate")
	}
	if err := Gate(loaded, &Report{Schema: SchemaID, Sharded: cur.Sharded}, 0.15); err != nil {
		t.Fatalf("sharded rows without v2 baseline tripped the gate: %v", err)
	}
}

// TestReadJSONAcceptsV1 keeps pre-matrix baselines loadable: the case gate
// still works against them, and the fused rows simply have no baseline.
func TestReadJSONAcceptsV1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.json")
	v1 := &Report{Schema: "softcache-perf/v1", Cases: []Measurement{{
		CaseSpec:    CaseSpec{Name: "MV/test/vl0/bb0"},
		NsPerRecord: 10,
	}}}
	if err := WriteJSON(path, v1); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(path)
	if err != nil {
		t.Fatalf("v1 baseline rejected: %v", err)
	}
	if len(loaded.Matrix) != 0 || len(loaded.Cases) != 1 {
		t.Fatalf("v1 round trip: %+v", loaded)
	}
	cur := &Report{Schema: SchemaID,
		Cases:  []Measurement{{CaseSpec: CaseSpec{Name: "MV/test/vl0/bb0"}, NsPerRecord: 30}},
		Matrix: []MatrixMeasurement{{MatrixSpec: MatrixSpec{Name: "fused/x"}, FusedNsPerRecord: 5}},
	}
	if err := Gate(loaded, cur, 0.15); err == nil {
		t.Fatal("case regression against v1 baseline passed the gate")
	}
	if err := Gate(loaded, &Report{Schema: SchemaID, Matrix: cur.Matrix}, 0.15); err != nil {
		t.Fatalf("fused rows without v1 baseline tripped the gate: %v", err)
	}
}

func TestReadJSONRejectsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := WriteJSON(path, &Report{Schema: "something/else"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(path); err == nil {
		t.Fatal("foreign schema accepted")
	}
}
