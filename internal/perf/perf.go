// Package perf is the kernel performance-regression suite: a pinned
// benchmark matrix over the streaming simulation kernel (trace size ×
// virtual-line size × bounce-back on/off), run through the experiment
// harness and emitted as machine-readable JSON (BENCH_kernel.json) plus a
// markdown delta report against a previous run.
//
// The matrix is deliberately small and fixed: its job is not design-space
// exploration (softcache-sweep does that) but catching throughput and
// allocation regressions in the hot loop — Reader.ReadBatch, the
// direct-mapped hit path, the miss/eviction scan — under the mechanisms
// that stress each of them.
package perf

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"softcache/internal/core"
	"softcache/internal/harness"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// CaseSpec is one pinned point of the benchmark matrix.
type CaseSpec struct {
	Name        string          `json:"name"`
	Workload    string          `json:"workload"`
	Scale       workloads.Scale `json:"-"`
	ScaleName   string          `json:"scale"`
	VirtualLine int             `json:"virtual_line"` // bytes; 0 = plain lines
	BounceBack  bool            `json:"bounce_back"`
}

// Config builds the design point for the case: the paper's soft cache with
// the virtual-line and bounce-back axes set per the spec.
func (c CaseSpec) Config() core.Config {
	cfg := core.Soft()
	cfg.VirtualLineSize = c.VirtualLine
	cfg.UseSpatialTags = c.VirtualLine > core.DefaultLineSize
	if !c.BounceBack {
		cfg.BounceBackLines = 0
		cfg.BounceBackEnabled = false
		cfg.UseTemporalTags = false
		cfg.BounceBackCycles = 0
		cfg.SwapLockCycles = 0
	}
	return cfg
}

// MatrixSpec is one pinned fused-matrix point: a config group simulated
// over one (workload, scale) trace both fused (core.SimulateMany — one
// decode pass feeds every config) and looped (one SimulateStream pass per
// config). The pair quantifies the decode amortisation the fused kernel
// buys, and pins it against regression.
type MatrixSpec struct {
	Name      string          `json:"name"`
	Workload  string          `json:"workload"`
	Scale     workloads.Scale `json:"-"`
	ScaleName string          `json:"scale"`
	Group     string          `json:"group"`
}

// Configs builds the spec's config group. Group ids are pinned: the same
// name always denotes the same ordered config list, so baseline rows stay
// comparable across runs.
func (m MatrixSpec) Configs() ([]core.Config, error) {
	switch m.Group {
	case "size-line-12":
		// The joint cache-size x line-size axis of the paper's standard
		// cache: a hit-dominated group where decode is a large share of
		// the record budget, so fusion pays the most.
		var cfgs []core.Config
		for _, kb := range []int{32, 64, 128, 256} {
			for _, ln := range []int{32, 64, 128} {
				cfg := core.Standard()
				cfg.CacheSize = kb << 10
				cfg.LineSize = ln
				cfgs = append(cfgs, cfg)
			}
		}
		return cfgs, nil
	case "cache-size-6":
		// Figure 3's cache-size axis on the standard cache.
		var cfgs []core.Config
		for _, kb := range []int{8, 16, 32, 64, 128, 256} {
			cfg := core.Standard()
			cfg.CacheSize = kb << 10
			cfgs = append(cfgs, cfg)
		}
		return cfgs, nil
	case "soft-matrix-6":
		// The case matrix's own axes (virtual line x bounce-back) on the
		// soft cache: a miss- and mechanism-heavy group where simulation
		// dominates and fusion helps least. Kept as the honest lower
		// bound of the speedup column.
		var cfgs []core.Config
		for _, vl := range []int{0, 64, 256} {
			for _, bb := range []bool{false, true} {
				cfgs = append(cfgs, CaseSpec{VirtualLine: vl, BounceBack: bb}.Config())
			}
		}
		return cfgs, nil
	default:
		return nil, fmt.Errorf("perf: unknown fused matrix group %q", m.Group)
	}
}

// FusedMatrix returns the pinned fused-vs-looped matrix. quick drops the
// paper-scale rows, mirroring Matrix.
func FusedMatrix(quick bool) []MatrixSpec {
	scales := []workloads.Scale{workloads.ScaleTest, workloads.ScalePaper}
	if quick {
		scales = scales[:1]
	}
	rows := []struct{ workload, group string }{
		{"MDG", "size-line-12"},
		{"MV", "cache-size-6"},
		{"MV", "soft-matrix-6"},
	}
	var specs []MatrixSpec
	for _, scale := range scales {
		for _, r := range rows {
			s := MatrixSpec{
				Workload:  r.workload,
				Scale:     scale,
				ScaleName: scale.String(),
				Group:     r.group,
			}
			s.Name = fmt.Sprintf("fused/%s/%s/%s", s.Workload, s.ScaleName, s.Group)
			specs = append(specs, s)
		}
	}
	return specs
}

// ShardedSpec is one pinned point of the set-sharded matrix: a named
// configuration simulated through core.SimulateShardedStream at a fixed
// shard count. The shards=1 row of each group is the sequential kernel
// and the speedup denominator.
type ShardedSpec struct {
	Name      string          `json:"name"`
	Workload  string          `json:"workload"`
	Scale     workloads.Scale `json:"-"`
	ScaleName string          `json:"scale"`
	// Config names the pinned design point: "standard" (an exact
	// sharding plan) or "soft" (coupled structures, bounded divergence).
	Config string `json:"config"`
	Shards int    `json:"shards"`
}

// BuildConfig resolves the spec's pinned configuration name.
func (s ShardedSpec) BuildConfig() (core.Config, error) {
	switch s.Config {
	case "standard":
		return core.Standard(), nil
	case "soft":
		return core.Soft(), nil
	default:
		return core.Config{}, fmt.Errorf("perf: unknown sharded config %q", s.Config)
	}
}

// groupKey identifies the interleaved measurement group: every shard
// count of one (workload, scale, config) is timed in one harness unit.
func (s ShardedSpec) groupKey() string {
	return fmt.Sprintf("sharded/%s/%s/%s", s.Workload, s.ScaleName, s.Config)
}

// ShardedMatrix returns the pinned sharded matrix: MV at paper scale
// (sharding exists for big single-config runs; there is no quick
// variant) on the standard (exact) and soft (coupled) designs, at shard
// counts 1, 2, 4 capped by maxShards — plus maxShards itself when it
// exceeds 4, so a wide host records its full scaling row. maxShards <=
// 0 disables the matrix.
func ShardedMatrix(maxShards int) []ShardedSpec {
	if maxShards <= 0 {
		return nil
	}
	counts := []int{1}
	for _, c := range []int{2, 4} {
		if c <= maxShards {
			counts = append(counts, c)
		}
	}
	if maxShards > 4 {
		counts = append(counts, maxShards)
	}
	var specs []ShardedSpec
	for _, config := range []string{"standard", "soft"} {
		for _, shards := range counts {
			s := ShardedSpec{
				Workload:  "MV",
				Scale:     workloads.ScalePaper,
				ScaleName: workloads.ScalePaper.String(),
				Config:    config,
				Shards:    shards,
			}
			s.Name = fmt.Sprintf("%s/s%d", s.groupKey(), shards)
			specs = append(specs, s)
		}
	}
	return specs
}

// Matrix returns the pinned benchmark matrix. quick drops the paper-scale
// rows (CI smoke runs); the full matrix is the release measurement.
func Matrix(quick bool) []CaseSpec {
	scales := []workloads.Scale{workloads.ScaleTest, workloads.ScalePaper}
	if quick {
		scales = scales[:1]
	}
	var specs []CaseSpec
	for _, scale := range scales {
		for _, vl := range []int{0, 64, 256} {
			for _, bb := range []bool{false, true} {
				s := CaseSpec{
					Workload:    "MV",
					Scale:       scale,
					ScaleName:   scale.String(),
					VirtualLine: vl,
					BounceBack:  bb,
				}
				bbTag := "bb0"
				if bb {
					bbTag = "bb1"
				}
				s.Name = fmt.Sprintf("%s/%s/vl%d/%s", s.Workload, s.ScaleName, vl, bbTag)
				specs = append(specs, s)
			}
		}
	}
	return specs
}

// Measurement is the result of one case.
type Measurement struct {
	CaseSpec
	Records       int     `json:"records"`
	Iters         int     `json:"iters"`
	NsPerRecord   float64 `json:"ns_per_record"`
	RecordsPerSec float64 `json:"records_per_sec"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	// AMAT fingerprints the simulated behaviour: a perf run whose AMAT
	// moved did not just get slower, it changed results.
	AMAT float64 `json:"amat"`
}

// MatrixMeasurement is the result of one fused-matrix row: the whole
// config group's per-record cost under the fused kernel and under the
// per-config loop, and the wall-clock speedup between them.
type MatrixMeasurement struct {
	MatrixSpec
	Configs int `json:"configs"`
	Records int `json:"records"`
	Iters   int `json:"iters"`
	// FusedNsPerRecord and LoopNsPerRecord are normalised per record per
	// config, so they are comparable to the case matrix's ns_per_record.
	FusedNsPerRecord float64 `json:"fused_ns_per_record"`
	LoopNsPerRecord  float64 `json:"loop_ns_per_record"`
	// Speedup is loop wall-clock over fused wall-clock for the whole group.
	Speedup float64 `json:"speedup"`
	// AllocsPerOp counts allocations of one whole fused pass (simulator
	// construction included; the steady-state loop itself is alloc-free).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// MeanAMAT fingerprints behaviour across the group, like Measurement's
	// AMAT does for one config.
	MeanAMAT float64 `json:"mean_amat"`
}

// ShardedMeasurement is the result of one sharded-matrix row.
type ShardedMeasurement struct {
	ShardedSpec
	// EffectiveShards is the plan's actual shard count (cache.PlanShards
	// may clamp the requested one); Exact mirrors the plan's exactness.
	EffectiveShards int  `json:"effective_shards"`
	Exact           bool `json:"exact"`
	Records         int  `json:"records"`
	Iters           int  `json:"iters"`
	// NsPerRecord / RecordsPerSec are wall-clock, so they show the
	// parallel speedup directly (unlike the fused rows, which normalise
	// per config).
	NsPerRecord   float64 `json:"ns_per_record"`
	RecordsPerSec float64 `json:"records_per_sec"`
	// Speedup is this row's records/s over its group's shards=1 row,
	// measured interleaved in the same unit. Bounded by the host's CPU
	// count (the report's cpus field).
	Speedup float64 `json:"speedup"`
	// AllocsPerOp counts one whole sharded pass (simulators, router,
	// workers; the steady-state loop is alloc-free).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// AMAT fingerprints behaviour: exact rows must match the sequential
	// row's AMAT bit for bit, coupled rows stay within the divergence
	// bounds pinned in the refmodel suite.
	AMAT float64 `json:"amat"`
}

// Report is the whole suite's output, the schema of BENCH_kernel.json.
type Report struct {
	Schema    string        `json:"schema"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Quick     bool          `json:"quick"`
	Cases     []Measurement `json:"cases"`
	// Matrix holds the fused-vs-looped rows; absent in v1 reports.
	Matrix []MatrixMeasurement `json:"matrix,omitempty"`
	// Sharded holds the set-sharded kernel rows; absent before v3.
	Sharded []ShardedMeasurement `json:"sharded,omitempty"`
	// Decode holds the trace-codec rows (flat vs SCTZ streaming decode);
	// absent before v4.
	Decode []DecodeMeasurement `json:"decode,omitempty"`
}

// SchemaID identifies the BENCH_kernel.json layout this package writes.
// v4 added the decode matrix (flat vs SCTZ codec rows); v3 (no decode
// rows), v2 (no sharded rows either) and v1 (cases only) still load.
const SchemaID = "softcache-perf/v4"

// schemaV3 added the set-sharded rows.
const schemaV3 = "softcache-perf/v3"

// schemaV2 added the fused matrix rows to v1's cases.
const schemaV2 = "softcache-perf/v2"

// schemaV1 is the original layout: the case matrix alone. ReadJSON
// keeps accepting old schemas so pre-bump baselines gate what they have.
const schemaV1 = "softcache-perf/v1"

// Runner executes the matrix. The zero value uses sensible defaults.
type Runner struct {
	// MinIters and MinTime bound each case's measurement loop from below:
	// the loop runs until both are met. Zero values default to 3 iterations
	// and 300ms (1 and 50ms in quick runs — set them explicitly).
	MinIters int
	MinTime  time.Duration
	// Seed selects the workload trace seed (0 = 1, the paper's).
	Seed uint64
	// Log receives one-line progress notes when non-nil.
	Log io.Writer
}

// Run measures every case of the matrix sequentially (Workers is pinned to
// 1: timing runs must not share the machine with each other) through the
// experiment harness, so a panicking or failing case yields a structured
// failure record instead of torpedoing the suite. The fused rows are
// measured after the cases, one harness unit per (workload, config-group),
// the sharded rows next, one unit per (workload, scale, config) with all
// of that group's shard counts interleaved, and the decode rows last, one
// unit per corpus trace with both codecs interleaved.
func (r Runner) Run(ctx context.Context, specs []CaseSpec, fused []MatrixSpec, sharded []ShardedSpec, decode []DecodeSpec) (*Report, error) {
	minIters := r.MinIters
	if minIters <= 0 {
		minIters = 3
	}
	minTime := r.MinTime
	if minTime <= 0 {
		minTime = 300 * time.Millisecond
	}
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}

	// Encode each distinct (workload, scale) trace once; every case replays
	// the same bytes through trace.NewReaderBytes, so the measurement sees
	// the full streaming path (header parse, batched decode, simulate).
	encoded := map[string][]byte{}
	records := map[string]int{}
	ensureTrace := func(workload, scaleName string, scale workloads.Scale) error {
		key := workload + "/" + scaleName
		if _, ok := encoded[key]; ok {
			return nil
		}
		tr, err := workloads.Trace(workload, scale, seed)
		if err != nil {
			return fmt.Errorf("perf: generating %s: %w", key, err)
		}
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			return fmt.Errorf("perf: encoding %s: %w", key, err)
		}
		encoded[key] = buf.Bytes()
		records[key] = len(tr.Records)
		return nil
	}
	for _, s := range specs {
		if err := ensureTrace(s.Workload, s.ScaleName, s.Scale); err != nil {
			return nil, err
		}
	}
	for _, m := range fused {
		if err := ensureTrace(m.Workload, m.ScaleName, m.Scale); err != nil {
			return nil, err
		}
	}
	for _, s := range sharded {
		if err := ensureTrace(s.Workload, s.ScaleName, s.Scale); err != nil {
			return nil, err
		}
	}
	// Decode rows need both encodings of their corpus trace.
	encodedZ := map[string][]byte{}
	for _, d := range decode {
		key := d.Workload + "/" + d.ScaleName
		if err := ensureTrace(d.Workload, d.ScaleName, d.Scale); err != nil {
			return nil, err
		}
		if _, ok := encodedZ[key]; ok {
			continue
		}
		tr, err := workloads.Trace(d.Workload, d.Scale, seed)
		if err != nil {
			return nil, fmt.Errorf("perf: generating %s: %w", key, err)
		}
		var buf bytes.Buffer
		if err := trace.WriteSCTZ(&buf, tr); err != nil {
			return nil, fmt.Errorf("perf: encoding %s as sctz: %w", key, err)
		}
		encodedZ[key] = buf.Bytes()
	}

	units := make([]harness.Unit[Measurement], len(specs))
	for i, s := range specs {
		s := s
		key := s.Workload + "/" + s.ScaleName
		units[i] = harness.Unit[Measurement]{
			Key: s.Name,
			Meta: map[string]string{
				"workload": s.Workload,
				"scale":    s.ScaleName,
				"seed":     fmt.Sprint(seed),
			},
			Run: func(ctx context.Context) (Measurement, error) {
				return measure(ctx, s, encoded[key], records[key], minIters, minTime)
			},
		}
	}
	results, err := harness.Run(ctx, units, harness.Options{Workers: 1, Log: r.Log})
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}

	matrixUnits := make([]harness.Unit[MatrixMeasurement], len(fused))
	for i, m := range fused {
		m := m
		key := m.Workload + "/" + m.ScaleName
		matrixUnits[i] = harness.Unit[MatrixMeasurement]{
			Key: m.Name,
			Meta: map[string]string{
				"workload": m.Workload,
				"scale":    m.ScaleName,
				"group":    m.Group,
				"seed":     fmt.Sprint(seed),
			},
			Run: func(ctx context.Context) (MatrixMeasurement, error) {
				return measureMatrix(ctx, m, encoded[key], records[key], minIters, minTime)
			},
		}
	}
	matrixResults, err := harness.Run(ctx, matrixUnits, harness.Options{Workers: 1, Log: r.Log})
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}

	// Group the sharded specs so every shard count of one configuration
	// is measured interleaved inside one unit (drift biases no count).
	shardGroups := map[string][]ShardedSpec{}
	var shardGroupOrder []string
	for _, s := range sharded {
		k := s.groupKey()
		if _, ok := shardGroups[k]; !ok {
			shardGroupOrder = append(shardGroupOrder, k)
		}
		shardGroups[k] = append(shardGroups[k], s)
	}
	shardedUnits := make([]harness.Unit[[]ShardedMeasurement], len(shardGroupOrder))
	for i, k := range shardGroupOrder {
		group := shardGroups[k]
		key := group[0].Workload + "/" + group[0].ScaleName
		shardedUnits[i] = harness.Unit[[]ShardedMeasurement]{
			Key: k,
			Meta: map[string]string{
				"workload": group[0].Workload,
				"scale":    group[0].ScaleName,
				"config":   group[0].Config,
				"seed":     fmt.Sprint(seed),
			},
			Run: func(ctx context.Context) ([]ShardedMeasurement, error) {
				return measureSharded(ctx, group, encoded[key], records[key], minIters, minTime)
			},
		}
	}
	shardedResults, err := harness.Run(ctx, shardedUnits, harness.Options{Workers: 1, Log: r.Log})
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}

	decodeUnits := make([]harness.Unit[DecodeMeasurement], len(decode))
	for i, d := range decode {
		d := d
		key := d.Workload + "/" + d.ScaleName
		decodeUnits[i] = harness.Unit[DecodeMeasurement]{
			Key: d.Name,
			Meta: map[string]string{
				"workload": d.Workload,
				"scale":    d.ScaleName,
				"seed":     fmt.Sprint(seed),
			},
			Run: func(ctx context.Context) (DecodeMeasurement, error) {
				return measureDecode(ctx, d, encoded[key], encodedZ[key], records[key], minIters, minTime)
			},
		}
	}
	decodeResults, err := harness.Run(ctx, decodeUnits, harness.Options{Workers: 1, Log: r.Log})
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}

	report := &Report{
		Schema:    SchemaID,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Cases:     make([]Measurement, 0, len(results)),
		Matrix:    make([]MatrixMeasurement, 0, len(matrixResults)),
	}
	var failures []string
	for _, res := range results {
		if !res.OK() {
			failures = append(failures, res.FailureRecord())
			continue
		}
		report.Cases = append(report.Cases, res.Value)
	}
	for _, res := range matrixResults {
		if !res.OK() {
			failures = append(failures, res.FailureRecord())
			continue
		}
		report.Matrix = append(report.Matrix, res.Value)
	}
	for _, res := range shardedResults {
		if !res.OK() {
			failures = append(failures, res.FailureRecord())
			continue
		}
		report.Sharded = append(report.Sharded, res.Value...)
	}
	for _, res := range decodeResults {
		if !res.OK() {
			failures = append(failures, res.FailureRecord())
			continue
		}
		report.Decode = append(report.Decode, res.Value)
	}
	if len(failures) > 0 {
		return report, fmt.Errorf("perf: %d case(s) failed:\n%s", len(failures), joinLines(failures))
	}
	return report, nil
}

// measure times repeated replays of the encoded trace through the
// streaming kernel and reads the allocator's counters around the loop.
func measure(ctx context.Context, spec CaseSpec, data []byte, n, minIters int, minTime time.Duration) (Measurement, error) {
	cfg := spec.Config()
	run := func() (core.Result, error) {
		tr, err := trace.NewReaderBytes(data)
		if err != nil {
			return core.Result{}, err
		}
		return core.SimulateStream(cfg, tr)
	}

	// Warm-up: page the trace in, grow the pools, JIT the branch history.
	last, err := run()
	if err != nil {
		return Measurement{}, err
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for iters < minIters || time.Since(start) < minTime {
		if err := ctx.Err(); err != nil {
			return Measurement{}, err
		}
		if last, err = run(); err != nil {
			return Measurement{}, err
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	totalRecords := float64(n) * float64(iters)
	m := Measurement{
		CaseSpec:      spec,
		Records:       n,
		Iters:         iters,
		NsPerRecord:   float64(elapsed.Nanoseconds()) / totalRecords,
		RecordsPerSec: totalRecords / elapsed.Seconds(),
		AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		AMAT:          last.AMAT(),
	}
	return m, nil
}

// measureMatrix times the fused kernel (one decode pass for the whole
// config group) against the per-config loop over the same encoded bytes,
// interleaving the two so drift (thermal, cache pressure from a neighbour)
// biases neither side.
func measureMatrix(ctx context.Context, spec MatrixSpec, data []byte, n, minIters int, minTime time.Duration) (MatrixMeasurement, error) {
	cfgs, err := spec.Configs()
	if err != nil {
		return MatrixMeasurement{}, err
	}
	fusedPass := func() ([]core.Result, error) {
		r, err := trace.NewReaderBytes(data)
		if err != nil {
			return nil, err
		}
		return core.SimulateMany(ctx, cfgs, r)
	}
	loopPass := func() error {
		for _, cfg := range cfgs {
			r, err := trace.NewReaderBytes(data)
			if err != nil {
				return err
			}
			if _, err := core.SimulateStream(cfg, r); err != nil {
				return err
			}
		}
		return nil
	}

	// Warm-up both paths.
	last, err := fusedPass()
	if err != nil {
		return MatrixMeasurement{}, err
	}
	if err := loopPass(); err != nil {
		return MatrixMeasurement{}, err
	}

	// Allocation count of one whole fused pass, measured in isolation so
	// the loop pass's own allocations don't blur it.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if last, err = fusedPass(); err != nil {
		return MatrixMeasurement{}, err
	}
	runtime.ReadMemStats(&after)
	allocsPerOp := float64(after.Mallocs - before.Mallocs)

	var fusedTime, loopTime time.Duration
	iters := 0
	start := time.Now()
	for iters < minIters || time.Since(start) < 2*minTime {
		if err := ctx.Err(); err != nil {
			return MatrixMeasurement{}, err
		}
		t0 := time.Now()
		if last, err = fusedPass(); err != nil {
			return MatrixMeasurement{}, err
		}
		t1 := time.Now()
		if err := loopPass(); err != nil {
			return MatrixMeasurement{}, err
		}
		fusedTime += t1.Sub(t0)
		loopTime += time.Since(t1)
		iters++
	}

	totalRecords := float64(n) * float64(iters) * float64(len(cfgs))
	meanAMAT := 0.0
	for _, res := range last {
		meanAMAT += res.AMAT()
	}
	meanAMAT /= float64(len(cfgs))
	return MatrixMeasurement{
		MatrixSpec:       spec,
		Configs:          len(cfgs),
		Records:          n,
		Iters:            iters,
		FusedNsPerRecord: float64(fusedTime.Nanoseconds()) / totalRecords,
		LoopNsPerRecord:  float64(loopTime.Nanoseconds()) / totalRecords,
		Speedup:          float64(loopTime) / float64(fusedTime),
		AllocsPerOp:      allocsPerOp,
		MeanAMAT:         meanAMAT,
	}, nil
}

// measureSharded times one sharded group: every shard count of one
// (workload, scale, config), interleaved round-robin so machine drift
// biases no count, each pass running the full streaming sharded kernel
// (decode producer + shard workers). Speedup is computed against the
// group's shards=1 row after the loop.
func measureSharded(ctx context.Context, group []ShardedSpec, data []byte, n, minIters int, minTime time.Duration) ([]ShardedMeasurement, error) {
	cfg, err := group[0].BuildConfig()
	if err != nil {
		return nil, err
	}
	run := func(shards int) (core.Result, error) {
		r, err := trace.NewReaderBytes(data)
		if err != nil {
			return core.Result{}, err
		}
		return core.SimulateShardedStream(ctx, cfg, r, shards)
	}

	out := make([]ShardedMeasurement, len(group))
	allocs := make([]float64, len(group))
	lasts := make([]core.Result, len(group))
	for i, s := range group {
		plan, err := core.PlanShards(cfg, s.Shards)
		if err != nil {
			return nil, err
		}
		out[i] = ShardedMeasurement{
			ShardedSpec:     s,
			EffectiveShards: plan.Shards,
			Exact:           plan.Exact,
			Records:         n,
		}
		// Warm-up (pools, page cache, branch history), then one isolated
		// pass for the allocation count.
		if _, err := run(s.Shards); err != nil {
			return nil, err
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if lasts[i], err = run(s.Shards); err != nil {
			return nil, err
		}
		runtime.ReadMemStats(&after)
		allocs[i] = float64(after.Mallocs - before.Mallocs)
	}

	times := make([]time.Duration, len(group))
	iters := 0
	start := time.Now()
	for iters < minIters || time.Since(start) < time.Duration(len(group))*minTime {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i, s := range group {
			t0 := time.Now()
			res, err := run(s.Shards)
			if err != nil {
				return nil, err
			}
			times[i] += time.Since(t0)
			lasts[i] = res
		}
		iters++
	}

	for i := range out {
		totalRecords := float64(n) * float64(iters)
		out[i].Iters = iters
		out[i].NsPerRecord = float64(times[i].Nanoseconds()) / totalRecords
		out[i].RecordsPerSec = totalRecords / times[i].Seconds()
		out[i].AllocsPerOp = allocs[i]
		out[i].AMAT = lasts[i].AMAT()
	}
	for i := range out {
		for j := range out {
			if out[j].Shards == 1 && out[j].NsPerRecord > 0 {
				out[i].Speedup = out[j].NsPerRecord / out[i].NsPerRecord
				break
			}
		}
	}
	return out, nil
}

func joinLines(lines []string) string {
	var b bytes.Buffer
	for i, l := range lines {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(l)
	}
	return b.String()
}
