// Package perf is the kernel performance-regression suite: a pinned
// benchmark matrix over the streaming simulation kernel (trace size ×
// virtual-line size × bounce-back on/off), run through the experiment
// harness and emitted as machine-readable JSON (BENCH_kernel.json) plus a
// markdown delta report against a previous run.
//
// The matrix is deliberately small and fixed: its job is not design-space
// exploration (softcache-sweep does that) but catching throughput and
// allocation regressions in the hot loop — Reader.ReadBatch, the
// direct-mapped hit path, the miss/eviction scan — under the mechanisms
// that stress each of them.
package perf

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"softcache/internal/core"
	"softcache/internal/harness"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// CaseSpec is one pinned point of the benchmark matrix.
type CaseSpec struct {
	Name        string          `json:"name"`
	Workload    string          `json:"workload"`
	Scale       workloads.Scale `json:"-"`
	ScaleName   string          `json:"scale"`
	VirtualLine int             `json:"virtual_line"` // bytes; 0 = plain lines
	BounceBack  bool            `json:"bounce_back"`
}

// Config builds the design point for the case: the paper's soft cache with
// the virtual-line and bounce-back axes set per the spec.
func (c CaseSpec) Config() core.Config {
	cfg := core.Soft()
	cfg.VirtualLineSize = c.VirtualLine
	cfg.UseSpatialTags = c.VirtualLine > core.DefaultLineSize
	if !c.BounceBack {
		cfg.BounceBackLines = 0
		cfg.BounceBackEnabled = false
		cfg.UseTemporalTags = false
		cfg.BounceBackCycles = 0
		cfg.SwapLockCycles = 0
	}
	return cfg
}

// Matrix returns the pinned benchmark matrix. quick drops the paper-scale
// rows (CI smoke runs); the full matrix is the release measurement.
func Matrix(quick bool) []CaseSpec {
	scales := []workloads.Scale{workloads.ScaleTest, workloads.ScalePaper}
	if quick {
		scales = scales[:1]
	}
	var specs []CaseSpec
	for _, scale := range scales {
		for _, vl := range []int{0, 64, 256} {
			for _, bb := range []bool{false, true} {
				s := CaseSpec{
					Workload:    "MV",
					Scale:       scale,
					ScaleName:   scale.String(),
					VirtualLine: vl,
					BounceBack:  bb,
				}
				bbTag := "bb0"
				if bb {
					bbTag = "bb1"
				}
				s.Name = fmt.Sprintf("%s/%s/vl%d/%s", s.Workload, s.ScaleName, vl, bbTag)
				specs = append(specs, s)
			}
		}
	}
	return specs
}

// Measurement is the result of one case.
type Measurement struct {
	CaseSpec
	Records       int     `json:"records"`
	Iters         int     `json:"iters"`
	NsPerRecord   float64 `json:"ns_per_record"`
	RecordsPerSec float64 `json:"records_per_sec"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	// AMAT fingerprints the simulated behaviour: a perf run whose AMAT
	// moved did not just get slower, it changed results.
	AMAT float64 `json:"amat"`
}

// Report is the whole suite's output, the schema of BENCH_kernel.json.
type Report struct {
	Schema    string        `json:"schema"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Quick     bool          `json:"quick"`
	Cases     []Measurement `json:"cases"`
}

// SchemaID identifies the BENCH_kernel.json layout this package writes.
const SchemaID = "softcache-perf/v1"

// Runner executes the matrix. The zero value uses sensible defaults.
type Runner struct {
	// MinIters and MinTime bound each case's measurement loop from below:
	// the loop runs until both are met. Zero values default to 3 iterations
	// and 300ms (1 and 50ms in quick runs — set them explicitly).
	MinIters int
	MinTime  time.Duration
	// Seed selects the workload trace seed (0 = 1, the paper's).
	Seed uint64
	// Log receives one-line progress notes when non-nil.
	Log io.Writer
}

// Run measures every case of the matrix sequentially (Workers is pinned to
// 1: timing runs must not share the machine with each other) through the
// experiment harness, so a panicking or failing case yields a structured
// failure record instead of torpedoing the suite.
func (r Runner) Run(ctx context.Context, specs []CaseSpec) (*Report, error) {
	minIters := r.MinIters
	if minIters <= 0 {
		minIters = 3
	}
	minTime := r.MinTime
	if minTime <= 0 {
		minTime = 300 * time.Millisecond
	}
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}

	// Encode each distinct (workload, scale) trace once; every case replays
	// the same bytes through trace.NewReaderBytes, so the measurement sees
	// the full streaming path (header parse, batched decode, simulate).
	encoded := map[string][]byte{}
	records := map[string]int{}
	for _, s := range specs {
		key := s.Workload + "/" + s.ScaleName
		if _, ok := encoded[key]; ok {
			continue
		}
		tr, err := workloads.Trace(s.Workload, s.Scale, seed)
		if err != nil {
			return nil, fmt.Errorf("perf: generating %s: %w", key, err)
		}
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			return nil, fmt.Errorf("perf: encoding %s: %w", key, err)
		}
		encoded[key] = buf.Bytes()
		records[key] = len(tr.Records)
	}

	units := make([]harness.Unit[Measurement], len(specs))
	for i, s := range specs {
		s := s
		key := s.Workload + "/" + s.ScaleName
		units[i] = harness.Unit[Measurement]{
			Key: s.Name,
			Meta: map[string]string{
				"workload": s.Workload,
				"scale":    s.ScaleName,
				"seed":     fmt.Sprint(seed),
			},
			Run: func(ctx context.Context) (Measurement, error) {
				return measure(ctx, s, encoded[key], records[key], minIters, minTime)
			},
		}
	}
	results, err := harness.Run(ctx, units, harness.Options{Workers: 1, Log: r.Log})
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}

	report := &Report{
		Schema:    SchemaID,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Cases:     make([]Measurement, 0, len(results)),
	}
	var failures []string
	for _, res := range results {
		if !res.OK() {
			failures = append(failures, res.FailureRecord())
			continue
		}
		report.Cases = append(report.Cases, res.Value)
	}
	if len(failures) > 0 {
		return report, fmt.Errorf("perf: %d case(s) failed:\n%s", len(failures), joinLines(failures))
	}
	return report, nil
}

// measure times repeated replays of the encoded trace through the
// streaming kernel and reads the allocator's counters around the loop.
func measure(ctx context.Context, spec CaseSpec, data []byte, n, minIters int, minTime time.Duration) (Measurement, error) {
	cfg := spec.Config()
	run := func() (core.Result, error) {
		tr, err := trace.NewReaderBytes(data)
		if err != nil {
			return core.Result{}, err
		}
		return core.SimulateStream(cfg, tr)
	}

	// Warm-up: page the trace in, grow the pools, JIT the branch history.
	last, err := run()
	if err != nil {
		return Measurement{}, err
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for iters < minIters || time.Since(start) < minTime {
		if err := ctx.Err(); err != nil {
			return Measurement{}, err
		}
		if last, err = run(); err != nil {
			return Measurement{}, err
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	totalRecords := float64(n) * float64(iters)
	m := Measurement{
		CaseSpec:      spec,
		Records:       n,
		Iters:         iters,
		NsPerRecord:   float64(elapsed.Nanoseconds()) / totalRecords,
		RecordsPerSec: totalRecords / elapsed.Seconds(),
		AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		AMAT:          last.AMAT(),
	}
	return m, nil
}

func joinLines(lines []string) string {
	var b bytes.Buffer
	for i, l := range lines {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(l)
	}
	return b.String()
}
