// Package perf is the kernel performance-regression suite: a pinned
// benchmark matrix over the streaming simulation kernel (trace size ×
// virtual-line size × bounce-back on/off), run through the experiment
// harness and emitted as machine-readable JSON (BENCH_kernel.json) plus a
// markdown delta report against a previous run.
//
// The matrix is deliberately small and fixed: its job is not design-space
// exploration (softcache-sweep does that) but catching throughput and
// allocation regressions in the hot loop — Reader.ReadBatch, the
// direct-mapped hit path, the miss/eviction scan — under the mechanisms
// that stress each of them.
package perf

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"softcache/internal/core"
	"softcache/internal/harness"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// CaseSpec is one pinned point of the benchmark matrix.
type CaseSpec struct {
	Name        string          `json:"name"`
	Workload    string          `json:"workload"`
	Scale       workloads.Scale `json:"-"`
	ScaleName   string          `json:"scale"`
	VirtualLine int             `json:"virtual_line"` // bytes; 0 = plain lines
	BounceBack  bool            `json:"bounce_back"`
}

// Config builds the design point for the case: the paper's soft cache with
// the virtual-line and bounce-back axes set per the spec.
func (c CaseSpec) Config() core.Config {
	cfg := core.Soft()
	cfg.VirtualLineSize = c.VirtualLine
	cfg.UseSpatialTags = c.VirtualLine > core.DefaultLineSize
	if !c.BounceBack {
		cfg.BounceBackLines = 0
		cfg.BounceBackEnabled = false
		cfg.UseTemporalTags = false
		cfg.BounceBackCycles = 0
		cfg.SwapLockCycles = 0
	}
	return cfg
}

// MatrixSpec is one pinned fused-matrix point: a config group simulated
// over one (workload, scale) trace both fused (core.SimulateMany — one
// decode pass feeds every config) and looped (one SimulateStream pass per
// config). The pair quantifies the decode amortisation the fused kernel
// buys, and pins it against regression.
type MatrixSpec struct {
	Name      string          `json:"name"`
	Workload  string          `json:"workload"`
	Scale     workloads.Scale `json:"-"`
	ScaleName string          `json:"scale"`
	Group     string          `json:"group"`
}

// Configs builds the spec's config group. Group ids are pinned: the same
// name always denotes the same ordered config list, so baseline rows stay
// comparable across runs.
func (m MatrixSpec) Configs() ([]core.Config, error) {
	switch m.Group {
	case "size-line-12":
		// The joint cache-size x line-size axis of the paper's standard
		// cache: a hit-dominated group where decode is a large share of
		// the record budget, so fusion pays the most.
		var cfgs []core.Config
		for _, kb := range []int{32, 64, 128, 256} {
			for _, ln := range []int{32, 64, 128} {
				cfg := core.Standard()
				cfg.CacheSize = kb << 10
				cfg.LineSize = ln
				cfgs = append(cfgs, cfg)
			}
		}
		return cfgs, nil
	case "cache-size-6":
		// Figure 3's cache-size axis on the standard cache.
		var cfgs []core.Config
		for _, kb := range []int{8, 16, 32, 64, 128, 256} {
			cfg := core.Standard()
			cfg.CacheSize = kb << 10
			cfgs = append(cfgs, cfg)
		}
		return cfgs, nil
	case "soft-matrix-6":
		// The case matrix's own axes (virtual line x bounce-back) on the
		// soft cache: a miss- and mechanism-heavy group where simulation
		// dominates and fusion helps least. Kept as the honest lower
		// bound of the speedup column.
		var cfgs []core.Config
		for _, vl := range []int{0, 64, 256} {
			for _, bb := range []bool{false, true} {
				cfgs = append(cfgs, CaseSpec{VirtualLine: vl, BounceBack: bb}.Config())
			}
		}
		return cfgs, nil
	default:
		return nil, fmt.Errorf("perf: unknown fused matrix group %q", m.Group)
	}
}

// FusedMatrix returns the pinned fused-vs-looped matrix. quick drops the
// paper-scale rows, mirroring Matrix.
func FusedMatrix(quick bool) []MatrixSpec {
	scales := []workloads.Scale{workloads.ScaleTest, workloads.ScalePaper}
	if quick {
		scales = scales[:1]
	}
	rows := []struct{ workload, group string }{
		{"MDG", "size-line-12"},
		{"MV", "cache-size-6"},
		{"MV", "soft-matrix-6"},
	}
	var specs []MatrixSpec
	for _, scale := range scales {
		for _, r := range rows {
			s := MatrixSpec{
				Workload:  r.workload,
				Scale:     scale,
				ScaleName: scale.String(),
				Group:     r.group,
			}
			s.Name = fmt.Sprintf("fused/%s/%s/%s", s.Workload, s.ScaleName, s.Group)
			specs = append(specs, s)
		}
	}
	return specs
}

// Matrix returns the pinned benchmark matrix. quick drops the paper-scale
// rows (CI smoke runs); the full matrix is the release measurement.
func Matrix(quick bool) []CaseSpec {
	scales := []workloads.Scale{workloads.ScaleTest, workloads.ScalePaper}
	if quick {
		scales = scales[:1]
	}
	var specs []CaseSpec
	for _, scale := range scales {
		for _, vl := range []int{0, 64, 256} {
			for _, bb := range []bool{false, true} {
				s := CaseSpec{
					Workload:    "MV",
					Scale:       scale,
					ScaleName:   scale.String(),
					VirtualLine: vl,
					BounceBack:  bb,
				}
				bbTag := "bb0"
				if bb {
					bbTag = "bb1"
				}
				s.Name = fmt.Sprintf("%s/%s/vl%d/%s", s.Workload, s.ScaleName, vl, bbTag)
				specs = append(specs, s)
			}
		}
	}
	return specs
}

// Measurement is the result of one case.
type Measurement struct {
	CaseSpec
	Records       int     `json:"records"`
	Iters         int     `json:"iters"`
	NsPerRecord   float64 `json:"ns_per_record"`
	RecordsPerSec float64 `json:"records_per_sec"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	// AMAT fingerprints the simulated behaviour: a perf run whose AMAT
	// moved did not just get slower, it changed results.
	AMAT float64 `json:"amat"`
}

// MatrixMeasurement is the result of one fused-matrix row: the whole
// config group's per-record cost under the fused kernel and under the
// per-config loop, and the wall-clock speedup between them.
type MatrixMeasurement struct {
	MatrixSpec
	Configs int `json:"configs"`
	Records int `json:"records"`
	Iters   int `json:"iters"`
	// FusedNsPerRecord and LoopNsPerRecord are normalised per record per
	// config, so they are comparable to the case matrix's ns_per_record.
	FusedNsPerRecord float64 `json:"fused_ns_per_record"`
	LoopNsPerRecord  float64 `json:"loop_ns_per_record"`
	// Speedup is loop wall-clock over fused wall-clock for the whole group.
	Speedup float64 `json:"speedup"`
	// AllocsPerOp counts allocations of one whole fused pass (simulator
	// construction included; the steady-state loop itself is alloc-free).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// MeanAMAT fingerprints behaviour across the group, like Measurement's
	// AMAT does for one config.
	MeanAMAT float64 `json:"mean_amat"`
}

// Report is the whole suite's output, the schema of BENCH_kernel.json.
type Report struct {
	Schema    string        `json:"schema"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Quick     bool          `json:"quick"`
	Cases     []Measurement `json:"cases"`
	// Matrix holds the fused-vs-looped rows; absent in v1 reports.
	Matrix []MatrixMeasurement `json:"matrix,omitempty"`
}

// SchemaID identifies the BENCH_kernel.json layout this package writes.
// v2 added the fused matrix rows; v1 reports (no matrix) still load.
const SchemaID = "softcache-perf/v2"

// schemaV1 is the previous layout: identical cases, no fused matrix.
// ReadJSON keeps accepting it so pre-v2 baselines gate the case matrix.
const schemaV1 = "softcache-perf/v1"

// Runner executes the matrix. The zero value uses sensible defaults.
type Runner struct {
	// MinIters and MinTime bound each case's measurement loop from below:
	// the loop runs until both are met. Zero values default to 3 iterations
	// and 300ms (1 and 50ms in quick runs — set them explicitly).
	MinIters int
	MinTime  time.Duration
	// Seed selects the workload trace seed (0 = 1, the paper's).
	Seed uint64
	// Log receives one-line progress notes when non-nil.
	Log io.Writer
}

// Run measures every case of the matrix sequentially (Workers is pinned to
// 1: timing runs must not share the machine with each other) through the
// experiment harness, so a panicking or failing case yields a structured
// failure record instead of torpedoing the suite. The fused rows are
// measured after the cases, one harness unit per (workload, config-group).
func (r Runner) Run(ctx context.Context, specs []CaseSpec, fused []MatrixSpec) (*Report, error) {
	minIters := r.MinIters
	if minIters <= 0 {
		minIters = 3
	}
	minTime := r.MinTime
	if minTime <= 0 {
		minTime = 300 * time.Millisecond
	}
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}

	// Encode each distinct (workload, scale) trace once; every case replays
	// the same bytes through trace.NewReaderBytes, so the measurement sees
	// the full streaming path (header parse, batched decode, simulate).
	encoded := map[string][]byte{}
	records := map[string]int{}
	ensureTrace := func(workload, scaleName string, scale workloads.Scale) error {
		key := workload + "/" + scaleName
		if _, ok := encoded[key]; ok {
			return nil
		}
		tr, err := workloads.Trace(workload, scale, seed)
		if err != nil {
			return fmt.Errorf("perf: generating %s: %w", key, err)
		}
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			return fmt.Errorf("perf: encoding %s: %w", key, err)
		}
		encoded[key] = buf.Bytes()
		records[key] = len(tr.Records)
		return nil
	}
	for _, s := range specs {
		if err := ensureTrace(s.Workload, s.ScaleName, s.Scale); err != nil {
			return nil, err
		}
	}
	for _, m := range fused {
		if err := ensureTrace(m.Workload, m.ScaleName, m.Scale); err != nil {
			return nil, err
		}
	}

	units := make([]harness.Unit[Measurement], len(specs))
	for i, s := range specs {
		s := s
		key := s.Workload + "/" + s.ScaleName
		units[i] = harness.Unit[Measurement]{
			Key: s.Name,
			Meta: map[string]string{
				"workload": s.Workload,
				"scale":    s.ScaleName,
				"seed":     fmt.Sprint(seed),
			},
			Run: func(ctx context.Context) (Measurement, error) {
				return measure(ctx, s, encoded[key], records[key], minIters, minTime)
			},
		}
	}
	results, err := harness.Run(ctx, units, harness.Options{Workers: 1, Log: r.Log})
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}

	matrixUnits := make([]harness.Unit[MatrixMeasurement], len(fused))
	for i, m := range fused {
		m := m
		key := m.Workload + "/" + m.ScaleName
		matrixUnits[i] = harness.Unit[MatrixMeasurement]{
			Key: m.Name,
			Meta: map[string]string{
				"workload": m.Workload,
				"scale":    m.ScaleName,
				"group":    m.Group,
				"seed":     fmt.Sprint(seed),
			},
			Run: func(ctx context.Context) (MatrixMeasurement, error) {
				return measureMatrix(ctx, m, encoded[key], records[key], minIters, minTime)
			},
		}
	}
	matrixResults, err := harness.Run(ctx, matrixUnits, harness.Options{Workers: 1, Log: r.Log})
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}

	report := &Report{
		Schema:    SchemaID,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Cases:     make([]Measurement, 0, len(results)),
		Matrix:    make([]MatrixMeasurement, 0, len(matrixResults)),
	}
	var failures []string
	for _, res := range results {
		if !res.OK() {
			failures = append(failures, res.FailureRecord())
			continue
		}
		report.Cases = append(report.Cases, res.Value)
	}
	for _, res := range matrixResults {
		if !res.OK() {
			failures = append(failures, res.FailureRecord())
			continue
		}
		report.Matrix = append(report.Matrix, res.Value)
	}
	if len(failures) > 0 {
		return report, fmt.Errorf("perf: %d case(s) failed:\n%s", len(failures), joinLines(failures))
	}
	return report, nil
}

// measure times repeated replays of the encoded trace through the
// streaming kernel and reads the allocator's counters around the loop.
func measure(ctx context.Context, spec CaseSpec, data []byte, n, minIters int, minTime time.Duration) (Measurement, error) {
	cfg := spec.Config()
	run := func() (core.Result, error) {
		tr, err := trace.NewReaderBytes(data)
		if err != nil {
			return core.Result{}, err
		}
		return core.SimulateStream(cfg, tr)
	}

	// Warm-up: page the trace in, grow the pools, JIT the branch history.
	last, err := run()
	if err != nil {
		return Measurement{}, err
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for iters < minIters || time.Since(start) < minTime {
		if err := ctx.Err(); err != nil {
			return Measurement{}, err
		}
		if last, err = run(); err != nil {
			return Measurement{}, err
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	totalRecords := float64(n) * float64(iters)
	m := Measurement{
		CaseSpec:      spec,
		Records:       n,
		Iters:         iters,
		NsPerRecord:   float64(elapsed.Nanoseconds()) / totalRecords,
		RecordsPerSec: totalRecords / elapsed.Seconds(),
		AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		AMAT:          last.AMAT(),
	}
	return m, nil
}

// measureMatrix times the fused kernel (one decode pass for the whole
// config group) against the per-config loop over the same encoded bytes,
// interleaving the two so drift (thermal, cache pressure from a neighbour)
// biases neither side.
func measureMatrix(ctx context.Context, spec MatrixSpec, data []byte, n, minIters int, minTime time.Duration) (MatrixMeasurement, error) {
	cfgs, err := spec.Configs()
	if err != nil {
		return MatrixMeasurement{}, err
	}
	fusedPass := func() ([]core.Result, error) {
		r, err := trace.NewReaderBytes(data)
		if err != nil {
			return nil, err
		}
		return core.SimulateMany(ctx, cfgs, r)
	}
	loopPass := func() error {
		for _, cfg := range cfgs {
			r, err := trace.NewReaderBytes(data)
			if err != nil {
				return err
			}
			if _, err := core.SimulateStream(cfg, r); err != nil {
				return err
			}
		}
		return nil
	}

	// Warm-up both paths.
	last, err := fusedPass()
	if err != nil {
		return MatrixMeasurement{}, err
	}
	if err := loopPass(); err != nil {
		return MatrixMeasurement{}, err
	}

	// Allocation count of one whole fused pass, measured in isolation so
	// the loop pass's own allocations don't blur it.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if last, err = fusedPass(); err != nil {
		return MatrixMeasurement{}, err
	}
	runtime.ReadMemStats(&after)
	allocsPerOp := float64(after.Mallocs - before.Mallocs)

	var fusedTime, loopTime time.Duration
	iters := 0
	start := time.Now()
	for iters < minIters || time.Since(start) < 2*minTime {
		if err := ctx.Err(); err != nil {
			return MatrixMeasurement{}, err
		}
		t0 := time.Now()
		if last, err = fusedPass(); err != nil {
			return MatrixMeasurement{}, err
		}
		t1 := time.Now()
		if err := loopPass(); err != nil {
			return MatrixMeasurement{}, err
		}
		fusedTime += t1.Sub(t0)
		loopTime += time.Since(t1)
		iters++
	}

	totalRecords := float64(n) * float64(iters) * float64(len(cfgs))
	meanAMAT := 0.0
	for _, res := range last {
		meanAMAT += res.AMAT()
	}
	meanAMAT /= float64(len(cfgs))
	return MatrixMeasurement{
		MatrixSpec:       spec,
		Configs:          len(cfgs),
		Records:          n,
		Iters:            iters,
		FusedNsPerRecord: float64(fusedTime.Nanoseconds()) / totalRecords,
		LoopNsPerRecord:  float64(loopTime.Nanoseconds()) / totalRecords,
		Speedup:          float64(loopTime) / float64(fusedTime),
		AllocsPerOp:      allocsPerOp,
		MeanAMAT:         meanAMAT,
	}, nil
}

func joinLines(lines []string) string {
	var b bytes.Buffer
	for i, l := range lines {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(l)
	}
	return b.String()
}
