package perf

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// The decode matrix pins the trace codecs themselves: for each corpus
// workload, the same records are encoded flat (SCTR) and compressed
// (SCTZ v3) and both are streamed back through their readers — the
// source-backed path (a buffered reader over the bytes, exactly what a
// file or socket feeds) that every deployment consumer runs. The rows
// record ns/record for both codecs and the compression factor, and the
// gate holds SCTZ to the flat decoder's corpus-weighted cost: the
// compressed format is only allowed to exist because it decodes at or
// below the flat baseline while shrinking the bytes.

// DecodeSpec is one pinned decode-matrix row: one (workload, scale)
// corpus trace, decoded flat vs SCTZ.
type DecodeSpec struct {
	Name      string          `json:"name"`
	Workload  string          `json:"workload"`
	Scale     workloads.Scale `json:"-"`
	ScaleName string          `json:"scale"`
}

// DecodeMatrix returns the pinned decode corpus: a dense strided kernel
// (MV, the compressor's best case), an irregular sparse kernel (SpMV,
// its worst case — escape-heavy), and a butterfly-pattern kernel (FFT,
// in between). quick drops the paper-scale rows, mirroring Matrix.
func DecodeMatrix(quick bool) []DecodeSpec {
	scales := []workloads.Scale{workloads.ScaleTest, workloads.ScalePaper}
	if quick {
		scales = scales[:1]
	}
	var specs []DecodeSpec
	for _, scale := range scales {
		for _, w := range []string{"MV", "SpMV", "FFT"} {
			s := DecodeSpec{
				Workload:  w,
				Scale:     scale,
				ScaleName: scale.String(),
			}
			s.Name = fmt.Sprintf("decode/%s/%s", s.Workload, s.ScaleName)
			specs = append(specs, s)
		}
	}
	return specs
}

// DecodeMeasurement is the result of one decode-matrix row.
type DecodeMeasurement struct {
	DecodeSpec
	Records int `json:"records"`
	Iters   int `json:"iters"`
	// FlatBytes and SCTZBytes are the encoded sizes; Compression is
	// flat over sctz (3.0 = the compressed trace is a third the size).
	FlatBytes   int     `json:"flat_bytes"`
	SCTZBytes   int     `json:"sctz_bytes"`
	Compression float64 `json:"compression"`
	// FlatNsPerRecord and SCTZNsPerRecord are source-backed streaming
	// decode costs (buffered reader over the bytes, pooled ReadBatch
	// drain). Ratio is sctz over flat: at or below 1.0 the compressed
	// decode is no slower than the flat baseline on this row.
	FlatNsPerRecord float64 `json:"flat_ns_per_record"`
	SCTZNsPerRecord float64 `json:"sctz_ns_per_record"`
	Ratio           float64 `json:"ratio"`
}

// measureDecode times both codecs over one corpus trace, interleaved so
// machine drift biases neither, draining through the pooled batch path
// every streaming consumer uses.
func measureDecode(ctx context.Context, spec DecodeSpec, flat, sctz []byte, n, minIters int, minTime time.Duration) (DecodeMeasurement, error) {
	drain := func(r trace.BatchReader) error {
		batch := trace.GetBatch()
		defer trace.PutBatch(batch)
		total := 0
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			m, err := r.ReadBatch(*batch)
			total += m
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
		}
		if total != n {
			return fmt.Errorf("perf: %s decoded %d records, want %d", spec.Name, total, n)
		}
		return nil
	}
	flatPass := func() error {
		r, err := trace.NewReader(bytes.NewReader(flat))
		if err != nil {
			return err
		}
		return drain(r)
	}
	sctzPass := func() error {
		r, err := trace.NewStreamReader(bytes.NewReader(sctz))
		if err != nil {
			return err
		}
		return drain(r)
	}

	// Warm-up both decoders (pools, branch history, page-in).
	if err := flatPass(); err != nil {
		return DecodeMeasurement{}, err
	}
	if err := sctzPass(); err != nil {
		return DecodeMeasurement{}, err
	}

	runtime.GC()
	var flatTime, sctzTime time.Duration
	iters := 0
	start := time.Now()
	for iters < minIters || time.Since(start) < 2*minTime {
		if err := ctx.Err(); err != nil {
			return DecodeMeasurement{}, err
		}
		t0 := time.Now()
		if err := flatPass(); err != nil {
			return DecodeMeasurement{}, err
		}
		t1 := time.Now()
		if err := sctzPass(); err != nil {
			return DecodeMeasurement{}, err
		}
		flatTime += t1.Sub(t0)
		sctzTime += time.Since(t1)
		iters++
	}

	totalRecords := float64(n) * float64(iters)
	m := DecodeMeasurement{
		DecodeSpec:      spec,
		Records:         n,
		Iters:           iters,
		FlatBytes:       len(flat),
		SCTZBytes:       len(sctz),
		Compression:     float64(len(flat)) / float64(len(sctz)),
		FlatNsPerRecord: float64(flatTime.Nanoseconds()) / totalRecords,
		SCTZNsPerRecord: float64(sctzTime.Nanoseconds()) / totalRecords,
	}
	if m.FlatNsPerRecord > 0 {
		m.Ratio = m.SCTZNsPerRecord / m.FlatNsPerRecord
	}
	return m, nil
}

// paperDecodeRows filters the rows the absolute corpus-weighted budget is
// held over: the paper-scale traces. Quick runs carry only test-scale
// smoke rows, which still gate relatively (against a baseline) but are
// too small for the ns/record ratio to mean anything absolute.
func paperDecodeRows(rows []DecodeMeasurement) []DecodeMeasurement {
	var paper []DecodeMeasurement
	for _, d := range rows {
		if d.ScaleName == workloads.ScalePaper.String() {
			paper = append(paper, d)
		}
	}
	return paper
}

// DecodeDelta is one decode row's comparison against a baseline run.
type DecodeDelta struct {
	Name    string
	Base    *DecodeMeasurement // nil when the row is new (or the baseline predates v4)
	Current DecodeMeasurement
}

// PctNs returns the sctz ns/record change in percent (positive = slower).
func (d DecodeDelta) PctNs() float64 {
	if d.Base == nil || d.Base.SCTZNsPerRecord == 0 {
		return 0
	}
	return (d.Current.SCTZNsPerRecord/d.Base.SCTZNsPerRecord - 1) * 100
}

// CompareDecode matches the current report's decode rows against a
// baseline by name, mirroring Compare. Pre-v4 baselines have no decode
// rows, so every row comes back baseline-less.
func CompareDecode(base, cur *Report) []DecodeDelta {
	byName := map[string]*DecodeMeasurement{}
	if base != nil {
		for i := range base.Decode {
			byName[base.Decode[i].Name] = &base.Decode[i]
		}
	}
	deltas := make([]DecodeDelta, 0, len(cur.Decode))
	for _, d := range cur.Decode {
		deltas = append(deltas, DecodeDelta{Name: d.Name, Base: byName[d.Name], Current: d})
	}
	return deltas
}

// DecodeWeighted aggregates the decode rows record-weighted: the
// corpus-wide ns/record of each codec, and sctz's ratio against flat.
// The ratio is the number the streaming-decode gate holds at or below
// 1.0 — a regression that makes SCTZ slower than the flat format it
// replaced fails the suite even when no baseline file is present.
func DecodeWeighted(rows []DecodeMeasurement) (flatNs, sctzNs, ratio float64) {
	var records float64
	for _, d := range rows {
		w := float64(d.Records)
		records += w
		flatNs += d.FlatNsPerRecord * w
		sctzNs += d.SCTZNsPerRecord * w
	}
	if records == 0 || flatNs == 0 {
		return 0, 0, 0
	}
	return flatNs / records, sctzNs / records, sctzNs / flatNs
}
