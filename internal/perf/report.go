package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// WriteJSON writes the report as indented JSON (the BENCH_kernel.json
// artifact).
func WriteJSON(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadJSON loads a previously written report.
func ReadJSON(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: parsing %s: %w", path, err)
	}
	if r.Schema != SchemaID {
		return nil, fmt.Errorf("perf: %s has schema %q, want %q", path, r.Schema, SchemaID)
	}
	return &r, nil
}

// Delta is one case's comparison against a baseline run.
type Delta struct {
	Name    string
	Base    *Measurement // nil when the case is new
	Current Measurement
}

// PctNs returns the ns/record change in percent (positive = slower).
func (d Delta) PctNs() float64 {
	if d.Base == nil || d.Base.NsPerRecord == 0 {
		return 0
	}
	return (d.Current.NsPerRecord/d.Base.NsPerRecord - 1) * 100
}

// Compare matches the current report's cases against a baseline by name.
// Baseline-only cases are ignored: the matrix is pinned in code, so a
// vanished case means the matrix changed on purpose.
func Compare(base, cur *Report) []Delta {
	byName := map[string]*Measurement{}
	if base != nil {
		for i := range base.Cases {
			byName[base.Cases[i].Name] = &base.Cases[i]
		}
	}
	deltas := make([]Delta, 0, len(cur.Cases))
	for _, c := range cur.Cases {
		deltas = append(deltas, Delta{Name: c.Name, Base: byName[c.Name], Current: c})
	}
	return deltas
}

// Gate returns an error listing every case whose ns/record regressed by
// more than maxRegress (a fraction: 0.15 = 15%) against the baseline.
// Cases absent from the baseline pass by definition.
func Gate(base, cur *Report, maxRegress float64) error {
	var bad []string
	for _, d := range Compare(base, cur) {
		if d.Base == nil {
			continue
		}
		if d.Current.NsPerRecord > d.Base.NsPerRecord*(1+maxRegress) {
			bad = append(bad, fmt.Sprintf("  %s: %.2f -> %.2f ns/record (%+.1f%%, budget %+.0f%%)",
				d.Name, d.Base.NsPerRecord, d.Current.NsPerRecord, d.PctNs(), maxRegress*100))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("perf: %d case(s) regressed beyond the %.0f%% ns/record budget:\n%s",
			len(bad), maxRegress*100, strings.Join(bad, "\n"))
	}
	return nil
}

// Markdown renders the run as a markdown report; with a baseline it adds
// the delta column (the "delta report" of docs/PERF.md).
func Markdown(base, cur *Report) string {
	var b strings.Builder
	b.WriteString("# Kernel benchmark matrix\n\n")
	fmt.Fprintf(&b, "%s, %s/%s, %d CPUs", cur.GoVersion, cur.GOOS, cur.GOARCH, cur.CPUs)
	if cur.Quick {
		b.WriteString(", quick matrix")
	}
	b.WriteString("\n\n")
	if base != nil {
		b.WriteString("| case | records | ns/record | baseline | Δ ns/record | records/s | allocs/op |\n")
		b.WriteString("|---|---:|---:|---:|---:|---:|---:|\n")
	} else {
		b.WriteString("| case | records | ns/record | records/s | allocs/op |\n")
		b.WriteString("|---|---:|---:|---:|---:|\n")
	}
	for _, d := range Compare(base, cur) {
		c := d.Current
		if base != nil {
			baseNs, delta := "–", "new"
			if d.Base != nil {
				baseNs = fmt.Sprintf("%.2f", d.Base.NsPerRecord)
				delta = fmt.Sprintf("%+.1f%%", d.PctNs())
			}
			fmt.Fprintf(&b, "| %s | %d | %.2f | %s | %s | %s | %.0f |\n",
				c.Name, c.Records, c.NsPerRecord, baseNs, delta, human(c.RecordsPerSec), c.AllocsPerOp)
		} else {
			fmt.Fprintf(&b, "| %s | %d | %.2f | %s | %.0f |\n",
				c.Name, c.Records, c.NsPerRecord, human(c.RecordsPerSec), c.AllocsPerOp)
		}
	}
	return b.String()
}

// human formats a rate with an SI suffix (41.2M, 980k).
func human(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
