package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// WriteJSON writes the report as indented JSON (the BENCH_kernel.json
// artifact).
func WriteJSON(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadJSON loads a previously written report.
func ReadJSON(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: parsing %s: %w", path, err)
	}
	switch r.Schema {
	case SchemaID, schemaV3, schemaV2, schemaV1:
	default:
		return nil, fmt.Errorf("perf: %s has schema %q, want %q (or the older %q / %q / %q)",
			path, r.Schema, SchemaID, schemaV3, schemaV2, schemaV1)
	}
	return &r, nil
}

// Delta is one case's comparison against a baseline run.
type Delta struct {
	Name    string
	Base    *Measurement // nil when the case is new
	Current Measurement
}

// PctNs returns the ns/record change in percent (positive = slower).
func (d Delta) PctNs() float64 {
	if d.Base == nil || d.Base.NsPerRecord == 0 {
		return 0
	}
	return (d.Current.NsPerRecord/d.Base.NsPerRecord - 1) * 100
}

// Compare matches the current report's cases against a baseline by name.
// Baseline-only cases are ignored: the matrix is pinned in code, so a
// vanished case means the matrix changed on purpose.
func Compare(base, cur *Report) []Delta {
	byName := map[string]*Measurement{}
	if base != nil {
		for i := range base.Cases {
			byName[base.Cases[i].Name] = &base.Cases[i]
		}
	}
	deltas := make([]Delta, 0, len(cur.Cases))
	for _, c := range cur.Cases {
		deltas = append(deltas, Delta{Name: c.Name, Base: byName[c.Name], Current: c})
	}
	return deltas
}

// CompareMatrix matches the current report's fused rows against a
// baseline by name, mirroring Compare. v1 baselines have no matrix, so
// every row comes back baseline-less.
func CompareMatrix(base, cur *Report) []MatrixDelta {
	byName := map[string]*MatrixMeasurement{}
	if base != nil {
		for i := range base.Matrix {
			byName[base.Matrix[i].Name] = &base.Matrix[i]
		}
	}
	deltas := make([]MatrixDelta, 0, len(cur.Matrix))
	for _, m := range cur.Matrix {
		deltas = append(deltas, MatrixDelta{Name: m.Name, Base: byName[m.Name], Current: m})
	}
	return deltas
}

// MatrixDelta is one fused row's comparison against a baseline run.
type MatrixDelta struct {
	Name    string
	Base    *MatrixMeasurement // nil when the row is new (or the baseline is v1)
	Current MatrixMeasurement
}

// PctNs returns the fused ns/record change in percent (positive = slower).
func (d MatrixDelta) PctNs() float64 {
	if d.Base == nil || d.Base.FusedNsPerRecord == 0 {
		return 0
	}
	return (d.Current.FusedNsPerRecord/d.Base.FusedNsPerRecord - 1) * 100
}

// ShardedDelta is one sharded row's comparison against a baseline run.
type ShardedDelta struct {
	Name    string
	Base    *ShardedMeasurement // nil when the row is new (or the baseline predates v3)
	Current ShardedMeasurement
}

// PctNs returns the ns/record change in percent (positive = slower).
func (d ShardedDelta) PctNs() float64 {
	if d.Base == nil || d.Base.NsPerRecord == 0 {
		return 0
	}
	return (d.Current.NsPerRecord/d.Base.NsPerRecord - 1) * 100
}

// CompareSharded matches the current report's sharded rows against a
// baseline by name, mirroring Compare. Pre-v3 baselines have no sharded
// rows, so every row comes back baseline-less.
func CompareSharded(base, cur *Report) []ShardedDelta {
	byName := map[string]*ShardedMeasurement{}
	if base != nil {
		for i := range base.Sharded {
			byName[base.Sharded[i].Name] = &base.Sharded[i]
		}
	}
	deltas := make([]ShardedDelta, 0, len(cur.Sharded))
	for _, s := range cur.Sharded {
		deltas = append(deltas, ShardedDelta{Name: s.Name, Base: byName[s.Name], Current: s})
	}
	return deltas
}

// Gate returns an error listing every case whose ns/record regressed by
// more than maxRegress (a fraction: 0.15 = 15%) against the baseline; the
// fused matrix rows are gated on their fused ns/record and the sharded
// rows on their wall-clock ns/record the same way. Cases absent from the
// baseline pass by definition.
func Gate(base, cur *Report, maxRegress float64) error {
	var bad []string
	for _, d := range Compare(base, cur) {
		if d.Base == nil {
			continue
		}
		if d.Current.NsPerRecord > d.Base.NsPerRecord*(1+maxRegress) {
			bad = append(bad, fmt.Sprintf("  %s: %.2f -> %.2f ns/record (%+.1f%%, budget %+.0f%%)",
				d.Name, d.Base.NsPerRecord, d.Current.NsPerRecord, d.PctNs(), maxRegress*100))
		}
	}
	for _, d := range CompareMatrix(base, cur) {
		if d.Base == nil {
			continue
		}
		if d.Current.FusedNsPerRecord > d.Base.FusedNsPerRecord*(1+maxRegress) {
			bad = append(bad, fmt.Sprintf("  %s: %.2f -> %.2f fused ns/record (%+.1f%%, budget %+.0f%%)",
				d.Name, d.Base.FusedNsPerRecord, d.Current.FusedNsPerRecord, d.PctNs(), maxRegress*100))
		}
	}
	for _, d := range CompareSharded(base, cur) {
		if d.Base == nil {
			continue
		}
		if d.Current.NsPerRecord > d.Base.NsPerRecord*(1+maxRegress) {
			bad = append(bad, fmt.Sprintf("  %s: %.2f -> %.2f ns/record (%+.1f%%, budget %+.0f%%)",
				d.Name, d.Base.NsPerRecord, d.Current.NsPerRecord, d.PctNs(), maxRegress*100))
		}
	}
	for _, d := range CompareDecode(base, cur) {
		if d.Base == nil {
			continue
		}
		if d.Current.SCTZNsPerRecord > d.Base.SCTZNsPerRecord*(1+maxRegress) {
			bad = append(bad, fmt.Sprintf("  %s: %.2f -> %.2f sctz ns/record (%+.1f%%, budget %+.0f%%)",
				d.Name, d.Base.SCTZNsPerRecord, d.Current.SCTZNsPerRecord, d.PctNs(), maxRegress*100))
		}
	}
	// The decode matrix also carries an absolute gate, independent of any
	// baseline: corpus-weighted SCTZ streaming decode must run at or below
	// the flat-format ReadBatch cost measured in the same run. SCTZ's
	// licence to exist is "smaller and no slower"; a codec change that
	// breaks either half fails here even on a fresh machine with no
	// committed baseline. The budget is held at the paper-scale corpus:
	// test-scale smoke traces are too small to amortise the per-chunk
	// setup cost and would make quick runs flaky.
	if rows := paperDecodeRows(cur.Decode); len(rows) > 0 {
		if flatNs, sctzNs, ratio := DecodeWeighted(rows); ratio > 1.0 {
			bad = append(bad, fmt.Sprintf(
				"  decode (corpus-weighted): sctz %.2f ns/record vs flat %.2f (%.2fx, budget 1.00x)",
				sctzNs, flatNs, ratio))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("perf: %d case(s) regressed beyond the %.0f%% ns/record budget:\n%s",
			len(bad), maxRegress*100, strings.Join(bad, "\n"))
	}
	return nil
}

// Markdown renders the run as a markdown report; with a baseline it adds
// the delta column (the "delta report" of docs/PERF.md).
func Markdown(base, cur *Report) string {
	var b strings.Builder
	b.WriteString("# Kernel benchmark matrix\n\n")
	fmt.Fprintf(&b, "%s, %s/%s, %d CPUs", cur.GoVersion, cur.GOOS, cur.GOARCH, cur.CPUs)
	if cur.Quick {
		b.WriteString(", quick matrix")
	}
	b.WriteString("\n\n")
	if base != nil {
		b.WriteString("| case | records | ns/record | baseline | Δ ns/record | records/s | allocs/op |\n")
		b.WriteString("|---|---:|---:|---:|---:|---:|---:|\n")
	} else {
		b.WriteString("| case | records | ns/record | records/s | allocs/op |\n")
		b.WriteString("|---|---:|---:|---:|---:|\n")
	}
	for _, d := range Compare(base, cur) {
		c := d.Current
		if base != nil {
			baseNs, delta := "–", "new"
			if d.Base != nil {
				baseNs = fmt.Sprintf("%.2f", d.Base.NsPerRecord)
				delta = fmt.Sprintf("%+.1f%%", d.PctNs())
			}
			fmt.Fprintf(&b, "| %s | %d | %.2f | %s | %s | %s | %.0f |\n",
				c.Name, c.Records, c.NsPerRecord, baseNs, delta, human(c.RecordsPerSec), c.AllocsPerOp)
		} else {
			fmt.Fprintf(&b, "| %s | %d | %.2f | %s | %.0f |\n",
				c.Name, c.Records, c.NsPerRecord, human(c.RecordsPerSec), c.AllocsPerOp)
		}
	}
	if len(cur.Matrix) > 0 {
		b.WriteString("\n## Fused multi-configuration matrix\n\n")
		b.WriteString("ns/record are per record per config; speedup is looped wall-clock over fused.\n\n")
		if base != nil {
			b.WriteString("| matrix | configs | records | fused ns/record | baseline | Δ fused | loop ns/record | speedup |\n")
			b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|\n")
		} else {
			b.WriteString("| matrix | configs | records | fused ns/record | loop ns/record | speedup |\n")
			b.WriteString("|---|---:|---:|---:|---:|---:|\n")
		}
		for _, d := range CompareMatrix(base, cur) {
			m := d.Current
			if base != nil {
				baseNs, delta := "–", "new"
				if d.Base != nil {
					baseNs = fmt.Sprintf("%.2f", d.Base.FusedNsPerRecord)
					delta = fmt.Sprintf("%+.1f%%", d.PctNs())
				}
				fmt.Fprintf(&b, "| %s | %d | %d | %.2f | %s | %s | %.2f | %.2fx |\n",
					m.Name, m.Configs, m.Records, m.FusedNsPerRecord, baseNs, delta, m.LoopNsPerRecord, m.Speedup)
			} else {
				fmt.Fprintf(&b, "| %s | %d | %d | %.2f | %.2f | %.2fx |\n",
					m.Name, m.Configs, m.Records, m.FusedNsPerRecord, m.LoopNsPerRecord, m.Speedup)
			}
		}
	}
	if len(cur.Sharded) > 0 {
		b.WriteString("\n## Set-sharded kernel\n\n")
		b.WriteString("Wall-clock per record; speedup is over the group's shards=1 row. ")
		b.WriteString("Scaling is bounded by the host's CPU count above.\n\n")
		if base != nil {
			b.WriteString("| row | shards | exact | records | ns/record | baseline | Δ ns/record | records/s | speedup |\n")
			b.WriteString("|---|---:|---|---:|---:|---:|---:|---:|---:|\n")
		} else {
			b.WriteString("| row | shards | exact | records | ns/record | records/s | speedup |\n")
			b.WriteString("|---|---:|---|---:|---:|---:|---:|\n")
		}
		for _, d := range CompareSharded(base, cur) {
			s := d.Current
			if base != nil {
				baseNs, delta := "–", "new"
				if d.Base != nil {
					baseNs = fmt.Sprintf("%.2f", d.Base.NsPerRecord)
					delta = fmt.Sprintf("%+.1f%%", d.PctNs())
				}
				fmt.Fprintf(&b, "| %s | %d | %v | %d | %.2f | %s | %s | %s | %.2fx |\n",
					s.Name, s.EffectiveShards, s.Exact, s.Records, s.NsPerRecord, baseNs, delta, human(s.RecordsPerSec), s.Speedup)
			} else {
				fmt.Fprintf(&b, "| %s | %d | %v | %d | %.2f | %s | %.2fx |\n",
					s.Name, s.EffectiveShards, s.Exact, s.Records, s.NsPerRecord, human(s.RecordsPerSec), s.Speedup)
			}
		}
	}
	if len(cur.Decode) > 0 {
		b.WriteString("\n## Trace codec decode matrix\n\n")
		b.WriteString("Source-backed streaming decode (buffered reader, pooled ReadBatch); ")
		b.WriteString("ratio is sctz over flat, gated at or below 1.00x corpus-weighted.\n\n")
		if base != nil {
			b.WriteString("| trace | records | compression | flat ns/record | sctz ns/record | baseline | Δ sctz | ratio |\n")
			b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|\n")
		} else {
			b.WriteString("| trace | records | compression | flat ns/record | sctz ns/record | ratio |\n")
			b.WriteString("|---|---:|---:|---:|---:|---:|\n")
		}
		for _, d := range CompareDecode(base, cur) {
			c := d.Current
			if base != nil {
				baseNs, delta := "–", "new"
				if d.Base != nil {
					baseNs = fmt.Sprintf("%.2f", d.Base.SCTZNsPerRecord)
					delta = fmt.Sprintf("%+.1f%%", d.PctNs())
				}
				fmt.Fprintf(&b, "| %s | %d | %.2fx | %.2f | %.2f | %s | %s | %.2fx |\n",
					c.Name, c.Records, c.Compression, c.FlatNsPerRecord, c.SCTZNsPerRecord, baseNs, delta, c.Ratio)
			} else {
				fmt.Fprintf(&b, "| %s | %d | %.2fx | %.2f | %.2f | %.2fx |\n",
					c.Name, c.Records, c.Compression, c.FlatNsPerRecord, c.SCTZNsPerRecord, c.Ratio)
			}
		}
		flatNs, sctzNs, ratio := DecodeWeighted(cur.Decode)
		fmt.Fprintf(&b, "\nCorpus-weighted: flat %.2f ns/record, sctz %.2f ns/record (%.2fx).\n",
			flatNs, sctzNs, ratio)
	}
	return b.String()
}

// human formats a rate with an SI suffix (41.2M, 980k).
func human(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
