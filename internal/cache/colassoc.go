package cache

// Column-associative cache model (§5 related work, Agarwal & Pudar [2]).
//
// The organisation is folded into a 2-way structure whose two ways stand
// for the two direct-mapped sets that share a rehash pair: an address whose
// original direct-mapped index falls in the lower half of the index space
// has its *primary* (fast, 1-cycle) location in way 0 and its secondary
// (rehash, 2-cycle) location in way 1, and vice versa. A line found in its
// secondary location is swapped towards its primary one, and replacement
// follows the rehash-bit policy: a line sitting in somebody else's primary
// slot (a "guest") is evicted first.

// columnHomeWay returns which way of the folded set is the primary
// location of line address la (the most significant bit of the original
// direct-mapped index). The folded line count is CacheSize/LineSize, a
// power of two, so the index reduction is a mask.
func (s *Simulator) columnHomeWay(la uint64) int {
	total := uint64(s.main.sets * s.main.ways)
	var orig uint64
	if total&(total-1) == 0 {
		orig = la & (total - 1)
	} else {
		orig = la % total
	}
	if orig >= uint64(s.main.sets) {
		return 1
	}
	return 0
}

// columnProbe finds la and reports whether it sits in its primary slot.
// On a secondary-slot hit the two slots are swapped so the line answers
// fast next time.
func (s *Simulator) columnProbe(la uint64) (l *line, slow bool) {
	base := s.main.setIndex(la) * s.main.ways
	home := base + s.columnHomeWay(la)
	other := base + (s.main.ways - 1 - s.columnHomeWay(la))
	if hl := &s.main.lines[home]; hl.valid() && hl.tag == la {
		return hl, false
	}
	if ol := &s.main.lines[other]; ol.valid() && ol.tag == la {
		s.main.lines[home], s.main.lines[other] = s.main.lines[other], s.main.lines[home]
		return &s.main.lines[home], true
	}
	return nil, false
}

// columnInstall places line address la following the rehash-bit policy and
// returns the evicted line (invalid if none) together with the slot the
// new line occupies (so callers need not re-probe the cache):
//
//   - primary slot free: take it;
//   - primary occupied by a line *in its own primary slot*: that line is
//     demoted to its secondary slot (this set's other way), whose occupant
//     is evicted;
//   - primary occupied by a guest (a rehashed line whose primary is the
//     other way): the guest is evicted outright.
func (s *Simulator) columnInstall(la uint64) (line, *line) {
	base := s.main.setIndex(la) * s.main.ways
	homeW := s.columnHomeWay(la)
	hw := &s.main.lines[base+homeW]
	ow := &s.main.lines[base+(s.main.ways-1-homeW)]

	if !hw.valid() {
		s.main.install(hw, la)
		return line{}, hw
	}
	occupantAtHome := s.columnHomeWay(hw.tag) == homeW
	if occupantAtHome {
		evicted := *ow
		*ow = *hw
		s.main.install(hw, la)
		return evicted, hw
	}
	evicted := *hw
	s.main.install(hw, la)
	return evicted, hw
}
