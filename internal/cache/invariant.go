package cache

import "fmt"

// InvariantError is the diagnostic produced when the opt-in runtime
// invariant checker (Config.RuntimeChecks) finds corrupted simulator state.
// It is delivered by panicking — corruption means every subsequent number
// is suspect, so the simulation must stop immediately — and the experiment
// harness converts the panic into a structured failed-run record.
type InvariantError struct {
	// Invariant names the violated rule (e.g. "hit/miss accounting").
	Invariant string
	// Detail describes the observed inconsistency with the numbers.
	Detail string
	// References is how many trace records had been processed when the
	// violation was detected, locating it in the trace.
	References uint64
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("cache: invariant %q violated after %d references: %s",
		e.Invariant, e.References, e.Detail)
}

// structuralCheckInterval is how often (in references) the O(cache-size)
// structural scans run; the O(1) accounting checks run on every access.
const structuralCheckInterval = 4096

// violated raises an invariant violation.
func (s *Simulator) violated(invariant, format string, args ...interface{}) {
	panic(&InvariantError{
		Invariant:  invariant,
		Detail:     fmt.Sprintf(format, args...),
		References: s.stats.References,
	})
}

// runChecks is called at the end of every Access when RuntimeChecks is on.
func (s *Simulator) runChecks() {
	st := s.stats
	// 1. Hit/miss accounting: every reference is served by exactly one of
	// the hit paths or counted as a miss.
	hits := st.MainHits + st.BounceBackHits + st.BypassBufferHits + st.StreamBufferHits
	if hits+st.Misses != st.References {
		s.violated("hit/miss accounting",
			"hits %d (main %d + bounce-back %d + bypass %d + stream %d) + misses %d != references %d",
			hits, st.MainHits, st.BounceBackHits, st.BypassBufferHits, st.StreamBufferHits,
			st.Misses, st.References)
	}

	// 2. Words-fetched conservation: fetched bytes account for exactly the
	// fetched lines, plus any sub-line transfers (bypassed words, subblock
	// refills) which can only add to the total.
	mem := s.memory.Stats()
	lineBytes := mem.LinesFetched * uint64(s.cfg.LineSize)
	if s.cfg.Bypass == BypassNone && s.cfg.SubblockSize == 0 {
		if mem.BytesFetched != lineBytes {
			s.violated("words-fetched conservation",
				"bytes fetched %d != lines fetched %d * line size %d",
				mem.BytesFetched, mem.LinesFetched, s.cfg.LineSize)
		}
	} else if mem.BytesFetched < lineBytes {
		s.violated("words-fetched conservation",
			"bytes fetched %d < lines fetched %d * line size %d",
			mem.BytesFetched, mem.LinesFetched, s.cfg.LineSize)
	}

	// 3. Swap accounting: every bounce-back hit performs exactly one swap.
	if st.Swaps != st.BounceBackHits {
		s.violated("swap accounting", "swaps %d != bounce-back hits %d", st.Swaps, st.BounceBackHits)
	}

	if st.References%structuralCheckInterval == 0 {
		s.runStructuralChecks()
	}
}

// runStructuralChecks performs the O(cache-size) scans: bounce-back
// occupancy, duplicate tags, dual residence.
func (s *Simulator) runStructuralChecks() {
	if s.bb != nil {
		// Bounce-back occupancy can never exceed the configured capacity.
		if n := s.bb.countValid(); n > s.cfg.BounceBackLines {
			s.violated("bounce-back occupancy",
				"%d valid entries exceed capacity %d", n, s.cfg.BounceBackLines)
		}
	}
	if msg := s.CheckInvariants(); msg != "" {
		s.violated("structural integrity", "%s", msg)
	}
}

// checkBouncedBack asserts the §2.2 rule that a line re-injected into the
// main cache by a bounce-back has its temporal bit cleared (it must earn
// the bit again before it can bounce back a second time).
func (s *Simulator) checkBouncedBack(tag uint64) {
	l := s.main.lookup(tag)
	if l == nil {
		s.violated("bounce-back placement", "bounced-back line %#x not in main cache", tag)
		return
	}
	if l.temporal() {
		s.violated("temporal bit after bounce-back",
			"line %#x still temporal after bounce-back", tag)
	}
}
