package cache

import (
	"testing"
	"testing/quick"

	"softcache/internal/mem"
	"softcache/internal/timing"
	"softcache/internal/trace"
)

// randomTrace builds a reproducible random reference stream confined to a
// small address region so that conflicts, bounce-backs, swaps, virtual
// fills and prefetches all trigger frequently.
func randomTrace(seed uint64, n int, region uint64) []trace.Record {
	rng := timing.NewRNG(seed)
	out := make([]trace.Record, n)
	for i := range out {
		out[i] = trace.Record{
			Addr:     (rng.Uint64() % region) &^ 7,
			Size:     8,
			Gap:      uint8(1 + rng.Intn(5)),
			Write:    rng.Intn(4) == 0,
			Temporal: rng.Intn(3) == 0,
			Spatial:  rng.Intn(2) == 0,
			RefID:    uint32(rng.Intn(16)),
		}
	}
	return out
}

// propertyConfigs is the set of designs the invariant properties must hold
// for.
func propertyConfigs() map[string]Config {
	small := Config{
		CacheSize: 512, LineSize: 32, Assoc: 1, HitCycles: 1,
		Memory: mem.Config{LatencyCycles: 10, BusBytesPerCycle: 16, WriteBufferEntries: 4, VictimTransferCycles: 2},
	}
	soft := small
	soft.VirtualLineSize = 128
	soft.BounceBackLines = 4
	soft.BounceBackCycles = 3
	soft.SwapLockCycles = 2
	soft.BounceBackEnabled = true
	soft.UseTemporalTags = true
	soft.UseSpatialTags = true

	assoc := soft
	assoc.Assoc = 2
	assoc.TemporalPriorityReplacement = true

	prefetch := soft
	prefetch.Prefetch = PrefetchConfig{Enabled: true, SoftwareGuided: true, Degree: 2, MaxResident: 2}

	victim := soft
	victim.BounceBackEnabled = false

	bypass := small
	bypass.UseTemporalTags = true
	bypass.Bypass = BypassBuffered
	bypass.BypassBufferLines = 2

	admission := soft
	admission.TemporalOnlyAdmission = true

	noCoh := soft
	noCoh.NoCoherenceChecks = true

	return map[string]Config{
		"small": small, "soft": soft, "assoc": assoc, "prefetch": prefetch,
		"victim": victim, "bypass": bypass, "admission": admission, "nocoherence": noCoh,
	}
}

// TestInvariantsUnderRandomTraffic drives every design with random traffic
// and checks the structural invariants after every access.
func TestInvariantsUnderRandomTraffic(t *testing.T) {
	for name, cfg := range propertyConfigs() {
		t.Run(name, func(t *testing.T) {
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range randomTrace(7, 4000, 4096) {
				s.Access(r)
				if msg := s.CheckInvariants(); msg != "" {
					t.Fatalf("after access %d (%v): %s", i, r, msg)
				}
			}
			st := s.Stats()
			if st.MainHits+st.BounceBackHits+st.BypassBufferHits+st.StreamBufferHits+st.Misses != st.References {
				t.Fatalf("hit/miss accounting broken: %+v", st)
			}
		})
	}
}

// TestPropertyCostsPositive uses testing/quick: every access costs at least
// the hit time and the clock never goes backwards.
func TestPropertyCostsPositive(t *testing.T) {
	cfgs := propertyConfigs()
	f := func(seed uint64, pick uint8) bool {
		names := []string{"small", "soft", "assoc", "prefetch", "victim", "bypass"}
		cfg := cfgs[names[int(pick)%len(names)]]
		s, err := New(cfg)
		if err != nil {
			return false
		}
		lastNow := uint64(0)
		for _, r := range randomTrace(seed, 300, 2048) {
			if cost := s.Access(r); cost < cfg.HitCycles {
				return false
			}
			if s.now < lastNow {
				return false
			}
			lastNow = s.now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeterminism: the simulator is a pure function of (config,
// trace).
func TestPropertyDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := propertyConfigs()["prefetch"]
		tr := randomTrace(seed, 1000, 4096)
		run := func() Stats {
			s, _ := New(cfg)
			for _, r := range tr {
				s.Access(r)
			}
			return s.Stats()
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTagMonotonicity: on every design without bypass or prefetch,
// honouring the software tags must not *increase* the miss count versus
// ignoring them on the very same trace (the paper's "software-assisted
// caches appear to be safe" claim, in its strongest per-trace form for the
// bounce-back mechanism alone).
func TestPropertyTagSafetyBounceBack(t *testing.T) {
	base := propertyConfigs()["soft"]
	base.VirtualLineSize = 0 // isolate the temporal mechanism
	f := func(seed uint64) bool {
		tr := randomTrace(seed, 2000, 8192)
		withTags, _ := New(base)
		noTags := base
		noTags.UseTemporalTags = false
		without, _ := New(noTags)
		for _, r := range tr {
			withTags.Access(r)
			without.Access(r)
		}
		// Not a strict theorem for adversarial traces, but random traffic
		// must not show systematic harm: allow a 10% slack.
		return float64(withTags.Stats().Misses) <= 1.10*float64(without.Stats().Misses)+8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestBounceBackCancelOnInflight reproduces the §2.2 ping-pong guard: a
// bounce-back whose target line is part of the in-flight miss is canceled.
func TestBounceBackCancelOnInflight(t *testing.T) {
	cfg := Config{
		CacheSize: 512, LineSize: 32, Assoc: 1, HitCycles: 1,
		BounceBackLines: 1, BounceBackCycles: 3, SwapLockCycles: 2,
		BounceBackEnabled: true, UseTemporalTags: true, UseSpatialTags: true,
		Memory: mem.Config{LatencyCycles: 10, BusBytesPerCycle: 16, WriteBufferEntries: 4, VictimTransferCycles: 2},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Line 0 (temporal) parked in the single-entry BB cache.
	s.Access(recT(0))
	s.Access(rec(512)) // 0 -> BB
	if s.Inspect(0).Where != InBounceBack {
		t.Fatal("setup failed")
	}
	// Miss on line 0's own set again: the displaced victim (512) pushes
	// line 0 out of the BB cache; its bounce-back target (set 0) is the
	// very line being fetched -> canceled.
	s.Access(rec(1024))
	if got := s.Stats().BounceBackCanceled; got != 1 {
		t.Fatalf("canceled = %d, want 1", got)
	}
	if s.Inspect(0).Where != Absent {
		t.Fatalf("canceled bounce-back should discard the entry, got %v", s.Inspect(0).Where)
	}
}

// TestBounceBackAbortOnFullWriteBuffer: bouncing onto a dirty line needs a
// write-buffer slot; with the buffer full the transfer is aborted.
func TestBounceBackAbortOnFullWriteBuffer(t *testing.T) {
	cfg := Config{
		CacheSize: 512, LineSize: 32, Assoc: 1, HitCycles: 1,
		BounceBackLines: 1, BounceBackCycles: 3, SwapLockCycles: 2,
		BounceBackEnabled: true, UseTemporalTags: true,
		Memory: mem.Config{LatencyCycles: 10, BusBytesPerCycle: 16, WriteBufferEntries: 0, VictimTransferCycles: 2},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Access(recT(0))  // temporal line, set 0
	s.Access(rec(512)) // 0 -> BB (set 0 now holds 512)
	w := recW(512)
	s.Access(w) // dirty the occupant of set 0
	// Now force the BB entry (line 0) out: a victim from set 1 enters BB.
	s.Access(rec(32))
	s.Access(rec(512 + 32)) // 32 -> BB, line 0 must bounce onto dirty set 0
	st := s.Stats()
	if st.BounceBackAborted != 1 {
		t.Fatalf("aborted = %d, want 1 (write buffer has 0 entries)", st.BounceBackAborted)
	}
	if s.Inspect(0).Where != Absent {
		t.Fatal("aborted bounce-back should discard the entry")
	}
}

// TestScratchScanOrderIndependence: the reusable fetch-candidate buffer is
// pure scratch — whatever length, capacity or garbage contents it carries
// from earlier misses, the eviction scan must behave as if the buffer were
// freshly allocated. Sim B's scratch is actively poisoned before every
// access (junk contents with non-zero length, nil to force regrowth, or
// left dirty) and must stay in lockstep with the untouched sim A.
func TestScratchScanOrderIndependence(t *testing.T) {
	junk := []uint64{0xdeadbeef, 0, ^uint64(0), 42, 42, 7}
	for name, cfg := range propertyConfigs() {
		t.Run(name, func(t *testing.T) {
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range randomTrace(23, 4000, 4096) {
				switch i % 3 {
				case 0:
					b.fetchScratch = append(b.fetchScratch[:0], junk...)
				case 1:
					b.fetchScratch = nil
				}
				ca, cb := a.Access(r), b.Access(r)
				if ca != cb {
					t.Fatalf("record %d (%v): cost %d with clean scratch, %d with poisoned scratch", i, r, ca, cb)
				}
			}
			if sa, sb := a.Stats(), b.Stats(); sa != sb {
				t.Fatalf("stats diverge under scratch poisoning:\nclean:    %+v\npoisoned: %+v", sa, sb)
			}
		})
	}
}

// TestCheckInvariantsIdempotentReuse: the checker's hoisted seen-tag sets
// are cleared in place between calls, so back-to-back and interleaved calls
// must neither report phantom violations (stale entries) nor perturb the
// simulation (the scan is read-only on cache state).
func TestCheckInvariantsIdempotentReuse(t *testing.T) {
	for name, cfg := range propertyConfigs() {
		t.Run(name, func(t *testing.T) {
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range randomTrace(29, 3000, 4096) {
				ca, cb := a.Access(r), b.Access(r)
				if ca != cb {
					t.Fatalf("record %d: cost diverged (%d vs %d) under interleaved checks", i, ca, cb)
				}
				if i%13 == 0 {
					for k := 0; k < 3; k++ {
						if msg := b.CheckInvariants(); msg != "" {
							t.Fatalf("record %d, repeat %d: %s", i, k, msg)
						}
					}
				}
			}
			lines := append([]line(nil), b.main.lines...)
			for k := 0; k < 50; k++ {
				if msg := b.CheckInvariants(); msg != "" {
					t.Fatalf("repeat %d: phantom violation %q", k, msg)
				}
			}
			for i := range lines {
				if lines[i] != b.main.lines[i] {
					t.Fatalf("CheckInvariants mutated main-cache line %d: %+v -> %+v", i, lines[i], b.main.lines[i])
				}
			}
			if sa, sb := a.Stats(), b.Stats(); sa != sb {
				t.Fatalf("stats diverge under interleaved checks:\nplain:   %+v\nchecked: %+v", sa, sb)
			}
		})
	}
}

// TestCheckInvariantsDetectsSeededCorruption: the duplicate scan must flag
// an injected duplicate on every call — map iteration order varies between
// runs, and the in-place-cleared scratch sets must not mask repeats.
func TestCheckInvariantsDetectsSeededCorruption(t *testing.T) {
	cfg := propertyConfigs()["assoc"]
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range randomTrace(31, 2000, 4096) {
		s.Access(r)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("healthy state flagged: %s", msg)
	}
	// Duplicate a valid line into its set sibling (same set, so the
	// wrong-set check stays quiet and the duplicate scan must fire).
	var set int
	found := false
	for set = 0; set < s.main.sets; set++ {
		if s.main.lines[set*s.main.ways].valid() {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no valid line after warmup")
	}
	saved := s.main.lines[set*s.main.ways+1]
	s.main.lines[set*s.main.ways+1] = s.main.lines[set*s.main.ways]
	for k := 0; k < 20; k++ {
		if msg := s.CheckInvariants(); msg != "duplicate line in main cache" {
			t.Fatalf("repeat %d: corruption missed, got %q", k, msg)
		}
	}
	s.main.lines[set*s.main.ways+1] = saved
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("state not restored: %s", msg)
	}
}

// TestCheckInvariantsZeroAllocWarm: once the seen-tag sets exist, the
// periodic structural scan must be allocation-free — it runs inside the
// steady-state loop when RuntimeChecks is on.
func TestCheckInvariantsZeroAllocWarm(t *testing.T) {
	for name, cfg := range propertyConfigs() {
		t.Run(name, func(t *testing.T) {
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range randomTrace(37, 2000, 4096) {
				s.Access(r)
			}
			if msg := s.CheckInvariants(); msg != "" { // warm the scratch sets
				t.Fatal(msg)
			}
			allocs := testing.AllocsPerRun(50, func() {
				if msg := s.CheckInvariants(); msg != "" {
					t.Error(msg)
				}
			})
			if allocs != 0 {
				t.Errorf("warm CheckInvariants allocates %.1f times per call, want 0", allocs)
			}
		})
	}
}

// TestFourWayBounceBack exercises the set-associative bounce-back variant.
func TestFourWayBounceBack(t *testing.T) {
	cfg := propertyConfigs()["soft"]
	cfg.BounceBackLines = 8
	cfg.BounceBackAssoc = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range randomTrace(11, 3000, 4096) {
		s.Access(r)
		if msg := s.CheckInvariants(); msg != "" {
			t.Fatalf("after access %d: %s", i, msg)
		}
	}
	if s.Stats().BounceBackHits == 0 {
		t.Fatal("expected some bounce-back hits under random conflict traffic")
	}
}
