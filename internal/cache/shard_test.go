package cache

import (
	"math/rand"
	"reflect"
	"testing"

	"softcache/internal/mem"
)

func shardBaseConfig() Config {
	return Config{
		CacheSize: 8 * 1024,
		LineSize:  32,
		Assoc:     1,
		HitCycles: 1,
		Memory:    mem.Config{LatencyCycles: 20, BusBytesPerCycle: 16, WriteBufferEntries: 8, VictimTransferCycles: 2},
	}
}

func shardSoftConfig() Config {
	c := shardBaseConfig()
	c.BounceBackLines = 8
	c.BounceBackCycles = 3
	c.SwapLockCycles = 2
	c.BounceBackEnabled = true
	c.VirtualLineSize = 64
	c.UseTemporalTags = true
	c.UseSpatialTags = true
	return c
}

func mustPlan(t *testing.T, cfg Config, requested int) ShardPlan {
	t.Helper()
	p, err := PlanShards(cfg, requested)
	if err != nil {
		t.Fatalf("PlanShards(%d): %v", requested, err)
	}
	return p
}

func TestPlanShardsCounts(t *testing.T) {
	base := shardBaseConfig() // 256 sets
	cases := []struct {
		name      string
		cfg       Config
		requested int
		shards    int
		exact     bool
	}{
		{"one", base, 1, 1, true},
		{"zero", base, 0, 1, true},
		{"negative", base, -3, 1, true},
		{"two", base, 2, 2, true},
		{"four", base, 4, 4, true},
		{"non-pow2-rounds-down", base, 6, 4, true},
		{"three-rounds-down", base, 3, 2, true},
		{"more-than-sets", base, 1024, 256, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mustPlan(t, tc.cfg, tc.requested)
			if p.Shards != tc.shards || p.Exact != tc.exact {
				t.Fatalf("plan = {Shards:%d Exact:%v}, want {Shards:%d Exact:%v}",
					p.Shards, p.Exact, tc.shards, tc.exact)
			}
		})
	}
}

func TestPlanShardsUnshardableClampsToOne(t *testing.T) {
	col := shardBaseConfig()
	col.ColumnAssociative = true

	rnd := shardBaseConfig()
	rnd.Assoc = 2
	rnd.Replacement = ReplaceRandom

	for name, cfg := range map[string]Config{"column-associative": col, "random-assoc": rnd} {
		t.Run(name, func(t *testing.T) {
			p := mustPlan(t, cfg, 8)
			if p.Shards != 1 || !p.Exact {
				t.Fatalf("plan = {Shards:%d Exact:%v}, want clamp to one exact shard", p.Shards, p.Exact)
			}
		})
	}

	// Random replacement on a direct-mapped cache never consumes the rng
	// stream, so it shards freely and exactly.
	dmRnd := shardBaseConfig()
	dmRnd.Replacement = ReplaceRandom
	if p := mustPlan(t, dmRnd, 8); p.Shards != 8 || !p.Exact {
		t.Fatalf("direct-mapped random plan = {Shards:%d Exact:%v}, want {8 true}", p.Shards, p.Exact)
	}
}

func TestPlanShardsVirtualBlockBound(t *testing.T) {
	// 2 KiB cache, 32 B lines -> 64 sets; variable virtual lines reach
	// 256 B = 8 lines, so at most 64/8 = 8 shards keep fills shard-local.
	cfg := shardSoftConfig()
	cfg.CacheSize = 2 * 1024
	cfg.VariableVirtualLines = true
	if p := mustPlan(t, cfg, 64); p.Shards != 8 {
		t.Fatalf("Shards = %d, want 8 (64 sets / 8-line max block)", p.Shards)
	}
	// Without the variable extension the block is 2 lines -> 32 shards.
	cfg.VariableVirtualLines = false
	if p := mustPlan(t, cfg, 64); p.Shards != 32 {
		t.Fatalf("Shards = %d, want 32 (64 sets / 2-line block)", p.Shards)
	}
}

func TestPlanShardsExactness(t *testing.T) {
	soft := shardSoftConfig()

	victim := shardBaseConfig()
	victim.BounceBackLines = 8
	victim.BounceBackCycles = 3
	victim.SwapLockCycles = 2

	stream := shardBaseConfig()
	stream.StreamBuffers = 4
	stream.StreamBufferDepth = 4

	bypassPlain := shardBaseConfig()
	bypassPlain.Bypass = BypassPlain
	bypassPlain.UseTemporalTags = true

	bypassBuf := bypassPlain
	bypassBuf.Bypass = BypassBuffered
	bypassBuf.BypassBufferLines = 8

	wt := shardBaseConfig()
	wt.Writes = WriteThroughAllocate

	prefetch := soft
	prefetch.Prefetch = PrefetchConfig{Enabled: true, SoftwareGuided: true, Degree: 1}

	subblocked := shardBaseConfig()
	subblocked.LineSize = 64
	subblocked.SubblockSize = 32

	assoc4 := shardBaseConfig()
	assoc4.Assoc = 4

	exact := map[string]Config{
		"standard":   shardBaseConfig(),
		"bypass":     bypassPlain,
		"subblocked": subblocked,
		"assoc4-lru": assoc4,
	}
	coupled := map[string]Config{
		"soft":            soft,
		"victim":          victim,
		"stream-buffers":  stream,
		"bypass-buffered": bypassBuf,
		"write-through":   wt,
		"prefetch":        prefetch,
	}
	for name, cfg := range exact {
		if p := mustPlan(t, cfg, 4); p.Shards != 4 || !p.Exact {
			t.Errorf("%s: plan = {Shards:%d Exact:%v}, want {4 true}", name, p.Shards, p.Exact)
		}
	}
	for name, cfg := range coupled {
		if p := mustPlan(t, cfg, 4); p.Shards != 4 || p.Exact {
			t.Errorf("%s: plan = {Shards:%d Exact:%v}, want {4 false}", name, p.Shards, p.Exact)
		}
	}
}

func TestPlanShardsRejectsInvalidConfig(t *testing.T) {
	cfg := shardBaseConfig()
	cfg.CacheSize = 1000 // not a power of two
	if _, err := PlanShards(cfg, 4); err == nil {
		t.Fatal("PlanShards accepted an invalid config")
	}
}

func TestShardOfContiguousAlignedRanges(t *testing.T) {
	cfg := shardSoftConfig()
	cfg.VariableVirtualLines = true
	cfg.VirtualLineSize = 64
	p := mustPlan(t, cfg, 4)
	if p.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", p.Shards)
	}
	sets := cfg.CacheSize / (cfg.LineSize * cfg.Assoc)
	perShard := sets / p.Shards
	for set := 0; set < sets; set++ {
		addr := uint64(set*cfg.LineSize + 7)
		want := set / perShard
		if got := p.ShardOf(addr); got != want {
			t.Fatalf("ShardOf(set %d) = %d, want %d (contiguous ranges)", set, got, want)
		}
		// Aliased addresses (same set, different tag) land identically.
		if got := p.ShardOf(addr + uint64(cfg.CacheSize*5)); got != want {
			t.Fatalf("ShardOf(aliased set %d) = %d, want %d", set, got, want)
		}
	}
	// Every address of a maximal virtual block maps to one shard, so a
	// virtual fill never crosses shards.
	const maxBlock = 256
	for base := uint64(0); base < uint64(sets*cfg.LineSize); base += maxBlock {
		first := p.ShardOf(base)
		for off := uint64(0); off < maxBlock; off += uint64(cfg.LineSize) {
			if got := p.ShardOf(base + off); got != first {
				t.Fatalf("virtual block at %#x spans shards %d and %d", base, first, got)
			}
		}
	}
}

func TestShardOfSingleShardAlwaysZero(t *testing.T) {
	p := mustPlan(t, shardBaseConfig(), 1)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		if got := p.ShardOf(rng.Uint64()); got != 0 {
			t.Fatalf("ShardOf = %d on a single-shard plan", got)
		}
	}
}

// randomStats fills every counter (via the same enumeration the merge
// uses) with seeded random values.
func randomStats(rng *rand.Rand) Stats {
	var s Stats
	for _, c := range s.counters() {
		*c = rng.Uint64() >> 8 // headroom so sums cannot overflow
	}
	return s
}

func TestMergeShardStatsSumsAndIsOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 5
	shards := make([]ShardStats, n)
	var want Stats
	for i := range shards {
		st := randomStats(rng)
		want.Add(&st)
		shards[i] = SealShard(i, st)
	}
	merged, err := MergeShardStats(shards)
	if err != nil {
		t.Fatalf("MergeShardStats: %v", err)
	}
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("merged = %+v, want %+v", merged, want)
	}
	for trial := 0; trial < 20; trial++ {
		perm := append([]ShardStats(nil), shards...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got, err := MergeShardStats(perm)
		if err != nil {
			t.Fatalf("permuted merge: %v", err)
		}
		if !reflect.DeepEqual(got, merged) {
			t.Fatalf("merge depends on completion order")
		}
	}
}

// TestMergeShardStatsDetectsCorruption is the seeded-corruption property:
// flip one bit of one counter in one sealed shard and the merge must
// refuse. Every counter of every shard is tried.
func TestMergeShardStatsDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	build := func() []ShardStats {
		shards := make([]ShardStats, 3)
		r := rand.New(rand.NewSource(7))
		for i := range shards {
			shards[i] = SealShard(i, randomStats(r))
		}
		return shards
	}
	pristine := build()
	if _, err := MergeShardStats(pristine); err != nil {
		t.Fatalf("pristine merge failed: %v", err)
	}
	nCounters := len(pristine[0].Stats.counters())
	for shard := 0; shard < len(pristine); shard++ {
		for field := 0; field < nCounters; field++ {
			shards := build()
			bit := uint(rng.Intn(64))
			*shards[shard].Stats.counters()[field] ^= 1 << bit
			if _, err := MergeShardStats(shards); err == nil {
				t.Fatalf("bit flip in shard %d counter %d went undetected", shard, field)
			}
		}
	}
}

func TestMergeShardStatsIndexValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mk := func(idx int) ShardStats { return SealShard(idx, randomStats(rng)) }

	if _, err := MergeShardStats(nil); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := MergeShardStats([]ShardStats{mk(0), mk(0)}); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, err := MergeShardStats([]ShardStats{mk(0), mk(2)}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := MergeShardStats([]ShardStats{mk(1), mk(0)}); err != nil {
		t.Errorf("out-of-order (but complete) indices rejected: %v", err)
	}
}

// uint64FieldAddrs walks v (a struct value) and returns the address of
// every uint64 field, recursing into nested structs.
func uint64FieldAddrs(v reflect.Value) []*uint64 {
	var out []*uint64
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			out = append(out, f.Addr().Interface().(*uint64))
		case reflect.Struct:
			out = append(out, uint64FieldAddrs(f)...)
		}
	}
	return out
}

// TestCountersCoverEveryStatsField pins that the merge enumeration in
// counters() covers every uint64 counter of Stats (including nested
// mem.Stats): adding a field without extending counters() fails here,
// not silently in the sharded totals.
func TestCountersCoverEveryStatsField(t *testing.T) {
	var s Stats
	want := uint64FieldAddrs(reflect.ValueOf(&s).Elem())
	got := s.counters()
	if len(got) != len(want) {
		t.Fatalf("counters() lists %d fields, reflection finds %d — extend Stats.counters()", len(got), len(want))
	}
	set := make(map[*uint64]bool, len(want))
	for _, p := range want {
		set[p] = true
	}
	for i, p := range got {
		if !set[p] {
			t.Fatalf("counters()[%d] does not point at a Stats field", i)
		}
		delete(set, p)
	}
	if len(set) != 0 {
		t.Fatalf("%d Stats fields missing from counters()", len(set))
	}
}

func TestChecksumSensitiveToOrderAndValue(t *testing.T) {
	var a, b Stats
	a.MainHits = 1
	b.Misses = 1
	if a.Checksum() == b.Checksum() {
		t.Fatal("checksum ignores which counter holds the value")
	}
	var zero Stats
	if a.Checksum() == zero.Checksum() {
		t.Fatal("checksum ignores counter values")
	}
}
