package cache

import (
	"fmt"
	"hash/fnv"

	"softcache/internal/trace"
)

// This file holds the set-sharding contract of the parallel kernel
// (core.SimulateSharded): PlanShards decides how many independent
// set-partitions a configuration admits and how records route to them,
// and MergeShardStats folds the per-shard results back into one Stats
// deterministically, verifying integrity on the way.
//
// The enabling observation (ROADMAP "set-sharded parallel kernel", and
// the Bicameral Cache split in PAPERS.md) is that sets of the main cache
// are independent address partitions: a reference can only ever touch the
// set its address maps to. A trace partitioned by set index therefore
// simulates each partition exactly as the sequential kernel would —
// PROVIDED nothing couples the sets. The coupling sources in this model,
// and how the plan treats each, are:
//
//   - Bounce-back / victim cache, stream buffers, bypass buffer: shared
//     fully-/set-associative side structures reachable from every set.
//     Sharding gives each shard its own full-size copy, which changes
//     their effective capacity and the stall/lock timing they induce.
//     The plan still shards (the structures dominate the win the kernel
//     exists for) but marks the plan inexact; the refmodel differential
//     suite pins the divergence bounds (see docs/PERF.md).
//   - Write-through policies: every store posts to the one shared write
//     buffer, whose occupancy is time-coupled across sets. Same
//     treatment: shard with per-shard write buffers, inexact.
//   - Prefetching: issues fetches into the bounce-back cache, so it
//     inherits that structure's coupling. Inexact.
//   - Column associativity: a line's alternate location is the hashed
//     set index^(sets/2), which pairs sets across the contiguous shard
//     ranges ShardOf uses. Unshardable — the plan clamps to one shard.
//   - Random replacement with Assoc > 1: victim choice consumes a single
//     per-cache xorshift stream, so outcomes depend on the global
//     interleaving of misses. Unshardable, clamps to one shard. (With
//     Assoc == 1 the stream is never advanced and the config shards
//     exactly.)
//
// Everything else — LRU/FIFO/temporal-priority replacement, virtual
// lines (fills are aligned to the virtual block, and setsPerShard is
// kept a multiple of the largest block so a fill never crosses a shard
// boundary), sub-blocking, plain bypass, write-back-allocate timing
// (without a bounce-back cache the port is never still locked when the
// next access issues, and the memory fetch penalty is a pure function
// of the request) — is set-local, and the plan is exact: sharded
// counters sum to exactly the sequential ones.

// ShardPlan describes a validated set-partitioning of one configuration.
type ShardPlan struct {
	// Shards is the effective shard count (>= 1). It can be lower than
	// requested: clamped to a power of two, to the set count, to keep
	// virtual-line fills shard-local, or to 1 when the configuration is
	// unshardable.
	Shards int
	// Exact reports whether a sharded run reproduces the sequential
	// counters exactly. False means bounded divergence on the timing /
	// side-structure metrics; see the package comment above and the
	// sharded differential suite for the pinned bounds.
	Exact bool

	lineShift  uint   // log2(LineSize)
	setMask    uint64 // sets-1 (sets is a power of two whenever Shards > 1)
	shardShift uint   // log2(sets/Shards): set index -> shard index
}

// PlanShards validates cfg and returns the sharding plan for a requested
// shard count. requested <= 1 plans a single shard (the sequential
// kernel), which is exact for every valid configuration.
func PlanShards(cfg Config, requested int) (ShardPlan, error) {
	if err := cfg.Validate(); err != nil {
		return ShardPlan{}, err
	}
	sets := cfg.CacheSize / (cfg.LineSize * cfg.Assoc)
	p := ShardPlan{
		Shards:    1,
		Exact:     true,
		lineShift: uint(log2(cfg.LineSize)),
		setMask:   uint64(sets - 1),
	}
	shards := 1
	if requested > 1 && isPow2(sets) && !cfg.ColumnAssociative &&
		!(cfg.Replacement == ReplaceRandom && cfg.Assoc > 1) {
		// Largest power of two <= requested…
		shards = 1
		for shards*2 <= requested {
			shards *= 2
		}
		// …such that every shard owns at least one maximal virtual-line
		// block of sets (so a virtual fill never crosses shards), and at
		// least one set.
		block := cfg.virtualLines()
		if cfg.VariableVirtualLines {
			if m := trace.VirtualHintBytes(3) / cfg.LineSize; m > block {
				block = m
			}
		}
		for shards > 1 && sets/shards < block {
			shards /= 2
		}
		for shards > sets {
			shards /= 2
		}
	}
	p.Shards = shards
	if shards > 1 {
		p.Exact = shardExact(cfg)
		p.shardShift = uint(log2(sets / shards))
	} else {
		// Everything routes to shard 0.
		p.shardShift = uint(log2(nextPow2(sets)))
	}
	return p, nil
}

// shardExact reports whether cfg couples main-cache sets through any
// shared structure (see the package comment for the case-by-case
// argument). Only meaningful for plans that actually shard.
func shardExact(cfg Config) bool {
	return cfg.BounceBackLines == 0 &&
		cfg.StreamBuffers == 0 &&
		cfg.Bypass != BypassBuffered &&
		!cfg.Prefetch.Enabled &&
		cfg.Writes == WriteBackAllocate
}

// ShardOf maps a record address to its shard index. Shards own
// contiguous, aligned set ranges, so virtual-line fills (aligned blocks
// of at most setsPerShard sets) stay inside one shard.
func (p ShardPlan) ShardOf(addr uint64) int {
	return int(((addr >> p.lineShift) & p.setMask) >> p.shardShift)
}

// nextPow2 returns the smallest power of two >= n (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// counters returns pointers to every uint64 counter of s, including the
// nested memory-side stats, in a fixed order. It is the single place
// that enumerates the fields: Add, Checksum and (transitively) the merge
// all derive from it, and a reflection test pins that it covers every
// counter so a new Stats field cannot silently escape the merge.
func (s *Stats) counters() []*uint64 {
	return []*uint64{
		&s.References, &s.Reads, &s.Writes,
		&s.MainHits, &s.BounceBackHits, &s.PrefetchHits,
		&s.BypassBufferHits, &s.StreamBufferHits, &s.StreamBufferAllocations,
		&s.ColumnSlowHits, &s.Misses,
		&s.CostCycles, &s.LockStallCycles,
		&s.Swaps, &s.BouncedBack, &s.BounceBackCanceled, &s.BounceBackAborted,
		&s.Invalidations,
		&s.VirtualFills, &s.VirtualLinesFetched, &s.VirtualLinesSkipped,
		&s.PrefetchesIssued, &s.PrefetchDiscarded, &s.SoftwarePrefetches,
		&s.SubblockFills, &s.BypassMemFetches,
		&s.TemporalBitSets,
		&s.Mem.BytesFetched, &s.Mem.LinesFetched, &s.Mem.Requests,
		&s.Mem.Writebacks, &s.Mem.WritebackStallCycles,
		&s.Mem.WriteBufferFullAborts, &s.Mem.BytesWritten,
		&s.Mem.WriteThroughStalls,
	}
}

// Add accumulates o into s counter by counter. Every counter is an
// additive event count, so summing per-shard stats in a fixed order is
// the whole merge.
func (s *Stats) Add(o *Stats) {
	dst, src := s.counters(), o.counters()
	for i := range dst {
		*dst[i] += *src[i]
	}
}

// Checksum returns an order-sensitive FNV-1a digest of every counter.
// It seals a shard's stats at worker completion so any later corruption
// (a bit flip, an errant write) is detected by MergeShardStats.
func (s *Stats) Checksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range s.counters() {
		v := *c
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// ShardStats is one shard's sealed contribution to a sharded run.
type ShardStats struct {
	// Index is the shard's position in the plan (0 <= Index < Shards).
	Index int
	// Stats is the shard's final counters.
	Stats Stats
	// Checksum is Stats.Checksum() taken when the shard finished.
	Checksum uint64
}

// SealShard packages a finished shard's stats with their integrity
// checksum.
func SealShard(index int, stats Stats) ShardStats {
	return ShardStats{Index: index, Stats: stats, Checksum: stats.Checksum()}
}

// MergeShardStats deterministically folds per-shard stats into one
// Stats. The slice may arrive in any completion order: shards are summed
// in Index order, so the result is independent of scheduling. Before
// summing it verifies that every checksum still matches its stats and
// that the indices form exactly {0..n-1}; a failure returns an error
// naming the offending shard (the seeded-corruption test flips one bit
// and asserts this trips).
func MergeShardStats(shards []ShardStats) (Stats, error) {
	var total Stats
	if len(shards) == 0 {
		return total, fmt.Errorf("cache: merge of zero shards")
	}
	seen := make([]bool, len(shards))
	ordered := make([]*Stats, len(shards))
	for i := range shards {
		sh := &shards[i]
		if sh.Index < 0 || sh.Index >= len(shards) {
			return Stats{}, fmt.Errorf("cache: shard index %d out of range [0,%d)", sh.Index, len(shards))
		}
		if seen[sh.Index] {
			return Stats{}, fmt.Errorf("cache: duplicate shard index %d", sh.Index)
		}
		seen[sh.Index] = true
		if got := sh.Stats.Checksum(); got != sh.Checksum {
			return Stats{}, fmt.Errorf("cache: shard %d stats corrupted: checksum %#x, sealed %#x", sh.Index, got, sh.Checksum)
		}
		ordered[sh.Index] = &sh.Stats
	}
	for _, s := range ordered {
		total.Add(s)
	}
	return total, nil
}
