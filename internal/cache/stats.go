package cache

import "softcache/internal/mem"

// Stats accumulates per-simulation counters. All fields are raw counts; use
// the methods for the derived metrics the paper reports.
type Stats struct {
	// References is the number of trace records processed.
	References uint64
	// Reads / Writes split References by direction.
	Reads  uint64
	Writes uint64

	// MainHits are 1-cycle hits in the main cache.
	MainHits uint64
	// BounceBackHits are hits in the bounce-back/victim cache (3 cycles +
	// swap). PrefetchHits is the subset that hit on a prefetched line.
	BounceBackHits uint64
	PrefetchHits   uint64
	// BypassBufferHits are buffered-bypass hits.
	BypassBufferHits uint64
	// StreamBufferHits are demand misses served by a stream-buffer head
	// (related-work baseline); StreamBufferAllocations counts buffer
	// (re)assignments.
	StreamBufferHits        uint64
	StreamBufferAllocations uint64
	// ColumnSlowHits are column-associative hits in the alternate (slow)
	// location.
	ColumnSlowHits uint64
	// Misses are references serviced by memory (including plain-bypass
	// word fetches).
	Misses uint64

	// CostCycles is the summed access cost; AMAT = CostCycles/References.
	CostCycles uint64
	// LockStallCycles is the part of CostCycles caused by the cache still
	// being locked by a previous swap when the access arrived.
	LockStallCycles uint64

	// Swaps counts main/bounce-back exchanges on bounce-back hits.
	Swaps uint64
	// BouncedBack counts temporal lines re-injected into the main cache.
	BouncedBack uint64
	// BounceBackCanceled counts bounce-backs canceled because the target
	// line was part of the in-flight miss (§2.2 ping-pong avoidance).
	BounceBackCanceled uint64
	// BounceBackAborted counts bounce-backs abandoned because the write
	// buffer was full and the displaced main line was dirty.
	BounceBackAborted uint64
	// Invalidations counts main-cache lines invalidated by the
	// virtual-line/bounce-back coherence rule.
	Invalidations uint64
	// VirtualFills counts misses that triggered a multi-line virtual fill;
	// VirtualLinesFetched / VirtualLinesSkipped split the candidate lines
	// into fetched vs already-resident.
	VirtualFills        uint64
	VirtualLinesFetched uint64
	VirtualLinesSkipped uint64
	// PrefetchesIssued counts prefetch fetches; PrefetchDiscarded counts
	// prefetched lines evicted from the bounce-back cache untouched.
	PrefetchesIssued  uint64
	PrefetchDiscarded uint64
	// SoftwarePrefetches counts explicit prefetch instructions processed
	// (§4.4 extension). They are excluded from References.
	SoftwarePrefetches uint64
	// SubblockFills counts subblock refills under sub-block placement
	// (both tag-matching holes and full directory replacements).
	SubblockFills uint64
	// BypassMemFetches counts plain-bypass word fetches.
	BypassMemFetches uint64

	// TemporalBitSets counts temporal-bit transitions 0->1 on lines.
	TemporalBitSets uint64

	// Mem mirrors the memory-side counters at the end of the run.
	Mem mem.Stats
}

// AMAT returns the average memory access time in cycles.
func (s Stats) AMAT() float64 {
	if s.References == 0 {
		return 0
	}
	return float64(s.CostCycles) / float64(s.References)
}

// MissRatio returns misses per reference (bounce-back and bypass-buffer
// hits count as hits, matching the paper's hit repartition of fig. 6b).
func (s Stats) MissRatio() float64 {
	if s.References == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.References)
}

// HitRatio returns 1 - MissRatio.
func (s Stats) HitRatio() float64 { return 1 - s.MissRatio() }

// MainHitFraction returns the share of all hits served by the main cache
// (fig. 6b's "repartition of cache hits").
func (s Stats) MainHitFraction() float64 {
	hits := s.MainHits + s.BounceBackHits + s.BypassBufferHits + s.StreamBufferHits
	if hits == 0 {
		return 0
	}
	return float64(s.MainHits) / float64(hits)
}

// WordsPerReference returns memory traffic as 8-byte words fetched per
// reference (fig. 7a's y axis).
func (s Stats) WordsPerReference() float64 {
	if s.References == 0 {
		return 0
	}
	return float64(s.Mem.BytesFetched) / 8 / float64(s.References)
}
