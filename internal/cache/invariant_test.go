package cache

import (
	"strings"
	"testing"

	"softcache/internal/mem"
	"softcache/internal/trace"
)

func checkedConfig() Config {
	return Config{
		CacheSize:         1024,
		LineSize:          32,
		Assoc:             1,
		HitCycles:         1,
		VirtualLineSize:   64,
		BounceBackLines:   8,
		BounceBackCycles:  3,
		SwapLockCycles:    2,
		BounceBackEnabled: true,
		UseTemporalTags:   true,
		UseSpatialTags:    true,
		RuntimeChecks:     true,
		Memory: mem.Config{
			LatencyCycles:        20,
			BusBytesPerCycle:     16,
			WriteBufferEntries:   8,
			VictimTransferCycles: 2,
		},
	}
}

// synthetic trace that exercises hits, misses, swaps, bounce-backs and
// virtual fills under a tiny cache, with the checker verifying every access.
func adversarialTrace(n int) *trace.Trace {
	t := &trace.Trace{Name: "invariant-exerciser"}
	for i := 0; i < n; i++ {
		r := trace.Record{
			Addr:     uint64((i * 13) % 4096 * 8),
			Size:     8,
			Gap:      uint8(1 + i%3),
			Write:    i%4 == 0,
			Temporal: i%2 == 0,
			Spatial:  i%3 == 0,
		}
		if i%7 == 0 {
			r.Addr = uint64(i % 64 * 8) // heavy conflict region
		}
		t.Append(r)
	}
	return t
}

// TestRuntimeChecksPassOnHealthySimulations: the checker must stay silent
// across the design space on well-formed traces.
func TestRuntimeChecksPassOnHealthySimulations(t *testing.T) {
	tr := adversarialTrace(20000)
	configs := map[string]func() Config{
		"soft":   checkedConfig,
		"victim": func() Config { c := checkedConfig(); c.BounceBackEnabled = false; return c },
		"standard": func() Config {
			c := checkedConfig()
			c.BounceBackLines = 0
			c.BounceBackCycles = 0
			c.VirtualLineSize = 0
			return c
		},
		"2way": func() Config { c := checkedConfig(); c.Assoc = 2; return c },
		"subblock": func() Config {
			c := checkedConfig()
			c.BounceBackLines = 0
			c.BounceBackCycles = 0
			c.VirtualLineSize = 0
			c.LineSize = 64
			c.SubblockSize = 32
			return c
		},
		"bypass": func() Config {
			c := checkedConfig()
			c.BounceBackLines = 0
			c.BounceBackCycles = 0
			c.VirtualLineSize = 0
			c.Bypass = BypassPlain
			return c
		},
		"stream-buffers": func() Config {
			c := checkedConfig()
			c.BounceBackLines = 0
			c.BounceBackCycles = 0
			c.VirtualLineSize = 0
			c.StreamBuffers = 4
			return c
		},
	}
	for name, mk := range configs {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("invariant checker fired on healthy simulation: %v", p)
				}
			}()
			s, err := New(mk())
			if err != nil {
				t.Fatal(err)
			}
			stats := s.Run(tr)
			if stats.References == 0 {
				t.Fatal("no references simulated")
			}
		})
	}
}

// TestInvariantViolationPanicsWithDiagnostic: corrupting the accounting
// must raise *InvariantError on the very next access.
func TestInvariantViolationPanicsWithDiagnostic(t *testing.T) {
	s, err := New(checkedConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := adversarialTrace(100)
	for _, r := range tr.Records[:50] {
		s.Access(r)
	}
	s.stats.Misses += 3 // inject state corruption

	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("corrupted accounting not detected")
		}
		ie, ok := p.(*InvariantError)
		if !ok {
			t.Fatalf("panic value %T, want *InvariantError", p)
		}
		if ie.Invariant != "hit/miss accounting" {
			t.Fatalf("invariant = %q", ie.Invariant)
		}
		if ie.References == 0 || !strings.Contains(ie.Error(), "invariant") {
			t.Fatalf("diagnostic incomplete: %v", ie)
		}
	}()
	s.Access(tr.Records[50])
}

// TestBytesFetchedConservationViolation: a traffic accounting mismatch is
// caught by the words-fetched conservation rule.
func TestBytesFetchedConservationViolation(t *testing.T) {
	s, err := New(checkedConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := adversarialTrace(10)
	for _, r := range tr.Records[:5] {
		s.Access(r)
	}
	s.memory.PrefetchFetch(0, 0) // harmless
	// Corrupt traffic accounting: bytes without lines.
	s.memory.PrefetchFetch(1, 7)

	defer func() {
		p := recover()
		ie, ok := p.(*InvariantError)
		if !ok {
			t.Fatalf("panic = %v (%T), want *InvariantError", p, p)
		}
		if ie.Invariant != "words-fetched conservation" {
			t.Fatalf("invariant = %q", ie.Invariant)
		}
	}()
	s.Access(tr.Records[5])
}

// TestRuntimeChecksOffByDefault: without the opt-in the corrupted state
// goes unnoticed (that silence is exactly what RuntimeChecks exists to
// fix, but it must stay opt-in for speed).
func TestRuntimeChecksOffByDefault(t *testing.T) {
	cfg := checkedConfig()
	cfg.RuntimeChecks = false
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := adversarialTrace(20)
	for _, r := range tr.Records[:10] {
		s.Access(r)
	}
	s.stats.Misses += 3
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("checks ran despite RuntimeChecks=false: %v", p)
		}
	}()
	s.Access(tr.Records[10])
}
