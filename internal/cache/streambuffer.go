package cache

// streamBuffer is one of Jouppi's stream buffers (§5 related work, [19]):
// a FIFO of consecutive line addresses prefetched after a miss. Only the
// head entry has a comparator; a demand miss matching the head pops it into
// the main cache and the buffer prefetches one more line at the tail.
//
// The paper's criticism — "the mechanism does not work properly if the
// number of array references within the loop body that induce
// compulsory/capacity misses is larger than the number of stream buffers" —
// falls out of this model naturally: interleaved streams thrash the LRU
// buffer allocation.
type streamBuffer struct {
	head    uint64   // line address the head comparator watches
	readyAt []uint64 // cycle at which each FIFO slot's line arrives
	valid   bool
	lru     uint64
}

// streamBufferSet is the collection of buffers plus its timing parameters.
type streamBufferSet struct {
	bufs     []streamBuffer
	depth    int
	lineSize int
	transfer int // bus cycles per line
	tick     uint64
}

func newStreamBufferSet(count, depth, lineSize, transferCycles int) *streamBufferSet {
	s := &streamBufferSet{
		bufs:     make([]streamBuffer, count),
		depth:    depth,
		lineSize: lineSize,
		transfer: transferCycles,
	}
	// The FIFO slots are allocated once here and reused across stream
	// (re)assignments: allocate() runs on every demand miss of a
	// stream-buffer configuration, squarely inside the steady-state loop.
	for i := range s.bufs {
		s.bufs[i].readyAt = make([]uint64, depth)
	}
	return s
}

// probe checks every head comparator for line address la. On a hit it
// returns the buffer and the cycle its head line arrives from memory.
func (s *streamBufferSet) probe(la uint64) (*streamBuffer, uint64) {
	for i := range s.bufs {
		b := &s.bufs[i]
		if b.valid && b.head == la {
			return b, b.readyAt[0]
		}
	}
	return nil, 0
}

// pop consumes the head of buffer b (the line moved into the main cache)
// and schedules the prefetch of the next sequential line at the tail. It
// returns the line size in bytes of the new prefetch so the caller can
// account the traffic.
func (s *streamBufferSet) pop(b *streamBuffer, now uint64) int {
	s.tick++
	b.lru = s.tick
	b.head++
	copy(b.readyAt, b.readyAt[1:])
	last := now
	if n := len(b.readyAt); n > 1 && b.readyAt[n-2] > last {
		last = b.readyAt[n-2]
	}
	b.readyAt[len(b.readyAt)-1] = last + uint64(s.transfer)
	return s.lineSize
}

// allocate (re)assigns the LRU buffer to a new stream starting after the
// missed line la, with the i-th slot arriving latency + (i+1) transfers
// after now. It returns the prefetch traffic in bytes.
func (s *streamBufferSet) allocate(la uint64, now uint64, latency int) int {
	var victim *streamBuffer
	for i := range s.bufs {
		b := &s.bufs[i]
		if !b.valid {
			victim = b
			break
		}
		if victim == nil || b.lru < victim.lru {
			victim = b
		}
	}
	if victim == nil {
		return 0
	}
	s.tick++
	victim.head = la + 1
	victim.valid = true
	victim.lru = s.tick
	for i := 0; i < s.depth; i++ {
		victim.readyAt[i] = now + uint64(latency) + uint64((i+1)*s.transfer)
	}
	return s.depth * s.lineSize
}

// contains reports whether any slot of any buffer already covers la (used
// to avoid duplicate fills).
func (s *streamBufferSet) contains(la uint64) bool {
	for i := range s.bufs {
		b := &s.bufs[i]
		if !b.valid {
			continue
		}
		if la >= b.head && la < b.head+uint64(s.depth) {
			return true
		}
	}
	return false
}

// invalidate drops any buffer whose stream covers la (coherence on
// writes: the buffered copy would be stale).
func (s *streamBufferSet) invalidate(la uint64) {
	for i := range s.bufs {
		b := &s.bufs[i]
		if b.valid && la >= b.head && la < b.head+uint64(s.depth) {
			b.valid = false
		}
	}
}
