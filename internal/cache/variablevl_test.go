package cache

import (
	"testing"

	"softcache/internal/trace"
)

func varVLConfig() Config {
	c := softTestConfig()
	c.VariableVirtualLines = true
	return c
}

func recSV(addr uint64, vlBytes int) trace.Record {
	r := recS(addr)
	r.VirtualHint = trace.EncodeVirtualHint(vlBytes)
	return r
}

func TestVariableVLHonoursHint(t *testing.T) {
	s := mustSim(t, varVLConfig())
	// 256-byte hint: the whole aligned 8-line block is fetched.
	s.Access(recSV(0, 256))
	for off := uint64(0); off < 256; off += 32 {
		if s.Inspect(off).Where != InMain {
			t.Fatalf("line at %d should be resident after a 256B fill", off)
		}
	}
	if s.Inspect(256).Where != Absent {
		t.Fatal("fill must stop at the hinted length")
	}
	if got := s.Stats().Mem.BytesFetched; got != 256 {
		t.Fatalf("bytes = %d, want 256", got)
	}
}

func TestVariableVLDefaultsWithoutHint(t *testing.T) {
	s := mustSim(t, varVLConfig())
	s.Access(recS(0)) // hint 0: the configured 64-byte default applies
	if s.Inspect(32).Where != InMain || s.Inspect(64).Where != Absent {
		t.Fatal("hint-less spatial miss must use the default virtual line")
	}
}

func TestVariableVLDisabledIgnoresHint(t *testing.T) {
	s := mustSim(t, softTestConfig()) // VariableVirtualLines off
	s.Access(recSV(0, 256))
	if s.Inspect(64).Where != Absent {
		t.Fatal("hint must be ignored when the extension is disabled")
	}
}

func TestVariableVLAlignment(t *testing.T) {
	s := mustSim(t, varVLConfig())
	// Miss in the middle of a 128-byte block: the aligned block is
	// fetched, not a block starting at the miss address.
	s.Access(recSV(96, 128))
	if s.Inspect(0).Where != InMain || s.Inspect(127).Where != InMain {
		t.Fatal("aligned 128B block should be resident")
	}
	if s.Inspect(128).Where != Absent {
		t.Fatal("fill crossed the aligned block boundary")
	}
}

func TestVariableVLHintSmallerThanDefault(t *testing.T) {
	cfg := varVLConfig()
	cfg.VirtualLineSize = 256 // default is large...
	s := mustSim(t, cfg)
	s.Access(recSV(0, 64)) // ...but the reference asks for 64 bytes
	if s.Inspect(32).Where != InMain {
		t.Fatal("the hinted 64B should be fetched")
	}
	if s.Inspect(64).Where != Absent {
		t.Fatal("a short hint must shrink the fill below the default")
	}
}

func TestVariableVLValidation(t *testing.T) {
	cfg := testConfig()
	cfg.VariableVirtualLines = true // no virtual-line mechanism
	if _, err := New(cfg); err == nil {
		t.Fatal("VariableVirtualLines without virtual lines must be rejected")
	}
}

func TestEncodeVirtualHintRoundTrip(t *testing.T) {
	for _, bytes := range []int{64, 128, 256} {
		if got := trace.VirtualHintBytes(trace.EncodeVirtualHint(bytes)); got != bytes {
			t.Fatalf("round trip %d -> %d", bytes, got)
		}
	}
	for _, odd := range []int{0, 32, 100, 512} {
		if trace.EncodeVirtualHint(odd) != 0 {
			t.Fatalf("length %d should encode to the default hint", odd)
		}
	}
	if trace.VirtualHintBytes(0) != 0 {
		t.Fatal("hint 0 means default")
	}
}

func recPF(addr uint64) trace.Record {
	return trace.Record{Addr: addr, Size: 8, Gap: 1, SoftwarePrefetch: true}
}

func TestSoftwarePrefetchFillsBounceBack(t *testing.T) {
	s := mustSim(t, softTestConfig())
	if got := s.Access(recPF(0)); got != 1 {
		t.Fatalf("prefetch issue cost = %d, want 1", got)
	}
	info := s.Inspect(0)
	if info.Where != InBounceBack || !info.Prefetched {
		t.Fatalf("prefetched line state = %+v", info)
	}
	st := s.Stats()
	if st.SoftwarePrefetches != 1 || st.PrefetchesIssued != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.References != 0 || st.CostCycles != 0 {
		t.Fatal("prefetch instructions must not enter the AMAT accounting")
	}
	// A later demand access hits the prefetched line in the BB cache.
	if got := s.Access(rec(0)); got != 3 {
		t.Fatalf("demand access after prefetch = %d, want 3 (BB hit)", got)
	}
}

func TestSoftwarePrefetchSkipsResidentLines(t *testing.T) {
	s := mustSim(t, softTestConfig())
	s.Access(rec(0)) // demand fill
	before := s.Stats().Mem.BytesFetched
	s.Access(recPF(0))
	if s.Stats().Mem.BytesFetched != before {
		t.Fatal("prefetch of a resident line must not refetch it")
	}
}

func TestSoftwarePrefetchWithoutBufferIsNop(t *testing.T) {
	s := mustSim(t, testConfig()) // no bounce-back structure
	if got := s.Access(recPF(0)); got != 1 {
		t.Fatalf("cost = %d, want 1", got)
	}
	if s.Inspect(0).Where != Absent {
		t.Fatal("no prefetch buffer: nothing should be fetched")
	}
	if s.Stats().Mem.BytesFetched != 0 {
		t.Fatal("no traffic expected")
	}
}
