package cache

import "testing"

func streamConfig() Config {
	c := testConfig()
	c.StreamBuffers = 2
	c.StreamBufferDepth = 4
	return c
}

func TestStreamBufferHeadHit(t *testing.T) {
	s := mustSim(t, streamConfig())
	s.Access(rec(0)) // miss: allocates a buffer streaming lines 1..4
	st := s.Stats()
	if st.StreamBufferAllocations != 1 {
		t.Fatalf("allocations = %d", st.StreamBufferAllocations)
	}
	// Sequential miss on line 1 (addr 32): stream-buffer head hit.
	r := rec(32)
	r.Gap = 100 // arrive well after the prefetch lands
	cost := s.Access(r)
	st = s.Stats()
	if st.StreamBufferHits != 1 {
		t.Fatalf("stream hits = %d (cost %d)", st.StreamBufferHits, cost)
	}
	if cost != 1 {
		t.Fatalf("late head hit cost = %d, want 1", cost)
	}
	if s.Inspect(32).Where != InMain {
		t.Fatal("popped line must be installed in the main cache")
	}
	// The line after the stream's tail gets prefetched on pop: after the
	// pop the buffer covers lines 2..5.
	if got := s.Access(rec(64)); got > 3 {
		// another head hit (line 2); tolerance for arrival wait
		t.Fatalf("next head hit cost = %d", got)
	}
}

func TestStreamBufferHitWaitsForArrival(t *testing.T) {
	s := mustSim(t, streamConfig())
	s.Access(rec(0))
	r := rec(32)
	r.Gap = 1 // immediately after the miss: line 1 still in flight
	cost := s.Access(r)
	if cost <= 1 {
		t.Fatalf("in-flight head hit must wait, cost = %d", cost)
	}
	// But it must still be cheaper than a full miss (1+20+2).
	if cost >= 23 {
		t.Fatalf("head hit cost %d not better than a miss", cost)
	}
}

func TestStreamBufferNonHeadMissReallocates(t *testing.T) {
	s := mustSim(t, streamConfig())
	s.Access(rec(0))    // buffer A: lines 1..4
	s.Access(rec(4096)) // buffer B: lines 129..132
	s.Access(rec(8192)) // miss: LRU buffer (A) reallocated
	st := s.Stats()
	if st.StreamBufferAllocations != 3 {
		t.Fatalf("allocations = %d, want 3", st.StreamBufferAllocations)
	}
	// Line 1 (addr 32) no longer covered: full miss.
	r := rec(32)
	r.Gap = 100
	if cost := s.Access(r); cost < 20 {
		t.Fatalf("reallocated stream should not hit, cost %d", cost)
	}
}

func TestStreamBufferWriteInvalidation(t *testing.T) {
	s := mustSim(t, streamConfig())
	s.Access(rec(0)) // buffer streams lines 1..4
	s.Access(recW(32))
	// The store to line 1 invalidates the stream; but the store itself
	// missed and allocated a new buffer. Line 2 (addr 64) is covered by
	// the *new* stream (65..68? no: new stream starts at line 2).
	// Verify the old buffer is gone by checking stats consistency.
	st := s.Stats()
	if st.StreamBufferHits != 0 {
		t.Fatalf("the store must not hit a stream buffer: %+v", st)
	}
	if st.StreamBufferAllocations != 2 {
		t.Fatalf("allocations = %d, want 2", st.StreamBufferAllocations)
	}
}

func TestStreamBufferTrafficAccounted(t *testing.T) {
	s := mustSim(t, streamConfig())
	s.Access(rec(0))
	st := s.Stats()
	// Demand line (32B) + 4 prefetched lines (128B).
	if st.Mem.BytesFetched != 32+4*32 {
		t.Fatalf("bytes = %d, want 160", st.Mem.BytesFetched)
	}
}

func columnConfig() Config {
	c := testConfig()
	c.ColumnAssociative = true
	return c
}

func TestColumnAssociativePartnersBothFast(t *testing.T) {
	s := mustSim(t, columnConfig())
	// 1 KiB, 32B lines: 32 original sets folded into 16 pairs. Lines 0
	// (orig index 0) and 512 (orig index 16) are rehash partners: each
	// sits in its own primary slot and both must hit fast.
	s.Access(rec(0))
	s.Access(rec(512))
	if got := s.Access(rec(0)); got != 1 {
		t.Fatalf("line 0 hit cost = %d, want 1", got)
	}
	if got := s.Access(rec(512)); got != 1 {
		t.Fatalf("line 512 hit cost = %d, want 1", got)
	}
	if s.Stats().ColumnSlowHits != 0 {
		t.Fatalf("slow hits = %d, want 0", s.Stats().ColumnSlowHits)
	}
}

func TestColumnAssociativeSlowHit(t *testing.T) {
	s := mustSim(t, columnConfig())
	// Lines 0 and 1024 share original index 0: a true direct-mapped
	// conflict. The second fill demotes the first to its secondary slot.
	s.Access(rec(0))
	s.Access(rec(1024))
	cost := s.Access(rec(0)) // found in the secondary location
	if cost != 2 {
		t.Fatalf("secondary-location hit cost = %d, want 2", cost)
	}
	if s.Stats().ColumnSlowHits != 1 {
		t.Fatalf("slow hits = %d", s.Stats().ColumnSlowHits)
	}
	// The swap promoted 0 to its primary slot: fast again...
	if got := s.Access(rec(0)); got != 1 {
		t.Fatalf("post-swap hit cost = %d, want 1", got)
	}
	// ...and 1024 answers from the secondary slot now.
	if got := s.Access(rec(1024)); got != 2 {
		t.Fatalf("demoted line cost = %d, want 2", got)
	}
}

func TestColumnAssociativeGuestEvictedFirst(t *testing.T) {
	s := mustSim(t, columnConfig())
	s.Access(rec(0))    // primary slot of index 0
	s.Access(rec(1024)) // demotes 0 to the partner slot (a guest there)
	s.Access(rec(512))  // 512's primary IS the partner slot: evicts the guest
	if s.Inspect(0).Where != Absent {
		t.Fatal("the guest line should be evicted by its slot's owner")
	}
	if s.Inspect(1024).Where != InMain || s.Inspect(512).Where != InMain {
		t.Fatal("both owners should be resident")
	}
}

func TestColumnAssociativeRemovesConflictMisses(t *testing.T) {
	// The classic ping-pong A/B conflict: direct-mapped misses every time,
	// column-associative keeps both resident.
	dm := mustSim(t, testConfig())
	ca := mustSim(t, columnConfig())
	for i := 0; i < 50; i++ {
		for _, addr := range []uint64{0, 1024} {
			dm.Access(rec(addr))
			ca.Access(rec(addr))
		}
	}
	if dm.Stats().Misses != 100 {
		t.Fatalf("direct-mapped should ping-pong: %d misses", dm.Stats().Misses)
	}
	if ca.Stats().Misses > 2 {
		t.Fatalf("column-associative should keep both lines: %d misses", ca.Stats().Misses)
	}
}

func TestColumnAssociativeInvariants(t *testing.T) {
	s := mustSim(t, columnConfig())
	for i, r := range randomTrace(21, 4000, 4096) {
		s.Access(r)
		if msg := s.CheckInvariants(); msg != "" {
			t.Fatalf("after access %d: %s", i, msg)
		}
	}
}

func TestStreamBufferInvariants(t *testing.T) {
	s := mustSim(t, streamConfig())
	for i, r := range randomTrace(22, 4000, 4096) {
		s.Access(r)
		if msg := s.CheckInvariants(); msg != "" {
			t.Fatalf("after access %d: %s", i, msg)
		}
	}
	st := s.Stats()
	if st.MainHits+st.BounceBackHits+st.BypassBufferHits+st.StreamBufferHits+st.Misses != st.References {
		t.Fatalf("accounting: %+v", st)
	}
}

func TestRelatedConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.ColumnAssociative = true
	cfg.Assoc = 2
	if _, err := New(cfg); err == nil {
		t.Fatal("column-associative with Assoc=2 must be rejected")
	}
	cfg = testConfig()
	cfg.StreamBuffers = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative stream buffers must be rejected")
	}
}
