package cache

import (
	"testing"

	"softcache/internal/mem"
	"softcache/internal/trace"
)

// testConfig returns a small, easily-reasoned-about hierarchy: 1 KiB
// direct-mapped cache (32 sets of 32 B), 20-cycle latency, 16 B/cycle bus.
func testConfig() Config {
	return Config{
		CacheSize: 1024,
		LineSize:  32,
		Assoc:     1,
		HitCycles: 1,
		Memory: mem.Config{
			LatencyCycles:        20,
			BusBytesPerCycle:     16,
			WriteBufferEntries:   8,
			VictimTransferCycles: 2,
		},
	}
}

func softTestConfig() Config {
	c := testConfig()
	c.VirtualLineSize = 64
	c.BounceBackLines = 4
	c.BounceBackCycles = 3
	c.SwapLockCycles = 2
	c.BounceBackEnabled = true
	c.UseTemporalTags = true
	c.UseSpatialTags = true
	return c
}

func mustSim(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func rec(addr uint64) trace.Record {
	return trace.Record{Addr: addr, Size: 8, Gap: 1}
}

func recT(addr uint64) trace.Record {
	r := rec(addr)
	r.Temporal = true
	return r
}

func recS(addr uint64) trace.Record {
	r := rec(addr)
	r.Spatial = true
	return r
}

func recW(addr uint64) trace.Record {
	r := rec(addr)
	r.Write = true
	return r
}

func TestMissThenHitCosts(t *testing.T) {
	s := mustSim(t, testConfig())
	// Miss: 1 (probe) + 20 (latency) + 2 (32B over 16B/cycle).
	if got := s.Access(rec(0)); got != 23 {
		t.Fatalf("miss cost = %d, want 23", got)
	}
	// Hit in the same line.
	if got := s.Access(rec(8)); got != 1 {
		t.Fatalf("hit cost = %d, want 1", got)
	}
	st := s.Stats()
	if st.Misses != 1 || st.MainHits != 1 || st.References != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Mem.BytesFetched != 32 {
		t.Fatalf("bytes fetched = %d, want 32", st.Mem.BytesFetched)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	s := mustSim(t, testConfig())
	s.Access(rec(0))    // set 0
	s.Access(rec(1024)) // also set 0: evicts
	if got := s.Access(rec(0)); got == 1 {
		t.Fatal("conflicting line should have been evicted")
	}
	if s.Stats().Misses != 3 {
		t.Fatalf("misses = %d, want 3", s.Stats().Misses)
	}
}

func TestSetAssocLRU(t *testing.T) {
	cfg := testConfig()
	cfg.Assoc = 2
	s := mustSim(t, cfg)
	// Three lines mapping to the same set (16 sets of 2 ways now).
	a, b, c := uint64(0), uint64(512), uint64(1024)
	s.Access(rec(a))
	s.Access(rec(b))
	s.Access(rec(a)) // a is now MRU
	s.Access(rec(c)) // evicts b (LRU)
	if got := s.Access(rec(a)); got != 1 {
		t.Fatalf("a should still hit, cost %d", got)
	}
	if got := s.Access(rec(b)); got == 1 {
		t.Fatal("b should have been evicted as LRU")
	}
}

func TestDirtyVictimWriteback(t *testing.T) {
	s := mustSim(t, testConfig())
	s.Access(recW(0))   // dirty line in set 0
	s.Access(rec(1024)) // evicts it
	st := s.Stats()
	if st.Mem.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Mem.Writebacks)
	}
}

func TestWritebackStallWhenTransfersExceedLatency(t *testing.T) {
	cfg := testConfig()
	cfg.Memory.LatencyCycles = 1 // transfers (2 cycles) cannot hide
	s := mustSim(t, cfg)
	s.Access(recW(0))
	s.Access(rec(1024))
	st := s.Stats()
	if st.Mem.WritebackStallCycles != 1 { // 2-cycle transfer minus 1-cycle latency
		t.Fatalf("writeback stall = %d, want 1", st.Mem.WritebackStallCycles)
	}
}

func TestVirtualLineFetchesWholeBlock(t *testing.T) {
	cfg := softTestConfig()
	cfg.BounceBackLines = 0 // isolate the virtual-line mechanism
	cfg.BounceBackEnabled = false
	s := mustSim(t, cfg)
	// Spatial miss at the start of an aligned 64-byte block: penalty is
	// 1 + 20 + 4 (64B over 16B/cycle).
	if got := s.Access(recS(0)); got != 25 {
		t.Fatalf("virtual miss cost = %d, want 25", got)
	}
	// The second physical line of the block is now resident.
	if got := s.Access(rec(32)); got != 1 {
		t.Fatalf("second line should hit, cost %d", got)
	}
	st := s.Stats()
	if st.VirtualFills != 1 || st.Mem.BytesFetched != 64 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVirtualLineAlignment(t *testing.T) {
	cfg := softTestConfig()
	s := mustSim(t, cfg)
	// A miss in the *second* half of the 64-byte block fetches the whole
	// aligned block, not the next 64 bytes.
	s.Access(recS(32))
	if s.Inspect(0).Where != InMain {
		t.Fatal("aligned lower line should be resident")
	}
	if s.Inspect(64).Where != Absent {
		t.Fatal("next block should not be fetched")
	}
}

func TestVirtualLineSkipsResidentLines(t *testing.T) {
	s := mustSim(t, softTestConfig())
	s.Access(rec(32)) // second half resident (non-spatial fill)
	s.Access(recS(0)) // virtual fill: line 32 must be skipped
	st := s.Stats()
	if st.VirtualLinesSkipped != 1 {
		t.Fatalf("skipped = %d, want 1", st.VirtualLinesSkipped)
	}
	// Traffic: 32 (first miss) + 32 (only the absent line).
	if st.Mem.BytesFetched != 64 {
		t.Fatalf("bytes = %d, want 64", st.Mem.BytesFetched)
	}
}

func TestNonSpatialMissIgnoresVirtualLines(t *testing.T) {
	s := mustSim(t, softTestConfig())
	s.Access(rec(0)) // no spatial tag
	if s.Inspect(32).Where != Absent {
		t.Fatal("non-spatial miss must fetch a single physical line")
	}
}

func TestSpatialTagIgnoredWhenDisabled(t *testing.T) {
	cfg := softTestConfig()
	cfg.UseSpatialTags = false
	s := mustSim(t, cfg)
	s.Access(recS(0))
	if s.Inspect(32).Where != Absent {
		t.Fatal("spatial hint must be ignored when UseSpatialTags is false")
	}
}

func TestVictimGoesToBounceBackCache(t *testing.T) {
	s := mustSim(t, softTestConfig())
	s.Access(rec(0))
	s.Access(rec(1024)) // conflict: line 0 displaced into the BB cache
	if s.Inspect(0).Where != InBounceBack {
		t.Fatalf("victim should be in bounce-back cache, got %v", s.Inspect(0).Where)
	}
}

func TestBounceBackHitSwaps(t *testing.T) {
	s := mustSim(t, softTestConfig())
	s.Access(rec(0))
	s.Access(rec(1024))
	// Hit in the BB cache: 3 cycles, swap puts 0 back in main, 1024 in BB.
	if got := s.Access(rec(0)); got != 3 {
		t.Fatalf("BB hit cost = %d, want 3", got)
	}
	if s.Inspect(0).Where != InMain || s.Inspect(1024).Where != InBounceBack {
		t.Fatal("swap did not exchange the lines")
	}
	st := s.Stats()
	if st.BounceBackHits != 1 || st.Swaps != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSwapLockStallsNextAccess(t *testing.T) {
	s := mustSim(t, softTestConfig())
	s.Access(rec(0))
	s.Access(rec(1024))
	s.Access(rec(0)) // swap: cache locked 2 extra cycles
	// Next access arrives 1 cycle later (Gap=1), within the lock window:
	// it pays a 1-cycle stall on top of its hit.
	got := s.Access(rec(1024 + 8)) // BB hit... wait: 1024 now in BB; use a main hit
	_ = got
	st := s.Stats()
	if st.LockStallCycles == 0 {
		t.Fatal("expected a lock stall after the swap")
	}
}

func TestBounceBackOfTemporalVictim(t *testing.T) {
	cfg := softTestConfig()
	cfg.BounceBackLines = 2 // tiny, to force BB evictions quickly
	s := mustSim(t, cfg)

	s.Access(recT(0))   // temporal line in set 0
	s.Access(rec(1024)) // evict it into BB (temporal bit travels along)
	if got := s.Inspect(0); got.Where != InBounceBack || !got.Temporal {
		t.Fatalf("line 0: %+v", got)
	}
	// Fill the BB cache with two more victims from other sets; the LRU
	// entry (line 0) is about to be discarded, but its temporal bit makes
	// it bounce back into main (evicting 1024's line... set 0).
	s.Access(rec(32))
	s.Access(rec(1024 + 32)) // victim 32 -> BB
	s.Access(rec(64))
	s.Access(rec(1024 + 64)) // victim 64 -> BB: BB full, line 0 bounces back
	info := s.Inspect(0)
	if info.Where != InMain {
		t.Fatalf("temporal line should have bounced back to main, got %v", info.Where)
	}
	if info.Temporal {
		t.Fatal("temporal bit must be reset after a bounce-back")
	}
	if s.Stats().BouncedBack != 1 {
		t.Fatalf("bounced back = %d, want 1", s.Stats().BouncedBack)
	}
}

func TestNonTemporalVictimIsDiscarded(t *testing.T) {
	cfg := softTestConfig()
	cfg.BounceBackLines = 2
	s := mustSim(t, cfg)
	s.Access(rec(0)) // no temporal tag
	s.Access(rec(1024))
	s.Access(rec(32))
	s.Access(rec(1024 + 32))
	s.Access(rec(64))
	s.Access(rec(1024 + 64)) // BB overflows: line 0 discarded
	if s.Inspect(0).Where != Absent {
		t.Fatalf("non-temporal line should be discarded, got %v", s.Inspect(0).Where)
	}
	if s.Stats().BouncedBack != 0 {
		t.Fatal("nothing should bounce back")
	}
}

func TestTemporalBitSetOnHitAndPreservedByUntaggedAccess(t *testing.T) {
	s := mustSim(t, softTestConfig())
	s.Access(rec(0))  // miss, no tag: bit clear
	s.Access(recT(0)) // tagged hit: bit set
	if !s.Inspect(0).Temporal {
		t.Fatal("temporal bit should be set by a tagged hit")
	}
	s.Access(rec(0)) // untagged hit: bit unchanged (§2.2 footnote)
	if !s.Inspect(0).Temporal {
		t.Fatal("untagged access must not clear the temporal bit")
	}
	if s.Stats().TemporalBitSets != 1 {
		t.Fatalf("TemporalBitSets = %d, want 1", s.Stats().TemporalBitSets)
	}
}

func TestTemporalTagIgnoredWhenDisabled(t *testing.T) {
	cfg := softTestConfig()
	cfg.UseTemporalTags = false
	s := mustSim(t, cfg)
	s.Access(recT(0))
	if s.Inspect(0).Temporal {
		t.Fatal("temporal hint must be ignored when UseTemporalTags is false")
	}
}

func TestVictimCacheModeNeverBouncesBack(t *testing.T) {
	cfg := softTestConfig()
	cfg.BounceBackEnabled = false // plain victim cache
	cfg.BounceBackLines = 2
	s := mustSim(t, cfg)
	s.Access(recT(0))
	s.Access(rec(1024))
	s.Access(rec(32))
	s.Access(rec(1024 + 32))
	s.Access(rec(64))
	s.Access(rec(1024 + 64))
	if s.Stats().BouncedBack != 0 {
		t.Fatal("victim-cache mode must not bounce back")
	}
}

func TestBBCoherenceInvalidation(t *testing.T) {
	s := mustSim(t, softTestConfig())
	// Get line 32 into the BB cache.
	s.Access(rec(32))
	s.Access(rec(1024 + 32)) // 32 -> BB
	if s.Inspect(32).Where != InBounceBack {
		t.Fatal("setup failed")
	}
	// Virtual fill covering lines 0 and 32: line 32 is in the BB cache,
	// so it is fetched (traffic) but not placed in main (§2.2 coherence).
	before := s.Stats().Mem.BytesFetched
	s.Access(recS(0))
	st := s.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	if s.Inspect(32).Where != InBounceBack {
		t.Fatal("BB copy must remain authoritative")
	}
	if st.Mem.BytesFetched-before != 64 {
		t.Fatalf("fetch traffic = %d, want 64 (the fetch cannot be aborted)", st.Mem.BytesFetched-before)
	}
}

func TestBypassPlain(t *testing.T) {
	cfg := testConfig()
	cfg.Bypass = BypassPlain
	cfg.UseTemporalTags = true
	s := mustSim(t, cfg)
	// Non-temporal miss: fetch one 8-byte word, allocate nothing.
	// Cost: 1 + 20 + 1 = 22.
	if got := s.Access(rec(0)); got != 22 {
		t.Fatalf("bypass cost = %d, want 22", got)
	}
	if s.Inspect(0).Where != Absent {
		t.Fatal("bypassed line must not be allocated")
	}
	// Temporal references are cached normally.
	s.Access(recT(64))
	if s.Inspect(64).Where != InMain {
		t.Fatal("temporal reference must be cached")
	}
	// A bypassed reference that hits in main uses the cache.
	if got := s.Access(rec(64)); got != 1 {
		t.Fatalf("bypassed ref hitting in cache: cost %d, want 1", got)
	}
}

func TestBypassBuffered(t *testing.T) {
	cfg := testConfig()
	cfg.Bypass = BypassBuffered
	cfg.BypassBufferLines = 2
	cfg.UseTemporalTags = true
	s := mustSim(t, cfg)
	s.Access(rec(0)) // miss: line into the bypass buffer
	if got := s.Access(rec(8)); got != 1 {
		t.Fatalf("bypass-buffer hit cost = %d, want 1", got)
	}
	st := s.Stats()
	if st.BypassBufferHits != 1 {
		t.Fatalf("buffer hits = %d", st.BypassBufferHits)
	}
	if st.Mem.BytesFetched != 32 {
		t.Fatalf("bytes = %d, want 32 (whole line)", st.Mem.BytesFetched)
	}
}

func TestPrefetchOnSpatialMiss(t *testing.T) {
	cfg := softTestConfig()
	cfg.Prefetch = PrefetchConfig{Enabled: true, SoftwareGuided: true, Degree: 1}
	s := mustSim(t, cfg)
	s.Access(recS(0)) // virtual fill 0-63, prefetch line 64 into BB
	info := s.Inspect(64)
	if info.Where != InBounceBack || !info.Prefetched {
		t.Fatalf("line 64 should be prefetched into BB, got %+v", info)
	}
	if s.Stats().PrefetchesIssued != 1 {
		t.Fatalf("prefetches = %d", s.Stats().PrefetchesIssued)
	}
}

func TestProgressivePrefetchOnPrefetchHit(t *testing.T) {
	cfg := softTestConfig()
	cfg.Prefetch = PrefetchConfig{Enabled: true, SoftwareGuided: true, Degree: 1}
	s := mustSim(t, cfg)
	s.Access(recS(0)) // prefetches 64
	s.Access(rec(64)) // hit on prefetched line: swap + prefetch 96
	st := s.Stats()
	if st.PrefetchHits != 1 {
		t.Fatalf("prefetch hits = %d, want 1", st.PrefetchHits)
	}
	if s.Inspect(64).Where != InMain {
		t.Fatal("prefetched line should move to main on hit")
	}
	if s.Inspect(96).Where != InBounceBack || !s.Inspect(96).Prefetched {
		t.Fatalf("progressive prefetch should fetch line 96, got %+v", s.Inspect(96))
	}
}

func TestUnguidedPrefetchOnEveryMiss(t *testing.T) {
	cfg := testConfig()
	cfg.BounceBackLines = 4
	cfg.BounceBackCycles = 3
	cfg.SwapLockCycles = 2
	cfg.Prefetch = PrefetchConfig{Enabled: true, SoftwareGuided: false, Degree: 1}
	s := mustSim(t, cfg)
	s.Access(rec(0)) // untagged miss still prefetches next line
	if s.Inspect(32).Where != InBounceBack {
		t.Fatal("unguided prefetch should trigger on any miss")
	}
}

func TestPrefetchMaxResident(t *testing.T) {
	cfg := softTestConfig()
	cfg.BounceBackLines = 4
	cfg.Prefetch = PrefetchConfig{Enabled: true, SoftwareGuided: true, Degree: 1, MaxResident: 1}
	s := mustSim(t, cfg)
	s.Access(recS(0))    // prefetch 64
	s.Access(recS(4096)) // prefetch 4096+64: must replace the previous prefetched entry
	pf := 0
	for _, la := range []uint64{64, 4096 + 64} {
		if s.Inspect(la).Prefetched {
			pf++
		}
	}
	if pf != 1 {
		t.Fatalf("resident prefetched lines = %d, want 1 (MaxResident)", pf)
	}
}

func TestTemporalPriorityReplacement(t *testing.T) {
	cfg := testConfig()
	cfg.Assoc = 2
	cfg.UseTemporalTags = true
	cfg.TemporalPriorityReplacement = true
	s := mustSim(t, cfg)
	// Set has 2 ways; fill with one temporal, one plain; the plain one is
	// MRU but non-temporal, so it is evicted first.
	s.Access(recT(0))  // temporal
	s.Access(rec(512)) // same set, plain, MRU
	s.Access(rec(1024))
	if s.Inspect(0).Where != InMain {
		t.Fatal("temporal line should be protected by priority replacement")
	}
	if s.Inspect(512).Where != Absent {
		t.Fatal("non-temporal line should have been evicted despite being MRU")
	}
}

func TestTemporalPriorityLeaseReset(t *testing.T) {
	cfg := testConfig()
	cfg.Assoc = 2
	cfg.UseTemporalTags = true
	cfg.TemporalPriorityReplacement = true
	s := mustSim(t, cfg)
	s.Access(recT(0))
	s.Access(rec(512))
	s.Access(rec(1024)) // evicts 512, clears 0's temporal bit (lease)
	if s.Inspect(0).Temporal {
		t.Fatal("spared line's temporal bit should be cleared (one lease)")
	}
	s.Access(rec(1536)) // now 0 competes as plain LRU and is evicted
	if s.Inspect(0).Where != Absent {
		t.Fatal("dead temporal line must eventually be evictable")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := mustSim(t, softTestConfig())
	refs := []trace.Record{rec(0), recT(0), recS(64), recW(128), rec(1024), rec(0)}
	for _, r := range refs {
		s.Access(r)
	}
	st := s.Stats()
	if st.References != uint64(len(refs)) {
		t.Fatalf("references = %d", st.References)
	}
	total := st.MainHits + st.BounceBackHits + st.BypassBufferHits + st.Misses
	if total != st.References {
		t.Fatalf("hits+misses = %d != references %d", total, st.References)
	}
	if st.Reads+st.Writes != st.References {
		t.Fatalf("reads+writes = %d", st.Reads+st.Writes)
	}
	if st.AMAT() <= 1 {
		t.Fatalf("AMAT = %f, should exceed the hit time with misses present", st.AMAT())
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero cache size", func(c *Config) { c.CacheSize = 0 }},
		{"non-pow2 cache size", func(c *Config) { c.CacheSize = 3000 }},
		{"non-pow2 line", func(c *Config) { c.LineSize = 48 }},
		{"zero assoc", func(c *Config) { c.Assoc = 0 }},
		{"indivisible geometry", func(c *Config) { c.CacheSize = 1024; c.LineSize = 512; c.Assoc = 3 }},
		{"zero hit time", func(c *Config) { c.HitCycles = 0 }},
		{"virtual smaller than physical", func(c *Config) { c.VirtualLineSize = 16 }},
		{"non-pow2 virtual", func(c *Config) { c.VirtualLineSize = 96 }},
		{"negative bounce-back", func(c *Config) { c.BounceBackLines = -1 }},
		{"bb without access time", func(c *Config) { c.BounceBackLines = 4; c.BounceBackCycles = 0 }},
		{"bb assoc indivisible", func(c *Config) { c.BounceBackLines = 4; c.BounceBackCycles = 3; c.BounceBackAssoc = 3 }},
		{"buffered bypass without buffer", func(c *Config) { c.Bypass = BypassBuffered; c.UseTemporalTags = true }},
		{"bypass without temporal tags", func(c *Config) { c.Bypass = BypassPlain }},
		{"prefetch without bb", func(c *Config) { c.Prefetch.Enabled = true }},
		{"bad memory", func(c *Config) { c.Memory.BusBytesPerCycle = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatalf("expected error for %s", tc.name)
			}
		})
	}
	if _, err := New(softTestConfig()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestBypassModeString(t *testing.T) {
	if BypassNone.String() != "none" || BypassPlain.String() != "plain" ||
		BypassBuffered.String() != "buffered" || BypassMode(7).String() == "" {
		t.Fatal("BypassMode.String broken")
	}
}

func TestRunAndConfigAccessors(t *testing.T) {
	cfg := softTestConfig()
	s := mustSim(t, cfg)
	tr := &trace.Trace{Records: []trace.Record{rec(0), rec(8), rec(1024)}}
	st := s.Run(tr)
	if st.References != 3 {
		t.Fatalf("Run processed %d references", st.References)
	}
	if s.Config().CacheSize != cfg.CacheSize {
		t.Fatal("Config accessor broken")
	}
}

func TestDerivedStats(t *testing.T) {
	s := mustSim(t, softTestConfig())
	s.Access(rec(0))    // miss
	s.Access(rec(8))    // hit
	s.Access(rec(1024)) // conflict miss
	s.Access(rec(0))    // bounce-back hit
	st := s.Stats()
	if st.MissRatio() != 0.5 || st.HitRatio() != 0.5 {
		t.Fatalf("miss ratio = %v", st.MissRatio())
	}
	if mf := st.MainHitFraction(); mf != 0.5 {
		t.Fatalf("main hit fraction = %v (1 main hit, 1 BB hit)", mf)
	}
	if w := st.WordsPerReference(); w != float64(2*32/8)/4 {
		t.Fatalf("words/ref = %v", w)
	}
	var zero Stats
	if zero.AMAT() != 0 || zero.MissRatio() != 0 || zero.MainHitFraction() != 0 || zero.WordsPerReference() != 0 {
		t.Fatal("zero stats must yield zero metrics")
	}
}

func TestLineWhereString(t *testing.T) {
	if Absent.String() != "absent" || InMain.String() != "main" ||
		InBounceBack.String() != "bounce-back" || LineWhere(9).String() != "?" {
		t.Fatal("LineWhere.String broken")
	}
}

func TestWritePolicyStringUnknown(t *testing.T) {
	if WritePolicy(9).String() == "" {
		t.Fatal("unknown policy must stringify")
	}
}

func TestStructureCounters(t *testing.T) {
	s := mustSim(t, softTestConfig())
	s.Access(rec(0))
	s.Access(rec(1024)) // 0 -> bounce-back cache
	if s.main.countValid() != 1 {
		t.Fatalf("main valid = %d", s.main.countValid())
	}
	if s.bb.countValid() != 1 || s.bb.countPrefetched() != 0 {
		t.Fatalf("bb valid = %d prefetched = %d", s.bb.countValid(), s.bb.countPrefetched())
	}
	cfgPf := softTestConfig()
	cfgPf.Prefetch = PrefetchConfig{Enabled: true, SoftwareGuided: true}
	s2 := mustSim(t, cfgPf)
	s2.Access(recS(0))
	if s2.bb.countPrefetched() != 1 {
		t.Fatalf("prefetched = %d", s2.bb.countPrefetched())
	}
}

func TestStreamBufferContains(t *testing.T) {
	sb := newStreamBufferSet(1, 4, 32, 2)
	sb.allocate(10, 0, 0)
	if !sb.contains(11) || !sb.contains(14) || sb.contains(15) || sb.contains(10) {
		t.Fatal("contains window wrong")
	}
}
