package cache

import (
	"fmt"

	"softcache/internal/mem"
)

// BypassMode selects the bypass baseline of fig. 3a.
type BypassMode int

const (
	// BypassNone caches every reference (normal operation).
	BypassNone BypassMode = iota
	// BypassPlain sends references without the temporal hint straight to
	// memory, fetching only the referenced word and allocating nothing.
	// This is the classic bypass whose flaw — forfeited spatial locality —
	// motivates the bounce-back design.
	BypassPlain
	// BypassBuffered routes non-temporal references through a small
	// fully-associative line buffer (in the spirit of the i860's
	// pipelined load path), recovering some spatial locality.
	BypassBuffered
)

func (m BypassMode) String() string {
	switch m {
	case BypassNone:
		return "none"
	case BypassPlain:
		return "plain"
	case BypassBuffered:
		return "buffered"
	default:
		return fmt.Sprintf("BypassMode(%d)", int(m))
	}
}

// WritePolicy selects how stores interact with the cache. The paper's
// design is write-back with write-allocate (the default); the alternatives
// exist for the ablation benches, following the taxonomy of Jouppi's
// "Cache Write Policies and Performance" the paper cites for its write
// timing.
type WritePolicy int

const (
	// WriteBackAllocate: stores allocate on miss and dirty the line;
	// dirty victims go to the write buffer (the paper's design).
	WriteBackAllocate WritePolicy = iota
	// WriteThroughAllocate: stores allocate on miss but every store also
	// posts its word to the write buffer; lines are never dirty.
	WriteThroughAllocate
	// WriteThroughNoAllocate: store misses do not allocate; the word goes
	// straight to the write buffer.
	WriteThroughNoAllocate
)

func (p WritePolicy) String() string {
	switch p {
	case WriteBackAllocate:
		return "write-back"
	case WriteThroughAllocate:
		return "write-through"
	case WriteThroughNoAllocate:
		return "write-through-no-allocate"
	default:
		return fmt.Sprintf("WritePolicy(%d)", int(p))
	}
}

// ReplacementPolicy selects the set-associative victim policy. The paper
// uses LRU everywhere ("the replacement policy of this bounce-back cache
// is LRU, as for victim caches") and discusses LRU's weakness on cyclic
// reuse; FIFO and Random exist as classic baselines for the ablations.
type ReplacementPolicy int

const (
	// ReplaceLRU is the paper's policy (default).
	ReplaceLRU ReplacementPolicy = iota
	// ReplaceFIFO evicts the oldest-filled way regardless of use.
	ReplaceFIFO
	// ReplaceRandom evicts a deterministic pseudo-random way.
	ReplaceRandom
)

func (p ReplacementPolicy) String() string {
	switch p {
	case ReplaceLRU:
		return "lru"
	case ReplaceFIFO:
		return "fifo"
	case ReplaceRandom:
		return "random"
	default:
		return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
	}
}

// PrefetchConfig describes the §4.4 prefetch mechanism.
type PrefetchConfig struct {
	// Enabled turns prefetching on.
	Enabled bool
	// SoftwareGuided restricts prefetch initiation to references carrying
	// the spatial hint (the paper's scheme). When false, every miss
	// initiates a next-line prefetch (the "Stand.+Prefetching" baseline).
	SoftwareGuided bool
	// MaxResident bounds the number of prefetched lines allowed to sit in
	// the bounce-back cache at once; beyond it a new prefetched line
	// replaces the LRU prefetched line. Zero means a default of half the
	// bounce-back entries.
	MaxResident int
	// Degree is the number of consecutive physical lines fetched per
	// prefetch action. The paper uses 1 (progressive prefetch) for
	// latencies up to ~25 cycles.
	Degree int
}

// Config fully describes a simulated memory hierarchy. The zero value is
// not valid; start from one of the constructors in package core or fill in
// every field.
type Config struct {
	// CacheSize is the main cache capacity in bytes (paper default 8 KiB).
	CacheSize int
	// LineSize is the physical line size in bytes (paper default 32).
	LineSize int
	// Assoc is the main cache associativity (1 = direct mapped).
	Assoc int

	// HitCycles is the main-cache hit time (1 in the paper).
	HitCycles int

	// SubblockSize enables sub-block placement (§2.1's contrast case, as
	// in the PowerPC's 64-byte lines with 32-byte subblocks): the
	// directory tracks LineSize-sized lines but data is fetched and
	// validated per subblock, so a tag-matching miss refills only the
	// missing subblock. 0 disables. Mutually exclusive with virtual
	// lines — the paper presents them as competing uses of the line size.
	SubblockSize int

	// VirtualLineSize enables the virtual-line mechanism when larger than
	// LineSize: a miss by a spatial-tagged reference fetches the whole
	// aligned virtual line. 0 disables (same as == LineSize).
	VirtualLineSize int
	// VariableVirtualLines enables the §3.2 extension: a spatial-tagged
	// reference carrying a non-zero 2-bit length hint overrides
	// VirtualLineSize with the hinted length (64/128/256 bytes). Requires
	// the virtual-line mechanism to be on.
	VariableVirtualLines bool

	// BounceBackLines is the number of lines in the bounce-back cache
	// (paper: 8 lines of 32 B = 256 B). 0 removes the structure entirely.
	BounceBackLines int
	// BounceBackAssoc is its associativity; 0 or >= BounceBackLines means
	// fully associative.
	BounceBackAssoc int
	// BounceBackCycles is its access time (3 in the paper, conservative).
	BounceBackCycles int
	// SwapLockCycles is how long both caches stay locked after a swap
	// beyond the access time (2 in the paper).
	SwapLockCycles int
	// BounceBackEnabled activates the bounce-back of temporal lines; with
	// it false the structure is a plain victim cache.
	BounceBackEnabled bool
	// TemporalOnlyAdmission admits only temporal-tagged victims into the
	// bounce-back cache. The paper found global performance higher when
	// every victim is admitted (the default, false); the ablation bench
	// quantifies this.
	TemporalOnlyAdmission bool

	// StreamBuffers adds Jouppi-style stream buffers (§5 related work)
	// between the cache and memory: each demand miss (re)allocates the
	// LRU buffer to prefetch the following StreamBufferDepth lines; a
	// miss matching a buffer head pops the line into the cache. 0
	// disables the mechanism.
	StreamBuffers int
	// StreamBufferDepth is the FIFO depth of each stream buffer
	// (default 4, as in Jouppi's design).
	StreamBufferDepth int

	// ColumnAssociative turns the direct-mapped cache into a
	// column-associative/pseudo-associative organisation (§5 related
	// work, [2]): a line may reside in either of two hashed locations;
	// the alternate location hits in 2 cycles and is swapped towards the
	// fast slot. Requires Assoc == 1.
	ColumnAssociative bool

	// NoCoherenceChecks disables the §2.1/§2.2 virtual-line coherence
	// mechanism (the pipelined tag checks that skip resident physical
	// lines and the bounce-back lookup): every line of a virtual fill is
	// fetched from memory regardless of residence. Exists only for the
	// ablation bench quantifying what the checks save.
	NoCoherenceChecks bool

	// Replacement selects the main cache's victim policy (default LRU,
	// the paper's choice).
	Replacement ReplacementPolicy

	// TemporalPriorityReplacement makes set-associative victim selection
	// prefer lines without the temporal bit ("simplified soft", fig. 9b).
	// Requires the LRU policy.
	TemporalPriorityReplacement bool

	// UseTemporalTags / UseSpatialTags gate the two software hints, so the
	// same tagged trace can drive Standard, Soft-temporal-only,
	// Soft-spatial-only and full Soft configurations.
	UseTemporalTags bool
	UseSpatialTags  bool

	// Writes selects the store policy (default: write-back with
	// write-allocate, the paper's design).
	Writes WritePolicy

	// Bypass selects the fig. 3a baseline behaviour.
	Bypass BypassMode
	// BypassBufferLines is the buffered-bypass buffer capacity in lines.
	BypassBufferLines int

	// Prefetch configures §4.4 prefetching.
	Prefetch PrefetchConfig

	// Memory is the memory-system model.
	Memory mem.Config

	// RuntimeChecks enables the opt-in runtime invariant checker: cheap
	// accounting invariants (hits+misses == references, words-fetched
	// conservation, swap accounting) are verified after every access and
	// structural invariants (occupancy bounds, duplicate or dually-resident
	// lines, temporal bit cleared after a bounce-back) periodically. A
	// violation panics with *InvariantError, turning state corruption into
	// an immediate diagnostic instead of silently wrong figures. Costs a
	// few percent of simulation speed; off by default.
	RuntimeChecks bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Memory.Validate(); err != nil {
		return err
	}
	if c.CacheSize <= 0 || !isPow2(c.CacheSize) {
		return fmt.Errorf("cache: CacheSize must be a positive power of two, got %d", c.CacheSize)
	}
	if c.LineSize <= 0 || !isPow2(c.LineSize) {
		return fmt.Errorf("cache: LineSize must be a positive power of two, got %d", c.LineSize)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: Assoc must be positive, got %d", c.Assoc)
	}
	if c.CacheSize%(c.LineSize*c.Assoc) != 0 {
		return fmt.Errorf("cache: CacheSize %d not divisible by LineSize*Assoc %d", c.CacheSize, c.LineSize*c.Assoc)
	}
	if c.HitCycles <= 0 {
		return fmt.Errorf("cache: HitCycles must be positive, got %d", c.HitCycles)
	}
	if c.VirtualLineSize != 0 {
		if !isPow2(c.VirtualLineSize) || c.VirtualLineSize < c.LineSize {
			return fmt.Errorf("cache: VirtualLineSize %d must be 0 or a power of two >= LineSize %d", c.VirtualLineSize, c.LineSize)
		}
	}
	if c.SubblockSize != 0 {
		if !isPow2(c.SubblockSize) || c.SubblockSize >= c.LineSize {
			return fmt.Errorf("cache: SubblockSize %d must be 0 or a power of two < LineSize %d", c.SubblockSize, c.LineSize)
		}
		if c.LineSize/c.SubblockSize > 8 {
			return fmt.Errorf("cache: at most 8 subblocks per line, got %d", c.LineSize/c.SubblockSize)
		}
		if c.VirtualLineSize > c.LineSize {
			return fmt.Errorf("cache: sub-block placement and virtual lines are mutually exclusive")
		}
		if c.BounceBackLines > 0 || c.StreamBuffers > 0 {
			return fmt.Errorf("cache: sub-block placement models the plain sectored baseline; bounce-back/stream structures are not supported with it")
		}
	}
	if c.VariableVirtualLines && c.VirtualLineSize < c.LineSize*2 {
		return fmt.Errorf("cache: VariableVirtualLines requires the virtual-line mechanism (VirtualLineSize >= 2*LineSize)")
	}
	if c.BounceBackLines < 0 {
		return fmt.Errorf("cache: negative BounceBackLines %d", c.BounceBackLines)
	}
	if c.BounceBackLines > 0 && c.BounceBackCycles <= 0 {
		return fmt.Errorf("cache: BounceBackCycles must be positive when the bounce-back cache exists")
	}
	if c.BounceBackAssoc < 0 {
		return fmt.Errorf("cache: negative BounceBackAssoc %d", c.BounceBackAssoc)
	}
	if c.BounceBackAssoc > 0 && c.BounceBackLines%c.BounceBackAssoc != 0 {
		return fmt.Errorf("cache: BounceBackLines %d not divisible by BounceBackAssoc %d", c.BounceBackLines, c.BounceBackAssoc)
	}
	if c.SwapLockCycles < 0 {
		return fmt.Errorf("cache: negative SwapLockCycles %d", c.SwapLockCycles)
	}
	if c.Bypass == BypassBuffered && c.BypassBufferLines <= 0 {
		return fmt.Errorf("cache: BypassBuffered requires BypassBufferLines > 0")
	}
	if c.Bypass != BypassNone && !c.UseTemporalTags {
		return fmt.Errorf("cache: bypass modes need UseTemporalTags (the temporal hint decides what bypasses)")
	}
	if c.Prefetch.Enabled {
		if c.BounceBackLines == 0 {
			return fmt.Errorf("cache: prefetching uses the bounce-back cache as prefetch buffer; BounceBackLines must be > 0")
		}
		if c.Prefetch.Degree < 0 {
			return fmt.Errorf("cache: negative prefetch degree %d", c.Prefetch.Degree)
		}
	}
	if c.StreamBuffers < 0 {
		return fmt.Errorf("cache: negative StreamBuffers %d", c.StreamBuffers)
	}
	if c.StreamBufferDepth < 0 {
		return fmt.Errorf("cache: negative StreamBufferDepth %d", c.StreamBufferDepth)
	}
	if c.TemporalPriorityReplacement && c.Replacement != ReplaceLRU {
		return fmt.Errorf("cache: temporal-priority replacement is defined on top of LRU")
	}
	if c.ColumnAssociative {
		if c.Assoc != 1 {
			return fmt.Errorf("cache: ColumnAssociative requires a direct-mapped organisation (Assoc 1), got %d", c.Assoc)
		}
		if c.CacheSize/c.LineSize < 2 {
			return fmt.Errorf("cache: ColumnAssociative needs at least two lines")
		}
	}
	return nil
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// virtualLines returns how many physical lines one virtual line spans (>= 1).
func (c Config) virtualLines() int {
	if c.VirtualLineSize <= c.LineSize {
		return 1
	}
	return c.VirtualLineSize / c.LineSize
}
