package refmodel_test

import (
	"context"
	"math"
	"reflect"
	"runtime"
	"testing"

	"softcache/internal/cache"
	"softcache/internal/cache/refmodel"
	"softcache/internal/core"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// The sharded equivalence harness: core.SimulateSharded against the
// naive reference model, across the full variant matrix, the issue's
// shard counts {1, 2, 4, NumCPU}, paper workloads and adversarial random
// traces.
//
// The contract it pins, per configuration class (cache.PlanShards):
//
//   - Exact plans (no structure shared across sets): the sharded stats
//     equal the reference model's bit for bit, at every shard count.
//   - Coupled plans (bounce-back/victim cache, stream buffers, bypass
//     buffer, write-through buffer — each shard gets its own full-size
//     copy): record accounting (references/reads/writes/software
//     prefetches) stays exact, and the headline metrics stay within the
//     per-variant bounds below. The bounds are measured worst cases
//     (shard counts up to 16, all workloads + adversarial traces) plus
//     ~30% margin; the dominant effect is the multiplied capacity of
//     the per-shard side structures. See docs/PERF.md.
//   - Unshardable plans (column-associative, random replacement with
//     associativity) clamp to one shard and so fall under "exact".

// shardDivergenceBound is the documented tolerance of one coupled
// variant: relative on AMAT and words/reference (both O(1) scale),
// absolute on miss ratio (a probability whose sequential value can be
// near zero under prefetching).
type shardDivergenceBound struct {
	relAMAT  float64
	relWords float64
	absMiss  float64
}

// shardDivergenceBounds pins the per-variant tolerance for every
// coupled variant of variants(). A coupled variant missing here fails
// the suite, so the table cannot silently fall behind the matrix.
var shardDivergenceBounds = map[string]shardDivergenceBound{
	"Soft":               {0.30, 0.40, 0.20},
	"SoftVariable":       {0.30, 0.50, 0.20},
	"SoftTemporal":       {0.30, 0.50, 0.20},
	"SoftSpatial":        {0.30, 0.40, 0.21},
	"Victim":             {0.30, 0.40, 0.21},
	"BypassBuffered":     {0.45, 0.55, 0.18},
	"SetAssoc2":          {0.30, 0.55, 0.20},
	"SetAssoc4":          {0.30, 0.55, 0.20},
	"StreamBuffers":      {0.20, 0.25, 0.08},
	"PrefetchSW":         {0.30, 0.40, 0.20},
	"PrefetchHW":         {0.30, 0.40, 0.20},
	"TinySoft":           {0.40, 0.55, 0.16},
	"WriteThroughAlloc":  {0.05, 0.05, 0.02}, // write-buffer coupling; zero divergence observed
	"WriteThroughNoAllo": {0.05, 0.05, 0.02},
}

func shardedShardCounts() []int {
	return []int{1, 2, 4, runtime.NumCPU()}
}

// refModelStats replays records through the naive reference model.
func refModelStats(t *testing.T, cfg cache.Config, records []trace.Record) cache.Stats {
	t.Helper()
	ref, err := refmodel.New(cfg)
	if err != nil {
		t.Fatalf("refmodel.New: %v", err)
	}
	for _, r := range records {
		ref.Access(r)
	}
	return ref.Stats()
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// checkShardedAgainstRef asserts the class-appropriate contract for one
// (variant, trace, shard count) cell.
func checkShardedAgainstRef(t *testing.T, name string, cfg cache.Config, tr *trace.Trace, shards int, ref cache.Stats) {
	t.Helper()
	plan, err := cache.PlanShards(cfg, shards)
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	got, err := core.SimulateSharded(context.Background(), cfg, tr, shards)
	if err != nil {
		t.Fatalf("SimulateSharded(%d): %v", shards, err)
	}
	s := got.Stats
	if plan.Exact {
		if !reflect.DeepEqual(s, ref) {
			t.Errorf("shards=%d (effective %d): exact plan diverges from reference model:\nsharded:   %+v\nreference: %+v",
				shards, plan.Shards, s, ref)
		}
		return
	}
	if _, ok := shardDivergenceBounds[name]; !ok {
		t.Fatalf("coupled variant %q has no entry in shardDivergenceBounds — measure and pin one", name)
	}
	b := shardDivergenceBounds[name]
	if s.References != ref.References || s.Reads != ref.Reads ||
		s.Writes != ref.Writes || s.SoftwarePrefetches != ref.SoftwarePrefetches {
		t.Errorf("shards=%d: record accounting must stay exact on coupled plans: sharded %d/%d/%d/%d, reference %d/%d/%d/%d",
			shards, s.References, s.Reads, s.Writes, s.SoftwarePrefetches,
			ref.References, ref.Reads, ref.Writes, ref.SoftwarePrefetches)
	}
	if d := relDiff(s.AMAT(), ref.AMAT()); d > b.relAMAT {
		t.Errorf("shards=%d: AMAT diverges %.4f (bound %.2f): sharded %.4f, reference %.4f",
			shards, d, b.relAMAT, s.AMAT(), ref.AMAT())
	}
	if d := relDiff(s.WordsPerReference(), ref.WordsPerReference()); d > b.relWords {
		t.Errorf("shards=%d: words/ref diverges %.4f (bound %.2f): sharded %.4f, reference %.4f",
			shards, d, b.relWords, s.WordsPerReference(), ref.WordsPerReference())
	}
	if d := math.Abs(s.MissRatio() - ref.MissRatio()); d > b.absMiss {
		t.Errorf("shards=%d: miss ratio diverges %.4f absolute (bound %.2f): sharded %.4f, reference %.4f",
			shards, d, b.absMiss, s.MissRatio(), ref.MissRatio())
	}
}

// TestShardedDifferential is the headline suite: every variant of the
// differential matrix, against the reference model, at shard counts
// {1, 2, 4, NumCPU}, over paper workloads and adversarial random traces.
func TestShardedDifferential(t *testing.T) {
	sources := map[string][]trace.Record{}
	for _, w := range []string{"MV", "SpMV"} {
		tr, err := workloads.Trace(w, workloads.ScaleTest, 1)
		if err != nil {
			t.Fatalf("workloads.Trace(%s): %v", w, err)
		}
		sources[w] = tr.Records
	}
	sources["random1"] = randomRecords(21, 20_000)
	sources["random2"] = randomRecords(22, 20_000)
	for _, v := range variants() {
		for srcName, records := range sources {
			if testing.Short() && !(srcName == "MV" || v.name == "Soft") {
				continue
			}
			t.Run(v.name+"/"+srcName, func(t *testing.T) {
				ref := refModelStats(t, v.cfg, records)
				tr := &trace.Trace{Name: srcName, Records: records}
				for _, shards := range shardedShardCounts() {
					checkShardedAgainstRef(t, v.name, v.cfg, tr, shards, ref)
				}
			})
		}
	}
}

// TestShardedDivergenceBoundsCoverMatrix pins the bookkeeping: every
// variant is classified, and the bounds table lists exactly the coupled
// ones (an exact variant with a stale entry is as much a bug as a
// coupled one without).
func TestShardedDivergenceBoundsCoverMatrix(t *testing.T) {
	listed := make(map[string]bool, len(shardDivergenceBounds))
	for name := range shardDivergenceBounds {
		listed[name] = true
	}
	for _, v := range variants() {
		plan, err := cache.PlanShards(v.cfg, 4)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if plan.Exact {
			if listed[v.name] {
				t.Errorf("%s: exact plan but listed in shardDivergenceBounds — stale entry", v.name)
			}
		} else if !listed[v.name] {
			t.Errorf("%s: coupled plan but missing from shardDivergenceBounds", v.name)
		}
		delete(listed, v.name)
	}
	for name := range listed {
		t.Errorf("shardDivergenceBounds entry %q matches no variant", name)
	}
}
