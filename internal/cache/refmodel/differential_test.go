package refmodel_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"softcache/internal/cache"
	"softcache/internal/cache/refmodel"
	"softcache/internal/core"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// variant is one design point of the differential matrix.
type variant struct {
	name string
	cfg  cache.Config
}

// variants spans every mechanism the simulator models: the paper's figure
// configurations plus replacement policies, write policies and prefetch
// modes that no figure exercises but the kernel still implements.
func variants() []variant {
	random2 := core.SetAssoc(core.Standard(), 2)
	random2.Replacement = cache.ReplaceRandom
	fifo2 := core.SetAssoc(core.Standard(), 2)
	fifo2.Replacement = cache.ReplaceFIFO
	tinySoft := core.WithGeometry(core.Soft(), 2048, 16, 64)
	return []variant{
		{"Standard", core.Standard()},
		{"Soft", core.Soft()},
		{"SoftVariable", core.SoftVariable()},
		{"SoftTemporal", core.SoftTemporal()},
		{"SoftSpatial", core.SoftSpatial()},
		{"Victim", core.Victim()},
		{"BypassPlain", core.BypassPlain()},
		{"BypassBuffered", core.BypassBuffered()},
		{"SetAssoc2", core.SetAssoc(core.Soft(), 2)},
		{"SetAssoc4", core.SetAssoc(core.Soft(), 4)},
		{"SimplifiedSoft2", core.SimplifiedSoftAssoc(2)},
		{"SimplifiedSoft4", core.SimplifiedSoftAssoc(4)},
		{"StreamBuffers", core.StandardStreamBuffers()},
		{"ColumnAssociative", core.ColumnAssociative()},
		{"Subblocked", core.Subblocked()},
		{"PrefetchSW", core.WithPrefetch(core.Soft(), true)},
		{"PrefetchHW", core.WithPrefetch(core.Soft(), false)},
		{"WriteThroughAlloc", core.WithWritePolicy(core.Standard(), cache.WriteThroughAllocate)},
		{"WriteThroughNoAllo", core.WithWritePolicy(core.Standard(), cache.WriteThroughNoAllocate)},
		{"Random2", random2},
		{"FIFO2", fifo2},
		{"TinySoft", tinySoft},
	}
}

// runDifferential replays records through the optimized kernel and the
// naive reference model in lockstep. On the first diverging per-record
// cost it reports the record index, the record itself and both simulators'
// statistics at that point; afterwards the full Stats structs (memory
// counters included) must match field for field.
func runDifferential(t *testing.T, cfg cache.Config, records []trace.Record) {
	t.Helper()
	opt, err := cache.New(cfg)
	if err != nil {
		t.Fatalf("cache.New: %v", err)
	}
	ref, err := refmodel.New(cfg)
	if err != nil {
		t.Fatalf("refmodel.New: %v", err)
	}
	for i, r := range records {
		co := opt.Access(r)
		cr := ref.Access(r)
		if co != cr {
			t.Fatalf("divergence at record %d: %+v\noptimized cost %d, reference cost %d\noptimized state: %+v\nreference state: %+v",
				i, r, co, cr, opt.Stats(), ref.Stats())
		}
	}
	so, sr := opt.Stats(), ref.Stats()
	if !reflect.DeepEqual(so, sr) {
		t.Fatalf("final stats diverge after %d records:\noptimized: %+v\nreference: %+v",
			len(records), so, sr)
	}
}

// TestDifferentialWorkloads cross-checks every design point against every
// paper benchmark at test scale. -short trims the matrix to one row and
// one column (every config on MV, every workload on Soft).
func TestDifferentialWorkloads(t *testing.T) {
	traces := map[string][]trace.Record{}
	for _, name := range workloads.Benchmarks() {
		tr, err := workloads.Trace(name, workloads.ScaleTest, 1)
		if err != nil {
			t.Fatalf("workloads.Trace(%s): %v", name, err)
		}
		traces[name] = tr.Records
	}
	for _, v := range variants() {
		for _, w := range workloads.Benchmarks() {
			if testing.Short() && v.name != "Soft" && w != "MV" {
				continue
			}
			t.Run(v.name+"/"+w, func(t *testing.T) {
				runDifferential(t, v.cfg, traces[w])
			})
		}
	}
}

// randomRecords synthesizes an adversarial trace: a small conflict-heavy
// working set with occasional far jumps, stores, temporal/spatial tags,
// virtual-line length hints and software prefetches, all drawn from a
// seeded generator so failures replay exactly.
func randomRecords(seed int64, n int) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		addr := uint64(rng.Intn(1 << 14))
		switch rng.Intn(8) {
		case 0:
			addr += 1 << 20 // far region: forces evictions and writebacks
		case 1:
			addr = uint64(rng.Intn(1 << 9)) // hot region: hits and swaps
		}
		addr &^= 3 // word-aligned
		r := trace.Record{
			Addr:     addr,
			RefID:    uint32(rng.Intn(64)),
			Gap:      uint8(rng.Intn(4)),
			Size:     uint8(4 << rng.Intn(2)),
			Write:    rng.Intn(10) < 3,
			Temporal: rng.Intn(4) == 0,
			Spatial:  rng.Intn(4) == 0,
		}
		if r.Spatial {
			r.VirtualHint = uint8(rng.Intn(4))
		}
		if rng.Intn(20) == 0 {
			r = trace.Record{Addr: addr, SoftwarePrefetch: true, Gap: uint8(rng.Intn(4))}
		}
		recs = append(recs, r)
	}
	return recs
}

// TestDifferentialRandomTraces hammers every design point with seeded
// random traces, the complement of the structured workload sweep.
func TestDifferentialRandomTraces(t *testing.T) {
	n := 20_000
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		n = 4_000
		seeds = seeds[:2]
	}
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			for _, seed := range seeds {
				runDifferential(t, v.cfg, randomRecords(seed, n))
			}
		})
	}
}

// TestSimulateManyDifferential replays one fused core.SimulateMany pass
// across the entire variant matrix and checks every configuration's final
// statistics against an independent reference-model replay. This closes
// the loop the per-config differential leaves open: the fused kernel's
// batch interleaving across simulators must not perturb any design point.
func TestSimulateManyDifferential(t *testing.T) {
	vs := variants()
	cfgs := make([]cache.Config, len(vs))
	for i, v := range vs {
		cfgs[i] = v.cfg
	}
	sources := map[string][]trace.Record{}
	for _, w := range []string{"MV", "SpMV", "MDG"} {
		tr, err := workloads.Trace(w, workloads.ScaleTest, 1)
		if err != nil {
			t.Fatalf("workloads.Trace(%s): %v", w, err)
		}
		sources[w] = tr.Records
	}
	sources["random"] = randomRecords(7, 20_000)
	for name, records := range sources {
		if testing.Short() && name != "MV" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			fused, err := core.SimulateManyTrace(context.Background(), cfgs,
				&trace.Trace{Name: name, Records: records})
			if err != nil {
				t.Fatalf("SimulateManyTrace: %v", err)
			}
			for i, v := range vs {
				ref, err := refmodel.New(v.cfg)
				if err != nil {
					t.Fatalf("refmodel.New(%s): %v", v.name, err)
				}
				for _, r := range records {
					ref.Access(r)
				}
				if !reflect.DeepEqual(fused[i].Stats, ref.Stats()) {
					t.Errorf("%s: fused stats diverge from reference model:\nfused:     %+v\nreference: %+v",
						v.name, fused[i].Stats, ref.Stats())
				}
			}
		})
	}
}

// FuzzDifferential lets the fuzzer search for a trace and design point on
// which the two implementations disagree. The seed corpus covers each
// mechanism family; the fuzzer mutates from there.
func FuzzDifferential(f *testing.F) {
	vs := variants()
	f.Add(int64(1), uint16(500), uint8(0))
	f.Add(int64(2), uint16(1000), uint8(1))
	f.Add(int64(3), uint16(2000), uint8(4))
	f.Add(int64(4), uint16(1500), uint8(12))
	f.Add(int64(5), uint16(800), uint8(13))
	f.Add(int64(6), uint16(900), uint8(19))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, cfgIdx uint8) {
		v := vs[int(cfgIdx)%len(vs)]
		records := randomRecords(seed, int(n)%4096+1)
		runDifferential(t, v.cfg, records)
	})
}
