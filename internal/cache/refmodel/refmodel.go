// Package refmodel is the differential reference for the optimized
// simulator in package cache. It implements the same hardware policies —
// the paper's main cache, bounce-back cache, virtual lines, stream
// buffers, column associativity, sub-block placement, bypass modes and
// §4.4 prefetch — with deliberately naive machinery:
//
//   - line residence is tracked in a map[lineAddr]position, not by
//     scanning packed arrays;
//   - per-line state is individual bool fields on heap-allocated slot
//     structs, not packed flag bytes;
//   - set indexing is plain modulo arithmetic, never a bit mask;
//   - scratch state (fetch candidate lists, stream-buffer FIFOs) is
//     allocated fresh on every use, never reused.
//
// None of the throughput tricks of the optimized kernel appear here, which
// is the point: the two implementations share only the policy
// specification, so any divergence in per-record cost or final statistics
// exposes a bug in one of them. The differential tests in package core
// replay every workload and seeded random traces through both and compare
// record by record; FuzzDifferential extends the search to adversarial
// traces.
//
// The xorshift generator behind ReplaceRandom is mirrored bit-for-bit
// (state seed and output multiplier), because victim choice — and from it
// every downstream number — depends on the exact random sequence.
package refmodel

import (
	"softcache/internal/cache"
	"softcache/internal/mem"
	"softcache/internal/trace"
)

// slot is one cache line's metadata, spelled out as individual fields.
type slot struct {
	Tag        uint64
	Valid      bool
	Dirty      bool
	Temporal   bool
	Prefetched bool         // bounce-back entries only
	SubValid   map[int]bool // present subblocks (sub-block placement only)
	LRU        uint64
}

// position locates a resident line inside a setCache.
type position struct{ set, way int }

// setCache is the naive set-associative structure used for both the main
// cache and the bounce-back/bypass buffers.
type setCache struct {
	sets, ways int
	slots      [][]*slot
	where      map[uint64]position
	tick       uint64
	policy     cache.ReplacementPolicy
	rng        uint64
}

func newSetCache(entries, ways int, policy cache.ReplacementPolicy) *setCache {
	if ways <= 0 || ways > entries {
		ways = entries // fully associative
	}
	sets := entries / ways
	c := &setCache{
		sets:   sets,
		ways:   ways,
		slots:  make([][]*slot, sets),
		where:  make(map[uint64]position),
		policy: policy,
		rng:    0x9e3779b97f4a7c15, // mirrors mainCache's xorshift seed
	}
	for s := range c.slots {
		c.slots[s] = make([]*slot, ways)
		for w := range c.slots[s] {
			c.slots[s][w] = &slot{SubValid: map[int]bool{}}
		}
	}
	return c
}

func (c *setCache) setIndex(la uint64) int { return int(la % uint64(c.sets)) }

// lookup finds la through the residence map (the optimized kernel scans a
// packed array — a structurally different mechanism answering the same
// question).
func (c *setCache) lookup(la uint64) *slot {
	pos, ok := c.where[la]
	if !ok {
		return nil
	}
	l := c.slots[pos.set][pos.way]
	if !l.Valid || l.Tag != la {
		// The map and the slots disagree: surface it as a miss would hide
		// the corruption; the differential test will catch the fallout.
		return nil
	}
	return l
}

func (c *setCache) touch(l *slot) {
	if c.policy == cache.ReplaceFIFO {
		return
	}
	c.tick++
	l.LRU = c.tick
}

func (c *setCache) touchAlways(l *slot) {
	c.tick++
	l.LRU = c.tick
}

// victimWay mirrors mainCache.victimWay including the direct-mapped early
// return (no RNG advance), the temporal-priority lease and the xorshift
// draw for ReplaceRandom.
func (c *setCache) victimWay(la uint64, temporalPriority bool) *slot {
	set := c.slots[c.setIndex(la)]
	if c.ways == 1 {
		return set[0]
	}
	var lruAny, lruNonTemporal *slot
	for _, l := range set {
		if !l.Valid {
			return l
		}
		if lruAny == nil || l.LRU < lruAny.LRU {
			lruAny = l
		}
		if !l.Temporal && (lruNonTemporal == nil || l.LRU < lruNonTemporal.LRU) {
			lruNonTemporal = l
		}
	}
	if temporalPriority && lruNonTemporal != nil {
		if lruAny != lruNonTemporal {
			lruAny.Temporal = false
		}
		return lruNonTemporal
	}
	if c.policy == cache.ReplaceRandom {
		c.rng ^= c.rng >> 12
		c.rng ^= c.rng << 25
		c.rng ^= c.rng >> 27
		w := int((c.rng * 0x2545f4914f6cdd1d) >> 33 % uint64(c.ways))
		return set[w]
	}
	return lruAny
}

// victimForBB mirrors bounceBackCache.victimFor (prefetch quota rule).
func (c *setCache) victimForBB(la uint64, insertingPrefetched bool, maxPrefetched int) *slot {
	set := c.slots[c.setIndex(la)]
	var lruAny, lruPrefetched, firstInvalid *slot
	prefetchedCount := 0
	for _, e := range set {
		if !e.Valid {
			if firstInvalid == nil {
				firstInvalid = e
			}
			continue
		}
		if e.Prefetched {
			prefetchedCount++
			if lruPrefetched == nil || e.LRU < lruPrefetched.LRU {
				lruPrefetched = e
			}
		}
		if lruAny == nil || e.LRU < lruAny.LRU {
			lruAny = e
		}
	}
	if insertingPrefetched && maxPrefetched > 0 && prefetchedCount >= maxPrefetched && lruPrefetched != nil {
		return lruPrefetched
	}
	if firstInvalid != nil {
		return firstInvalid
	}
	return lruAny
}

// victimForEvict mirrors bounceBackCache.victimForEvict.
func (c *setCache) victimForEvict(la uint64) *slot {
	set := c.slots[c.setIndex(la)]
	var lruAny *slot
	for _, e := range set {
		if !e.Valid {
			return e
		}
		if lruAny == nil || e.LRU < lruAny.LRU {
			lruAny = e
		}
	}
	return lruAny
}

// clear empties slot l and removes it from the residence map.
func (c *setCache) clear(l *slot) {
	if l.Valid {
		delete(c.where, l.Tag)
	}
	*l = slot{SubValid: map[int]bool{}}
}

// snapshot copies l's state (the value a caller keeps after l is reused).
func snapshot(l *slot) slot {
	out := *l
	out.SubValid = map[int]bool{}
	for k, v := range l.SubValid {
		out.SubValid[k] = v
	}
	return out
}

// install puts la into slot l (previous contents returned by value) and
// fixes up the residence map.
func (c *setCache) install(l *slot, pos position, la uint64) slot {
	old := snapshot(l)
	if l.Valid {
		delete(c.where, l.Tag)
	}
	c.tick++
	*l = slot{Tag: la, Valid: true, LRU: c.tick, SubValid: map[int]bool{}}
	c.where[la] = pos
	return old
}

// positionOf finds the set/way coordinates of a slot pointer by scanning —
// naive on purpose; it keeps install calls honest without threading
// positions everywhere.
func (c *setCache) positionOf(target *slot) position {
	for s := range c.slots {
		for w := range c.slots[s] {
			if c.slots[s][w] == target {
				return position{s, w}
			}
		}
	}
	panic("refmodel: slot not part of cache")
}

// Simulator is the naive reference hierarchy. Build with New, drive with
// Access, read counters with Stats — the same contract as cache.Simulator.
type Simulator struct {
	cfg    cache.Config
	main   *setCache
	bb     *setCache
	bypass *setCache
	sb     *refStreamBuffers
	memory *mem.System
	stats  cache.Stats

	now    uint64
	freeAt uint64

	maxPrefetch int
	prefDegree  int
	pseudoAssoc bool
	subblocks   int
	curIssue    uint64
}

// New builds the reference simulator; the configuration must validate.
func New(cfg cache.Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	memory, err := mem.NewSystem(cfg.Memory)
	if err != nil {
		return nil, err
	}
	ways := cfg.Assoc
	if cfg.ColumnAssociative {
		ways = 2
	}
	s := &Simulator{
		cfg:         cfg,
		main:        newSetCache(cfg.CacheSize/cfg.LineSize, ways, cfg.Replacement),
		memory:      memory,
		pseudoAssoc: cfg.ColumnAssociative,
	}
	if cfg.BounceBackLines > 0 {
		s.bb = newSetCache(cfg.BounceBackLines, bbWays(cfg.BounceBackLines, cfg.BounceBackAssoc), cache.ReplaceLRU)
	}
	if cfg.StreamBuffers > 0 {
		depth := cfg.StreamBufferDepth
		if depth == 0 {
			depth = 4
		}
		s.sb = &refStreamBuffers{
			count:    cfg.StreamBuffers,
			depth:    depth,
			lineSize: cfg.LineSize,
			transfer: memory.TransferCycles(cfg.LineSize),
			bufs:     make([]*refStreamBuffer, cfg.StreamBuffers),
		}
	}
	if cfg.Bypass == cache.BypassBuffered {
		s.bypass = newSetCache(cfg.BypassBufferLines, 0, cache.ReplaceLRU)
	}
	if cfg.SubblockSize > 0 {
		s.subblocks = cfg.LineSize / cfg.SubblockSize
	}
	s.maxPrefetch = cfg.Prefetch.MaxResident
	if s.maxPrefetch == 0 && cfg.BounceBackLines > 0 {
		s.maxPrefetch = cfg.BounceBackLines / 2
	}
	s.prefDegree = cfg.Prefetch.Degree
	if s.prefDegree == 0 {
		s.prefDegree = 1
	}
	return s, nil
}

func bbWays(entries, assoc int) int {
	if assoc <= 0 || assoc > entries {
		return entries
	}
	return assoc
}

// Stats returns the counters accumulated so far.
func (s *Simulator) Stats() cache.Stats {
	out := s.stats
	out.Mem = s.memory.Stats()
	return out
}

func (s *Simulator) lineAddr(addr uint64) uint64 { return addr / uint64(s.cfg.LineSize) }

func (s *Simulator) virtualLines() int {
	if s.cfg.VirtualLineSize > s.cfg.LineSize {
		return s.cfg.VirtualLineSize / s.cfg.LineSize
	}
	return 1
}

// Access simulates one reference and returns its cost in cycles.
func (s *Simulator) Access(r trace.Record) int {
	if r.SoftwarePrefetch {
		return s.softwarePrefetch(r)
	}
	s.stats.References++
	if r.Write {
		s.stats.Writes++
	} else {
		s.stats.Reads++
	}

	issue := s.now + uint64(r.Gap)
	stall := 0
	if issue < s.freeAt {
		stall = int(s.freeAt - issue)
		issue = s.freeAt
	}

	temporal := r.Temporal && s.cfg.UseTemporalTags
	spatial := r.Spatial && s.cfg.UseSpatialTags
	la := s.lineAddr(r.Addr)
	subIdx := 0
	if s.subblocks > 0 {
		subIdx = int(r.Addr%uint64(s.cfg.LineSize)) / s.cfg.SubblockSize
	}

	s.curIssue = issue
	if r.Write && s.sb != nil {
		s.sb.invalidate(la)
	}

	var service, lock int
	switch {
	case s.tryMainHit(la, subIdx, r.Write, temporal, &service):

	case s.cfg.Bypass != cache.BypassNone && !temporal:
		service = s.bypassAccess(la, r)

	case s.bb != nil && s.tryBounceBackHit(la, r.Write, temporal, &lock):
		service = s.cfg.BounceBackCycles
		lock += s.cfg.SwapLockCycles

	case s.sb != nil && s.tryStreamBufferHit(la, issue, r.Write, temporal, &service):

	case r.Write && s.cfg.Writes == cache.WriteThroughNoAllocate:
		s.stats.Misses++
		service = s.cfg.HitCycles + s.memory.PostWrite(int(r.Size), issue)

	default:
		service = s.miss(la, subIdx, r.Write, temporal, spatial, trace.VirtualHintBytes(r.VirtualHint))
	}

	cost := stall + service
	s.stats.CostCycles += uint64(cost)
	s.stats.LockStallCycles += uint64(stall)
	s.now = issue + uint64(service)
	s.freeAt = s.now + uint64(lock)
	return cost
}

func (s *Simulator) softwarePrefetch(r trace.Record) int {
	s.stats.SoftwarePrefetches++
	issue := s.now + uint64(r.Gap)
	if issue < s.freeAt {
		issue = s.freeAt
	}
	const issueCost = 1
	s.now = issue + issueCost
	if s.bb != nil {
		la := s.lineAddr(r.Addr)
		if s.main.lookup(la) == nil && s.bb.lookup(la) == nil {
			s.memory.PrefetchFetch(1, s.cfg.LineSize)
			s.stats.PrefetchesIssued++
			victim := s.bb.victimForBB(la, true, s.maxPrefetch)
			displaced := s.bb.installEntry(victim, la, false, false, true)
			s.handleBBEviction(displaced, nil, false)
		}
	}
	return issueCost
}

// installEntry places a fresh entry into a bounce-back/bypass victim slot,
// mirroring bounceBackCache.install's tick/LRU behaviour.
func (c *setCache) installEntry(victim *slot, la uint64, dirty, temporal, prefetched bool) slot {
	pos := c.positionOf(victim)
	old := snapshot(victim)
	if victim.Valid {
		delete(c.where, victim.Tag)
	}
	c.tick++
	*victim = slot{Tag: la, Valid: true, Dirty: dirty, Temporal: temporal, Prefetched: prefetched, LRU: c.tick, SubValid: map[int]bool{}}
	c.where[la] = pos
	return old
}

func (s *Simulator) setTemporal(l *slot, temporal bool) {
	if temporal && !l.Temporal {
		l.Temporal = true
		s.stats.TemporalBitSets++
	}
}

func (s *Simulator) storeUpdate(l *slot) int {
	if s.cfg.Writes == cache.WriteBackAllocate {
		l.Dirty = true
		return 0
	}
	return s.memory.PostWrite(8, s.curIssue)
}

func (s *Simulator) storeUpdateOnFill(l *slot) {
	if s.cfg.Writes == cache.WriteBackAllocate {
		l.Dirty = true
		return
	}
	s.memory.PostWrite(8, s.curIssue)
}

func (s *Simulator) tryMainHit(la uint64, subIdx int, write, temporal bool, service *int) bool {
	var l *slot
	*service = s.cfg.HitCycles
	if s.pseudoAssoc {
		var slow bool
		l, slow = s.columnProbe(la)
		if slow {
			*service = s.cfg.HitCycles + 1
			s.stats.ColumnSlowHits++
		}
	} else {
		l = s.main.lookup(la)
	}
	if l == nil {
		return false
	}
	if s.subblocks > 0 && !l.SubValid[subIdx] {
		s.stats.Misses++
		s.stats.SubblockFills++
		*service = s.cfg.HitCycles + s.memory.Fetch(0, 0, s.cfg.SubblockSize, 0)
		l.SubValid[subIdx] = true
		s.main.touch(l)
		if write {
			*service += s.storeUpdate(l)
		}
		s.setTemporal(l, temporal)
		return true
	}
	s.main.touch(l)
	if write {
		*service += s.storeUpdate(l)
	}
	s.setTemporal(l, temporal)
	s.stats.MainHits++
	return true
}

func (s *Simulator) tryBounceBackHit(la uint64, write, temporal bool, lock *int) bool {
	e := s.bb.lookup(la)
	if e == nil {
		return false
	}
	s.stats.BounceBackHits++
	s.stats.Swaps++
	wasPrefetched := e.Prefetched
	if wasPrefetched {
		s.stats.PrefetchHits++
	}
	eDirty, eTemporal := e.Dirty, e.Temporal

	vw := s.main.victimWay(la, s.cfg.TemporalPriorityReplacement)
	old := s.main.install(vw, s.main.positionOf(vw), la)
	vw.Dirty = vw.Dirty || eDirty
	vw.Temporal = vw.Temporal || eTemporal
	if write {
		s.storeUpdate(vw)
	}
	s.setTemporal(vw, temporal)

	if old.Valid {
		s.bb.installEntry(e, old.Tag, old.Dirty, old.Temporal, false)
	} else {
		s.bb.clear(e)
	}

	if wasPrefetched && s.cfg.Prefetch.Enabled {
		*lock++
		s.issuePrefetch(la+1, s.prefDegree, false)
	}
	return true
}

func (s *Simulator) bypassAccess(la uint64, r trace.Record) int {
	if s.cfg.Bypass == cache.BypassBuffered {
		if e := s.bypass.lookup(la); e != nil {
			s.bypass.touchAlways(e)
			if r.Write {
				e.Dirty = true
			}
			s.stats.BypassBufferHits++
			return s.cfg.HitCycles
		}
	}
	s.stats.Misses++
	switch s.cfg.Bypass {
	case cache.BypassPlain:
		s.stats.BypassMemFetches++
		return s.cfg.HitCycles + s.memory.Fetch(0, 0, int(r.Size), 0)
	case cache.BypassBuffered:
		penalty := s.memory.Fetch(1, s.cfg.LineSize, 0, 0)
		victim := s.bypass.victimForEvict(la)
		old := s.bypass.installEntry(victim, la, r.Write, false, false)
		if old.Valid && old.Dirty {
			s.memory.WritebackOutsideMiss()
		}
		return s.cfg.HitCycles + penalty
	default:
		panic("refmodel: bypassAccess called with bypass disabled")
	}
}

func (s *Simulator) miss(la uint64, subIdx int, write, temporal, spatial bool, vlBytes int) int {
	s.stats.Misses++

	if s.subblocks > 0 {
		var old slot
		var l *slot
		if s.pseudoAssoc {
			old, l = s.columnInstall(la)
		} else {
			l = s.main.victimWay(la, s.cfg.TemporalPriorityReplacement)
			old = s.main.install(l, s.main.positionOf(l), la)
		}
		l.SubValid = map[int]bool{subIdx: true}
		if write {
			s.storeUpdateOnFill(l)
		}
		s.setTemporal(l, temporal)
		dirty := 0
		if old.Valid && old.Dirty {
			dirty = 1
		}
		s.stats.SubblockFills++
		return s.cfg.HitCycles + s.memory.Fetch(0, 0, s.cfg.SubblockSize, dirty)
	}

	var fetch []uint64 // naive: fresh list every miss
	nv := s.virtualLines()
	if spatial && s.cfg.VariableVirtualLines && vlBytes > 0 {
		if n := vlBytes / s.cfg.LineSize; n >= 1 {
			nv = n
		}
	}
	if spatial && nv > 1 {
		s.stats.VirtualFills++
		block := la - la%uint64(nv)
		for i := 0; i < nv; i++ {
			cand := block + uint64(i)
			if cand != la && !s.cfg.NoCoherenceChecks && s.main.lookup(cand) != nil {
				s.stats.VirtualLinesSkipped++
				continue
			}
			fetch = append(fetch, cand)
		}
		s.stats.VirtualLinesFetched += uint64(len(fetch))
	} else {
		fetch = append(fetch, la)
	}

	dirtyWB := 0
	for _, cand := range fetch {
		if s.bb != nil && cand != la {
			if e := s.bb.lookup(cand); e != nil {
				if s.cfg.NoCoherenceChecks {
					s.bb.clear(e)
				} else {
					s.stats.Invalidations++
					continue
				}
			}
		}
		if s.main.lookup(cand) != nil {
			continue
		}
		var old slot
		var nl *slot
		if s.pseudoAssoc {
			old, nl = s.columnInstall(cand)
		} else {
			nl = s.main.victimWay(cand, s.cfg.TemporalPriorityReplacement)
			old = s.main.install(nl, s.main.positionOf(nl), cand)
		}
		if cand == la {
			if write {
				s.storeUpdateOnFill(nl)
			}
			s.setTemporal(nl, temporal)
		}
		if old.Valid {
			dirtyWB += s.evictMainLine(old, fetch)
		}
	}

	penalty := s.memory.Fetch(len(fetch), s.cfg.LineSize, 0, dirtyWB)

	if s.sb != nil {
		completion := s.curIssue + uint64(s.cfg.HitCycles+penalty)
		bytes := s.sb.allocate(la, completion, 0)
		if bytes > 0 {
			s.memory.PrefetchFetch(bytes/s.cfg.LineSize, s.cfg.LineSize)
			s.stats.StreamBufferAllocations++
		}
	}

	if s.cfg.Prefetch.Enabled && (spatial || !s.cfg.Prefetch.SoftwareGuided) {
		var next uint64
		if spatial && nv > 1 {
			next = la - la%uint64(nv) + uint64(nv)
		} else {
			next = la + 1
		}
		s.issuePrefetch(next, s.prefDegree, true)
	}

	return s.cfg.HitCycles + penalty
}

func (s *Simulator) evictMainLine(old slot, inflight []uint64) int {
	if s.bb == nil || (s.cfg.TemporalOnlyAdmission && !old.Temporal) {
		if old.Dirty {
			return 1
		}
		return 0
	}
	victim := s.bb.victimForEvict(old.Tag)
	displaced := s.bb.installEntry(victim, old.Tag, old.Dirty, old.Temporal, false)
	return s.handleBBEviction(displaced, inflight, true)
}

func (s *Simulator) handleBBEviction(e slot, inflight []uint64, underMiss bool) int {
	if !e.Valid {
		return 0
	}
	if e.Prefetched {
		s.stats.PrefetchDiscarded++
	}
	if s.cfg.BounceBackEnabled && e.Temporal {
		if containsAddr(inflight, e.Tag) {
			s.stats.BounceBackCanceled++
			return s.discard(e, underMiss)
		}
		vw := s.main.victimWay(e.Tag, s.cfg.TemporalPriorityReplacement)
		if vw.Valid && containsAddr(inflight, vw.Tag) {
			s.stats.BounceBackCanceled++
			return s.discard(e, underMiss)
		}
		if vw.Valid && vw.Dirty {
			if !s.memory.WritebackOutsideMiss() {
				s.stats.BounceBackAborted++
				return s.discard(e, underMiss)
			}
		}
		s.main.install(vw, s.main.positionOf(vw), e.Tag)
		vw.Dirty = e.Dirty // temporal bit reset after bounce-back
		s.stats.BouncedBack++
		return 0
	}
	return s.discard(e, underMiss)
}

func (s *Simulator) discard(e slot, underMiss bool) int {
	if !e.Dirty {
		return 0
	}
	if underMiss {
		return 1
	}
	s.memory.WritebackOutsideMiss()
	return 0
}

func (s *Simulator) issuePrefetch(la uint64, n int, underMiss bool) {
	for i := 0; i < n; i++ {
		cand := la + uint64(i)
		if s.main.lookup(cand) != nil || s.bb.lookup(cand) != nil {
			continue
		}
		s.memory.PrefetchFetch(1, s.cfg.LineSize)
		s.stats.PrefetchesIssued++
		victim := s.bb.victimForBB(cand, true, s.maxPrefetch)
		displaced := s.bb.installEntry(victim, cand, false, false, true)
		s.handleBBEviction(displaced, nil, underMiss)
	}
}

func containsAddr(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// --- stream buffers, tracking pluggable state naively ---

type refStreamBuffer struct {
	head    uint64
	readyAt []uint64
	lru     uint64
}

type refStreamBuffers struct {
	count    int
	depth    int
	lineSize int
	transfer int
	tick     uint64
	bufs     []*refStreamBuffer // nil entries are invalid buffers
}

func (s *refStreamBuffers) probe(la uint64) (int, uint64) {
	for i, b := range s.bufs {
		if b != nil && b.head == la {
			return i, b.readyAt[0]
		}
	}
	return -1, 0
}

func (s *refStreamBuffers) pop(i int, now uint64) int {
	b := s.bufs[i]
	s.tick++
	b.lru = s.tick
	b.head++
	next := make([]uint64, s.depth) // naive: fresh FIFO every pop
	copy(next, b.readyAt[1:])
	last := now
	if s.depth > 1 && b.readyAt[s.depth-1] > last {
		last = b.readyAt[s.depth-1]
	}
	next[s.depth-1] = last + uint64(s.transfer)
	b.readyAt = next
	return s.lineSize
}

func (s *refStreamBuffers) allocate(la uint64, now uint64, latency int) int {
	victim := -1
	for i, b := range s.bufs {
		if b == nil {
			victim = i
			break
		}
		if victim == -1 || b.lru < s.bufs[victim].lru {
			victim = i
		}
	}
	if victim == -1 {
		return 0
	}
	s.tick++
	nb := &refStreamBuffer{head: la + 1, lru: s.tick, readyAt: make([]uint64, s.depth)}
	for i := 0; i < s.depth; i++ {
		nb.readyAt[i] = now + uint64(latency) + uint64((i+1)*s.transfer)
	}
	s.bufs[victim] = nb
	return s.depth * s.lineSize
}

func (s *refStreamBuffers) invalidate(la uint64) {
	for i, b := range s.bufs {
		if b != nil && la >= b.head && la < b.head+uint64(s.depth) {
			s.bufs[i] = nil
		}
	}
}

func (s *Simulator) tryStreamBufferHit(la uint64, issue uint64, write, temporal bool, service *int) bool {
	i, ready := s.sb.probe(la)
	if i < 0 {
		return false
	}
	*service = s.cfg.HitCycles
	if ready > issue {
		*service += int(ready - issue)
	}
	s.sb.pop(i, issue)
	s.memory.PrefetchFetch(1, s.cfg.LineSize)
	s.stats.StreamBufferHits++

	s.placeFetchedLine(la, write, temporal)
	return true
}

func (s *Simulator) placeFetchedLine(la uint64, write, temporal bool) {
	if s.main.lookup(la) != nil {
		return
	}
	var old slot
	var l *slot
	if s.pseudoAssoc {
		old, l = s.columnInstall(la)
	} else {
		l = s.main.victimWay(la, s.cfg.TemporalPriorityReplacement)
		old = s.main.install(l, s.main.positionOf(l), la)
	}
	if write {
		s.storeUpdate(l)
	}
	s.setTemporal(l, temporal)
	if old.Valid {
		if n := s.evictMainLine(old, nil); n > 0 {
			for i := 0; i < n; i++ {
				s.memory.WritebackOutsideMiss()
			}
		}
	}
}

// --- column-associative organisation ---

func (s *Simulator) columnHomeWay(la uint64) int {
	total := uint64(s.main.sets * s.main.ways)
	if la%total >= uint64(s.main.sets) {
		return 1
	}
	return 0
}

func (s *Simulator) columnProbe(la uint64) (*slot, bool) {
	set := s.main.setIndex(la)
	home := s.columnHomeWay(la)
	other := s.main.ways - 1 - home
	hl := s.main.slots[set][home]
	ol := s.main.slots[set][other]
	if hl.Valid && hl.Tag == la {
		return hl, false
	}
	if ol.Valid && ol.Tag == la {
		s.columnSwap(set, home, other)
		return s.main.slots[set][home], true
	}
	return nil, false
}

// columnSwap exchanges the contents of two ways and fixes the residence
// map for both tags.
func (s *Simulator) columnSwap(set, a, b int) {
	sa, sb := s.main.slots[set][a], s.main.slots[set][b]
	*sa, *sb = *sb, *sa
	if sa.Valid {
		s.main.where[sa.Tag] = position{set, a}
	}
	if sb.Valid {
		s.main.where[sb.Tag] = position{set, b}
	}
}

func (s *Simulator) columnInstall(la uint64) (slot, *slot) {
	set := s.main.setIndex(la)
	homeW := s.columnHomeWay(la)
	otherW := s.main.ways - 1 - homeW
	hw := s.main.slots[set][homeW]
	ow := s.main.slots[set][otherW]

	if !hw.Valid {
		s.main.install(hw, position{set, homeW}, la)
		return slot{SubValid: map[int]bool{}}, hw
	}
	occupantAtHome := s.columnHomeWay(hw.Tag) == homeW
	if occupantAtHome {
		// The occupant owns this primary slot: demote it to the secondary
		// way (evicting whatever sat there) and take the primary.
		evicted := snapshot(ow)
		if ow.Valid {
			delete(s.main.where, ow.Tag)
		}
		movedTag := hw.Tag
		*ow = *hw
		hw.Valid = false // contents now live at ow; install must not unmap movedTag
		s.main.where[movedTag] = position{set, otherW}
		s.main.install(hw, position{set, homeW}, la)
		return evicted, hw
	}
	evicted := snapshot(hw)
	s.main.install(hw, position{set, homeW}, la)
	return evicted, hw
}
