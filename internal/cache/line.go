// Package cache implements the hardware model at the heart of the paper:
// a small main data cache (direct-mapped or set-associative) optionally
// assisted by
//
//   - virtual lines: on a miss by a reference carrying the software
//     *spatial* hint, the whole aligned virtual line (several physical
//     lines) is fetched, skipping lines already resident (§2.1);
//   - a bounce-back cache: a small fully-associative victim cache whose LRU
//     victim is re-injected ("bounced back") into the main cache instead of
//     being discarded when its *temporal* bit is set (§2.2);
//   - software-assisted progressive prefetch using the bounce-back cache as
//     the prefetch buffer (§4.4);
//   - cache bypass baselines, plain and through a small buffer (§2.2,
//     fig. 3a);
//   - temporal-priority replacement for set-associative caches, the
//     "simplified soft" design of fig. 9b.
//
// The model is trace-driven and cycle-approximate: every reference is
// charged an access cost in cycles following the conventions of DESIGN.md
// §6, and AMAT is the mean of those costs.
//
// The data structures are built for throughput: line metadata is packed
// into flat slices of fixed-size structs (one flags byte instead of a bool
// per property), set indexing uses a mask when the set count is a power of
// two (the common case — a 64-bit divide costs more than a whole hit
// lookup), and the steady-state simulate loop performs no heap allocations
// (verified by TestAccessSteadyStateZeroAllocs in package core). The
// deliberately naive map-based model in cache/refmodel cross-checks that
// none of this changes behaviour.
package cache

// Flag bits shared by main-cache lines and bounce-back entries. Packing
// the per-line booleans into one byte keeps the metadata structs small and
// lets multi-flag transfers (a swap moving dirty+temporal together) be a
// single mask-and-or instead of field-by-field copies.
const (
	flagValid uint8 = 1 << iota
	flagDirty
	flagTemporal
	flagPrefetched // bounce-back entries only (§4.4 prefetch buffer)

	flagDirtyTemporal = flagDirty | flagTemporal
)

// line is one physical cache line's book-keeping state. The simulator is
// trace-driven, so no data payload is stored.
type line struct {
	tag      uint64 // line address (byte address >> line shift)
	lru      uint64 // last-touch tick, larger = more recent
	subValid uint8  // per-subblock valid bits (sub-block placement only)
	flags    uint8  // flagValid | flagDirty | flagTemporal
}

func (l line) valid() bool    { return l.flags&flagValid != 0 }
func (l line) dirty() bool    { return l.flags&flagDirty != 0 }
func (l line) temporal() bool { return l.flags&flagTemporal != 0 }

// mainCache is the set-associative main data cache. Assoc 1 gives the
// direct-mapped organisation the paper targets.
type mainCache struct {
	sets     int
	ways     int
	lineSize int
	shift    uint   // log2(lineSize)
	setMask  uint64 // sets-1 when sets is a power of two
	maskable bool   // set indexing may use setMask instead of modulo
	lines    []line
	tick     uint64
	policy   ReplacementPolicy
	rng      uint64 // xorshift state for ReplaceRandom
}

func newMainCache(sizeBytes, lineSize, ways int, policy ReplacementPolicy) *mainCache {
	sets := sizeBytes / (lineSize * ways)
	return &mainCache{
		sets:     sets,
		ways:     ways,
		lineSize: lineSize,
		shift:    log2(lineSize),
		setMask:  uint64(sets - 1),
		maskable: isPow2(sets),
		lines:    make([]line, sets*ways),
		policy:   policy,
		rng:      0x9e3779b97f4a7c15,
	}
}

func log2(n int) uint {
	var s uint
	for 1<<s < n {
		s++
	}
	return s
}

// lineAddr converts a byte address to a line address.
func (c *mainCache) lineAddr(addr uint64) uint64 { return addr >> c.shift }

// setIndex maps a line address to its set. Cache geometry is almost always
// a power of two (Validate requires pow2 size and line size; only an odd
// associativity breaks it), so the hot path is a mask; the modulo fallback
// keeps odd-way configurations working.
func (c *mainCache) setIndex(la uint64) int {
	if c.maskable {
		return int(la & c.setMask)
	}
	return int(la % uint64(c.sets))
}

// lookup returns the way holding line address la, or nil. The
// direct-mapped power-of-two organisation (the paper's default, and the
// hottest probe in the whole simulator) is special-cased to a single
// masked load.
func (c *mainCache) lookup(la uint64) *line {
	if c.ways == 1 && c.maskable {
		l := &c.lines[la&c.setMask]
		if l.flags&flagValid != 0 && l.tag == la {
			return l
		}
		return nil
	}
	base := c.setIndex(la) * c.ways
	set := c.lines[base : base+c.ways]
	for w := range set {
		l := &set[w]
		if l.flags&flagValid != 0 && l.tag == la {
			return l
		}
	}
	return nil
}

// touch marks l as most recently used. Under FIFO the fill order decides
// eviction, so hits do not refresh the timestamp.
func (c *mainCache) touch(l *line) {
	if c.policy == ReplaceFIFO {
		return
	}
	c.tick++
	l.lru = c.tick
}

// victimWay selects the replacement victim in the set of line address la.
// Invalid ways are preferred; otherwise plain LRU, unless temporalPriority
// is set, in which case the LRU among lines with a clear temporal bit is
// preferred ("an LRU policy is still used, but non-temporal data are
// preferably replaced", §3.2).
//
// When the priority spares a temporal line that plain LRU would have
// evicted, that line's temporal bit is cleared: it gets one extra lease and
// then competes normally. This is the simplified-design analog of the
// paper's dynamic adjustment ("once a data has been bounced back, its
// temporal bit is reset" — §2.2): without it, dead reusable data would pin
// its set forever.
func (c *mainCache) victimWay(la uint64, temporalPriority bool) *line {
	if c.ways == 1 {
		// Direct-mapped: the victim is the lone slot whatever the policy,
		// and the temporal lease below cannot trigger (lruAny and
		// lruNonTemporal would be the same way).
		return &c.lines[c.setIndex(la)]
	}
	base := c.setIndex(la) * c.ways
	set := c.lines[base : base+c.ways]
	var lruAny, lruNonTemporal *line
	for w := range set {
		l := &set[w]
		if l.flags&flagValid == 0 {
			return l
		}
		if lruAny == nil || l.lru < lruAny.lru {
			lruAny = l
		}
		if l.flags&flagTemporal == 0 && (lruNonTemporal == nil || l.lru < lruNonTemporal.lru) {
			lruNonTemporal = l
		}
	}
	if temporalPriority && lruNonTemporal != nil {
		if lruAny != lruNonTemporal {
			lruAny.flags &^= flagTemporal
		}
		return lruNonTemporal
	}
	if c.policy == ReplaceRandom {
		c.rng ^= c.rng >> 12
		c.rng ^= c.rng << 25
		c.rng ^= c.rng >> 27
		w := int((c.rng * 0x2545f4914f6cdd1d) >> 33 % uint64(c.ways))
		return &set[w]
	}
	return lruAny
}

// install overwrites way l with line address la and returns the previous
// contents so the caller can route the victim (bounce-back cache, write
// buffer, or the floor).
func (c *mainCache) install(l *line, la uint64) line {
	old := *l
	c.tick++
	*l = line{tag: la, flags: flagValid, lru: c.tick}
	return old
}

// invalidate clears way l (virtual-line coherence, §2.2: when a physical
// line of the requested virtual line is found in the bounce-back cache, the
// main-cache location where it was stored is tagged invalid).
func (c *mainCache) invalidate(l *line) { *l = line{} }

// countValid returns the number of valid lines (used by tests and sanity
// invariants).
func (c *mainCache) countValid() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid() {
			n++
		}
	}
	return n
}
