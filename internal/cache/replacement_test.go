package cache

import "testing"

func TestFIFOReplacement(t *testing.T) {
	cfg := testConfig()
	cfg.Assoc = 2
	cfg.Replacement = ReplaceFIFO
	s := mustSim(t, cfg)
	a, b, c := uint64(0), uint64(512), uint64(1024) // one set
	s.Access(rec(a))
	s.Access(rec(b))
	s.Access(rec(a)) // re-use does NOT refresh a under FIFO
	s.Access(rec(c)) // evicts a (oldest fill), not b
	if s.Inspect(a).Where != Absent {
		t.Fatal("FIFO must evict the oldest fill despite the recent hit")
	}
	if s.Inspect(b).Where != InMain {
		t.Fatal("FIFO evicted the wrong way")
	}
}

func TestRandomReplacementIsDeterministicAndValid(t *testing.T) {
	cfg := testConfig()
	cfg.Assoc = 4
	cfg.Replacement = ReplaceRandom
	run := func() Stats {
		s := mustSim(t, cfg)
		for i, r := range randomTrace(51, 3000, 8192) {
			s.Access(r)
			if msg := s.CheckInvariants(); msg != "" {
				t.Fatalf("after access %d: %s", i, msg)
			}
		}
		return s.Stats()
	}
	if run() != run() {
		t.Fatal("random replacement must be deterministic per run")
	}
}

func TestReplacementValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Assoc = 2
	cfg.Replacement = ReplaceFIFO
	cfg.TemporalPriorityReplacement = true
	cfg.UseTemporalTags = true
	if _, err := New(cfg); err == nil {
		t.Fatal("temporal priority on non-LRU must be rejected")
	}
}

func TestReplacementPolicyString(t *testing.T) {
	if ReplaceLRU.String() != "lru" || ReplaceFIFO.String() != "fifo" ||
		ReplaceRandom.String() != "random" || ReplacementPolicy(9).String() == "" {
		t.Fatal("ReplacementPolicy.String broken")
	}
}

// TestLRUBeatsAlternativesOnCyclicReuse: the paper's observation that LRU
// is ill-suited for large cyclic reuse distances — but for in-cache
// working sets LRU wins; make sure the policies actually differ.
func TestPoliciesDiffer(t *testing.T) {
	miss := func(p ReplacementPolicy) uint64 {
		cfg := testConfig()
		cfg.Assoc = 2
		cfg.Replacement = p
		s := mustSim(t, cfg)
		for _, r := range randomTrace(52, 5000, 4096) {
			s.Access(r)
		}
		return s.Stats().Misses
	}
	l, f, r := miss(ReplaceLRU), miss(ReplaceFIFO), miss(ReplaceRandom)
	if l == f && f == r {
		t.Fatalf("policies produced identical miss counts (%d) — suspicious", l)
	}
}
