package cache

import "testing"

// subblockConfig: 1 KiB cache, 64-byte lines sectored into 32-byte
// subblocks — the PowerPC organisation §3.2 mentions.
func subblockConfig() Config {
	c := testConfig()
	c.LineSize = 64
	c.SubblockSize = 32
	return c
}

func TestSubblockFillFetchesOnlySubblock(t *testing.T) {
	s := mustSim(t, subblockConfig())
	// Full miss at 0: directory entry allocated, only subblock 0 fetched.
	// Penalty: 1 + 20 + 2 (32 bytes over 16 B/cycle).
	if got := s.Access(rec(0)); got != 23 {
		t.Fatalf("miss cost = %d, want 23", got)
	}
	if s.Stats().Mem.BytesFetched != 32 {
		t.Fatalf("bytes = %d, want 32 (one subblock)", s.Stats().Mem.BytesFetched)
	}
	// Same line, second subblock: tag matches, hole refill.
	if got := s.Access(rec(32)); got != 23 {
		t.Fatalf("hole refill cost = %d, want 23", got)
	}
	st := s.Stats()
	if st.SubblockFills != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Both subblocks now valid: hits.
	if got := s.Access(rec(8)); got != 1 {
		t.Fatalf("hit cost = %d", got)
	}
	if got := s.Access(rec(40)); got != 1 {
		t.Fatalf("hit cost = %d", got)
	}
}

func TestSubblockReplacementClearsHoles(t *testing.T) {
	s := mustSim(t, subblockConfig())
	s.Access(rec(0))
	s.Access(rec(32))   // line 0 fully valid
	s.Access(rec(1024)) // conflicts (1 KiB cache): replaces the entry
	// Line 0 must be entirely gone, including subblock 1.
	if got := s.Access(rec(32)); got == 1 {
		t.Fatal("stale subblock survived a directory replacement")
	}
}

func TestSubblockTrafficAdvantage(t *testing.T) {
	// Scattered single-word accesses: sectored 64B lines fetch half the
	// bytes of full 64B lines.
	full := testConfig()
	full.LineSize = 64
	sb := subblockConfig()
	fs := mustSim(t, full)
	ss := mustSim(t, sb)
	for i := uint64(0); i < 64; i++ {
		addr := i * 128 // one access per 64-byte line, spread out
		fs.Access(rec(addr))
		ss.Access(rec(addr))
	}
	if f, s2 := fs.Stats().Mem.BytesFetched, ss.Stats().Mem.BytesFetched; s2 != f/2 {
		t.Fatalf("sectored traffic = %d, full-line = %d (want half)", s2, f)
	}
}

func TestSubblockValidation(t *testing.T) {
	cfg := subblockConfig()
	cfg.SubblockSize = 48 // not a power of two
	if _, err := New(cfg); err == nil {
		t.Fatal("non-pow2 subblock must be rejected")
	}
	cfg = subblockConfig()
	cfg.SubblockSize = 64 // == line size
	if _, err := New(cfg); err == nil {
		t.Fatal("subblock == line size must be rejected")
	}
	cfg = subblockConfig()
	cfg.LineSize = 512
	cfg.SubblockSize = 32 // 16 subblocks > 8
	if _, err := New(cfg); err == nil {
		t.Fatal("more than 8 subblocks must be rejected")
	}
	cfg = subblockConfig()
	cfg.VirtualLineSize = 128
	cfg.UseSpatialTags = true
	if _, err := New(cfg); err == nil {
		t.Fatal("subblocks + virtual lines must be rejected")
	}
	cfg = subblockConfig()
	cfg.BounceBackLines = 8
	cfg.BounceBackCycles = 3
	if _, err := New(cfg); err == nil {
		t.Fatal("subblocks + bounce-back must be rejected")
	}
}

func TestSubblockInvariants(t *testing.T) {
	s := mustSim(t, subblockConfig())
	for i, r := range randomTrace(41, 4000, 8192) {
		s.Access(r)
		if msg := s.CheckInvariants(); msg != "" {
			t.Fatalf("after access %d: %s", i, msg)
		}
	}
	st := s.Stats()
	if st.MainHits+st.Misses != st.References {
		t.Fatalf("accounting: %+v", st)
	}
}

func TestSubblockWriteDirtiesLine(t *testing.T) {
	s := mustSim(t, subblockConfig())
	s.Access(recW(0))
	if !s.Inspect(0).Dirty {
		t.Fatal("store must dirty the line")
	}
	s.Access(rec(1024)) // eviction writes the dirty line back
	if s.Stats().Mem.Writebacks != 1 {
		t.Fatalf("writebacks = %d", s.Stats().Mem.Writebacks)
	}
}
