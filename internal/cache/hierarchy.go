package cache

import (
	"softcache/internal/mem"
	"softcache/internal/trace"
)

// Simulator is the trace-driven model of the whole hierarchy described in
// the package comment. Build one with New, feed it records with Access or a
// whole trace with Run, and read the counters with Stats.
//
// The simulator keeps a cycle clock fed by the per-record issue gaps, so
// structural hazards (the 2-cycle lock of main and bounce-back caches after
// a swap, §2.2) are charged to the accesses that actually collide with them.
//
// A Simulator is not safe for concurrent use: besides the cache state
// proper it owns reusable scratch buffers (the fetch candidate list, the
// invariant checker's seen-tag sets) so the steady-state simulate loop
// allocates nothing.
type Simulator struct {
	cfg    Config
	main   *mainCache
	bb     *bounceBackCache
	bypass *bounceBackCache // buffered-bypass line buffer
	sb     *streamBufferSet // Jouppi stream buffers (related-work baseline)
	memory *mem.System
	stats  Stats

	now    uint64 // cycle at which the previous access completed
	freeAt uint64 // cache locked until this cycle (swap locks)

	fetchScratch []uint64 // reusable candidate-line buffer
	maxPrefetch  int
	prefDegree   int
	pseudoAssoc  bool   // column-associative main cache
	plainDM      bool   // direct-mapped pow2 main, no subblocks: hit fast path
	subblocks    int    // subblocks per line (0 = sub-block placement off)
	lineMask     uint64 // LineSize-1: in-line byte offset mask
	subShift     uint   // log2(SubblockSize)
	curIssue     uint64 // issue cycle of the access being processed

	// seenMain / seenBB are the invariant checker's scratch sets. They
	// live on the simulator and are cleared in place so the periodic
	// structural scans (and property tests hammering CheckInvariants)
	// allocate only on first use, not per call.
	seenMain map[uint64]bool
	seenBB   map[uint64]bool
}

// New builds a simulator; the configuration must validate.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	memory, err := mem.NewSystem(cfg.Memory)
	if err != nil {
		return nil, err
	}
	ways := cfg.Assoc
	if cfg.ColumnAssociative {
		// A column-associative cache is modelled as a pseudo-associative
		// 2-way organisation with a slow second way.
		ways = 2
	}
	s := &Simulator{
		cfg:         cfg,
		main:        newMainCache(cfg.CacheSize, cfg.LineSize, ways, cfg.Replacement),
		memory:      memory,
		pseudoAssoc: cfg.ColumnAssociative,
	}
	if cfg.BounceBackLines > 0 {
		s.bb = newBounceBackCache(cfg.BounceBackLines, cfg.BounceBackAssoc)
	}
	if cfg.StreamBuffers > 0 {
		depth := cfg.StreamBufferDepth
		if depth == 0 {
			depth = 4
		}
		s.sb = newStreamBufferSet(cfg.StreamBuffers, depth, cfg.LineSize,
			memory.TransferCycles(cfg.LineSize))
	}
	if cfg.Bypass == BypassBuffered {
		s.bypass = newBounceBackCache(cfg.BypassBufferLines, 0)
	}
	if cfg.SubblockSize > 0 {
		s.subblocks = cfg.LineSize / cfg.SubblockSize
		s.lineMask = uint64(cfg.LineSize - 1)
		s.subShift = log2(cfg.SubblockSize)
	}
	s.maxPrefetch = cfg.Prefetch.MaxResident
	if s.maxPrefetch == 0 && cfg.BounceBackLines > 0 {
		s.maxPrefetch = cfg.BounceBackLines / 2
	}
	s.prefDegree = cfg.Prefetch.Degree
	if s.prefDegree == 0 {
		s.prefDegree = 1
	}
	// The paper's default organisation (direct-mapped, power-of-two
	// geometry, whole-line fills) gets a hand-inlined hit path in Access:
	// one masked load and no function calls for two-thirds of all records.
	s.plainDM = !s.pseudoAssoc && s.subblocks == 0 && s.main.ways == 1 && s.main.maskable
	return s, nil
}

// Config returns the configuration the simulator was built with.
func (s *Simulator) Config() Config { return s.cfg }

// Stats returns the counters accumulated so far (memory counters included).
func (s *Simulator) Stats() Stats {
	out := s.stats
	out.Mem = s.memory.Stats()
	return out
}

// ResetStats clears the accumulated counters while keeping all cache state
// (lines, bounce-back contents, stream buffers, the cycle clock). Use it to
// measure steady-state behaviour after a warm-up prefix, excluding cold
// misses from the reported AMAT.
func (s *Simulator) ResetStats() {
	s.stats = Stats{}
	s.memory.ResetStats()
}

// Run processes every record of the trace and returns the final stats.
func (s *Simulator) Run(t *trace.Trace) Stats {
	s.AccessAll(t.Records)
	return s.Stats()
}

// AccessAll processes recs in order, exactly as len(recs) Access calls
// would (the refmodel differential suite pins the equivalence). It is the
// per-batch entry point of the streaming kernels (core.SimulateStream,
// core.SimulateMany): besides removing the per-record call boundary, it
// runs the paper's default organisation — plain direct-mapped hits, the
// bulk of every trace — in a register-resident loop: the cycle clock, the
// LRU tick and the statistics counters live in locals across each run of
// consecutive fast hits and are flushed back to the simulator only when a
// record needs the general path (a miss, a software prefetch) or the batch
// ends. That keeps roughly a dozen per-record memory read-modify-writes
// out of the hit path, which is what makes the trace decode a visible
// fraction of the record budget — and therefore what the fused
// multi-configuration pass (decode once, simulate N times) can win back.
func (s *Simulator) AccessAll(recs []trace.Record) {
	if !s.plainDM || s.sb != nil || s.cfg.RuntimeChecks {
		for i := range recs {
			s.Access(recs[i])
		}
		return
	}
	m := s.main
	lines := m.lines
	setMask := m.setMask
	shift := m.shift
	hitCycles := uint64(s.cfg.HitCycles)
	useTemporal := s.cfg.UseTemporalTags
	writeBack := s.cfg.Writes == WriteBackAllocate
	fifo := m.policy == ReplaceFIFO

	i := 0
	for i < len(recs) {
		// One run of consecutive plain direct-mapped hits. The mutable
		// state the fast path touches is loaded into locals here and
		// flushed after the inner loop, so the loop body performs no
		// simulator-struct stores besides the line metadata itself.
		var refs, reads, writes, mainHits, tempSets, cost, lockStall uint64
		now, freeAt, tick := s.now, s.freeAt, m.tick
		j := i
		for ; j < len(recs); j++ {
			r := &recs[j]
			la := r.Addr >> shift
			l := &lines[la&setMask]
			if r.SoftwarePrefetch || l.flags&flagValid == 0 || l.tag != la {
				break // general path below
			}
			// Mirror of Access's hand-inlined direct-mapped hit path.
			refs++
			issue := now + uint64(r.Gap)
			var stall uint64
			if issue < freeAt {
				stall = freeAt - issue
				issue = freeAt
			}
			service := hitCycles
			if !fifo {
				tick++
				l.lru = tick
			}
			if r.Write {
				writes++
				if writeBack {
					l.flags |= flagDirty
				} else {
					service += uint64(s.memory.PostWrite(8, issue))
				}
			} else {
				reads++
			}
			if useTemporal && r.Temporal && l.flags&flagTemporal == 0 {
				l.flags |= flagTemporal
				tempSets++
			}
			mainHits++
			cost += stall + service
			lockStall += stall
			now = issue + service
			freeAt = now
		}
		s.stats.References += refs
		s.stats.Reads += reads
		s.stats.Writes += writes
		s.stats.MainHits += mainHits
		s.stats.TemporalBitSets += tempSets
		s.stats.CostCycles += cost
		s.stats.LockStallCycles += lockStall
		s.now, s.freeAt, m.tick = now, freeAt, tick
		i = j
		if i < len(recs) {
			s.Access(recs[i])
			i++
		}
	}
}

// Access simulates one reference and returns its cost in cycles (including
// any stall waiting for a locked cache).
func (s *Simulator) Access(r trace.Record) int {
	if r.SoftwarePrefetch {
		return s.softwarePrefetch(r)
	}
	s.stats.References++
	if r.Write {
		s.stats.Writes++
	} else {
		s.stats.Reads++
	}

	issue := s.now + uint64(r.Gap)
	stall := 0
	if issue < s.freeAt {
		stall = int(s.freeAt - issue)
		issue = s.freeAt
	}

	temporal := r.Temporal && s.cfg.UseTemporalTags
	spatial := r.Spatial && s.cfg.UseSpatialTags
	la := s.main.lineAddr(r.Addr)
	subIdx := 0
	if s.subblocks > 0 {
		// Line size and subblock size are powers of two (Validate), so
		// the in-line offset and subblock index reduce to mask and shift.
		subIdx = int((r.Addr & s.lineMask) >> s.subShift)
	}

	s.curIssue = issue
	if r.Write && s.sb != nil {
		// Stores invalidate any stream that covers the line: the buffered
		// copy would be stale.
		s.sb.invalidate(la)
	}

	var service, lock int
	hit := false
	if s.plainDM {
		// Hand-inlined tryMainHit for the plain direct-mapped case: the
		// whole hit — probe, LRU touch, write policy, temporal bit — runs
		// without a function call (storeUpdate inlines). Behaviour is
		// identical to the general path below, which still serves
		// associative, column-associative and sub-blocked organisations.
		if l := &s.main.lines[la&s.main.setMask]; l.flags&flagValid != 0 && l.tag == la {
			hit = true
			service = s.cfg.HitCycles
			if s.main.policy != ReplaceFIFO {
				s.main.tick++
				l.lru = s.main.tick
			}
			if r.Write {
				service += s.storeUpdate(&l.flags)
			}
			if temporal && l.flags&flagTemporal == 0 {
				l.flags |= flagTemporal
				s.stats.TemporalBitSets++
			}
			s.stats.MainHits++
		}
	}
	switch {
	case hit:
	case !s.plainDM && s.tryMainHit(la, subIdx, r.Write, temporal, &service):

	case s.cfg.Bypass != BypassNone && !temporal:
		service = s.bypassAccess(la, r)

	case s.bb != nil && s.tryBounceBackHit(la, r.Write, temporal, &lock):
		service = s.cfg.BounceBackCycles
		lock += s.cfg.SwapLockCycles

	case s.sb != nil && s.tryStreamBufferHit(la, issue, r.Write, temporal, &service):

	case r.Write && s.cfg.Writes == WriteThroughNoAllocate:
		// Store miss without allocation: the word goes straight to the
		// write buffer; nothing is fetched.
		s.stats.Misses++
		service = s.cfg.HitCycles + s.memory.PostWrite(int(r.Size), issue)

	default:
		service = s.miss(la, subIdx, r.Write, temporal, spatial, trace.VirtualHintBytes(r.VirtualHint))
	}

	cost := stall + service
	s.stats.CostCycles += uint64(cost)
	s.stats.LockStallCycles += uint64(stall)
	s.now = issue + uint64(service)
	s.freeAt = s.now + uint64(lock)
	if s.cfg.RuntimeChecks {
		s.runChecks()
	}
	return cost
}

// softwarePrefetch services an explicit prefetch instruction (§4.4
// extension): it occupies one issue slot, never stalls the processor, and
// — when the line is absent from both caches — rides the bus into the
// bounce-back cache marked prefetched, exactly like a hardware-initiated
// prefetch. Without a bounce-back structure (no prefetch buffer) it is a
// no-op beyond its issue slot. Prefetch instructions are excluded from the
// AMAT denominator (References/CostCycles) so AMAT stays comparable across
// variants; their count and traffic are reported separately.
func (s *Simulator) softwarePrefetch(r trace.Record) int {
	s.stats.SoftwarePrefetches++
	issue := s.now + uint64(r.Gap)
	if issue < s.freeAt {
		issue = s.freeAt
	}
	const issueCost = 1
	s.now = issue + issueCost
	if s.bb != nil {
		la := s.main.lineAddr(r.Addr)
		if s.main.lookup(la) == nil && s.bb.lookup(la) == nil {
			s.memory.PrefetchFetch(1, s.cfg.LineSize)
			s.stats.PrefetchesIssued++
			victim := s.bb.victimFor(la, true, s.maxPrefetch)
			displaced := s.bb.install(victim, bbEntry{tag: la, flags: flagPrefetched})
			s.handleBBEviction(displaced, nil, false)
		}
	}
	return issueCost
}

// tryMainHit probes the main cache; on a hit it updates LRU, dirty and the
// temporal bit, stores the service time in *service and returns true. In
// the column-associative organisation a hit in the slow (alternate) way
// costs one extra cycle and the two ways are swapped so the line answers
// fast next time.
func (s *Simulator) tryMainHit(la uint64, subIdx int, write, temporal bool, service *int) bool {
	var l *line
	*service = s.cfg.HitCycles
	if s.pseudoAssoc {
		var slow bool
		l, slow = s.columnProbe(la)
		if slow {
			*service = s.cfg.HitCycles + 1
			s.stats.ColumnSlowHits++
		}
	} else {
		l = s.main.lookup(la)
	}
	if l == nil {
		return false
	}
	if s.subblocks > 0 && l.subValid&(1<<subIdx) == 0 {
		// Sub-block placement: the tag matches but the subblock is
		// absent — refill just that subblock (§2.1's sectored design).
		s.stats.Misses++
		s.stats.SubblockFills++
		*service = s.cfg.HitCycles + s.memory.Fetch(0, 0, s.cfg.SubblockSize, 0)
		l.subValid |= 1 << subIdx
		s.main.touch(l)
		if write {
			*service += s.storeUpdate(&l.flags)
		}
		s.setTemporal(&l.flags, temporal)
		return true
	}
	s.main.touch(l)
	if write {
		*service += s.storeUpdate(&l.flags)
	}
	s.setTemporal(&l.flags, temporal)
	s.stats.MainHits++
	return true
}

// tryStreamBufferHit checks the stream-buffer head comparators on a demand
// miss. On a hit the line moves into the main cache (the buffer pops and
// prefetches one more line at its tail); the access waits only if the line
// is still in flight.
func (s *Simulator) tryStreamBufferHit(la uint64, issue uint64, write, temporal bool, service *int) bool {
	if s.sb == nil {
		return false
	}
	b, ready := s.sb.probe(la)
	if b == nil {
		return false
	}
	*service = s.cfg.HitCycles
	if ready > issue {
		*service += int(ready - issue)
	}
	s.sb.pop(b, issue)
	s.memory.PrefetchFetch(1, s.cfg.LineSize) // the tail refill
	s.stats.StreamBufferHits++

	s.placeFetchedLine(la, write, temporal)
	return true
}

// placeFetchedLine installs a line arriving outside a regular miss (stream
// buffer pops): the displaced victim is routed as usual, with dirty
// writebacks going through the write buffer on their own.
func (s *Simulator) placeFetchedLine(la uint64, write, temporal bool) {
	if s.main.lookup(la) != nil {
		return
	}
	var old line
	var l *line
	if s.pseudoAssoc {
		old, l = s.columnInstall(la)
	} else {
		l = s.main.victimWay(la, s.cfg.TemporalPriorityReplacement)
		old = s.main.install(l, la)
	}
	if write {
		s.storeUpdate(&l.flags)
	}
	s.setTemporal(&l.flags, temporal)
	if old.valid() {
		if n := s.evictMainLine(old, nil); n > 0 {
			for i := 0; i < n; i++ {
				s.memory.WritebackOutsideMiss()
			}
		}
	}
}

// setTemporal implements the §2.2 rule: a temporal-tagged access sets the
// line's temporal bit; an untagged access leaves it unchanged.
func (s *Simulator) setTemporal(flags *uint8, temporal bool) {
	if temporal && *flags&flagTemporal == 0 {
		*flags |= flagTemporal
		s.stats.TemporalBitSets++
	}
}

// storeUpdate applies the write policy to a store hitting the line with
// the given flags: under write-back the line is dirtied; under the
// write-through policies the word is posted to the write buffer and any
// buffer-full stall is returned.
func (s *Simulator) storeUpdate(flags *uint8) int {
	if s.cfg.Writes == WriteBackAllocate {
		*flags |= flagDirty
		return 0
	}
	return s.memory.PostWrite(8, s.curIssue)
}

// storeUpdateOnFill applies the write policy when a store miss allocates:
// under write-back the fresh line is dirtied; under write-through the word
// is posted to the write buffer, hidden under the in-flight miss.
func (s *Simulator) storeUpdateOnFill(flags *uint8) {
	if s.cfg.Writes == WriteBackAllocate {
		*flags |= flagDirty
		return
	}
	s.memory.PostWrite(8, s.curIssue)
}

// tryBounceBackHit probes the bounce-back cache; on a hit the entry is
// swapped with the victim way of the main cache set it maps to. If the hit
// was on a prefetched line, the next line is prefetched (progressive
// prefetch) and the main cache stays locked one extra cycle for the
// presence check (§4.4).
func (s *Simulator) tryBounceBackHit(la uint64, write, temporal bool, lock *int) bool {
	if s.bb == nil {
		return false
	}
	e := s.bb.lookup(la)
	if e == nil {
		return false
	}
	s.stats.BounceBackHits++
	s.stats.Swaps++
	wasPrefetched := e.prefetched()
	if wasPrefetched {
		s.stats.PrefetchHits++
	}

	// Move the bounce-back entry into the main cache...
	vw := s.main.victimWay(la, s.cfg.TemporalPriorityReplacement)
	old := s.main.install(vw, la)
	vw.flags |= e.flags & flagDirtyTemporal
	if write {
		s.storeUpdate(&vw.flags)
	}
	s.setTemporal(&vw.flags, temporal)

	// ...and the displaced main line into the freed bounce-back slot.
	if old.valid() {
		s.bb.install(e, bbEntry{tag: old.tag, flags: old.flags & flagDirtyTemporal})
	} else {
		s.bb.invalidate(e)
	}

	if wasPrefetched && s.cfg.Prefetch.Enabled {
		*lock++ // extra main-cache stall cycle for the presence check
		s.issuePrefetch(la+1, s.prefDegree, false)
	}
	return true
}

// bypassAccess services a non-temporal reference in one of the bypass modes
// (fig. 3a baselines). The main cache has already missed.
func (s *Simulator) bypassAccess(la uint64, r trace.Record) int {
	if s.cfg.Bypass == BypassBuffered {
		if e := s.bypass.lookup(la); e != nil {
			s.bypass.touch(e)
			if r.Write {
				e.flags |= flagDirty
			}
			s.stats.BypassBufferHits++
			return s.cfg.HitCycles
		}
	}
	s.stats.Misses++
	switch s.cfg.Bypass {
	case BypassPlain:
		// Fetch only the referenced word; allocate nothing.
		s.stats.BypassMemFetches++
		return s.cfg.HitCycles + s.memory.Fetch(0, 0, int(r.Size), 0)
	case BypassBuffered:
		penalty := s.memory.Fetch(1, s.cfg.LineSize, 0, 0)
		victim := s.bypass.victimForEvict(la)
		var flags uint8
		if r.Write {
			flags = flagDirty
		}
		old := s.bypass.install(victim, bbEntry{tag: la, flags: flags})
		if old.valid() && old.dirty() {
			s.memory.WritebackOutsideMiss()
		}
		return s.cfg.HitCycles + penalty
	default:
		panic("cache: bypassAccess called with bypass disabled")
	}
}

// miss services a reference absent from both caches: it selects the physical
// lines to fetch (one, or a whole virtual line for spatial-tagged
// references — possibly length-hinted, §3.2), places them, routes victims
// through the bounce-back cache, and returns the access cost.
func (s *Simulator) miss(la uint64, subIdx int, write, temporal, spatial bool, vlBytes int) int {
	s.stats.Misses++

	if s.subblocks > 0 {
		// Sub-block placement: replace the whole directory entry but
		// fetch only the referenced subblock.
		var old line
		var l *line
		if s.pseudoAssoc {
			old, l = s.columnInstall(la)
		} else {
			l = s.main.victimWay(la, s.cfg.TemporalPriorityReplacement)
			old = s.main.install(l, la)
		}
		l.subValid = 1 << subIdx
		if write {
			s.storeUpdateOnFill(&l.flags)
		}
		s.setTemporal(&l.flags, temporal)
		dirty := 0
		if old.valid() && old.dirty() {
			dirty = 1
		}
		s.stats.SubblockFills++
		return s.cfg.HitCycles + s.memory.Fetch(0, 0, s.cfg.SubblockSize, dirty)
	}

	fetch := s.fetchScratch[:0]
	nv := s.cfg.virtualLines()
	if spatial && s.cfg.VariableVirtualLines && vlBytes > 0 {
		if n := vlBytes / s.cfg.LineSize; n >= 1 {
			nv = n
		}
	}
	if spatial && nv > 1 {
		s.stats.VirtualFills++
		block := la &^ uint64(nv-1)
		for i := 0; i < nv; i++ {
			cand := block + uint64(i)
			if cand != la && !s.cfg.NoCoherenceChecks && s.main.lookup(cand) != nil {
				// 1-cycle pipelined tag check, hidden under the
				// request stream (§2.1): the line is not re-fetched.
				s.stats.VirtualLinesSkipped++
				continue
			}
			fetch = append(fetch, cand)
		}
		s.stats.VirtualLinesFetched += uint64(len(fetch))
	} else {
		fetch = append(fetch, la)
	}
	s.fetchScratch = fetch

	dirtyWB := 0
	for _, cand := range fetch {
		// Bounce-back coherence (§2.2): the bounce-back cache is checked
		// after the memory requests have left; a resident copy keeps
		// authority and the main-cache slot is tagged invalid. The fetch
		// itself cannot be aborted, so the traffic is still paid. With
		// the checks ablated the bounce-back copy is dropped instead (the
		// memory copy wins), which is incoherent hardware but keeps the
		// simulator's no-duplication invariant.
		if s.bb != nil && cand != la {
			if e := s.bb.lookup(cand); e != nil {
				if s.cfg.NoCoherenceChecks {
					s.bb.invalidate(e)
				} else {
					s.stats.Invalidations++
					continue
				}
			}
		}
		// A bounce-back triggered by an earlier placement of this very
		// miss may have re-installed cand already; never duplicate.
		if s.main.lookup(cand) != nil {
			continue
		}
		var old line
		var nl *line
		if s.pseudoAssoc {
			old, nl = s.columnInstall(cand)
		} else {
			nl = s.main.victimWay(cand, s.cfg.TemporalPriorityReplacement)
			old = s.main.install(nl, cand)
		}
		if cand == la {
			if write {
				s.storeUpdateOnFill(&nl.flags)
			}
			s.setTemporal(&nl.flags, temporal)
		}
		if old.valid() {
			dirtyWB += s.evictMainLine(old, fetch)
		}
	}

	penalty := s.memory.Fetch(len(fetch), s.cfg.LineSize, 0, dirtyWB)

	if s.sb != nil {
		// A demand miss (re)allocates the LRU stream buffer to prefetch
		// the lines following the miss (Jouppi's scheme): the stream's
		// lines arrive behind the demand line, one bus transfer apart.
		completion := s.curIssue + uint64(s.cfg.HitCycles+penalty)
		bytes := s.sb.allocate(la, completion, 0)
		if bytes > 0 {
			s.memory.PrefetchFetch(bytes/s.cfg.LineSize, s.cfg.LineSize)
			s.stats.StreamBufferAllocations++
		}
	}

	if s.cfg.Prefetch.Enabled && (spatial || !s.cfg.Prefetch.SoftwareGuided) {
		// Prefetch the physical line(s) consecutive to the fetched block.
		var next uint64
		if spatial && nv > 1 {
			next = (la &^ uint64(nv-1)) + uint64(nv)
		} else {
			next = la + 1
		}
		s.issuePrefetch(next, s.prefDegree, true)
	}

	return s.cfg.HitCycles + penalty
}

// evictMainLine routes a line displaced from the main cache: into the
// bounce-back cache when one exists (and the admission policy allows),
// otherwise to the write buffer if dirty. It returns the number of dirty
// writebacks to hide under the in-flight miss.
func (s *Simulator) evictMainLine(old line, inflight []uint64) int {
	if s.bb == nil || (s.cfg.TemporalOnlyAdmission && !old.temporal()) {
		if old.dirty() {
			return 1
		}
		return 0
	}
	victim := s.bb.victimForEvict(old.tag)
	displaced := s.bb.install(victim, bbEntry{tag: old.tag, flags: old.flags & flagDirtyTemporal})
	return s.handleBBEviction(displaced, inflight, true)
}

// handleBBEviction decides the fate of an entry leaving the bounce-back
// cache: bounce it back into the main cache when its temporal bit is set
// and the mechanism is active, otherwise discard it (via the write buffer
// if dirty). underMiss selects whether dirty writebacks are hidden under
// the current miss (returned count) or go through the write buffer on their
// own. The returned value is the number of dirty writebacks to hide.
func (s *Simulator) handleBBEviction(e bbEntry, inflight []uint64, underMiss bool) int {
	if !e.valid() {
		return 0
	}
	if e.prefetched() {
		s.stats.PrefetchDiscarded++
	}
	if s.cfg.BounceBackEnabled && e.temporal() {
		if contains(inflight, e.tag) {
			// The entry maps onto a line of the in-flight miss: the
			// bounce-back is canceled to avoid ping-pong (§2.2).
			s.stats.BounceBackCanceled++
			return s.discard(e, underMiss)
		}
		vw := s.main.victimWay(e.tag, s.cfg.TemporalPriorityReplacement)
		if vw.valid() && contains(inflight, vw.tag) {
			// The target way holds a line just fetched by the miss in
			// flight; erasing it would waste the fetch.
			s.stats.BounceBackCanceled++
			return s.discard(e, underMiss)
		}
		if vw.valid() && vw.dirty() {
			// Bouncing back over a dirty line needs a write-buffer slot;
			// when the buffer is full the transfer is aborted (§2.2).
			if !s.memory.WritebackOutsideMiss() {
				s.stats.BounceBackAborted++
				return s.discard(e, underMiss)
			}
		}
		s.main.install(vw, e.tag)
		// The temporal bit is reset after a bounce-back; only dirtiness
		// survives the re-injection.
		vw.flags |= e.flags & flagDirty
		s.stats.BouncedBack++
		if s.cfg.RuntimeChecks {
			s.checkBouncedBack(e.tag)
		}
		return 0
	}
	return s.discard(e, underMiss)
}

// discard drops a bounce-back entry, routing its contents to the write
// buffer if dirty.
func (s *Simulator) discard(e bbEntry, underMiss bool) int {
	if !e.dirty() {
		return 0
	}
	if underMiss {
		return 1
	}
	s.memory.WritebackOutsideMiss()
	return 0
}

// issuePrefetch fetches n consecutive physical lines starting at line
// address la into the bounce-back cache, marked prefetched. Lines already
// resident anywhere are skipped (the software hint already filtered useless
// prefetches, §4.4, so prefetch-on-miss filtering is not needed — this
// residence check only avoids duplication).
func (s *Simulator) issuePrefetch(la uint64, n int, underMiss bool) {
	for i := 0; i < n; i++ {
		cand := la + uint64(i)
		if s.main.lookup(cand) != nil || s.bb.lookup(cand) != nil {
			continue
		}
		s.memory.PrefetchFetch(1, s.cfg.LineSize)
		s.stats.PrefetchesIssued++
		victim := s.bb.victimFor(cand, true, s.maxPrefetch)
		displaced := s.bb.install(victim, bbEntry{tag: cand, flags: flagPrefetched})
		s.handleBBEviction(displaced, nil, underMiss)
	}
}

func contains(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// LineWhere reports where the line containing byte address addr currently
// resides. It exists for tests and the example programs that dissect the
// mechanism's behaviour.
type LineWhere int

const (
	// Absent means the line is in neither structure.
	Absent LineWhere = iota
	// InMain means the line is in the main cache.
	InMain
	// InBounceBack means the line is in the bounce-back cache.
	InBounceBack
)

func (w LineWhere) String() string {
	switch w {
	case Absent:
		return "absent"
	case InMain:
		return "main"
	case InBounceBack:
		return "bounce-back"
	default:
		return "?"
	}
}

// LineInfo is a snapshot of one line's metadata for inspection.
type LineInfo struct {
	Where      LineWhere
	Dirty      bool
	Temporal   bool
	Prefetched bool
}

// Inspect returns the current state of the line containing addr.
func (s *Simulator) Inspect(addr uint64) LineInfo {
	la := s.main.lineAddr(addr)
	if l := s.main.lookup(la); l != nil {
		return LineInfo{Where: InMain, Dirty: l.dirty(), Temporal: l.temporal()}
	}
	if s.bb != nil {
		if e := s.bb.lookup(la); e != nil {
			return LineInfo{Where: InBounceBack, Dirty: e.dirty(), Temporal: e.temporal(), Prefetched: e.prefetched()}
		}
	}
	return LineInfo{Where: Absent}
}

// CheckInvariants verifies structural invariants (no line resident in both
// caches, no duplicate tags within a structure) and returns a description
// of the first violation, or "" if all hold. Used by property-based tests
// and the periodic runtime checker.
//
// The seen-tag sets are scratch state hoisted onto the simulator and
// cleared in place, so repeated calls (the checker scans every
// structuralCheckInterval references) do not allocate once warm.
func (s *Simulator) CheckInvariants() string {
	if s.seenMain == nil {
		s.seenMain = make(map[uint64]bool, len(s.main.lines))
	} else {
		clear(s.seenMain)
	}
	for i := range s.main.lines {
		l := &s.main.lines[i]
		if !l.valid() {
			continue
		}
		if s.seenMain[l.tag] {
			return "duplicate line in main cache"
		}
		s.seenMain[l.tag] = true
		if s.main.setIndex(l.tag)*s.main.ways > i || i >= (s.main.setIndex(l.tag)+1)*s.main.ways {
			return "main-cache line stored in wrong set"
		}
	}
	if s.bb != nil {
		if s.seenBB == nil {
			s.seenBB = make(map[uint64]bool, len(s.bb.entries))
		} else {
			clear(s.seenBB)
		}
		for i := range s.bb.entries {
			e := &s.bb.entries[i]
			if !e.valid() {
				continue
			}
			if s.seenBB[e.tag] {
				return "duplicate line in bounce-back cache"
			}
			s.seenBB[e.tag] = true
			if s.seenMain[e.tag] {
				return "line resident in both main and bounce-back caches"
			}
		}
	}
	return ""
}
