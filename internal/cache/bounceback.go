package cache

// bbEntry is one line of the bounce-back cache. Besides the usual state it
// carries the prefetched flag of §4.4 (the bounce-back cache doubles as the
// prefetch buffer).
type bbEntry struct {
	tag        uint64
	lru        uint64
	valid      bool
	dirty      bool
	temporal   bool
	prefetched bool
}

// bounceBackCache is the small associative cache behind the main cache.
// With bounce-back disabled it behaves exactly as Jouppi's victim cache,
// which is how the paper keeps the silicon useful when software control is
// inactive (§2.2, "Using the Bounce-Back Cache as a Victim Cache").
//
// assoc is the set associativity; assoc == number of entries gives the
// fully-associative organisation used in the paper (a 4-way variant
// "performs reasonably well" and is covered by an ablation bench).
type bounceBackCache struct {
	entries []bbEntry
	sets    int
	assoc   int
	tick    uint64
}

func newBounceBackCache(entries, assoc int) *bounceBackCache {
	if assoc <= 0 || assoc > entries {
		assoc = entries // fully associative
	}
	return &bounceBackCache{
		entries: make([]bbEntry, entries),
		sets:    entries / assoc,
		assoc:   assoc,
	}
}

func (b *bounceBackCache) setRange(la uint64) (lo, hi int) {
	set := int(la % uint64(b.sets))
	return set * b.assoc, (set + 1) * b.assoc
}

// lookup returns the entry holding line address la, or nil.
func (b *bounceBackCache) lookup(la uint64) *bbEntry {
	lo, hi := b.setRange(la)
	for i := lo; i < hi; i++ {
		e := &b.entries[i]
		if e.valid && e.tag == la {
			return e
		}
	}
	return nil
}

func (b *bounceBackCache) touch(e *bbEntry) {
	b.tick++
	e.lru = b.tick
}

// victimFor selects the entry to replace when inserting line address la.
// Invalid entries first, then LRU. When insertingPrefetched is true and the
// number of resident prefetched entries has reached maxPrefetched, the LRU
// *prefetched* entry is chosen instead, so prefetches cannot flood the
// bounce-back state (§4.4: "enforce that a prefetched line preferably
// replaces other prefetched lines").
func (b *bounceBackCache) victimFor(la uint64, insertingPrefetched bool, maxPrefetched int) *bbEntry {
	lo, hi := b.setRange(la)
	var lruAny, lruPrefetched, firstInvalid *bbEntry
	prefetchedCount := 0
	for i := lo; i < hi; i++ {
		e := &b.entries[i]
		if !e.valid {
			if firstInvalid == nil {
				firstInvalid = e
			}
			continue
		}
		if e.prefetched {
			prefetchedCount++
			if lruPrefetched == nil || e.lru < lruPrefetched.lru {
				lruPrefetched = e
			}
		}
		if lruAny == nil || e.lru < lruAny.lru {
			lruAny = e
		}
	}
	// Quota rule first (§4.4): at the cap, a prefetched line replaces a
	// prefetched line, even when free slots remain.
	if insertingPrefetched && maxPrefetched > 0 && prefetchedCount >= maxPrefetched && lruPrefetched != nil {
		return lruPrefetched
	}
	if firstInvalid != nil {
		return firstInvalid
	}
	return lruAny
}

// install places a new entry into slot e, returning the previous contents
// so the caller can decide whether to bounce it back, write it back, or
// discard it.
func (b *bounceBackCache) install(e *bbEntry, ne bbEntry) bbEntry {
	old := *e
	b.tick++
	ne.lru = b.tick
	ne.valid = true
	*e = ne
	return old
}

// invalidate clears entry e.
func (b *bounceBackCache) invalidate(e *bbEntry) { *e = bbEntry{} }

// countValid returns the number of valid entries.
func (b *bounceBackCache) countValid() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].valid {
			n++
		}
	}
	return n
}

// countPrefetched returns the number of valid prefetched entries.
func (b *bounceBackCache) countPrefetched() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].valid && b.entries[i].prefetched {
			n++
		}
	}
	return n
}
