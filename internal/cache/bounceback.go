package cache

// bbEntry is one line of the bounce-back cache. Besides the usual state it
// carries the prefetched flag of §4.4 (the bounce-back cache doubles as the
// prefetch buffer). Like line, the booleans are packed into one flags byte.
type bbEntry struct {
	tag   uint64
	lru   uint64
	flags uint8 // flagValid | flagDirty | flagTemporal | flagPrefetched
}

func (e bbEntry) valid() bool      { return e.flags&flagValid != 0 }
func (e bbEntry) dirty() bool      { return e.flags&flagDirty != 0 }
func (e bbEntry) temporal() bool   { return e.flags&flagTemporal != 0 }
func (e bbEntry) prefetched() bool { return e.flags&flagPrefetched != 0 }

// bounceBackCache is the small associative cache behind the main cache.
// With bounce-back disabled it behaves exactly as Jouppi's victim cache,
// which is how the paper keeps the silicon useful when software control is
// inactive (§2.2, "Using the Bounce-Back Cache as a Victim Cache").
//
// assoc is the set associativity; assoc == number of entries gives the
// fully-associative organisation used in the paper (a 4-way variant
// "performs reasonably well" and is covered by an ablation bench).
type bounceBackCache struct {
	entries  []bbEntry
	sets     int
	assoc    int
	setMask  uint64 // sets-1 when sets is a power of two
	maskable bool
	tick     uint64
}

func newBounceBackCache(entries, assoc int) *bounceBackCache {
	if assoc <= 0 || assoc > entries {
		assoc = entries // fully associative
	}
	sets := entries / assoc
	return &bounceBackCache{
		entries:  make([]bbEntry, entries),
		sets:     sets,
		assoc:    assoc,
		setMask:  uint64(sets - 1),
		maskable: isPow2(sets),
	}
}

func (b *bounceBackCache) setRange(la uint64) (lo, hi int) {
	var set int
	if b.maskable {
		set = int(la & b.setMask)
	} else {
		set = int(la % uint64(b.sets))
	}
	return set * b.assoc, (set + 1) * b.assoc
}

// lookup returns the entry holding line address la, or nil.
func (b *bounceBackCache) lookup(la uint64) *bbEntry {
	lo, hi := b.setRange(la)
	set := b.entries[lo:hi]
	for i := range set {
		e := &set[i]
		if e.flags&flagValid != 0 && e.tag == la {
			return e
		}
	}
	return nil
}

func (b *bounceBackCache) touch(e *bbEntry) {
	b.tick++
	e.lru = b.tick
}

// victimFor selects the entry to replace when inserting line address la.
// Invalid entries first, then LRU. When insertingPrefetched is true and the
// number of resident prefetched entries has reached maxPrefetched, the LRU
// *prefetched* entry is chosen instead, so prefetches cannot flood the
// bounce-back state (§4.4: "enforce that a prefetched line preferably
// replaces other prefetched lines").
func (b *bounceBackCache) victimFor(la uint64, insertingPrefetched bool, maxPrefetched int) *bbEntry {
	lo, hi := b.setRange(la)
	set := b.entries[lo:hi]
	var lruAny, lruPrefetched, firstInvalid *bbEntry
	prefetchedCount := 0
	for i := range set {
		e := &set[i]
		if e.flags&flagValid == 0 {
			if firstInvalid == nil {
				firstInvalid = e
			}
			continue
		}
		if e.flags&flagPrefetched != 0 {
			prefetchedCount++
			if lruPrefetched == nil || e.lru < lruPrefetched.lru {
				lruPrefetched = e
			}
		}
		if lruAny == nil || e.lru < lruAny.lru {
			lruAny = e
		}
	}
	// Quota rule first (§4.4): at the cap, a prefetched line replaces a
	// prefetched line, even when free slots remain.
	if insertingPrefetched && maxPrefetched > 0 && prefetchedCount >= maxPrefetched && lruPrefetched != nil {
		return lruPrefetched
	}
	if firstInvalid != nil {
		return firstInvalid
	}
	return lruAny
}

// victimForEvict is victimFor specialized for demand evictions (no
// prefetch quota): it skips the prefetched-entry bookkeeping, which is
// pure overhead on the miss path that routes every displaced main-cache
// line through here.
func (b *bounceBackCache) victimForEvict(la uint64) *bbEntry {
	lo, hi := b.setRange(la)
	set := b.entries[lo:hi]
	var lruAny *bbEntry
	for i := range set {
		e := &set[i]
		if e.flags&flagValid == 0 {
			return e
		}
		if lruAny == nil || e.lru < lruAny.lru {
			lruAny = e
		}
	}
	return lruAny
}

// install places a new entry into slot e, returning the previous contents
// so the caller can decide whether to bounce it back, write it back, or
// discard it.
func (b *bounceBackCache) install(e *bbEntry, ne bbEntry) bbEntry {
	old := *e
	b.tick++
	ne.lru = b.tick
	ne.flags |= flagValid
	*e = ne
	return old
}

// invalidate clears entry e.
func (b *bounceBackCache) invalidate(e *bbEntry) { *e = bbEntry{} }

// countValid returns the number of valid entries.
func (b *bounceBackCache) countValid() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].valid() {
			n++
		}
	}
	return n
}

// countPrefetched returns the number of valid prefetched entries.
func (b *bounceBackCache) countPrefetched() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].valid() && b.entries[i].prefetched() {
			n++
		}
	}
	return n
}
