package cache

import "testing"

func TestWriteThroughNeverDirties(t *testing.T) {
	cfg := testConfig()
	cfg.Writes = WriteThroughAllocate
	s := mustSim(t, cfg)
	s.Access(recW(0)) // store miss: allocates, posts the word
	if s.Inspect(0).Where != InMain {
		t.Fatal("write-through-allocate must allocate on a store miss")
	}
	if s.Inspect(0).Dirty {
		t.Fatal("write-through lines must never be dirty")
	}
	s.Access(recW(8)) // store hit: posts again
	st := s.Stats()
	if st.Mem.BytesWritten != 16 {
		t.Fatalf("bytes written = %d, want 16", st.Mem.BytesWritten)
	}
	// Evicting the line must not produce a writeback (it is clean).
	wbBefore := st.Mem.Writebacks
	s.Access(rec(1024))
	if got := s.Stats().Mem.Writebacks; got != wbBefore {
		t.Fatalf("clean eviction caused a writeback: %d -> %d", wbBefore, got)
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	cfg := testConfig()
	cfg.Writes = WriteThroughNoAllocate
	s := mustSim(t, cfg)
	cost := s.Access(recW(0))
	if cost != 1 {
		t.Fatalf("no-allocate store miss cost = %d, want 1 (write buffer absorbs it)", cost)
	}
	if s.Inspect(0).Where != Absent {
		t.Fatal("no-allocate store miss must not allocate")
	}
	st := s.Stats()
	if st.Mem.BytesFetched != 0 {
		t.Fatal("no fetch traffic expected")
	}
	if st.Mem.BytesWritten != 8 {
		t.Fatalf("bytes written = %d, want 8", st.Mem.BytesWritten)
	}
	// Loads still allocate.
	s.Access(rec(0))
	if s.Inspect(0).Where != InMain {
		t.Fatal("load miss must still allocate")
	}
}

func TestWriteThroughBufferFullStalls(t *testing.T) {
	cfg := testConfig()
	cfg.Writes = WriteThroughNoAllocate
	cfg.Memory.WriteBufferEntries = 1
	cfg.Memory.VictimTransferCycles = 8 // slow drain
	s := mustSim(t, cfg)
	// Back-to-back stores with 1-cycle gaps: the 8-cycle drain cannot
	// keep up, so some stores stall.
	totalCost := 0
	for i := 0; i < 8; i++ {
		totalCost += s.Access(recW(uint64(8 * i)))
	}
	if s.Stats().Mem.WriteThroughStalls == 0 {
		t.Fatal("expected write-through stalls with a tiny buffer")
	}
	if totalCost <= 8 {
		t.Fatalf("total cost %d should exceed 8 pure hits", totalCost)
	}
}

func TestWriteBackDefaultUnchanged(t *testing.T) {
	// The zero value of WritePolicy must be the paper's write-back
	// design, keeping every existing configuration's behaviour.
	var p WritePolicy
	if p != WriteBackAllocate {
		t.Fatal("zero WritePolicy must be write-back-allocate")
	}
	if WriteBackAllocate.String() != "write-back" ||
		WriteThroughAllocate.String() != "write-through" ||
		WriteThroughNoAllocate.String() != "write-through-no-allocate" {
		t.Fatal("WritePolicy.String broken")
	}
}

func TestWritePolicyInvariants(t *testing.T) {
	for _, pol := range []WritePolicy{WriteThroughAllocate, WriteThroughNoAllocate} {
		cfg := softTestConfig()
		cfg.Writes = pol
		s := mustSim(t, cfg)
		for i, r := range randomTrace(31, 3000, 4096) {
			s.Access(r)
			if msg := s.CheckInvariants(); msg != "" {
				t.Fatalf("%v: after access %d: %s", pol, i, msg)
			}
		}
	}
}
