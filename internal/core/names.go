package core

import (
	"fmt"
	"sort"
)

// namedConfigs maps the configuration names shared by the command-line
// tools (softcache-sim, softcache-sweep) and the softcache-served HTTP API
// to their constructors. Keeping the registry here — next to the
// constructors it names — guarantees every front door accepts exactly the
// same vocabulary.
var namedConfigs = map[string]func() Config{
	"standard":          Standard,
	"victim":            Victim,
	"soft":              Soft,
	"soft-temporal":     SoftTemporal,
	"soft-spatial":      SoftSpatial,
	"soft-variable":     SoftVariable,
	"bypass":            BypassPlain,
	"bypass-buffer":     BypassBuffered,
	"simplified-2way":   func() Config { return SimplifiedSoftAssoc(2) },
	"soft-prefetch":     func() Config { return WithPrefetch(Soft(), true) },
	"standard-prefetch": func() Config { return WithPrefetch(Standard(), false) },
	"stream-buffers":    StandardStreamBuffers,
	"column-assoc":      ColumnAssociative,
	"subblock":          Subblocked,
}

// ConfigByName returns the named design point. The names are the ones
// softcache-sim documents: standard, victim, soft, soft-temporal,
// soft-spatial, soft-variable, bypass, bypass-buffer, simplified-2way,
// soft-prefetch, standard-prefetch, stream-buffers, column-assoc, subblock.
func ConfigByName(name string) (Config, error) {
	ctor, ok := namedConfigs[name]
	if !ok {
		return Config{}, fmt.Errorf("core: unknown config %q (see ConfigNames)", name)
	}
	return ctor(), nil
}

// ConfigNames returns every name ConfigByName accepts, sorted.
func ConfigNames() []string {
	out := make([]string, 0, len(namedConfigs))
	for n := range namedConfigs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
