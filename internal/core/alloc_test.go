package core

import (
	"bytes"
	"context"
	"testing"

	"softcache/internal/cache"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// TestAccessSteadyStateZeroAllocs is the tentpole's headline property: once
// the simulator is warm (scratch buffers grown, caches populated), the
// simulate loop allocates nothing, for every design point in the paper's
// matrix.
func TestAccessSteadyStateZeroAllocs(t *testing.T) {
	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	configs := map[string]Config{
		"Standard":           Standard(),
		"Soft":               Soft(),
		"SoftVariable":       SoftVariable(),
		"SoftTemporal":       SoftTemporal(),
		"SoftSpatial":        SoftSpatial(),
		"Victim":             Victim(),
		"BypassPlain":        BypassPlain(),
		"BypassBuffered":     BypassBuffered(),
		"SetAssoc2":          SetAssoc(Soft(), 2),
		"SimplifiedSoft2":    SimplifiedSoftAssoc(2),
		"StreamBuffers":      StandardStreamBuffers(),
		"ColumnAssociative":  ColumnAssociative(),
		"Subblocked":         Subblocked(),
		"PrefetchSW":         WithPrefetch(Soft(), true),
		"WriteThroughAlloc":  WithWritePolicy(Standard(), cache.WriteThroughAllocate),
		"WriteThroughNoAllo": WithWritePolicy(Standard(), cache.WriteThroughNoAllocate),
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			sim, err := cache.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm up: populate the caches and grow every scratch buffer.
			for _, r := range tr.Records {
				sim.Access(r)
			}
			recs := tr.Records
			if len(recs) > 4096 {
				recs = recs[:4096]
			}
			allocs := testing.AllocsPerRun(10, func() {
				for _, r := range recs {
					sim.Access(r)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state Access allocated %.1f times per %d records, want 0",
					allocs, len(recs))
			}
		})
	}
}

// TestSimulateStreamAllocsFlat pins the complementary property for the
// streaming entry point: SimulateStream's allocation count is a constant
// (simulator construction plus one pooled batch at worst) and does not
// scale with trace length.
func TestSimulateStreamAllocsFlat(t *testing.T) {
	small, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := workloads.Trace("MV", workloads.ScalePaper, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Records) < 4*len(small.Records) {
		t.Fatalf("paper-scale trace (%d records) is not meaningfully larger than test scale (%d)",
			len(big.Records), len(small.Records))
	}
	encode := func(tr *trace.Trace) []byte {
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	smallData, bigData := encode(small), encode(big)
	cfg := Soft()
	measure := func(data []byte) float64 {
		return testing.AllocsPerRun(10, func() {
			r, err := trace.NewReaderBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := SimulateStream(cfg, r); err != nil {
				t.Fatal(err)
			}
		})
	}
	allocsSmall := measure(smallData)
	allocsBig := measure(bigData)
	extraRecords := float64(len(big.Records) - len(small.Records))
	perRecord := (allocsBig - allocsSmall) / extraRecords
	// Allow a little jitter from sync.Pool refills after GC; per-record
	// allocation would show up as ~1.0 here.
	if perRecord > 0.001 {
		t.Errorf("SimulateStream allocations scale with trace length: %.1f allocs at %d records vs %.1f at %d (%.4f/record)",
			allocsBig, len(big.Records), allocsSmall, len(small.Records), perRecord)
	}
}

// TestSimulateManyAllocsFlat extends the flat-allocation guarantee to the
// fused path: one SimulateMany pass allocates a constant amount (the
// simulators, the result slice and one pooled batch) regardless of trace
// length — the per-batch fan-out over N simulators allocates nothing.
func TestSimulateManyAllocsFlat(t *testing.T) {
	small, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := workloads.Trace("MV", workloads.ScalePaper, 1)
	if err != nil {
		t.Fatal(err)
	}
	encode := func(tr *trace.Trace) []byte {
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	smallData, bigData := encode(small), encode(big)
	cfgs := []Config{Standard(), Soft(), SoftVariable(), Victim()}
	ctx := context.Background()
	measure := func(data []byte) float64 {
		return testing.AllocsPerRun(10, func() {
			r, err := trace.NewReaderBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := SimulateMany(ctx, cfgs, r); err != nil {
				t.Fatal(err)
			}
		})
	}
	allocsSmall := measure(smallData)
	allocsBig := measure(bigData)
	extraRecords := float64(len(big.Records) - len(small.Records))
	perRecord := (allocsBig - allocsSmall) / extraRecords
	if perRecord > 0.001 {
		t.Errorf("SimulateMany allocations scale with trace length: %.1f allocs at %d records vs %.1f at %d (%.4f/record)",
			allocsBig, len(big.Records), allocsSmall, len(small.Records), perRecord)
	}
}
