package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Axis is one swept configuration parameter with its value list, the unit
// of design-space exploration shared by softcache-sweep and the
// softcache-served /v1/sweep endpoint. The recognised keys are: cache
// (KiB), line (bytes), vline (bytes; 0 disables), latency (cycles), assoc
// (ways), bb (bounce-back lines), sbuf (stream buffers).
type Axis struct {
	Key    string
	Values []int
}

// ParseAxis parses "key=v1,v2,v3" and validates the key and every value:
// structural parameters (cache, line, assoc) must be positive, optional
// features (vline, latency, bb, sbuf) non-negative, and duplicate values
// are rejected (they would collide as sweep cells).
func ParseAxis(s string) (Axis, error) {
	key, list, ok := strings.Cut(s, "=")
	if !ok || key == "" || list == "" {
		return Axis{}, fmt.Errorf("core: axis %q must be key=v1,v2,...", s)
	}
	var a Axis
	a.Key = key
	seen := make(map[int]bool)
	for _, v := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return Axis{}, fmt.Errorf("core: axis %q: %v", s, err)
		}
		if err := checkAxisValue(key, n); err != nil {
			return Axis{}, err
		}
		if seen[n] {
			return Axis{}, fmt.Errorf("core: axis %q: duplicate value %d", s, n)
		}
		seen[n] = true
		a.Values = append(a.Values, n)
	}
	return a, nil
}

// checkAxisValue rejects values the simulator would misconfigure on.
func checkAxisValue(key string, v int) error {
	switch key {
	case "cache", "line", "assoc":
		if v <= 0 {
			return fmt.Errorf("core: axis %s: value %d must be positive", key, v)
		}
	case "latency", "vline", "bb", "sbuf":
		if v < 0 {
			return fmt.Errorf("core: axis %s: value %d must be non-negative", key, v)
		}
	default:
		return fmt.Errorf("core: unknown axis %q (want cache, line, vline, latency, assoc, bb or sbuf)", key)
	}
	return nil
}

// ApplyAxis returns cfg with the swept parameter set to v. Setting bb on a
// configuration without a bounce-back structure fills in the paper's
// access/lock timings so the resulting design is valid.
func ApplyAxis(cfg Config, key string, v int) (Config, error) {
	switch key {
	case "cache":
		cfg.CacheSize = v << 10
	case "line":
		cfg.LineSize = v
	case "vline":
		cfg.VirtualLineSize = v
	case "latency":
		cfg.Memory.LatencyCycles = v
	case "assoc":
		cfg.Assoc = v
	case "bb":
		cfg.BounceBackLines = v
		if v > 0 && cfg.BounceBackCycles == 0 {
			cfg.BounceBackCycles = 3
			cfg.SwapLockCycles = 2
		}
	case "sbuf":
		cfg.StreamBuffers = v
	default:
		return cfg, fmt.Errorf("core: unknown axis %q (want cache, line, vline, latency, assoc, bb or sbuf)", key)
	}
	return cfg, nil
}

// MetricOf extracts the named scalar metric from a result: amat, miss or
// traffic (words fetched per reference).
func MetricOf(name string, r Result) (float64, error) {
	switch name {
	case "amat":
		return r.AMAT(), nil
	case "miss":
		return r.MissRatio(), nil
	case "traffic":
		return r.Stats.WordsPerReference(), nil
	default:
		return 0, fmt.Errorf("core: unknown metric %q (want amat, miss or traffic)", name)
	}
}
