package core_test

import (
	"fmt"

	"softcache/internal/core"
	"softcache/internal/trace"
)

// ExampleSimulate runs a four-reference hand trace through the paper's
// baseline cache: one cold miss (1 + 20-cycle latency + 2 bus cycles)
// followed by three hits.
func ExampleSimulate() {
	tr := &trace.Trace{Name: "tiny", Records: []trace.Record{
		{Addr: 0x1000, Size: 8},
		{Addr: 0x1008, Size: 8, Gap: 1},
		{Addr: 0x1010, Size: 8, Gap: 1},
		{Addr: 0x1018, Size: 8, Gap: 1, Write: true},
	}}
	res, err := core.Simulate(core.Standard(), tr)
	if err != nil {
		panic(err)
	}
	fmt.Printf("AMAT %.1f cycles, misses %d/%d\n",
		res.AMAT(), res.Stats.Misses, res.Stats.References)
	// Output: AMAT 6.5 cycles, misses 1/4
}

// ExampleSimulate_virtualLine shows the spatial hint at work: the same
// stream with the spatial bit set fetches the whole 64-byte virtual line
// on the miss, so the line-crossing reference at 0x1020 also hits.
func ExampleSimulate_virtualLine() {
	records := []trace.Record{
		{Addr: 0x1000, Size: 8, Spatial: true},
		{Addr: 0x1020, Size: 8, Gap: 1, Spatial: true}, // next physical line
	}
	std, _ := core.Simulate(core.Standard(), &trace.Trace{Records: records})
	soft, _ := core.Simulate(core.Soft(), &trace.Trace{Records: records})
	fmt.Printf("standard misses %d, soft misses %d\n", std.Stats.Misses, soft.Stats.Misses)
	// Output: standard misses 2, soft misses 1
}

// ExampleDescribe shows the short identifiers used in reports.
func ExampleDescribe() {
	fmt.Println(core.Describe(core.Standard()))
	fmt.Println(core.Describe(core.Soft()))
	// Output:
	// 8K/32B/1-way
	// 8K/32B/1-way+vl64+bb8
}
