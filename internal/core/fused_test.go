package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"softcache/internal/cache"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// fusedVariants mirrors the refmodel differential matrix: every mechanism
// the simulator models, so the fused kernel is checked against the looped
// one on each design point, not just the figure configurations.
func fusedVariants() []Config {
	random2 := SetAssoc(Standard(), 2)
	random2.Replacement = cache.ReplaceRandom
	fifo2 := SetAssoc(Standard(), 2)
	fifo2.Replacement = cache.ReplaceFIFO
	tinySoft := WithGeometry(Soft(), 2048, 16, 64)
	return []Config{
		Standard(),
		Soft(),
		SoftVariable(),
		SoftTemporal(),
		SoftSpatial(),
		Victim(),
		BypassPlain(),
		BypassBuffered(),
		SetAssoc(Soft(), 2),
		SetAssoc(Soft(), 4),
		SimplifiedSoftAssoc(2),
		SimplifiedSoftAssoc(4),
		StandardStreamBuffers(),
		ColumnAssociative(),
		Subblocked(),
		WithPrefetch(Soft(), true),
		WithPrefetch(Soft(), false),
		WithWritePolicy(Standard(), cache.WriteThroughAllocate),
		WithWritePolicy(Standard(), cache.WriteThroughNoAllocate),
		random2,
		fifo2,
		tinySoft,
	}
}

func encodeTrace(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireIdenticalResults compares the fused results against one
// SimulateStream pass per configuration over the same serialised bytes.
// reflect.DeepEqual over Result covers every Stats field, so "the same
// AMAT" is not enough — the two paths must agree cycle for cycle and
// counter for counter.
func requireIdenticalResults(t *testing.T, cfgs []Config, data []byte) {
	t.Helper()
	r, err := trace.NewReaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := SimulateMany(context.Background(), cfgs, r)
	if err != nil {
		t.Fatalf("SimulateMany: %v", err)
	}
	if len(fused) != len(cfgs) {
		t.Fatalf("SimulateMany returned %d results for %d configs", len(fused), len(cfgs))
	}
	for i, cfg := range cfgs {
		r, err := trace.NewReaderBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		looped, err := SimulateStream(cfg, r)
		if err != nil {
			t.Fatalf("SimulateStream(%s): %v", Describe(cfg), err)
		}
		if !reflect.DeepEqual(fused[i], looped) {
			t.Errorf("config %d (%s): fused result diverges from looped SimulateStream:\nfused:  %+v\nlooped: %+v",
				i, Describe(cfg), fused[i], looped)
		}
	}
}

// TestSimulateManyMatchesStream is the fused kernel's core contract: over
// every workload, the result of one SimulateMany pass across the full
// variant matrix is byte-identical to running SimulateStream once per
// configuration. -short trims the sweep to one workload.
func TestSimulateManyMatchesStream(t *testing.T) {
	cfgs := fusedVariants()
	for _, w := range workloads.Benchmarks() {
		if testing.Short() && w != "MV" {
			continue
		}
		t.Run(w, func(t *testing.T) {
			tr, err := workloads.Trace(w, workloads.ScaleTest, 1)
			if err != nil {
				t.Fatal(err)
			}
			requireIdenticalResults(t, cfgs, encodeTrace(t, tr))
		})
	}
}

// fusedRandomTrace synthesizes an adversarial trace in the same spirit as
// the refmodel differential suite: a conflict-heavy working set with far
// jumps, stores, tag hints and software prefetches, seeded for replay.
func fusedRandomTrace(seed int64, n int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		addr := uint64(rng.Intn(1 << 14))
		switch rng.Intn(8) {
		case 0:
			addr += 1 << 20
		case 1:
			addr = uint64(rng.Intn(1 << 9))
		}
		addr &^= 3
		r := trace.Record{
			Addr:     addr,
			RefID:    uint32(rng.Intn(64)),
			Gap:      uint8(rng.Intn(4)),
			Size:     uint8(4 << rng.Intn(2)),
			Write:    rng.Intn(10) < 3,
			Temporal: rng.Intn(4) == 0,
			Spatial:  rng.Intn(4) == 0,
		}
		if r.Spatial {
			r.VirtualHint = uint8(rng.Intn(4))
		}
		if rng.Intn(20) == 0 {
			r = trace.Record{Addr: addr, SoftwarePrefetch: true, Gap: uint8(rng.Intn(4))}
		}
		recs = append(recs, r)
	}
	return &trace.Trace{Name: "fused-random", Records: recs}
}

// TestSimulateManyRandomTraces hammers the fused kernel with seeded
// adversarial traces across the full variant matrix — the structured
// workloads' complement, heavy on evictions, swaps and prefetches.
func TestSimulateManyRandomTraces(t *testing.T) {
	n := 20_000
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		n = 4_000
		seeds = seeds[:1]
	}
	cfgs := fusedVariants()
	for _, seed := range seeds {
		requireIdenticalResults(t, cfgs, encodeTrace(t, fusedRandomTrace(seed, n)))
	}
}

// TestSimulateManyTraceMatchesStream pins the in-memory fused entry point
// to the same contract as the streaming one.
func TestSimulateManyTraceMatchesStream(t *testing.T) {
	tr, err := workloads.Trace("SpMV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := fusedVariants()
	fused, err := SimulateManyTrace(context.Background(), cfgs, tr)
	if err != nil {
		t.Fatal(err)
	}
	data := encodeTrace(t, tr)
	for i, cfg := range cfgs {
		r, err := trace.NewReaderBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		looped, err := SimulateStream(cfg, r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fused[i], looped) {
			t.Errorf("config %d (%s): SimulateManyTrace diverges from SimulateStream:\nfused:  %+v\nlooped: %+v",
				i, Describe(cfg), fused[i], looped)
		}
	}
}

// TestSimulateManyCancellation verifies that cancellation discards partial
// results consistently: the caller gets a nil slice and an error wrapping
// context.Canceled, from both fused entry points.
func TestSimulateManyCancellation(t *testing.T) {
	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{Standard(), Soft()}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	r, err := trace.NewReaderBytes(encodeTrace(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateMany(ctx, cfgs, r)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("SimulateMany on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("SimulateMany on cancelled ctx returned partial results: %+v", res)
	}

	res, err = SimulateManyTrace(ctx, cfgs, tr)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("SimulateManyTrace on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("SimulateManyTrace on cancelled ctx returned partial results: %+v", res)
	}
}

// TestSimulateManyEdgeCases covers the degenerate shapes: an empty config
// slice completes immediately (still draining the reader is not required),
// and an invalid config surfaces its validation error with the index.
func TestSimulateManyEdgeCases(t *testing.T) {
	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := encodeTrace(t, tr)

	r, err := trace.NewReaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateMany(context.Background(), nil, r)
	if err != nil {
		t.Fatalf("SimulateMany with no configs: %v", err)
	}
	if len(res) != 0 {
		t.Fatalf("SimulateMany with no configs returned %d results", len(res))
	}

	bad := Standard()
	bad.CacheSize = 3 << 10 // not a power of two
	r, err = trace.NewReaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateMany(context.Background(), []Config{Standard(), bad}, r); err == nil {
		t.Fatal("SimulateMany accepted an invalid config")
	}
}
