package core

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"softcache/internal/cache"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// shardCounts is the property-test matrix of the issue: sequential, two,
// four and NumCPU shards must agree.
func shardCounts() []int {
	return []int{1, 2, 4, runtime.NumCPU()}
}

// exactShardConfigs are configurations whose sharding plan is exact:
// the sharded run must reproduce the sequential counters bit for bit.
func exactShardConfigs() map[string]Config {
	spatialOnly := Standard()
	spatialOnly.VirtualLineSize = 64
	spatialOnly.UseSpatialTags = true
	return map[string]Config{
		"Standard":        Standard(),
		"Subblocked":      Subblocked(),
		"BypassPlain":     BypassPlain(),
		"SetAssoc4":       SetAssoc(Standard(), 4),
		"SimplifiedSoft2": SimplifiedSoftAssoc(2),
		"FIFO2":           withReplacement(SetAssoc(Standard(), 2), cache.ReplaceFIFO),
		"SpatialNoVictim": spatialOnly,
	}
}

// coupledShardConfigs share a structure across sets (bounce-back, stream
// buffers, bypass buffer, write buffer): sharding them is deterministic
// but not exact.
func coupledShardConfigs() map[string]Config {
	return map[string]Config{
		"Soft":              Soft(),
		"Victim":            Victim(),
		"StreamBuffers":     StandardStreamBuffers(),
		"BypassBuffered":    BypassBuffered(),
		"WriteThroughAlloc": WithWritePolicy(Standard(), cache.WriteThroughAllocate),
		"PrefetchSW":        WithPrefetch(Soft(), true),
	}
}

func withReplacement(cfg Config, p cache.ReplacementPolicy) Config {
	cfg.Replacement = p
	return cfg
}

func shardTestTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSimulateShardedExactMatchesSequential is the core equivalence
// property: for every exact-plan configuration and every shard count,
// SimulateSharded returns exactly what the sequential kernel returns.
func TestSimulateShardedExactMatchesSequential(t *testing.T) {
	tr := shardTestTrace(t)
	ctx := context.Background()
	for name, cfg := range exactShardConfigs() {
		t.Run(name, func(t *testing.T) {
			want, err := Simulate(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range shardCounts() {
				got, err := SimulateSharded(ctx, cfg, tr, shards)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("shards=%d diverges from sequential:\n got %+v\nwant %+v", shards, got.Stats, want.Stats)
				}
			}
		})
	}
}

// TestSimulateShardedStreamMatchesTrace pins that the streaming producer
// (decode overlapped with simulation) and the materialised-trace entry
// point return identical results at every shard count.
func TestSimulateShardedStreamMatchesTrace(t *testing.T) {
	tr := shardTestTrace(t)
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	ctx := context.Background()
	for _, cfg := range []Config{Standard(), Soft()} {
		for _, shards := range shardCounts() {
			want, err := SimulateSharded(ctx, cfg, tr, shards)
			if err != nil {
				t.Fatal(err)
			}
			r, err := trace.NewReaderBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SimulateShardedStream(ctx, cfg, r, shards)
			if err != nil {
				t.Fatalf("shards=%d: %v", shards, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s shards=%d: stream and trace kernels disagree", Describe(cfg), shards)
			}
		}
	}
}

// TestSimulateShardedSingleShardIdentical pins the fallback contract:
// shards <= 1 is the sequential kernel for EVERY configuration, coupled
// ones included.
func TestSimulateShardedSingleShardIdentical(t *testing.T) {
	tr := shardTestTrace(t)
	ctx := context.Background()
	for name, cfg := range coupledShardConfigs() {
		want, err := Simulate(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SimulateSharded(ctx, cfg, tr, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: single-shard run differs from sequential", name)
		}
	}
}

// TestSimulateShardedCoupledDeterministic: coupled plans diverge from the
// sequential run, but they must not diverge from themselves — repeated
// runs (different goroutine interleavings) return identical stats, and
// the reference/read/write accounting is preserved exactly.
func TestSimulateShardedCoupledDeterministic(t *testing.T) {
	tr := shardTestTrace(t)
	ctx := context.Background()
	for name, cfg := range coupledShardConfigs() {
		t.Run(name, func(t *testing.T) {
			seq, err := Simulate(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			first, err := SimulateSharded(ctx, cfg, tr, 4)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				again, err := SimulateSharded(ctx, cfg, tr, 4)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(again, first) {
					t.Fatalf("run %d differs: sharded coupled run is nondeterministic", i)
				}
			}
			s, q := first.Stats, seq.Stats
			if s.References != q.References || s.Reads != q.Reads ||
				s.Writes != q.Writes || s.SoftwarePrefetches != q.SoftwarePrefetches {
				t.Errorf("record accounting not preserved: sharded %d/%d/%d/%d, sequential %d/%d/%d/%d",
					s.References, s.Reads, s.Writes, s.SoftwarePrefetches,
					q.References, q.Reads, q.Writes, q.SoftwarePrefetches)
			}
		})
	}
}

func TestSimulateShardedCancellation(t *testing.T) {
	tr := shardTestTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimulateSharded(ctx, Standard(), tr, 4); err == nil {
		t.Fatal("canceled sharded run returned no error")
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReaderBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateShardedStream(ctx, Standard(), r, 4); err == nil {
		t.Fatal("canceled sharded stream returned no error")
	}
}

func TestSimulateShardedRejectsInvalidConfig(t *testing.T) {
	tr := shardTestTrace(t)
	cfg := Standard()
	cfg.CacheSize = 1000
	if _, err := SimulateSharded(context.Background(), cfg, tr, 4); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestSimulateShardedPanicPropagation pins the containment contract: a
// panic on a shard worker (here a nil simulator; in production an
// invariant-checker *cache.InvariantError) resurfaces on the calling
// goroutine — where the experiment harness catches it — and the producer
// does not deadlock on the dead shard's queue.
func TestSimulateShardedPanicPropagation(t *testing.T) {
	tr := shardTestTrace(t)
	cfg := Standard()
	plan, err := cache.PlanShards(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Shards != 4 {
		t.Fatalf("plan.Shards = %d, want 4", plan.Shards)
	}
	sims := make([]*cache.Simulator, plan.Shards)
	for i := range sims {
		if i == 2 {
			continue // shard 2 panics on first access
		}
		sims[i], err = cache.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("worker panic did not propagate to the caller")
		}
	}()
	runShardedWith(cfg, tr.Name, plan, sims, func(route func([]trace.Record)) error {
		route(tr.Records)
		return nil
	})
	t.Error("runShardedWith returned normally despite a panicking worker")
}

// TestSimulateShardedRuntimeChecks runs the sharded kernel with the
// invariant checker on: each shard's simulator verifies its own
// accounting invariants every access, so a sharding bug that corrupted
// per-shard state would panic here.
func TestSimulateShardedRuntimeChecks(t *testing.T) {
	tr := shardTestTrace(t)
	ctx := context.Background()
	for _, cfg := range []Config{Standard(), Soft()} {
		if _, err := SimulateSharded(ctx, WithRuntimeChecks(cfg, true), tr, 4); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSimulateShardedAllocsFlat is the zero-steady-state-allocation
// satellite: the sharded path's allocation count is a constant (the
// simulators, router, channels and worker stacks) and does not scale
// with trace length — chunks recycle through the ownership-transfer
// pool.
func TestSimulateShardedAllocsFlat(t *testing.T) {
	small, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := workloads.Trace("MV", workloads.ScalePaper, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := Standard()
	measure := func(tr *trace.Trace) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := SimulateSharded(ctx, cfg, tr, 4); err != nil {
				t.Fatal(err)
			}
		})
	}
	allocsSmall := measure(small)
	allocsBig := measure(big)
	extraRecords := float64(len(big.Records) - len(small.Records))
	perRecord := (allocsBig - allocsSmall) / extraRecords
	if perRecord > 0.001 {
		t.Errorf("SimulateSharded allocations scale with trace length: %.1f allocs at %d records vs %.1f at %d (%.4f/record)",
			allocsBig, len(big.Records), allocsSmall, len(small.Records), perRecord)
	}
}

// randomShardTrace builds an adversarial trace for the fuzz target: far
// jumps, a hot region, writes, hints and software prefetches.
func randomShardTrace(seed int64, n int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Name: "fuzz"}
	addr := uint64(rng.Intn(1 << 14))
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			addr = uint64(rng.Intn(1<<14) * 8)
		case 1:
			addr += 8
		case 2:
			addr += uint64(rng.Intn(256))
		case 3:
			addr = uint64(rng.Intn(1<<10) * 8) // hot region
		}
		r := trace.Record{
			Addr:     addr,
			RefID:    uint32(rng.Intn(8)),
			Gap:      uint8(1 + rng.Intn(4)),
			Size:     8,
			Write:    rng.Intn(10) < 3,
			Temporal: rng.Intn(4) == 0,
			Spatial:  rng.Intn(4) == 0,
		}
		if r.Spatial && rng.Intn(4) == 0 {
			r.VirtualHint = uint8(1 + rng.Intn(3))
		}
		if rng.Intn(20) == 0 {
			r.SoftwarePrefetch = true
			r.Write = false
		}
		tr.Append(r)
	}
	return tr
}

// FuzzSimulateSharded cross-checks the sharded kernel against the
// sequential one on random traces, shard counts and configurations:
// exact plans must agree bit for bit; coupled plans must preserve record
// accounting and be self-consistent.
func FuzzSimulateSharded(f *testing.F) {
	f.Add(int64(1), uint16(500), uint8(4), uint8(0))
	f.Add(int64(2), uint16(2049), uint8(2), uint8(1))
	f.Add(int64(3), uint16(100), uint8(7), uint8(2))
	f.Add(int64(4), uint16(3000), uint8(64), uint8(3))
	cfgs := []Config{Standard(), Soft(), SetAssoc(Standard(), 2), StandardStreamBuffers(), Subblocked(), BypassBuffered()}
	f.Fuzz(func(t *testing.T, seed int64, n uint16, shards uint8, cfgIdx uint8) {
		cfg := cfgs[int(cfgIdx)%len(cfgs)]
		tr := randomShardTrace(seed, int(n)%5000)
		ctx := context.Background()
		want, err := Simulate(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SimulateSharded(ctx, cfg, tr, int(shards))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := cache.PlanShards(cfg, int(shards))
		if err != nil {
			t.Fatal(err)
		}
		if plan.Exact {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("exact plan diverged (shards=%d):\n got %+v\nwant %+v", plan.Shards, got.Stats, want.Stats)
			}
			return
		}
		if got.Stats.References != want.Stats.References ||
			got.Stats.Reads != want.Stats.Reads || got.Stats.Writes != want.Stats.Writes {
			t.Fatalf("record accounting lost (shards=%d)", plan.Shards)
		}
		again, err := SimulateSharded(ctx, cfg, tr, int(shards))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, got) {
			t.Fatalf("coupled sharded run is nondeterministic (shards=%d)", plan.Shards)
		}
	})
}
