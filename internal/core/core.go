// Package core is the public face of the software-assisted cache library.
// It ties together the trace format, the cache/memory model and the
// canonical configurations evaluated in the paper, so that a user can write
//
//	res := core.Simulate(core.Soft(), tr)
//	fmt.Println(res.AMAT())
//
// without touching the lower layers. The configuration constructors mirror
// the paper's named design points:
//
//	Standard()        8 KiB direct-mapped, 32 B lines — the DEC Alpha /
//	                  R4000 / Pentium-class baseline ("Stand.")
//	Soft()            Standard + 64 B virtual lines + 256 B bounce-back
//	                  cache, both hints active ("Soft.")
//	SoftTemporal()    bounce-back only ("Soft. for Temp. only")
//	SoftSpatial()     virtual lines only ("Soft. for Spat. only")
//	Victim()          Standard + 256 B victim cache (fig. 3b)
//	BypassPlain()     classic bypass (fig. 3a)
//	BypassBuffered()  bypass through a small line buffer (fig. 3a)
//	SetAssoc(n)       n-way variants of the above (fig. 9b)
//
// plus the extensions and related-work baselines: SoftVariable() (§3.2
// variable-length virtual lines), StandardStreamBuffers() and
// ColumnAssociative() (§5), Subblocked() (§2.1's contrast case), and the
// WithPrefetch/WithWritePolicy/WithLatency/WithGeometry modifiers.
package core

import (
	"context"
	"fmt"
	"io"

	"softcache/internal/cache"
	"softcache/internal/mem"
	"softcache/internal/trace"
)

// Paper-wide default parameters (§3.1, "Notations and Parameters").
const (
	DefaultCacheSize   = 8 * 1024
	DefaultLineSize    = 32
	DefaultVirtualLine = 64
	DefaultBounceBack  = 8 // lines (256 bytes of 32-byte lines)
	DefaultLatency     = 20
	DefaultBusBytes    = 16
)

// Config is re-exported so callers only import core.
type Config = cache.Config

// Result bundles the statistics of one simulation.
type Result struct {
	Trace  string
	Config string
	Stats  cache.Stats
}

// AMAT returns the average memory access time of the run.
func (r Result) AMAT() float64 { return r.Stats.AMAT() }

// MissRatio returns the run's miss ratio.
func (r Result) MissRatio() float64 { return r.Stats.MissRatio() }

func baseConfig() Config {
	return Config{
		CacheSize: DefaultCacheSize,
		LineSize:  DefaultLineSize,
		Assoc:     1,
		HitCycles: 1,
		Memory: mem.Config{
			LatencyCycles:        DefaultLatency,
			BusBytesPerCycle:     DefaultBusBytes,
			WriteBufferEntries:   8,
			VictimTransferCycles: 2,
		},
	}
}

// Standard returns the baseline cache of the paper ("Stand.").
func Standard() Config { return baseConfig() }

// Victim returns Standard plus a 256-byte victim cache (bounce-back
// structure with the bounce-back mechanism disabled).
func Victim() Config {
	c := baseConfig()
	c.BounceBackLines = DefaultBounceBack
	c.BounceBackCycles = 3
	c.SwapLockCycles = 2
	return c
}

// Soft returns the full software-assisted design ("Soft."): 64-byte virtual
// lines plus the 256-byte bounce-back cache, both hints honoured.
func Soft() Config {
	c := Victim()
	c.BounceBackEnabled = true
	c.VirtualLineSize = DefaultVirtualLine
	c.UseTemporalTags = true
	c.UseSpatialTags = true
	return c
}

// SoftVariable returns the §3.2 extension of Soft: spatial references carry
// a 2-bit length hint and the cache fetches 64-, 128- or 256-byte virtual
// lines accordingly (references without a hint use the 64-byte default).
func SoftVariable() Config {
	c := Soft()
	c.VariableVirtualLines = true
	return c
}

// SoftTemporal returns the temporal-only design (bounce-back cache active,
// no virtual lines).
func SoftTemporal() Config {
	c := Soft()
	c.VirtualLineSize = 0
	c.UseSpatialTags = false
	return c
}

// SoftSpatial returns the spatial-only design (virtual lines active, the
// on-chip buffer demoted to a plain victim cache).
func SoftSpatial() Config {
	c := Soft()
	c.BounceBackEnabled = false
	c.UseTemporalTags = false
	return c
}

// StandardStreamBuffers returns Standard plus Jouppi-style stream buffers
// (§5 related work): four buffers of depth four, the configuration of the
// original paper.
func StandardStreamBuffers() Config {
	c := baseConfig()
	c.StreamBuffers = 4
	c.StreamBufferDepth = 4
	return c
}

// ColumnAssociative returns the §5 related-work column-associative
// organisation: a direct-mapped cache whose lines may also live at a
// second, slower hashed location.
func ColumnAssociative() Config {
	c := baseConfig()
	c.ColumnAssociative = true
	return c
}

// Subblocked returns the §2.1 contrast case to virtual lines: a cache with
// 64-byte physical lines sectored into 32-byte subblocks (the PowerPC
// organisation §3.2 cites). The directory is half the size of a 32-byte-
// line cache's, but misses refill only the referenced subblock.
func Subblocked() Config {
	c := baseConfig()
	c.LineSize = 2 * DefaultLineSize
	c.SubblockSize = DefaultLineSize
	return c
}

// BypassPlain returns the classic-bypass baseline of fig. 3a: references
// without the temporal hint go straight to memory, word by word.
func BypassPlain() Config {
	c := baseConfig()
	c.Bypass = cache.BypassPlain
	c.UseTemporalTags = true
	return c
}

// BypassBuffered returns the bypass-through-a-buffer baseline of fig. 3a.
func BypassBuffered() Config {
	c := BypassPlain()
	c.Bypass = cache.BypassBuffered
	c.BypassBufferLines = 8
	return c
}

// SetAssoc converts cfg to an n-way organisation of the same capacity.
func SetAssoc(cfg Config, ways int) Config {
	cfg.Assoc = ways
	return cfg
}

// SimplifiedSoftAssoc returns the fig. 9b "simplified soft" design: an
// n-way cache with virtual lines and temporal-priority LRU replacement but
// no bounce-back cache.
func SimplifiedSoftAssoc(ways int) Config {
	c := baseConfig()
	c.Assoc = ways
	c.VirtualLineSize = DefaultVirtualLine
	c.UseSpatialTags = true
	c.UseTemporalTags = true
	c.TemporalPriorityReplacement = true
	return c
}

// WithPrefetch enables §4.4 prefetching on cfg. softwareGuided selects the
// paper's hint-driven scheme; false prefetches on every miss. The
// configuration must include a bounce-back structure (it is the prefetch
// buffer); for Standard-like configs a victim-cache-sized buffer is added
// automatically.
func WithPrefetch(cfg Config, softwareGuided bool) Config {
	if cfg.BounceBackLines == 0 {
		cfg.BounceBackLines = DefaultBounceBack
		cfg.BounceBackCycles = 3
		cfg.SwapLockCycles = 2
	}
	cfg.Prefetch = cache.PrefetchConfig{
		Enabled:        true,
		SoftwareGuided: softwareGuided,
		Degree:         1,
	}
	return cfg
}

// WithWritePolicy sets the store policy (default write-back/allocate).
func WithWritePolicy(cfg Config, p cache.WritePolicy) Config {
	cfg.Writes = p
	return cfg
}

// WithLatency sets the memory latency in cycles.
func WithLatency(cfg Config, cycles int) Config {
	cfg.Memory.LatencyCycles = cycles
	return cfg
}

// WithGeometry sets cache size, physical line size and virtual line size
// (virtual 0 keeps the mechanism off).
func WithGeometry(cfg Config, cacheSize, lineSize, virtualLine int) Config {
	cfg.CacheSize = cacheSize
	cfg.LineSize = lineSize
	cfg.VirtualLineSize = virtualLine
	return cfg
}

// NewSimulator builds a simulator for cfg.
func NewSimulator(cfg Config) (*cache.Simulator, error) { return cache.New(cfg) }

// Simulate runs the whole trace through a fresh simulator built from cfg.
func Simulate(cfg Config, t *trace.Trace) (Result, error) {
	return SimulateContext(context.Background(), cfg, t)
}

// cancelCheckInterval is how many records SimulateContext processes
// between context polls: rare enough to be free, frequent enough that a
// canceled multi-million-record run stops within milliseconds.
const cancelCheckInterval = 1 << 15

// SimulateContext runs the whole trace through a fresh simulator built
// from cfg, checking ctx periodically so a timeout or interrupt aborts a
// long simulation promptly. On cancellation the partial statistics are
// discarded and ctx's error is returned wrapped.
func SimulateContext(ctx context.Context, cfg Config, t *trace.Trace) (Result, error) {
	sim, err := cache.New(cfg)
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	for i, r := range t.Records {
		if i%cancelCheckInterval == 0 && ctx.Err() != nil {
			return Result{}, fmt.Errorf("core: simulating %s: %w", t.Name, ctx.Err())
		}
		sim.Access(r)
	}
	return Result{Trace: t.Name, Config: Describe(cfg), Stats: sim.Stats()}, nil
}

// WithRuntimeChecks returns cfg with the runtime invariant checker toggled
// (see cache.Config.RuntimeChecks): state corruption then surfaces as an
// immediate *cache.InvariantError panic, which the experiment harness
// converts into a structured failed-run record.
func WithRuntimeChecks(cfg Config, on bool) Config {
	cfg.RuntimeChecks = on
	return cfg
}

// SimulateWarm runs the trace like Simulate but resets the statistics
// after the first warmup records, so the result reflects steady-state
// behaviour (cold compulsory misses excluded). warmup is clamped to the
// trace length.
func SimulateWarm(cfg Config, t *trace.Trace, warmup int) (Result, error) {
	sim, err := cache.New(cfg)
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	if warmup > len(t.Records) {
		warmup = len(t.Records)
	}
	for _, r := range t.Records[:warmup] {
		sim.Access(r)
	}
	sim.ResetStats()
	for _, r := range t.Records[warmup:] {
		sim.Access(r)
	}
	return Result{Trace: t.Name, Config: Describe(cfg), Stats: sim.Stats()}, nil
}

// Windows runs the trace and returns the AMAT of each consecutive window
// of windowSize references — the phase profile of the workload under cfg
// (a partial final window is included when at least one reference lands in
// it). Software-prefetch records do not advance the window.
func Windows(cfg Config, t *trace.Trace, windowSize int) ([]float64, error) {
	if windowSize <= 0 {
		return nil, fmt.Errorf("core: window size must be positive, got %d", windowSize)
	}
	sim, err := cache.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var out []float64
	var prev cache.Stats
	flush := func() {
		cur := sim.Stats()
		refs := cur.References - prev.References
		if refs > 0 {
			out = append(out, float64(cur.CostCycles-prev.CostCycles)/float64(refs))
		}
		prev = cur
	}
	inWindow := 0
	for _, r := range t.Records {
		sim.Access(r)
		if r.SoftwarePrefetch {
			continue
		}
		inWindow++
		if inWindow == windowSize {
			flush()
			inWindow = 0
		}
	}
	if inWindow > 0 {
		flush()
	}
	return out, nil
}

// SimulateStream runs a serialised trace through a fresh simulator without
// materialising it in memory, so multi-gigabyte trace files stream at I/O
// speed. Any trace.BatchReader drives it — the flat reader, the
// compressed SCTZ StreamReader, a din import — with records decoded in
// pooled BatchSize chunks, so the per-record cost is the simulator's alone
// and the loop performs no steady-state allocations
// (TestSimulateStreamAllocsFlat).
func SimulateStream(cfg Config, r trace.BatchReader) (Result, error) {
	sim, err := cache.New(cfg)
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	batch := trace.GetBatch()
	defer trace.PutBatch(batch)
	for {
		n, err := r.ReadBatch(*batch)
		sim.AccessAll((*batch)[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			return Result{}, fmt.Errorf("core: %w", err)
		}
	}
	return Result{Trace: r.Name(), Config: Describe(cfg), Stats: sim.Stats()}, nil
}

// SimulateMany is the fused multi-configuration kernel: one streaming
// pass of the trace drives a fresh simulator per configuration, feeding
// each decoded BatchSize chunk to every simulator before the next chunk is
// decoded. A whole configuration matrix therefore pays the trace decode
// (and the memory streaming of the serialised bytes) once instead of once
// per configuration, while the decoded batch stays cache-resident for all
// simulators.
//
// The simulators are fully independent — each owns its cache state and
// scratch buffers — so the results are index-aligned with cfgs and
// byte-identical to running SimulateStream once per configuration
// (TestSimulateManyMatchesStream pins this). Like SimulateStream, the loop
// performs no steady-state allocations (TestSimulateManyAllocsFlat).
//
// ctx is polled between batches (every BatchSize records); on cancellation
// or any decode error the partial results are discarded and the error is
// returned wrapped, so callers never observe a half-simulated matrix.
func SimulateMany(ctx context.Context, cfgs []Config, r trace.BatchReader) ([]Result, error) {
	sims, err := buildSimulators(cfgs)
	if err != nil {
		return nil, err
	}
	batch := trace.GetBatch()
	defer trace.PutBatch(batch)
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: simulating %s: %w", r.Name(), err)
		}
		n, err := r.ReadBatch(*batch)
		recs := (*batch)[:n]
		for _, sim := range sims {
			sim.AccessAll(recs)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	return manyResults(r.Name(), cfgs, sims), nil
}

// SimulateManyTrace is SimulateMany for a trace already materialised in
// memory: the records are fed to every simulator in BatchSize chunks (so
// the chunk being simulated stays cache-resident across configurations)
// with the same cancellation and identical-results contracts.
func SimulateManyTrace(ctx context.Context, cfgs []Config, t *trace.Trace) ([]Result, error) {
	sims, err := buildSimulators(cfgs)
	if err != nil {
		return nil, err
	}
	recs := t.Records
	for len(recs) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: simulating %s: %w", t.Name, err)
		}
		chunk := recs
		if len(chunk) > trace.BatchSize {
			chunk = chunk[:trace.BatchSize]
		}
		for _, sim := range sims {
			sim.AccessAll(chunk)
		}
		recs = recs[len(chunk):]
	}
	return manyResults(t.Name, cfgs, sims), nil
}

// buildSimulators constructs one fresh simulator per configuration. Any
// invalid configuration fails the whole matrix up front, before a single
// record is consumed.
func buildSimulators(cfgs []Config) ([]*cache.Simulator, error) {
	sims := make([]*cache.Simulator, len(cfgs))
	for i, cfg := range cfgs {
		sim, err := cache.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: config %d (%s): %w", i, Describe(cfg), err)
		}
		sims[i] = sim
	}
	return sims, nil
}

func manyResults(traceName string, cfgs []Config, sims []*cache.Simulator) []Result {
	out := make([]Result, len(sims))
	for i, sim := range sims {
		out[i] = Result{Trace: traceName, Config: Describe(cfgs[i]), Stats: sim.Stats()}
	}
	return out
}

// Describe renders a short human-readable identifier for cfg.
func Describe(cfg Config) string {
	s := fmt.Sprintf("%dK/%dB/%d-way", cfg.CacheSize/1024, cfg.LineSize, cfg.Assoc)
	if cfg.VirtualLineSize > cfg.LineSize {
		if cfg.VariableVirtualLines {
			s += "+vlvar"
		} else {
			s += fmt.Sprintf("+vl%d", cfg.VirtualLineSize)
		}
	}
	if cfg.BounceBackLines > 0 {
		if cfg.BounceBackEnabled {
			s += fmt.Sprintf("+bb%d", cfg.BounceBackLines)
		} else {
			s += fmt.Sprintf("+vc%d", cfg.BounceBackLines)
		}
	}
	if cfg.TemporalPriorityReplacement {
		s += "+tpr"
	}
	if cfg.StreamBuffers > 0 {
		s += fmt.Sprintf("+sb%d", cfg.StreamBuffers)
	}
	if cfg.ColumnAssociative {
		s += "+colassoc"
	}
	if cfg.SubblockSize > 0 {
		s += fmt.Sprintf("+sub%d", cfg.SubblockSize)
	}
	switch cfg.Bypass {
	case cache.BypassPlain:
		s += "+bypass"
	case cache.BypassBuffered:
		s += "+bypassbuf"
	}
	if cfg.Prefetch.Enabled {
		if cfg.Prefetch.SoftwareGuided {
			s += "+pf(sw)"
		} else {
			s += "+pf"
		}
	}
	return s
}
