package core

// KernelVersion names the current generation of the simulation kernel
// and of the response schemas derived from it. It is part of every
// result-cache key (internal/resultcache), so bumping it invalidates all
// previously cached results at lookup time — the entries simply stop
// matching; nothing needs to be deleted.
//
// Bump this whenever a change alters any simulated statistic, the set of
// fields in a response, or the rendered bytes of a response for an
// otherwise identical request. Pure performance work (sharding, fusion,
// pooling) that is proven byte-identical does not need a bump.
const KernelVersion = "softcache-kernel/1"
