package core

import (
	"bytes"
	"strings"
	"testing"

	"softcache/internal/cache"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// TestCanonicalConfigsValidate: every named design point must build.
func TestCanonicalConfigsValidate(t *testing.T) {
	cfgs := map[string]Config{
		"standard":        Standard(),
		"victim":          Victim(),
		"soft":            Soft(),
		"soft-temporal":   SoftTemporal(),
		"soft-spatial":    SoftSpatial(),
		"bypass":          BypassPlain(),
		"bypass-buffer":   BypassBuffered(),
		"2way":            SetAssoc(Standard(), 2),
		"soft-2way":       SetAssoc(Soft(), 2),
		"simplified-2way": SimplifiedSoftAssoc(2),
		"soft-prefetch":   WithPrefetch(Soft(), true),
		"stand-prefetch":  WithPrefetch(Standard(), false),
		"latency5":        WithLatency(Soft(), 5),
		"geom":            WithGeometry(Soft(), 64<<10, 64, 128),
		"soft-variable":   SoftVariable(),
		"stream-buffers":  StandardStreamBuffers(),
		"column-assoc":    ColumnAssociative(),
		"write-through":   WithWritePolicy(Soft(), cache.WriteThroughAllocate),
		"subblocked":      Subblocked(),
	}
	for name, cfg := range cfgs {
		if _, err := NewSimulator(cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestConfigSemantics(t *testing.T) {
	if Standard().BounceBackLines != 0 {
		t.Fatal("Standard must have no bounce-back structure")
	}
	if v := Victim(); !(!v.BounceBackEnabled && v.BounceBackLines > 0) {
		t.Fatal("Victim = bounce-back structure with the mechanism off")
	}
	s := Soft()
	if !s.BounceBackEnabled || !s.UseTemporalTags || !s.UseSpatialTags || s.VirtualLineSize != DefaultVirtualLine {
		t.Fatalf("Soft misconfigured: %+v", s)
	}
	st := SoftTemporal()
	if st.UseSpatialTags || st.VirtualLineSize != 0 {
		t.Fatal("SoftTemporal must disable the spatial mechanism")
	}
	ss := SoftSpatial()
	if ss.UseTemporalTags || ss.BounceBackEnabled {
		t.Fatal("SoftSpatial must disable the temporal mechanism")
	}
	sim := SimplifiedSoftAssoc(2)
	if sim.BounceBackLines != 0 || !sim.TemporalPriorityReplacement {
		t.Fatal("Simplified design: no bounce-back cache, priority replacement")
	}
	pf := WithPrefetch(Standard(), false)
	if !pf.Prefetch.Enabled || pf.BounceBackLines == 0 {
		t.Fatal("WithPrefetch must provide a prefetch buffer")
	}
}

func TestDescribe(t *testing.T) {
	cases := map[string]string{
		Describe(Standard()):                 "8K/32B/1-way",
		Describe(Soft()):                     "+vl64",
		Describe(Victim()):                   "+vc8",
		Describe(BypassPlain()):              "+bypass",
		Describe(BypassBuffered()):           "+bypassbuf",
		Describe(SimplifiedSoftAssoc(2)):     "+tpr",
		Describe(WithPrefetch(Soft(), true)): "+pf(sw)",
		Describe(SoftVariable()):             "+vlvar",
		Describe(StandardStreamBuffers()):    "+sb4",
		Describe(ColumnAssociative()):        "+colassoc",
		Describe(Subblocked()):               "+sub32",
	}
	for got, want := range cases {
		if !strings.Contains(got, want) {
			t.Errorf("Describe = %q, want substring %q", got, want)
		}
	}
	if !strings.Contains(Describe(Soft()), "+bb8") {
		t.Error("Soft description should mention the bounce-back cache")
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(Soft(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != "MV" || res.AMAT() < 1 || res.MissRatio() <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if _, err := Simulate(Config{}, tr); err == nil {
		t.Fatal("zero config must be rejected")
	}
}

// TestSoftIsSafe is the paper's central safety claim ("software-assisted
// data caches perform better than standard caches in any case") asserted
// across the whole suite at test scale.
func TestSoftIsSafe(t *testing.T) {
	for _, name := range workloads.Benchmarks() {
		tr, err := workloads.Trace(name, workloads.ScaleTest, 1)
		if err != nil {
			t.Fatal(err)
		}
		std, err := Simulate(Standard(), tr)
		if err != nil {
			t.Fatal(err)
		}
		for label, cfg := range map[string]Config{
			"Soft":     Soft(),
			"SoftTemp": SoftTemporal(),
			"SoftSpat": SoftSpatial(),
		} {
			res, err := Simulate(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			if res.AMAT() > std.AMAT()*1.01 {
				t.Errorf("%s on %s: AMAT %.3f vs standard %.3f — not safe",
					label, name, res.AMAT(), std.AMAT())
			}
		}
	}
}

// TestStrippedTagsEqualStandardBehaviour: running Soft on a tag-stripped
// trace must equal running it with the tag gates off — two paths to the
// same semantics.
func TestStrippedTagsEqualStandardBehaviour(t *testing.T) {
	tr, err := workloads.Trace("DYF", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := Simulate(Soft(), tr.StripTags(true, true))
	if err != nil {
		t.Fatal(err)
	}
	gated := Soft()
	gated.UseTemporalTags = false
	gated.UseSpatialTags = false
	gatedRes, err := Simulate(gated, tr)
	if err != nil {
		t.Fatal(err)
	}
	if stripped.Stats.CostCycles != gatedRes.Stats.CostCycles ||
		stripped.Stats.Misses != gatedRes.Stats.Misses {
		t.Fatalf("stripped %+v vs gated %+v", stripped.Stats, gatedRes.Stats)
	}
}

// TestVictimEqualsSoftWithoutTags: with no tags active, the Soft hierarchy
// degenerates to Standard+Victim exactly (§2.2: the bounce-back cache is
// then used as a victim cache).
func TestVictimEqualsSoftWithoutTags(t *testing.T) {
	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	soft := Soft()
	soft.UseTemporalTags = false
	soft.UseSpatialTags = false
	soft.BounceBackEnabled = false
	a, err := Simulate(soft, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(Victim(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.CostCycles != b.Stats.CostCycles {
		t.Fatalf("degenerate Soft %.4f != Victim %.4f", a.AMAT(), b.AMAT())
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Stats: cache.Stats{References: 10, CostCycles: 25, Misses: 2}}
	if r.AMAT() != 2.5 || r.MissRatio() != 0.2 {
		t.Fatalf("helpers broken: %+v", r)
	}
}

// TestSimulateStreamMatchesInMemory: the streaming path must produce
// byte-identical statistics to the in-memory path.
func TestSimulateStreamMatchesInMemory(t *testing.T) {
	tr, err := workloads.Trace("SpMV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := SimulateStream(Soft(), r)
	if err != nil {
		t.Fatal(err)
	}
	inMemory, err := Simulate(Soft(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Stats != inMemory.Stats {
		t.Fatalf("streamed %+v\nin-memory %+v", streamed.Stats, inMemory.Stats)
	}
	if streamed.Trace != "SpMV" {
		t.Fatalf("trace name lost: %q", streamed.Trace)
	}
}

// TestSeedStability: the trace seed only drives issue gaps, which modulate
// structural stalls, not hits and misses — so AMAT must be nearly
// insensitive to it (a guard against accidental seed-dependence of
// addresses or tags).
func TestSeedStability(t *testing.T) {
	for _, name := range []string{"MV", "DYF", "SpMV"} {
		var amats []float64
		for seed := uint64(1); seed <= 3; seed++ {
			tr, err := workloads.Trace(name, workloads.ScaleTest, seed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Simulate(Soft(), tr)
			if err != nil {
				t.Fatal(err)
			}
			amats = append(amats, res.AMAT())
		}
		for _, a := range amats[1:] {
			if d := (a - amats[0]) / amats[0]; d > 0.02 || d < -0.02 {
				t.Fatalf("%s: AMAT unstable across seeds: %v", name, amats)
			}
		}
	}
}

// TestSimulateWarm: warm-cache measurement must exclude the cold misses.
// Two identical passes over a cache-fitting array: the cold pass misses on
// every line, the warm pass not at all.
func TestSimulateWarm(t *testing.T) {
	tr := &trace.Trace{Name: "twopass"}
	const words = 256 // 2 KiB, fits the 8 KiB cache
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < words; i++ {
			tr.Append(trace.Record{Addr: 0x10000 + uint64(8*i), Size: 8, Gap: 1})
		}
	}
	cold, err := Simulate(Standard(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Misses == 0 {
		t.Fatal("cold pass should miss")
	}
	warm, err := SimulateWarm(Standard(), tr, words)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.References != words {
		t.Fatalf("warm references = %d", warm.Stats.References)
	}
	if warm.Stats.Misses != 0 {
		t.Fatalf("warm pass should be miss-free, got %d misses", warm.Stats.Misses)
	}
	if warm.AMAT() != 1 {
		t.Fatalf("warm AMAT = %v, want 1.0", warm.AMAT())
	}
	// Warmup beyond the trace length is clamped, yielding empty stats.
	empty, err := SimulateWarm(Standard(), tr, tr.Len()+10)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Stats.References != 0 {
		t.Fatalf("over-long warmup should leave nothing measured: %+v", empty.Stats)
	}
}

// TestWindows: the phase profile has one entry per window, the first window
// (cold) is the most expensive for a scanning workload, and the
// reference-weighted mean matches the overall AMAT.
func TestWindows(t *testing.T) {
	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	const w = 1000
	windows, err := Windows(Soft(), tr, w)
	if err != nil {
		t.Fatal(err)
	}
	wantWindows := (tr.Len() + w - 1) / w
	if len(windows) != wantWindows {
		t.Fatalf("windows = %d, want %d", len(windows), wantWindows)
	}
	overall, err := Simulate(Soft(), tr)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, v := range windows {
		n := w
		if i == len(windows)-1 && tr.Len()%w != 0 {
			n = tr.Len() % w
		}
		sum += v * float64(n)
	}
	if got := sum / float64(tr.Len()); got < overall.AMAT()*0.999 || got > overall.AMAT()*1.001 {
		t.Fatalf("window-weighted AMAT %.4f != overall %.4f", got, overall.AMAT())
	}
	if _, err := Windows(Soft(), tr, 0); err == nil {
		t.Fatal("zero window size must be rejected")
	}
}
