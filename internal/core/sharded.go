package core

import (
	"context"
	"fmt"
	"io"
	"sync"

	"softcache/internal/cache"
	"softcache/internal/trace"
)

// Set-sharded parallel kernel for single-configuration runs. The fused
// kernel (SimulateMany) parallelises across configurations; this one
// parallelises a single configuration across CPU cores by partitioning
// the trace by main-cache set index (cache.PlanShards) and simulating
// each partition on its own worker with its own simulator, then merging
// the per-shard counters deterministically (cache.MergeShardStats).
//
// For plans marked Exact the merged result is exactly the sequential
// one; otherwise the divergence is bounded and pinned by the sharded
// differential suite (internal/cache/refmodel). Either way the run is
// fully deterministic — worker scheduling cannot affect the result,
// because each shard's simulation depends only on its own record
// subsequence and the merge sums in shard order.

// shardQueueDepth bounds the sealed chunks in flight per shard. Deep
// enough to absorb routing jitter, small enough that a stalled worker
// back-pressures the producer within a few hundred KiB.
const shardQueueDepth = 8

// PlanShards re-exports cache.PlanShards so CLI callers can inspect the
// effective shard count and exactness of a run they are about to start.
func PlanShards(cfg Config, requested int) (cache.ShardPlan, error) {
	return cache.PlanShards(cfg, requested)
}

// SimulateSharded runs cfg over a materialised trace on up to `shards`
// concurrent set-partitions. shards <= 1 (or an unshardable plan) falls
// back to the sequential kernel, byte-identical to SimulateContext.
func SimulateSharded(ctx context.Context, cfg Config, t *trace.Trace, shards int) (Result, error) {
	plan, err := cache.PlanShards(cfg, shards)
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	if plan.Shards == 1 {
		return SimulateContext(ctx, cfg, t)
	}
	return runSharded(cfg, t.Name, plan, func(route func([]trace.Record)) error {
		recs := t.Records
		for len(recs) > 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: simulating %s: %w", t.Name, err)
			}
			chunk := recs
			if len(chunk) > trace.BatchSize {
				chunk = chunk[:trace.BatchSize]
			}
			route(chunk)
			recs = recs[len(chunk):]
		}
		return nil
	})
}

// SimulateShardedStream is SimulateSharded over a serialised trace: one
// producer goroutine decodes pooled batches and routes the records to
// the shard workers, so decode overlaps simulation. shards <= 1 (or an
// unshardable plan) degenerates to the sequential streaming kernel.
func SimulateShardedStream(ctx context.Context, cfg Config, r trace.BatchReader, shards int) (Result, error) {
	plan, err := cache.PlanShards(cfg, shards)
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	if plan.Shards == 1 {
		results, err := SimulateMany(ctx, []Config{cfg}, r)
		if err != nil {
			return Result{}, err
		}
		return results[0], nil
	}
	return runSharded(cfg, r.Name(), plan, func(route func([]trace.Record)) error {
		batch := trace.GetBatch()
		defer trace.PutBatch(batch)
		for {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: simulating %s: %w", r.Name(), err)
			}
			n, err := r.ReadBatch(*batch)
			route((*batch)[:n])
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return fmt.Errorf("core: %w", err)
			}
		}
	})
}

// shardFailure collects the first worker panic so it can be re-raised on
// the caller's goroutine, preserving the harness's panic-containment
// contract (a *cache.InvariantError from any shard surfaces exactly as
// in a sequential run).
type shardFailure struct {
	mu sync.Mutex
	// value is the first recovered panic value, nil if none.
	value any // guarded by mu
}

func (f *shardFailure) record(v any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.value == nil {
		f.value = v
	}
}

func (f *shardFailure) get() any {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.value
}

// runSharded drives one sharded simulation: it builds plan.Shards
// simulators, starts one worker per shard consuming that shard's chunk
// queue, runs feed (the producer loop) on the calling goroutine, and
// merges the sealed per-shard stats. feed receives the routing function
// and returns the producer's error, if any.
func runSharded(cfg Config, name string, plan cache.ShardPlan, feed func(route func([]trace.Record)) error) (Result, error) {
	sims := make([]*cache.Simulator, plan.Shards)
	for i := range sims {
		sim, err := cache.New(cfg)
		if err != nil {
			return Result{}, fmt.Errorf("core: %w", err)
		}
		sims[i] = sim
	}
	return runShardedWith(cfg, name, plan, sims, feed)
}

// runShardedWith is runSharded after simulator construction; split out so
// tests can inject a failing simulator and pin the panic-propagation
// contract.
func runShardedWith(cfg Config, name string, plan cache.ShardPlan, sims []*cache.Simulator, feed func(route func([]trace.Record)) error) (Result, error) {
	router := trace.NewRouter(plan.Shards, shardQueueDepth, plan.ShardOf)
	// sealed[i] is written by worker i before wg.Done and read after
	// wg.Wait — the WaitGroup orders the accesses, no lock needed.
	sealed := make([]cache.ShardStats, plan.Shards)
	var fail shardFailure
	var wg sync.WaitGroup
	wg.Add(plan.Shards)
	for i := 0; i < plan.Shards; i++ {
		go func(i int) {
			defer wg.Done()
			in := router.Out(i)
			defer func() {
				if v := recover(); v != nil {
					fail.record(v)
					// Keep the producer from blocking on a full queue:
					// drain and recycle whatever is still in flight.
					for c := range in {
						trace.PutChunk(c)
					}
				}
			}()
			sim := sims[i]
			for c := range in {
				sim.AccessAll(*c)
				trace.PutChunk(c)
			}
			sealed[i] = cache.SealShard(i, sim.Stats())
		}(i)
	}
	err := feed(router.Route)
	router.Close()
	wg.Wait()
	if v := fail.get(); v != nil {
		panic(v)
	}
	if err != nil {
		return Result{}, err
	}
	stats, err := cache.MergeShardStats(sealed)
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	return Result{Trace: name, Config: Describe(cfg), Stats: stats}, nil
}
