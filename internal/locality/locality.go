// Package locality implements the paper's compile-time locality analysis
// (§2.3). The point the paper makes — and that this package preserves — is
// that *elementary* techniques suffice:
//
//   - a reference is tagged SPATIAL when the coefficient of the innermost
//     loop variable in its linearised subscript is a known constant smaller
//     than 4 elements (4 doubles = one 32-byte line); stride 0 counts
//     (fig. 5 tags Y(I) spatial inside DO J), while unknown — indirect —
//     strides never do. Within a uniformly generated group only the
//     leading reference keeps the spatial tag (fig. 5: B(J,I+1) is
//     spatial, B(J,I) is not — its data was touched one iteration earlier
//     by the leader, so its misses are covered);
//
//   - a reference is tagged TEMPORAL when it exhibits a temporal
//     self-dependence (some enclosing loop variable is absent from its
//     subscript — and from the bounds of the loops the subscript ranges
//     over — so the same elements are revisited across that loop, like
//     X(J) inside DO I / DO J) or a uniformly generated temporal
//     group-dependence (another reference to the same array in the same
//     loop body whose linearised subscript differs only by a constant,
//     like B(J,I) and B(J,I+1), or the read/write pair on Y(I));
//
//   - a CALL in the loop body clears the tags of every reference in that
//     body (no interprocedural analysis), and references outside any loop
//     carry no tags;
//
//   - explicit user directives (Access.Force) override everything — the
//     §4.1 mechanism for sparse codes where "no compiler support exists".
package locality

import (
	"fmt"
	"sort"
	"strings"

	"softcache/internal/loopir"
)

// SpatialMaxCoef is the paper's threshold: an innermost-loop coefficient
// smaller than this (in elements) makes a reference spatial.
const SpatialMaxCoef = 4

// Tagging maps access IDs (loopir.Access.ID) to their resolved tags.
type Tagging map[int]loopir.Tags

// Analyze derives the tags of every access site in the program. The
// program must already be finalized.
func Analyze(p *loopir.Program) (Tagging, error) {
	tags := make(Tagging)
	a := &analyzer{p: p, tags: tags}
	if err := a.walk(p.Body, nil); err != nil {
		return nil, err
	}
	return tags, nil
}

// analyzer carries the traversal state.
type analyzer struct {
	p    *loopir.Program
	tags Tagging
}

// walk processes a statement list with the given enclosing loop stack
// (outermost first).
func (a *analyzer) walk(body []loopir.Stmt, loops []*loopir.Loop) error {
	poisoned := len(loops) > 0 && subtreeHasCall(loops[len(loops)-1].Body)
	group := collectAccesses(body)
	if err := a.tagGroup(group, loops, poisoned); err != nil {
		return err
	}
	for _, st := range body {
		if l, ok := st.(*loopir.Loop); ok {
			next := loops
			if !l.Opaque {
				// Full-slice expression: sibling loops must not alias
				// the same backing array when extending the stack.
				next = append(loops[:len(loops):len(loops)], l)
			}
			if err := a.walk(l.Body, next); err != nil {
				return err
			}
		}
	}
	return nil
}

// collectAccesses returns the accesses directly in body (not inside nested
// loops): they share the same innermost loop and form the scope for
// group-dependence detection.
func collectAccesses(body []loopir.Stmt) []*loopir.Access {
	var out []*loopir.Access
	for _, st := range body {
		if acc, ok := st.(*loopir.Access); ok {
			out = append(out, acc)
		}
	}
	return out
}

// subtreeHasCall reports whether a CALL appears anywhere below body.
func subtreeHasCall(body []loopir.Stmt) bool {
	for _, st := range body {
		switch s := st.(type) {
		case *loopir.Call:
			return true
		case *loopir.Loop:
			if subtreeHasCall(s.Body) {
				return true
			}
		}
	}
	return false
}

// tagGroup resolves the tags of all accesses sharing one loop body.
func (a *analyzer) tagGroup(group []*loopir.Access, loops []*loopir.Loop, poisoned bool) error {
	if len(group) == 0 {
		return nil
	}
	lins := make([]loopir.Subscript, len(group))
	for i, acc := range group {
		lin, err := a.p.LinearSubscript(acc)
		if err != nil {
			return fmt.Errorf("locality: %w", err)
		}
		lins[i] = lin
	}

	resolved := make([]loopir.Tags, len(group))
	for i, acc := range group {
		resolved[i] = a.tagsFor(acc, lins[i], loops, group, lins, poisoned)
	}

	// Spatial-leader demotion (fig. 5): within each uniformly generated
	// group, members trailing the leading constant lose the spatial tag.
	// Directive-forced accesses are left untouched.
	demoteTrailingSpatial(group, lins, resolved)

	for i, acc := range group {
		a.tags[acc.ID] = resolved[i]
	}
	return nil
}

// tagsFor derives the tags of one access with linearised subscript lin.
func (a *analyzer) tagsFor(acc *loopir.Access, lin loopir.Subscript, loops []*loopir.Loop, group []*loopir.Access, lins []loopir.Subscript, poisoned bool) loopir.Tags {
	// User directives win unconditionally (§4.1).
	if acc.Force != nil {
		return *acc.Force
	}
	// References outside loops, or in a body poisoned by a CALL, carry no
	// tags (§2.3).
	if len(loops) == 0 || poisoned {
		return loopir.Tags{}
	}

	var t loopir.Tags
	if !lin.HasIndirect() {
		// Spatial rule: innermost coefficient known and < 4 elements
		// (stride 0 included, per fig. 5).
		innermost := loops[len(loops)-1]
		if c := lin.Coef(innermost.Var); abs(c) < SpatialMaxCoef {
			t.Spatial = true
			t.VirtualBytes = virtualLengthFor(a.p, acc, lin, innermost)
		}

		// Temporal rule 1: self-dependence. An enclosing loop variable
		// that appears neither in the subscript nor (transitively) in the
		// bounds of the loops the subscript ranges over means the same
		// elements are revisited on each of its iterations.
		closure := boundsClosure(lin, loops)
		for _, l := range loops {
			if !closure[l.Var] {
				t.Temporal = true
				break
			}
		}

		// Temporal rule 2: uniformly generated group-dependence.
		if !t.Temporal {
			for i, other := range group {
				if other == acc || other.Array != acc.Array {
					continue
				}
				if loopir.SameShape(lin, lins[i]) {
					t.Temporal = true
					break
				}
			}
		}
	}
	return t
}

// virtualLengthFor implements the §3.2 extension: quantify the spatial
// extent of a spatial reference and pick a virtual-line length for it. The
// contiguous span the innermost loop covers is coef*(hi-lo)+1 elements
// when the bounds are compile-time constants; the hint rounds it to the
// supported lengths (64/128/256 bytes). Unknown extents (symbolic bounds)
// return 0, i.e. the design default — the "complexity of the compiler
// algorithm for determining the amount of spatial locality" the paper
// flags as the limitation of this extension.
func virtualLengthFor(p *loopir.Program, acc *loopir.Access, lin loopir.Subscript, innermost *loopir.Loop) int {
	lo, hi := innermost.Lower, innermost.Upper
	if len(lo.Terms) > 0 || lo.Ind != nil || len(hi.Terms) > 0 || hi.Ind != nil {
		return 0
	}
	span := hi.Const - lo.Const
	if span < 0 {
		return 0
	}
	coef := abs(lin.Coef(innermost.Var))
	elem := p.Arrays[acc.Array].ElemSize
	spanBytes := (coef*span + 1) * elem
	switch {
	case spanBytes >= 256:
		return 256
	case spanBytes >= 128:
		return 128
	default:
		return 64
	}
}

// boundsClosure returns the set of loop variables the subscript's value
// range depends on: the variables appearing in the subscript itself plus,
// transitively, the variables appearing in the bounds of those loops.
// A variable *outside* this closure iterates without changing the set of
// elements touched — genuine temporal reuse.
func boundsClosure(lin loopir.Subscript, loops []*loopir.Loop) map[string]bool {
	closure := make(map[string]bool, len(loops))
	for _, t := range lin.Terms {
		closure[t.Var] = true
	}
	// Iterate to a fixed point (the stack is tiny).
	for changed := true; changed; {
		changed = false
		for _, l := range loops {
			if !closure[l.Var] {
				continue
			}
			for _, v := range boundVars(l) {
				if !closure[v] {
					closure[v] = true
					changed = true
				}
			}
		}
	}
	return closure
}

// boundVars lists the loop variables appearing in l's bounds, including
// inside indirect bound components (data-dependent bounds such as CSR row
// pointers depend on the indexing variable).
func boundVars(l *loopir.Loop) []string {
	var out []string
	collect := func(s loopir.Subscript) {
		for _, t := range s.Terms {
			out = append(out, t.Var)
		}
		if s.Ind != nil {
			for _, t := range s.Ind.Sub.Terms {
				out = append(out, t.Var)
			}
		}
	}
	collect(l.Lower)
	collect(l.Upper)
	return out
}

// demoteTrailingSpatial clears the spatial tag of non-leading members of
// each uniformly generated group (same array, same affine shape, differing
// constants): the leader — the member with the largest constant, i.e. the
// first to touch new data under forward traversal — keeps it.
func demoteTrailingSpatial(group []*loopir.Access, lins []loopir.Subscript, resolved []loopir.Tags) {
	maxConst := make(map[string]int)
	for i, acc := range group {
		if acc.Force != nil || lins[i].HasIndirect() {
			continue
		}
		key := shapeKey(acc.Array, lins[i])
		c, ok := maxConst[key]
		if !ok || lins[i].Const > c {
			maxConst[key] = lins[i].Const
		}
	}
	for i, acc := range group {
		if acc.Force != nil || lins[i].HasIndirect() || !resolved[i].Spatial {
			continue
		}
		key := shapeKey(acc.Array, lins[i])
		if lins[i].Const < maxConst[key] {
			resolved[i].Spatial = false
			resolved[i].VirtualBytes = 0
		}
	}
}

// shapeKey builds a map key identifying (array, affine shape).
func shapeKey(array string, lin loopir.Subscript) string {
	var b strings.Builder
	b.WriteString(array)
	terms := append([]loopir.Term(nil), lin.Terms...)
	sort.Slice(terms, func(i, j int) bool { return terms[i].Var < terms[j].Var })
	for _, t := range terms {
		if t.Coef == 0 {
			continue
		}
		fmt.Fprintf(&b, "|%s*%d", t.Var, t.Coef)
	}
	return b.String()
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Summary tallies a tagging the way fig. 4a reports it.
type Summary struct {
	Sites         int
	TemporalSites int
	SpatialSites  int
}

// Summarize counts tagged sites.
func Summarize(t Tagging) Summary {
	var s Summary
	for _, tags := range t {
		s.Sites++
		if tags.Temporal {
			s.TemporalSites++
		}
		if tags.Spatial {
			s.SpatialSites++
		}
	}
	return s
}
