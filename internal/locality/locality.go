// Package locality implements the paper's compile-time locality analysis
// (§2.3). The point the paper makes — and that this package preserves — is
// that *elementary* techniques suffice:
//
//   - a reference is tagged SPATIAL when the coefficient of the innermost
//     loop variable in its linearised subscript is a known constant smaller
//     than 4 elements (4 doubles = one 32-byte line); stride 0 counts
//     (fig. 5 tags Y(I) spatial inside DO J), while unknown — indirect —
//     strides never do. Within a uniformly generated group only the
//     leading reference keeps the spatial tag (fig. 5: B(J,I+1) is
//     spatial, B(J,I) is not — its data was touched one iteration earlier
//     by the leader, so its misses are covered);
//
//   - a reference is tagged TEMPORAL when it exhibits a temporal
//     self-dependence (some enclosing loop variable is absent from its
//     subscript — and from the bounds of the loops the subscript ranges
//     over — so the same elements are revisited across that loop, like
//     X(J) inside DO I / DO J) or a uniformly generated temporal
//     group-dependence (another reference to the same array in the same
//     loop body whose linearised subscript differs only by a constant,
//     like B(J,I) and B(J,I+1), or the read/write pair on Y(I));
//
//   - a CALL in the loop body clears the tags of every reference in that
//     body (no interprocedural analysis), and references outside any loop
//     carry no tags;
//
//   - explicit user directives (Access.Force) override everything — the
//     §4.1 mechanism for sparse codes where "no compiler support exists".
//
// The dependence facts themselves — uniformly generated groups, self and
// group dependences with carrying loops and distances — live in package
// depend; this package is the tagging *policy* layered on that graph.
package locality

import (
	"fmt"

	"softcache/internal/depend"
	"softcache/internal/loopir"
)

// SpatialMaxCoef is the paper's threshold: an innermost-loop coefficient
// smaller than this (in elements) makes a reference spatial.
const SpatialMaxCoef = depend.SpatialMaxCoef

// Tagging maps access IDs (loopir.Access.ID) to their resolved tags.
type Tagging map[int]loopir.Tags

// Options tune the analysis.
type Options struct {
	// IgnoreCalls derives tags as if the program contained no CALL
	// statements — what an interprocedural analysis could recover. The
	// vet callpoison pass diffs this against the default tagging to list
	// exactly which tags each CALL destroyed.
	IgnoreCalls bool
}

// Analyze derives the tags of every access site in the program with the
// paper's default rules. The program is finalized as a side effect.
func Analyze(p *loopir.Program) (Tagging, error) {
	return AnalyzeOpts(p, Options{})
}

// AnalyzeOpts derives tags with explicit options.
func AnalyzeOpts(p *loopir.Program, opts Options) (Tagging, error) {
	g, err := depend.Analyze(p)
	if err != nil {
		return nil, fmt.Errorf("locality: %w", err)
	}
	return Derive(g, opts), nil
}

// Derive resolves the tags of every reference of an already-built
// dependence graph.
func Derive(g *depend.Graph, opts Options) Tagging {
	tags := make(Tagging, len(g.Refs))
	for _, r := range g.Refs {
		tags[r.Access.ID] = tagsFor(g, r, opts)
	}
	demoteTrailingSpatial(g, tags)
	return tags
}

// tagsFor derives the tags of one reference from its dependence facts.
func tagsFor(g *depend.Graph, r *depend.Ref, opts Options) loopir.Tags {
	// User directives win unconditionally (§4.1).
	if r.Access.Force != nil {
		return *r.Access.Force
	}
	// References outside loops, or in a body poisoned by a CALL, carry no
	// tags (§2.3).
	if r.Depth() == 0 || (r.Poisoned && !opts.IgnoreCalls) {
		return loopir.Tags{}
	}

	var t loopir.Tags
	// Spatial rule: innermost coefficient known and < 4 elements (stride 0
	// included, per fig. 5).
	if coef, known := r.InnermostCoef(); known && abs(coef) < SpatialMaxCoef {
		t.Spatial = true
		t.VirtualBytes = virtualLengthFor(g.Prog, r)
	}
	// Temporal rule 1: a temporal self-dependence (an enclosing loop the
	// subscript is invariant along).
	for _, d := range r.SelfDeps() {
		if d.Class == depend.Temporal {
			t.Temporal = true
			break
		}
	}
	// Temporal rule 2: membership in a uniformly generated group (another
	// same-array reference differing only by a constant).
	if !t.Temporal && r.Group() != nil {
		t.Temporal = true
	}
	return t
}

// virtualLengthFor implements the §3.2 extension: quantify the spatial
// extent of a spatial reference and pick a virtual-line length for it. The
// contiguous span the innermost loop covers is coef*(hi-lo)+1 elements
// when the bounds are compile-time constants; the hint rounds it to the
// supported lengths (64/128/256 bytes). Unknown extents (symbolic bounds)
// return 0, i.e. the design default — the "complexity of the compiler
// algorithm for determining the amount of spatial locality" the paper
// flags as the limitation of this extension.
func virtualLengthFor(p *loopir.Program, r *depend.Ref) int {
	innermost := r.Innermost()
	lo, hi := innermost.Lower, innermost.Upper
	if len(lo.Terms) > 0 || lo.Ind != nil || len(hi.Terms) > 0 || hi.Ind != nil {
		return 0
	}
	span := hi.Const - lo.Const
	if span < 0 {
		return 0
	}
	coef, _ := r.InnermostCoef()
	elem := p.Arrays[r.Access.Array].ElemSize
	spanBytes := (abs(coef)*span + 1) * elem
	switch {
	case spanBytes >= 256:
		return 256
	case spanBytes >= 128:
		return 128
	default:
		return 64
	}
}

// demoteTrailingSpatial clears the spatial tag of non-leading members of
// each uniformly generated group (same array, same affine shape, differing
// constants): the leader — the member with the largest constant, i.e. the
// first to touch new data under forward traversal — keeps it, and its
// virtual-line fetches cover the trailers' misses. Directive-forced
// accesses are left untouched.
func demoteTrailingSpatial(g *depend.Graph, tags Tagging) {
	for _, grp := range g.Groups {
		maxConst, any := 0, false
		for _, r := range grp.Refs {
			if r.Access.Force != nil {
				continue
			}
			if !any || r.Lin.Const > maxConst {
				maxConst, any = r.Lin.Const, true
			}
		}
		if !any {
			continue
		}
		for _, r := range grp.Refs {
			if r.Access.Force != nil || r.Lin.Const >= maxConst {
				continue
			}
			t := tags[r.Access.ID]
			if !t.Spatial {
				continue
			}
			t.Spatial = false
			t.VirtualBytes = 0
			tags[r.Access.ID] = t
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Summary tallies a tagging the way fig. 4a reports it.
type Summary struct {
	Sites         int
	TemporalSites int
	SpatialSites  int
}

// Summarize counts tagged sites.
func Summarize(t Tagging) Summary {
	var s Summary
	for _, tags := range t {
		s.Sites++
		if tags.Temporal {
			s.TemporalSites++
		}
		if tags.Spatial {
			s.SpatialSites++
		}
	}
	return s
}
