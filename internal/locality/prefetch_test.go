package locality

import (
	"testing"

	"softcache/internal/loopir"
)

// pfProgram: DO i { DO j { load A(j,i); load X(j); load Y(i) } } — A and X
// stream (qualify), Y is innermost-invariant (does not).
func pfProgram() (*loopir.Program, *loopir.Access, *loopir.Access, *loopir.Access) {
	p := loopir.NewProgram("pf")
	p.DeclareArray("A", 32, 32)
	p.DeclareArray("X", 32)
	p.DeclareArray("Y", 32)
	a := loopir.Read("A", loopir.V("j"), loopir.V("i"))
	x := loopir.Read("X", loopir.V("j"))
	y := loopir.Read("Y", loopir.V("i"))
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(31),
		loopir.Do("j", loopir.C(0), loopir.C(31), a, x, y),
	))
	return p, a, x, y
}

func TestInsertPrefetches(t *testing.T) {
	p, _, _, _ := pfProgram()
	n, err := InsertPrefetches(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // A and X qualify; Y is invariant
		t.Fatalf("inserted %d prefetches, want 2", n)
	}
	// The prefetch subscripts are advanced by the distance.
	inner := p.Body[0].(*loopir.Loop).Body[0].(*loopir.Loop)
	var pfs []*loopir.Prefetch
	for _, st := range inner.Body {
		if pf, ok := st.(*loopir.Prefetch); ok {
			pfs = append(pfs, pf)
		}
	}
	if len(pfs) != 2 {
		t.Fatalf("prefetch statements in body = %d", len(pfs))
	}
	if pfs[0].Array != "A" || pfs[0].Index[0].Const != 4 {
		t.Fatalf("A prefetch = %+v", pfs[0])
	}
	if pfs[1].Array != "X" || pfs[1].Index[0].Const != 4 {
		t.Fatalf("X prefetch = %+v", pfs[1])
	}
}

func TestInsertPrefetchesRespectsStep(t *testing.T) {
	p := loopir.NewProgram("step")
	p.DeclareArray("X", 64)
	x := loopir.Read("X", loopir.SV(1, "i"))
	p.Add(loopir.DoStep("i", loopir.C(0), loopir.C(63), 2, x))
	if _, err := InsertPrefetches(p, 3); err != nil {
		t.Fatal(err)
	}
	body := p.Body[0].(*loopir.Loop).Body
	pf := body[1].(*loopir.Prefetch)
	if pf.Index[0].Const != 6 { // distance 3 iterations of step 2
		t.Fatalf("prefetch const = %d, want 6", pf.Index[0].Const)
	}
}

func TestInsertPrefetchesSkipsIndirect(t *testing.T) {
	p := loopir.NewProgram("ind")
	p.DeclareArray("X", 64)
	p.DeclareData("Idx", make([]int, 64))
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(63),
		loopir.Read("X", loopir.Load("Idx", loopir.V("i"))).WithTags(false, true),
	))
	n, err := InsertPrefetches(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("indirect references have unpredictable futures; no prefetch")
	}
}

func TestInsertPrefetchesGroupLeaderOnly(t *testing.T) {
	p := loopir.NewProgram("grp")
	p.DeclareArray("Z", 128)
	p.Add(loopir.Do("k", loopir.C(0), loopir.C(99),
		loopir.Read("Z", loopir.V("k")),
		loopir.Read("Z", loopir.Plus(loopir.V("k"), 1)),
	))
	n, err := InsertPrefetches(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 { // the trailing member lost its spatial tag
		t.Fatalf("inserted %d, want 1 (group leader only)", n)
	}
}

func TestInsertPrefetchesBadDistance(t *testing.T) {
	p, _, _, _ := pfProgram()
	if _, err := InsertPrefetches(p, 0); err == nil {
		t.Fatal("distance 0 must be rejected")
	}
}
