package locality

import (
	"fmt"

	"softcache/internal/loopir"
)

// InsertPrefetches implements the software side of the §4.4 extension: a
// Mowry-style pass that inserts explicit PREFETCH instructions distance
// iterations ahead of qualifying references. A reference qualifies when the
// analysis tagged it spatial with a non-zero innermost stride (a stream
// whose future addresses are predictable); one prefetch per uniformly
// generated group suffices (trailing members already lost their spatial
// tag). The inserted instruction prefetches the same subscripts with the
// innermost variable advanced by distance, i.e. each dimension's constant
// grows by distance times that dimension's innermost coefficient.
//
// It returns the number of prefetch instructions inserted. The program is
// finalized (and analysed) as a side effect.
func InsertPrefetches(p *loopir.Program, distance int) (int, error) {
	if distance <= 0 {
		return 0, fmt.Errorf("locality: prefetch distance must be positive, got %d", distance)
	}
	if err := p.Finalize(); err != nil {
		return 0, err
	}
	tags, err := Analyze(p)
	if err != nil {
		return 0, err
	}
	ins := &inserter{p: p, tags: tags, distance: distance}
	p.Body = ins.rewrite(p.Body, nil)
	return ins.count, nil
}

type inserter struct {
	p        *loopir.Program
	tags     Tagging
	distance int
	count    int
}

func (in *inserter) rewrite(body []loopir.Stmt, loops []*loopir.Loop) []loopir.Stmt {
	out := make([]loopir.Stmt, 0, len(body))
	for _, st := range body {
		switch s := st.(type) {
		case *loopir.Loop:
			next := loops
			if !s.Opaque {
				next = append(loops[:len(loops):len(loops)], s)
			}
			s.Body = in.rewrite(s.Body, next)
			out = append(out, s)
		case *loopir.Access:
			out = append(out, s)
			if pf := in.prefetchFor(s, loops); pf != nil {
				out = append(out, pf)
				in.count++
			}
		default:
			out = append(out, st)
		}
	}
	return out
}

// prefetchFor builds the prefetch statement for a qualifying access, or nil.
func (in *inserter) prefetchFor(acc *loopir.Access, loops []*loopir.Loop) *loopir.Prefetch {
	if len(loops) == 0 {
		return nil
	}
	t := in.tags[acc.ID]
	if !t.Spatial {
		return nil
	}
	innermost := loops[len(loops)-1].Var
	step := loops[len(loops)-1].Step
	if step == 0 {
		step = 1
	}
	advanced := false
	index := make([]loopir.Subscript, len(acc.Index))
	for d, sub := range acc.Index {
		if sub.HasIndirect() {
			return nil // unpredictable future address
		}
		c := sub.Coef(innermost)
		index[d] = loopir.Plus(sub, c*step*in.distance)
		if c != 0 {
			advanced = true
		}
	}
	if !advanced {
		return nil // innermost-invariant: nothing streams
	}
	return &loopir.Prefetch{Array: acc.Array, Index: index}
}
