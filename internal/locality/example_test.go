package locality_test

import (
	"fmt"

	"softcache/internal/lang"
	"softcache/internal/locality"
	"softcache/internal/loopir"
)

// ExampleAnalyze reproduces the paper's fig. 5: the loop
//
//	DO I / DO J:  Y(I) += (A(I,J)+B(J,I)+B(J,I+1)) * (X(J)+X(J))
//
// gets exactly the tags the paper's trace calls show.
func ExampleAnalyze() {
	p := lang.MustParse(`
program fig5
array A(100, 100)
array B(100, 101)
array X(100)
array Y(100)
do i = 0, 99
  do j = 0, 99
    load Y(i)
    load A(i, j)
    load B(j, i)
    load B(j, i + 1)
    load X(j)
    store Y(i)
  end
end
`)
	tags, err := locality.Analyze(p)
	if err != nil {
		panic(err)
	}
	names := []string{"Y(i) load", "A(i,j)", "B(j,i)", "B(j,i+1)", "X(j)", "Y(i) store"}
	for i, acc := range p.Accesses() {
		t := tags[acc.ID]
		fmt.Printf("%-10s temporal=%v spatial=%v\n", names[i], t.Temporal, t.Spatial)
	}
	// Output:
	// Y(i) load  temporal=true spatial=true
	// A(i,j)     temporal=false spatial=false
	// B(j,i)     temporal=true spatial=false
	// B(j,i+1)   temporal=true spatial=true
	// X(j)       temporal=true spatial=true
	// Y(i) store temporal=true spatial=true
}

// ExampleInsertPrefetches shows the §4.4 software-prefetch pass.
func ExampleInsertPrefetches() {
	p := loopir.NewProgram("stream")
	p.DeclareArray("X", 1000)
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(999),
		loopir.Read("X", loopir.V("i")),
	))
	n, err := locality.InsertPrefetches(p, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d prefetch inserted\n", n)
	fmt.Print(p)
	// Output:
	// 1 prefetch inserted
	// PROGRAM stream
	//   DO i = 0, 999
	//     load  X(i)
	//     prefetch X(i+4)
	//   ENDDO
}
