package locality

import (
	"testing"

	"softcache/internal/loopir"
)

func analyze(t *testing.T, p *loopir.Program) Tagging {
	t.Helper()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	tags, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	return tags
}

// TestPaperFigure5 reproduces the paper's fig. 5 example verbatim:
//
//	DO I=1,N
//	  DO J=1,N
//	    Y(I) = Y(I) + (A(I,J)+B(J,I)+B(J,I+1))*(X(J)+X(J))
//
// with the trace calls tagged (temporal, spatial):
//
//	A(I,J)   (0,0)   B(J,I)  (1,0)   B(J,I+1) (1,1)
//	X(J)     (1,1)   Y(I) load (1,1) Y(I) store (1,1)
func TestPaperFigure5(t *testing.T) {
	const n = 100
	p := loopir.NewProgram("fig5")
	p.DeclareArray("A", n, n)
	p.DeclareArray("B", n, n+1)
	p.DeclareArray("X", n)
	p.DeclareArray("Y", n)

	i, j := loopir.V("i"), loopir.V("j")
	aRef := loopir.Read("A", i, j)
	b0 := loopir.Read("B", j, i)
	b1 := loopir.Read("B", j, loopir.Plus(i, 1))
	x := loopir.Read("X", j)
	yLoad := loopir.Read("Y", i)
	yStore := loopir.Store("Y", i)
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(n-1),
		loopir.Do("j", loopir.C(0), loopir.C(n-1),
			aRef, b0, b1, x, yLoad, yStore,
		),
	))
	tags := analyze(t, p)

	want := map[*loopir.Access]loopir.Tags{
		aRef:   {Temporal: false, Spatial: false},
		b0:     {Temporal: true, Spatial: false},
		b1:     {Temporal: true, Spatial: true},
		x:      {Temporal: true, Spatial: true},
		yLoad:  {Temporal: true, Spatial: true},
		yStore: {Temporal: true, Spatial: true},
	}
	names := map[*loopir.Access]string{
		aRef: "A(I,J)", b0: "B(J,I)", b1: "B(J,I+1)", x: "X(J)", yLoad: "Y(I) load", yStore: "Y(I) store",
	}
	for acc, w := range want {
		got := tags[acc.ID]
		if got.Temporal != w.Temporal || got.Spatial != w.Spatial {
			t.Errorf("%s: got (%v,%v), want (%v,%v)", names[acc],
				got.Temporal, got.Spatial, w.Temporal, w.Spatial)
		}
	}

	// The §3.2 extension quantifies the spatial extent: the long-vector
	// references ask for the maximum virtual line, the innermost-invariant
	// Y(I) for the minimum.
	if tags[x.ID].VirtualBytes != 256 {
		t.Errorf("X(J) virtual length = %d, want 256", tags[x.ID].VirtualBytes)
	}
	if tags[yLoad.ID].VirtualBytes != 64 {
		t.Errorf("Y(I) virtual length = %d, want 64", tags[yLoad.ID].VirtualBytes)
	}
	if tags[b0.ID].VirtualBytes != 0 {
		t.Errorf("demoted B(J,I) must carry no length hint, got %d", tags[b0.ID].VirtualBytes)
	}
}

// TestSpatialThreshold: the coefficient must be < 4 elements.
func TestSpatialThreshold(t *testing.T) {
	p := loopir.NewProgram("thr")
	p.DeclareArray("A", 1000)
	r3 := loopir.Read("A", loopir.SV(3, "i"))
	r4 := loopir.Read("A", loopir.SV(4, "i"))
	rm3 := loopir.Read("A", loopir.Plus(loopir.SV(-3, "i"), 900))
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(99), r3, r4, rm3))
	tags := analyze(t, p)
	if !tags[r3.ID].Spatial {
		t.Error("stride 3 should be spatial")
	}
	if tags[r4.ID].Spatial {
		t.Error("stride 4 should not be spatial")
	}
	if !tags[rm3.ID].Spatial {
		t.Error("stride -3 should be spatial")
	}
}

// TestStrideZeroIsSpatial: fig. 5 tags Y(I) spatial inside DO J, i.e. a
// coefficient of 0 w.r.t. the innermost loop satisfies "smaller than 4".
func TestStrideZeroIsSpatial(t *testing.T) {
	p := loopir.NewProgram("s0")
	p.DeclareArray("Y", 100)
	y := loopir.Read("Y", loopir.V("i"))
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(9),
		loopir.Do("j", loopir.C(0), loopir.C(9), y)))
	tags := analyze(t, p)
	if !tags[y.ID].Spatial {
		t.Error("innermost-invariant reference should be spatial (fig. 5)")
	}
	if !tags[y.ID].Temporal {
		t.Error("j-invariant reference should be temporal")
	}
}

// TestIndirectNeverTagged: indirection disables both rules.
func TestIndirectNeverTagged(t *testing.T) {
	p := loopir.NewProgram("ind")
	p.DeclareArray("X", 100)
	p.DeclareData("Idx", make([]int, 100))
	x := loopir.Read("X", loopir.Load("Idx", loopir.V("j")))
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(9),
		loopir.Do("j", loopir.C(0), loopir.C(9), x)))
	tags := analyze(t, p)
	if tags[x.ID].Spatial || tags[x.ID].Temporal {
		t.Errorf("indirect reference must stay untagged, got %+v", tags[x.ID])
	}
}

// TestDirectiveOverride: Force wins over the analysis, §4.1.
func TestDirectiveOverride(t *testing.T) {
	p := loopir.NewProgram("dir")
	p.DeclareArray("X", 100)
	p.DeclareData("Idx", make([]int, 100))
	x := loopir.Read("X", loopir.Load("Idx", loopir.V("i"))).WithTags(true, false)
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(9), x))
	tags := analyze(t, p)
	if !tags[x.ID].Temporal || tags[x.ID].Spatial {
		t.Errorf("directive should force (1,0), got %+v", tags[x.ID])
	}
}

// TestCallPoisoning: a CALL anywhere under the innermost enclosing loop
// clears the tags of the body's references (§2.3).
func TestCallPoisoning(t *testing.T) {
	p := loopir.NewProgram("call")
	p.DeclareArray("X", 100)
	x := loopir.Read("X", loopir.V("i"))
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(9),
		&loopir.Call{Name: "sub"},
		x,
	))
	tags := analyze(t, p)
	if tags[x.ID] != (loopir.Tags{}) {
		t.Errorf("poisoned reference must be untagged, got %+v", tags[x.ID])
	}
}

// TestCallPoisoningFromInnerLoop: a call in a nested loop poisons the outer
// body too (the outer body "contains" the call).
func TestCallPoisoningFromInnerLoop(t *testing.T) {
	p := loopir.NewProgram("call2")
	p.DeclareArray("X", 100)
	outer := loopir.Read("X", loopir.V("i"))
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(9),
		outer,
		loopir.Do("j", loopir.C(0), loopir.C(9), &loopir.Call{Name: "sub"}),
	))
	tags := analyze(t, p)
	if tags[outer.ID] != (loopir.Tags{}) {
		t.Errorf("outer body is poisoned by the inner call, got %+v", tags[outer.ID])
	}
}

// TestOutsideLoopUntagged: references outside any loop carry no tags.
func TestOutsideLoopUntagged(t *testing.T) {
	p := loopir.NewProgram("out")
	p.DeclareArray("X", 4)
	x := loopir.Read("X", loopir.C(0))
	p.Add(x)
	tags := analyze(t, p)
	if tags[x.ID] != (loopir.Tags{}) {
		t.Errorf("outside-loop reference must be untagged, got %+v", tags[x.ID])
	}
}

// TestBoundsClosureBlocksFalseTemporal: in blocked MV, A(j2,j1) must NOT be
// temporal across the block loop jb, because j2's range depends on jb.
func TestBoundsClosureBlocksFalseTemporal(t *testing.T) {
	const n, b = 100, 10
	p := loopir.NewProgram("blocked")
	p.DeclareArray("A", n, n)
	p.DeclareArray("X", n)
	a := loopir.Read("A", loopir.V("j2"), loopir.V("j1"))
	x := loopir.Read("X", loopir.V("j2"))
	p.Add(loopir.DoStep("jb", loopir.C(0), loopir.C(n-1), b,
		loopir.Do("j1", loopir.C(0), loopir.C(n-1),
			loopir.Do("j2", loopir.V("jb"), loopir.Plus(loopir.V("jb"), b-1),
				a, x,
			),
		),
	))
	tags := analyze(t, p)
	if tags[a.ID].Temporal {
		t.Error("A(j2,j1) must not be temporal: j2's range depends on jb")
	}
	if !tags[x.ID].Temporal {
		t.Error("X(j2) is temporal: it is reused across j1, whose bounds are independent")
	}
}

// TestDataDependentBoundsBlockTemporal: CSR-style bounds (indirect through
// a row-pointer array indexed by the outer variable) also join the closure.
func TestDataDependentBoundsBlockTemporal(t *testing.T) {
	p := loopir.NewProgram("csr")
	p.DeclareArray("A", 100)
	p.DeclareData("D", []int{0, 50, 100})
	a := loopir.Read("A", loopir.V("j2"))
	p.Add(loopir.Do("j1", loopir.C(0), loopir.C(1),
		loopir.Do("j2",
			loopir.Load("D", loopir.V("j1")),
			loopir.Plus(loopir.Load("D", loopir.Plus(loopir.V("j1"), 1)), -1),
			a,
		),
	))
	tags := analyze(t, p)
	if tags[a.ID].Temporal {
		t.Error("A(j2) must not be temporal: j2's CSR range depends on j1")
	}
}

// TestOpaqueDriverLoopGivesNoReuse: Driver loops are invisible to the
// analysis (per-subroutine instrumentation), so they contribute no
// self-dependence.
func TestOpaqueDriverLoopGivesNoReuse(t *testing.T) {
	p := loopir.NewProgram("drv")
	p.DeclareArray("X", 100)
	x := loopir.Read("X", loopir.V("i"))
	p.Add(loopir.Driver("t", loopir.C(0), loopir.C(9),
		loopir.Do("i", loopir.C(0), loopir.C(9), x)))
	tags := analyze(t, p)
	if tags[x.ID].Temporal {
		t.Error("reuse across an opaque driver loop must not produce a temporal tag")
	}
	if !tags[x.ID].Spatial {
		t.Error("the inner stride-1 access is still spatial")
	}
}

// TestGroupSpatialLeader: fig. 5's asymmetry — B(J,I) loses the spatial tag
// to the leader B(J,I+1); equal constants (the Y(I) read/write pair) all
// keep it.
func TestGroupSpatialLeader(t *testing.T) {
	p := loopir.NewProgram("leader")
	p.DeclareArray("Z", 200)
	lag := loopir.Read("Z", loopir.V("k"))
	lead := loopir.Read("Z", loopir.Plus(loopir.V("k"), 1))
	p.Add(loopir.Do("k", loopir.C(0), loopir.C(99), lag, lead))
	tags := analyze(t, p)
	if tags[lag.ID].Spatial {
		t.Error("trailing group member should lose the spatial tag")
	}
	if !tags[lead.ID].Spatial {
		t.Error("leading group member keeps the spatial tag")
	}
	if !tags[lag.ID].Temporal || !tags[lead.ID].Temporal {
		t.Error("both group members are temporal")
	}
}

// TestSummarize counts sites.
func TestSummarize(t *testing.T) {
	s := Summarize(Tagging{
		1: {Temporal: true},
		2: {Spatial: true},
		3: {Temporal: true, Spatial: true},
		4: {},
	})
	if s.Sites != 4 || s.TemporalSites != 2 || s.SpatialSites != 2 {
		t.Fatalf("summary = %+v", s)
	}
}
