package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"softcache/internal/serve"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// TestStreamPassThrough drives a streamed trace body through the router:
// the response must match a direct shard hit byte for byte, the request
// must land on the key's home shard (no Degraded header), and repeated
// uploads of the same trace must stick to one replica.
func TestStreamPassThrough(t *testing.T) {
	fleet := newFleet(t, 3)
	urls := make([]string, len(fleet))
	for i, s := range fleet {
		urls[i] = s.URL
	}
	rt, ts := newTestRouter(t, Config{Shards: urls})

	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sctz bytes.Buffer
	if err := trace.WriteSCTZ(&sctz, tr); err != nil {
		t.Fatal(err)
	}

	postStream := func(base string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/v1/simulate/trace?config=soft", "application/octet-stream",
			bytes.NewReader(sctz.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	direct, directBody := postStream(fleet[0].URL)
	if direct.StatusCode != http.StatusOK {
		t.Fatalf("direct shard: status %d: %s", direct.StatusCode, directBody)
	}

	var shard string
	for i := 0; i < 3; i++ {
		resp, body := postStream(ts.URL)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("routed stream %d: status %d: %s", i, resp.StatusCode, body)
		}
		if !bytes.Equal(body, directBody) {
			t.Fatalf("routed response differs from direct:\nrouted: %s\ndirect: %s", body, directBody)
		}
		if resp.Header.Get(DegradedHeader) != "" {
			t.Fatalf("routed stream %d marked degraded with a healthy fleet", i)
		}
		got := resp.Header.Get("X-Softcache-Shard")
		if got == "" {
			t.Fatalf("routed stream %d carries no shard header", i)
		}
		if shard == "" {
			shard = got
		} else if got != shard {
			t.Fatalf("same trace routed to %s then %s", shard, got)
		}
	}
	var r SimulateResponse
	if err := json.Unmarshal(directBody, &r); err != nil {
		t.Fatal(err)
	}

	if n := rt.met.streamed.Load(); n != 3 {
		t.Fatalf("streamed counter = %d, want 3", n)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mbuf bytes.Buffer
	mbuf.ReadFrom(mresp.Body)
	if !strings.Contains(mbuf.String(), "softcache_router_streamed_total 3") {
		t.Fatalf("metrics missing streamed counter:\n%s", mbuf.String())
	}
}

// SimulateResponse mirrors the shard's response shape for decoding in
// tests (the cluster package does not import serve's response types to
// keep the proxy format-agnostic).
type SimulateResponse struct {
	Trace      string            `json:"trace"`
	References uint64            `json:"references"`
	Results    []json.RawMessage `json:"results"`
}

// TestStreamFailover checks that with the home shard's breaker tripped,
// a streamed request lands on the next ring replica and is marked
// degraded rather than refused.
func TestStreamFailover(t *testing.T) {
	fleet := newFleet(t, 2)
	urls := []string{fleet[0].URL, fleet[1].URL}
	rt, ts := newTestRouter(t, Config{Shards: urls, Fall: 1})

	tr, err := workloads.Trace("MV", workloads.ScaleTest, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sctz bytes.Buffer
	if err := trace.WriteSCTZ(&sctz, tr); err != nil {
		t.Fatal(err)
	}
	key := serve.StreamRoutingKey(sctz.Bytes())
	owner := rt.ring.Order(key)[0]

	// Trip the home shard's breaker directly.
	rt.states[owner].br.Failure()

	resp, err := http.Post(ts.URL+"/v1/simulate/trace?config=soft", "application/octet-stream",
		bytes.NewReader(sctz.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover stream: status %d: %s", resp.StatusCode, buf.Bytes())
	}
	if resp.Header.Get(DegradedHeader) == "" {
		t.Fatal("failover response not marked degraded")
	}
}
