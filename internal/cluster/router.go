package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"softcache/internal/serve"
)

// DegradedHeader marks a response served off the key's home shard: the
// trace is (or will become) resident on a different replica than the
// ring assigns, so the client paid — or a later request may pay — a cold
// decode. Routing is degraded, the answer itself is byte-identical.
const DegradedHeader = "X-Softcache-Degraded"

// maxTrackedKeys bounds the router's routing-key residency map; beyond
// it new keys go untracked (the gauge undercounts rather than the map
// growing without bound).
const maxTrackedKeys = 4096

// Config sizes the router. The zero value is not usable: Shards is
// required. Every other field has a default chosen for a small fleet on
// one rack.
type Config struct {
	// Shards is the fleet: base URLs of softcache-served replicas
	// ("http://host:port"; a bare host:port gets http://). Required.
	Shards []string
	// VNodes is the virtual-node count per shard on the hash ring
	// (default 64).
	VNodes int
	// ProbeInterval spaces active /healthz probes (default 2s; negative
	// disables probing — request outcomes alone drive the breakers).
	// ProbeTimeout bounds one probe (default 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// Rise and Fall are the breaker thresholds: consecutive successes to
	// close a half-open circuit (default 2) and consecutive failures to
	// trip a closed one (default 3). Cooldown holds a tripped circuit
	// open before trial traffic (default 5s).
	Rise, Fall int
	Cooldown   time.Duration
	// MaxAttempts bounds the attempts for one request, first try
	// included (default 2x the fleet size: every failover path gets a
	// chance, wrapped once).
	MaxAttempts int
	// RetryBackoff is the base sleep before retry n, scaled linearly
	// (default 25ms; negative disables backoff).
	RetryBackoff time.Duration
	// RetryBudgetRatio tokens are deposited per incoming request, up to
	// RetryBudgetBurst; each retry or hedge withdraws one (defaults 0.1
	// and 10 — a sick fleet gets ~10% amplification, not N x).
	RetryBudgetRatio float64
	RetryBudgetBurst float64
	// HedgeAfter races a second replica when the first has not answered
	// within this duration, cancelling the loser (0 disables).
	HedgeAfter time.Duration
	// MaxBodyBytes caps one proxied request body (default
	// serve.MaxBodyBytes); MaxResponseBytes caps one buffered shard
	// response (default 64 MiB). Responses are buffered whole so a shard
	// dying mid-write is a retryable failure, never a truncated client
	// response.
	MaxBodyBytes     int64
	MaxResponseBytes int64
	// Transport overrides the outbound http.RoundTripper (tests inject
	// fault transports); nil uses http.DefaultTransport.
	Transport http.RoundTripper
	// Log receives routing failures; nil discards them.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.VNodes < 1 {
		c.VNodes = 64
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 2 * len(c.Shards)
		if c.MaxAttempts < 2 {
			c.MaxAttempts = 2
		}
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = serve.MaxBodyBytes
	}
	if c.MaxResponseBytes <= 0 {
		c.MaxResponseBytes = 64 << 20
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// shardState is the router's view of one replica.
type shardState struct {
	url      string
	br       *breaker
	probeOK  atomic.Bool   // last active probe outcome
	failures atomic.Uint64 // failed attempts against this shard
}

// Router consistent-hash shards simulate/sweep requests across a fleet
// of softcache-served replicas, with health-gated failover, bounded
// retries, optional hedging, and its own /metrics. Create with New,
// mount on an http.Server, and Close when done (stops the prober).
type Router struct {
	cfg    Config
	ring   *Ring
	states map[string]*shardState // immutable after New
	met    *routerMetrics
	budget *retryBudget
	client *http.Client
	mux    *http.ServeMux

	stopProbe context.CancelFunc
	probeDone chan struct{}

	mu   sync.Mutex
	keys map[string]string // guarded by mu; routing key -> home shard
}

// New builds and starts a Router (the health prober begins immediately
// unless ProbeInterval is negative).
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	rt := &Router{
		cfg:    cfg,
		ring:   NewRing(cfg.VNodes),
		states: make(map[string]*shardState, len(cfg.Shards)),
		met:    &routerMetrics{},
		budget: newRetryBudget(cfg.RetryBudgetRatio, cfg.RetryBudgetBurst),
		client: &http.Client{Transport: transport},
		mux:    http.NewServeMux(),
		keys:   make(map[string]string),
	}
	for _, s := range cfg.Shards {
		u, err := normalizeShard(s)
		if err != nil {
			return nil, err
		}
		if _, dup := rt.states[u]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard %s", u)
		}
		st := &shardState{url: u, br: newBreaker(cfg.Rise, cfg.Fall, cfg.Cooldown)}
		// Optimistic until the first probe or request says otherwise.
		st.probeOK.Store(true)
		rt.states[u] = st
		rt.ring.Add(u)
	}

	rt.mux.HandleFunc("POST /v1/simulate", rt.handleProxy)
	rt.mux.HandleFunc("POST /v1/simulate/trace", rt.handleProxyStream)
	rt.mux.HandleFunc("POST /v1/sweep", rt.handleProxy)
	rt.mux.HandleFunc("GET /v1/workloads", rt.handleProxy)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)

	rt.probeDone = make(chan struct{})
	pctx, cancel := context.WithCancel(context.Background())
	rt.stopProbe = cancel
	if cfg.ProbeInterval > 0 {
		go rt.probeLoop(pctx)
	} else {
		close(rt.probeDone)
	}
	return rt, nil
}

// normalizeShard validates one shard URL, defaulting the scheme to http
// and trimming a trailing slash.
func normalizeShard(s string) (string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", fmt.Errorf("cluster: empty shard address")
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", fmt.Errorf("cluster: shard %q: %w", s, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("cluster: shard %q: unsupported scheme %q", s, u.Scheme)
	}
	if u.Hostname() == "" {
		return "", fmt.Errorf("cluster: shard %q has no host", s)
	}
	return u.Scheme + "://" + u.Host, nil
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Close stops the health prober and waits for it to exit. In-flight
// proxied requests are unaffected (their contexts belong to the
// clients).
func (rt *Router) Close() {
	rt.stopProbe()
	<-rt.probeDone
}

// writeError mirrors the shards' JSON error body shape.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// routingKey derives the consistent-hash key for a request: the trace
// identity (the same key the shards' trace caches use, i.e. what
// trace.Fingerprint pins) for simulate/sweep bodies, a content hash for
// bodies whose selector does not resolve (the shard still owns the
// authoritative 400), and the path for body-less GETs.
func routingKey(method string, path string, body []byte) string {
	if method == http.MethodGet || len(body) == 0 {
		return "path:" + path
	}
	if key, err := serve.RoutingKey(body); err == nil {
		return key
	}
	sum := sha256.Sum256(body)
	return fmt.Sprintf("body:%x", sum[:12])
}

// recordKey notes which shard owns a routing key (for the residency
// gauge), bounded by maxTrackedKeys.
func (rt *Router) recordKey(key, owner string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, known := rt.keys[key]; !known && len(rt.keys) >= maxTrackedKeys {
		return
	}
	rt.keys[key] = owner
}

// keyCounts snapshots the tracked keys per owning shard.
func (rt *Router) keyCounts() map[string]int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	counts := make(map[string]int, len(rt.states))
	for _, owner := range rt.keys {
		counts[owner]++
	}
	return counts
}

// shardResponse is one fully buffered shard reply: buffering whole means
// a backend dying mid-body is an attempt failure the router can retry,
// never a truncated client response.
type shardResponse struct {
	status int
	header http.Header
	body   []byte
}

// retryable reports whether an attempt outcome should fail over to the
// next replica: transport errors (connection refused/reset, truncated
// body) and 5xx do; every 2xx-4xx — including a shard's 429
// backpressure, which the router must relay, not amplify — does not.
func retryable(resp *shardResponse, err error) bool {
	return err != nil || resp.status >= 500
}

// attempt sends the request to one shard and buffers the response.
func (rt *Router) attempt(ctx context.Context, shard, method, uri string, header http.Header, body []byte) (*shardResponse, error) {
	req, err := http.NewRequestWithContext(ctx, method, shard+uri, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxResponseBytes+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > rt.cfg.MaxResponseBytes {
		return nil, fmt.Errorf("cluster: shard response exceeds %d bytes", rt.cfg.MaxResponseBytes)
	}
	return &shardResponse{status: resp.StatusCode, header: resp.Header.Clone(), body: data}, nil
}

// observe feeds one attempt outcome into the shard's breaker and
// failure counter. Cancelled losers of a hedge race are never observed.
func (rt *Router) observe(shard string, ok bool) {
	st := rt.states[shard]
	if ok {
		st.br.Success()
	} else {
		st.br.Failure()
		st.failures.Add(1)
	}
}

// raceOutcome is one attempt's result during the first (possibly
// hedged) stage.
type raceOutcome struct {
	shard string
	resp  *shardResponse
	err   error
	hedge bool
}

// race runs the primary attempt and, if it has not answered within
// HedgeAfter, launches a budget-gated hedge against secondary. The
// first usable response wins and the loser's context is cancelled; when
// every launched attempt fails, the last failure is returned. tried
// reports how many attempts launched (1 or 2).
func (rt *Router) race(ctx context.Context, primary, secondary, method, uri string, header http.Header, body []byte) (out raceOutcome, tried int) {
	ch := make(chan raceOutcome, 2)
	// Both attempt contexts are cancelled on every exit path: the loser
	// of a won race is cut off here, and its goroutine's pending send
	// lands in the buffered channel, so nothing leaks.
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	pctx, pcancel := context.WithCancel(ctx)
	cancels = append(cancels, pcancel)
	go func() {
		resp, err := rt.attempt(pctx, primary, method, uri, header, body)
		ch <- raceOutcome{shard: primary, resp: resp, err: err}
	}()
	tried = 1

	timer := time.NewTimer(rt.cfg.HedgeAfter)
	defer timer.Stop()

	hedged := false
	pending := 1
	var last raceOutcome
	for pending > 0 {
		select {
		case o := <-ch:
			pending--
			if !retryable(o.resp, o.err) {
				rt.observe(o.shard, true)
				if hedged {
					if o.hedge {
						rt.met.hedgeWins.Add(1)
					} else {
						rt.met.hedgeLosses.Add(1)
					}
				}
				return o, tried
			}
			rt.observe(o.shard, false)
			last = o
		case <-timer.C:
			if hedged || secondary == "" {
				continue
			}
			hedged = true
			if !rt.budget.Withdraw() {
				rt.met.budgetExhausted.Add(1)
				continue
			}
			rt.met.hedges.Add(1)
			tried = 2
			pending++
			sctx, scancel := context.WithCancel(ctx)
			cancels = append(cancels, scancel)
			go func() {
				resp, err := rt.attempt(sctx, secondary, method, uri, header, body)
				ch <- raceOutcome{shard: secondary, resp: resp, err: err, hedge: true}
			}()
		}
	}
	return last, tried
}

// backoff sleeps before retry n (1-based), scaled linearly off the base,
// honouring ctx. Reports false when the client went away.
func (rt *Router) backoff(ctx context.Context, n int) bool {
	if rt.cfg.RetryBackoff <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(time.Duration(n) * rt.cfg.RetryBackoff)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// handleProxy is the routed path: derive the key, walk the ring's
// preference order with breaker gating, retry under the budget, hedge
// the first attempt when configured, and relay the first usable
// response whole.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	rt.met.requests.Add(1)
	rt.budget.Deposit()

	var body []byte
	if r.Method != http.MethodGet {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("request body exceeds %d bytes", rt.cfg.MaxBodyBytes))
			} else {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
			}
			return
		}
	}

	key := routingKey(r.Method, r.URL.Path, body)
	order := rt.ring.Order(key)
	if len(order) == 0 {
		rt.met.errors.Add(1)
		writeError(w, http.StatusBadGateway, "no shards configured")
		return
	}
	owner := order[0]
	rt.recordKey(key, owner)

	// Preference order: breaker-allowed shards first (ring order), then —
	// as a last resort when everything looks down — the tripped ones
	// anyway: trying a probably-dead shard beats refusing outright, and
	// the retry budget bounds the damage.
	allowed := make([]string, 0, len(order))
	denied := make([]string, 0, len(order))
	for _, s := range order {
		if rt.states[s].br.Allow() {
			allowed = append(allowed, s)
		} else {
			denied = append(denied, s)
		}
	}
	seq := append(allowed, denied...)
	uri := r.URL.RequestURI()

	// The sequence wraps: with MaxAttempts above the fleet size (the
	// default is 2x), a request that failed once on every replica gets a
	// second pass — transient faults rarely strike the same shard twice.
	attempts, i := 0, 0
	var last raceOutcome
	for attempts < rt.cfg.MaxAttempts {
		var out raceOutcome
		tried := 1
		if attempts == 0 {
			if rt.cfg.HedgeAfter > 0 && len(seq) > 1 {
				out, tried = rt.race(r.Context(), seq[0], seq[1], r.Method, uri, r.Header, body)
			} else {
				resp, err := rt.attempt(r.Context(), seq[0], r.Method, uri, r.Header, body)
				out = raceOutcome{shard: seq[0], resp: resp, err: err}
				rt.observe(out.shard, !retryable(resp, err))
			}
		} else {
			if !rt.budget.Withdraw() {
				rt.met.budgetExhausted.Add(1)
				break
			}
			rt.met.retries.Add(1)
			if !rt.backoff(r.Context(), attempts) {
				return // client went away mid-backoff
			}
			shard := seq[i%len(seq)]
			resp, err := rt.attempt(r.Context(), shard, r.Method, uri, r.Header, body)
			out = raceOutcome{shard: shard, resp: resp, err: err}
			rt.observe(out.shard, !retryable(resp, err))
		}
		attempts += tried
		i += tried
		if !retryable(out.resp, out.err) {
			rt.relay(w, out, owner)
			return
		}
		last = out
		if r.Context().Err() != nil {
			return // client went away; don't burn budget on its behalf
		}
	}

	rt.met.errors.Add(1)
	msg := "all shard attempts failed"
	if last.err != nil {
		msg = fmt.Sprintf("%s; last error from %s: %v", msg, last.shard, last.err)
	} else if last.resp != nil {
		msg = fmt.Sprintf("%s; last status from %s: %d", msg, last.shard, last.resp.status)
	}
	fmt.Fprintf(rt.cfg.Log, "cluster: %s %s key=%s: %s\n", r.Method, r.URL.Path, key, msg)
	writeError(w, http.StatusBadGateway, msg)
}

// handleProxyStream routes one streamed trace-simulate request
// (POST /v1/simulate/trace). The body can be larger than any buffer the
// router is willing to hold, so the buffered retry/hedge machinery of
// handleProxy does not apply: the router reads just enough of the body
// to fingerprint it (serve.StreamRoutingKey over a bounded prefix),
// picks the first breaker-admitted shard in ring order, and pipes
// prefix+rest through to it in one unrepeatable attempt. A mid-stream
// shard death is the client's error to retry — the router cannot replay
// bytes it never stored.
func (rt *Router) handleProxyStream(w http.ResponseWriter, r *http.Request) {
	rt.met.requests.Add(1)
	rt.met.streamed.Add(1)
	rt.budget.Deposit()

	prefix := make([]byte, serve.StreamKeyPrefix)
	n, err := io.ReadFull(r.Body, prefix)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	prefix = prefix[:n]

	key := serve.StreamRoutingKey(prefix)
	order := rt.ring.Order(key)
	if len(order) == 0 {
		rt.met.errors.Add(1)
		writeError(w, http.StatusBadGateway, "no shards configured")
		return
	}
	owner := order[0]
	rt.recordKey(key, owner)
	shard := owner
	for _, s := range order {
		if rt.states[s].br.Allow() {
			shard = s
			break
		}
	}

	body := io.MultiReader(bytes.NewReader(prefix), r.Body)
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, shard+r.URL.RequestURI(), body)
	if err != nil {
		rt.met.errors.Add(1)
		writeError(w, http.StatusBadGateway, fmt.Sprintf("building shard request: %v", err))
		return
	}
	// The prefix was consumed from r.Body, so the stitched body's length
	// is exactly the client's Content-Length (or unknown for chunked
	// uploads, which the shard accepts just as well).
	req.ContentLength = r.ContentLength
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.observe(shard, false)
		rt.met.errors.Add(1)
		fmt.Fprintf(rt.cfg.Log, "cluster: %s %s key=%s: stream attempt to %s: %v\n",
			r.Method, r.URL.Path, key, shard, err)
		writeError(w, http.StatusBadGateway, fmt.Sprintf("stream attempt to %s failed: %v", shard, err))
		return
	}
	defer resp.Body.Close()
	rt.observe(shard, resp.StatusCode < 500)

	h := w.Header()
	for _, k := range relayHeaders {
		if v := resp.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	rt.countResult(resp.Header.Get(serve.ResultHeader))
	if shard != owner {
		h.Set(DegradedHeader, "rerouted")
		rt.met.rerouted.Add(1)
	}
	w.WriteHeader(resp.StatusCode)
	// The response streams too: a shard dying mid-reply truncates the
	// client's body, which is the honest outcome for an unrepeatable
	// request.
	io.Copy(w, resp.Body)
}

// relayHeaders are the shard response headers the router forwards to the
// client: content metadata, backpressure hints, and the cache-identity
// pair (which shard answered, whether its result cache hit, and — for
// streams — the upload's content fingerprint) that makes fleet-level
// cache behaviour observable end to end.
var relayHeaders = []string{
	"Content-Type", "Retry-After", "X-Softcache-Shard",
	serve.ResultHeader, serve.TraceFingerprintHeader,
}

// countResult tallies relayed result-cache outcomes so the router's
// /metrics shows fleet-level hit traffic without scraping every shard.
func (rt *Router) countResult(outcome string) {
	switch outcome {
	case "hit":
		rt.met.resultHits.Add(1)
	case "miss":
		rt.met.resultMisses.Add(1)
	}
}

// relay writes one buffered shard response to the client, marking it
// degraded when it was served off the key's home shard.
func (rt *Router) relay(w http.ResponseWriter, out raceOutcome, owner string) {
	h := w.Header()
	for _, k := range relayHeaders {
		if v := out.resp.header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	rt.countResult(out.resp.header.Get(serve.ResultHeader))
	if out.shard != owner {
		h.Set(DegradedHeader, "rerouted")
		rt.met.rerouted.Add(1)
	}
	h.Set("Content-Length", strconv.Itoa(len(out.resp.body)))
	w.WriteHeader(out.resp.status)
	w.Write(out.resp.body)
}

// handleHealthz reports the router live when at least one shard's
// breaker admits traffic.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, st := range rt.states {
		if st.br.Allow() {
			io.WriteString(w, "ok\n")
			return
		}
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	io.WriteString(w, "no live shards\n")
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.writeMetrics(w)
}

// probeLoop drives the active health checks: one immediate round, then
// one per ProbeInterval until Close.
func (rt *Router) probeLoop(ctx context.Context) {
	defer close(rt.probeDone)
	rt.probeAll(ctx)
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.probeAll(ctx)
		}
	}
}

// probeAll probes every shard concurrently and feeds the breakers.
func (rt *Router) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, st := range rt.states {
		wg.Add(1)
		go func(st *shardState) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
			defer cancel()
			ok := rt.probe(pctx, st.url)
			st.probeOK.Store(ok)
			if ok {
				st.br.Success()
			} else if ctx.Err() == nil { // shutdown is not a shard failure
				st.br.Failure()
			}
		}(st)
	}
	wg.Wait()
}

// probe is one active /healthz check.
func (rt *Router) probe(ctx context.Context, shard string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, shard+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}
