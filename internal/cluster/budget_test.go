package cluster

import "testing"

func TestRetryBudgetStartsFull(t *testing.T) {
	b := newRetryBudget(0.1, 5)
	for i := 0; i < 5; i++ {
		if !b.Withdraw() {
			t.Fatalf("withdraw %d denied from a full burst-5 budget", i+1)
		}
	}
	if b.Withdraw() {
		t.Fatal("withdraw allowed past the burst")
	}
	if b.Exhausted() != 1 {
		t.Fatalf("exhausted=%d, want 1", b.Exhausted())
	}
}

func TestRetryBudgetDepositRatio(t *testing.T) {
	b := newRetryBudget(0.5, 10)
	for b.Withdraw() {
	}
	// Two deposits at ratio 0.5 buy exactly one retry.
	b.Deposit()
	if b.Withdraw() {
		t.Fatal("half a token should not cover a withdrawal")
	}
	b.Deposit()
	if !b.Withdraw() {
		t.Fatal("two 0.5 deposits should cover one withdrawal")
	}
}

func TestRetryBudgetBurstCap(t *testing.T) {
	b := newRetryBudget(1, 3)
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	got := 0
	for b.Withdraw() {
		got++
	}
	if got != 3 {
		t.Fatalf("drained %d tokens, want burst cap 3", got)
	}
}

func TestRetryBudgetDefaults(t *testing.T) {
	b := newRetryBudget(0, 0)
	if b.ratio != 0.1 || b.burst != 10 {
		t.Fatalf("defaults ratio=%g burst=%g, want 0.1/10", b.ratio, b.burst)
	}
}
