package cluster

import (
	"fmt"
	"testing"
)

// testKeys generates n distinct routing keys shaped like the serve trace
// cache's workload keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("workload:MV:test:%d", i)
	}
	return keys
}

func TestRingOwnerStable(t *testing.T) {
	r := NewRing(64)
	r.Add("a", "b", "c")
	for _, k := range testKeys(100) {
		if r.Owner(k) != r.Owner(k) {
			t.Fatalf("owner of %q not stable", k)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(64)
	shards := []string{"s1", "s2", "s3", "s4"}
	r.Add(shards...)
	counts := make(map[string]int)
	n := 4000
	for _, k := range testKeys(n) {
		counts[r.Owner(k)]++
	}
	if len(counts) != len(shards) {
		t.Fatalf("only %d of %d shards own keys: %v", len(counts), len(shards), counts)
	}
	// With 64 vnodes the split should be within a factor of two of even.
	for s, c := range counts {
		if c < n/len(shards)/2 || c > n/len(shards)*2 {
			t.Errorf("shard %s owns %d of %d keys, want near %d", s, c, n, n/len(shards))
		}
	}
}

// TestRingRemoveMovesOnlyDepartedKeys pins the consistent-hashing
// property the router's cache-residency story depends on: removing a
// shard relocates only the keys it owned.
func TestRingRemoveMovesOnlyDepartedKeys(t *testing.T) {
	r := NewRing(64)
	r.Add("s1", "s2", "s3")
	keys := testKeys(1000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Remove("s2")
	for _, k := range keys {
		after := r.Owner(k)
		if after == "s2" {
			t.Fatalf("key %q still owned by removed shard", k)
		}
		if before[k] != "s2" && after != before[k] {
			t.Fatalf("key %q moved %s -> %s though its owner stayed in the ring", k, before[k], after)
		}
	}
}

// TestRingAddMovesKeysOnlyToNewShard: joining a shard may claim keys,
// but every key that moves must move to the joiner.
func TestRingAddMovesKeysOnlyToNewShard(t *testing.T) {
	r := NewRing(64)
	r.Add("s1", "s2", "s3")
	keys := testKeys(1000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Add("s4")
	moved := 0
	for _, k := range keys {
		after := r.Owner(k)
		if after != before[k] {
			moved++
			if after != "s4" {
				t.Fatalf("key %q moved %s -> %s, not to the joining shard", k, before[k], after)
			}
		}
	}
	if moved == 0 {
		t.Fatal("joining shard claimed no keys")
	}
	if moved > len(keys)/2 {
		t.Fatalf("joining shard claimed %d of %d keys, far above the ~1/4 consistent hashing promises", moved, len(keys))
	}
}

func TestRingOrder(t *testing.T) {
	r := NewRing(64)
	r.Add("s1", "s2", "s3")
	for _, k := range testKeys(50) {
		order := r.Order(k)
		if len(order) != 3 {
			t.Fatalf("order for %q lists %d shards, want 3: %v", k, len(order), order)
		}
		if order[0] != r.Owner(k) {
			t.Fatalf("order[0]=%s but owner=%s", order[0], r.Owner(k))
		}
		seen := make(map[string]bool)
		for _, s := range order {
			if seen[s] {
				t.Fatalf("order for %q repeats %s: %v", k, s, order)
			}
			seen[s] = true
		}
	}
}

func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(0) // 0 -> default vnodes
	if r.Owner("k") != "" || r.Order("k") != nil || r.Len() != 0 {
		t.Fatal("empty ring should own nothing")
	}
	r.Add("s1")
	r.Add("s1") // idempotent
	r.Add("")   // ignored
	if r.Len() != 1 {
		t.Fatalf("Len=%d after duplicate add, want 1", r.Len())
	}
	r.Remove("missing") // no-op
	r.Remove("s1")
	if r.Len() != 0 || r.Owner("k") != "" {
		t.Fatal("ring not empty after removing the only shard")
	}
}
