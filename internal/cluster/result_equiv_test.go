package cluster

// Cluster-side of the result-cache equivalence suite: the router must
// relay the X-Softcache-Result and X-Softcache-Trace-Fingerprint stamps
// end to end, tally fleet-level hit/miss traffic, and — the headline —
// keep serving byte-identical answers when a shard dies (failover
// recomputes on the survivor, then hits its cache) or restarts (the cold
// process answers from its durable log without a single trace decode).

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"softcache/internal/resultcache"
	"softcache/internal/serve"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// newCachedShard builds one serve daemon backed by a durable result
// cache over dir. The cache is closed on cleanup, after the servers.
func newCachedShard(t *testing.T, id, dir string) (*serve.Server, *resultcache.Cache) {
	t.Helper()
	rc, err := resultcache.Open(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	return serve.New(serve.Config{ShardID: id, ResultCache: rc, Log: io.Discard}), rc
}

// newCachedFleet starts n cached shards on their own temp directories.
func newCachedFleet(t *testing.T, n int) ([]*httptest.Server, []*resultcache.Cache) {
	t.Helper()
	fleet := make([]*httptest.Server, n)
	caches := make([]*resultcache.Cache, n)
	for i := range fleet {
		s, rc := newCachedShard(t, "s"+string(rune('0'+i)), t.TempDir())
		fleet[i] = httptest.NewServer(s)
		t.Cleanup(fleet[i].Close)
		caches[i] = rc
	}
	return fleet, caches
}

// streamVia posts raw trace bytes to /v1/simulate/trace via base.
func streamVia(t *testing.T, base, query string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/simulate/trace"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

func flatTraceBytes(t *testing.T) []byte {
	t.Helper()
	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// resultCounters reads the router's fleet-level result-cache tallies.
func resultCounters(t *testing.T, routerURL string) (hits, misses float64) {
	t.Helper()
	m := routerMetricsBody(t, routerURL)
	return metricValue(t, m, "softcache_router_result_hits_total"),
		metricValue(t, m, "softcache_router_result_misses_total")
}

// TestRouterRelaysResultHeaders: a simulate through the router carries
// the shard's result-cache outcome to the client, byte-identical to the
// single-process baseline, and the router's fleet tallies count it.
func TestRouterRelaysResultHeaders(t *testing.T) {
	fleet, _ := newCachedFleet(t, 2)
	_, ts := newTestRouter(t, Config{Shards: shardURLs(fleet), RetryBackoff: -1})

	body := simBody(1)
	want := baseline(t, body)

	code, hdr, got := post(t, ts.URL+"/v1/simulate", body)
	if code != 200 || hdr.Get(serve.ResultHeader) != "miss" {
		t.Fatalf("first request: %d %s=%q", code, serve.ResultHeader, hdr.Get(serve.ResultHeader))
	}
	if !bytes.Equal(got, want) {
		t.Fatal("routed miss is not byte-identical to the baseline")
	}

	code, hdr, got = post(t, ts.URL+"/v1/simulate", body)
	if code != 200 || hdr.Get(serve.ResultHeader) != "hit" {
		t.Fatalf("repeat request: %d %s=%q", code, serve.ResultHeader, hdr.Get(serve.ResultHeader))
	}
	if !bytes.Equal(got, want) {
		t.Fatal("routed hit is not byte-identical to the baseline")
	}

	hits, misses := resultCounters(t, ts.URL)
	if hits != 1 || misses != 1 {
		t.Fatalf("router result tallies = %v hits / %v misses, want 1/1", hits, misses)
	}
}

// TestRouterRelaysStreamFingerprint: the unbuffered stream proxy path
// must relay both the trace fingerprint and the result outcome, and the
// repeat upload must hit without the shard re-decoding.
func TestRouterRelaysStreamFingerprint(t *testing.T) {
	fleet, caches := newCachedFleet(t, 2)
	_, ts := newTestRouter(t, Config{Shards: shardURLs(fleet), RetryBackoff: -1})
	flat := flatTraceBytes(t)

	code, hdr, first := streamVia(t, ts.URL, "?config=soft", flat)
	if code != 200 || hdr.Get(serve.ResultHeader) != "miss" {
		t.Fatalf("first stream: %d %s=%q: %s", code, serve.ResultHeader, hdr.Get(serve.ResultHeader), first)
	}
	fp := hdr.Get(serve.TraceFingerprintHeader)
	if len(fp) != 64 {
		t.Fatalf("fingerprint %q is not 64 hex chars", fp)
	}

	code, hdr, second := streamVia(t, ts.URL, "?config=soft", flat)
	if code != 200 || hdr.Get(serve.ResultHeader) != "hit" {
		t.Fatalf("repeat stream: %d %s=%q", code, serve.ResultHeader, hdr.Get(serve.ResultHeader))
	}
	if hdr.Get(serve.TraceFingerprintHeader) != fp {
		t.Fatalf("fingerprint changed across identical uploads: %q vs %q", hdr.Get(serve.TraceFingerprintHeader), fp)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("stream hit bytes differ from miss bytes")
	}

	hits, misses := resultCounters(t, ts.URL)
	if hits != 1 || misses != 1 {
		t.Fatalf("router result tallies = %v hits / %v misses, want 1/1", hits, misses)
	}
	var totalHits uint64
	for _, rc := range caches {
		totalHits += rc.Stats().Hits
	}
	if totalHits != 1 {
		t.Fatalf("fleet result caches report %d hits, want 1", totalHits)
	}
}

// TestFailoverServesFromSurvivorResultCache is the cluster headline:
// kill the home shard and the rerouted request recomputes on the
// survivor (miss, degraded), whose durable cache then answers the next
// repeat (hit, degraded) — every response byte-identical to baseline.
func TestFailoverServesFromSurvivorResultCache(t *testing.T) {
	fleet, caches := newCachedFleet(t, 2)
	rt, ts := newTestRouter(t, Config{Shards: shardURLs(fleet), RetryBackoff: -1})

	victim := 0
	victimURL, err := normalizeShard(fleet[victim].URL)
	if err != nil {
		t.Fatal(err)
	}
	seed := seedOwnedBy(t, rt, victimURL)
	body := simBody(seed)
	want := baseline(t, body)

	step := func(label, outcome, degraded string) {
		t.Helper()
		code, hdr, got := post(t, ts.URL+"/v1/simulate", body)
		if code != 200 {
			t.Fatalf("%s: status %d: %s", label, code, got)
		}
		if o := hdr.Get(serve.ResultHeader); o != outcome {
			t.Fatalf("%s: %s = %q, want %q", label, serve.ResultHeader, o, outcome)
		}
		if d := hdr.Get(DegradedHeader); d != degraded {
			t.Fatalf("%s: degraded = %q, want %q", label, d, degraded)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: response diverged from baseline", label)
		}
	}

	step("home miss", "miss", "")
	step("home hit", "hit", "")

	fleet[victim].CloseClientConnections()
	fleet[victim].Close()

	step("survivor miss", "miss", "rerouted")
	step("survivor hit", "hit", "rerouted")

	hits, misses := resultCounters(t, ts.URL)
	if hits != 2 || misses != 2 {
		t.Fatalf("router result tallies = %v hits / %v misses, want 2/2", hits, misses)
	}
	st := caches[1].Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("survivor cache stats = hits %d misses %d stores %d, want 1/1/1", st.Hits, st.Misses, st.Stores)
	}
}

// swapHandler lets a test "restart" a shard in place: the listener (and
// therefore the shard URL the router routes to) stays up while the
// handler behind it is replaced with a fresh process's.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (sh *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sh.mu.Lock()
	h := sh.h
	sh.mu.Unlock()
	h.ServeHTTP(w, r)
}

func (sh *swapHandler) set(h http.Handler) {
	sh.mu.Lock()
	sh.h = h
	sh.mu.Unlock()
}

// TestRestartedShardAnswersFromDisk restarts a shard over its cache
// directory: the cold process must serve the repeat request from the
// durable log — result hit, byte-identical, zero trace decodes.
func TestRestartedShardAnswersFromDisk(t *testing.T) {
	dir := t.TempDir()
	rc1, err := resultcache.Open(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sh := &swapHandler{h: serve.New(serve.Config{ShardID: "s0", ResultCache: rc1, Log: io.Discard})}
	shard := httptest.NewServer(sh)
	t.Cleanup(shard.Close)
	_, ts := newTestRouter(t, Config{Shards: []string{shard.URL}, RetryBackoff: -1})

	body := simBody(7)
	want := baseline(t, body)
	code, hdr, got := post(t, ts.URL+"/v1/simulate", body)
	if code != 200 || hdr.Get(serve.ResultHeader) != "miss" || !bytes.Equal(got, want) {
		t.Fatalf("pre-restart request: %d %s=%q", code, serve.ResultHeader, hdr.Get(serve.ResultHeader))
	}

	// Restart: the old process's cache closes cleanly, a new one opens
	// the same directory.
	if err := rc1.Close(); err != nil {
		t.Fatal(err)
	}
	rc2, err := resultcache.Open(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc2.Close() })
	sh.set(serve.New(serve.Config{ShardID: "s0", ResultCache: rc2, Log: io.Discard}))

	code, hdr, got = post(t, ts.URL+"/v1/simulate", body)
	if code != 200 {
		t.Fatalf("post-restart request: %d %s", code, got)
	}
	if hdr.Get(serve.ResultHeader) != "hit" {
		t.Fatalf("post-restart outcome = %q, want hit", hdr.Get(serve.ResultHeader))
	}
	if hdr.Get(DegradedHeader) != "" {
		t.Fatalf("restart is not a failover: degraded = %q", hdr.Get(DegradedHeader))
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-restart response diverged from baseline")
	}

	// The cold process never touched a trace: the answer came off disk.
	m := shardMetricsBody(t, shard.URL)
	if v := metricValue(t, m, "softcache_trace_decodes_total"); v != 0 {
		t.Fatalf("restarted shard decoded %v traces, want 0", v)
	}
	if v := metricValue(t, m, "softcache_result_cache_hits_total"); v != 1 {
		t.Fatalf("restarted shard result hits = %v, want 1", v)
	}
}

// shardMetricsBody fetches a shard's own /metrics page.
func shardMetricsBody(t *testing.T, shardURL string) []byte {
	t.Helper()
	resp, err := http.Get(shardURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
