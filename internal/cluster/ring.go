// Package cluster turns softcache-served into a fleet: a router/proxy
// that consistent-hash shards simulation requests by trace identity
// across N replica daemons, so each decoded trace is resident on exactly
// one shard's coalescing cache. The router is built to stay up when
// shards do not: active health probes drive a per-shard circuit breaker,
// failed attempts retry against the next ring replica under a global
// retry budget, an optional hedge races a second replica for tail
// latency, and when every preferred replica for a key is down the
// request is rerouted to any live shard with an explicit degraded-mode
// header instead of failing.
//
// The fault paths are exercised, not hoped for: internal/cluster/chaos
// is a deterministic fault-injection proxy (drops, stalls, 5xx bursts,
// partial writes — the wire-level analogue of harness.Corpus's corrupted
// trace vocabulary) that the test suite places between router and shards.
//
// See docs/SERVE.md "Cluster mode" for topology and failure semantics.
package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// ringPoint is one virtual node: a position on the hash circle owned by
// a shard.
type ringPoint struct {
	hash  uint64
	shard string
}

// Ring is a consistent-hash ring with virtual nodes. Keys map to the
// shard owning the first point clockwise of the key's hash; Order walks
// on from there, yielding every shard in failover-preference order.
// Membership changes move only the keys the departed (or arrived) shard
// owns — the property the rebalance tests pin.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	points []ringPoint     // guarded by mu; sorted by hash
	shards map[string]bool // guarded by mu
}

// NewRing builds a ring with the given virtual-node count per shard
// (values below 1 become 64, plenty to keep the key split within a few
// percent of even for small fleets).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, shards: make(map[string]bool)}
}

// fnv1a is the ring's hash — the same function trace.Fingerprint uses,
// so the whole stack keys identity the same way. The finalizing mix
// matters here in a way it does not for fingerprints: ring positions
// come from short, near-identical labels ("shard#0", "shard#1", ...),
// and raw FNV leaves their high bits correlated enough to skew the key
// split several-fold. The mix spreads them.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// Add inserts shards (idempotently) and re-sorts the circle.
func (r *Ring) Add(shards ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range shards {
		if s == "" || r.shards[s] {
			continue
		}
		r.shards[s] = true
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: fnv1a(fmt.Sprintf("%s#%d", s, v)), shard: s})
		}
	}
	pts := r.points // local alias: the sort closure runs with mu held
	sort.Slice(pts, func(i, j int) bool { return pts[i].hash < pts[j].hash })
}

// Remove deletes a shard's virtual nodes; keys it owned redistribute to
// their clockwise successors, every other key keeps its owner.
func (r *Ring) Remove(shard string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.shards[shard] {
		return
	}
	delete(r.shards, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Shards returns the current membership in no particular order.
func (r *Ring) Shards() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.shards))
	for s := range r.shards {
		out = append(out, s)
	}
	return out
}

// Len reports the number of member shards.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.shards)
}

// Owner returns the shard owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.searchLocked(key)].shard
}

// Order returns every shard in preference order for key: the owner
// first, then each distinct shard met walking clockwise. This is the
// router's failover sequence — replica i+1 picks up when replica i is
// down, and the order is stable for a fixed membership.
func (r *Ring) Order(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	start := r.searchLocked(key)
	out := make([]string, 0, len(r.shards))
	seen := make(map[string]bool, len(r.shards))
	for i := 0; i < len(r.points) && len(out) < len(r.shards); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// searchLocked finds the index of the first point clockwise of key's
// hash. Caller holds mu.
func (r *Ring) searchLocked(key string) int {
	h := fnv1a(key)
	pts := r.points // local alias: the search closure runs with mu held
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0
	}
	return i
}
