package cluster

import "sync"

// retryBudget is the router's global brake on retry amplification: a
// token bucket where every incoming request deposits Ratio tokens
// (capped at Burst) and every retry or hedge withdraws one. A healthy
// fleet never notices it; a sick fleet sees retries throttled to
// roughly Ratio extra attempts per request instead of multiplying every
// failure by the replica count and melting down. The accounting is
// deliberately time-free so tests are exact.
type retryBudget struct {
	ratio float64
	burst float64

	mu        sync.Mutex
	tokens    float64 // guarded by mu
	exhausted uint64  // guarded by mu; withdrawals denied
}

// newRetryBudget builds a budget that starts full; non-positive
// parameters get the conventional defaults (ratio 0.1, burst 10).
func newRetryBudget(ratio, burst float64) *retryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst < 1 {
		burst = 10
	}
	return &retryBudget{ratio: ratio, burst: burst, tokens: burst}
}

// Deposit credits one incoming request.
func (b *retryBudget) Deposit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Withdraw takes one token for a retry or hedge, reporting whether the
// budget allowed it.
func (b *retryBudget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.exhausted++
		return false
	}
	b.tokens--
	return true
}

// Exhausted reports how many withdrawals the budget denied.
func (b *retryBudget) Exhausted() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.exhausted
}
