package cluster

import (
	"net/http/httptest"
	"testing"
	"time"

	"softcache/internal/cluster/chaos"
)

// TestChaosAcceptance is the robustness acceptance run: a 3-shard fleet
// with a deterministic fault-injection proxy in front of every shard,
// injecting ~20% faults (drops, stalls, 5xx, partial writes) into a
// 200-request stream. The run must complete with zero client-visible
// errors, every response byte-identical to a single-process baseline,
// and the router's /metrics accounting must be consistent with the
// proxies' injected-fault logs.
//
// Determinism: requests are sequential, the breakers are configured not
// to trip and hedging is off, so the shard sequence per request is the
// pure ring order and each proxy sees a reproducible call-index stream —
// the same seed replays the same run, faults and all.
func TestChaosAcceptance(t *testing.T) {
	const (
		numRequests = 200
		numKeys     = 8
		fraction    = 0.2
		chaosSeed   = 7
	)
	fleet := newFleet(t, 3)
	proxies := make([]*chaos.Proxy, len(fleet))
	proxyURLs := make([]string, len(fleet))
	for i, shard := range fleet {
		proxies[i] = chaos.New(shard.URL, chaos.Plan{
			Seed:     chaosSeed + uint64(i),
			Fraction: fraction,
		}, 2*time.Millisecond)
		ts := httptest.NewServer(proxies[i])
		t.Cleanup(ts.Close)
		proxyURLs[i] = ts.URL
	}

	_, ts := newTestRouter(t, Config{
		Shards:           proxyURLs,
		Fall:             1 << 20, // breakers never trip: routing stays deterministic
		MaxAttempts:      6,
		RetryBackoff:     -1,
		RetryBudgetRatio: 1,
		RetryBudgetBurst: 1000,
	})

	baselines := make(map[uint64][]byte, numKeys)
	for seed := uint64(1); seed <= numKeys; seed++ {
		baselines[seed] = baseline(t, simBody(seed))
	}

	degraded := 0
	for i := 0; i < numRequests; i++ {
		seed := uint64(i%numKeys) + 1
		code, header, body := post(t, ts.URL+"/v1/simulate", simBody(seed))
		if code != 200 {
			t.Fatalf("request %d (seed %d): client-visible failure %d %s", i, seed, code, body)
		}
		if string(body) != string(baselines[seed]) {
			t.Fatalf("request %d (seed %d): response differs from single-process baseline", i, seed)
		}
		if header.Get(DegradedHeader) != "" {
			degraded++
		}
	}

	// Cross-check the router's accounting against the proxies' logs.
	injected, failures := 0, 0
	var proxyCalls uint64
	for _, p := range proxies {
		injected += len(p.Events())
		// Stalls delay but succeed; every other kind fails the attempt.
		failures += p.CountKind(chaos.KindDrop) + p.CountKind(chaos.KindError) + p.CountKind(chaos.KindPartial)
		proxyCalls += p.Calls()
	}
	if injected < numRequests/10 {
		t.Fatalf("only %d faults injected across %d requests; the run did not stress anything", injected, numRequests)
	}
	t.Logf("faults injected: %d (%d attempt-failing), degraded responses: %d", injected, failures, degraded)

	m := routerMetricsBody(t, ts.URL)
	if v := metricValue(t, m, "softcache_router_requests_total"); v != numRequests {
		t.Errorf("requests_total=%v, want %d", v, numRequests)
	}
	if v := metricValue(t, m, "softcache_router_errors_total"); v != 0 {
		t.Errorf("errors_total=%v, want 0", v)
	}
	// Every failed attempt triggered exactly one retry (no request ran
	// out of attempts: all 200 succeeded), so the router's retry counter
	// must equal the proxies' failure-injection count.
	if v := metricValue(t, m, "softcache_router_retries_total"); v != float64(failures) {
		t.Errorf("retries_total=%v, but the proxies logged %d attempt-failing faults", v, failures)
	}
	// Each attempt is one proxy call: the initial 200 plus the retries.
	if proxyCalls != uint64(numRequests+failures) {
		t.Errorf("proxies saw %d calls, want %d requests + %d retries", proxyCalls, numRequests, failures)
	}
	// Degraded marking is exact: the metric counts the same responses
	// the clients saw the header on.
	if v := metricValue(t, m, "softcache_router_rerouted_total"); v != float64(degraded) {
		t.Errorf("rerouted_total=%v, but clients saw %d degraded responses", v, degraded)
	}
	if v := metricValue(t, m, "softcache_router_hedges_total"); v != 0 {
		t.Errorf("hedges_total=%v with hedging disabled", v)
	}
	if v := metricValue(t, m, "softcache_router_retry_budget_exhausted_total"); v != 0 {
		t.Errorf("budget_exhausted=%v, want 0 (budget sized for the run)", v)
	}
}

// TestChaosStallsWithHedging is the tail-latency half of the chaos
// suite: stall-only faults with hedging on. Every response must still be
// correct, and the hedge accounting must be internally consistent.
func TestChaosStallsWithHedging(t *testing.T) {
	const (
		numRequests = 60
		numKeys     = 6
		stall       = 100 * time.Millisecond
	)
	fleet := newFleet(t, 3)
	proxies := make([]*chaos.Proxy, len(fleet))
	proxyURLs := make([]string, len(fleet))
	for i, shard := range fleet {
		proxies[i] = chaos.New(shard.URL, chaos.Plan{
			Seed:     31 + uint64(i),
			Fraction: 0.3,
			Kinds:    []chaos.Kind{chaos.KindStall},
		}, stall)
		ts := httptest.NewServer(proxies[i])
		t.Cleanup(ts.Close)
		proxyURLs[i] = ts.URL
	}

	_, ts := newTestRouter(t, Config{
		Shards:           proxyURLs,
		Fall:             1 << 20,
		RetryBackoff:     -1,
		HedgeAfter:       10 * time.Millisecond,
		RetryBudgetRatio: 1,
		RetryBudgetBurst: 1000,
	})

	baselines := make(map[uint64][]byte, numKeys)
	for seed := uint64(1); seed <= numKeys; seed++ {
		baselines[seed] = baseline(t, simBody(seed))
	}
	for i := 0; i < numRequests; i++ {
		seed := uint64(i%numKeys) + 1
		code, _, body := post(t, ts.URL+"/v1/simulate", simBody(seed))
		if code != 200 {
			t.Fatalf("request %d: %d %s", i, code, body)
		}
		if string(body) != string(baselines[seed]) {
			t.Fatalf("request %d: response differs from baseline", i)
		}
	}

	stalls := 0
	for _, p := range proxies {
		stalls += p.CountKind(chaos.KindStall)
	}
	if stalls == 0 {
		t.Fatal("no stalls injected; the run did not exercise hedging")
	}
	m := routerMetricsBody(t, ts.URL)
	hedges := metricValue(t, m, "softcache_router_hedges_total")
	wins := metricValue(t, m, "softcache_router_hedge_wins_total")
	losses := metricValue(t, m, "softcache_router_hedge_losses_total")
	if hedges == 0 {
		t.Errorf("stall faults injected (%d) but no hedges launched", stalls)
	}
	if wins+losses > hedges {
		t.Errorf("hedge accounting inconsistent: wins %v + losses %v > hedges %v", wins, losses, hedges)
	}
	if v := metricValue(t, m, "softcache_router_errors_total"); v != 0 {
		t.Errorf("errors_total=%v, want 0", v)
	}
}
