package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a breaker through time without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(rise, fall int, cooldown time.Duration) (*breaker, *fakeClock) {
	b := newBreaker(rise, fall, cooldown)
	c := &fakeClock{t: time.Unix(0, 0)}
	b.now = c.now
	return b, c
}

func TestBreakerTripsAfterFall(t *testing.T) {
	b, _ := newTestBreaker(2, 3, time.Second)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("breaker open after %d failures, fall=3", i+1)
		}
	}
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker still closed after fall failures")
	}
	if b.State() != breakerOpen {
		t.Fatalf("state=%v, want open", b.State())
	}
	if b.Opens() != 1 {
		t.Fatalf("opens=%d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _ := newTestBreaker(2, 3, time.Second)
	b.Failure()
	b.Failure()
	b.Success() // streak broken
	b.Failure()
	b.Failure()
	if !b.Allow() {
		t.Fatal("breaker tripped on a non-consecutive failure streak")
	}
}

func TestBreakerHalfOpenAndRecovery(t *testing.T) {
	b, clk := newTestBreaker(2, 1, time.Second)
	b.Failure()
	if b.Allow() {
		t.Fatal("fall=1 breaker should open on first failure")
	}
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted traffic before the cooldown expired")
	}
	clk.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker still open after cooldown")
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	b.Success()
	if b.State() != breakerHalfOpen {
		t.Fatal("closed before rise successes")
	}
	b.Success()
	if b.State() != breakerClosed {
		t.Fatalf("state=%v after rise successes, want closed", b.State())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(2, 1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("want half-open trial traffic")
	}
	b.Failure()
	if b.Allow() {
		t.Fatal("half-open failure should re-open immediately")
	}
	if b.Opens() != 2 {
		t.Fatalf("opens=%d, want 2", b.Opens())
	}
	// The cooldown restarts from the re-open.
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("cooldown did not restart on re-open")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[breakerState]string{
		breakerClosed:    "closed",
		breakerOpen:      "open",
		breakerHalfOpen:  "half-open",
		breakerState(99): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("state %d: %q, want %q", int(s), got, want)
		}
	}
}
