package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"softcache/internal/serve"
)

// simBody builds a deterministic /v1/simulate request; its routing key is
// workload:MV:test:<seed>, the same key the shards' trace caches use.
func simBody(seed uint64) string {
	return fmt.Sprintf(`{"workload":"MV","scale":"test","seed":%d,"configs":[{"name":"soft"}]}`, seed)
}

func simKey(seed uint64) string {
	return fmt.Sprintf("workload:MV:test:%d", seed)
}

// newFleet starts n real serve daemons (shard IDs s0..s{n-1}) and
// returns their test servers.
func newFleet(t *testing.T, n int) []*httptest.Server {
	t.Helper()
	fleet := make([]*httptest.Server, n)
	for i := range fleet {
		s := serve.New(serve.Config{ShardID: fmt.Sprintf("s%d", i), Log: io.Discard})
		fleet[i] = httptest.NewServer(s)
		t.Cleanup(fleet[i].Close)
	}
	return fleet
}

// newTestRouter builds a Router over the given shard URLs with probing
// disabled (request outcomes alone drive the breakers, keeping tests
// deterministic) and mounts it on a test listener.
func newTestRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	return rt, ts
}

func postRaw(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func post(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp := postRaw(t, url, body)
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// baseline computes the single-process answer the routed fleet must
// reproduce byte for byte.
func baseline(t *testing.T, body string) []byte {
	t.Helper()
	s := serve.New(serve.Config{Log: io.Discard})
	ts := httptest.NewServer(s)
	defer ts.Close()
	code, _, data := post(t, ts.URL+"/v1/simulate", body)
	if code != 200 {
		t.Fatalf("baseline simulate: %d %s", code, data)
	}
	return data
}

// seedOwnedBy finds a simulate seed whose routing key the given shard
// owns, so tests can aim requests at a chosen replica.
func seedOwnedBy(t *testing.T, rt *Router, shard string) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 10000; seed++ {
		if rt.ring.Owner(simKey(seed)) == shard {
			return seed
		}
	}
	t.Fatalf("no seed maps to shard %s", shard)
	return 0
}

func shardURLs(fleet []*httptest.Server) []string {
	urls := make([]string, len(fleet))
	for i, ts := range fleet {
		urls[i] = ts.URL
	}
	return urls
}

func metricValue(t *testing.T, metrics []byte, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(metrics), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, metrics)
	return 0
}

func routerMetricsBody(t *testing.T, routerURL string) []byte {
	t.Helper()
	resp, err := http.Get(routerURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestNormalizeShard(t *testing.T) {
	for in, want := range map[string]string{
		"localhost:8265":          "http://localhost:8265",
		"http://h:1/":             "http://h:1",
		" https://h:2 ":           "https://h:2",
		"http://user@host:3/path": "http://host:3",
	} {
		got, err := normalizeShard(in)
		if err != nil || got != want {
			t.Errorf("normalizeShard(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "   ", "ftp://h:1", "http://"} {
		if got, err := normalizeShard(bad); err == nil {
			t.Errorf("normalizeShard(%q) = %q, want error", bad, got)
		}
	}
}

func TestNewRejectsBadFleets(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no shards should fail")
	}
	if _, err := New(Config{Shards: []string{"h:1", "http://h:1"}, ProbeInterval: -1}); err == nil {
		t.Error("New with duplicate shards should fail")
	}
}

func TestRouterProxiesByteIdentical(t *testing.T) {
	fleet := newFleet(t, 3)
	_, ts := newTestRouter(t, Config{Shards: shardURLs(fleet)})

	body := simBody(7)
	want := baseline(t, body)
	code, header, got := post(t, ts.URL+"/v1/simulate", body)
	if code != 200 {
		t.Fatalf("routed simulate: %d %s", code, got)
	}
	if string(got) != string(want) {
		t.Fatalf("routed response differs from single-process baseline:\n%s\nvs\n%s", got, want)
	}
	if header.Get("X-Softcache-Shard") == "" {
		t.Error("routed response lost the shard identity header")
	}
	if header.Get(DegradedHeader) != "" {
		t.Error("healthy fleet marked response degraded")
	}
}

// TestRouterShardsByTraceIdentity pins the fleet-wide single-decode
// property: repeated requests for one trace land on one shard, whose
// cache decodes it exactly once.
func TestRouterShardsByTraceIdentity(t *testing.T) {
	fleet := newFleet(t, 3)
	_, ts := newTestRouter(t, Config{Shards: shardURLs(fleet)})

	body := simBody(11)
	for i := 0; i < 4; i++ {
		code, _, data := post(t, ts.URL+"/v1/simulate", body)
		if code != 200 {
			t.Fatalf("request %d: %d %s", i, code, data)
		}
	}
	decodes := 0.0
	for _, shard := range fleet {
		resp, err := http.Get(shard.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		decodes += metricValue(t, data, "softcache_trace_decodes_total")
	}
	if decodes != 1 {
		t.Fatalf("fleet decoded the trace %v times, want exactly 1", decodes)
	}
}

// TestRouterFailsOverFromKilledShard kills the shard that owns a key
// mid-run and checks the next request for that key still returns the
// byte-identical answer, marked degraded.
func TestRouterFailsOverFromKilledShard(t *testing.T) {
	fleet := newFleet(t, 3)
	rt, ts := newTestRouter(t, Config{Shards: shardURLs(fleet), RetryBackoff: -1})

	victim := 0
	victimURL, err := normalizeShard(fleet[victim].URL)
	if err != nil {
		t.Fatal(err)
	}
	seed := seedOwnedBy(t, rt, victimURL)
	body := simBody(seed)
	want := baseline(t, body)

	// Warm path first: the owner answers.
	code, header, got := post(t, ts.URL+"/v1/simulate", body)
	if code != 200 || string(got) != string(want) || header.Get(DegradedHeader) != "" {
		t.Fatalf("pre-kill request: %d degraded=%q", code, header.Get(DegradedHeader))
	}

	fleet[victim].CloseClientConnections()
	fleet[victim].Close()

	code, header, got = post(t, ts.URL+"/v1/simulate", body)
	if code != 200 {
		t.Fatalf("post-kill request: %d %s", code, got)
	}
	if string(got) != string(want) {
		t.Fatal("failover response is not byte-identical to the baseline")
	}
	if header.Get(DegradedHeader) != "rerouted" {
		t.Fatalf("failover response degraded=%q, want \"rerouted\"", header.Get(DegradedHeader))
	}
	m := routerMetricsBody(t, ts.URL)
	if v := metricValue(t, m, "softcache_router_retries_total"); v < 1 {
		t.Errorf("retries_total=%v after a failover, want >= 1", v)
	}
	if v := metricValue(t, m, "softcache_router_rerouted_total"); v != 1 {
		t.Errorf("rerouted_total=%v, want 1", v)
	}
}

// TestRouterFailsOverMidRequest severs the owner's connection after the
// request is in flight (the server aborts the handler), which the router
// must absorb as a retryable attempt, not a truncated client response.
func TestRouterFailsOverMidRequest(t *testing.T) {
	fleet := newFleet(t, 2)
	var aborted atomic.Bool
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if aborted.CompareAndSwap(false, true) {
			panic(http.ErrAbortHandler) // die mid-request, once
		}
		http.Error(w, "shard restarted, cache cold", http.StatusInternalServerError)
	}))
	t.Cleanup(dying.Close)

	shards := append(shardURLs(fleet), dying.URL)
	rt, ts := newTestRouter(t, Config{Shards: shards, RetryBackoff: -1})
	dyingURL, err := normalizeShard(dying.URL)
	if err != nil {
		t.Fatal(err)
	}
	seed := seedOwnedBy(t, rt, dyingURL)
	body := simBody(seed)
	want := baseline(t, body)

	code, header, got := post(t, ts.URL+"/v1/simulate", body)
	if code != 200 {
		t.Fatalf("mid-request kill: %d %s", code, got)
	}
	if string(got) != string(want) {
		t.Fatal("mid-request failover response is not byte-identical to the baseline")
	}
	if !aborted.Load() {
		t.Fatal("test did not exercise the mid-request abort")
	}
	if header.Get(DegradedHeader) != "rerouted" {
		t.Fatalf("degraded=%q, want \"rerouted\"", header.Get(DegradedHeader))
	}
}

// TestRouterRelays429WithoutRetry: shard backpressure must reach the
// client untouched — retrying a 429 would amplify the very overload it
// signals.
func TestRouterRelays429WithoutRetry(t *testing.T) {
	var hits atomic.Int64
	busy := func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		io.WriteString(w, `{"error":"queue full"}`)
	}
	shards := make([]string, 3)
	for i := range shards {
		ts := httptest.NewServer(http.HandlerFunc(busy))
		t.Cleanup(ts.Close)
		shards[i] = ts.URL
	}
	_, ts := newTestRouter(t, Config{Shards: shards})

	code, header, _ := post(t, ts.URL+"/v1/simulate", simBody(1))
	if code != http.StatusTooManyRequests {
		t.Fatalf("status=%d, want 429 relayed", code)
	}
	if header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After=%q not relayed", header.Get("Retry-After"))
	}
	if hits.Load() != 1 {
		t.Fatalf("fleet saw %d attempts for one 429, want 1 (no retry)", hits.Load())
	}
	m := routerMetricsBody(t, ts.URL)
	if v := metricValue(t, m, "softcache_router_retries_total"); v != 0 {
		t.Errorf("retries_total=%v, want 0", v)
	}
}

func TestRouterBodyCap(t *testing.T) {
	var hits atomic.Int64
	shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	t.Cleanup(shard.Close)
	_, ts := newTestRouter(t, Config{Shards: []string{shard.URL}, MaxBodyBytes: 64})

	code, _, body := post(t, ts.URL+"/v1/simulate", strings.Repeat("x", 65))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status=%d %s, want 413", code, body)
	}
	if hits.Load() != 0 {
		t.Fatal("oversized body reached a shard")
	}
}

// TestRouterHedgeWinsAndCancelsLoser aims a request at a stalled owner
// with hedging on: the hedge must win, the stalled attempt must be
// cancelled, and no goroutine may be left behind.
func TestRouterHedgeWinsAndCancelsLoser(t *testing.T) {
	fast := serve.New(serve.Config{ShardID: "fast", Log: io.Discard})
	fastTS := httptest.NewServer(fast)
	t.Cleanup(fastTS.Close)

	cancelled := make(chan struct{}, 4)
	slowTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the server only watches for the peer
		// closing the connection (which cancels r.Context) once the
		// request body has been consumed.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
			cancelled <- struct{}{}
			return
		case <-time.After(5 * time.Second):
			t.Error("stalled shard was never cancelled")
		}
	}))
	t.Cleanup(slowTS.Close)

	rt, ts := newTestRouter(t, Config{
		Shards:     []string{fastTS.URL, slowTS.URL},
		HedgeAfter: 10 * time.Millisecond,
	})
	slowURL, err := normalizeShard(slowTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	seed := seedOwnedBy(t, rt, slowURL)
	body := simBody(seed)
	want := baseline(t, body)

	before := runtime.NumGoroutine()
	code, header, got := post(t, ts.URL+"/v1/simulate", body)
	if code != 200 {
		t.Fatalf("hedged request: %d %s", code, got)
	}
	if string(got) != string(want) {
		t.Fatal("hedged response is not byte-identical to the baseline")
	}
	if header.Get(DegradedHeader) != "rerouted" {
		t.Fatalf("hedge win off the home shard: degraded=%q, want \"rerouted\"", header.Get(DegradedHeader))
	}
	select {
	case <-cancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("stalled shard never saw its context cancelled")
	}
	m := routerMetricsBody(t, ts.URL)
	if v := metricValue(t, m, "softcache_router_hedges_total"); v != 1 {
		t.Errorf("hedges_total=%v, want 1", v)
	}
	if v := metricValue(t, m, "softcache_router_hedge_wins_total"); v != 1 {
		t.Errorf("hedge_wins_total=%v, want 1", v)
	}

	// The loser's goroutine must drain once its context is cancelled.
	rt.client.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before hedge, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterBreakerTripsAndHealthz: with every shard dead, breakers trip,
// the request fails with 502 and the router's own healthz goes 503.
func TestRouterBreakerTripsAndHealthz(t *testing.T) {
	dead := make([]string, 2)
	for i := range dead {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
		url := ts.URL
		ts.Close() // bound to a now-dead port: connection refused
		dead[i] = url
	}
	_, ts := newTestRouter(t, Config{
		Shards:       dead,
		Fall:         1,
		Cooldown:     time.Minute,
		RetryBackoff: -1,
	})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz before any traffic: %d, want 200 (breakers start closed)", resp.StatusCode)
	}

	code, _, body := post(t, ts.URL+"/v1/simulate", simBody(1))
	if code != http.StatusBadGateway {
		t.Fatalf("dead fleet: %d %s, want 502", code, body)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with every breaker open: %d %q, want 503", resp.StatusCode, data)
	}
	m := routerMetricsBody(t, ts.URL)
	if v := metricValue(t, m, "softcache_router_errors_total"); v != 1 {
		t.Errorf("errors_total=%v, want 1", v)
	}
	if !strings.Contains(string(m), `softcache_router_breaker_open{shard=`) {
		t.Error("per-shard breaker gauge missing from /metrics")
	}
}

// TestRouterActiveProbesRecoverBreaker: probes alone (no request
// traffic) must close a tripped breaker once the shard comes back.
func TestRouterActiveProbesRecoverBreaker(t *testing.T) {
	var down atomic.Bool
	down.Store(true)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok\n")
	}))
	t.Cleanup(flaky.Close)

	rt, _ := newTestRouter(t, Config{
		Shards:        []string{flaky.URL},
		ProbeInterval: 5 * time.Millisecond,
		Rise:          2,
		Fall:          2,
		Cooldown:      10 * time.Millisecond,
	})
	url, err := normalizeShard(flaky.URL)
	if err != nil {
		t.Fatal(err)
	}
	st := rt.states[url]

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (state=%v)", what, st.br.State())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("breaker to trip", func() bool { return st.br.Opens() >= 1 })
	down.Store(false)
	waitFor("breaker to close", func() bool { return st.br.State() == breakerClosed })
	if !st.probeOK.Load() {
		t.Error("probeOK gauge not updated by the recovering probe")
	}
}

func TestRouterGETRoutesByPath(t *testing.T) {
	fleet := newFleet(t, 3)
	_, ts := newTestRouter(t, Config{Shards: shardURLs(fleet)})
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/workloads")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(data), "workloads") {
			t.Fatalf("GET /v1/workloads via router: %d %s", resp.StatusCode, data)
		}
	}
}
