// Package chaos is a deterministic fault-injection proxy for the
// cluster tests: it sits between the router and one shard and corrupts
// a seeded, reproducible fraction of the calls passing through. It is
// the wire-level counterpart of harness.Corpus — where the corpus
// mangles serialised traces (truncations, flipped bytes, absurd
// counts), the proxy mangles the transport the same ways:
//
//   - drop: the connection is severed before any response (the wire
//     analogue of the corpus's truncated-empty);
//   - stall: the response is delayed by a configured duration, the
//     fault hedging exists for;
//   - error-burst: one or more consecutive calls answer 503 without
//     reaching the shard (a crashing or overloaded replica);
//   - partial-write: the shard's real response is relayed with a full
//     Content-Length but only half the body before the connection is
//     severed (truncated-mid-stream, on the wire).
//
// Every decision is a pure function of (seed, call index), so a failing
// run replays exactly; the proxy keeps a log of injected events that
// tests cross-check against the router's /metrics accounting.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Kind is one fault flavour.
type Kind uint8

const (
	KindNone    Kind = iota // call passes through untouched
	KindDrop                // sever before any response bytes
	KindStall               // delay, then pass through
	KindError               // 503 without contacting the shard
	KindPartial             // real response truncated mid-body
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindDrop:
		return "drop"
	case KindStall:
		return "stall"
	case KindError:
		return "error-burst"
	case KindPartial:
		return "partial-write"
	}
	return "unknown"
}

// Plan decides, per call index, which fault (if any) to inject. The
// zero Plan injects nothing.
type Plan struct {
	// Seed makes the schedule reproducible; two proxies with the same
	// seed and fraction fault the same call indices.
	Seed uint64
	// Fraction of calls faulted, in [0, 1].
	Fraction float64
	// Kinds is the fault vocabulary to draw from (default: drop, stall,
	// error-burst, partial-write).
	Kinds []Kind
	// Burst is how many consecutive calls one KindError fault poisons
	// (default 1).
	Burst int
}

// splitmix64 is the standard 64-bit mix, plenty for a fault schedule.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// At returns the fault for call index i — a pure function, so tests can
// predict the whole schedule without running it.
func (p Plan) At(i uint64) Kind {
	if p.Fraction <= 0 {
		return KindNone
	}
	h := splitmix64(p.Seed ^ splitmix64(i))
	if float64(h>>11)/(1<<53) >= p.Fraction {
		return KindNone
	}
	kinds := p.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{KindDrop, KindStall, KindError, KindPartial}
	}
	return kinds[splitmix64(h)%uint64(len(kinds))]
}

// Event is one injected fault, recorded for test cross-checks.
type Event struct {
	Index uint64
	Kind  Kind
}

// Proxy is the fault-injecting reverse proxy for one shard. Mount it on
// a listener and point the router at the listener instead of the shard.
type Proxy struct {
	target string
	plan   Plan
	stall  time.Duration
	client *http.Client

	mu        sync.Mutex
	calls     uint64  // guarded by mu; call index counter
	burstLeft int     // guarded by mu; remaining calls poisoned by an error burst
	events    []Event // guarded by mu
}

// New builds a proxy forwarding to target (a base URL such as the
// shard's http://host:port). stall is the delay a KindStall fault
// injects (default 20ms).
func New(target string, plan Plan, stall time.Duration) *Proxy {
	if stall <= 0 {
		stall = 20 * time.Millisecond
	}
	if plan.Burst < 1 {
		plan.Burst = 1
	}
	return &Proxy{
		target: target,
		plan:   plan,
		stall:  stall,
		client: &http.Client{},
	}
}

// decide consumes one call index and returns the fault to inject.
func (p *Proxy) decide() Kind {
	p.mu.Lock()
	defer p.mu.Unlock()
	i := p.calls
	p.calls++
	if p.burstLeft > 0 {
		p.burstLeft--
		p.events = append(p.events, Event{Index: i, Kind: KindError})
		return KindError
	}
	k := p.plan.At(i)
	if k == KindError {
		p.burstLeft = p.plan.Burst - 1
	}
	if k != KindNone {
		p.events = append(p.events, Event{Index: i, Kind: k})
	}
	return k
}

// Calls reports how many requests reached the proxy.
func (p *Proxy) Calls() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// Events snapshots the injected-fault log in call order.
func (p *Proxy) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...)
}

// CountKind tallies one fault kind in the event log.
func (p *Proxy) CountKind(k Kind) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// abort severs the client connection without a response — net/http
// treats ErrAbortHandler as a deliberate mid-handler abort and closes
// the connection, which the router sees as a transport error.
func abort() {
	panic(http.ErrAbortHandler)
}

// ServeHTTP applies the scheduled fault, forwarding to the shard when
// the call survives.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	kind := p.decide()
	switch kind {
	case KindDrop:
		abort()
	case KindError:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"chaos: injected 503"}`+"\n")
		return
	case KindStall:
		select {
		case <-time.After(p.stall):
		case <-r.Context().Done():
			return
		}
	}

	body, err := io.ReadAll(r.Body)
	if err != nil {
		abort()
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		abort()
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		// The shard itself is down; to the router that is
		// indistinguishable from a drop, which is the honest signal.
		abort()
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		abort()
	}

	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	if kind == KindPartial && len(data) > 1 {
		// Promise the full length, deliver half, sever: the client's
		// read ends in io.ErrUnexpectedEOF, never a short success. The
		// flush matters — without it the abort discards the buffered
		// half and the client sees a pre-header EOF instead of a
		// mid-body truncation.
		h.Set("Content-Length", strconv.Itoa(len(data)))
		w.WriteHeader(resp.StatusCode)
		w.Write(data[:len(data)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		abort()
	}
	h.Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(resp.StatusCode)
	w.Write(data)
}

// String describes the proxy for test logs.
func (p *Proxy) String() string {
	return fmt.Sprintf("chaos.Proxy(target=%s seed=%d fraction=%g)", p.target, p.plan.Seed, p.plan.Fraction)
}
