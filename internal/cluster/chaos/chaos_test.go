package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestPlanZeroInjectsNothing(t *testing.T) {
	var p Plan
	for i := uint64(0); i < 1000; i++ {
		if k := p.At(i); k != KindNone {
			t.Fatalf("zero plan injected %v at %d", k, i)
		}
	}
}

func TestPlanDeterministicAndFractional(t *testing.T) {
	p := Plan{Seed: 42, Fraction: 0.2}
	faults := 0
	for i := uint64(0); i < 10000; i++ {
		k := p.At(i)
		if k != p.At(i) {
			t.Fatalf("At(%d) not deterministic", i)
		}
		if k != KindNone {
			faults++
		}
	}
	// The schedule is pseudo-random; 20% of 10k should land well within
	// [15%, 25%].
	if faults < 1500 || faults > 2500 {
		t.Fatalf("fraction 0.2 injected %d/10000 faults", faults)
	}
}

func TestPlanSeedChangesSchedule(t *testing.T) {
	a := Plan{Seed: 1, Fraction: 0.5}
	b := Plan{Seed: 2, Fraction: 0.5}
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if a.At(i) == b.At(i) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical schedules")
	}
}

// backend returns a shard stand-in that counts hits and serves a fixed
// body.
func backend(hits *atomic.Int64) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"answer":42}`)
	}))
}

// proxyFor mounts a Proxy over the backend, forcing every call to kind
// (KindNone passes everything through).
func proxyFor(t *testing.T, target string, kind Kind, stall time.Duration) (*Proxy, *httptest.Server) {
	t.Helper()
	plan := Plan{}
	if kind != KindNone {
		plan = Plan{Fraction: 1, Kinds: []Kind{kind}}
	}
	p := New(target, plan, stall)
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return p, ts
}

func TestProxyPassThrough(t *testing.T) {
	var hits atomic.Int64
	shard := backend(&hits)
	defer shard.Close()
	p, ts := proxyFor(t, shard.URL, KindNone, 0)

	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != 200 || string(body) != `{"answer":42}` {
		t.Fatalf("pass-through: %d %q %v", resp.StatusCode, body, err)
	}
	if hits.Load() != 1 || p.Calls() != 1 || len(p.Events()) != 0 {
		t.Fatalf("hits=%d calls=%d events=%d, want 1/1/0", hits.Load(), p.Calls(), len(p.Events()))
	}
}

func TestProxyDropSeversConnection(t *testing.T) {
	var hits atomic.Int64
	shard := backend(&hits)
	defer shard.Close()
	p, ts := proxyFor(t, shard.URL, KindDrop, 0)

	_, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(`{}`))
	if err == nil {
		t.Fatal("drop fault produced a response")
	}
	if hits.Load() != 0 {
		t.Fatal("drop fault reached the backend")
	}
	if p.CountKind(KindDrop) != 1 {
		t.Fatalf("drop events=%d, want 1", p.CountKind(KindDrop))
	}
}

func TestProxyErrorAnswers503(t *testing.T) {
	var hits atomic.Int64
	shard := backend(&hits)
	defer shard.Close()
	p, ts := proxyFor(t, shard.URL, KindError, 0)

	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status=%d, want 503", resp.StatusCode)
	}
	if hits.Load() != 0 {
		t.Fatal("error fault reached the backend")
	}
	if p.CountKind(KindError) != 1 {
		t.Fatalf("error events=%d, want 1", p.CountKind(KindError))
	}
}

func TestProxyErrorBurstPoisonsConsecutiveCalls(t *testing.T) {
	var hits atomic.Int64
	shard := backend(&hits)
	defer shard.Close()
	p := New(shard.URL, Plan{Fraction: 1, Kinds: []Kind{KindError}, Burst: 3}, 0)
	ts := httptest.NewServer(p)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("call %d: status=%d, want 503 inside the burst", i, resp.StatusCode)
		}
	}
	if hits.Load() != 0 {
		t.Fatal("burst calls reached the backend")
	}
	if got := p.CountKind(KindError); got != 3 {
		t.Fatalf("error events=%d, want 3", got)
	}
}

func TestProxyStallDelaysThenForwards(t *testing.T) {
	var hits atomic.Int64
	shard := backend(&hits)
	defer shard.Close()
	const stall = 50 * time.Millisecond
	_, ts := proxyFor(t, shard.URL, KindStall, stall)

	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || string(body) != `{"answer":42}` {
		t.Fatalf("stalled call corrupted the response: %d %q", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("stalled call returned in %v, want >= %v", elapsed, stall)
	}
	if hits.Load() != 1 {
		t.Fatal("stalled call did not reach the backend")
	}
}

func TestProxyPartialWriteTruncatesMidBody(t *testing.T) {
	var hits atomic.Int64
	shard := backend(&hits)
	defer shard.Close()
	p, ts := proxyFor(t, shard.URL, KindPartial, 0)

	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, err = io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("partial-write fault delivered a complete body")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read error = %v, want unexpected EOF", err)
	}
	if hits.Load() != 1 {
		t.Fatal("partial-write must relay the real backend response")
	}
	if p.CountKind(KindPartial) != 1 {
		t.Fatalf("partial events=%d, want 1", p.CountKind(KindPartial))
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindNone:    "none",
		KindDrop:    "drop",
		KindStall:   "stall",
		KindError:   "error-burst",
		KindPartial: "partial-write",
		Kind(99):    "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String()=%q, want %q", k, k.String(), s)
		}
	}
}
