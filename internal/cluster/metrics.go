package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// routerMetrics holds the router's own counters, all atomics so the
// proxy path updates them without a lock; /metrics renders a snapshot in
// the Prometheus text exposition format, same hand-rolled discipline as
// internal/serve (and checked by the same metrictext analyzer).
type routerMetrics struct {
	requests        atomic.Uint64 // proxied requests accepted by the router
	retries         atomic.Uint64 // failed attempts retried on another replica
	hedges          atomic.Uint64 // hedge attempts launched
	hedgeWins       atomic.Uint64 // hedge responses relayed to the client
	hedgeLosses     atomic.Uint64 // primary responses relayed after a hedge launched
	rerouted        atomic.Uint64 // responses served off the key's home shard
	budgetExhausted atomic.Uint64 // retries/hedges denied by the retry budget
	errors          atomic.Uint64 // 502s: every attempt failed
	streamed        atomic.Uint64 // unbuffered pass-through requests (/v1/simulate/trace)
	resultHits      atomic.Uint64 // relayed responses stamped X-Softcache-Result: hit
	resultMisses    atomic.Uint64 // relayed responses stamped X-Softcache-Result: miss
}

// writeMetrics renders the router counters plus the per-shard breaker,
// probe and residency state.
func (rt *Router) writeMetrics(w io.Writer) {
	m := rt.met
	fmt.Fprintf(w, "# TYPE softcache_router_requests_total counter\nsoftcache_router_requests_total %d\n", m.requests.Load())
	fmt.Fprintf(w, "# TYPE softcache_router_retries_total counter\nsoftcache_router_retries_total %d\n", m.retries.Load())
	fmt.Fprintf(w, "# TYPE softcache_router_hedges_total counter\nsoftcache_router_hedges_total %d\n", m.hedges.Load())
	fmt.Fprintf(w, "# TYPE softcache_router_hedge_wins_total counter\nsoftcache_router_hedge_wins_total %d\n", m.hedgeWins.Load())
	fmt.Fprintf(w, "# TYPE softcache_router_hedge_losses_total counter\nsoftcache_router_hedge_losses_total %d\n", m.hedgeLosses.Load())
	fmt.Fprintf(w, "# TYPE softcache_router_rerouted_total counter\nsoftcache_router_rerouted_total %d\n", m.rerouted.Load())
	fmt.Fprintf(w, "# TYPE softcache_router_retry_budget_exhausted_total counter\nsoftcache_router_retry_budget_exhausted_total %d\n", m.budgetExhausted.Load())
	fmt.Fprintf(w, "# TYPE softcache_router_errors_total counter\nsoftcache_router_errors_total %d\n", m.errors.Load())
	fmt.Fprintf(w, "# TYPE softcache_router_streamed_total counter\nsoftcache_router_streamed_total %d\n", m.streamed.Load())
	// Fleet-level result-cache traffic, tallied off the relayed
	// X-Softcache-Result header: what fraction of answered requests were
	// fetched from a shard's durable result cache vs recomputed.
	fmt.Fprintf(w, "# TYPE softcache_router_result_hits_total counter\nsoftcache_router_result_hits_total %d\n", m.resultHits.Load())
	fmt.Fprintf(w, "# TYPE softcache_router_result_misses_total counter\nsoftcache_router_result_misses_total %d\n", m.resultMisses.Load())

	shards := make([]string, 0, len(rt.states))
	for s := range rt.states {
		shards = append(shards, s)
	}
	sort.Strings(shards)
	keys := rt.keyCounts()

	fmt.Fprintln(w, "# TYPE softcache_router_breaker_opens_total counter")
	for _, s := range shards {
		fmt.Fprintf(w, "softcache_router_breaker_opens_total{shard=%q} %d\n", s, rt.states[s].br.Opens())
	}
	fmt.Fprintln(w, "# TYPE softcache_router_breaker_open gauge")
	for _, s := range shards {
		open := 0
		if rt.states[s].br.State() == breakerOpen {
			open = 1
		}
		fmt.Fprintf(w, "softcache_router_breaker_open{shard=%q} %d\n", s, open)
	}
	fmt.Fprintln(w, "# TYPE softcache_router_shard_up gauge")
	for _, s := range shards {
		up := 0
		if rt.states[s].probeOK.Load() {
			up = 1
		}
		fmt.Fprintf(w, "softcache_router_shard_up{shard=%q} %d\n", s, up)
	}
	fmt.Fprintln(w, "# TYPE softcache_router_shard_failures_total counter")
	for _, s := range shards {
		fmt.Fprintf(w, "softcache_router_shard_failures_total{shard=%q} %d\n", s, rt.states[s].failures.Load())
	}
	// Residency observability: how many distinct trace keys each shard
	// owns among those the router has routed, so a failover decision's
	// cache-warmth cost is measurable rather than guessed.
	fmt.Fprintln(w, "# TYPE softcache_router_shard_keys gauge")
	for _, s := range shards {
		fmt.Fprintf(w, "softcache_router_shard_keys{shard=%q} %d\n", s, keys[s])
	}
}
