package cluster

import (
	"sync"
	"time"
)

// breakerState is one of the three classic circuit states.
type breakerState int

const (
	breakerClosed   breakerState = iota // traffic flows, counting failures
	breakerOpen                         // traffic blocked until the cooldown expires
	breakerHalfOpen                     // trial traffic flows, counting successes
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a per-shard circuit breaker fed by both the active health
// prober and request outcomes. Closed trips open after Fall consecutive
// failures; open admits nothing until Cooldown has elapsed, then turns
// half-open; half-open closes after Rise consecutive successes and
// re-opens on any failure. The merged success/failure stream means a
// burst of request errors can trip the breaker between probes, and a
// recovering shard is closed again as soon as probes (or trial
// requests) see it healthy Rise times in a row.
type breaker struct {
	rise     int
	fall     int
	cooldown time.Duration
	now      func() time.Time // injectable clock for tests

	mu        sync.Mutex
	state     breakerState // guarded by mu
	failures  int          // guarded by mu; consecutive failures while closed
	successes int          // guarded by mu; consecutive successes while half-open
	openedAt  time.Time    // guarded by mu; when the circuit last tripped
	opens     uint64       // guarded by mu; total closed/half-open -> open transitions
}

// newBreaker builds a breaker; non-positive thresholds get safe
// defaults (rise 2, fall 3, cooldown 5s).
func newBreaker(rise, fall int, cooldown time.Duration) *breaker {
	if rise < 1 {
		rise = 2
	}
	if fall < 1 {
		fall = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{rise: rise, fall: fall, cooldown: cooldown, now: time.Now}
}

// Allow reports whether traffic may be sent. An expired open circuit
// transitions to half-open here, so the first caller after the cooldown
// becomes the trial request even without an active prober.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.state = breakerHalfOpen
		b.successes = 0
	}
	return b.state != breakerOpen
}

// Success records one healthy outcome (probe or request).
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.failures = 0
	case breakerHalfOpen:
		b.successes++
		if b.successes >= b.rise {
			b.state = breakerClosed
			b.failures = 0
		}
	}
}

// Failure records one unhealthy outcome (probe or request).
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.fall {
			b.tripLocked()
		}
	case breakerHalfOpen:
		b.tripLocked()
	}
}

// tripLocked moves to open. Caller holds mu.
func (b *breaker) tripLocked() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.opens++
	b.failures = 0
	b.successes = 0
}

// State snapshots the current state (advancing an expired open circuit
// to half-open, like Allow, so /metrics never shows a stale open).
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.state = breakerHalfOpen
		b.successes = 0
	}
	return b.state
}

// Opens reports the total number of times the circuit tripped.
func (b *breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
