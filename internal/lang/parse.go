package lang

import (
	"fmt"
	"strings"

	"softcache/internal/loopir"
	"softcache/internal/timing"
)

// Parse compiles source text into a finalized loopir program.
func Parse(src string) (*loopir.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := prog.Finalize(); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
	prog *loopir.Program
	// depth tracks recursive nesting (loops and indirect subscripts) so
	// adversarial input exhausts a budget, not the goroutine stack.
	depth int
}

// Nesting and size limits: far beyond anything a loop-nest kernel needs,
// tight enough that hostile input fails with an error instead of a stack
// overflow or a multi-gigabyte allocation.
const (
	maxNestDepth   = 100
	maxRandomCount = 1 << 20
)

// enter charges one level of nesting; the returned func releases it.
func (p *parser) enter(t token, what string) (func(), error) {
	p.depth++
	if p.depth > maxNestDepth {
		p.depth--
		return nil, p.errf(t, "%s nested too deeply (max %d levels)", what, maxNestDepth)
	}
	return func() { p.depth-- }, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) skipNL() {
	for p.peek().kind == tokNewline {
		p.pos++
	}
}

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", t.line, fmt.Sprintf(format, args...))
}

// pos converts a token's source location into an IR position.
func pos(t token) loopir.Pos { return loopir.Pos{Line: t.line, Col: t.col} }

func (p *parser) expect(k tokKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, p.errf(t, "expected %v, got %q", k, t.text)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !keyword(t, kw) {
		return p.errf(t, "expected %q, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) endOfLine() error {
	t := p.next()
	if t.kind != tokNewline && t.kind != tokEOF {
		return p.errf(t, "unexpected %q at end of statement", t.text)
	}
	return nil
}

// parseProgram: "program NAME" followed by declarations and statements.
func (p *parser) parseProgram() (*loopir.Program, error) {
	p.skipNL()
	if err := p.expectKeyword("program"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.endOfLine(); err != nil {
		return nil, err
	}
	p.prog = loopir.NewProgram(name.text)

	body, err := p.parseBody(false)
	if err != nil {
		return nil, err
	}
	p.prog.Add(body...)
	return p.prog, nil
}

// parseBody parses statements until "end" (when nested) or EOF.
func (p *parser) parseBody(nested bool) ([]loopir.Stmt, error) {
	var out []loopir.Stmt
	for {
		p.skipNL()
		t := p.peek()
		switch {
		case t.kind == tokEOF:
			if nested {
				return nil, p.errf(t, "missing 'end'")
			}
			return out, nil
		case keyword(t, "end"):
			if !nested {
				return nil, p.errf(t, "'end' without an open loop")
			}
			p.next()
			if err := p.endOfLine(); err != nil {
				return nil, err
			}
			return out, nil
		case keyword(t, "array"), keyword(t, "index"), keyword(t, "data"):
			if err := p.parseDecl(); err != nil {
				return nil, err
			}
		case keyword(t, "do"), keyword(t, "driver"):
			st, err := p.parseLoop()
			if err != nil {
				return nil, err
			}
			out = append(out, st)
		case keyword(t, "load"), keyword(t, "store"):
			st, err := p.parseAccess()
			if err != nil {
				return nil, err
			}
			out = append(out, st)
		case keyword(t, "prefetch"):
			st, err := p.parsePrefetch()
			if err != nil {
				return nil, err
			}
			out = append(out, st)
		case keyword(t, "call"):
			p.next()
			nm, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if err := p.endOfLine(); err != nil {
				return nil, err
			}
			out = append(out, &loopir.Call{Name: nm.text, Pos: pos(t)})
		default:
			return nil, p.errf(t, "unexpected %q (want a declaration, do, load, store, prefetch, call or end)", t.text)
		}
	}
}

// parseDecl handles:
//
//	array NAME(d1, d2, ...)
//	index NAME = random(lo, hi, count) seed N      (traced 4-byte ints)
//	index NAME = [v1, v2, ...]
//	data  NAME = random(...) seed N | [...]        (untraced ints)
func (p *parser) parseDecl() error {
	kind := p.next() // array | index | data
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if keyword(kind, "array") {
		if _, err := p.expect(tokLParen); err != nil {
			return err
		}
		var dims []int
		for {
			n, err := p.expect(tokNumber)
			if err != nil {
				return err
			}
			dims = append(dims, n.num)
			t := p.next()
			if t.kind == tokRParen {
				break
			}
			if t.kind != tokComma {
				return p.errf(t, "expected ',' or ')' in array dimensions")
			}
		}
		p.prog.DeclareArray(name.text, dims...)
		return p.endOfLine()
	}

	if _, err := p.expect(tokEquals); err != nil {
		return err
	}
	values, err := p.parseDataInitialiser(name.text)
	if err != nil {
		return err
	}
	if keyword(kind, "index") {
		p.prog.DeclareIndexArray(name.text, values)
	} else {
		p.prog.DeclareData(name.text, values)
	}
	return p.endOfLine()
}

// parseDataInitialiser parses "[1, 2, 3]" or "random(lo, hi, count) seed N".
func (p *parser) parseDataInitialiser(name string) ([]int, error) {
	t := p.peek()
	if t.kind == tokLBracket {
		p.next()
		var values []int
		for {
			n, err := p.parseSignedNumber()
			if err != nil {
				return nil, err
			}
			values = append(values, n)
			nt := p.next()
			if nt.kind == tokRBracket {
				return values, nil
			}
			if nt.kind != tokComma {
				return nil, p.errf(nt, "expected ',' or ']' in data literal")
			}
		}
	}
	if keyword(t, "random") {
		p.next()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		lo, err := p.parseSignedNumber()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		hi, err := p.parseSignedNumber()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		count, err := p.parseSignedNumber()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		seed := uint64(1)
		if keyword(p.peek(), "seed") {
			p.next()
			n, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			seed = uint64(n.num)
		}
		if hi <= lo || count <= 0 {
			return nil, p.errf(t, "random(%d, %d, %d): need lo < hi and count > 0", lo, hi, count)
		}
		if count > maxRandomCount {
			return nil, p.errf(t, "random count %d too large (max %d)", count, maxRandomCount)
		}
		rng := timing.NewRNG(seed)
		values := make([]int, count)
		for i := range values {
			values[i] = lo + rng.Intn(hi-lo)
		}
		return values, nil
	}
	return nil, p.errf(t, "expected '[' literal or random(...) initialiser for %s", name)
}

func (p *parser) parseSignedNumber() (int, error) {
	neg := false
	if p.peek().kind == tokMinus {
		p.next()
		neg = true
	}
	n, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	if neg {
		return -n.num, nil
	}
	return n.num, nil
}

// parseLoop: "do VAR = lo, hi [step N]" … "end" (or "driver" for opaque
// loops).
func (p *parser) parseLoop() (loopir.Stmt, error) {
	kw := p.next() // do | driver
	v, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEquals); err != nil {
		return nil, err
	}
	lo, err := p.parseSubscript()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	hi, err := p.parseSubscript()
	if err != nil {
		return nil, err
	}
	step := 1
	if keyword(p.peek(), "step") {
		p.next()
		step, err = p.parseSignedNumber()
		if err != nil {
			return nil, err
		}
	}
	if err := p.endOfLine(); err != nil {
		return nil, err
	}
	leave, err := p.enter(kw, "loops")
	if err != nil {
		return nil, err
	}
	body, err := p.parseBody(true)
	leave()
	if err != nil {
		return nil, err
	}
	return &loopir.Loop{
		Var: v.text, Lower: lo, Upper: hi, Step: step, Body: body,
		Opaque: keyword(kw, "driver"), Pos: pos(kw),
	}, nil
}

// parseAccess: "load ARRAY(sub, ...) [tags(...)]" or "store ...".
func (p *parser) parseAccess() (loopir.Stmt, error) {
	kw := p.next() // load | store
	arr, subs, err := p.parseReference()
	if err != nil {
		return nil, err
	}
	acc := &loopir.Access{Array: arr, Index: subs, Write: keyword(kw, "store"), Pos: pos(kw)}
	if keyword(p.peek(), "tags") {
		tags, err := p.parseTagsDirective()
		if err != nil {
			return nil, err
		}
		acc.Force = tags
	}
	if err := p.endOfLine(); err != nil {
		return nil, err
	}
	return acc, nil
}

func (p *parser) parsePrefetch() (loopir.Stmt, error) {
	kw := p.next() // prefetch
	arr, subs, err := p.parseReference()
	if err != nil {
		return nil, err
	}
	if err := p.endOfLine(); err != nil {
		return nil, err
	}
	return &loopir.Prefetch{Array: arr, Index: subs, Pos: pos(kw)}, nil
}

// parseReference: ARRAY(sub {, sub}).
func (p *parser) parseReference() (string, []loopir.Subscript, error) {
	arr, err := p.expect(tokIdent)
	if err != nil {
		return "", nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return "", nil, err
	}
	var subs []loopir.Subscript
	for {
		s, err := p.parseSubscript()
		if err != nil {
			return "", nil, err
		}
		subs = append(subs, s)
		t := p.next()
		if t.kind == tokRParen {
			return arr.text, subs, nil
		}
		if t.kind != tokComma {
			return "", nil, p.errf(t, "expected ',' or ')' in subscript list")
		}
	}
}

// parseTagsDirective: tags(temporal), tags(spatial), tags(temporal,
// spatial) or tags(none).
func (p *parser) parseTagsDirective() (*loopir.Tags, error) {
	p.next() // tags
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	tags := &loopir.Tags{}
	for {
		t := p.next()
		switch {
		case keyword(t, "temporal"):
			tags.Temporal = true
		case keyword(t, "spatial"):
			tags.Spatial = true
		case keyword(t, "none"):
			// explicit no-tags directive
		default:
			return nil, p.errf(t, "unknown tag %q (want temporal, spatial or none)", t.text)
		}
		nt := p.next()
		if nt.kind == tokRParen {
			return tags, nil
		}
		if nt.kind != tokComma {
			return nil, p.errf(nt, "expected ',' or ')' in tags directive")
		}
	}
}

// parseSubscript parses an affine expression with at most one indirect
// component: term { (+|-) term }, term = [N *] ident | N | ident[expr].
func (p *parser) parseSubscript() (loopir.Subscript, error) {
	sub, err := p.parseTerm(false)
	if err != nil {
		return loopir.Subscript{}, err
	}
	for {
		t := p.peek()
		if t.kind != tokPlus && t.kind != tokMinus {
			return sub, nil
		}
		p.next()
		term, err := p.parseTerm(t.kind == tokMinus)
		if err != nil {
			return loopir.Subscript{}, err
		}
		if sub.Ind != nil && term.Ind != nil {
			return loopir.Subscript{}, p.errf(t, "at most one indirect component per subscript")
		}
		sub = loopir.Sum(sub, term)
	}
}

// parseTerm parses one additive term, negated when neg is true.
func (p *parser) parseTerm(neg bool) (loopir.Subscript, error) {
	t := p.next()
	// Fold a chain of unary minuses iteratively (recursing one level per
	// '-' would let "----…-1" grow the stack without bound).
	for t.kind == tokMinus {
		neg = !neg
		t = p.next()
	}
	sign := 1
	if neg {
		sign = -1
	}
	switch t.kind {
	case tokNumber:
		// Either a constant or a scaled variable N*v.
		if p.peek().kind == tokStar {
			p.next()
			v, err := p.expect(tokIdent)
			if err != nil {
				return loopir.Subscript{}, err
			}
			return loopir.SV(sign*t.num, v.text), nil
		}
		return loopir.C(sign * t.num), nil
	case tokIdent:
		if p.peek().kind == tokLBracket {
			// Indirect component: data[expr].
			p.next()
			leave, err := p.enter(t, "indirect subscripts")
			if err != nil {
				return loopir.Subscript{}, err
			}
			inner, err := p.parseSubscript()
			leave()
			if err != nil {
				return loopir.Subscript{}, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return loopir.Subscript{}, err
			}
			if sign < 0 {
				return loopir.Subscript{}, p.errf(t, "negated indirect components are not supported")
			}
			return loopir.Load(t.text, inner), nil
		}
		return loopir.SV(sign, t.text), nil
	default:
		return loopir.Subscript{}, p.errf(t, "expected a subscript term, got %q", t.text)
	}
}

// MustParse parses src and panics on error; for tests and examples.
func MustParse(src string) *loopir.Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Strip is a helper for writing inline sources in Go string literals:
// it removes the margin shared by all non-empty lines.
func Strip(src string) string {
	lines := strings.Split(src, "\n")
	margin := -1
	for _, l := range lines {
		trimmed := strings.TrimLeft(l, " \t")
		if trimmed == "" {
			continue
		}
		indent := len(l) - len(trimmed)
		if margin < 0 || indent < margin {
			margin = indent
		}
	}
	if margin <= 0 {
		return src
	}
	for i, l := range lines {
		if len(l) >= margin {
			lines[i] = l[margin:]
		}
	}
	return strings.Join(lines, "\n")
}
