package lang

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the DSL front end: it must never
// panic, and any program it accepts must survive the rest of the pipeline
// entry points — finalization (done inside Parse) and printing.
func FuzzParse(f *testing.F) {
	f.Add(`
program mv
array A(768, 768)
array X(768)
array Y(768)
do j1 = 0, 766
  load Y(j1)
  do j2 = 0, 766
    load A(j2, j1)
    load X(j2)
  end
  store Y(j1)
end
`)
	f.Add(`
program spmv
array X(40)
index Idx = random(0, 40, 300) seed 7
data Row = [0, 100, 200, 300]
driver t = 0, 2
  do i = 0, 2
    do j = Row[i], Row[i + 1] - 1 step 2
      load Idx(j)
      load X(Idx[j]) tags(temporal)
    end
  end
end
`)
	f.Add("program p\narray A(9)\ndo i = 0, 8\nprefetch A(i + 4)\ncall f\nend\n")
	f.Add("program p\ndo i = 0, ----9\nend\n")
	f.Add("program p\narray A(2)\nload A(1 + 2*x)\n")
	f.Add("program p\ndata D = random(0, 5, 10)\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			// Rejections must be real diagnostics: lex/parse errors carry a
			// 1-based line number ("line N: ..."); semantic errors from
			// finalization are program-level and carry none.
			msg := err.Error()
			if msg == "" {
				t.Fatal("empty error message")
			}
			if strings.HasPrefix(msg, "line ") && strings.HasPrefix(msg, "line 0") {
				t.Fatalf("diagnostic with invalid line number: %q", msg)
			}
			return
		}
		if p == nil {
			t.Fatal("nil program with nil error")
		}
		// An accepted program prints without panicking and non-emptily.
		if out := p.String(); !strings.HasPrefix(out, "PROGRAM ") {
			t.Fatalf("printed program lacks header:\n%s", out)
		}
	})
}
