// Package lang provides a small Fortran-flavoured source language for loop
// nests, compiled to loopir programs. It gives the repository the same
// workflow the paper used — write the kernel as source, let the compiler
// derive the locality tags, trace it — without writing Go:
//
//	program mv
//	array A(768, 768)
//	array X(768)
//	array Y(768)
//	do j1 = 0, 766
//	  load Y(j1)
//	  do j2 = 0, 766
//	    load A(j2, j1)
//	    load X(j2)
//	  end
//	  store Y(j1)
//	end
//
// Statements: array/index/data declarations, do/driver…end loops (with
// optional "step k"), load/store/prefetch references, call. Subscripts are
// affine expressions over loop variables plus at most one indirect
// component written data[expr]. A reference may carry a §4.1 user
// directive: "tags(temporal)", "tags(spatial)", "tags(temporal, spatial)"
// or "tags(none)". Comments run from "#" or "!" to end of line.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokEquals
	tokPlus
	tokMinus
	tokStar
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of file"
	case tokNewline:
		return "end of line"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokEquals:
		return "'='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexical unit with its source line and column (1-based) for
// error reporting and for the positions threaded into the IR.
type token struct {
	kind tokKind
	text string
	num  int
	line int
	col  int
}

// maxNumber bounds numeric literals: large enough for any dimension, seed
// or bound the DSL meaningfully uses, small enough that sums and products
// of a few literals cannot overflow int64 (wrapping silently would turn a
// typo into a bogus program instead of an error).
const maxNumber = 1 << 31

// lex splits src into tokens. Newlines are significant (statements are
// line-oriented); consecutive blank lines collapse.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	lineStart := 0 // rune index of the current line's first rune
	i := 0
	runes := []rune(src)
	emit := func(k tokKind, text string, num int) {
		toks = append(toks, token{kind: k, text: text, num: num, line: line, col: i - lineStart + 1})
	}
	for i < len(runes) {
		c := runes[i]
		switch {
		case c == '\n':
			if len(toks) > 0 && toks[len(toks)-1].kind != tokNewline {
				emit(tokNewline, "\\n", 0)
			}
			line++
			i++
			lineStart = i
		case c == '#' || c == '!':
			for i < len(runes) && runes[i] != '\n' {
				i++
			}
		case unicode.IsSpace(c):
			i++
		case c == '(':
			emit(tokLParen, "(", 0)
			i++
		case c == ')':
			emit(tokRParen, ")", 0)
			i++
		case c == '[':
			emit(tokLBracket, "[", 0)
			i++
		case c == ']':
			emit(tokRBracket, "]", 0)
			i++
		case c == ',':
			emit(tokComma, ",", 0)
			i++
		case c == '=':
			emit(tokEquals, "=", 0)
			i++
		case c == '+':
			emit(tokPlus, "+", 0)
			i++
		case c == '-':
			emit(tokMinus, "-", 0)
			i++
		case c == '*':
			emit(tokStar, "*", 0)
			i++
		case unicode.IsDigit(c):
			j := i
			for j < len(runes) && unicode.IsDigit(runes[j]) {
				j++
			}
			n := 0
			for _, d := range runes[i:j] {
				n = n*10 + int(d-'0')
				if n > maxNumber {
					return nil, fmt.Errorf("line %d: number %q too large (max %d)", line, string(runes[i:j]), maxNumber)
				}
			}
			emit(tokNumber, string(runes[i:j]), n)
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(runes) && (unicode.IsLetter(runes[j]) || unicode.IsDigit(runes[j]) || runes[j] == '_') {
				j++
			}
			emit(tokIdent, string(runes[i:j]), 0)
			i = j
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
		}
	}
	if len(toks) > 0 && toks[len(toks)-1].kind != tokNewline {
		toks = append(toks, token{kind: tokNewline, text: "\\n", line: line})
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

// keyword reports whether an identifier token equals the keyword
// (case-insensitive, Fortran style).
func keyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
