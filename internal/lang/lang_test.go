package lang

import (
	"strings"
	"testing"

	"softcache/internal/locality"
	"softcache/internal/loopir"
	"softcache/internal/tracegen"
)

const mvSource = `
# The paper's matrix-vector multiply, written in the source language.
program mv
array A(96, 96)
array X(96)
array Y(96)
do j1 = 0, 95
  load Y(j1)
  do j2 = 0, 95
    load A(j2, j1)
    load X(j2)
  end
  store Y(j1)
end
`

func TestParseMV(t *testing.T) {
	p, err := Parse(mvSource)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mv" {
		t.Fatalf("name = %q", p.Name)
	}
	if len(p.Accesses()) != 4 {
		t.Fatalf("accesses = %d", len(p.Accesses()))
	}
	// The analysis over the parsed program must match the hand-built MV:
	// A spatial-only, X and Y temporal+spatial.
	tags, err := locality.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	sum := locality.Summarize(tags)
	if sum.TemporalSites != 3 || sum.SpatialSites != 4 {
		t.Fatalf("tag summary = %+v", sum)
	}
	// And it must generate a trace.
	tr, err := tracegen.Generate(p, tracegen.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 96*(2+2*96) {
		t.Fatalf("trace length = %d", tr.Len())
	}
}

func TestParseSparseWithDirectives(t *testing.T) {
	src := `
program spmv
array A(300)
array X(40)
array Y(40)
index Idx = random(0, 40, 300) seed 7
index D = [0, 100, 200, 300]
do j1 = 0, 2
  load Y(j1) tags(temporal, spatial)
  do j2 = D[j1], D[j1+1] - 1
    load Idx(j2) tags(spatial)
    load A(j2) tags(spatial)
    load X(Idx[j2]) tags(temporal)
  end
  store Y(j1) tags(temporal, spatial)
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracegen.Generate(p, tracegen.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 3 rows x (2 Y refs) + 300 inner iterations x 3 refs.
	if tr.Len() != 3*2+300*3 {
		t.Fatalf("trace length = %d", tr.Len())
	}
	c := tr.CountTags()
	if c.TemporalOnly == 0 || c.SpatialOnly == 0 || c.Both == 0 {
		t.Fatalf("directive tags missing: %+v", c)
	}
}

func TestParseDriverCallPrefetchStep(t *testing.T) {
	src := `
program features
array X(64)
driver t = 0, 2
  do i = 0, 60 step 4
    load X(i)
    prefetch X(i + 8)
  end
  call helper
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	outer, ok := p.Body[0].(*loopir.Loop)
	if !ok || !outer.Opaque {
		t.Fatalf("driver loop not opaque: %+v", p.Body[0])
	}
	inner := outer.Body[0].(*loopir.Loop)
	if inner.Step != 4 {
		t.Fatalf("step = %d", inner.Step)
	}
	if _, ok := inner.Body[1].(*loopir.Prefetch); !ok {
		t.Fatalf("prefetch statement missing: %T", inner.Body[1])
	}
	if _, ok := outer.Body[1].(*loopir.Call); !ok {
		t.Fatalf("call statement missing: %T", outer.Body[1])
	}
	tr, err := tracegen.Generate(p, tracegen.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	demand, pf := 0, 0
	for _, r := range tr.Records {
		if r.SoftwarePrefetch {
			pf++
		} else {
			demand++
		}
	}
	if demand != 3*16 || pf == 0 {
		t.Fatalf("demand=%d prefetch=%d", demand, pf)
	}
}

func TestParseExpressions(t *testing.T) {
	src := `
program expr
array A(100, 100)
do i = 1, 9
  do j = 1, 9
    load A(2*i + j - 1, i)
    load A(j, 3*i + 2)
    store A(i - j + 50, j)
  end
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	accs := p.Accesses()
	lin, err := p.LinearSubscript(accs[0])
	if err != nil {
		t.Fatal(err)
	}
	// A(2i+j-1, i) linearised: (2i+j-1) + 100i = 102i + j - 1.
	if lin.Coef("i") != 102 || lin.Coef("j") != 1 || lin.Const != -1 {
		t.Fatalf("linearised = %+v", lin)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no program", "array A(4)\n", `expected "program"`},
		{"bad char", "program p\n@\n", "unexpected character"},
		{"missing end", "program p\narray A(4)\ndo i = 0, 3\nload A(i)\n", "missing 'end'"},
		{"stray end", "program p\nend\n", "'end' without"},
		{"bad dims", "program p\narray A(x)\n", "expected number"},
		{"undeclared", "program p\ndo i = 0, 3\nload B(i)\nend\n", "undeclared array"},
		{"bad tag", "program p\narray A(4)\ndo i = 0, 3\nload A(i) tags(zzz)\nend\n", "unknown tag"},
		{"double indirect", "program p\narray A(9)\ndata D = [1]\ndata E = [1]\ndo i = 0, 0\nload A(D[i] + E[i])\nend\n", "one indirect"},
		{"bad random", "program p\ndata D = random(5, 2, 10)\n", "need lo < hi"},
		{"junk after stmt", "program p\narray A(4) extra\n", "unexpected"},
		{"bad initialiser", "program p\ndata D = what\n", "initialiser"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if !strings.Contains(err.Error(), "line ") && tc.name != "undeclared" && tc.name != "double indirect" {
			t.Fatalf("%s: error %q lacks a line number", tc.name, err)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	src := "PROGRAM up\nARRAY A(8)\nDO i = 0, 7\nLOAD A(i)\nEND\n"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestMustParseAndStrip(t *testing.T) {
	p := MustParse(Strip(`
		program tiny
		array A(4)
		do i = 0, 3
		  load A(i)
		end
	`))
	if p.Name != "tiny" {
		t.Fatal("Strip/MustParse broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic on bad source")
		}
	}()
	MustParse("nonsense")
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `
program c
# a comment line
array A(4)   ! trailing comment

do i = 0, 3

  load A(i)  # inline
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Accesses()) != 1 {
		t.Fatal("comment handling broke the parse")
	}
}

func TestTokKindStrings(t *testing.T) {
	kinds := []tokKind{tokEOF, tokNewline, tokIdent, tokNumber, tokLParen,
		tokRParen, tokLBracket, tokRBracket, tokComma, tokEquals, tokPlus,
		tokMinus, tokStar, tokKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("kind %d has empty String", int(k))
		}
	}
}

func TestNegativeConstantsAndScaledTerms(t *testing.T) {
	src := `
program neg
array A(200)
data D = [-3, 5]
do i = 4, 99
  load A(2*i - 4)
  load A(-1*i + 100)
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	accs := p.Accesses()
	lin, _ := p.LinearSubscript(accs[0])
	if lin.Coef("i") != 2 || lin.Const != -4 {
		t.Fatalf("first subscript = %+v", lin)
	}
	lin2, _ := p.LinearSubscript(accs[1])
	if lin2.Coef("i") != -1 || lin2.Const != 100 {
		t.Fatalf("second subscript = %+v", lin2)
	}
	if p.Data["D"][0] != -3 {
		t.Fatal("negative data literal lost")
	}
}

func TestRandomInitialiserDeterminism(t *testing.T) {
	src := "program r\nindex I = random(0, 50, 100) seed 9\n"
	a, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Parse(src)
	for i := range a.Data["I"] {
		v := a.Data["I"][i]
		if v < 0 || v >= 50 {
			t.Fatalf("random value %d out of range", v)
		}
		if v != b.Data["I"][i] {
			t.Fatal("random initialiser must be deterministic per seed")
		}
	}
	c, _ := Parse("program r\nindex I = random(0, 50, 100) seed 10\n")
	same := true
	for i := range a.Data["I"] {
		if a.Data["I"][i] != c.Data["I"][i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}
