package lang

import (
	"strings"
	"testing"

	"softcache/internal/loopir"
)

// TestParseErrorLines pins the exact source line each diagnostic points
// at: a message without a usable location is half a diagnostic.
func TestParseErrorLines(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantLine string // the "line N:" prefix the error must carry
		wantMsg  string
	}{
		{
			"bad lower bound",
			"program p\narray A(4)\ndo i = , 3\nload A(i)\nend\n",
			"line 3:", "expected a subscript term",
		},
		{
			"missing comma in bounds",
			"program p\narray A(4)\ndo i = 0 3\nload A(i)\nend\n",
			"line 3:", "expected ','",
		},
		{
			"bad step",
			"program p\narray A(9)\ndo i = 0, 8 step x\nload A(i)\nend\n",
			"line 3:", "expected number",
		},
		{
			"unterminated loop",
			"program p\narray A(4)\ndo i = 0, 3\nload A(i)\n",
			"line 5:", "missing 'end'",
		},
		{
			"unterminated nested loop",
			"program p\narray A(4)\ndo i = 0, 3\ndo j = 0, 3\nload A(j)\nend\n",
			"line 7:", "missing 'end'",
		},
		{
			"malformed tags directive",
			"program p\narray A(4)\ndo i = 0, 3\nload A(i) tags(fast)\nend\n",
			"line 4:", "unknown tag",
		},
		{
			"unclosed tags directive",
			"program p\narray A(4)\ndo i = 0, 3\nload A(i) tags(temporal\nend\n",
			"line 4:", "expected ',' or ')' in tags directive",
		},
		{
			"number too large",
			"program p\narray A(99999999999999999999)\n",
			"line 2:", "too large",
		},
		{
			"random count too large",
			"program p\ndata D = random(0, 9, 2000000)\n",
			"line 2:", "random count",
		},
		{
			"indirect nesting too deep",
			"program p\narray A(4)\ndata D = [0]\ndo i = 0, 3\nload A(" +
				strings.Repeat("D[", 200) + "i" + strings.Repeat("]", 200) + ")\nend\n",
			"line 5:", "nested too deeply",
		},
		{
			"loop nesting too deep",
			"program p\n" + strings.Repeat("do i = 0, 3\n", 200),
			"line 102:", "nested too deeply",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("expected error")
			}
			msg := err.Error()
			if !strings.HasPrefix(msg, tc.wantLine) {
				t.Errorf("error %q does not point at %q", msg, tc.wantLine)
			}
			if !strings.Contains(msg, tc.wantMsg) {
				t.Errorf("error %q does not mention %q", msg, tc.wantMsg)
			}
		})
	}
}

// TestMinusChainFolds: unary minus chains fold without recursion and with
// correct parity.
func TestMinusChainFolds(t *testing.T) {
	p := MustParse("program p\narray A(10)\ndo i = 0, ----9\nload A(--i)\nend\n")
	loop := p.Body[0].(*loopir.Loop)
	if loop.Upper.Const != 9 {
		t.Errorf("----9 folded to %d, want 9", loop.Upper.Const)
	}
	acc := loop.Body[0].(*loopir.Access)
	if acc.Index[0].Coef("i") != 1 {
		t.Errorf("--i folded to coefficient %d, want 1", acc.Index[0].Coef("i"))
	}
	if _, err := Parse("program p\narray A(10)\ndo i = " + strings.Repeat("-", 100000) + "1, 3\nload A(i)\nend\n"); err != nil {
		t.Errorf("long minus chain should parse iteratively: %v", err)
	}
}

// TestPositions: every parsed statement carries the line/column of its
// keyword, and positions never leak into the printed program (Print
// round-trips a position-free rebuild identically).
func TestPositions(t *testing.T) {
	src := "program p\narray A(16)\ndriver t = 0, 1\n  do i = 0, 3\n    load A(i)\n    store A(i) tags(none)\n    prefetch A(i + 4)\n    call f\n  end\nend\n"
	p := MustParse(src)
	drv := p.Body[0].(*loopir.Loop)
	if drv.Pos != (loopir.Pos{Line: 3, Col: 1}) {
		t.Errorf("driver pos = %v, want 3:1", drv.Pos)
	}
	loop := drv.Body[0].(*loopir.Loop)
	if loop.Pos != (loopir.Pos{Line: 4, Col: 3}) {
		t.Errorf("do pos = %v, want 4:3", loop.Pos)
	}
	wants := []loopir.Pos{{Line: 5, Col: 5}, {Line: 6, Col: 5}, {Line: 7, Col: 5}, {Line: 8, Col: 5}}
	for i, st := range loop.Body {
		var got loopir.Pos
		switch s := st.(type) {
		case *loopir.Access:
			got = s.Pos
		case *loopir.Prefetch:
			got = s.Pos
		case *loopir.Call:
			got = s.Pos
		}
		if got != wants[i] {
			t.Errorf("stmt %d pos = %v, want %v", i, got, wants[i])
		}
	}
	if !drv.Pos.IsValid() || (loopir.Pos{}).IsValid() {
		t.Error("Pos.IsValid broken")
	}
	if (loopir.Pos{}).String() != "-" || drv.Pos.String() != "3:1" {
		t.Error("Pos.String broken")
	}

	// Rebuild the same program without positions: identical printing.
	q := loopir.NewProgram("p")
	q.DeclareArray("A", 16)
	q.Add(loopir.Driver("t", loopir.C(0), loopir.C(1),
		loopir.Do("i", loopir.C(0), loopir.C(3),
			loopir.Read("A", loopir.V("i")),
			loopir.Store("A", loopir.V("i")).WithTags(false, false),
			loopir.PrefetchOf("A", loopir.Plus(loopir.V("i"), 4)),
			&loopir.Call{Name: "f"},
		),
	))
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	if p.String() != q.String() {
		t.Errorf("positions leak into printing:\nparsed:\n%s\nrebuilt:\n%s", p, q)
	}
}
