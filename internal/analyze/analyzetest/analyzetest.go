// Package analyzetest runs an analyzer over fixture packages and
// checks its findings against `// want` expectations, the same testdata
// convention golang.org/x/tools/go/analysis/analysistest uses:
//
//	x := retained() // want `escapes the pool`
//
// Every expectation is a regular expression that must match exactly one
// finding reported on its line, and every finding must be claimed by an
// expectation — extra findings and unmatched expectations both fail the
// test. Fixture files live under the analyzer package's testdata/
// directory (invisible to go build) but may import real module packages
// (softcache/internal/trace and friends): imports are resolved through
// the build cache via `go list -export`, so the fixtures type-check
// against the actual code whose invariants the analyzer encodes.
package analyzetest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"softcache/internal/analyze"
)

// wantRe extracts expectations: one or more backquoted or quoted
// regexps after "// want".
var wantRe = regexp.MustCompile("// want (.*)$")

// expRe splits an expectation list into its quoted members.
var expRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Config adjusts how a fixture package is loaded.
type Config struct {
	// Path is the import path the fixture is type-checked under.
	// Analyzers that branch on package path (cliexit) get the story the
	// fixture wants to tell, e.g. "softcache/cmd/fake". Defaults to
	// "softcache/fixture/<dir base name>".
	Path string
	// Tests reports findings in _test.go fixture files too.
	Tests bool
}

// Run applies the analyzer to the fixture package in dir (relative to
// the caller's package directory, conventionally "testdata/<case>") and
// diffs findings against the `// want` expectations.
func Run(t *testing.T, a *analyze.Analyzer, dir string, cfg Config) {
	t.Helper()
	RunAnalyzers(t, []*analyze.Analyzer{a}, dir, cfg)
}

// RunAnalyzers is Run for a suite sharing one fixture (the shared
// driver behaviors — suppression, hygiene findings — are themselves
// tested this way, with the pseudo-analyzer "ignore" in play).
func RunAnalyzers(t *testing.T, analyzers []*analyze.Analyzer, dir string, cfg Config) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analyzetest: %v", err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("analyzetest: no fixture files in %s", dir)
	}
	if cfg.Path == "" {
		cfg.Path = "softcache/fixture/" + filepath.Base(dir)
	}

	fset := token.NewFileSet()
	pkg, err := analyze.CheckFiles(fset, analyze.ModuleImporter(fset, "."), cfg.Path, "", names)
	if err != nil {
		t.Fatalf("analyzetest: %v", err)
	}
	diags, err := analyze.RunAnalyzers(pkg, analyzers, analyze.Options{Tests: cfg.Tests})
	if err != nil {
		t.Fatalf("analyzetest: %v", err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			k := key{file: name, line: i + 1}
			for _, exp := range expRe.FindAllStringSubmatch(m[1], -1) {
				pat := exp[1]
				if pat == "" {
					pat = exp[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, k.line, pat, err)
				}
				wants[k] = append(wants[k], re)
			}
			if len(wants[k]) == 0 {
				t.Fatalf("%s:%d: // want with no quoted or backquoted pattern", name, k.line)
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{file: pos.Filename, line: pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s:%d: unexpected finding [%s]: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected finding matching %q was not reported", k.file, k.line, re)
		}
	}
}
