package lockguard_test

import (
	"testing"

	"softcache/internal/analyze/analyzetest"
	"softcache/internal/analyze/lockguard"
)

func TestBad(t *testing.T) {
	analyzetest.Run(t, lockguard.Analyzer, "testdata/bad", analyzetest.Config{})
}

func TestGood(t *testing.T) {
	analyzetest.Run(t, lockguard.Analyzer, "testdata/good", analyzetest.Config{})
}
