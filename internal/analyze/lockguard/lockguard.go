// Package lockguard enforces "// guarded by <mu>" field annotations: a
// struct field carrying that comment may only be read or written while
// the named sibling mutex is held. Holding is computed by walking each
// function body as a control-flow graph in miniature — branch states
// merge by intersection, loop bodies run to a fixed point, deferred
// Unlocks keep the lock held to function end — so the usual patterns
// (lock/touch/unlock windows, early returns, re-lock later) check
// precisely without annotations beyond the field comment.
//
// Two conventions ride along, both taken from how internal/serve's
// cache is written:
//
//   - a method whose name ends in "Locked" asserts "caller holds the
//     receiver's guards": its body starts in the held state, and
//     calling it requires the guards held at the call site;
//   - function literals are analyzed as their own functions starting
//     unheld (a closure that needs the lock must take it).
package lockguard

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"softcache/internal/analyze"
)

// Analyzer is the lockguard invariant check.
var Analyzer = &analyze.Analyzer{
	Name: "lockguard",
	Doc:  `fields annotated "// guarded by <mu>" are only accessed with that mutex held`,
	Run:  run,
}

var guardRe = regexp.MustCompile(`guarded by (\w+)`)

// guards maps an annotated struct's type name to field -> guard field.
type guards map[*types.TypeName]map[string]string

// lockKey identifies one mutex instance reachable in a function: the
// root variable, the field path from it to the guarded struct, and the
// guard field. c.mu is {c, "", "mu"}; c.traces.mu is {c, "traces",
// "mu"} — the path keeps distinct sub-structs of one root distinct.
type lockKey struct {
	root  types.Object
	path  string
	guard string
}

// state is the set of locks known held on every path to this point.
// A nil state means "unreachable" — the path ended in a return or
// branch — and acts as the identity at joins, so an early
// unlock-and-return branch does not poison the state after the if.
type state map[lockKey]bool

func (s state) clone() state {
	if s == nil {
		return nil
	}
	t := make(state, len(s))
	for k := range s {
		t[k] = true
	}
	return t
}

func intersect(a, b state) state {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	t := make(state)
	for k := range a {
		if b[k] {
			t[k] = true
		}
	}
	return t
}

func run(pass *analyze.Pass) error {
	g := collectGuards(pass)
	if len(g) == 0 {
		return nil
	}
	c := &checker{pass: pass, guards: g}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

// collectGuards reads the field annotations off every struct type
// declaration, validating that the named guard is a sibling field.
func collectGuards(pass *analyze.Pass) guards {
	g := make(guards)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				ann := commentText(fld)
				m := guardRe.FindStringSubmatch(ann)
				if m == nil {
					continue
				}
				guard := m[1]
				if !fieldNames[guard] {
					pass.Reportf(fld.Pos(), "guard %q named in annotation is not a field of %s", guard, ts.Name.Name)
					continue
				}
				if g[tn] == nil {
					g[tn] = make(map[string]string)
				}
				for _, name := range fld.Names {
					g[tn][name.Name] = guard
				}
			}
			return true
		})
	}
	return g
}

func commentText(fld *ast.Field) string {
	var parts []string
	if fld.Doc != nil {
		parts = append(parts, fld.Doc.Text())
	}
	if fld.Comment != nil {
		parts = append(parts, fld.Comment.Text())
	}
	return strings.Join(parts, " ")
}

type checker struct {
	pass   *analyze.Pass
	guards guards
}

// typeGuards resolves the annotation table for an expression's type
// (through pointers).
func (c *checker) typeGuards(t types.Type) map[string]string {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		if ptr, ok := t.(*types.Pointer); ok {
			named, ok = ptr.Elem().(*types.Named)
			if !ok {
				return nil
			}
		} else {
			return nil
		}
	}
	return c.guards[named.Obj()]
}

// resolveBase resolves the expression holding a guarded struct — the
// receiver of a field access or lock call — to its root variable and
// the field path from it: c -> (c, ""), c.traces -> (c, "traces").
// Bases rooted in anything but a plain variable (map lookups, call
// results) are out of scope for the analysis.
func resolveBase(pass *analyze.Pass, expr ast.Expr) (types.Object, string, bool) {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return resolveBase(pass, e.X)
	case *ast.StarExpr:
		return resolveBase(pass, e.X)
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		return obj, "", obj != nil
	case *ast.SelectorExpr:
		root, path, ok := resolveBase(pass, e.X)
		if !ok {
			return nil, "", false
		}
		if path != "" {
			path += "."
		}
		return root, path + e.Sel.Name, true
	}
	return nil, "", false
}

// exprType resolves the static type of a base expression.
func exprType(pass *analyze.Pass, expr ast.Expr) types.Type {
	if id, ok := expr.(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
		return nil
	}
	if tv, ok := pass.TypesInfo.Types[expr]; ok {
		return tv.Type
	}
	return nil
}

// checkFunc analyzes one declared function; literals inside are queued
// and analyzed as their own functions.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	entry := make(state)
	if strings.HasSuffix(fd.Name.Name, "Locked") && fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recv := fd.Recv.List[0].Names[0]
		if obj := c.pass.TypesInfo.Defs[recv]; obj != nil {
			for _, guard := range c.typeGuards(obj.Type()) {
				entry[lockKey{obj, "", guard}] = true
			}
		}
	}
	w := &walker{c: c, report: true}
	w.walkBlock(fd.Body, entry)
	// Worklist: literals may nest literals of their own.
	queue := w.lits
	for i := 0; i < len(queue); i++ {
		lw := &walker{c: c, report: true}
		lw.walkBlock(queue[i].Body, make(state))
		queue = append(queue, lw.lits...)
	}
}

type walker struct {
	c      *checker
	report bool
	lits   []*ast.FuncLit // deferred: analyzed as separate functions
}

// walkBlock threads the state through a statement list, stopping at
// the first terminating statement (everything after it is
// unreachable).
func (w *walker) walkBlock(b *ast.BlockStmt, s state) state {
	if s == nil {
		return nil
	}
	for _, stmt := range b.List {
		s = w.walkStmt(stmt, s)
		if s == nil {
			break
		}
	}
	return s
}

func (w *walker) walkStmt(stmt ast.Stmt, s state) state {
	if s == nil {
		return nil
	}
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		return w.walkBlock(st, s)
	case *ast.ExprStmt:
		return w.walkExpr(st.X, s)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s = w.walkExpr(e, s)
		}
		for _, e := range st.Lhs {
			s = w.walkExpr(e, s)
		}
		return s
	case *ast.ReturnStmt:
		ast.Inspect(stmt, w.exprVisitor(&s))
		return nil
	case *ast.BranchStmt:
		// break/continue/goto: approximate as path-terminating; the
		// loop fixed point re-derives what survives.
		return nil
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		ast.Inspect(stmt, w.exprVisitor(&s))
		return s
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function; a deferred literal is its own function.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.lits = append(w.lits, lit)
			return s
		}
		// Check argument expressions, but swallow the Unlock effect.
		for _, arg := range st.Call.Args {
			s = w.walkExpr(arg, s)
		}
		w.checkAccess(st.Call.Fun, s)
		return s
	case *ast.IfStmt:
		if st.Init != nil {
			s = w.walkStmt(st.Init, s)
		}
		s = w.walkExpr(st.Cond, s)
		then := w.walkBlock(st.Body, s.clone())
		if st.Else != nil {
			els := w.walkStmt(st.Else, s.clone())
			return intersect(then, els)
		}
		return intersect(then, s)
	case *ast.ForStmt:
		if st.Init != nil {
			s = w.walkStmt(st.Init, s)
		}
		return w.walkLoop(st.Body, st.Cond, s)
	case *ast.RangeStmt:
		s = w.walkExpr(st.X, s)
		return w.walkLoop(st.Body, nil, s)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s = w.walkStmt(st.Init, s)
		}
		if st.Tag != nil {
			s = w.walkExpr(st.Tag, s)
		}
		return w.walkCases(st.Body, s)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s = w.walkStmt(st.Init, s)
		}
		s = w.walkStmt(st.Assign, s)
		return w.walkCases(st.Body, s)
	case *ast.SelectStmt:
		return w.walkCases(st.Body, s)
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, s)
	case *ast.GoStmt:
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.lits = append(w.lits, lit)
		} else {
			w.checkAccess(st.Call.Fun, s)
		}
		for _, arg := range st.Call.Args {
			s = w.walkExpr(arg, s)
		}
		return s
	default:
		return s
	}
}

// walkLoop runs the body to a fixed point: the state feeding iteration
// N+1 is the entry state intersected with iteration N's exit, so a
// lock released inside the loop is not considered held at the top of
// the next pass. The first, state-finding pass is silent; the second
// reports.
func (w *walker) walkLoop(body *ast.BlockStmt, cond ast.Expr, s state) state {
	probe := &walker{c: w.c, report: false}
	if cond != nil {
		s = w.walkExpr(cond, s)
	}
	exit1 := probe.walkBlock(body, s.clone())
	entry := intersect(s, exit1)
	exit := w.walkBlock(body, entry.clone())
	return intersect(s, exit)
}

func (w *walker) walkCases(body *ast.BlockStmt, s state) state {
	out := s
	first := true
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch cc := cs.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				s = w.walkExpr(e, s)
			}
			stmts = cc.Body
			hasDefault = hasDefault || cc.List == nil
		case *ast.CommClause:
			if cc.Comm != nil {
				s = w.walkStmt(cc.Comm, s.clone())
			}
			stmts = cc.Body
			hasDefault = hasDefault || cc.Comm == nil
		}
		cur := s.clone()
		for _, st := range stmts {
			cur = w.walkStmt(st, cur)
		}
		if first {
			out = cur
			first = false
		} else {
			out = intersect(out, cur)
		}
	}
	if !hasDefault {
		out = intersect(out, s)
	}
	return out
}

// walkExpr applies lock/unlock effects and checks accesses inside one
// expression, left to right.
func (w *walker) walkExpr(expr ast.Expr, s state) state {
	if s == nil {
		return nil
	}
	ast.Inspect(expr, w.exprVisitor(&s))
	return s
}

// exprVisitor returns the ast.Inspect callback carrying the state
// through an expression tree.
func (w *walker) exprVisitor(s *state) func(ast.Node) bool {
	return func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			w.lits = append(w.lits, e)
			return false
		case *ast.CallExpr:
			if key, op, ok := w.lockOp(e); ok {
				switch op {
				case "Lock", "RLock":
					(*s)[key] = true
				case "Unlock", "RUnlock":
					delete(*s, key)
				}
				return false
			}
			w.checkLockedCall(e, *s)
			return true
		case *ast.SelectorExpr:
			w.checkAccess(e, *s)
			// Keep walking: the base may itself contain calls.
			return true
		}
		return true
	}
}

// lockOp recognizes base.guard.Lock()/Unlock()/RLock()/RUnlock().
func (w *walker) lockOp(call *ast.CallExpr) (lockKey, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	op := sel.Sel.Name
	if op != "Lock" && op != "Unlock" && op != "RLock" && op != "RUnlock" {
		return lockKey{}, "", false
	}
	mu, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	root, path, ok := resolveBase(w.c.pass, mu.X)
	if !ok {
		return lockKey{}, "", false
	}
	// Only mutexes that actually guard something participate.
	tg := w.c.typeGuards(exprType(w.c.pass, mu.X))
	if tg == nil {
		return lockKey{}, "", false
	}
	guarded := false
	for _, g := range tg {
		if g == mu.Sel.Name {
			guarded = true
		}
	}
	if !guarded {
		return lockKey{}, "", false
	}
	return lockKey{root, path, mu.Sel.Name}, op, true
}

// checkAccess flags base.field reads/writes of annotated fields made
// without the guard held.
func (w *walker) checkAccess(expr ast.Expr, s state) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return
	}
	root, path, ok := resolveBase(w.c.pass, sel.X)
	if !ok {
		return
	}
	tg := w.c.typeGuards(exprType(w.c.pass, sel.X))
	if tg == nil {
		return
	}
	guard, ok := tg[sel.Sel.Name]
	if !ok {
		return
	}
	if !w.report {
		return
	}
	if !s[lockKey{root, path, guard}] {
		base := render(root, path)
		w.c.pass.Reportf(sel.Pos(), "%s.%s is guarded by %s.%s, which is not held here",
			base, sel.Sel.Name, base, guard)
	}
}

// render prints a base for diagnostics: the root name plus field path.
func render(root types.Object, path string) string {
	if path == "" {
		return root.Name()
	}
	return root.Name() + "." + path
}

// checkLockedCall enforces the *Locked suffix convention at call sites.
func (w *walker) checkLockedCall(call *ast.CallExpr, s state) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasSuffix(sel.Sel.Name, "Locked") {
		return
	}
	root, path, ok := resolveBase(w.c.pass, sel.X)
	if !ok {
		return
	}
	tg := w.c.typeGuards(exprType(w.c.pass, sel.X))
	if tg == nil || !w.report {
		return
	}
	seen := make(map[string]bool)
	for _, guard := range tg {
		if seen[guard] {
			continue
		}
		seen[guard] = true
		if !s[lockKey{root, path, guard}] {
			base := render(root, path)
			w.c.pass.Reportf(call.Pos(), "%s.%s asserts the caller holds %s.%s, which is not held here",
				base, sel.Sel.Name, base, guard)
		}
	}
}
