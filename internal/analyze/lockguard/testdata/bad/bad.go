// Fixture: guarded-field accesses the analyzer must flag.
package bad

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func bare(c *counter) {
	c.n++ // want `guarded by c.mu, which is not held`
}

func afterUnlock(c *counter) {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.n = 2 // want `guarded by c.mu, which is not held`
}

func halfBranch(c *counter, b bool) {
	if b {
		c.mu.Lock()
	}
	c.n = 3 // want `guarded by c.mu, which is not held`
	if b {
		c.mu.Unlock()
	}
}

func unlockInLoop(c *counter, xs []int) {
	c.mu.Lock()
	for range xs {
		c.n++ // want `guarded by c.mu, which is not held`
		c.mu.Unlock()
	}
}

func (c *counter) bumpLocked() { c.n++ }

func callUnheld(c *counter) {
	c.bumpLocked() // want `asserts the caller holds c.mu`
}

func closureUnheld(c *counter) func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() {
		c.n++ // want `guarded by c.mu, which is not held`
	}
}

type orphan struct {
	data int // want `guard "gone" named in annotation is not a field of orphan` // guarded by gone
}
