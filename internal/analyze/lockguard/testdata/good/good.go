// Fixture: the blessed locking idioms — none of these may be flagged.
package good

import "sync"

type counter struct {
	mu sync.Mutex
	n  int         // guarded by mu
	m  map[int]int // guarded by mu
}

// window is the lock/touch/unlock shape of TraceCache.Get.
func window(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// deferred holds to function end through the deferred Unlock.
func deferred(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// early unlocks and returns inside a branch; the fall-through path
// still holds the lock.
func early(c *counter, done bool) {
	c.mu.Lock()
	if done {
		c.n = 1
		c.mu.Unlock()
		return
	}
	c.n = 2
	c.mu.Unlock()
}

// relock gives the lock up and takes it again.
func relock(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.mu.Lock()
	c.n--
	c.mu.Unlock()
}

// drainLocked follows the *Locked convention: the body assumes the
// caller holds c.mu.
func (c *counter) drainLocked() {
	for k := range c.m {
		delete(c.m, k)
	}
	c.n = 0
}

// viaLocked calls the Locked method with the guard held.
func viaLocked(c *counter) {
	c.mu.Lock()
	c.drainLocked()
	c.mu.Unlock()
}

// perIteration locks inside the loop body each pass.
func perIteration(c *counter, xs []int) {
	for _, x := range xs {
		c.mu.Lock()
		c.n += x
		c.mu.Unlock()
	}
}

// closureLocks: a literal that takes the lock itself is fine.
func closureLocks(c *counter) func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}
}

// nested guards reached through a field path, the bench.Context shape.
type owner struct {
	inner *counter
}

func throughPath(o *owner) {
	o.inner.mu.Lock()
	o.inner.n++
	o.inner.mu.Unlock()
}

// switchHeld: every case runs under the lock taken before the switch.
func switchHeld(c *counter, k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch k {
	case 0:
		c.n = 0
	default:
		c.n += k
	}
}
