package analyze

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
)

// The `go vet -vettool` protocol, reverse of cmd/go's side:
//
//  1. `tool -V=full` must print a version line cmd/go can hash for the
//     build cache ("name version devel comments-go-here buildID=<hex>").
//  2. `tool -flags` must print a JSON description of the tool's flags
//     so cmd/go can validate what the user passed.
//  3. Per package, cmd/go invokes `tool [flags] <file>.cfg` where the
//     cfg (vetConfig) names the Go files, the import remapping and the
//     export-data file of every dependency. The tool must write the
//     VetxOutput file (facts for importers — always empty here, the
//     shipped analyzers are fact-free) and report diagnostics on
//     stderr (or stdout as JSON under -json), exiting nonzero when it
//     found anything.
//
// Dependency packages arrive with VetxOnly set: cmd/go only wants
// their facts. Having none, the tool writes the empty vetx and returns
// immediately, which keeps `go vet -vettool` over ./... fast — only
// the packages of this module are ever type-checked.

// vetConfig mirrors the JSON cmd/go writes for each unit of work.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// PrintVersion emits the -V=full line. The buildID is a hash of the
// executable so cmd/go's vet result cache invalidates when the tool
// changes.
func PrintVersion(w io.Writer, progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// PrintFlags emits the -flags JSON: the per-analyzer selection bools
// plus the driver flags cmd/go is allowed to forward.
func PrintFlags(w io.Writer, analyzers []*Analyzer) {
	type flagDesc struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	flags := []flagDesc{
		{Name: "json", Bool: true, Usage: "emit JSON diagnostics"},
		{Name: "tests", Bool: true, Usage: "also report findings in _test.go files"},
		{Name: "c", Bool: false, Usage: "display offending line with this many lines of context (ignored)"},
	}
	for _, a := range analyzers {
		flags = append(flags, flagDesc{Name: a.Name, Bool: true, Usage: "enable " + a.Name + " analysis"})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(flags)
}

// Unitchecker processes one cfg file and returns the diagnostics (nil
// for fact-only units) along with the unit's package ID for -json
// aggregation. Operational failures return an error.
func Unitchecker(cfgFile string, analyzers []*Analyzer, opts Options) ([]Diagnostic, *token.FileSet, string, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, nil, "", err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, nil, "", fmt.Errorf("parsing %s: %w", cfgFile, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, nil, cfg.ID, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil, cfg.ID, nil
	}

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, func(path string) (string, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if f, ok := cfg.PackageFile[path]; ok {
			return f, nil
		}
		return "", fmt.Errorf("no export data for %q in vet config %s", path, cfg.ID)
	})
	pkg, err := CheckFiles(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, fset, cfg.ID, nil
		}
		return nil, nil, cfg.ID, err
	}
	diags, err := RunAnalyzers(pkg, analyzers, opts)
	return diags, fset, cfg.ID, err
}

// WriteDiagnosticsText renders findings the way vet tools
// conventionally do on stderr: file:line:col: message [analyzer].
func WriteDiagnosticsText(w io.Writer, fset *token.FileSet, diags []Diagnostic) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s: %s [%s]\n", relPosition(pos), d.Message, d.Analyzer)
	}
}

// relPosition renders a position with the file path relativised to the
// working directory when possible — stable output for tests and CI
// regardless of checkout location.
func relPosition(pos token.Position) string {
	name := pos.Filename
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !filepath.IsAbs(rel) && rel != "" && !hasDotDotPrefix(rel) {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d", name, pos.Line, pos.Column)
}

func hasDotDotPrefix(p string) bool {
	return p == ".." || len(p) >= 3 && p[:3] == ".."+string(filepath.Separator)
}

// jsonDiagnostic is the one-line machine shape shared by the vet JSON
// protocol and softcache-analyze -json.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteDiagnosticsJSON renders findings one JSON object per line.
func WriteDiagnosticsJSON(w io.Writer, fset *token.FileSet, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if err := enc.Encode(jsonDiagnostic{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteVetJSON renders findings in the aggregate shape `go vet -json`
// expects from a vettool: {pkgid: {analyzer: [{posn, message}]}}.
func WriteVetJSON(w io.Writer, fset *token.FileSet, pkgID string, diags []Diagnostic) error {
	type vetDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]vetDiag)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], vetDiag{
			Posn:    fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column),
			Message: d.Message,
		})
	}
	// encoding/json emits map keys sorted, so the output is stable.
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(map[string]map[string][]vetDiag{pkgID: byAnalyzer})
}
