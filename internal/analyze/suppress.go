package analyze

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//softcache:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive on its own line suppresses matching findings on the next
// line; a trailing directive suppresses findings on its own line. The
// reason is mandatory, and a directive that suppresses nothing (for an
// analyzer that actually ran) is itself reported — dead suppressions
// are how real findings sneak back in.
const ignorePrefix = "softcache:ignore"

type ignoreDirective struct {
	pos       token.Pos
	file      string
	line      int // the source line the directive applies to
	analyzers []string
	reason    string
	used      bool
}

// parseIgnores collects every well-formed directive in the package and
// reports malformed ones (missing analyzer or missing reason) as
// findings under the pseudo-analyzer name "ignore".
func parseIgnores(pkg *Package, opts Options) (directives []*ignoreDirective, malformed []Diagnostic) {
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		if !opts.Tests && strings.HasSuffix(filename, "_test.go") {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "ignore",
						Message:  "softcache:ignore needs an analyzer name and a reason",
					})
					continue
				}
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "ignore",
						Message:  "softcache:ignore " + fields[0] + " needs a written reason",
					})
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if standaloneComment(pkg.Fset, f, c.Pos()) {
					// Directive on its own line: it governs the next one.
					line++
				}
				directives = append(directives, &ignoreDirective{
					pos:       c.Pos(),
					file:      pos.Filename,
					line:      line,
					analyzers: strings.Split(fields[0], ","),
					reason:    strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return directives, malformed
}

// standaloneComment reports whether no code starts before pos on its
// source line — i.e. the comment is the first thing on the line.
func standaloneComment(fset *token.FileSet, f *ast.File, pos token.Pos) bool {
	p := fset.Position(pos)
	standalone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !standalone {
			return false
		}
		np := fset.Position(n.Pos())
		if np.Line == p.Line && np.Column < p.Column {
			standalone = false
			return false
		}
		// Prune subtrees that end before the target line.
		return fset.Position(n.End()).Line >= p.Line
	})
	return standalone
}

// applyIgnores filters diags through the package's directives and
// appends the hygiene findings: malformed directives and directives
// that matched nothing.
func applyIgnores(pkg *Package, analyzers []*Analyzer, diags []Diagnostic, opts Options) []Diagnostic {
	directives, malformed := parseIgnores(pkg, opts)
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		suppressed := false
		for _, dir := range directives {
			if dir.file != pos.Filename || dir.line != pos.Line {
				continue
			}
			for _, name := range dir.analyzers {
				if name == d.Analyzer {
					dir.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}

	kept = append(kept, malformed...)
	for _, dir := range directives {
		if dir.used {
			continue
		}
		relevant := false
		for _, name := range dir.analyzers {
			if ran[name] {
				relevant = true
			}
		}
		if relevant {
			kept = append(kept, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "ignore",
				Message:  "softcache:ignore " + strings.Join(dir.analyzers, ",") + " suppresses nothing; delete it",
			})
		}
	}
	return kept
}
