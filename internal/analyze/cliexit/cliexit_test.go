package cliexit_test

import (
	"testing"

	"softcache/internal/analyze/analyzetest"
	"softcache/internal/analyze/cliexit"
)

func TestLibrary(t *testing.T) {
	analyzetest.Run(t, cliexit.Analyzer, "testdata/lib", analyzetest.Config{})
}

func TestCommandGood(t *testing.T) {
	analyzetest.Run(t, cliexit.Analyzer, "testdata/cmdgood", analyzetest.Config{Path: "softcache/cmd/fake"})
}

func TestCommandBad(t *testing.T) {
	analyzetest.Run(t, cliexit.Analyzer, "testdata/cmdbad", analyzetest.Config{Path: "softcache/cmd/fakebad"})
}

func TestExampleMain(t *testing.T) {
	analyzetest.Run(t, cliexit.Analyzer, "testdata/egmain", analyzetest.Config{})
}
