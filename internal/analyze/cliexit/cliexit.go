// Package cliexit keeps process termination at the edges. The
// softcache commands share one exit discipline: logic lives in a
// testable run function returning an exit code through internal/cli,
// and func main is a one-liner — os.Exit(run(...)). That discipline
// is what makes the exit-code contract (0 ok, 1 findings, 2 usage or
// operational error) pinnable by tests; a bare os.Exit or log.Fatal
// buried in a helper bypasses it, skips deferred cleanup, and makes
// the call path untestable.
//
// The rules by package flavour:
//
//   - library packages (anything not named main): every os.Exit and
//     log.Fatal* is flagged — libraries return errors;
//   - command mains (import path under softcache/cmd/): os.Exit may
//     appear only inside func main and must wrap a call expression
//     (the run function or an internal/cli helper) so the code has a
//     single auditable source; log.Fatal* is banned outright;
//   - other mains (examples/): os.Exit and log.Fatal* are tolerated,
//     but only inside func main — examples are demonstration scripts,
//     not infrastructure, and log.Fatal in a straight-line main is
//     their idiom.
package cliexit

import (
	"go/ast"
	"go/types"
	"strings"

	"softcache/internal/analyze"
)

// Analyzer is the cliexit invariant check.
var Analyzer = &analyze.Analyzer{
	Name: "cliexit",
	Doc:  "process exit flows through internal/cli: no bare os.Exit/log.Fatal outside cmd main functions",
	Run:  run,
}

func run(pass *analyze.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	isCmd := strings.Contains(pass.Pkg.Path(), "/cmd/") || strings.HasPrefix(pass.Pkg.Path(), "cmd/")

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inMain := isMain && fd.Name.Name == "main" && fd.Recv == nil
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind, name := exitCall(pass, call)
				if kind == "" {
					return true
				}
				switch {
				case !isMain:
					pass.Reportf(call.Pos(),
						"%s terminates the process from a library package; return an error and let the command map it through internal/cli", name)
				case isCmd && kind == "fatal":
					pass.Reportf(call.Pos(),
						"%s in a command bypasses the internal/cli exit-code contract; return an error from run instead", name)
				case isCmd && !inMain:
					pass.Reportf(call.Pos(),
						"%s outside func main; commands exit once, via os.Exit(run(...)) in main", name)
				case isCmd && !wrapsCall(call):
					pass.Reportf(call.Pos(),
						"os.Exit argument should be the run function's result so the exit code has one auditable source")
				case !isCmd && !inMain:
					pass.Reportf(call.Pos(),
						"%s outside func main; keep example termination in the main function", name)
				}
				return true
			})
		}
	}
	return nil
}

// exitCall classifies a call as os.Exit ("exit") or log.Fatal*
// ("fatal"), returning the rendered name for diagnostics.
func exitCall(pass *analyze.Pass, call *ast.CallExpr) (kind, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	switch {
	case fn.Pkg().Path() == "os" && fn.Name() == "Exit":
		return "exit", "os.Exit"
	case fn.Pkg().Path() == "log" && strings.HasPrefix(fn.Name(), "Fatal"):
		return "fatal", "log." + fn.Name()
	}
	return "", ""
}

// wrapsCall reports whether the single os.Exit argument is itself a
// call expression — os.Exit(run(...)), os.Exit(cli.Code(err)).
func wrapsCall(call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	arg := call.Args[0]
	for {
		if p, ok := arg.(*ast.ParenExpr); ok {
			arg = p.X
			continue
		}
		break
	}
	_, ok := arg.(*ast.CallExpr)
	return ok
}
