// Fixture: a library package — every process-terminating call is a
// finding.
package lib

import (
	"errors"
	"log"
	"os"
)

func broken() {
	log.Fatal("boom") // want `log.Fatal terminates the process from a library package`
}

func alsoBroken(code int) {
	os.Exit(code) // want `os.Exit terminates the process from a library package`
}

func fatalf(err error) {
	log.Fatalf("bad: %v", err) // want `log.Fatalf terminates the process from a library package`
}

// right returns the error and lets the command decide.
func right(fail bool) error {
	if fail {
		return errors.New("boom")
	}
	return nil
}
