// Fixture: a command that breaks the exit discipline in every way.
package main

import (
	"log"
	"os"
)

func helper() {
	os.Exit(1) // want `os.Exit outside func main`
}

func fatalHelper() {
	log.Fatal("no") // want `bypasses the internal/cli exit-code contract`
}

func main() {
	log.Fatalln("x") // want `bypasses the internal/cli exit-code contract`
	os.Exit(3)       // want `should be the run function's result`
	helper()
}
