// Fixture: an examples-style main — log.Fatal in main is the idiom,
// but termination may not leak into helpers.
package main

import (
	"errors"
	"log"
	"os"
)

func helper() {
	log.Fatal("no") // want `log.Fatal outside func main; keep example termination in the main function`
}

func work() error {
	return errors.New("boom")
}

func main() {
	if err := work(); err != nil {
		log.Fatal(err)
	}
	helper()
	os.Exit(0)
}
