// Fixture: the blessed command shape — a one-line main wrapping run.
package main

import (
	"fmt"
	"io"
	"os"
)

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		fmt.Fprintln(stderr, "fake: unexpected arguments")
		return 2
	}
	fmt.Fprintln(stdout, "ok")
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
