package analyze

import (
	"bytes"
	"encoding/json"
	"go/token"
	"regexp"
	"strings"
	"testing"
)

func TestPrintVersion(t *testing.T) {
	var buf bytes.Buffer
	PrintVersion(&buf, "softcache-analyze")
	// cmd/go parses this line to extract a build ID for its vet result
	// cache; the x/tools wire format is the one it accepts.
	re := regexp.MustCompile(`^softcache-analyze version devel comments-go-here buildID=[0-9a-f]+\n$`)
	if !re.MatchString(buf.String()) {
		t.Fatalf("version line %q does not match the vettool wire format", buf.String())
	}
}

func TestPrintFlags(t *testing.T) {
	var buf bytes.Buffer
	PrintFlags(&buf, []*Analyzer{stub})
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(buf.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output is not a JSON flag list: %v\n%s", err, buf.String())
	}
	names := make(map[string]bool)
	for _, f := range flags {
		names[f.Name] = true
	}
	for _, want := range []string{"json", "tests", "stub"} {
		if !names[want] {
			t.Errorf("-flags output missing %q: %s", want, buf.String())
		}
	}
}

// diagFixture builds a fileset with one fake file and two positioned
// diagnostics for the writer tests.
func diagFixture() (*token.FileSet, []Diagnostic) {
	fset := token.NewFileSet()
	f := fset.AddFile("pkg/file.go", -1, 1000)
	return fset, []Diagnostic{
		{Pos: f.Pos(10), Analyzer: "stub", Message: "first"},
		{Pos: f.Pos(20), Analyzer: "stub", Message: "second"},
	}
}

func TestWriteDiagnosticsJSONIsOneObjectPerLine(t *testing.T) {
	fset, diags := diagFixture()
	var buf bytes.Buffer
	if err := WriteDiagnosticsJSON(&buf, fset, diags); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want one JSON object per finding, got %d lines:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var d struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line %q is not a JSON object: %v", line, err)
		}
		if d.File != "pkg/file.go" || d.Analyzer != "stub" || d.Line == 0 {
			t.Errorf("diagnostic fields not populated: %+v", d)
		}
	}
}

func TestWriteVetJSONShape(t *testing.T) {
	fset, diags := diagFixture()
	var buf bytes.Buffer
	if err := WriteVetJSON(&buf, fset, "softcache/internal/x", diags); err != nil {
		t.Fatal(err)
	}
	var agg map[string]map[string][]struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &agg); err != nil {
		t.Fatalf("vet JSON: %v\n%s", err, buf.String())
	}
	byAnalyzer, ok := agg["softcache/internal/x"]
	if !ok {
		t.Fatalf("missing package key: %s", buf.String())
	}
	if len(byAnalyzer["stub"]) != 2 {
		t.Fatalf("want 2 stub findings, got %v", byAnalyzer)
	}
}

func TestLoadTypechecksRealPackage(t *testing.T) {
	pkgs, err := Load("../..", []string{"softcache/internal/cli"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Types.Name() != "cli" {
		t.Fatalf("Load: got %v", pkgs)
	}
	if len(pkgs[0].Files) == 0 || pkgs[0].Info == nil {
		t.Fatal("Load returned an unparsed or untyped package")
	}
}
