// Package passes is the registry of softcache's own analyzers — the
// single list every driver (cmd/softcache-analyze standalone, the
// go vet -vettool path, and the suite tests) runs, so "the suite" means
// the same thing everywhere.
package passes

import (
	"fmt"

	"softcache/internal/analyze"
	"softcache/internal/analyze/cliexit"
	"softcache/internal/analyze/ctxpoll"
	"softcache/internal/analyze/lockguard"
	"softcache/internal/analyze/metrictext"
	"softcache/internal/analyze/poolescape"
)

// All returns the full suite in a fresh slice, in stable name order.
func All() []*analyze.Analyzer {
	return []*analyze.Analyzer{
		cliexit.Analyzer,
		ctxpoll.Analyzer,
		lockguard.Analyzer,
		metrictext.Analyzer,
		poolescape.Analyzer,
	}
}

// Select resolves analyzer names to the suite subset, preserving the
// registry order. An unknown name is an operational error.
func Select(names []string) ([]*analyze.Analyzer, error) {
	if len(names) == 0 {
		return All(), nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*analyze.Analyzer
	for _, a := range All() {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for n := range want {
		return nil, fmt.Errorf("unknown analyzer %q", n)
	}
	return out, nil
}
