package analyze

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strconv"
	"strings"
	"testing"
)

// stub reports every increment statement — a minimal analyzer for
// exercising the driver and suppression machinery.
var stub = &Analyzer{
	Name: "stub",
	Doc:  "flags every ++",
	Run: func(pass *Pass) error {
		pass.Inspect(func(n ast.Node) bool {
			if inc, ok := n.(*ast.IncDecStmt); ok && inc.Tok == token.INC {
				pass.Reportf(inc.Pos(), "increment")
			}
			return true
		})
		return nil
	},
}

// checkSource type-checks in-memory files (name -> source) as one
// package. Sources must be import-free.
func checkSource(t *testing.T, files map[string]string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	var asts []*ast.File
	for name, src := range files {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		asts = append(asts, f)
	}
	info := newInfo()
	tpkg, err := (&types.Config{}).Check("softcache/fixture/inline", fset, asts, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "softcache/fixture/inline", Fset: fset, Files: asts, Types: tpkg, Info: info}
}

func messages(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Analyzer+": "+d.Message)
	}
	return out
}

func TestSuppression(t *testing.T) {
	pkg := checkSource(t, map[string]string{"fx.go": `package fx

func f() {
	x := 0
	x++ //softcache:ignore stub incrementing is the point
	//softcache:ignore stub the next line is covered
	x++
	x++
	x++ //softcache:ignore stub,other a comma list counts for each name
	_ = x
}
`})
	diags, err := RunAnalyzers(pkg, []*Analyzer{stub}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := messages(diags)
	if len(got) != 1 || got[0] != "stub: increment" {
		t.Fatalf("want exactly the one unsuppressed increment, got %v", got)
	}
	pos := pkg.Fset.Position(diags[0].Pos)
	if pos.Line != 8 {
		t.Fatalf("surviving finding on line %d, want 8", pos.Line)
	}
}

func TestSuppressionHygiene(t *testing.T) {
	pkg := checkSource(t, map[string]string{"fx.go": `package fx

//softcache:ignore
//softcache:ignore stub
//softcache:ignore stub this one suppresses nothing
//softcache:ignore otherling unknown analyzers are someone else's directive
func f() {}
`})
	diags, err := RunAnalyzers(pkg, []*Analyzer{stub}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := messages(diags)
	want := map[string]bool{
		"ignore: softcache:ignore needs an analyzer name and a reason": false,
		"ignore: softcache:ignore stub needs a written reason":         false,
		"ignore: softcache:ignore stub suppresses nothing; delete it":  false,
	}
	for _, g := range got {
		if _, ok := want[g]; !ok {
			t.Errorf("unexpected finding %q", g)
			continue
		}
		want[g] = true
	}
	for w, seen := range want {
		if !seen {
			t.Errorf("missing finding %q", w)
		}
	}
}

func TestTestFileFiltering(t *testing.T) {
	files := map[string]string{
		"fx.go":      "package fx\n\nfunc f() {\n\tx := 0\n\tx++\n\t_ = x\n}\n",
		"fx_test.go": "package fx\n\nfunc g() {\n\ty := 0\n\ty++\n\t_ = y\n}\n",
	}
	pkg := checkSource(t, files)
	diags, err := RunAnalyzers(pkg, []*Analyzer{stub}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("Tests=false: want 1 finding (fx.go only), got %v", messages(diags))
	}
	if f := pkg.Fset.Position(diags[0].Pos).Filename; f != "fx.go" {
		t.Fatalf("Tests=false finding in %s, want fx.go", f)
	}

	diags, err = RunAnalyzers(pkg, []*Analyzer{stub}, Options{Tests: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("Tests=true: want findings in both files, got %v", messages(diags))
	}
}

func TestDiagnosticOrder(t *testing.T) {
	files := map[string]string{
		"b.go": "package fx\n\nfunc b() {\n\tn := 0\n\tn++\n\tn++\n\t_ = n\n}\n",
		"a.go": "package fx\n\nfunc a() {\n\tm := 0\n\tm++\n\t_ = m\n}\n",
	}
	pkg := checkSource(t, files)
	diags, err := RunAnalyzers(pkg, []*Analyzer{stub}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		got = append(got, p.Filename+":"+strconv.Itoa(p.Line))
	}
	want := []string{"a.go:5", "b.go:5", "b.go:6"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("order %v, want %v", got, want)
	}
}
