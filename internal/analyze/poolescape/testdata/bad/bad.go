// Fixture: every way a pooled batch can outlive its loan.
package bad

import "softcache/internal/trace"

var sink *[]trace.Record

func returned() *[]trace.Record {
	b := trace.GetBatch()
	return b // want `returned to the caller`
}

func returnedSlice() []trace.Record {
	b := trace.GetBatch()
	defer trace.PutBatch(b)
	return (*b)[:16] // want `returned to the caller`
}

func global() {
	b := trace.GetBatch()
	sink = b // want `stored in a package-level variable`
	trace.PutBatch(b)
}

func stored(dst *[]trace.Record) {
	b := trace.GetBatch()
	*dst = *b // want `stored outside the local frame`
	trace.PutBatch(b)
}

func sent(ch chan []trace.Record) {
	b := trace.GetBatch()
	ch <- *b // want `sent on a channel`
	trace.PutBatch(b)
}

func composite() map[string][]trace.Record {
	b := trace.GetBatch()
	defer trace.PutBatch(b)
	m := map[string][]trace.Record{"x": (*b)[:1]} // want `stored in a composite literal`
	return m
}

func captured() {
	b := trace.GetBatch()
	go func() { // want `captured by a goroutine`
		_ = (*b)[0]
	}()
	trace.PutBatch(b)
}

func useAfterPut() int {
	b := trace.GetBatch()
	n := len(*b)
	trace.PutBatch(b)
	return n + len(*b) // want `used after trace.PutBatch`
}

func aliasAfterPut() {
	b := trace.GetBatch()
	recs := (*b)[:0]
	trace.PutBatch(b)
	_ = recs // want `used after trace.PutBatch`
}

func neverPut() int {
	b := trace.GetBatch() // want `never returned with trace.PutBatch`
	return len(*b)
}
