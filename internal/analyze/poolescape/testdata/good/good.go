// Fixture: the blessed pool idioms — none of these may be flagged.
package good

import (
	"io"

	"softcache/internal/trace"
)

// stream is the decode-loop idiom from trace.Read / core.SimulateStream:
// deferred PutBatch, records copied out by append (the append result
// grows the destination, not the batch).
func stream(r *trace.Reader) ([]trace.Record, error) {
	var out []trace.Record
	batch := trace.GetBatch()
	defer trace.PutBatch(batch)
	for {
		n, err := r.ReadBatch(*batch)
		out = append(out, (*batch)[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// reslice may alias the batch freely while the loan is open.
func reslice() int {
	b := trace.GetBatch()
	recs := (*b)[:0]
	recs = append(recs, trace.Record{})
	n := len(recs)
	trace.PutBatch(b)
	return n
}

// branchPut returns the batch on every path; uses in the sibling branch
// are before the put on that path.
func branchPut(full bool) {
	b := trace.GetBatch()
	if full {
		_ = (*b)[:cap(*b)]
		trace.PutBatch(b)
	} else {
		trace.PutBatch(b)
	}
}

// passDown may hand the batch to a callee: the callee is analyzed on
// its own and the loan is still open here.
func passDown() {
	b := trace.GetBatch()
	fill(*b)
	trace.PutBatch(b)
}

func fill(dst []trace.Record) {
	for i := range dst {
		dst[i] = trace.Record{}
	}
}
