package poolescape_test

import (
	"testing"

	"softcache/internal/analyze/analyzetest"
	"softcache/internal/analyze/poolescape"
)

func TestBad(t *testing.T) {
	analyzetest.Run(t, poolescape.Analyzer, "testdata/bad", analyzetest.Config{})
}

func TestGood(t *testing.T) {
	analyzetest.Run(t, poolescape.Analyzer, "testdata/good", analyzetest.Config{})
}
