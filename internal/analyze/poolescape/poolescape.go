// Package poolescape checks the trace-record pool contract: a batch
// obtained from trace.GetBatch is on loan. It must go back with
// PutBatch, and neither the batch nor anything aliasing its backing
// array (the *[]Record, the dereferenced slice, any reslice of it) may
// outlive that return — not stored into longer-lived structures, not
// returned, not sent away, not touched after the Put. Violations are
// exactly the bug class the pool's foreign-shape hardening (PR 4) and
// the zero-alloc simulate loops defend against by convention: a
// retained batch gets recycled under the holder's feet and its records
// rewritten mid-read.
//
// The analysis is intra-procedural and deliberately modest: aliases
// propagate through assignments, dereferences, reslices and
// first-argument appends within one function; passing a batch to a
// callee is trusted (the callee is analyzed on its own). That matches
// how the pool is actually used — tight decode loops with a deferred
// PutBatch — and keeps every finding actionable.
package poolescape

import (
	"go/ast"
	"go/types"

	"softcache/internal/analyze"
)

// Analyzer is the poolescape invariant check.
var Analyzer = &analyze.Analyzer{
	Name: "poolescape",
	Doc:  "trace.GetBatch buffers must not escape, outlive, or be used after their PutBatch",
	Run:  run,
}

func run(pass *analyze.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// isPoolCall reports whether call invokes a function with the given
// name from a package named "trace" (or the trace package itself).
func isPoolCall(pass *analyze.Pass, call *ast.CallExpr, name string) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	if id.Name != name {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return ok && obj.Pkg() != nil && obj.Pkg().Name() == "trace"
}

type checker struct {
	pass    *analyze.Pass
	aliases map[types.Object]bool // objects aliasing a pooled batch
	origins []*ast.CallExpr       // the GetBatch calls
	putSeen bool                  // some PutBatch covers an alias
	escaped bool
}

func checkFunc(pass *analyze.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass, aliases: make(map[types.Object]bool)}

	// Seed: every `x := trace.GetBatch()` origin, plus direct leaks —
	// a GetBatch result assigned to a non-local or dropped on the floor.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPoolCall(pass, call, "GetBatch") {
			return true
		}
		c.origins = append(c.origins, call)
		return true
	})
	if len(c.origins) == 0 {
		return
	}

	// Propagate aliases to a fixed point: assignments whose RHS derives
	// from the batch make their plain-identifier LHS an alias too.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !c.derives(rhs) {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					obj := c.pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = c.pass.TypesInfo.Uses[id]
					}
					if obj != nil && !c.aliases[obj] && !isPackageLevel(obj) {
						c.aliases[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	c.checkEscapes(fd.Body)
	c.checkUseAfterPut(fd.Body)

	if !c.putSeen && !c.escaped {
		for _, origin := range c.origins {
			c.pass.Reportf(origin.Pos(),
				"pooled batch from trace.GetBatch is never returned with trace.PutBatch in this function")
		}
	}
}

// derives reports whether expr's value aliases the pooled batch's
// backing array: the batch pointer itself, its dereference, a reslice
// or element address of it, or an append growing from it.
func (c *checker) derives(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		return obj != nil && c.aliases[obj]
	case *ast.ParenExpr:
		return c.derives(e.X)
	case *ast.StarExpr:
		return c.derives(e.X)
	case *ast.UnaryExpr:
		return c.derives(e.X)
	case *ast.SliceExpr:
		return c.derives(e.X)
	case *ast.IndexExpr:
		// &b[i] or b[i] of a []*T could leak; for []Record elements are
		// values, but the expression still reaches the backing array
		// when sliced further, so stay conservative.
		return c.derives(e.X)
	case *ast.CallExpr:
		if isPoolCall(c.pass, e, "GetBatch") {
			return true
		}
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				// append's result may share the first argument's array;
				// appending *elements of* a batch to something else
				// copies them and is fine.
				return c.derives(e.Args[0])
			}
		}
		return false
	default:
		return false
	}
}

func isPackageLevel(obj types.Object) bool {
	return obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// checkEscapes flags every way an alias can outlive the function or
// the Put: returns, stores through pointers/fields/globals, channel
// sends, composite-literal capture, and goroutine capture.
func (c *checker) checkEscapes(body *ast.BlockStmt) {
	report := func(pos ast.Node, how string) {
		c.escaped = true
		c.pass.Reportf(pos.Pos(), "pooled batch from trace.GetBatch %s; it may be recycled and rewritten under the holder", how)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if c.derives(res) {
					report(res, "escapes the pool: returned to the caller")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				rhs := s.Rhs[0]
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				}
				if !c.derives(rhs) {
					continue
				}
				switch l := lhs.(type) {
				case *ast.Ident:
					if obj := lhsObject(c.pass, l); obj != nil && isPackageLevel(obj) {
						report(lhs, "escapes the pool: stored in a package-level variable")
					}
				default:
					// Field, index, or pointer target: the batch now
					// lives somewhere this function does not control.
					report(lhs, "escapes the pool: stored outside the local frame")
				}
			}
		case *ast.SendStmt:
			if c.derives(s.Value) {
				report(s.Value, "escapes the pool: sent on a channel")
			}
		case *ast.CompositeLit:
			for _, elt := range s.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if c.derives(e) {
					report(e, "escapes the pool: stored in a composite literal")
				}
			}
		case *ast.GoStmt:
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && c.capturesAlias(lit) {
				report(s, "escapes the pool: captured by a goroutine")
			}
			for _, arg := range s.Call.Args {
				if c.derives(arg) {
					report(arg, "escapes the pool: passed to a goroutine")
				}
			}
		}
		return true
	})
}

func lhsObject(pass *analyze.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// capturesAlias reports whether the literal's body references an alias.
func (c *checker) capturesAlias(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.aliases[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkUseAfterPut walks every statement list: once a non-deferred
// PutBatch(alias) statement has executed, later statements of the same
// list must not touch any alias. Sibling branches are disjoint paths
// and stay exempt.
func (c *checker) checkUseAfterPut(body *ast.BlockStmt) {
	var walkList func(list []ast.Stmt)
	walkList = func(list []ast.Stmt) {
		putAt := -1
		for i, stmt := range list {
			if putAt >= 0 {
				c.flagAliasUses(stmt)
				continue
			}
			if es, ok := stmt.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok && isPoolCall(c.pass, call, "PutBatch") {
					if len(call.Args) == 1 && c.derives(call.Args[0]) {
						c.putSeen = true
						putAt = i
						continue
					}
				}
			}
			if ds, ok := stmt.(*ast.DeferStmt); ok {
				if isPoolCall(c.pass, ds.Call, "PutBatch") && len(ds.Call.Args) == 1 && c.derives(ds.Call.Args[0]) {
					c.putSeen = true
					continue
				}
			}
			// Recurse into nested statement lists.
			ast.Inspect(stmt, func(n ast.Node) bool {
				if b, ok := n.(*ast.BlockStmt); ok {
					walkList(b.List)
					return false
				}
				return true
			})
		}
	}
	walkList(body.List)
}

// flagAliasUses reports every alias reference inside stmt.
func (c *checker) flagAliasUses(stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.aliases[obj] {
			c.pass.Reportf(id.Pos(), "pooled batch %s used after trace.PutBatch returned it to the pool", id.Name)
		}
		return true
	})
}
