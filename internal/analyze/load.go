package analyze

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// The standalone loader: resolve package patterns with one
// `go list -deps -export -json` invocation, parse the target packages
// from source, and type-check them against the export data of their
// dependencies. Everything runs offline out of the build cache — no
// network, no GOPATH assumptions, no third-party loader.

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (./..., specific import paths) in dir and
// returns the matched packages parsed and type-checked. Test files are
// not loaded — the unitchecker path (driven by go vet) covers those.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analyze: go list %s: %v: %s",
			strings.Join(patterns, " "), err, strings.TrimSpace(errb.String()))
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analyze: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analyze: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, func(path string) (string, error) {
		if f, ok := exports[path]; ok {
			return f, nil
		}
		return "", fmt.Errorf("no export data for %q", path)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := CheckFiles(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles parses the named files (relative names resolved against
// dir) and type-checks them as one package with the given import path.
func CheckFiles(fset *token.FileSet, imp types.Importer, path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		if !filepath.IsAbs(name) && dir != "" {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analyze: %w", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyze: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// NewExportImporter returns a types.Importer that reads gc export data,
// locating each import's export file through find. The heavy lifting —
// parsing the unified export format — is the standard library's
// gc importer; this only supplies the lookup.
func NewExportImporter(fset *token.FileSet, find func(path string) (string, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := find(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
}

// moduleExportImporter resolves import paths by shelling out to
// `go list -export` on demand, caching per process. It backs the
// analyzetest harness, where fixture files import real module packages
// (softcache/internal/trace and friends) without a surrounding go list
// universe.
var moduleExports sync.Map // import path -> export file

// ModuleImporter returns an importer that resolves any import path —
// standard library or module-local — via `go list -export` run in dir.
func ModuleImporter(fset *token.FileSet, dir string) types.Importer {
	return NewExportImporter(fset, func(path string) (string, error) {
		if f, ok := moduleExports.Load(path); ok {
			return f.(string), nil
		}
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		cmd.Dir = dir
		var out, errb bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &errb
		if err := cmd.Run(); err != nil {
			return "", fmt.Errorf("go list -export %s: %v: %s", path, err, strings.TrimSpace(errb.String()))
		}
		file := strings.TrimSpace(out.String())
		if file == "" {
			return "", fmt.Errorf("go list -export %s: no export data", path)
		}
		moduleExports.Store(path, file)
		return file, nil
	})
}
