// Fixture: consumption loops that go deaf to cancellation.
package bad

import (
	"context"
	"net/http"

	"softcache/internal/cache"
	"softcache/internal/trace"
)

func drain(ctx context.Context, r *trace.Reader, buf []trace.Record) {
	for { // want `never polls the context`
		if n, _ := r.ReadBatch(buf); n == 0 {
			return
		}
	}
}

func feed(ctx context.Context, sim *cache.Simulator, recs []trace.Record) {
	for _, rec := range recs { // want `never polls the context`
		sim.Access(rec)
	}
}

// pollBefore checks once up front — useless after the first batch.
func pollBefore(ctx context.Context, r *trace.Reader, buf []trace.Record) {
	if ctx.Err() != nil {
		return
	}
	for { // want `never polls the context`
		if n, _ := r.ReadBatch(buf); n == 0 {
			return
		}
	}
}

// handler has a context one call away and still ignores it.
func handler(w http.ResponseWriter, req *http.Request, sim *cache.Simulator, recs []trace.Record) {
	for _, rec := range recs { // want `never polls the context`
		sim.Access(rec)
	}
}

// closurePoll: the outer loop polls, but the work runs in a literal
// whose own loop never does — once the literal is invoked the outer
// poll cannot interrupt it.
func closurePoll(ctx context.Context, sim *cache.Simulator, batches [][]trace.Record) {
	run := func() {
		for _, b := range batches { // want `never polls the context`
			sim.AccessAll(b)
		}
	}
	for range batches {
		if ctx.Err() != nil {
			return
		}
		run()
	}
}
