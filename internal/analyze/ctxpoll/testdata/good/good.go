// Fixture: cancellable consumption loops and out-of-scope shapes —
// none of these may be flagged.
package good

import (
	"context"
	"net/http"

	"softcache/internal/cache"
	"softcache/internal/trace"
)

// perBatch is the core.SimulateMany shape: one poll per decoded batch.
func perBatch(ctx context.Context, r *trace.Reader, buf []trace.Record) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := r.ReadBatch(buf)
		if n == 0 || err != nil {
			return err
		}
	}
}

// fused: the outer per-batch poll covers the bounded inner
// per-simulator loop.
func fused(ctx context.Context, sims []*cache.Simulator, r *trace.Reader, buf []trace.Record) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := r.ReadBatch(buf)
		for _, sim := range sims {
			sim.AccessAll(buf[:n])
		}
		if n == 0 || err != nil {
			return err
		}
	}
}

// interval is the core.SimulateContext shape: an every-N-records poll
// still counts — any context expression in the body does.
func interval(ctx context.Context, sim *cache.Simulator, recs []trace.Record) error {
	for i, rec := range recs {
		if i%1024 == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		sim.Access(rec)
	}
	return nil
}

// viaRequest polls through the request's context.
func viaRequest(w http.ResponseWriter, req *http.Request, sim *cache.Simulator, recs []trace.Record) {
	for _, rec := range recs {
		if req.Context().Err() != nil {
			return
		}
		sim.Access(rec)
	}
}

// passesOn hands ctx to the callee each iteration; the callee owns the
// polling contract from there.
func passesOn(ctx context.Context, rs []*trace.Reader, buf []trace.Record) error {
	for _, r := range rs {
		if err := perBatch(ctx, r, buf); err != nil {
			return err
		}
	}
	return nil
}

// noContext has nothing to poll: out of scope by design.
func noContext(r *trace.Reader, buf []trace.Record) int {
	total := 0
	for {
		n, err := r.ReadBatch(buf)
		total += n
		if n == 0 || err != nil {
			return total
		}
	}
}

// bookkeeping iterates without consuming trace input: not a
// consumption loop, ctx or not.
func bookkeeping(ctx context.Context, keys []string) map[string]bool {
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		seen[k] = true
	}
	return seen
}
