// Package ctxpoll checks that the long-running consumption loops stay
// cancellable. A function that has a context available (a
// context.Context parameter, or an *http.Request to take one from) and
// loops over trace input — trace.Reader.ReadBatch decode loops,
// Simulator.Access/AccessAll feed loops — must poll that context from
// the loop: the softcache convention is a ctx.Err() check per batch
// (see core.SimulateMany) or per cancelCheckInterval records (see
// core.SimulateContext).
//
// The poll may live in an enclosing loop of the same function: in the
// fused kernels the outer per-batch loop polls once and the inner
// per-simulator loop inherits that, which is exactly the bounded-work
// pattern the convention blesses. A poll before the loop does not
// count — it runs once, after which cancellation goes unnoticed for
// the rest of the trace.
//
// Functions with no context in scope (SimulateStream, SimulateWarm)
// are out of scope by design: they advertise no cancellation contract.
// Loops that merely iterate without touching trace input — unit
// deduplication, result assembly — are not consumption loops and are
// never flagged.
package ctxpoll

import (
	"go/ast"
	"go/types"

	"softcache/internal/analyze"
)

// Analyzer is the ctxpoll invariant check.
var Analyzer = &analyze.Analyzer{
	Name: "ctxpoll",
	Doc:  "trace-consuming loops in context-aware functions must poll the context",
	Run:  run,
}

// workMethods are the calls that mark a loop as consuming trace input,
// keyed by method name -> defining package name.
var workMethods = map[string]map[string]bool{
	"ReadBatch": {"trace": true},
	"Access":    {"cache": true},
	"AccessAll": {"cache": true},
}

func run(pass *analyze.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !contextAvailable(pass, fd) {
				continue
			}
			walk(pass, fd.Body, false)
		}
	}
	return nil
}

// contextAvailable reports whether the function can poll at all: it
// has a context.Context parameter or an *http.Request to derive one
// from. Receivers are not considered — no softcache type stores a
// context.
func contextAvailable(pass *analyze.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if isContext(tv.Type) || isHTTPRequest(tv.Type) {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isHTTPRequest(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// walk descends the statement tree. enclosingPolls carries whether
// some enclosing loop's body already contains a context expression —
// that poll re-executes each outer iteration and covers the inner
// loop.
func walk(pass *analyze.Pass, n ast.Node, enclosingPolls bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		var body *ast.BlockStmt
		switch st := node.(type) {
		case *ast.ForStmt:
			body = st.Body
		case *ast.RangeStmt:
			body = st.Body
		case *ast.FuncLit:
			// A literal captures the enclosing context variable, so it
			// is checked in the same scope — but loops around the
			// literal do not poll on the literal's behalf once it runs.
			walk(pass, st.Body, false)
			return false
		default:
			return true
		}
		polls := enclosingPolls || pollsContext(pass, body)
		if !polls {
			if work := workCall(pass, body); work != nil {
				pos := pass.Position(work.Pos())
				pass.Reportf(node.Pos(),
					"loop consumes trace input (%s at line %d) but never polls the context; add a ctx.Err() check per batch",
					work.Sel.Name, pos.Line)
			}
		}
		walk(pass, body, polls)
		return false
	})
}

// pollsContext reports whether any expression of type context.Context
// appears in the body: ctx.Err(), ctx.Done(), r.Context(), or passing
// ctx onward to a callee that honours it.
func pollsContext(pass *analyze.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok || found {
			return !found
		}
		if tv, ok := pass.TypesInfo.Types[expr]; ok && isContext(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

// workCall returns the first trace-consuming call in the body, if any.
func workCall(pass *analyze.Pass, body *ast.BlockStmt) *ast.SelectorExpr {
	var work *ast.SelectorExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if work != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgs, ok := workMethods[sel.Sel.Name]
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !pkgs[fn.Pkg().Name()] {
			return true
		}
		work = sel
		return false
	})
	return work
}
