package ctxpoll_test

import (
	"testing"

	"softcache/internal/analyze/analyzetest"
	"softcache/internal/analyze/ctxpoll"
)

func TestBad(t *testing.T) {
	analyzetest.Run(t, ctxpoll.Analyzer, "testdata/bad", analyzetest.Config{})
}

func TestGood(t *testing.T) {
	analyzetest.Run(t, ctxpoll.Analyzer, "testdata/good", analyzetest.Config{})
}
