// Package analyze is the static-analysis framework softcache points at
// its own source: a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// plus the three drivers the analyzers run under — a standalone loader
// built on `go list -export` (package loading), the `go vet -vettool`
// unitchecker protocol (unitchecker.go), and an analysistest-style
// fixture harness (package analyzetest).
//
// The paper's thesis is that static analysis can substitute for
// hardware assistance; softcache-vet applies that to the workload
// programs, and this package applies it to the runtime that simulates
// them. The shipped analyzers (package internal/analyze/...) encode the
// invariants the pooling, locking and serving layers rely on:
//
//   - poolescape:  a trace.GetBatch buffer must not escape or be used
//     after its PutBatch
//   - lockguard:   fields annotated "// guarded by <mu>" are only
//     touched with that mutex held
//   - ctxpoll:     batch/unit-consuming loops in context-taking
//     functions must poll the context
//   - metrictext:  hand-rolled Prometheus text stays well-formed and in
//     sync with the counters it renders
//   - cliexit:     process exit flows through internal/cli, not bare
//     os.Exit/log.Fatal
//
// A finding can be suppressed at the offending line with
//
//	//softcache:ignore <analyzer>[,<analyzer>...] <reason>
//
// where the reason is mandatory; a reasonless or unused ignore is
// itself a finding, so suppressions cannot rot silently.
//
// The framework is intentionally a subset of x/tools: no Facts (every
// shipped analyzer is intra-package), no SuggestedFixes, no analyzer
// dependencies. Should the module ever grow a vendored x/tools, the
// analyzers port mechanically — the Run signature, Pass fields and
// testdata conventions match.
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, suppression comments
	// and command-line selection. It must be a valid identifier.
	Name string
	// Doc is a one-line description shown by -analyzers listings.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Report/Reportf. A returned error is an operational
	// failure (the analysis could not run), not a finding.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Position resolves pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// Inspect walks every node of every file in the pass, calling fn the
// way ast.Inspect does (return false to prune the subtree).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string // filled in by the driver
	Message  string
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// newInfo allocates the full set of type-checker result maps the
// analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Options configure a driver run.
type Options struct {
	// Tests includes findings (and suppression directives) located in
	// _test.go files. Type-checking always sees every file in the
	// package; this only filters what is reported.
	Tests bool
}

// RunAnalyzers applies the analyzers to pkg and returns the surviving
// findings in position order: analyzer findings minus honored
// suppressions, plus the suppression-hygiene findings (reasonless or
// unused ignores). An analyzer returning an error aborts the run.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyze: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	if !opts.Tests {
		diags = dropTestFileDiags(pkg.Fset, diags)
	}
	diags = applyIgnores(pkg, analyzers, diags, opts)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// dropTestFileDiags filters findings positioned in _test.go files.
func dropTestFileDiags(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if !strings.HasSuffix(fset.Position(d.Pos).Filename, "_test.go") {
			kept = append(kept, d)
		}
	}
	return kept
}
