package metrictext_test

import (
	"testing"

	"softcache/internal/analyze/analyzetest"
	"softcache/internal/analyze/metrictext"
)

func TestBad(t *testing.T) {
	analyzetest.Run(t, metrictext.Analyzer, "testdata/bad", analyzetest.Config{})
}

func TestGood(t *testing.T) {
	analyzetest.Run(t, metrictext.Analyzer, "testdata/good", analyzetest.Config{})
}
