// Package metrictext checks the hand-rolled Prometheus text exposition
// the serving layer writes (serverMetrics.WriteTo): softcache carries
// no metrics client library, so the format discipline a library would
// enforce is enforced here instead.
//
// The analyzer activates only in packages that actually render
// exposition text — ones containing a "# TYPE " string literal — and
// then checks, across every string literal in the package (multi-line
// literals are split on \n, so the idiomatic
// "# TYPE x counter\nx %d\n" pair is seen as two lines):
//
//   - every "# TYPE <name> <kind>" line is well-formed: a legal metric
//     name, a known kind, no duplicate declaration;
//   - metric names use the softcache_ namespace and counters end in
//     _total (and only counters do);
//   - every declared metric has a sample line and every softcache_
//     sample line has a TYPE declaration — declarations and samples
//     cannot drift apart;
//   - every sync/atomic counter field in the package is both updated
//     (Add/Store) and rendered (Load) somewhere in the package, so a
//     freshly added counter that never reaches /metrics — or a
//     leftover render of a counter nothing increments — is caught at
//     vet time rather than on a dashboard.
package metrictext

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"softcache/internal/analyze"
)

// Analyzer is the metrictext invariant check.
var Analyzer = &analyze.Analyzer{
	Name: "metrictext",
	Doc:  "hand-rolled Prometheus text stays well-formed and in sync with its counters",
	Run:  run,
}

const typePrefix = "# TYPE "

// namespace is the metric prefix the serving layer owns; sample-line
// detection keys off it so arbitrary string literals stay out of scope.
const namespace = "softcache_"

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

var kinds = map[string]bool{
	"counter":   true,
	"gauge":     true,
	"histogram": true,
	"summary":   true,
	"untyped":   true,
}

func run(pass *analyze.Pass) error {
	lits := stringLiterals(pass)
	// Activation wants evidence the package really renders exposition
	// text: at least one complete "# TYPE <name> <kind>" line. A bare
	// "# TYPE " fragment (a prefix constant — this package has one)
	// does not open the package for checking.
	active := false
	for _, l := range lits {
		for _, line := range strings.Split(l.value, "\n") {
			if rest, ok := strings.CutPrefix(line, typePrefix); ok && len(strings.Fields(rest)) == 2 {
				active = true
			}
		}
	}
	if !active {
		return nil
	}
	checkExposition(pass, lits)
	checkAtomics(pass)
	return nil
}

type literal struct {
	pos   token.Pos
	value string
}

func stringLiterals(pass *analyze.Pass) []literal {
	var lits []literal
	pass.Inspect(func(n ast.Node) bool {
		bl, ok := n.(*ast.BasicLit)
		if !ok || bl.Kind != token.STRING {
			return true
		}
		v, err := strconv.Unquote(bl.Value)
		if err != nil {
			return true
		}
		lits = append(lits, literal{pos: bl.Pos(), value: v})
		return true
	})
	return lits
}

// checkExposition validates TYPE lines and cross-checks them against
// sample lines.
func checkExposition(pass *analyze.Pass, lits []literal) {
	declared := make(map[string]string)   // name -> kind
	declaredAt := make(map[string]bool)   // name -> already reported duplicate
	sampled := make(map[string]token.Pos) // name -> first sample position
	declPos := make(map[string]token.Pos) // name -> declaration position

	for _, l := range lits {
		for _, line := range strings.Split(l.value, "\n") {
			if rest, ok := strings.CutPrefix(line, typePrefix); ok {
				fields := strings.Fields(rest)
				if len(fields) != 2 {
					pass.Reportf(l.pos, "malformed exposition line %q: want \"# TYPE <name> <kind>\"", line)
					continue
				}
				name, kind := fields[0], fields[1]
				if !nameRe.MatchString(name) {
					pass.Reportf(l.pos, "metric name %q is not a legal Prometheus name", name)
					continue
				}
				if !strings.HasPrefix(name, namespace) {
					// Foreign names are reported once and excluded from
					// the declared/sampled cross-check, whose sample side
					// only sees the namespace.
					pass.Reportf(l.pos, "metric %s is outside the %s* namespace", name, namespace)
					continue
				}
				if !kinds[kind] {
					pass.Reportf(l.pos, "metric %s declared with unknown type %q", name, kind)
					// Still record the declaration so the sample
					// cross-check does not pile on a second finding.
					declared[name] = kind
					declPos[name] = l.pos
					sampled[name] = l.pos
					continue
				}
				if kind == "counter" && !strings.HasSuffix(name, "_total") {
					pass.Reportf(l.pos, "counter %s must end in _total", name)
				}
				if kind != "counter" && strings.HasSuffix(name, "_total") {
					pass.Reportf(l.pos, "metric %s ends in _total but is declared %s, not counter", name, kind)
				}
				if _, dup := declared[name]; dup && !declaredAt[name] {
					pass.Reportf(l.pos, "metric %s has more than one # TYPE declaration", name)
					declaredAt[name] = true
					continue
				}
				declared[name] = kind
				declPos[name] = l.pos
				continue
			}
			if strings.HasPrefix(line, namespace) {
				// A bare metric name with no label set or value is a
				// name constant, not an exposition line.
				if !strings.ContainsAny(line, " {") {
					continue
				}
				name := sampleName(line)
				if name == "" {
					pass.Reportf(l.pos, "malformed sample line %q", line)
					continue
				}
				if _, ok := sampled[name]; !ok {
					sampled[name] = l.pos
				}
			}
		}
	}

	for name, pos := range sampled {
		if _, ok := declared[name]; !ok {
			pass.Reportf(pos, "sample line for %s has no # TYPE declaration", name)
		}
	}
	for name := range declared {
		if _, ok := sampled[name]; !ok {
			pass.Reportf(declPos[name], "metric %s is declared but no sample line renders it", name)
		}
	}
}

// sampleName extracts the metric name from a sample line: the leading
// name-character run, terminated by '{', ' ' or the format verb.
func sampleName(line string) string {
	i := 0
	for i < len(line) {
		c := line[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':' {
			i++
			continue
		}
		break
	}
	name := line[:i]
	if !nameRe.MatchString(name) {
		return ""
	}
	// The remainder must start a label set or a value.
	if i >= len(line) || (line[i] != '{' && line[i] != ' ') {
		return ""
	}
	return name
}

// checkAtomics cross-checks every sync/atomic struct field in the
// package: updated fields must be rendered and rendered fields must be
// updated.
func checkAtomics(pass *analyze.Pass) {
	type usage struct {
		updated  bool
		rendered bool
	}
	fields := make(map[*types.Var]*usage)
	fieldPos := make(map[*types.Var]token.Pos)

	// Collect the atomic fields of package-local struct types.
	pass.Inspect(func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, f := range st.Fields.List {
			for _, name := range f.Names {
				v, ok := pass.TypesInfo.Defs[name].(*types.Var)
				if !ok || !isAtomic(v.Type()) {
					continue
				}
				fields[v] = &usage{}
				fieldPos[v] = name.Pos()
			}
		}
		return true
	})
	if len(fields) == 0 {
		return
	}

	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var kind string
		switch sel.Sel.Name {
		case "Add", "Store", "CompareAndSwap", "Swap":
			kind = "update"
		case "Load":
			kind = "render"
		default:
			return true
		}
		v := atomicField(pass, sel.X)
		if v == nil {
			return true
		}
		u, ok := fields[v]
		if !ok {
			return true
		}
		if kind == "update" {
			u.updated = true
		} else {
			u.rendered = true
		}
		return true
	})

	for v, u := range fields {
		switch {
		case u.updated && !u.rendered:
			pass.Reportf(fieldPos[v], "atomic counter %s is updated but never rendered (no Load in this package)", v.Name())
		case u.rendered && !u.updated:
			pass.Reportf(fieldPos[v], "atomic counter %s is rendered but never updated (no Add/Store in this package)", v.Name())
		}
	}
}

// atomicField resolves the struct field at the base of an atomic
// method call receiver: m.requests[ep].Add -> field requests.
func atomicField(pass *analyze.Pass, expr ast.Expr) *types.Var {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.IsField() {
				return v
			}
			expr = e.X
		default:
			return nil
		}
	}
}

// isAtomic reports whether t is a sync/atomic value type or an array
// of them ([epCount]atomic.Uint64).
func isAtomic(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		return isAtomic(arr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
