// Fixture: a miniature of serve's WriteTo — consistent exposition text
// that must produce no findings.
package good

import (
	"fmt"
	"io"
	"sync/atomic"
)

// prefix constants are names, not exposition lines.
const prefix = "softcache_"

type metrics struct {
	requests [3]atomic.Uint64
	inflight atomic.Int64
	hits     atomic.Uint64
}

func (m *metrics) observe(ep int) {
	m.requests[ep].Add(1)
	m.hits.Add(1)
	m.inflight.Add(1)
	m.inflight.Add(-1)
}

func (m *metrics) write(w io.Writer) {
	fmt.Fprintln(w, "# TYPE softcache_good_requests_total counter")
	for ep := 0; ep < 3; ep++ {
		fmt.Fprintf(w, "softcache_good_requests_total{endpoint=%q} %d\n", "ep", m.requests[ep].Load())
	}
	fmt.Fprintf(w, "# TYPE softcache_good_hits_total counter\nsoftcache_good_hits_total %d\n", m.hits.Load())
	fmt.Fprintf(w, "# TYPE softcache_good_inflight gauge\nsoftcache_good_inflight %d\n", m.inflight.Load())
}
