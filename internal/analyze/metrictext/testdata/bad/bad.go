// Fixture: exposition-text drift the analyzer must flag.
package bad

import (
	"fmt"
	"io"
	"sync/atomic"
)

type metrics struct {
	served atomic.Uint64 // want `updated but never rendered`
	orphan atomic.Uint64 // want `rendered but never updated`
	hits   atomic.Uint64
}

func (m *metrics) bump() {
	m.served.Add(1)
	m.hits.Add(1)
}

func (m *metrics) write(w io.Writer) {
	// The one well-formed pair that activates the analyzer for the
	// package.
	fmt.Fprintf(w, "# TYPE softcache_bad_hits_total counter\nsoftcache_bad_hits_total %d\n", m.hits.Load())

	_ = m.orphan.Load()

	fmt.Fprintln(w, "# TYPE softcache_lonely_total counter") // want `declared but no sample line`

	fmt.Fprintf(w, "softcache_phantom_total %d\n", 0) // want `no # TYPE declaration`

	fmt.Fprintf(w, "# TYPE softcache_hits counter\nsoftcache_hits %d\n", 0) // want `counter softcache_hits must end in _total`

	fmt.Fprintf(w, "# TYPE softcache_size_total gauge\nsoftcache_size_total %d\n", 0) // want `ends in _total but is declared gauge`

	fmt.Fprintf(w, "# TYPE softcache_kind_total widget\nsoftcache_kind_total %d\n", 0) // want `unknown type "widget"`

	fmt.Fprintf(w, "# TYPE other_requests_total counter\nother_requests_total %d\n", 0) // want `outside the softcache_\* namespace`

	fmt.Fprintln(w, "# TYPE broken") // want `malformed exposition line`

	fmt.Fprintf(w, "# TYPE softcache_dup_total counter\nsoftcache_dup_total %d\n", 0)
	fmt.Fprintf(w, "# TYPE softcache_dup_total counter\nsoftcache_dup_total %d\n", 0) // want `more than one # TYPE declaration`
}
