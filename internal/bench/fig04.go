package bench

import (
	"fmt"

	"softcache/internal/metrics"
	"softcache/internal/timing"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "4a",
		Title: "Fraction of references with temporal and/or spatial tags",
		Run:   runFig4a,
	})
	register(Experiment{
		ID:    "4b",
		Title: "Time distribution of load/store instructions (cycles between references)",
		Run:   runFig4b,
	})
}

// runFig4a reproduces fig. 4a: the share of trace entries in each tag
// class. The paper's observations: the temporal bit is set in fewer than
// 30% of Perfect-Club entries (except DYF), the spatial bit in 50% or more
// for several codes, and dusty-deck codes have a large untagged share
// (calls, aliasing, references outside loops).
func runFig4a(ctx *Context) (*Report, error) {
	r := &Report{ID: "4a", Title: "Software Tag Fractions"}
	tbl := metrics.NewTable("Fraction of trace entries per tag class", "benchmark", metrics.TagClasses...)
	byName := map[string][4]float64{}
	for _, name := range workloads.Benchmarks() {
		t, err := ctx.Trace(name)
		if err != nil {
			return nil, err
		}
		f := metrics.TagFractions(t)
		byName[name] = f
		tbl.AddRow(name, f[0], f[1], f[2], f[3])
	}
	r.Tables = append(r.Tables, tbl)

	perfectLowTemporal := true
	detail := ""
	for _, name := range []string{"MDG", "BDN", "TRF"} {
		f := byName[name]
		tshare := f[2] + f[3]
		if tshare >= 0.50 {
			perfectLowTemporal = false
			detail += fmt.Sprintf("%s temporal %.2f; ", name, tshare)
		}
	}
	r.check("Perfect-Club-style codes have a modest temporal share (DYF excepted)",
		perfectLowTemporal, detail)

	f := byName["MDG"]
	r.check("dusty-deck codes carry a large untagged share (MDG)",
		f[0] > 0.30, fmt.Sprintf("untagged %.2f", f[0]))

	dyf := byName["DYF"]
	mdg := byName["MDG"]
	r.check("DYF has the largest temporal share among Perfect-style codes",
		dyf[2]+dyf[3] > mdg[2]+mdg[3], fmt.Sprintf("DYF %.2f vs MDG %.2f", dyf[2]+dyf[3], mdg[2]+mdg[3]))
	return r, nil
}

// runFig4b reproduces fig. 4b: the distribution of time gaps between
// consecutive load/store instructions, both as modelled (the distribution
// the generator samples) and as measured on a generated trace — they must
// agree, since the paper records the gap in the trace entry itself.
func runFig4b(ctx *Context) (*Report, error) {
	r := &Report{ID: "4b", Title: "Issue-Time Distribution"}
	tbl := metrics.NewTable("Fraction of load/store instructions per gap", "source", metrics.GapBuckets...)

	model := timing.PaperGapModel()
	modelDist := modelBuckets(model)
	tbl.AddRow("model", modelDist[:]...)

	for _, name := range []string{"MV", "LIV"} {
		t, err := ctx.Trace(name)
		if err != nil {
			return nil, err
		}
		d := metrics.GapDistribution(t)
		tbl.AddRow("measured/"+name, d[:]...)
	}
	r.Tables = append(r.Tables, tbl)

	m := tbl.Value(0, 1) // gap = 2 cycles is the mode in fig. 4b
	r.check("the 2-cycle gap is the mode, as in fig. 4b",
		m >= tbl.Value(0, 0) && m >= tbl.Value(0, 2), fmt.Sprintf("P(2)=%.2f", m))

	// Measured distribution must track the model (same first two moments
	// within sampling noise).
	maxDelta := 0.0
	for row := 1; row < tbl.Rows(); row++ {
		for col := 0; col < len(metrics.GapBuckets); col++ {
			d := tbl.Value(row, col) - tbl.Value(0, col)
			if d < 0 {
				d = -d
			}
			if d > maxDelta {
				maxDelta = d
			}
		}
	}
	r.check("measured gaps follow the modelled distribution",
		maxDelta < 0.02, fmt.Sprintf("max bucket delta %.3f", maxDelta))
	return r, nil
}

// modelBuckets folds the continuous model into the fig. 4b buckets by
// sampling a large deterministic population.
func modelBuckets(m *timing.GapModel) [9]float64 {
	rng := timing.NewRNG(42)
	const n = 200000
	var counts [9]int
	for i := 0; i < n; i++ {
		g := m.Sample(rng)
		switch {
		case g <= 5:
			counts[g-1]++
		case g <= 10:
			counts[5]++
		case g <= 15:
			counts[6]++
		case g <= 20:
			counts[7]++
		default:
			counts[8]++
		}
	}
	var out [9]float64
	for i, c := range counts {
		out[i] = float64(c) / n
	}
	return out
}
