package bench

import (
	"strings"
	"testing"

	"softcache/internal/core"
	"softcache/internal/workloads"
)

// sharedCtx caches test-scale traces across the experiment tests.
var sharedCtx = NewContext(workloads.ScaleTest, 1)

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{"1a", "1b", "3a", "3b", "3c", "4a", "4b", "6a", "6b",
		"7a", "7b", "8a", "8b", "9a", "9b", "10a", "10b", "11a", "11b", "12",
		"12sw", "related", "issue", "ablations", "summary", "tag-audit"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("figure %s not registered", id)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown figure should error")
	}
}

// TestAllExperimentsRun executes every figure at test scale and checks the
// structural output (tables present, labelled, populated). Shape checks are
// validated at paper scale by the harness itself; here only the robust ones
// are asserted.
func TestAllExperimentsRun(t *testing.T) {
	// Shape checks that are sensitive to the tiny test-scale working sets
	// are excused here (they pass at paper scale; see EXPERIMENTS.md).
	scaleSensitive := map[string]bool{
		"8b": true, "9a": true, "11a": true, "11b": true,
		// At test scale the tiny working sets leave too few conflict and
		// capacity misses for the related-work comparisons to separate.
		"related": true,
		"summary": true,
	}
	for _, id := range IDs() {
		id := id
		t.Run("fig"+id, func(t *testing.T) {
			e, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			r, err := e.Run(sharedCtx)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Tables) == 0 {
				t.Fatal("experiment produced no tables")
			}
			for _, tbl := range r.Tables {
				if tbl.Rows() == 0 || len(tbl.Columns) == 0 {
					t.Fatalf("empty table in figure %s", id)
				}
			}
			if len(r.Checks) == 0 {
				t.Fatal("experiment declares no shape checks")
			}
			if !scaleSensitive[id] && !r.Passed() {
				for _, c := range r.Checks {
					if !c.Pass {
						t.Errorf("check failed at test scale: %s (%s)", c.Name, c.Detail)
					}
				}
			}
			out := r.String()
			if !strings.Contains(out, "Figure "+id) {
				t.Fatal("report rendering broken")
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll duplicates TestAllExperimentsRun work")
	}
	reports, err := RunAll(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(IDs()) {
		t.Fatalf("reports = %d", len(reports))
	}
}

func TestContextCachesTraces(t *testing.T) {
	ctx := NewContext(workloads.ScaleTest, 0) // seed 0 -> default
	if ctx.Seed != 1 {
		t.Fatal("zero seed must default to 1")
	}
	a, err := ctx.Trace("MV")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Trace("MV")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("trace must be cached (same pointer)")
	}
}

// TestContextShardedSimulate pins Context.Shards: single-config runs go
// through the set-sharded kernel (identical results for an exact-plan
// config), and fused SimulateMany stays on the sequential kernel.
func TestContextShardedSimulate(t *testing.T) {
	seqCtx := NewContext(workloads.ScaleTest, 1)
	seq, err := seqCtx.Simulate("MV", core.Standard())
	if err != nil {
		t.Fatal(err)
	}
	shCtx := NewContext(workloads.ScaleTest, 1)
	shCtx.Shards = 4
	sh, err := shCtx.Simulate("MV", core.Standard())
	if err != nil {
		t.Fatal(err)
	}
	if sh.Stats != seq.Stats {
		t.Fatalf("sharded context diverged on an exact config:\nsharded:    %+v\nsequential: %+v", sh.Stats, seq.Stats)
	}
	many, err := shCtx.SimulateMany("MV", []core.Config{core.Soft()})
	if err != nil {
		t.Fatal(err)
	}
	wantMany, err := seqCtx.SimulateMany("MV", []core.Config{core.Soft()})
	if err != nil {
		t.Fatal(err)
	}
	if many[0].Stats != wantMany[0].Stats {
		t.Fatal("SimulateMany must ignore Shards (fused walk is its own strategy)")
	}
}

func TestColumnHelpers(t *testing.T) {
	tbl, err := amatTable(sharedCtx, "t", []string{"MV"}, fourConfigs(), amat)
	if err != nil {
		t.Fatal(err)
	}
	if wins, rows := columnWins(tbl, 3, 0, 1e-9); rows != 1 || wins != 1 {
		t.Fatalf("columnWins = %d/%d", wins, rows)
	}
	if g := columnGeomean(tbl, 0); g <= 0 {
		t.Fatalf("geomean = %v", g)
	}
}
