package bench

import (
	"fmt"
	"sort"

	"softcache/internal/core"
	"softcache/internal/metrics"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "summary",
		Title: "League table: every design across the whole suite (geomean AMAT)",
		Run:   runSummary,
	})
}

// summaryConfigs is every named design point, paper baselines and
// extensions alike.
func summaryConfigs() []namedConfig {
	return []namedConfig{
		{"Standard", core.Standard()},
		{"Bypass", core.BypassPlain()},
		{"BypassBuffer", core.BypassBuffered()},
		{"Stand+Victim", core.Victim()},
		{"Stand+StreamBuf", core.StandardStreamBuffers()},
		{"ColumnAssoc", core.ColumnAssociative()},
		{"Subblock64/32", core.Subblocked()},
		{"2-way", core.SetAssoc(core.Standard(), 2)},
		{"Soft-T", core.SoftTemporal()},
		{"Soft-S", core.SoftSpatial()},
		{"Soft", core.Soft()},
		{"Soft 2-way", core.SetAssoc(core.Soft(), 2)},
		{"Simplified 2-way", core.SimplifiedSoftAssoc(2)},
		{"Soft+VarVL", core.SoftVariable()},
		{"Stand+Prefetch", core.WithPrefetch(core.Standard(), false)},
		{"Soft+Prefetch", core.WithPrefetch(core.Soft(), true)},
	}
}

// runSummary ranks every design by its suite-wide geometric-mean AMAT — the
// capstone view: where the paper's design and its extensions land among all
// the baselines.
func runSummary(ctx *Context) (*Report, error) {
	r := &Report{ID: "summary", Title: "Design League Table"}
	configs := summaryConfigs()
	perBench, err := amatTable(ctx, "AMAT (cycles) per design", workloads.Benchmarks(), configs, amat)
	if err != nil {
		return nil, err
	}

	type entry struct {
		label   string
		geomean float64
	}
	entries := make([]entry, len(configs))
	for c := range configs {
		entries[c] = entry{configs[c].label, columnGeomean(perBench, c)}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].geomean < entries[j].geomean })

	rank := metrics.NewTable("Suite-wide geometric mean AMAT, best first", "design", "geomean AMAT")
	pos := map[string]int{}
	for i, e := range entries {
		rank.AddRow(e.label, e.geomean)
		pos[e.label] = i
	}
	r.Tables = append(r.Tables, rank, perBench)

	r.check("every software-assisted variant ranks above Standard",
		pos["Soft"] < pos["Standard"] && pos["Soft-T"] < pos["Standard"] && pos["Soft-S"] < pos["Standard"],
		fmt.Sprintf("Soft #%d, Standard #%d", pos["Soft"]+1, pos["Standard"]+1))
	r.check("plain bypass ranks last",
		pos["Bypass"] == len(entries)-1, fmt.Sprintf("#%d", pos["Bypass"]+1))
	r.check("the prefetching variants lead the table",
		pos["Soft+Prefetch"] <= 2, fmt.Sprintf("#%d", pos["Soft+Prefetch"]+1))
	return r, nil
}
