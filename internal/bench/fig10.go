package bench

import (
	"fmt"

	"softcache/internal/core"
	"softcache/internal/metrics"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "10a",
		Title: "Software control on the most time-consuming Perfect-Club subroutines (AMAT)",
		Run:   runFig10a,
	})
	register(Experiment{
		ID:    "10b",
		Title: "Influence of memory latency: AMAT(Standard) - AMAT(Soft) for 5-30 cycles",
		Run:   runFig10b,
	})
}

// runFig10a reproduces fig. 10a: the hot subroutines traced alone, fully
// instrumented (no calls, no aliasing, loops re-ordered). Expected shape:
// once the compiler limitations are lifted, the relative improvements grow
// well beyond the whole-program results of fig. 6a.
func runFig10a(ctx *Context) (*Report, error) {
	r := &Report{ID: "10a", Title: "Hot Perfect-Club Subroutines, Fully Instrumented"}
	tbl, err := amatTable(ctx, "AMAT (cycles)", workloads.Kernels(), fourConfigs(), amat)
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, tbl)

	wins, rows := columnWins(tbl, 3, 0, 1e-9)
	r.check("Soft is safe on every kernel", wins == rows, fmt.Sprintf("%d/%d", wins, rows))

	// Compare the mean relative gain against the whole-program runs for
	// the codes present in both experiments.
	kernelGain, fullGain := 0.0, 0.0
	n := 0
	for _, base := range []string{"MDG", "BDN", "DYF", "TRF"} {
		pair := []core.Config{core.Standard(), core.Soft()}
		kernel, err := ctx.SimulateMany(base+"-kernel", pair)
		if err != nil {
			return nil, err
		}
		full, err := ctx.SimulateMany(base, pair)
		if err != nil {
			return nil, err
		}
		kStd, kSoft := kernel[0], kernel[1]
		fStd, fSoft := full[0], full[1]
		kernelGain += 1 - kSoft.AMAT()/kStd.AMAT()
		fullGain += 1 - fSoft.AMAT()/fStd.AMAT()
		n++
	}
	kernelGain /= float64(n)
	fullGain /= float64(n)
	r.check("full instrumentation yields larger relative gains than whole programs",
		kernelGain > fullGain,
		fmt.Sprintf("mean gain kernels %.0f%% vs whole programs %.0f%%", kernelGain*100, fullGain*100))
	return r, nil
}

// fig10bLatencies is the paper's x axis.
var fig10bLatencies = []int{5, 10, 15, 20, 25, 30}

// runFig10b reproduces fig. 10b: the absolute AMAT advantage of Soft over
// Standard as memory latency grows. Expected shape: little or no gain below
// ~10 cycles (the extra transfer cycles of virtual lines are not yet
// amortised), then a very regular increase with latency.
func runFig10b(ctx *Context) (*Report, error) {
	r := &Report{ID: "10b", Title: "Influence of Memory Latency"}
	cols := make([]string, len(fig10bLatencies))
	for i, l := range fig10bLatencies {
		cols[i] = fmt.Sprintf("lat=%d", l)
	}
	tbl := metrics.NewTable("AMAT(Standard) - AMAT(Soft)", "benchmark", cols...)
	// The whole latency axis, Standard and Soft interleaved, in one fused
	// pass per workload.
	cfgs := make([]core.Config, 0, 2*len(fig10bLatencies))
	for _, lat := range fig10bLatencies {
		cfgs = append(cfgs,
			core.WithLatency(core.Standard(), lat),
			core.WithLatency(core.Soft(), lat))
	}
	for _, name := range workloads.Benchmarks() {
		results, err := ctx.SimulateMany(name, cfgs)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(fig10bLatencies))
		for i := range fig10bLatencies {
			row[i] = results[2*i].AMAT() - results[2*i+1].AMAT()
		}
		tbl.AddRow(name, row...)
	}
	r.Tables = append(r.Tables, tbl)

	// Monotone growth of the mean advantage from 10 cycles on.
	means := make([]float64, len(fig10bLatencies))
	for c := range fig10bLatencies {
		sum := 0.0
		for i := 0; i < tbl.Rows(); i++ {
			sum += tbl.Value(i, c)
		}
		means[c] = sum / float64(tbl.Rows())
	}
	mono := true
	for c := 2; c < len(means); c++ { // from lat=10 onwards
		if means[c] < means[c-1]-1e-9 {
			mono = false
		}
	}
	r.check("the advantage grows regularly with latency beyond 10 cycles",
		mono, fmt.Sprintf("means %v", fmt.Sprintf("%.2f %.2f %.2f %.2f %.2f %.2f", means[0], means[1], means[2], means[3], means[4], means[5])))
	r.check("gains at 30 cycles exceed gains at 5 cycles",
		means[5] > means[0], fmt.Sprintf("%.2f vs %.2f", means[5], means[0]))
	return r, nil
}
