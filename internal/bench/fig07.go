package bench

import (
	"fmt"

	"softcache/internal/core"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "7a",
		Title: "Memory traffic: words fetched per reference, four configurations",
		Run:   runFig7a,
	})
	register(Experiment{
		ID:    "7b",
		Title: "Miss ratio, four configurations",
		Run:   runFig7b,
	})
}

// runFig7a reproduces fig. 7a. Expected shape: virtual lines alone increase
// traffic, but with the bounce-back mechanism added the combined design's
// traffic stays close to the standard cache (TRF excepted).
func runFig7a(ctx *Context) (*Report, error) {
	r := &Report{ID: "7a", Title: "Memory Traffic (words fetched / references)"}
	tbl, err := amatTable(ctx, "Words fetched per reference", workloads.Benchmarks(), fourConfigs(),
		func(res core.Result) float64 { return res.Stats.WordsPerReference() })
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, tbl)

	// Traffic is "barely increased (except for TRF)": compare Soft vs
	// Standard, allowing a modest margin, skipping TRF.
	worst, worstName := 0.0, ""
	for i := 0; i < tbl.Rows(); i++ {
		if tbl.RowLabelAt(i) == "TRF" {
			continue
		}
		ratio := tbl.Value(i, 3) / tbl.Value(i, 0)
		if ratio > worst {
			worst, worstName = ratio, tbl.RowLabelAt(i)
		}
	}
	r.check("combined Soft traffic stays near Standard (TRF excepted)",
		worst < 1.25, fmt.Sprintf("worst ratio %.2f on %s", worst, worstName))

	trfRow := -1
	for i := 0; i < tbl.Rows(); i++ {
		if tbl.RowLabelAt(i) == "TRF" {
			trfRow = i
		}
	}
	r.check("TRF is the code whose traffic grows under Soft",
		trfRow >= 0 && tbl.Value(trfRow, 3) > tbl.Value(trfRow, 0),
		"")
	return r, nil
}

// runFig7b reproduces fig. 7b. Expected shape: Soft lowers the miss ratio
// substantially (the paper reports up to 62% for MV), and the reduction in
// AMAT tracks it because most hits remain main-cache hits.
func runFig7b(ctx *Context) (*Report, error) {
	r := &Report{ID: "7b", Title: "Miss Ratio"}
	tbl, err := amatTable(ctx, "Miss ratio", workloads.Benchmarks(), fourConfigs(),
		func(res core.Result) float64 { return res.MissRatio() })
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, tbl)

	wins, rows := columnWins(tbl, 3, 0, 1e-9)
	r.check("Soft's miss ratio never exceeds Standard's", wins == rows, fmt.Sprintf("%d/%d", wins, rows))

	// Find MV's reduction: the paper's headline number is ~62%.
	for i := 0; i < tbl.Rows(); i++ {
		if tbl.RowLabelAt(i) != "MV" {
			continue
		}
		red := 1 - tbl.Value(i, 3)/tbl.Value(i, 0)
		r.check("MV shows a large miss reduction (paper: 62%)",
			red > 0.45, fmt.Sprintf("measured %.0f%%", red*100))
	}
	return r, nil
}
