package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// WriteCSV writes one CSV file per table of the report into dir, named
// fig<ID>.csv (or fig<ID>-<n>.csv when a figure has several tables). The
// files carry exactly the numbers the paper's plots show, ready for any
// external plotting tool.
func WriteCSV(dir string, r *Report) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	for i, tbl := range r.Tables {
		name := fmt.Sprintf("fig%s.csv", sanitize(r.ID))
		if len(r.Tables) > 1 {
			name = fmt.Sprintf("fig%s-%d.csv", sanitize(r.ID), i+1)
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return written, err
		}
		err = writeTableCSV(f, tbl.RowLabel, tbl.Columns, tbl.Rows(),
			tbl.RowLabelAt, tbl.Value)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return written, fmt.Errorf("writing %s: %w", path, err)
		}
		written = append(written, path)
	}
	return written, nil
}

func writeTableCSV(w io.Writer, rowLabel string, columns []string, rows int,
	label func(int) string, value func(int, int) float64) error {
	cw := csv.NewWriter(w)
	header := append([]string{rowLabel}, columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		rec := make([]string, 0, len(columns)+1)
		rec = append(rec, label(i))
		for c := range columns {
			rec = append(rec, strconv.FormatFloat(value(i, c), 'g', 8, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func sanitize(id string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r >= 'A' && r <= 'Z' {
			return r
		}
		return '_'
	}, id)
}
