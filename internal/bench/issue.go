package bench

import (
	"fmt"

	"softcache/internal/core"
	"softcache/internal/metrics"
	"softcache/internal/timing"
	"softcache/internal/trace"
	"softcache/internal/tracegen"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "issue",
		Title: "Issue-rate sensitivity (§3.1): AMAT advantage vs inter-reference gap",
		Run:   runIssueRate,
	})
}

// runIssueRate regenerates the benchmark traces with *constant* issue gaps
// of 1-8 cycles (instead of the fig. 4b distribution) and measures the
// Soft design's AMAT advantage. The paper notes a cache design is
// sensitive to the processor request issue rate: at very high issue rates
// (1-cycle gaps, superscalar-like) the 2-cycle swap locks of the
// bounce-back cache collide with following accesses more often, shaving
// part of the gain; slower issue hides them entirely.
func runIssueRate(ctx *Context) (*Report, error) {
	r := &Report{ID: "issue", Title: "Issue-Rate Sensitivity"}
	gaps := []int{1, 2, 4, 8}
	cols := make([]string, len(gaps))
	for i, g := range gaps {
		cols[i] = fmt.Sprintf("gap=%d", g)
	}
	tbl := metrics.NewTable("AMAT(Standard) - AMAT(Soft) at constant issue gaps", "benchmark", cols...)

	lockStallShare := 0.0
	for _, name := range workloads.Benchmarks() {
		p, err := workloads.BuildProgram(name, ctx.Scale)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(gaps))
		for i, g := range gaps {
			t, err := ctx.cached(fmt.Sprintf("%s/gap=%d", name, g), func() (*trace.Trace, error) {
				return tracegen.Generate(p, tracegen.Options{Seed: ctx.Seed, Gaps: timing.Constant(g)})
			})
			if err != nil {
				return nil, err
			}
			std, err := core.Simulate(core.Standard(), t)
			if err != nil {
				return nil, err
			}
			soft, err := core.Simulate(core.Soft(), t)
			if err != nil {
				return nil, err
			}
			row[i] = std.AMAT() - soft.AMAT()
			if i == 0 {
				lockStallShare += float64(soft.Stats.LockStallCycles) / float64(soft.Stats.CostCycles)
			}
		}
		tbl.AddRow(name, row...)
	}
	lockStallShare /= float64(tbl.Rows())
	r.Tables = append(r.Tables, tbl)

	// The advantage must persist at every issue rate...
	minAdvantage := 1e9
	for i := 0; i < tbl.Rows(); i++ {
		for c := range gaps {
			if v := tbl.Value(i, c); v < minAdvantage {
				minAdvantage = v
			}
		}
	}
	r.check("software assistance keeps its advantage at every issue rate",
		minAdvantage > -1e-9, fmt.Sprintf("min advantage %.3f", minAdvantage))
	// ...and the swap-lock interference at gap=1 stays a small share of
	// the access time (the §2.2 "hiding the bounce-back process" claim).
	r.check("swap-lock stalls are a small share of access time even at 1-cycle gaps",
		lockStallShare < 0.05, fmt.Sprintf("mean share %.3f", lockStallShare))
	return r, nil
}
