// Package bench regenerates every figure of the paper's evaluation. Each
// experiment is registered under its figure id ("1a" … "12", plus
// "ablations") and produces a Report: one or more tables shaped like the
// paper's plot (same rows, same series) plus shape checks that assert the
// qualitative claims the reproduction is expected to preserve (who wins,
// roughly by how much, where crossovers fall).
package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"softcache/internal/core"
	"softcache/internal/metrics"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// Context carries experiment-wide state: the workload scale, the trace
// seed, and a trace cache so the nine benchmarks are generated once per
// process instead of once per configuration. It is safe for concurrent
// use: the experiment harness runs several figures at once against one
// shared Context, and each workload's trace is still generated exactly
// once.
type Context struct {
	Scale workloads.Scale
	Seed  uint64
	// Check enables the runtime invariant checker (cache.RuntimeChecks) on
	// every simulation run through this context.
	Check bool
	// Shards, when > 1, routes single-config simulations through the
	// set-sharded kernel (core.SimulateSharded). Fused multi-config passes
	// (SimulateMany) are unaffected: the fused walk and the sharded kernel
	// are alternative parallel strategies, not composable ones. The default
	// 0 keeps every figure byte-identical to the sequential kernel.
	Shards int

	ctx    context.Context
	traces *traceCache
}

// traceCache deduplicates trace generation across concurrent experiments:
// the first requester of a workload generates it inside a sync.Once, later
// requesters block on that Once and share the result.
type traceCache struct {
	mu sync.Mutex
	m  map[string]*traceEntry // guarded by mu
}

type traceEntry struct {
	once sync.Once
	t    *trace.Trace
	err  error
}

// NewContext builds a context at the given scale. Seed 0 selects the
// default seed 1.
func NewContext(scale workloads.Scale, seed uint64) *Context {
	if seed == 0 {
		seed = 1
	}
	return &Context{
		Scale:  scale,
		Seed:   seed,
		traces: &traceCache{m: make(map[string]*traceEntry)},
	}
}

// WithContext returns a copy of c whose simulations are canceled when ctx
// is. The trace cache is shared with c, so per-experiment contexts handed
// out by the harness still generate each workload once.
func (c *Context) WithContext(ctx context.Context) *Context {
	c2 := *c
	c2.ctx = ctx
	return &c2
}

func (c *Context) context() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

// cached returns the trace stored under key, building it at most once
// process-wide even when experiments race for it.
func (c *Context) cached(key string, build func() (*trace.Trace, error)) (*trace.Trace, error) {
	c.traces.mu.Lock()
	e, ok := c.traces.m[key]
	if !ok {
		e = &traceEntry{}
		c.traces.m[key] = e
	}
	c.traces.mu.Unlock()
	e.once.Do(func() {
		e.t, e.err = build()
	})
	return e.t, e.err
}

// Trace returns the (cached) tagged trace of the named workload.
func (c *Context) Trace(name string) (*trace.Trace, error) {
	return c.cached(name, func() (*trace.Trace, error) {
		return workloads.Trace(name, c.Scale, c.Seed)
	})
}

// Simulate runs cfg over the named workload's trace, honouring the
// context's cancellation and invariant-check settings.
func (c *Context) Simulate(name string, cfg core.Config) (core.Result, error) {
	t, err := c.Trace(name)
	if err != nil {
		return core.Result{}, err
	}
	if c.Check {
		cfg.RuntimeChecks = true
	}
	if c.Shards > 1 {
		return core.SimulateSharded(c.context(), cfg, t, c.Shards)
	}
	return core.SimulateContext(c.context(), cfg, t)
}

// SimulateMany runs every configuration over the named workload's trace
// in one fused pass (core.SimulateManyTrace): each record batch is
// decoded/walked once and fed to all simulators, so a figure's whole
// config axis costs one trace traversal. Results are index-aligned with
// cfgs and identical to len(cfgs) Simulate calls.
func (c *Context) SimulateMany(name string, cfgs []core.Config) ([]core.Result, error) {
	t, err := c.Trace(name)
	if err != nil {
		return nil, err
	}
	if c.Check {
		cfgs = append([]core.Config(nil), cfgs...)
		for i := range cfgs {
			cfgs[i].RuntimeChecks = true
		}
	}
	return core.SimulateManyTrace(c.context(), cfgs, t)
}

// Check is one qualitative shape assertion.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Report is the output of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	Notes  []string
	Checks []Check
}

// Passed reports whether every shape check passed.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Fprint renders the report.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "=== Figure %s: %s ===\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		t.Fprint(w, "%.3f")
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "[%s] %s", status, c.Name)
		if c.Detail != "" {
			fmt.Fprintf(w, " (%s)", c.Detail)
		}
		fmt.Fprintln(w)
	}
}

func (r *Report) String() string {
	var b strings.Builder
	r.Fprint(&b)
	return b.String()
}

func (r *Report) check(name string, pass bool, detail string) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: detail})
}

// Experiment regenerates one figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Context) (*Report, error)
}

var experiments = map[string]Experiment{}
var experimentOrder []string

func register(e Experiment) {
	if _, dup := experiments[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	experiments[e.ID] = e
	experimentOrder = append(experimentOrder, e.ID)
}

// Get returns the experiment for a figure id.
func Get(id string) (Experiment, error) {
	e, ok := experiments[id]
	if !ok {
		return Experiment{}, fmt.Errorf("bench: unknown figure %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return e, nil
}

// IDs lists every registered figure id in registration (paper) order.
func IDs() []string {
	out := append([]string(nil), experimentOrder...)
	return out
}

// RunAll executes every experiment and returns the reports in paper order.
func RunAll(ctx *Context) ([]*Report, error) {
	var reports []*Report
	for _, id := range IDs() {
		e := experiments[id]
		r, err := e.Run(ctx)
		if err != nil {
			return reports, fmt.Errorf("bench: figure %s: %w", id, err)
		}
		reports = append(reports, r)
	}
	return reports, nil
}

// amatTable runs the given configurations over the given workloads and
// returns a workloads × configs AMAT table (the shape of most figures).
// The config axis is fused: each workload's trace is walked once for the
// whole row rather than once per column.
func amatTable(ctx *Context, title string, names []string, configs []namedConfig, metric func(core.Result) float64) (*metrics.Table, error) {
	cols := make([]string, len(configs))
	cfgs := make([]core.Config, len(configs))
	for i, c := range configs {
		cols[i] = c.label
		cfgs[i] = c.cfg
	}
	tbl := metrics.NewTable(title, "benchmark", cols...)
	for _, name := range names {
		results, err := ctx.SimulateMany(name, cfgs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		row := make([]float64, len(configs))
		for i, res := range results {
			row[i] = metric(res)
		}
		tbl.AddRow(name, row...)
	}
	return tbl, nil
}

type namedConfig struct {
	label string
	cfg   core.Config
}

// amat is the default metric.
func amat(r core.Result) float64 { return r.AMAT() }

// columnWins counts how many rows have tbl[row][a] <= tbl[row][b] + eps.
func columnWins(tbl *metrics.Table, a, b int, eps float64) (wins, rows int) {
	rows = tbl.Rows()
	for i := 0; i < rows; i++ {
		if tbl.Value(i, a) <= tbl.Value(i, b)+eps {
			wins++
		}
	}
	return wins, rows
}

// geomean of a column (all values must be positive).
func columnGeomean(tbl *metrics.Table, col int) float64 {
	prod := 1.0
	n := tbl.Rows()
	if n == 0 {
		return 0
	}
	for i := 0; i < n; i++ {
		prod *= tbl.Value(i, col)
	}
	return pow(prod, 1/float64(n))
}

func pow(x, y float64) float64 { return math.Pow(x, y) }
