package bench

import (
	"fmt"

	"softcache/internal/metrics"
	"softcache/internal/vet"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "tag-audit",
		Title: "Tag-precision audit: static tags vs reuse observed in the trace",
		Run:   runTagAudit,
	})
}

// runTagAudit quantifies the paper's central premise — that the §2.3
// elementary analysis derives *trustworthy* tags. For each benchmark the
// generated trace is replayed through the reuse-distance oracle
// (stackdist.ObserveReuse) and the static temporal/spatial tags are
// scored against the reuse each dynamic reference actually exhibits,
// weighted by dynamic count. High precision is what the hardware needs:
// a tag is a promise the replacement policy acts on, so a wrong one
// mis-prioritises a line. Recall is naturally lower — the conservative
// analysis declines to promise reuse it cannot prove (CALL-poisoned
// bodies, indirect subscripts, cross-loop-nest reuse).
func runTagAudit(ctx *Context) (*Report, error) {
	r := &Report{ID: "tag-audit", Title: "Tag-Precision Audit"}
	tbl := metrics.NewTable("Static-tag precision/recall vs observed reuse", "benchmark",
		"T-precision", "T-recall", "S-precision", "S-recall")
	minPrec := 1.0
	byName := map[string]*vet.AuditReport{}
	for _, name := range workloads.Benchmarks() {
		p, err := workloads.BuildProgram(name, ctx.Scale)
		if err != nil {
			return nil, err
		}
		res, err := vet.Run(p, vet.Options{Audit: true, Seed: ctx.Seed})
		if err != nil {
			return nil, fmt.Errorf("tag-audit: %s: %w", name, err)
		}
		a := res.Audit
		byName[name] = a
		tbl.AddRow(name, a.Temporal.Precision, a.Temporal.Recall,
			a.Spatial.Precision, a.Spatial.Recall)
		for _, p := range []float64{a.Temporal.Precision, a.Spatial.Precision} {
			if p < minPrec {
				minPrec = p
			}
		}
	}
	r.Tables = append(r.Tables, tbl)
	mv, liv := byName["MV"], byName["LIV"]
	r.check("MV tags are >=0.9 precise (temporal and spatial)",
		mv.Temporal.Precision >= 0.9 && mv.Spatial.Precision >= 0.9,
		fmt.Sprintf("T %.3f, S %.3f", mv.Temporal.Precision, mv.Spatial.Precision))
	r.check("LIV tags are >=0.9 precise (temporal and spatial)",
		liv.Temporal.Precision >= 0.9 && liv.Spatial.Precision >= 0.9,
		fmt.Sprintf("T %.3f, S %.3f", liv.Temporal.Precision, liv.Spatial.Precision))
	r.check("no benchmark's tags drop below 0.75 precision",
		minPrec >= 0.75, fmt.Sprintf("min precision %.3f", minPrec))
	return r, nil
}
