package bench

import (
	"fmt"

	"softcache/internal/core"
	"softcache/internal/metrics"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "9a",
		Title: "Software control for large caches: % of misses removed",
		Run:   runFig9a,
	})
	register(Experiment{
		ID:    "9b",
		Title: "Software control for set-associative caches (AMAT)",
		Run:   runFig9b,
	})
}

// fig9aGeometries mirrors the paper's series: cache size / physical line.
// Larger caches use 64 B physical lines (the paper notes the virtual-line
// headroom is then halved); the virtual line stays at 2x physical.
var fig9aGeometries = []struct {
	label     string
	cacheSize int
	lineSize  int
}{
	{"Cs=8k,Ls=32", 8 << 10, 32},
	{"Cs=16k,Ls=64", 16 << 10, 64},
	{"Cs=32k,Ls=64", 32 << 10, 64},
	{"Cs=64k,Ls=64", 64 << 10, 64},
}

// runFig9a reproduces fig. 9a: for each geometry, the percentage of the
// standard cache's misses that the Soft design removes. Expected shape:
// gains shrink as the cache grows (working sets start to fit) but stay
// positive on the vector-dominated codes, because the compulsory-miss share
// grows with cache size.
func runFig9a(ctx *Context) (*Report, error) {
	r := &Report{ID: "9a", Title: "Software Control for Large Caches"}
	cols := make([]string, len(fig9aGeometries))
	for i, g := range fig9aGeometries {
		cols[i] = g.label
	}
	tbl := metrics.NewTable("% of misses removed by Soft", "benchmark", cols...)
	// Standard/Soft pairs for every geometry, fused into one trace pass
	// per workload.
	cfgs := make([]core.Config, 0, 2*len(fig9aGeometries))
	for _, g := range fig9aGeometries {
		cfgs = append(cfgs,
			core.WithGeometry(core.Standard(), g.cacheSize, g.lineSize, 0),
			core.WithGeometry(core.Soft(), g.cacheSize, g.lineSize, 2*g.lineSize))
	}
	for _, name := range workloads.Benchmarks() {
		results, err := ctx.SimulateMany(name, cfgs)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(fig9aGeometries))
		for i := range fig9aGeometries {
			sres, fres := results[2*i], results[2*i+1]
			if sres.MissRatio() > 0 {
				row[i] = 100 * (sres.MissRatio() - fres.MissRatio()) / sres.MissRatio()
			}
		}
		tbl.AddRow(name, row...)
	}
	r.Tables = append(r.Tables, tbl)

	pos := 0
	for i := 0; i < tbl.Rows(); i++ {
		if tbl.Value(i, 0) >= -1e-9 {
			pos++
		}
	}
	r.check("Soft removes misses at the baseline geometry on every code",
		pos == tbl.Rows(), fmt.Sprintf("%d/%d", pos, tbl.Rows()))

	// Vector-access codes must keep benefiting at 64k.
	kept := 0
	for _, name := range []string{"MV", "SpMV", "NAS"} {
		for i := 0; i < tbl.Rows(); i++ {
			if tbl.RowLabelAt(i) == name && tbl.Value(i, 3) > 5 {
				kept++
			}
		}
	}
	r.check("vector-dominated codes keep significant gains at 64 KiB",
		kept >= 2, fmt.Sprintf("%d/3 codes above 5%%", kept))
	return r, nil
}

// runFig9b reproduces fig. 9b: 2-way baseline, 2-way + victim cache,
// Soft 2-way, and the simplified Soft 2-way (temporal-priority replacement,
// no bounce-back cache). Expected shape: software assistance still helps a
// set-associative cache, and the much cheaper simplified variant performs
// nearly as well as the full one.
func runFig9b(ctx *Context) (*Report, error) {
	r := &Report{ID: "9b", Title: "Software Control for Set-Associative Caches"}
	twoWay := core.SetAssoc(core.Standard(), 2)
	twoWayVictim := core.SetAssoc(core.Victim(), 2)
	soft2 := core.SetAssoc(core.Soft(), 2)
	simpl2 := core.SimplifiedSoftAssoc(2)

	tbl, err := amatTable(ctx, "AMAT (cycles)", workloads.Benchmarks(), []namedConfig{
		{"2-way", twoWay},
		{"2-way+victim", twoWayVictim},
		{"Soft 2-way", soft2},
		{"Simplified", simpl2},
	}, amat)
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, tbl)

	wins, rows := columnWins(tbl, 2, 0, 1e-9)
	r.check("Soft 2-way improves on the plain 2-way cache for most codes",
		wins >= rows-1, fmt.Sprintf("%d/%d", wins, rows))

	gSoft, gSimpl := columnGeomean(tbl, 2), columnGeomean(tbl, 3)
	r.check("the simplified variant performs nearly as well as full Soft 2-way",
		gSimpl < 1.10*gSoft, fmt.Sprintf("geomean %.3f vs %.3f", gSimpl, gSoft))

	gVic, g2 := columnGeomean(tbl, 1), columnGeomean(tbl, 0)
	r.check("victim caching and set-associativity are merely redundant",
		gVic > 0.93*g2, fmt.Sprintf("geomean %.3f vs %.3f", gVic, g2))
	return r, nil
}
