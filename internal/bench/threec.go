package bench

import (
	"fmt"

	"softcache/internal/core"
	"softcache/internal/metrics"
	"softcache/internal/stackdist"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "3c",
		Title: "Three-C miss decomposition (compulsory/capacity/conflict) and what Soft removes",
		Run:   runThreeC,
	})
}

// runThreeC decomposes each benchmark's misses into the classic three Cs
// (via LRU stack distances, Mattson's algorithm) for the standard cache,
// and measures what the software-assisted design removes. It validates the
// paper's repeated claim that "because spatial locality is heavily
// exploited, a major share of cache misses removed are compulsory and
// capacity misses corresponding to vector accesses" (§3.2) — i.e. the
// design is not merely a conflict-miss fix like a victim cache.
func runThreeC(ctx *Context) (*Report, error) {
	r := &Report{ID: "3c", Title: "Three-C Miss Decomposition"}
	std := core.Standard()
	capacityLines := std.CacheSize / std.LineSize

	tbl := metrics.NewTable(
		fmt.Sprintf("Standard-cache misses per 1000 references (%d-line capacity)", capacityLines),
		"benchmark", "compulsory", "capacity", "conflict", "removed by Soft")
	sumRemoved, sumCompCap := 0.0, 0.0
	for _, name := range workloads.Benchmarks() {
		t, err := ctx.Trace(name)
		if err != nil {
			return nil, err
		}
		profile := stackdist.Analyze(t, std.LineSize, 4*capacityLines)
		results, err := ctx.SimulateMany(name, []core.Config{std, core.Soft()})
		if err != nil {
			return nil, err
		}
		stdRes, softRes := results[0], results[1]
		c := profile.Classify(capacityLines, stdRes.Stats.Misses)
		per := 1000.0 / float64(stdRes.Stats.References)
		removed := float64(stdRes.Stats.Misses-softRes.Stats.Misses) * per
		tbl.AddRow(name,
			float64(c.Compulsory)*per,
			float64(c.Capacity)*per,
			float64(c.Conflict)*per,
			removed,
		)
		sumRemoved += removed
		sumCompCap += float64(c.Compulsory+c.Capacity) * per
	}
	r.Tables = append(r.Tables, tbl)

	// The removed misses must exceed what a perfect conflict-only fix
	// could deliver on several codes: Soft attacks compulsory (virtual
	// lines) and capacity (pollution control) misses too.
	beyondConflict := 0
	for i := 0; i < tbl.Rows(); i++ {
		if tbl.Value(i, 3) > tbl.Value(i, 2)+1e-9 {
			beyondConflict++
		}
	}
	r.check("Soft removes more misses than a perfect conflict-only fix could, on most codes",
		beyondConflict >= tbl.Rows()/2+1,
		fmt.Sprintf("%d/%d benchmarks", beyondConflict, tbl.Rows()))

	// Compulsory+capacity misses dominate the pool the design draws from.
	r.check("compulsory+capacity misses dominate the standard cache's misses overall",
		sumCompCap > sumRemoved*0.5, "")
	return r, nil
}
