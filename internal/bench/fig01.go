package bench

import (
	"fmt"

	"softcache/internal/metrics"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "1a",
		Title: "Distance of reuse (in references): distribution per benchmark",
		Run:   runFig1a,
	})
	register(Experiment{
		ID:    "1b",
		Title: "Vector length (bytes) of reference streams: distribution per benchmark",
		Run:   runFig1b,
	})
}

// runFig1a reproduces fig. 1a: for each benchmark, the fraction of
// references in each reuse-distance bucket. The paper's headline
// observations: a sizable fraction of data is used once or few times, and
// reuse distances beyond 10³ references are common — longer than the
// ~2500-reference average lifetime of a line in an 8 KiB cache.
func runFig1a(ctx *Context) (*Report, error) {
	r := &Report{ID: "1a", Title: "Distance of Reuse"}
	tbl := metrics.NewTable("Fraction of references per reuse distance", "benchmark", metrics.ReuseBuckets...)
	longShare := 0.0
	for _, name := range workloads.Benchmarks() {
		t, err := ctx.Trace(name)
		if err != nil {
			return nil, err
		}
		d := metrics.ReuseDistances(t, 8)
		tbl.AddRow(name, d[0], d[1], d[2], d[3], d[4])
		longShare += d[3] + d[4]
	}
	longShare /= float64(tbl.Rows())
	r.Tables = append(r.Tables, tbl)
	r.check("long reuse distances (>10^3 refs) are common",
		longShare > 0.10, fmt.Sprintf("mean share %.2f", longShare))
	noReuse := columnGeomean(tbl, 0)
	r.check("a sizable amount of data is used only once or few times",
		noReuse > 0.005 || tbl.Value(tbl.Rows()-1, 0) > 0.001,
		fmt.Sprintf("geomean no-reuse share %.3f", noReuse))
	return r, nil
}

// runFig1b reproduces fig. 1b: vector lengths of the streams issued by each
// load/store instruction. The paper's observation: vectors are often longer
// than the 32-byte line of small on-chip caches, so there is spatial
// locality a fixed short line cannot exploit.
func runFig1b(ctx *Context) (*Report, error) {
	r := &Report{ID: "1b", Title: "Vector Length of Reference Streams"}
	tbl := metrics.NewTable("Fraction of references per vector length", "benchmark", metrics.VectorBuckets...)
	beyondLine := 0.0
	for _, name := range workloads.Benchmarks() {
		t, err := ctx.Trace(name)
		if err != nil {
			return nil, err
		}
		d := metrics.VectorLengths(t, metrics.VectorParams{})
		tbl.AddRow(name, d[0], d[1], d[2], d[3], d[4], d[5])
		beyondLine += d[1] + d[2] + d[3] + d[4] + d[5]
	}
	beyondLine /= float64(tbl.Rows())
	r.Tables = append(r.Tables, tbl)
	r.check("vector lengths often exceed the 32-byte line",
		beyondLine > 0.35, fmt.Sprintf("mean share beyond 32B: %.2f", beyondLine))
	return r, nil
}
