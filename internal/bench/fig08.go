package bench

import (
	"fmt"

	"softcache/internal/core"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "8a",
		Title: "Influence of virtual line size (32-256 B) on AMAT",
		Run:   runFig8a,
	})
	register(Experiment{
		ID:    "8b",
		Title: "Influence of physical line size (32-256 B) on AMAT, vs Soft",
		Run:   runFig8b,
	})
}

// runFig8a reproduces fig. 8a: the full Soft design with virtual line sizes
// 32 (mechanism off), 64, 128 and 256 bytes. Expected shape: 64 B is a good
// overall choice for the 8 KiB cache; large virtual lines degrade
// gracefully (unlike large physical lines, fig. 8b).
func runFig8a(ctx *Context) (*Report, error) {
	r := &Report{ID: "8a", Title: "Influence of Virtual Line Size"}
	var configs []namedConfig
	for _, vl := range []int{32, 64, 128, 256} {
		cfg := core.Soft()
		if vl == 32 {
			cfg.VirtualLineSize = 0
		} else {
			cfg.VirtualLineSize = vl
		}
		configs = append(configs, namedConfig{fmt.Sprintf("VL=%d", vl), cfg})
	}
	tbl, err := amatTable(ctx, "AMAT (cycles)", workloads.Benchmarks(), configs, amat)
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, tbl)

	g64, g32 := columnGeomean(tbl, 1), columnGeomean(tbl, 0)
	r.check("64-byte virtual lines beat no virtual lines overall",
		g64 < g32, fmt.Sprintf("geomean %.3f vs %.3f", g64, g32))
	g256 := columnGeomean(tbl, 3)
	r.check("large virtual lines degrade gracefully (256B within 40% of 64B)",
		g256 < 1.4*g64, fmt.Sprintf("geomean VL=256 %.3f vs VL=64 %.3f", g256, g64))
	return r, nil
}

// runFig8b reproduces fig. 8b: the *standard* cache with physical lines of
// 32-256 bytes, against the full Soft design (32 B physical, 64 B virtual).
// Expected shape: large physical lines are not compatible with a small
// cache (conflicts, traffic), and the 64 B *virtual* line usually beats the
// 64 B *physical* line.
func runFig8b(ctx *Context) (*Report, error) {
	r := &Report{ID: "8b", Title: "Influence of Physical Line Size"}
	var configs []namedConfig
	for _, ls := range []int{32, 64, 128, 256} {
		cfg := core.Standard()
		cfg.LineSize = ls
		configs = append(configs, namedConfig{fmt.Sprintf("Phys=%d", ls), cfg})
	}
	configs = append(configs, namedConfig{"Soft", core.Soft()})
	tbl, err := amatTable(ctx, "AMAT (cycles)", workloads.Benchmarks(), configs, amat)
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, tbl)

	wins, rows := 0, tbl.Rows()
	for i := 0; i < rows; i++ {
		if tbl.Value(i, 4) <= tbl.Value(i, 1)+1e-9 { // Soft vs Phys=64
			wins++
		}
	}
	r.check("the 64B virtual line usually beats a 64B physical line (paper: all but BDN)",
		wins >= rows-2, fmt.Sprintf("%d/%d", wins, rows))

	g64, g256 := columnGeomean(tbl, 1), columnGeomean(tbl, 3)
	r.check("very large physical lines hurt a small cache",
		g256 > g64, fmt.Sprintf("geomean phys=256 %.3f vs phys=64 %.3f", g256, g64))
	return r, nil
}
