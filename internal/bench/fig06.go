package bench

import (
	"fmt"

	"softcache/internal/core"
	"softcache/internal/metrics"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "6a",
		Title: "Performance of software control (AMAT): Stand, Soft-temporal, Soft-spatial, Soft",
		Run:   runFig6a,
	})
	register(Experiment{
		ID:    "6b",
		Title: "Repartition of cache hits: main cache vs bounce-back cache (Soft)",
		Run:   runFig6b,
	})
}

// fourConfigs is the column set shared by figs. 6a, 7a and 7b.
func fourConfigs() []namedConfig {
	return []namedConfig{
		{"Standard", core.Standard()},
		{"Soft-T", core.SoftTemporal()},
		{"Soft-S", core.SoftSpatial()},
		{"Soft", core.Soft()},
	}
}

// runFig6a reproduces fig. 6a. Expected shape (§3.2): software-assisted
// caches always at least match the standard cache; the virtual-line
// mechanism alone is the stronger of the two; the combination wins overall.
func runFig6a(ctx *Context) (*Report, error) {
	r := &Report{ID: "6a", Title: "Performance of Software Control (AMAT)"}
	tbl, err := amatTable(ctx, "AMAT (cycles)", workloads.Benchmarks(), fourConfigs(), amat)
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, tbl)

	wins, rows := columnWins(tbl, 3, 0, 1e-9)
	r.check("software-assisted caches are safe (Soft <= Standard everywhere)",
		wins == rows, fmt.Sprintf("%d/%d", wins, rows))

	sWins, _ := columnWins(tbl, 2, 1, 1e-9)
	r.check("the virtual-line mechanism alone helps more codes than bounce-back alone",
		sWins >= rows/2+1, fmt.Sprintf("spatial wins %d/%d", sWins, rows))

	soft, softS, softT := columnGeomean(tbl, 3), columnGeomean(tbl, 2), columnGeomean(tbl, 1)
	best := softS
	if softT < best {
		best = softT
	}
	r.check("combining both mechanisms gives the best overall AMAT",
		soft <= best*1.02, fmt.Sprintf("geomean soft %.3f vs best single %.3f", soft, best))
	return r, nil
}

// runFig6b reproduces fig. 6b: under the full Soft configuration, the share
// of hits served by the main cache vs the bounce-back cache. The paper's
// observation: most hits stay 1-cycle main-cache hits (so the AMAT gain
// tracks the miss-ratio gain).
func runFig6b(ctx *Context) (*Report, error) {
	r := &Report{ID: "6b", Title: "Repartition of Cache Hits"}
	tbl := metrics.NewTable("Share of hits per structure (Soft)", "benchmark", "main cache", "bounce-back")
	minMain := 1.0
	for _, name := range workloads.Benchmarks() {
		res, err := ctx.Simulate(name, core.Soft())
		if err != nil {
			return nil, err
		}
		mf := res.Stats.MainHitFraction()
		tbl.AddRow(name, mf, 1-mf)
		if mf < minMain {
			minMain = mf
		}
	}
	r.Tables = append(r.Tables, tbl)
	r.check("most cache hits are main-cache hits",
		minMain > 0.60, fmt.Sprintf("min main-hit share %.2f", minMain))
	return r, nil
}
