package bench

import (
	"fmt"

	"softcache/internal/core"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "3a",
		Title: "Efficiency of bypassing: Standard vs plain bypass vs bypass through a buffer (AMAT)",
		Run:   runFig3a,
	})
	register(Experiment{
		ID:    "3b",
		Title: "Efficiency of victim caches: Standard, Standard+Victim, Soft (AMAT)",
		Run:   runFig3b,
	})
}

// runFig3a reproduces fig. 3a. The paper's point: classic bypassing is
// usually *harmful* because non-reusable data loses its spatial locality —
// every access pays the memory latency — while a small buffer recovers part
// of it.
func runFig3a(ctx *Context) (*Report, error) {
	r := &Report{ID: "3a", Title: "Efficiency of Bypassing"}
	tbl, err := amatTable(ctx, "AMAT (cycles)", workloads.Benchmarks(), []namedConfig{
		{"Standard", core.Standard()},
		{"Bypass", core.BypassPlain()},
		{"BypassBuffer", core.BypassBuffered()},
	}, amat)
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, tbl)

	std, byp, buf := columnGeomean(tbl, 0), columnGeomean(tbl, 1), columnGeomean(tbl, 2)
	r.check("plain bypass is much worse than Standard on most codes",
		byp > 1.3*std, fmt.Sprintf("geomean bypass %.2f vs standard %.2f", byp, std))
	r.check("a buffer recovers part of the bypassed spatial locality",
		buf < byp, fmt.Sprintf("geomean buffered %.2f vs plain %.2f", buf, byp))
	return r, nil
}

// runFig3b reproduces fig. 3b. Victim caches remove conflict misses but not
// pollution; the full Soft design beats them.
func runFig3b(ctx *Context) (*Report, error) {
	r := &Report{ID: "3b", Title: "Efficiency of Victim Caches"}
	tbl, err := amatTable(ctx, "AMAT (cycles)", workloads.Benchmarks(), []namedConfig{
		{"Standard", core.Standard()},
		{"Stand+Victim", core.Victim()},
		{"Soft", core.Soft()},
	}, amat)
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, tbl)

	wins, rows := columnWins(tbl, 1, 0, 1e-9)
	r.check("a victim cache never hurts", wins == rows, fmt.Sprintf("%d/%d", wins, rows))
	wins, rows = columnWins(tbl, 2, 1, 1e-9)
	r.check("Soft beats Standard+Victim on every benchmark", wins == rows, fmt.Sprintf("%d/%d", wins, rows))
	return r, nil
}
