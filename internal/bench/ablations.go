package bench

import (
	"fmt"

	"softcache/internal/cache"
	"softcache/internal/core"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "ablations",
		Title: "Design-choice ablations called out in the paper's discussion",
		Run:   runAblations,
	})
}

// runAblations quantifies the secondary design decisions the paper
// discusses in §2.2 and §3.2:
//
//   - admitting every victim into the bounce-back cache vs only temporal
//     ones (the paper found all-victims better, "probably because of
//     spatial interferences");
//   - a fully-associative vs 4-way bounce-back cache ("a 4-way bounce-back
//     cache would perform reasonably well");
//   - 16-byte vs 32-byte physical lines under Soft ("proved to be
//     similar");
//   - the virtual-line coherence checks (skipping resident lines) vs
//     blind fetching of the whole virtual line.
func runAblations(ctx *Context) (*Report, error) {
	r := &Report{ID: "ablations", Title: "Design Ablations"}

	admitAll := core.Soft()
	admitTemporal := core.Soft()
	admitTemporal.TemporalOnlyAdmission = true

	bb4way := core.Soft()
	bb4way.BounceBackAssoc = 4

	phys16 := core.Soft()
	phys16.LineSize = 16
	phys16.VirtualLineSize = 64

	noCoherence := core.Soft()
	noCoherence.NoCoherenceChecks = true

	tbl, err := amatTable(ctx, "AMAT (cycles)", workloads.Benchmarks(), []namedConfig{
		{"Soft", admitAll},
		{"AdmitTemporal", admitTemporal},
		{"BB 4-way", bb4way},
		{"Phys=16", phys16},
		{"NoCoherence", noCoherence},
		{"VariableVL", core.SoftVariable()},
		{"WriteThrough", core.WithWritePolicy(core.Soft(), cache.WriteThroughAllocate)},
	}, amat)
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, tbl)

	// Traffic comparison for the coherence ablation.
	trafficTbl, err := amatTable(ctx, "Words fetched per reference", workloads.Benchmarks(), []namedConfig{
		{"Soft", admitAll},
		{"NoCoherence", noCoherence},
	}, func(res core.Result) float64 { return res.Stats.WordsPerReference() })
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, trafficTbl)

	gAll, gTemp := columnGeomean(tbl, 0), columnGeomean(tbl, 1)
	r.check("admitting every victim is at least as good as temporal-only admission",
		gAll <= gTemp*1.02, fmt.Sprintf("geomean %.3f vs %.3f", gAll, gTemp))

	g4 := columnGeomean(tbl, 2)
	r.check("a 4-way bounce-back cache performs reasonably well",
		g4 < 1.05*gAll, fmt.Sprintf("geomean %.3f vs %.3f", g4, gAll))

	g16 := columnGeomean(tbl, 3)
	r.check("16-byte physical lines perform similarly under Soft",
		g16 < 1.25*gAll && g16 > 0.75*gAll, fmt.Sprintf("geomean %.3f vs %.3f", g16, gAll))

	gCohT, gNoCohT := columnGeomean(trafficTbl, 0), columnGeomean(trafficTbl, 1)
	r.check("the coherence checks reduce memory traffic",
		gCohT <= gNoCohT, fmt.Sprintf("geomean words/ref %.3f vs %.3f", gCohT, gNoCohT))

	gVar := columnGeomean(tbl, 5)
	r.check("variable-length virtual lines (§3.2 extension) improve on the fixed 64B line",
		gVar <= gAll*1.01, fmt.Sprintf("geomean %.3f vs %.3f", gVar, gAll))

	gWT := columnGeomean(tbl, 6)
	r.check("write-back (the paper's choice) is at least as good as write-through",
		gAll <= gWT*1.02, fmt.Sprintf("geomean %.3f vs %.3f", gAll, gWT))

	// Replacement policies on a plain 2-way cache: the paper uses LRU
	// everywhere; FIFO and Random are the classic alternatives.
	lru2 := core.SetAssoc(core.Standard(), 2)
	fifo2 := lru2
	fifo2.Replacement = cache.ReplaceFIFO
	rand2 := lru2
	rand2.Replacement = cache.ReplaceRandom
	replTbl, err := amatTable(ctx, "2-way replacement policies (AMAT)", workloads.Benchmarks(), []namedConfig{
		{"LRU", lru2},
		{"FIFO", fifo2},
		{"Random", rand2},
	}, amat)
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, replTbl)
	gLRU, gFIFO, gRand := columnGeomean(replTbl, 0), columnGeomean(replTbl, 1), columnGeomean(replTbl, 2)
	r.check("LRU is competitive with FIFO and Random on the 2-way cache",
		gLRU <= gFIFO*1.03 && gLRU <= gRand*1.03,
		fmt.Sprintf("geomean lru %.3f fifo %.3f random %.3f", gLRU, gFIFO, gRand))
	return r, nil
}
