package bench

import (
	"fmt"

	"softcache/internal/core"
	"softcache/internal/locality"
	"softcache/internal/metrics"
	"softcache/internal/trace"
	"softcache/internal/tracegen"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "12sw",
		Title: "Software prefetching (§4.4 extension): explicit PREFETCH instructions vs the hardware scheme",
		Run:   runFig12SW,
	})
}

// swPrefetchTrace builds the named workload with compiler-inserted prefetch
// instructions at the given iteration distance.
func (c *Context) swPrefetchTrace(name string, distance int) (*trace.Trace, error) {
	return c.cached(fmt.Sprintf("%s/swpf=%d", name, distance), func() (*trace.Trace, error) {
		p, err := workloads.BuildProgram(name, c.Scale)
		if err != nil {
			return nil, err
		}
		if _, err := locality.InsertPrefetches(p, distance); err != nil {
			return nil, err
		}
		return tracegen.Generate(p, tracegen.Options{Seed: c.Seed})
	})
}

// runFig12SW extends fig. 12 with the software-prefetch variant the paper
// sketches but does not evaluate: the bounce-back cache is the prefetch
// buffer and "distinctive load/store instructions" (our PREFETCH records)
// carry the requests. Expected shape: software prefetch with an adequate
// distance performs in the same band as the hardware progressive scheme,
// and both beat plain Soft.
func runFig12SW(ctx *Context) (*Report, error) {
	r := &Report{ID: "12sw", Title: "Software Prefetching (extension)"}
	distances := []int{2, 4, 8}
	cols := []string{"Soft", "Soft+HWpf"}
	for _, d := range distances {
		cols = append(cols, fmt.Sprintf("Soft+SWpf(d=%d)", d))
	}
	tbl := metrics.NewTable("AMAT (cycles)", "benchmark", cols...)

	for _, name := range workloads.Benchmarks() {
		row := make([]float64, 0, len(cols))
		base, err := ctx.SimulateMany(name, []core.Config{core.Soft(), core.WithPrefetch(core.Soft(), true)})
		if err != nil {
			return nil, err
		}
		row = append(row, base[0].AMAT(), base[1].AMAT())
		for _, d := range distances {
			t, err := ctx.swPrefetchTrace(name, d)
			if err != nil {
				return nil, err
			}
			res, err := core.Simulate(core.Soft(), t)
			if err != nil {
				return nil, err
			}
			row = append(row, res.AMAT())
		}
		tbl.AddRow(name, row...)
	}
	r.Tables = append(r.Tables, tbl)

	gSoft := columnGeomean(tbl, 0)
	gHW := columnGeomean(tbl, 1)
	best := gHW
	bestCol := "hardware"
	for i := 2; i < len(cols); i++ {
		if g := columnGeomean(tbl, i); g < best {
			best, bestCol = g, cols[i]
		}
	}
	gSW4 := columnGeomean(tbl, 3) // d=4
	r.check("software prefetching improves on plain Soft",
		gSW4 < gSoft, fmt.Sprintf("geomean %.3f vs %.3f", gSW4, gSoft))
	r.check("software prefetching lands in the hardware scheme's band",
		gSW4 < 1.25*gHW, fmt.Sprintf("geomean sw(d=4) %.3f vs hw %.3f", gSW4, gHW))
	r.Notes = append(r.Notes,
		fmt.Sprintf("best overall: %s (geomean %.3f)", bestCol, best))
	return r, nil
}
