package bench

import (
	"fmt"
	"html"
	"io"
	"strings"
	"time"

	"softcache/internal/metrics"
)

// WriteHTML renders the reports as a single self-contained HTML page with
// one grouped-bar SVG chart per table — the visual form of the paper's
// figures. No external assets or scripts are used.
func WriteHTML(w io.Writer, reports []*Report, scale string, elapsed time.Duration) {
	fmt.Fprintf(w, `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Software Assistance for Data Caches — regenerated figures</title>
<style>
body { font-family: Georgia, serif; max-width: 62rem; margin: 2rem auto; color: #222; }
h1 { font-size: 1.6rem; } h2 { font-size: 1.2rem; margin-top: 2.2rem; }
.check { font-family: monospace; font-size: 0.85rem; margin: 0.15rem 0; }
.pass { color: #1a7a1a; } .fail { color: #b00020; }
.note { font-style: italic; color: #555; }
svg { margin: 0.6rem 0; }
</style>
</head>
<body>
<h1>Software Assistance for Data Caches — regenerated figures</h1>
<p>Scale: %s. Total runtime: %v. Each chart carries the same rows and
series as the corresponding figure of Temam &amp; Drach (HPCA 1995); the
checks below each chart assert the paper's qualitative claims.</p>
`, html.EscapeString(scale), elapsed.Round(time.Second))

	for _, r := range reports {
		fmt.Fprintf(w, "<h2>Figure %s — %s</h2>\n",
			html.EscapeString(r.ID), html.EscapeString(r.Title))
		for _, t := range r.Tables {
			writeSVGChart(w, t)
		}
		for _, n := range r.Notes {
			fmt.Fprintf(w, "<p class=\"note\">%s</p>\n", html.EscapeString(n))
		}
		for _, c := range r.Checks {
			class, mark := "pass", "✓"
			if !c.Pass {
				class, mark = "fail", "✗"
			}
			detail := ""
			if c.Detail != "" {
				detail = " — " + c.Detail
			}
			fmt.Fprintf(w, "<div class=\"check %s\">%s %s%s</div>\n",
				class, mark, html.EscapeString(c.Name), html.EscapeString(detail))
		}
	}
	fmt.Fprint(w, "</body>\n</html>\n")
}

// chartPalette cycles through series colours.
var chartPalette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
	"#edc948", "#b07aa1", "#9c755f",
}

// writeSVGChart renders a grouped bar chart of the table.
func writeSVGChart(w io.Writer, t *metrics.Table) {
	const (
		barW      = 11
		gapInner  = 2
		gapGroup  = 18
		chartH    = 220
		marginL   = 46
		marginB   = 40
		marginT   = 26
		legendRow = 16
	)
	rows, cols := t.Rows(), len(t.Columns)
	if rows == 0 || cols == 0 {
		return
	}
	maxV := 0.0
	for i := 0; i < rows; i++ {
		for c := 0; c < cols; c++ {
			if v := t.Value(i, c); v > maxV {
				maxV = v
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	groupW := cols*(barW+gapInner) + gapGroup
	width := marginL + rows*groupW + 10
	legendH := (cols + 2) / 3 * legendRow
	height := marginT + chartH + marginB + legendH

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="Helvetica,Arial,sans-serif" font-size="10">`,
		width, height)
	fmt.Fprintf(&b, `<text x="%d" y="14" font-size="12" font-weight="bold">%s</text>`,
		marginL, html.EscapeString(t.Title))

	// y axis: 4 gridlines.
	for g := 0; g <= 4; g++ {
		v := maxV * float64(g) / 4
		y := marginT + chartH - int(float64(chartH)*float64(g)/4)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`,
			marginL, y, width-6, y)
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end" fill="#555">%.3g</text>`,
			marginL-4, y+3, v)
	}

	// Bars.
	for i := 0; i < rows; i++ {
		gx := marginL + i*groupW
		for c := 0; c < cols; c++ {
			v := t.Value(i, c)
			if v < 0 {
				v = 0
			}
			h := int(float64(chartH) * v / maxV)
			x := gx + c*(barW+gapInner)
			y := marginT + chartH - h
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>%s / %s: %.4g</title></rect>`,
				x, y, barW, h, chartPalette[c%len(chartPalette)],
				html.EscapeString(t.RowLabelAt(i)), html.EscapeString(t.Columns[c]), t.Value(i, c))
		}
		// Group label.
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" fill="#333">%s</text>`,
			gx+(groupW-gapGroup)/2, marginT+chartH+14, html.EscapeString(t.RowLabelAt(i)))
	}

	// Legend.
	for c := 0; c < cols; c++ {
		lx := marginL + (c%3)*170
		ly := marginT + chartH + marginB + (c/3)*legendRow
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`,
			lx, ly-9, chartPalette[c%len(chartPalette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#333">%s</text>`,
			lx+14, ly, html.EscapeString(t.Columns[c]))
	}
	b.WriteString(`</svg>`)
	fmt.Fprintln(w, b.String())
}
