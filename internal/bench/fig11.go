package bench

import (
	"fmt"

	"softcache/internal/core"
	"softcache/internal/metrics"
	"softcache/internal/trace"
	"softcache/internal/tracegen"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "11a",
		Title: "Optimal block size for blocked matrix-vector multiply (AMAT)",
		Run:   runFig11a,
	})
	register(Experiment{
		ID:    "11b",
		Title: "Data copying in blocked matrix-matrix multiply vs leading dimension (AMAT)",
		Run:   runFig11b,
	})
}

// blockedTrace generates (and caches) a parameterised workload's trace.
func (c *Context) blockedTrace(key string, build func() (*trace.Trace, error)) (*trace.Trace, error) {
	return c.cached(key, build)
}

// fig11aBlocks returns the block-size sweep for the scale (every block must
// divide the blocked-MV problem size).
func fig11aBlocks(s workloads.Scale) []int {
	if s == workloads.ScalePaper {
		return []int{10, 20, 40, 50, 100, 200, 500, 1000}
	}
	return []int{10, 20, 40, 50, 100, 200}
}

// runFig11a reproduces fig. 11a. Expected shape: AMAT as a function of
// block size is U-shaped for both designs, and software control moves the
// optimum towards larger blocks (pollution no longer forces conservative
// blocking) while also lowering the curve.
func runFig11a(ctx *Context) (*Report, error) {
	r := &Report{ID: "11a", Title: "Optimal Block Size for Blocked Algorithms"}
	blocks := fig11aBlocks(ctx.Scale)
	tbl := metrics.NewTable("AMAT (cycles) vs block size", "block", "Standard", "Soft")
	type point struct{ std, soft float64 }
	points := make([]point, len(blocks))
	for i, b := range blocks {
		key := fmt.Sprintf("BlockedMV/b=%d", b)
		t, err := ctx.blockedTrace(key, func() (*trace.Trace, error) {
			p, err := workloads.BlockedMV(ctx.Scale, b)
			if err != nil {
				return nil, err
			}
			return tracegen.Generate(p, tracegen.Options{Seed: ctx.Seed})
		})
		if err != nil {
			return nil, err
		}
		std, err := core.Simulate(core.Standard(), t)
		if err != nil {
			return nil, err
		}
		soft, err := core.Simulate(core.Soft(), t)
		if err != nil {
			return nil, err
		}
		points[i] = point{std.AMAT(), soft.AMAT()}
		tbl.AddRow(fmt.Sprintf("%d", b), points[i].std, points[i].soft)
	}
	r.Tables = append(r.Tables, tbl)

	// Locate each design's optimum.
	bestStd, bestSoft := 0, 0
	for i := range points {
		if points[i].std < points[bestStd].std {
			bestStd = i
		}
		if points[i].soft < points[bestSoft].soft {
			bestSoft = i
		}
	}
	r.check("software control tolerates at least as large a block size",
		blocks[bestSoft] >= blocks[bestStd],
		fmt.Sprintf("optimum %d (Soft) vs %d (Standard)", blocks[bestSoft], blocks[bestStd]))
	r.check("software control lowers AMAT at its optimum",
		points[bestSoft].soft < points[bestStd].std,
		fmt.Sprintf("%.3f vs %.3f", points[bestSoft].soft, points[bestStd].std))
	return r, nil
}

// fig11bLDs is the paper's leading-dimension sweep.
var fig11bLDs = []int{116, 117, 118, 119, 120, 121, 122, 123, 124, 125, 126}

// runFig11b reproduces fig. 11b. Expected shape: without copying, AMAT
// spikes at unlucky leading dimensions (self-interference); copying
// flattens the curve at the cost of the refill traffic; software assistance
// reduces that cost and tames the no-copy spikes.
func runFig11b(ctx *Context) (*Report, error) {
	r := &Report{ID: "11b", Title: "Data Copying (Blocked Matrix-Matrix Multiply)"}
	tbl := metrics.NewTable("AMAT (cycles) vs leading dimension", "LD",
		"NoCopy(stand)", "Copy(stand)", "NoCopy(soft)", "Copy(soft)")
	type runRes struct{ ncS, cS, ncF, cF float64 }
	var rows []runRes
	for _, ld := range fig11bLDs {
		var vals runRes
		for _, copying := range []bool{false, true} {
			key := fmt.Sprintf("BlockedMM/ld=%d,copy=%v", ld, copying)
			t, err := ctx.blockedTrace(key, func() (*trace.Trace, error) {
				p, err := workloads.BlockedMM(ctx.Scale, ld, copying)
				if err != nil {
					return nil, err
				}
				return tracegen.Generate(p, tracegen.Options{Seed: ctx.Seed})
			})
			if err != nil {
				return nil, err
			}
			std, err := core.Simulate(core.Standard(), t)
			if err != nil {
				return nil, err
			}
			soft, err := core.Simulate(core.Soft(), t)
			if err != nil {
				return nil, err
			}
			if copying {
				vals.cS, vals.cF = std.AMAT(), soft.AMAT()
			} else {
				vals.ncS, vals.ncF = std.AMAT(), soft.AMAT()
			}
		}
		rows = append(rows, vals)
		tbl.AddRow(fmt.Sprintf("%d", ld), vals.ncS, vals.cS, vals.ncF, vals.cF)
	}
	r.Tables = append(r.Tables, tbl)

	// Copying flattens the curve: its spread across LDs is smaller than
	// no-copy's under the standard cache.
	spread := func(get func(runRes) float64) float64 {
		lo, hi := rows[0], rows[0]
		for _, v := range rows {
			if get(v) < get(lo) {
				lo = v
			}
			if get(v) > get(hi) {
				hi = v
			}
		}
		return get(hi) - get(lo)
	}
	ncSpread := spread(func(v runRes) float64 { return v.ncS })
	cSpread := spread(func(v runRes) float64 { return v.cS })
	r.check("copying flattens the leading-dimension pathology",
		cSpread < ncSpread, fmt.Sprintf("spread %.3f (copy) vs %.3f (no copy)", cSpread, ncSpread))

	// Software assistance reduces the cost of copying.
	meanCS, meanCF := 0.0, 0.0
	for _, v := range rows {
		meanCS += v.cS
		meanCF += v.cF
	}
	meanCS /= float64(len(rows))
	meanCF /= float64(len(rows))
	r.check("software control reduces the copying variant's AMAT",
		meanCF < meanCS, fmt.Sprintf("mean %.3f vs %.3f", meanCF, meanCS))
	return r, nil
}
