package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"softcache/internal/metrics"
)

func sampleReport() *Report {
	tbl := metrics.NewTable("AMAT (cycles)", "benchmark", "Standard", "Soft")
	tbl.AddRow("MV", 9.945, 2.993)
	tbl.AddRow("SpMV", 7.033, 4.662)
	r := &Report{ID: "6a", Title: "Sample", Tables: []*metrics.Table{tbl}}
	r.Notes = append(r.Notes, "a note")
	r.check("soft wins", true, "geomean")
	r.check("a failing check", false, "details")
	return r
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	files, err := WriteCSV(dir, sampleReport())
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || filepath.Base(files[0]) != "fig6a.csv" {
		t.Fatalf("files = %v", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	want := "benchmark,Standard,Soft\nMV,9.945,2.993\nSpMV,7.033,4.662\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

func TestWriteCSVMultipleTables(t *testing.T) {
	r := sampleReport()
	tbl2 := metrics.NewTable("Miss ratio", "benchmark", "Soft")
	tbl2.AddRow("MV", 0.063)
	r.Tables = append(r.Tables, tbl2)
	r.ID = "7a/b" // exercises name sanitisation
	files, err := WriteCSV(t.TempDir(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 ||
		filepath.Base(files[0]) != "fig7a_b-1.csv" ||
		filepath.Base(files[1]) != "fig7a_b-2.csv" {
		t.Fatalf("files = %v", files)
	}
}

func TestWriteMarkdown(t *testing.T) {
	var b strings.Builder
	WriteMarkdown(&b, []*Report{sampleReport()}, "test", 3*time.Second)
	md := b.String()
	for _, want := range []string{
		"# EXPERIMENTS",
		"**Summary: 1/2 shape checks pass.**",
		"## Figure 6a — Sample",
		"| benchmark | Standard | Soft |",
		"| MV | 9.945 | 2.993 |",
		"> a note",
		"- [x] soft wins — geomean",
		"- [ ] a failing check — details",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := sampleReport()
	out := r.String()
	for _, want := range []string{"Figure 6a", "[PASS] soft wins", "[FAIL] a failing check", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if r.Passed() {
		t.Fatal("report with a failing check cannot pass")
	}
}

func TestWriteHTML(t *testing.T) {
	var b strings.Builder
	WriteHTML(&b, []*Report{sampleReport()}, "test", 2*time.Second)
	doc := b.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Figure 6a — Sample",
		"<svg", "</svg>",
		"MV / Soft: 2.993",
		`class="check pass"`, `class="check fail"`,
	} {
		if !strings.Contains(doc, want) {
			t.Fatalf("html missing %q", want)
		}
	}
	// Every table row label appears as a group label.
	if !strings.Contains(doc, ">SpMV</text>") {
		t.Fatal("group labels missing")
	}
}

func TestWriteHTMLEscapes(t *testing.T) {
	r := sampleReport()
	r.Title = `<script>alert("x")</script>`
	var b strings.Builder
	WriteHTML(&b, []*Report{r}, "test", 0)
	if strings.Contains(b.String(), "<script>alert") {
		t.Fatal("title not escaped")
	}
}
