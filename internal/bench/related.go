package bench

import (
	"fmt"

	"softcache/internal/core"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "related",
		Title: "Related-work baselines (§5): stream buffers, column-associative cache, vs Soft",
		Run:   runRelated,
	})
}

// runRelated compares the software-assisted design against the two §5
// related-work mechanisms the paper discusses but does not plot:
//
//   - Jouppi's stream buffers [19], which hide compulsory/capacity misses
//     of regular array streams but "do not work properly if the number of
//     array references within the loop body ... is larger than the number
//     of stream buffers" (and cannot help randomized accesses at all);
//   - the column-associative cache [2], which removes most conflict misses
//     of a direct-mapped cache but "does not deal with cache pollution".
func runRelated(ctx *Context) (*Report, error) {
	r := &Report{ID: "related", Title: "Related-Work Baselines"}
	tbl, err := amatTable(ctx, "AMAT (cycles)", workloads.Benchmarks(), []namedConfig{
		{"Standard", core.Standard()},
		{"Stand+Victim", core.Victim()},
		{"Stand+StreamBuf", core.StandardStreamBuffers()},
		{"ColumnAssoc", core.ColumnAssociative()},
		{"Subblock64/32", core.Subblocked()},
		{"Soft", core.Soft()},
	}, amat)
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, tbl)

	// "Most conflict misses are eliminated" (§5): the conflict-dominated
	// MV loop improves substantially; conflict-free codes are unaffected
	// (the slow-hit cycle costs little).
	rows := tbl.Rows()
	var mvRow = -1
	for i := 0; i < rows; i++ {
		if tbl.RowLabelAt(i) == "MV" {
			mvRow = i
		}
	}
	r.check("the column-associative cache eliminates MV's conflict misses",
		mvRow >= 0 && tbl.Value(mvRow, 3) < 0.75*tbl.Value(mvRow, 0),
		fmt.Sprintf("%.3f vs %.3f", tbl.Value(mvRow, 3), tbl.Value(mvRow, 0)))

	// Stream buffers shine on stream-dominated codes...
	var livRow, spmvRow = -1, -1
	for i := 0; i < rows; i++ {
		switch tbl.RowLabelAt(i) {
		case "LIV":
			livRow = i
		case "SpMV":
			spmvRow = i
		}
	}
	r.check("stream buffers hide the stream misses of LIV",
		livRow >= 0 && tbl.Value(livRow, 2) < 0.8*tbl.Value(livRow, 0),
		"")
	// ...but cannot exploit SpMV's randomized temporal reuse, where the
	// bounce-back mechanism can.
	r.check("Soft beats stream buffers on the sparse code",
		spmvRow >= 0 && tbl.Value(spmvRow, 5) < tbl.Value(spmvRow, 2),
		fmt.Sprintf("Soft %.3f vs stream %.3f", tbl.Value(spmvRow, 5), tbl.Value(spmvRow, 2)))

	// Neither related mechanism deals with pollution: Soft wins overall.
	gSoft := columnGeomean(tbl, 5)
	gCol := columnGeomean(tbl, 3)
	r.check("Soft beats the column-associative cache overall (pollution, not conflicts, dominates)",
		gSoft < gCol, fmt.Sprintf("geomean %.3f vs %.3f", gSoft, gCol))

	// Sub-block placement saves tag space and some traffic but cannot
	// exploit the spatial hint: the 64-byte *virtual* line wins.
	gSub := columnGeomean(tbl, 4)
	r.check("virtual lines beat sub-block placement overall (§2.1's contrast)",
		gSoft < gSub, fmt.Sprintf("geomean %.3f vs %.3f", gSoft, gSub))
	return r, nil
}
