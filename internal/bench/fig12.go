package bench

import (
	"fmt"

	"softcache/internal/core"
	"softcache/internal/workloads"
)

func init() {
	register(Experiment{
		ID:    "12",
		Title: "Prefetching: Stand, Stand+Prefetch, Soft, Soft+Prefetch (AMAT)",
		Run:   runFig12,
	})
}

// runFig12 reproduces fig. 12: the §4.4 software-assisted progressive
// prefetch (the bounce-back cache doubles as prefetch buffer; the spatial
// hint gates prefetch initiation) against an unguided prefetch-on-every-
// miss baseline. Expected shape: prefetching on top of Soft hides a
// further share of the compulsory/capacity misses of vector accesses.
func runFig12(ctx *Context) (*Report, error) {
	r := &Report{ID: "12", Title: "Prefetching"}
	tbl, err := amatTable(ctx, "AMAT (cycles)", workloads.Benchmarks(), []namedConfig{
		{"Standard", core.Standard()},
		{"Stand+Pf", core.WithPrefetch(core.Standard(), false)},
		{"Soft", core.Soft()},
		{"Soft+Pf", core.WithPrefetch(core.Soft(), true)},
	}, amat)
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, tbl)

	gSoft, gSoftPf := columnGeomean(tbl, 2), columnGeomean(tbl, 3)
	r.check("prefetching improves on plain Soft overall",
		gSoftPf < gSoft, fmt.Sprintf("geomean %.3f vs %.3f", gSoftPf, gSoft))

	wins, rows := columnWins(tbl, 3, 0, 1e-9)
	r.check("Soft+Prefetch beats Standard everywhere", wins == rows, fmt.Sprintf("%d/%d", wins, rows))

	gStd, gStdPf := columnGeomean(tbl, 0), columnGeomean(tbl, 1)
	r.check("even unguided prefetch helps the standard cache on these codes",
		gStdPf < gStd*1.05, fmt.Sprintf("geomean %.3f vs %.3f", gStdPf, gStd))
	return r, nil
}
