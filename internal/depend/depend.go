// Package depend builds an explicit data-dependence representation over a
// loopir.Program, making the structure the paper's §2.3 locality analysis
// exploits — uniformly generated sets and the self/group dependences inside
// them — a first-class, queryable artifact instead of logic inlined in the
// tagger.
//
// The model is deliberately *elementary*, matching the paper's central
// claim that elementary techniques suffice:
//
//   - every access site is linearised to Const + Σ Coef_i*Var_i (+ an
//     opaque indirect component);
//   - two sites in the same loop body referencing the same array with
//     identical affine terms form a *uniformly generated* pair: their
//     address streams differ by a compile-time constant;
//   - a *self* dependence arises when some enclosing loop variable is
//     absent from a subscript's bounds closure (the same elements are
//     revisited on every iteration of that loop — temporal), or when the
//     innermost stride is a small known constant (successive iterations
//     touch neighbouring elements — spatial);
//   - a *group* dependence connects two uniformly generated sites; when
//     the constant difference is attributable to a whole number of
//     iterations of one enclosing loop it is temporal (the same elements
//     are retouched that many iterations later, the carrying loop), and
//     when it is not attributable but smaller than a virtual line it is
//     spatial (distinct but adjacent elements).
//
// What the elementary model gives up — coupled subscripts, dependences
// carried by combinations of loops, symbolic distances — is exactly where
// the paper falls back to user directives (§4.1); package vet reports that
// boundary instead of silently dropping it.
//
// Package locality derives the temporal/spatial tags from this graph, and
// package vet uses it for its diagnostics passes.
package depend

import (
	"fmt"
	"sort"
	"strings"

	"softcache/internal/loopir"
)

// SpatialMaxCoef is the paper's elementary spatial threshold: an innermost
// stride smaller than this many elements (4 doubles = one 32-byte line)
// counts as spatial locality. It also bounds the constant difference at
// which an unattributable group dependence still counts as spatial reuse.
const SpatialMaxCoef = 4

// Class says what kind of reuse a dependence carries.
type Class int

const (
	// Temporal dependences retouch the *same* elements.
	Temporal Class = iota
	// Spatial dependences touch distinct but neighbouring elements.
	Spatial
)

func (c Class) String() string {
	if c == Spatial {
		return "spatial"
	}
	return "temporal"
}

// Kind is the classic dependence taxonomy, derived from the read/write
// direction of the two endpoints.
type Kind int

const (
	// Input: read after read.
	Input Kind = iota
	// Flow: read after write (true dependence).
	Flow
	// Anti: write after read.
	Anti
	// Output: write after write.
	Output
)

func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	default:
		return "input"
	}
}

// Ref is one analysed static reference site.
type Ref struct {
	// Access is the underlying IR site (Access.ID is the stable key).
	Access *loopir.Access
	// Lin is the linearised (element-index) subscript.
	Lin loopir.Subscript
	// Loops is the enclosing non-opaque loop stack, outermost first.
	// Opaque driver loops are excluded, as in the paper's per-subroutine
	// analysis.
	Loops []*loopir.Loop
	// Body identifies the statement list the access appears in; group
	// dependences are only formed between refs of the same body.
	Body int
	// Poisoned is true when a CALL appears anywhere under the innermost
	// enclosing loop: the paper's no-interprocedural-analysis rule erases
	// the tags of such references.
	Poisoned bool
	// Indirect is true when the linearised subscript contains an indirect
	// (data-dependent) component, which defeats affine analysis.
	Indirect bool

	group    *Group
	selfDeps []*Dep
	deps     []*Dep // group edges incident to this ref (either endpoint)
}

// Depth returns the number of enclosing (non-opaque) loops.
func (r *Ref) Depth() int { return len(r.Loops) }

// Innermost returns the innermost enclosing non-opaque loop, or nil.
func (r *Ref) Innermost() *loopir.Loop {
	if len(r.Loops) == 0 {
		return nil
	}
	return r.Loops[len(r.Loops)-1]
}

// InnermostCoef returns the coefficient of the innermost loop variable in
// the linearised subscript — the quantity the paper's spatial rule
// thresholds. known is false when there is no enclosing loop or the
// subscript is indirect (the coefficient is not a compile-time constant).
func (r *Ref) InnermostCoef() (coef int, known bool) {
	in := r.Innermost()
	if in == nil || r.Indirect {
		return 0, false
	}
	return r.Lin.Coef(in.Var), true
}

// InnermostStride returns the element distance between successive
// innermost iterations (coefficient times loop step). known is false when
// there is no enclosing loop or the subscript is indirect.
func (r *Ref) InnermostStride() (stride int, known bool) {
	coef, known := r.InnermostCoef()
	if !known {
		return 0, false
	}
	return coef * loopStep(r.Innermost()), true
}

// SelfDeps returns the self-dependences of the reference (temporal one per
// invariant enclosing loop, spatial at the innermost loop).
func (r *Ref) SelfDeps() []*Dep { return r.selfDeps }

// GroupDeps returns the group dependences incident to the reference.
func (r *Ref) GroupDeps() []*Dep { return r.deps }

// Group returns the uniformly generated group the reference belongs to, or
// nil (indirect subscripts and singleton shapes have no group).
func (r *Ref) Group() *Group { return r.group }

// String renders the site compactly, e.g. "load A(j2,j1)#3".
func (r *Ref) String() string {
	op := "load"
	if r.Access.Write {
		op = "store"
	}
	subs := make([]string, len(r.Access.Index))
	for i, s := range r.Access.Index {
		subs[i] = s.String()
	}
	return fmt.Sprintf("%s %s(%s)#%d", op, r.Access.Array, strings.Join(subs, ","), r.Access.ID)
}

// Group is a uniformly generated set: two or more references to the same
// array, in the same loop body, whose linearised subscripts share the same
// affine terms and differ only by compile-time constants.
type Group struct {
	Array string
	// Shape is the canonical affine-terms key (array + sorted var*coef).
	Shape string
	// Body is the statement-list scope shared by the members.
	Body int
	// Refs are the members in program order.
	Refs []*Ref
}

// Leader returns the member with the largest constant — under forward
// traversal the first to touch new data, hence the one that keeps the
// spatial tag in the paper's fig. 5 (B(J,I+1) leads B(J,I)).
func (g *Group) Leader() *Ref {
	lead := g.Refs[0]
	for _, r := range g.Refs[1:] {
		if r.Lin.Const > lead.Lin.Const {
			lead = r
		}
	}
	return lead
}

// Dep is one dependence edge. For self dependences Src == Dst.
type Dep struct {
	// Src touches an element (or line) first in time; Dst retouches it.
	Src, Dst *Ref
	// Class says whether the reuse is of the same elements (temporal) or
	// of neighbouring elements (spatial).
	Class Class
	// Kind is the read/write taxonomy (flow, anti, output, input).
	Kind Kind
	// Distance is the element distance Src.Lin.Const - Dst.Lin.Const for
	// group edges (how far ahead in memory the source runs), the innermost
	// stride for self-spatial edges, and 0 for self-temporal edges.
	Distance int
	// Carrier is the loop whose iterations realise the reuse; nil for
	// loop-independent dependences (same iteration).
	Carrier *loopir.Loop
	// Level is the 1-based depth of Carrier in the shared loop stack
	// (1 = outermost); 0 means loop-independent; -1 means the constant
	// difference is not attributable to any single enclosing loop
	// (the boundary of the elementary analysis).
	Level int
	// IterDist is the number of Carrier iterations between the two
	// touches (1 for self dependences, Distance/Coef for attributed group
	// dependences, 0 otherwise).
	IterDist int
	// Vector is the iteration-distance vector over the shared loop stack
	// (outermost first): all zeros for loop-independent edges, IterDist at
	// the carrier position for attributed edges, nil when unattributable.
	Vector []int
}

// Self reports whether the edge is a self dependence.
func (d *Dep) Self() bool { return d.Src == d.Dst }

// String renders the edge, e.g.
// "temporal group dep B(j,i+1)#4 -> B(j,i)#3 carried by DO i (level 1, distance 1 iter)".
func (d *Dep) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s ", d.Class)
	if d.Self() {
		fmt.Fprintf(&b, "self dep %s", d.Src)
	} else {
		fmt.Fprintf(&b, "%s group dep %s -> %s", d.Kind, d.Src, d.Dst)
	}
	switch {
	case d.Level > 0:
		fmt.Fprintf(&b, " carried by DO %s (level %d, %d iter)", d.Carrier.Var, d.Level, d.IterDist)
	case d.Level == 0:
		b.WriteString(" (loop-independent)")
	default:
		fmt.Fprintf(&b, " (unattributable constant %d)", d.Distance)
	}
	return b.String()
}

// Graph is the dependence representation of one program.
type Graph struct {
	Prog   *loopir.Program
	Refs   []*Ref   // program order
	Groups []*Group // discovery order
	Deps   []*Dep   // all group edges
	byID   map[int]*Ref
}

// RefByID returns the analysed reference for an access ID (nil if unknown).
func (g *Graph) RefByID(id int) *Ref { return g.byID[id] }

// Analyze builds the dependence graph. The program must finalize cleanly
// (Analyze finalizes it as a side effect).
func Analyze(p *loopir.Program) (*Graph, error) {
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	g := &Graph{Prog: p, byID: make(map[int]*Ref)}
	w := &walker{p: p, g: g}
	if err := w.walk(p.Body, nil); err != nil {
		return nil, err
	}
	for _, grp := range g.Groups {
		g.connect(grp)
	}
	return g, nil
}

type walker struct {
	p      *loopir.Program
	g      *Graph
	bodies int
}

// walk mirrors the traversal the tagger used: accesses directly in one
// statement list share a body scope; opaque driver loops do not extend the
// loop stack.
func (w *walker) walk(body []loopir.Stmt, loops []*loopir.Loop) error {
	bodyID := w.bodies
	w.bodies++
	poisoned := len(loops) > 0 && subtreeHasCall(loops[len(loops)-1].Body)

	var refs []*Ref
	for _, st := range body {
		acc, ok := st.(*loopir.Access)
		if !ok {
			continue
		}
		lin, err := w.p.LinearSubscript(acc)
		if err != nil {
			return fmt.Errorf("depend: %w", err)
		}
		r := &Ref{
			Access:   acc,
			Lin:      lin,
			Loops:    loops,
			Body:     bodyID,
			Poisoned: poisoned,
			Indirect: lin.HasIndirect(),
		}
		w.g.Refs = append(w.g.Refs, r)
		w.g.byID[acc.ID] = r
		refs = append(refs, r)
	}
	w.groupRefs(refs, bodyID)
	for _, r := range refs {
		w.selfDeps(r)
	}

	for _, st := range body {
		if l, ok := st.(*loopir.Loop); ok {
			next := loops
			if !l.Opaque {
				// Full-slice expression: sibling loops must not alias
				// the same backing array when extending the stack.
				next = append(loops[:len(loops):len(loops)], l)
			}
			if err := w.walk(l.Body, next); err != nil {
				return err
			}
		}
	}
	return nil
}

// groupRefs partitions one body's references into uniformly generated
// groups (same array, same affine shape, no indirection).
func (w *walker) groupRefs(refs []*Ref, bodyID int) {
	byShape := make(map[string]*Group)
	for _, r := range refs {
		if r.Indirect {
			continue
		}
		key := ShapeKey(r.Access.Array, r.Lin)
		grp := byShape[key]
		if grp == nil {
			grp = &Group{Array: r.Access.Array, Shape: key, Body: bodyID}
			byShape[key] = grp
		}
		grp.Refs = append(grp.Refs, r)
	}
	// Keep only genuine groups (two or more members), in program order.
	var keys []string
	for k, grp := range byShape {
		if len(grp.Refs) >= 2 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		grp := byShape[k]
		for _, r := range grp.Refs {
			r.group = grp
		}
		w.g.Groups = append(w.g.Groups, grp)
	}
}

// selfDeps attaches the reference's self dependences: one temporal edge
// per enclosing loop outside the subscript's bounds closure, plus one
// spatial edge at the innermost loop when the stride is small and nonzero.
func (w *walker) selfDeps(r *Ref) {
	if r.Indirect || len(r.Loops) == 0 {
		return
	}
	closure := boundsClosure(r.Lin, r.Loops)
	for i, l := range r.Loops {
		if closure[l.Var] {
			continue
		}
		if trip, known := tripCount(l); known && trip < 2 {
			// A loop that runs at most once revisits nothing: zero- and
			// single-trip loops realise no reuse along their own axis.
			continue
		}
		r.selfDeps = append(r.selfDeps, &Dep{
			Src: r, Dst: r,
			Class:    Temporal,
			Kind:     kindOf(r.Access.Write, r.Access.Write),
			Carrier:  l,
			Level:    i + 1,
			IterDist: 1,
			Vector:   unitVector(len(r.Loops), i, 1),
		})
	}
	// The spatial threshold matches the tagger's: it is the *coefficient*
	// (not the step-scaled stride) the paper's rule bounds. Negative
	// coefficients qualify too — a backwards walk crosses the same lines.
	if trip, known := tripCount(r.Innermost()); known && trip < 2 {
		return
	}
	if coef, known := r.InnermostCoef(); known && coef != 0 && abs(coef) < SpatialMaxCoef {
		stride, _ := r.InnermostStride()
		r.selfDeps = append(r.selfDeps, &Dep{
			Src: r, Dst: r,
			Class:    Spatial,
			Kind:     kindOf(r.Access.Write, r.Access.Write),
			Distance: stride,
			Carrier:  r.Innermost(),
			Level:    len(r.Loops),
			IterDist: 1,
			Vector:   unitVector(len(r.Loops), len(r.Loops)-1, 1),
		})
	}
}

// connect builds the pairwise group edges of one uniformly generated set.
func (g *Graph) connect(grp *Group) {
	for i, a := range grp.Refs {
		for _, b := range grp.Refs[i+1:] {
			d := groupEdge(a, b)
			if d == nil {
				continue
			}
			g.Deps = append(g.Deps, d)
			d.Src.deps = append(d.Src.deps, d)
			if d.Dst != d.Src {
				d.Dst.deps = append(d.Dst.deps, d)
			}
		}
	}
}

// groupEdge classifies the dependence between two uniformly generated
// references. a precedes b in program order.
func groupEdge(a, b *Ref) *Dep {
	c := a.Lin.Const - b.Lin.Const
	if c == 0 {
		// Loop-independent: the same element in the same iteration; the
		// program-order-earlier reference is the source.
		return &Dep{
			Src: a, Dst: b,
			Class:  Temporal,
			Kind:   kindOf(a.Access.Write, b.Access.Write),
			Level:  0,
			Vector: make([]int, len(a.Loops)),
		}
	}
	// The member with the larger constant runs ahead in memory under
	// forward (positive-step) traversal: it is the source whose data the
	// trailing member retouches.
	src, dst := a, b
	if c < 0 {
		src, dst, c = b, a, -c
	}
	if carrierIdx, iters, ok := attribute(c, src.Lin, src.Loops); ok {
		if iters < 0 {
			// A negative per-iteration stride reverses the time order:
			// under forward traversal the member with the *smaller*
			// constant touches the shared element first (A(20-i) retraces
			// A(19-i) one iteration later), so the lexicographic source
			// is the trailing-constant reference.
			src, dst, iters = dst, src, -iters
		}
		return &Dep{
			Src: src, Dst: dst,
			Class:    Temporal,
			Kind:     kindOf(src.Access.Write, dst.Access.Write),
			Distance: src.Lin.Const - dst.Lin.Const,
			Carrier:  src.Loops[carrierIdx],
			Level:    carrierIdx + 1,
			IterDist: iters,
			Vector:   unitVector(len(src.Loops), carrierIdx, iters),
		}
	}
	d := &Dep{
		Src: src, Dst: dst,
		Class:    Temporal,
		Kind:     kindOf(src.Access.Write, dst.Access.Write),
		Distance: c,
		Level:    -1,
	}
	// Not a whole number of iterations of any single loop: the elements
	// never coincide; if the constant is within a virtual line the pair
	// still shares lines — spatial group reuse (A(2i) vs A(2i+1)).
	if c < SpatialMaxCoef {
		d.Class = Spatial
	}
	return d
}

// attribute finds the enclosing loop whose iterations explain an element
// distance c: its effective per-iteration stride must divide c, and when
// the trip count is a compile-time constant the iteration distance must
// fit inside it. A negative iteration count is a valid attribution with
// the time order reversed (negative-stride subscripts: the trailing
// constant leads in time); the caller swaps the endpoints. Among
// candidates the smallest |iteration distance| wins (ties to the
// outermost loop), matching the intuition that reuse is realised at the
// earliest opportunity.
func attribute(c int, lin loopir.Subscript, loops []*loopir.Loop) (idx, iters int, ok bool) {
	best := -1
	bestIters := 0
	for i, l := range loops {
		stride := lin.Coef(l.Var) * loopStep(l)
		if stride == 0 || c%stride != 0 {
			continue
		}
		n := c / stride
		if trip, known := tripCount(l); known && abs(n) >= trip {
			// Covers zero- and single-trip loops too: with trip <= 1 no
			// nonzero n fits, so a loop that cannot iterate never carries.
			continue
		}
		if best < 0 || abs(n) < abs(bestIters) {
			best, bestIters = i, n
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bestIters, true
}

// tripCount returns the loop's iteration count when both bounds are
// compile-time constants.
func tripCount(l *loopir.Loop) (int, bool) {
	if len(l.Lower.Terms) > 0 || l.Lower.Ind != nil || len(l.Upper.Terms) > 0 || l.Upper.Ind != nil {
		return 0, false
	}
	span := l.Upper.Const - l.Lower.Const
	if span < 0 {
		return 0, true
	}
	return span/loopStep(l) + 1, true
}

// boundsClosure returns the set of loop variables the subscript's value
// range depends on: the variables appearing in the subscript itself plus,
// transitively, the variables appearing in the bounds of those loops.
// A variable *outside* this closure iterates without changing the set of
// elements touched — genuine temporal reuse.
func boundsClosure(lin loopir.Subscript, loops []*loopir.Loop) map[string]bool {
	closure := make(map[string]bool, len(loops))
	for _, t := range lin.Terms {
		closure[t.Var] = true
	}
	// Iterate to a fixed point (the stack is tiny).
	for changed := true; changed; {
		changed = false
		for _, l := range loops {
			if !closure[l.Var] {
				continue
			}
			for _, v := range boundVars(l) {
				if !closure[v] {
					closure[v] = true
					changed = true
				}
			}
		}
	}
	return closure
}

// boundVars lists the loop variables appearing in l's bounds, including
// inside indirect bound components (data-dependent bounds such as CSR row
// pointers depend on the indexing variable).
func boundVars(l *loopir.Loop) []string {
	var out []string
	collect := func(s loopir.Subscript) {
		for _, t := range s.Terms {
			out = append(out, t.Var)
		}
		if s.Ind != nil {
			for _, t := range s.Ind.Sub.Terms {
				out = append(out, t.Var)
			}
		}
	}
	collect(l.Lower)
	collect(l.Upper)
	return out
}

// subtreeHasCall reports whether a CALL appears anywhere below body.
func subtreeHasCall(body []loopir.Stmt) bool {
	for _, st := range body {
		switch s := st.(type) {
		case *loopir.Call:
			return true
		case *loopir.Loop:
			if subtreeHasCall(s.Body) {
				return true
			}
		}
	}
	return false
}

// ShapeKey builds a canonical key identifying (array, affine shape); two
// references with equal keys in the same body are uniformly generated.
func ShapeKey(array string, lin loopir.Subscript) string {
	var b strings.Builder
	b.WriteString(array)
	terms := append([]loopir.Term(nil), lin.Terms...)
	sort.Slice(terms, func(i, j int) bool { return terms[i].Var < terms[j].Var })
	for _, t := range terms {
		if t.Coef == 0 {
			continue
		}
		fmt.Fprintf(&b, "|%s*%d", t.Var, t.Coef)
	}
	return b.String()
}

func kindOf(srcWrite, dstWrite bool) Kind {
	switch {
	case srcWrite && dstWrite:
		return Output
	case srcWrite:
		return Flow
	case dstWrite:
		return Anti
	default:
		return Input
	}
}

func unitVector(n, idx, v int) []int {
	out := make([]int, n)
	out[idx] = v
	return out
}

func loopStep(l *loopir.Loop) int {
	if l.Step == 0 {
		return 1
	}
	return l.Step
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
