package depend

import (
	"testing"

	"softcache/internal/loopir"
)

func vecEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestNegativeStrideSelf: a backwards walk A(63-i) has stride -1 — still
// one line-crossing per iteration, so the spatial self dependence stays,
// with the signed distance and the unit direction vector.
func TestNegativeStrideSelf(t *testing.T) {
	g := mustGraph(t, `
program rev
array A(64)
do i = 0, 63
  load A(63 - i)
end
`)
	r := g.Refs[0]
	if coef, known := r.InnermostCoef(); !known || coef != -1 {
		t.Fatalf("coef = %d,%v, want -1,true", coef, known)
	}
	deps := r.SelfDeps()
	if len(deps) != 1 {
		t.Fatalf("self deps = %v, want exactly the spatial one", deps)
	}
	d := deps[0]
	if d.Class != Spatial || d.Distance != -1 || d.IterDist != 1 {
		t.Errorf("spatial self = %v, want distance -1 at 1 iter", d)
	}
	if !vecEq(d.Vector, []int{1}) {
		t.Errorf("vector = %v, want [1]", d.Vector)
	}
}

// TestNegativeStrideGroup: with subscripts descending in i, the member
// with the *smaller* constant leads in time — store A(19-i) writes the
// element load A(20-i) reads one iteration later. Hand-computed: a flow
// dependence, carried by DO i, distance vector (1).
func TestNegativeStrideGroup(t *testing.T) {
	g := mustGraph(t, `
program revgroup
array A(64)
do i = 0, 19
  load A(20 - i)
  store A(19 - i)
end
`)
	if len(g.Deps) != 1 {
		t.Fatalf("got %d edges, want 1", len(g.Deps))
	}
	d := g.Deps[0]
	if d.Src.Lin.Const != 19 || !d.Src.Access.Write {
		t.Fatalf("src = %v, want the trailing-constant store A(19-i)", d.Src)
	}
	if d.Kind != Flow {
		t.Errorf("kind = %v, want flow (write then read of the same element)", d.Kind)
	}
	if d.Class != Temporal || d.Level != 1 || d.IterDist != 1 || d.Carrier.Var != "i" {
		t.Errorf("edge = %v, want temporal carried by DO i at 1 iter", d)
	}
	if d.Distance != -1 {
		t.Errorf("distance = %d, want -1 (the source trails in memory)", d.Distance)
	}
	if !vecEq(d.Vector, []int{1}) {
		t.Errorf("vector = %v, want [1]", d.Vector)
	}
}

// TestCoupledSubscriptsTie: A(i+j) vs A(i+j+1) — both loops' strides
// divide the constant difference at one iteration, so the dependence has
// two equally short realisations, (1,0) and (0,1). The elementary model
// keeps one edge and documents the tie rule: outermost wins.
func TestCoupledSubscriptsTie(t *testing.T) {
	g := mustGraph(t, `
program coupled
array A(40)
do i = 0, 9
  do j = 0, 9
    load A(i + j)
    load A(i + j + 1)
  end
end
`)
	if len(g.Deps) != 1 {
		t.Fatalf("got %d edges, want 1", len(g.Deps))
	}
	d := g.Deps[0]
	if d.Class != Temporal || d.Level != 1 || d.IterDist != 1 || d.Carrier.Var != "i" {
		t.Errorf("edge = %v, want temporal carried by the outermost DO i", d)
	}
	if !vecEq(d.Vector, []int{1, 0}) {
		t.Errorf("vector = %v, want [1 0]", d.Vector)
	}
}

// TestCoupledSubscriptsEarliest: A(2i+j) at distance 2 — DO i explains it
// in one iteration, DO j needs two; the smaller iteration distance wins.
// At distance 1 only DO j divides, so the carrier flips inward.
func TestCoupledSubscriptsEarliest(t *testing.T) {
	g := mustGraph(t, `
program coupled2
array A(64)
do i = 0, 9
  do j = 0, 19
    load A(2 * i + j)
    load A(2 * i + j + 2)
    load A(2 * i + j + 1)
  end
end
`)
	// Pairs: (+2,+0) dist 2 -> i@1; (+2,+1) dist 1 -> j@1; (+1,+0) dist 1 -> j@1.
	var byDist = map[int][]*Dep{}
	for _, d := range g.Deps {
		byDist[d.Distance] = append(byDist[d.Distance], d)
	}
	if len(g.Deps) != 3 {
		t.Fatalf("got %d edges, want 3: %v", len(g.Deps), g.Deps)
	}
	for _, d := range byDist[2] {
		if d.Carrier.Var != "i" || d.IterDist != 1 || !vecEq(d.Vector, []int{1, 0}) {
			t.Errorf("distance-2 edge = %v vector %v, want DO i at 1 iter [1 0]", d, d.Vector)
		}
	}
	if len(byDist[1]) != 2 {
		t.Fatalf("want two distance-1 edges, got %v", byDist)
	}
	for _, d := range byDist[1] {
		if d.Carrier.Var != "j" || d.IterDist != 1 || !vecEq(d.Vector, []int{0, 1}) {
			t.Errorf("distance-1 edge = %v vector %v, want DO j at 1 iter [0 1]", d, d.Vector)
		}
	}
}

// TestZeroTripLoop: DO i = 5, 3 never executes. A loop that cannot
// iterate realises no reuse: no self dependences, and the group edge
// cannot be carried by it — it degrades to the unattributable spatial
// case (the members would share a line if the loop ran).
func TestZeroTripLoop(t *testing.T) {
	g := mustGraph(t, `
program zerotrip
array A(16)
do i = 5, 3
  load A(i)
  load A(i + 1)
end
`)
	for _, r := range g.Refs {
		if len(r.SelfDeps()) != 0 {
			t.Errorf("%v has self deps %v inside a zero-trip loop", r, r.SelfDeps())
		}
	}
	if len(g.Deps) != 1 {
		t.Fatalf("got %d edges, want 1", len(g.Deps))
	}
	d := g.Deps[0]
	if d.Level != -1 || d.Class != Spatial || d.Vector != nil {
		t.Errorf("edge = %v (vector %v), want unattributable spatial with nil vector", d, d.Vector)
	}
}

// TestSingleTripLoop: a loop with exactly one iteration is invariant for
// every subscript not using its variable, but revisits nothing — no
// temporal self dependence. Widening it to two trips restores the edge.
func TestSingleTripLoop(t *testing.T) {
	one := mustGraph(t, `
program onetrip
array A(16)
do i = 0, 15
  do j = 2, 2
    load A(i)
  end
end
`)
	if deps := one.Refs[0].SelfDeps(); len(deps) != 0 {
		t.Errorf("single-trip DO j produced self deps %v, want none", deps)
	}

	two := mustGraph(t, `
program twotrip
array A(16)
do i = 0, 15
  do j = 2, 3
    load A(i)
  end
end
`)
	deps := two.Refs[0].SelfDeps()
	if len(deps) != 1 || deps[0].Class != Temporal || deps[0].Carrier.Var != "j" {
		t.Fatalf("two-trip DO j self deps = %v, want one temporal on j", deps)
	}
	if !vecEq(deps[0].Vector, []int{0, 1}) {
		t.Errorf("vector = %v, want [0 1]", deps[0].Vector)
	}
}

// TestTripCount pins the constant-bounds trip arithmetic the carrier
// feasibility checks rest on.
func TestTripCount(t *testing.T) {
	cases := []struct {
		lo, hi, step int
		trip         int
	}{
		{0, 9, 1, 10},
		{2, 2, 1, 1},
		{5, 3, 1, 0},
		{0, 9, 4, 3}, // 0, 4, 8
	}
	for _, c := range cases {
		l := loopir.DoStep("i", loopir.C(c.lo), loopir.C(c.hi), c.step)
		trip, known := tripCount(l)
		if !known || trip != c.trip {
			t.Errorf("tripCount(do i = %d, %d step %d) = %d,%v, want %d,true",
				c.lo, c.hi, c.step, trip, known, c.trip)
		}
	}
	sym := loopir.Do("j", loopir.C(0), loopir.V("n"))
	if _, known := tripCount(sym); known {
		t.Errorf("symbolic upper bound reported a known trip count")
	}
}
