package depend

import (
	"strings"
	"testing"

	"softcache/internal/lang"
	"softcache/internal/loopir"
)

func mustGraph(t *testing.T, src string) *Graph {
	t.Helper()
	p := lang.MustParse(src)
	g, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const fig5Src = `
program fig5
array A(100, 100)
array B(100, 101)
array X(100)
array Y(100)
do i = 0, 99
  do j = 0, 99
    load Y(i)
    load A(i, j)
    load B(j, i)
    load B(j, i + 1)
    load X(j)
    store Y(i)
  end
end
`

// TestFig5Groups checks the uniformly generated sets of the paper's fig. 5
// loop: {Y load, Y store} and {B(J,I), B(J,I+1)}.
func TestFig5Groups(t *testing.T) {
	g := mustGraph(t, fig5Src)
	if len(g.Refs) != 6 {
		t.Fatalf("got %d refs, want 6", len(g.Refs))
	}
	if len(g.Groups) != 2 {
		t.Fatalf("got %d groups, want 2: %v", len(g.Groups), g.Groups)
	}
	byArray := map[string]*Group{}
	for _, grp := range g.Groups {
		byArray[grp.Array] = grp
	}
	b, y := byArray["B"], byArray["Y"]
	if b == nil || y == nil {
		t.Fatalf("want groups on B and Y, got %v", byArray)
	}
	if len(b.Refs) != 2 || len(y.Refs) != 2 {
		t.Fatalf("group sizes B=%d Y=%d, want 2 and 2", len(b.Refs), len(y.Refs))
	}
	// B's leader is B(j,i+1): const 100 vs 0.
	if lead := b.Leader(); lead.Lin.Const != 100 {
		t.Errorf("B leader const = %d, want 100", lead.Lin.Const)
	}
}

// TestFig5GroupEdges checks the classified edges: B's pair is temporal,
// carried by DO i with distance 1; Y's read/write pair is a
// loop-independent flow dependence.
func TestFig5GroupEdges(t *testing.T) {
	g := mustGraph(t, fig5Src)
	if len(g.Deps) != 2 {
		t.Fatalf("got %d group edges, want 2", len(g.Deps))
	}
	for _, d := range g.Deps {
		switch d.Src.Access.Array {
		case "B":
			if d.Class != Temporal || d.Level != 1 || d.IterDist != 1 || d.Carrier.Var != "i" {
				t.Errorf("B edge = %v, want temporal carried by DO i level 1 dist 1", d)
			}
			if d.Src.Lin.Const != 100 {
				t.Errorf("B edge source should be the leading B(j,i+1), got %v", d.Src)
			}
			if d.Kind != Input {
				t.Errorf("B edge kind = %v, want input", d.Kind)
			}
		case "Y":
			if d.Class != Temporal || d.Level != 0 || d.Kind != Anti {
				// Program order: load Y(i) before store Y(i) -> anti.
				t.Errorf("Y edge = %v, want loop-independent anti", d)
			}
		default:
			t.Errorf("unexpected edge on %s: %v", d.Src.Access.Array, d)
		}
	}
}

// TestFig5SelfDeps checks the self dependences behind each fig. 5 tag.
func TestFig5SelfDeps(t *testing.T) {
	g := mustGraph(t, fig5Src)
	find := func(array string, write bool, cnst int) *Ref {
		for _, r := range g.Refs {
			if r.Access.Array == array && r.Access.Write == write && r.Lin.Const == cnst {
				return r
			}
		}
		t.Fatalf("no ref %s const %d", array, cnst)
		return nil
	}
	// Y(i): temporal self on the innermost loop j (invariant), and that is
	// also what makes it spatial (stride 0) — but a *spatial self* edge
	// needs a nonzero small stride, so Y has exactly one self dep.
	y := find("Y", false, 0)
	if len(y.selfDeps) != 1 || y.selfDeps[0].Class != Temporal || y.selfDeps[0].Carrier.Var != "j" {
		t.Errorf("Y self deps = %v, want one temporal carried by j", y.selfDeps)
	}
	// X(j): temporal self on i (invariant), spatial self on j (stride 1).
	x := find("X", false, 0)
	if len(x.selfDeps) != 2 {
		t.Fatalf("X self deps = %v, want temporal(i) + spatial(j)", x.selfDeps)
	}
	if x.selfDeps[0].Class != Temporal || x.selfDeps[0].Carrier.Var != "i" {
		t.Errorf("X first self dep = %v, want temporal on i", x.selfDeps[0])
	}
	if x.selfDeps[1].Class != Spatial || x.selfDeps[1].Carrier.Var != "j" || x.selfDeps[1].Distance != 1 {
		t.Errorf("X second self dep = %v, want spatial stride 1 on j", x.selfDeps[1])
	}
	// A(i,j): lin = i + 100j; innermost coef 100 -> no spatial self; both
	// vars in subscript -> no temporal self.
	a := find("A", false, 0)
	if len(a.selfDeps) != 0 {
		t.Errorf("A self deps = %v, want none", a.selfDeps)
	}
	if coef, known := a.InnermostCoef(); !known || coef != 100 {
		t.Errorf("A innermost coef = %d,%v, want 100,true", coef, known)
	}
}

// TestUnattributableSpatialGroup: A(2i) and A(2i+1) never touch the same
// element (2 does not divide 1) but share lines — a spatial group edge.
func TestUnattributableSpatialGroup(t *testing.T) {
	g := mustGraph(t, `
program evens
array A(64)
do i = 0, 31
  load A(2 * i)
  load A(2 * i + 1)
end
`)
	if len(g.Deps) != 1 {
		t.Fatalf("got %d edges, want 1", len(g.Deps))
	}
	d := g.Deps[0]
	if d.Class != Spatial || d.Level != -1 || d.Distance != 1 {
		t.Errorf("edge = %v, want unattributable spatial at distance 1", d)
	}
}

// TestUnattributableFarGroup: a constant difference neither attributable
// nor within a line stays a temporal-class edge with Level -1 (the group
// still forces the paper's conservative temporal tag).
func TestUnattributableFarGroup(t *testing.T) {
	g := mustGraph(t, `
program far
array A(128)
do i = 0, 15
  load A(2 * i)
  load A(2 * i + 7)
end
`)
	if len(g.Deps) != 1 {
		t.Fatalf("got %d edges, want 1", len(g.Deps))
	}
	d := g.Deps[0]
	if d.Level != -1 || d.Class != Temporal || d.Distance != 7 {
		t.Errorf("edge = %v, want unattributable temporal at distance 7", d)
	}
	if d.Vector != nil {
		t.Errorf("unattributable edge has vector %v, want nil", d.Vector)
	}
}

// TestTripCountFeasibility: a candidate carrier whose iteration distance
// exceeds its constant trip count is rejected in favour of a feasible one.
func TestTripCountFeasibility(t *testing.T) {
	// B(j,i) vs B(j,i+1) linearised: j + 100i (+100). Both j (coef 1,
	// iterdist 100, trip 100 -> infeasible: needs >= 100) and i (coef 100,
	// iterdist 1) divide; i must win.
	g := mustGraph(t, fig5Src)
	for _, d := range g.Deps {
		if d.Src.Access.Array == "B" && d.Carrier.Var != "i" {
			t.Errorf("B carried by %s, want i", d.Carrier.Var)
		}
	}
}

// TestIndirectExcluded: indirect references join no group and carry no
// self deps — the boundary of affine analysis.
func TestIndirectExcluded(t *testing.T) {
	g := mustGraph(t, `
program spmv
array X(100)
index idx = random(0, 100, 64) seed 7
do i = 0, 63
  load idx(i)
  load X(idx[i])
  load X(idx[i])
end
`)
	var xRefs int
	for _, r := range g.Refs {
		if r.Access.Array != "X" {
			continue
		}
		xRefs++
		if !r.Indirect {
			t.Errorf("%v not marked indirect", r)
		}
		if r.Group() != nil || len(r.SelfDeps()) != 0 {
			t.Errorf("%v has group/self deps despite indirection", r)
		}
	}
	if xRefs != 2 {
		t.Fatalf("got %d X refs, want 2", xRefs)
	}
}

// TestDriverLoopsExcluded: opaque driver loops neither extend the stack
// nor carry self dependences.
func TestDriverLoopsExcluded(t *testing.T) {
	g := mustGraph(t, `
program drv
array A(16)
driver t = 0, 3
  do i = 0, 15
    load A(i)
  end
end
`)
	r := g.Refs[0]
	if r.Depth() != 1 || r.Innermost().Var != "i" {
		t.Fatalf("ref depth %d innermost %v, want 1/i", r.Depth(), r.Innermost())
	}
	for _, d := range r.SelfDeps() {
		if d.Class == Temporal {
			t.Errorf("driver loop produced a temporal self dep: %v", d)
		}
	}
}

// TestPoisonAndScope: CALL poisons every reference whose innermost
// enclosing loop has the call anywhere in its subtree — but not references
// under a *sibling* loop of the call.
func TestPoisonAndScope(t *testing.T) {
	g := mustGraph(t, `
program scope
array A(16)
array E(16)
array P(16)
do i = 0, 15
  load A(i)
  do j = 0, 15
    call helper
    load E(j)
  end
end
do k = 0, 15
  load P(k)
end
`)
	for _, r := range g.Refs {
		switch r.Access.Array {
		case "A":
			// A's innermost loop is DO i, whose subtree holds the call.
			if !r.Poisoned {
				t.Errorf("A not poisoned despite CALL under its innermost loop")
			}
		case "E":
			if !r.Poisoned {
				t.Errorf("E not poisoned despite CALL in its loop body")
			}
		case "P":
			if r.Poisoned {
				t.Errorf("P poisoned by a CALL under a sibling loop")
			}
		}
	}
}

// TestRefString covers the compact renderings used in diagnostics.
func TestRefString(t *testing.T) {
	g := mustGraph(t, fig5Src)
	b := g.RefByID(4) // load B(j, i+1)
	if b == nil {
		t.Fatal("no ref with ID 4")
	}
	if got := b.String(); !strings.Contains(got, "B(j,i+1)") {
		t.Errorf("Ref.String() = %q", got)
	}
	var edge *Dep
	for _, d := range g.Deps {
		if d.Src.Access.Array == "B" {
			edge = d
		}
	}
	if edge == nil {
		t.Fatal("no B edge")
	}
	s := edge.String()
	if !strings.Contains(s, "temporal") || !strings.Contains(s, "carried by DO i") {
		t.Errorf("Dep.String() = %q", s)
	}
}

// TestPoisonMatchesTagger pins the exact poisoning scope the tagger uses:
// the innermost enclosing loop's whole subtree.
func TestPoisonMatchesTagger(t *testing.T) {
	p := loopir.NewProgram("poison")
	p.DeclareArray("A", 8)
	inner := loopir.Do("j", loopir.C(0), loopir.C(7), &loopir.Call{Name: "f"})
	acc := loopir.Read("A", loopir.V("i"))
	p.Add(loopir.Do("i", loopir.C(0), loopir.C(7), acc, inner))
	g, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if !g.RefByID(acc.ID).Poisoned {
		t.Error("call in nested loop must poison the enclosing body")
	}
}
