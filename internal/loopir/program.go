package loopir

import (
	"fmt"
	"sort"
)

// Array declares a multi-dimensional array of fixed-size elements,
// column-major (Fortran layout): the first subscript varies fastest in
// memory.
type Array struct {
	Name string
	// Dims are the extents of each dimension, in elements.
	Dims []int
	// ElemSize is the element size in bytes (8 for double precision).
	ElemSize int
	// Base is the byte address of element (0,0,...), assigned by
	// Program.Finalize.
	Base uint64
}

// Size returns the total number of elements.
func (a *Array) Size() int {
	n := 1
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// Strides returns the element stride of each dimension (column-major).
func (a *Array) Strides() []int {
	s := make([]int, len(a.Dims))
	acc := 1
	for i, d := range a.Dims {
		s[i] = acc
		acc *= d
	}
	return s
}

// Program is a complete kernel: declarations plus a statement list.
type Program struct {
	Name   string
	Arrays map[string]*Array
	// Data holds the integer arrays backing indirect subscripts and
	// data-dependent loop bounds (CSR row pointers, neighbour lists...).
	Data map[string][]int
	Body []Stmt

	accesses  []*Access
	finalized bool
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{
		Name:   name,
		Arrays: make(map[string]*Array),
		Data:   make(map[string][]int),
	}
}

// DeclareArray registers an array of float-like elements (8 bytes each) and
// returns its name for convenience.
func (p *Program) DeclareArray(name string, dims ...int) string {
	p.Arrays[name] = &Array{Name: name, Dims: dims, ElemSize: 8}
	return name
}

// DeclareData registers an integer data array used for indirection. The
// data participates in the address stream through the accesses that load
// it; declare a matching Array with DeclareIndexArray when those loads
// should be traced.
func (p *Program) DeclareData(name string, values []int) string {
	p.Data[name] = values
	return name
}

// DeclareIndexArray registers an integer array both as data (for
// indirection) and as a traced 4-byte-element array, so references to it
// appear in the trace like the Index array of the paper's SpMV loop.
func (p *Program) DeclareIndexArray(name string, values []int) string {
	p.Data[name] = values
	p.Arrays[name] = &Array{Name: name, Dims: []int{len(values)}, ElemSize: 4}
	return name
}

// Add appends statements to the program body.
func (p *Program) Add(stmts ...Stmt) { p.Body = append(p.Body, stmts...) }

const (
	layoutBase  = 0x0010_0000 // first array base address
	layoutAlign = 64          // arrays are packed near-contiguously,
	// aligned only to the largest virtual-line-relevant boundary a real
	// Fortran COMMON block would give; page alignment would artificially
	// alias every small array onto the same cache sets.
)

// Finalize validates the program, assigns array base addresses
// (page-aligned, in sorted name order for determinism) and numbers the
// access sites. It must be called once before analysis or generation.
func (p *Program) Finalize() error {
	if p.finalized {
		return nil
	}
	names := make([]string, 0, len(p.Arrays))
	for n, a := range p.Arrays {
		if n != a.Name {
			return fmt.Errorf("loopir: array registered under %q but named %q", n, a.Name)
		}
		if len(a.Dims) == 0 {
			return fmt.Errorf("loopir: array %s has no dimensions", n)
		}
		for _, d := range a.Dims {
			if d <= 0 {
				return fmt.Errorf("loopir: array %s has non-positive dimension %d", n, d)
			}
		}
		if a.ElemSize <= 0 {
			return fmt.Errorf("loopir: array %s has non-positive element size", n)
		}
		names = append(names, n)
	}
	sort.Strings(names)
	base := uint64(layoutBase)
	for _, n := range names {
		a := p.Arrays[n]
		a.Base = base
		bytes := uint64(a.Size() * a.ElemSize)
		base += (bytes + layoutAlign - 1) / layoutAlign * layoutAlign
	}

	p.accesses = p.accesses[:0]
	if err := p.walk(p.Body, map[string]bool{}); err != nil {
		return err
	}
	for i, a := range p.accesses {
		a.ID = i + 1
	}
	p.finalized = true
	return nil
}

// walk validates statements recursively, checking that every subscript
// refers to declared arrays/data and in-scope loop variables, and collects
// the access sites in program order.
func (p *Program) walk(body []Stmt, scope map[string]bool) error {
	for _, st := range body {
		switch s := st.(type) {
		case *Loop:
			if s.Var == "" {
				return fmt.Errorf("loopir: loop with empty variable name")
			}
			if scope[s.Var] {
				return fmt.Errorf("loopir: loop variable %s shadows an enclosing loop", s.Var)
			}
			if s.Step < 0 {
				return fmt.Errorf("loopir: loop %s has negative step %d", s.Var, s.Step)
			}
			if err := p.checkSub(s.Lower, scope); err != nil {
				return fmt.Errorf("loop %s lower bound: %w", s.Var, err)
			}
			if err := p.checkSub(s.Upper, scope); err != nil {
				return fmt.Errorf("loop %s upper bound: %w", s.Var, err)
			}
			scope[s.Var] = true
			if err := p.walk(s.Body, scope); err != nil {
				return err
			}
			delete(scope, s.Var)
		case *Access:
			arr, ok := p.Arrays[s.Array]
			if !ok {
				return fmt.Errorf("loopir: access to undeclared array %s", s.Array)
			}
			if len(s.Index) != len(arr.Dims) {
				return fmt.Errorf("loopir: access to %s with %d subscripts, array has %d dims",
					s.Array, len(s.Index), len(arr.Dims))
			}
			for _, sub := range s.Index {
				if err := p.checkSub(sub, scope); err != nil {
					return fmt.Errorf("access to %s: %w", s.Array, err)
				}
			}
			p.accesses = append(p.accesses, s)
		case *Call:
			// Opaque; nothing to validate.
		case *Prefetch:
			arr, ok := p.Arrays[s.Array]
			if !ok {
				return fmt.Errorf("loopir: prefetch of undeclared array %s", s.Array)
			}
			if len(s.Index) != len(arr.Dims) {
				return fmt.Errorf("loopir: prefetch of %s with %d subscripts, array has %d dims",
					s.Array, len(s.Index), len(arr.Dims))
			}
			for _, sub := range s.Index {
				if err := p.checkSub(sub, scope); err != nil {
					return fmt.Errorf("prefetch of %s: %w", s.Array, err)
				}
			}
		default:
			return fmt.Errorf("loopir: unknown statement type %T", st)
		}
	}
	return nil
}

func (p *Program) checkSub(s Subscript, scope map[string]bool) error {
	for _, t := range s.Terms {
		if !scope[t.Var] {
			return fmt.Errorf("variable %s not in scope", t.Var)
		}
	}
	if s.Ind != nil {
		if _, ok := p.Data[s.Ind.Array]; !ok {
			return fmt.Errorf("indirect through undeclared data array %s", s.Ind.Array)
		}
		if s.Ind.Sub.Ind != nil {
			return fmt.Errorf("nested indirection is not supported")
		}
		return p.checkSub(s.Ind.Sub, scope)
	}
	return nil
}

// Accesses returns the access sites in program order. Finalize must have
// succeeded.
func (p *Program) Accesses() []*Access {
	if !p.finalized {
		panic("loopir: Accesses before Finalize")
	}
	return p.accesses
}

// LinearSubscript returns the linearised (element-index) subscript of the
// access: Σ dims Index[d] * stride[d]. Indirect components are preserved on
// their scaled dimension; at most one dimension may be indirect.
func (p *Program) LinearSubscript(a *Access) (Subscript, error) {
	arr := p.Arrays[a.Array]
	if arr == nil {
		return Subscript{}, fmt.Errorf("loopir: unknown array %s", a.Array)
	}
	strides := arr.Strides()
	lin := Subscript{}
	for d, sub := range a.Index {
		scaled := scaleSub(sub, strides[d])
		if scaled.Ind != nil && lin.Ind != nil {
			return Subscript{}, fmt.Errorf("loopir: access to %s has two indirect dimensions", a.Array)
		}
		lin = Sum(lin, scaled)
	}
	return lin, nil
}

func scaleSub(s Subscript, k int) Subscript {
	out := Subscript{Const: s.Const * k}
	for _, t := range s.Terms {
		out.Terms = append(out.Terms, Term{Var: t.Var, Coef: t.Coef * k})
	}
	if s.Ind != nil {
		// The indirect component is kept unscaled: the generator applies
		// dimension strides itself, and for analysis any indirection
		// already disables tagging, so only its presence matters here.
		ind := *s.Ind
		out.Ind = &ind
	}
	return out
}
