package loopir

import "fmt"

// Tags are the software hints a load/store instruction carries. The paper's
// base design uses two 1-bit hints (temporal, spatial); the §3.2 extension
// ("allowing virtual lines of different lengths") adds a 2-bit length hint,
// carried here as VirtualBytes.
type Tags struct {
	Temporal bool
	Spatial  bool
	// VirtualBytes is the desired virtual-line length in bytes for this
	// reference (0 = the design's default length). Only meaningful when
	// Spatial is set and the cache enables variable-length virtual lines.
	VirtualBytes int
}

// Pos is a source position (1-based line and column) in the DSL file a
// statement was parsed from. The zero Pos means "unknown" — programs built
// directly in Go carry no positions. Positions are metadata only: they
// never influence analysis, generation or printing (Print round-trips
// programs with and without them identically); diagnostics (package vet)
// use them to point findings at real source locations.
type Pos struct {
	Line, Col int
}

// IsValid reports whether the position refers to a real source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Stmt is a statement of a loop-nest program: Loop, Access or Call.
type Stmt interface{ isStmt() }

// Loop is a Fortran-style DO loop: Var runs from Lower to Upper inclusive
// with the given positive Step (0 means 1). Bounds may depend on enclosing
// loop variables, parameters and integer data arrays (e.g. CSR row
// pointers).
type Loop struct {
	Var   string
	Lower Subscript
	Upper Subscript
	Step  int
	Body  []Stmt
	// Opaque marks a driver loop the per-subroutine locality analysis
	// cannot see — typically the timestep loop in the caller of the
	// instrumented subroutine. The trace generator executes it normally,
	// but the analyser excludes it from the enclosing-loop stack, so it
	// never contributes self-dependence (temporal) reuse or an innermost
	// stride. This mirrors the paper's setting: instrumentation and
	// analysis are per source subroutine, while real reuse across driver
	// iterations still happens at run time.
	Opaque bool
	// Pos is the source position of the DO keyword, when parsed from DSL.
	Pos Pos
}

func (*Loop) isStmt() {}

// Access is one static array reference site (one load or store
// instruction). Index holds one subscript per array dimension, column-major
// as in Fortran: A(I,J) has Index[0] for I.
type Access struct {
	Array string
	Index []Subscript
	Write bool
	// Force overrides the locality analysis for this reference (the §4.1
	// user directives for sparse codes). Nil means "derive".
	Force *Tags
	// ID is the static reference-site identifier, assigned by
	// Program.Finalize; it becomes trace.Record.RefID.
	ID int
	// Pos is the source position of the load/store keyword, when parsed
	// from DSL.
	Pos Pos
}

func (*Access) isStmt() {}

// Call is an opaque subroutine call. Per the paper (§2.3, no
// interprocedural analysis), a CALL poisons its enclosing loop body: every
// reference whose innermost enclosing loop contains a call anywhere in its
// subtree loses its tags.
type Call struct {
	Name string
	// Pos is the source position of the CALL keyword, when parsed from DSL.
	Pos Pos
}

func (*Call) isStmt() {}

// Prefetch is an explicit software-prefetch instruction (§4.4 extension):
// it names a future element of an array. The generator emits a
// SoftwarePrefetch trace record for it; out-of-bounds addresses are
// silently dropped, as real non-faulting prefetch instructions are.
// Prefetch statements are invisible to the locality analysis.
type Prefetch struct {
	Array string
	Index []Subscript
	// Pos is the source position of the prefetch keyword, when parsed
	// from DSL.
	Pos Pos
}

func (*Prefetch) isStmt() {}

// PrefetchOf builds a prefetch statement.
func PrefetchOf(array string, index ...Subscript) *Prefetch {
	return &Prefetch{Array: array, Index: index}
}

// Read builds a read access.
func Read(array string, index ...Subscript) *Access {
	return &Access{Array: array, Index: index}
}

// Store builds a write access.
func Store(array string, index ...Subscript) *Access {
	return &Access{Array: array, Index: index, Write: true}
}

// WithTags attaches a user directive to the access and returns it.
func (a *Access) WithTags(temporal, spatial bool) *Access {
	a.Force = &Tags{Temporal: temporal, Spatial: spatial}
	return a
}

// Do builds a loop running lo..hi inclusive with step 1.
func Do(v string, lo, hi Subscript, body ...Stmt) *Loop {
	return &Loop{Var: v, Lower: lo, Upper: hi, Step: 1, Body: body}
}

// DoStep builds a loop with an explicit step.
func DoStep(v string, lo, hi Subscript, step int, body ...Stmt) *Loop {
	return &Loop{Var: v, Lower: lo, Upper: hi, Step: step, Body: body}
}

// Driver builds an opaque driver loop (see Loop.Opaque): executed by the
// generator, invisible to the locality analysis.
func Driver(v string, lo, hi Subscript, body ...Stmt) *Loop {
	return &Loop{Var: v, Lower: lo, Upper: hi, Step: 1, Body: body, Opaque: true}
}
