package loopir

import (
	"strings"
	"testing"
)

func TestSubscriptAlgebra(t *testing.T) {
	s := Sum(V("i"), SV(3, "j")) // i + 3j
	s = Plus(s, 5)
	if s.Coef("i") != 1 || s.Coef("j") != 3 || s.Const != 5 {
		t.Fatalf("subscript = %+v", s)
	}
	if s.Coef("k") != 0 {
		t.Fatal("absent variable must have coefficient 0")
	}
	if !s.Uses("i") || s.Uses("k") {
		t.Fatal("Uses broken")
	}
	// Term cancellation.
	z := Sum(V("i"), SV(-1, "i"))
	if z.Coef("i") != 0 || len(z.normTerms()) != 0 {
		t.Fatalf("cancellation broken: %+v", z)
	}
}

func TestSumRejectsDoubleIndirect(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sum of two indirect subscripts should panic")
		}
	}()
	Sum(Load("A", V("i")), Load("B", V("j")))
}

func TestIndirectUses(t *testing.T) {
	s := Load("Idx", V("j"))
	if !s.Uses("j") || !s.HasIndirect() {
		t.Fatal("indirect Uses broken")
	}
	if s.Coef("j") != 0 {
		t.Fatal("indirect component must not contribute affine coefficients")
	}
}

func TestSameShape(t *testing.T) {
	a := Sum(V("j"), SV(100, "i"))          // j + 100i
	b := Plus(Sum(V("j"), SV(100, "i")), 7) // j + 100i + 7
	c := Sum(V("j"), SV(99, "i"))
	if !SameShape(a, b) {
		t.Fatal("a and b are uniformly generated")
	}
	if SameShape(a, c) {
		t.Fatal("different coefficients are not uniformly generated")
	}
	if SameShape(a, Load("X", V("i"))) {
		t.Fatal("indirect subscripts are never uniformly generated")
	}
}

func TestSubscriptString(t *testing.T) {
	s := Plus(Sum(V("i"), SV(-1, "k")), 2)
	str := s.String()
	for _, want := range []string{"i", "-k", "2"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
	if C(0).String() != "0" {
		t.Fatalf("C(0).String() = %q", C(0).String())
	}
}

func simpleProgram() *Program {
	p := NewProgram("t")
	p.DeclareArray("A", 10, 10)
	p.DeclareArray("X", 10)
	p.Add(
		Do("i", C(0), C(9),
			Do("j", C(0), C(9),
				Read("A", V("j"), V("i")),
				Read("X", V("j")),
			),
			Store("X", V("i")),
		),
	)
	return p
}

func TestFinalizeAssignsIDsAndBases(t *testing.T) {
	p := simpleProgram()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	accs := p.Accesses()
	if len(accs) != 3 {
		t.Fatalf("accesses = %d", len(accs))
	}
	for i, a := range accs {
		if a.ID != i+1 {
			t.Fatalf("access %d has ID %d", i, a.ID)
		}
	}
	// Arrays must not overlap and must be deterministic.
	a, x := p.Arrays["A"], p.Arrays["X"]
	if a.Base == 0 || x.Base == 0 {
		t.Fatal("bases unassigned")
	}
	aEnd := a.Base + uint64(a.Size()*a.ElemSize)
	if x.Base < aEnd && a.Base < x.Base+uint64(x.Size()*x.ElemSize) {
		t.Fatal("arrays overlap")
	}
	p2 := simpleProgram()
	if err := p2.Finalize(); err != nil {
		t.Fatal(err)
	}
	if p2.Arrays["A"].Base != a.Base || p2.Arrays["X"].Base != x.Base {
		t.Fatal("layout must be deterministic")
	}
	// Finalize is idempotent.
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	build := func(f func(*Program)) error {
		p := NewProgram("bad")
		p.DeclareArray("A", 4)
		f(p)
		return p.Finalize()
	}
	cases := []struct {
		name string
		f    func(*Program)
	}{
		{"undeclared array", func(p *Program) { p.Add(Read("B", C(0))) }},
		{"dim mismatch", func(p *Program) { p.Add(Read("A", C(0), C(0))) }},
		{"out-of-scope var", func(p *Program) { p.Add(Read("A", V("i"))) }},
		{"shadowed loop var", func(p *Program) {
			p.Add(Do("i", C(0), C(1), Do("i", C(0), C(1), Read("A", V("i")))))
		}},
		{"empty loop var", func(p *Program) { p.Add(Do("", C(0), C(1))) }},
		{"negative step", func(p *Program) { p.Add(DoStep("i", C(0), C(1), -1)) }},
		{"bad bound var", func(p *Program) { p.Add(Do("i", V("zzz"), C(1))) }},
		{"undeclared data array", func(p *Program) { p.Add(Do("i", C(0), C(1), Read("A", Load("D", V("i"))))) }},
		{"nested indirection", func(p *Program) {
			p.DeclareData("D", []int{0, 1})
			p.Add(Do("i", C(0), C(1), Read("A", Load("D", Load("D", V("i"))))))
		}},
		{"zero dimension", func(p *Program) { p.DeclareArray("Z", 0) }},
	}
	for _, tc := range cases {
		if err := build(tc.f); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

func TestStrides(t *testing.T) {
	a := &Array{Name: "A", Dims: []int{3, 4, 5}, ElemSize: 8}
	s := a.Strides()
	if s[0] != 1 || s[1] != 3 || s[2] != 12 {
		t.Fatalf("strides = %v", s)
	}
	if a.Size() != 60 {
		t.Fatalf("size = %d", a.Size())
	}
}

func TestLinearSubscript(t *testing.T) {
	p := NewProgram("lin")
	p.DeclareArray("A", 10, 20)
	acc := Read("A", V("i"), Plus(V("j"), 2)) // A(i, j+2) -> i + 10j + 20
	p.Add(Do("i", C(0), C(9), Do("j", C(0), C(9), acc)))
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	lin, err := p.LinearSubscript(acc)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Coef("i") != 1 || lin.Coef("j") != 10 || lin.Const != 20 {
		t.Fatalf("linearised = %+v", lin)
	}
}

func TestLinearSubscriptDoubleIndirect(t *testing.T) {
	p := NewProgram("lin2")
	p.DeclareArray("A", 10, 10)
	p.DeclareData("D", []int{0, 1})
	acc := Read("A", Load("D", V("i")), Load("D", V("i")))
	p.Add(Do("i", C(0), C(1), acc))
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.LinearSubscript(acc); err == nil {
		t.Fatal("two indirect dimensions should be rejected")
	}
}

func TestPrinter(t *testing.T) {
	p := simpleProgram()
	p.Add(&Call{Name: "foo"})
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	out := p.String()
	for _, want := range []string{"PROGRAM t", "DO i = 0, 9", "load  A(j,i)", "store X(i)", "CALL foo", "ENDDO"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printer output missing %q:\n%s", want, out)
		}
	}
	tagged := p.StringTagged(map[int]Tags{1: {Temporal: true}})
	if !strings.Contains(tagged, "temporal=1 spatial=0") {
		t.Fatalf("tagged printer missing tags:\n%s", tagged)
	}
}

func TestWithTagsAndDriver(t *testing.T) {
	a := Read("A", C(0)).WithTags(true, false)
	if a.Force == nil || !a.Force.Temporal || a.Force.Spatial {
		t.Fatalf("WithTags = %+v", a.Force)
	}
	d := Driver("t", C(0), C(3))
	if !d.Opaque || d.Step != 1 {
		t.Fatalf("Driver = %+v", d)
	}
}

func TestDeclareIndexArray(t *testing.T) {
	p := NewProgram("idx")
	p.DeclareIndexArray("I", []int{3, 1, 2})
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	arr := p.Arrays["I"]
	if arr.ElemSize != 4 || arr.Dims[0] != 3 {
		t.Fatalf("index array = %+v", arr)
	}
	if len(p.Data["I"]) != 3 {
		t.Fatal("data not registered")
	}
}
