// Package loopir defines a small loop-nest intermediate representation for
// Fortran-style numerical kernels: perfectly or imperfectly nested DO loops
// whose bodies reference multi-dimensional arrays through affine (or
// indirect) subscripts, plus opaque CALL statements.
//
// It plays the role of the source programs the paper instrumented with
// Sage++ (§3.1): the locality analyser (package locality) derives the
// temporal/spatial tags from the subscript structure exactly as the paper's
// §2.3 rules prescribe, and the trace generator (package tracegen) executes
// the nest to produce the tagged reference trace.
package loopir

import (
	"fmt"
	"sort"
	"strings"
)

// Term is one affine component Coef*Var of a subscript.
type Term struct {
	Var  string
	Coef int
}

// Indirect is a subscript component whose value is loaded from an integer
// data array: Data[Sub]. Indirect subscripts model sparse codes
// (X(Index(j2)) in the paper's §4.1 SpMV loop); their locality cannot be
// analysed, only asserted through user directives.
type Indirect struct {
	// Array names an integer data array registered in Program.Data.
	Array string
	// Sub indexes that array; it must itself be affine (no nested
	// indirection).
	Sub Subscript
}

// Subscript is an integer expression Const + Σ Coef_i*Var_i [+ Data[Sub]].
// The zero value is the constant 0.
type Subscript struct {
	Terms []Term
	Const int
	Ind   *Indirect
}

// V returns the subscript consisting of the single variable v.
func V(v string) Subscript { return Subscript{Terms: []Term{{Var: v, Coef: 1}}} }

// C returns the constant subscript k.
func C(k int) Subscript { return Subscript{Const: k} }

// SV returns the scaled-variable subscript coef*v.
func SV(coef int, v string) Subscript { return Subscript{Terms: []Term{{Var: v, Coef: coef}}} }

// Plus returns s + k.
func Plus(s Subscript, k int) Subscript {
	out := s.clone()
	out.Const += k
	return out
}

// Sum returns a + b. At most one operand may carry an indirect component.
func Sum(a, b Subscript) Subscript {
	if a.Ind != nil && b.Ind != nil {
		panic("loopir: Sum of two indirect subscripts")
	}
	out := a.clone()
	out.Const += b.Const
	for _, t := range b.Terms {
		out = out.addTerm(t)
	}
	if b.Ind != nil {
		ind := *b.Ind
		out.Ind = &ind
	}
	return out
}

// Load returns the indirect subscript data[sub].
func Load(array string, sub Subscript) Subscript {
	return Subscript{Ind: &Indirect{Array: array, Sub: sub}}
}

func (s Subscript) clone() Subscript {
	out := Subscript{Const: s.Const}
	out.Terms = append([]Term(nil), s.Terms...)
	if s.Ind != nil {
		ind := *s.Ind
		out.Ind = &ind
	}
	return out
}

func (s Subscript) addTerm(t Term) Subscript {
	if t.Coef == 0 {
		return s
	}
	for i := range s.Terms {
		if s.Terms[i].Var == t.Var {
			s.Terms[i].Coef += t.Coef
			if s.Terms[i].Coef == 0 {
				s.Terms = append(s.Terms[:i], s.Terms[i+1:]...)
			}
			return s
		}
	}
	s.Terms = append(s.Terms, t)
	return s
}

// Coef returns the coefficient of variable v (0 if absent from the affine
// part).
func (s Subscript) Coef(v string) int {
	for _, t := range s.Terms {
		if t.Var == v {
			return t.Coef
		}
	}
	return 0
}

// Uses reports whether v appears anywhere in the subscript, including
// inside an indirect index.
func (s Subscript) Uses(v string) bool {
	if s.Coef(v) != 0 {
		return true
	}
	if s.Ind != nil {
		return s.Ind.Sub.Uses(v)
	}
	return false
}

// HasIndirect reports whether the subscript contains an indirect component.
func (s Subscript) HasIndirect() bool { return s.Ind != nil }

// normTerms returns the terms sorted by variable name with zero coefficients
// dropped; used to compare subscripts for uniform generation.
func (s Subscript) normTerms() []Term {
	out := make([]Term, 0, len(s.Terms))
	for _, t := range s.Terms {
		if t.Coef != 0 {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Var < out[j].Var })
	return out
}

// SameShape reports whether a and b have identical affine terms (and no
// indirection), i.e. they differ at most by a constant. Two references with
// SameShape linearised subscripts are "uniformly generated" in the paper's
// terminology.
func SameShape(a, b Subscript) bool {
	if a.Ind != nil || b.Ind != nil {
		return false
	}
	ta, tb := a.normTerms(), b.normTerms()
	if len(ta) != len(tb) {
		return false
	}
	for i := range ta {
		if ta[i] != tb[i] {
			return false
		}
	}
	return true
}

func (s Subscript) String() string {
	var parts []string
	for _, t := range s.normTerms() {
		switch t.Coef {
		case 1:
			parts = append(parts, t.Var)
		case -1:
			parts = append(parts, "-"+t.Var)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", t.Coef, t.Var))
		}
	}
	if s.Ind != nil {
		parts = append(parts, fmt.Sprintf("%s[%s]", s.Ind.Array, s.Ind.Sub))
	}
	if s.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", s.Const))
	}
	return strings.Join(parts, "+")
}
