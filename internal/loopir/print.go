package loopir

import (
	"fmt"
	"strings"
)

// String renders the program in Fortran-flavoured pseudo-code, with the
// resolved tags of each access when a tagging map is supplied through
// StringTagged. It is used by examples and documentation.
func (p *Program) String() string { return p.StringTagged(nil) }

// StringTagged renders the program; tags, when non-nil, maps access IDs to
// their resolved locality tags, which are shown as trailing comments in the
// style of the paper's fig. 5 trace calls.
func (p *Program) StringTagged(tags map[int]Tags) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM %s\n", p.Name)
	printBody(&b, p.Body, 1, tags)
	return b.String()
}

func printBody(b *strings.Builder, body []Stmt, depth int, tags map[int]Tags) {
	indent := strings.Repeat("  ", depth)
	for _, st := range body {
		switch s := st.(type) {
		case *Loop:
			fmt.Fprintf(b, "%sDO %s = %s, %s", indent, s.Var, s.Lower, s.Upper)
			if s.Step > 1 {
				fmt.Fprintf(b, ", %d", s.Step)
			}
			b.WriteByte('\n')
			printBody(b, s.Body, depth+1, tags)
			fmt.Fprintf(b, "%sENDDO\n", indent)
		case *Access:
			op := "load "
			if s.Write {
				op = "store"
			}
			subs := make([]string, len(s.Index))
			for i, sub := range s.Index {
				subs[i] = sub.String()
			}
			fmt.Fprintf(b, "%s%s %s(%s)", indent, op, s.Array, strings.Join(subs, ","))
			if tags != nil {
				t := tags[s.ID]
				fmt.Fprintf(b, "  ! temporal=%d spatial=%d", b2i(t.Temporal), b2i(t.Spatial))
			} else if s.Force != nil {
				fmt.Fprintf(b, "  ! directive: temporal=%d spatial=%d",
					b2i(s.Force.Temporal), b2i(s.Force.Spatial))
			}
			b.WriteByte('\n')
		case *Call:
			fmt.Fprintf(b, "%sCALL %s\n", indent, s.Name)
		case *Prefetch:
			subs := make([]string, len(s.Index))
			for i, sub := range s.Index {
				subs[i] = sub.String()
			}
			fmt.Fprintf(b, "%sprefetch %s(%s)\n", indent, s.Array, strings.Join(subs, ","))
		}
	}
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
