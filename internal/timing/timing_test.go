package timing

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds look identical (%d collisions)", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must still produce a usable stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := 20
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGapModelValidation(t *testing.T) {
	cases := []struct {
		name    string
		buckets []GapBucket
	}{
		{"empty", nil},
		{"zero cycles", []GapBucket{{Cycles: 0, Weight: 1}}},
		{"zero weight", []GapBucket{{Cycles: 1, Weight: 0}}},
		{"negative weight", []GapBucket{{Cycles: 1, Weight: -1}}},
		{"non-increasing", []GapBucket{{Cycles: 2, Weight: 1}, {Cycles: 2, Weight: 1}}},
	}
	for _, tc := range cases {
		if _, err := NewGapModel(tc.buckets); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
	if _, err := NewGapModel(PaperGapBuckets); err != nil {
		t.Fatalf("paper buckets rejected: %v", err)
	}
}

func TestGapModelSampling(t *testing.T) {
	m := PaperGapModel()
	rng := NewRNG(1)
	counts := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		g := m.Sample(rng)
		if g < 1 || g > m.MaxCycles() {
			t.Fatalf("sample %d out of range", g)
		}
		counts[g]++
	}
	// The mode must be 2 cycles, as in fig. 4b.
	for g, c := range counts {
		if g != 2 && c > counts[2] {
			t.Fatalf("mode is %d, want 2", g)
		}
	}
	// Empirical mean close to the analytic mean.
	sum := 0
	for g, c := range counts {
		sum += g * c
	}
	emp := float64(sum) / n
	if d := emp - m.Mean(); d > 0.05 || d < -0.05 {
		t.Fatalf("empirical mean %.3f vs analytic %.3f", emp, m.Mean())
	}
}

func TestGapModelConstant(t *testing.T) {
	m := Constant(3)
	rng := NewRNG(5)
	for i := 0; i < 100; i++ {
		if m.Sample(rng) != 3 {
			t.Fatal("Constant(3) must always sample 3")
		}
	}
	if m.Mean() != 3 {
		t.Fatalf("Mean = %v", m.Mean())
	}
}

func TestGapModelMeanMatchesPaperBallpark(t *testing.T) {
	// The fig. 4b distribution has most mass at 1-5 cycles; the mean must
	// land in a plausible 2.5-5 cycle window.
	m := PaperGapModel()
	if mean := m.Mean(); mean < 2.5 || mean > 5 {
		t.Fatalf("paper gap mean %.2f outside plausible window", mean)
	}
}
