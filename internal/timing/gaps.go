package timing

import "fmt"

// GapBucket is one entry of a discrete inter-reference time distribution:
// gaps of Cycles cycles occur with probability Weight (weights are
// normalised internally, so any positive scale works).
type GapBucket struct {
	Cycles int
	Weight float64
}

// GapModel samples inter-reference time gaps from a fixed discrete
// distribution. It implements the paper's scheme: a pessimistic 1
// cycle/instruction model summarised by the fig. 4b histogram.
type GapModel struct {
	cycles []int
	cum    []float64 // cumulative, normalised to 1.0
	// lut[k] is the first bucket index whose cumulative probability
	// exceeds k/256 — a starting point that makes Sample O(1) in practice
	// instead of a binary search per reference.
	lut [256]int
}

// PaperGapBuckets is the distribution read off figure 4b of the paper:
// the x axis buckets are 1, 2, 3, 4, 5, 10, 15, 20 and ">20" cycles, and the
// fractions of load/store instructions (y axis) are approximately the values
// below. Buckets between the labelled points (6..9, 11..14, 16..19) carry
// the residual mass of their neighbourhood; ">20" is represented as 25.
var PaperGapBuckets = []GapBucket{
	{Cycles: 1, Weight: 0.17},
	{Cycles: 2, Weight: 0.31},
	{Cycles: 3, Weight: 0.16},
	{Cycles: 4, Weight: 0.10},
	{Cycles: 5, Weight: 0.07},
	{Cycles: 6, Weight: 0.035},
	{Cycles: 7, Weight: 0.025},
	{Cycles: 8, Weight: 0.02},
	{Cycles: 9, Weight: 0.015},
	{Cycles: 10, Weight: 0.025},
	{Cycles: 12, Weight: 0.015},
	{Cycles: 15, Weight: 0.015},
	{Cycles: 18, Weight: 0.01},
	{Cycles: 20, Weight: 0.01},
	{Cycles: 25, Weight: 0.01},
}

// NewGapModel builds a sampler from the given buckets. It returns an error
// if the buckets are empty, contain non-positive cycles or non-positive
// weights, or are not strictly increasing in cycles.
func NewGapModel(buckets []GapBucket) (*GapModel, error) {
	if len(buckets) == 0 {
		return nil, fmt.Errorf("timing: empty gap distribution")
	}
	total := 0.0
	for i, b := range buckets {
		if b.Cycles <= 0 {
			return nil, fmt.Errorf("timing: bucket %d has non-positive cycles %d", i, b.Cycles)
		}
		if b.Weight <= 0 {
			return nil, fmt.Errorf("timing: bucket %d has non-positive weight %g", i, b.Weight)
		}
		if i > 0 && buckets[i-1].Cycles >= b.Cycles {
			return nil, fmt.Errorf("timing: bucket cycles must be strictly increasing")
		}
		total += b.Weight
	}
	m := &GapModel{
		cycles: make([]int, len(buckets)),
		cum:    make([]float64, len(buckets)),
	}
	acc := 0.0
	for i, b := range buckets {
		m.cycles[i] = b.Cycles
		acc += b.Weight / total
		m.cum[i] = acc
	}
	m.cum[len(m.cum)-1] = 1.0 // guard against FP drift
	for k := range m.lut {
		u := float64(k) / 256
		i := 0
		for i < len(m.cum)-1 && m.cum[i] <= u {
			i++
		}
		m.lut[k] = i
	}
	return m, nil
}

// PaperGapModel returns the fig. 4b distribution; it panics only if the
// built-in table is malformed, which is covered by tests.
func PaperGapModel() *GapModel {
	m, err := NewGapModel(PaperGapBuckets)
	if err != nil {
		panic(err)
	}
	return m
}

// Sample draws one gap (in cycles, >= 1).
func (m *GapModel) Sample(rng *RNG) int {
	u := rng.Float64()
	i := m.lut[int(u*256)]
	for i < len(m.cum)-1 && m.cum[i] < u {
		i++
	}
	return m.cycles[i]
}

// Mean returns the expected gap in cycles.
func (m *GapModel) Mean() float64 {
	mean := 0.0
	prev := 0.0
	for i, c := range m.cycles {
		p := m.cum[i] - prev
		prev = m.cum[i]
		mean += p * float64(c)
	}
	return mean
}

// MaxCycles returns the largest gap the model can produce.
func (m *GapModel) MaxCycles() int { return m.cycles[len(m.cycles)-1] }

// Constant returns a degenerate model that always produces gap cycles.
// Useful in tests and for issue-rate sensitivity studies.
func Constant(cycles int) *GapModel {
	m, err := NewGapModel([]GapBucket{{Cycles: cycles, Weight: 1}})
	if err != nil {
		panic(err)
	}
	return m
}
