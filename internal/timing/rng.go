// Package timing provides the deterministic random-number source and the
// inter-reference time model used when generating traces.
//
// The paper measured the distribution of the number of cycles between
// consecutive load/store instructions with Spa (fig. 4b) and then, during
// source-level trace extraction, drew each entry's time gap from that
// distribution. The gap is stored in the trace entry so that repeated
// simulations of the same trace are identical. This package reproduces that
// scheme with a fixed, documented distribution and a seedable deterministic
// generator (no dependence on math/rand so results never change across Go
// releases).
package timing

// RNG is a xorshift64* pseudo-random generator. It is deliberately tiny,
// fast and fully deterministic for a given seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is replaced by a
// fixed non-zero constant because the xorshift state must never be zero.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("timing: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
