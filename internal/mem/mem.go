// Package mem models the memory side of the hierarchy: a fixed-latency
// pipelined main memory behind a bus of finite width, and a write buffer
// that absorbs dirty victims.
//
// The model matches the paper's accounting (§2.1): fetching n physical lines
// of LS bytes costs t_lat + n*LS/w_b cycles, i.e. the latency is paid once
// and the bus then streams the lines back-to-back. Dirty-victim transfers to
// the write buffer cost 2 cycles each and proceed while the miss request is
// outstanding; only the portion that does not fit under the latency extends
// the stall.
package mem

import "fmt"

// Config describes the memory system.
type Config struct {
	// LatencyCycles is the time between issuing a miss request and the
	// arrival of the first line (t_lat). The paper's default is 20.
	LatencyCycles int
	// BusBytesPerCycle is the memory bus bandwidth (w_b). The paper uses
	// 16 bytes/cycle.
	BusBytesPerCycle int
	// WriteBufferEntries is the capacity of the write buffer; the paper
	// assumes a small buffer and aborts bounce-backs onto dirty lines when
	// it is full. 0 means "no write buffer": every dirty victim stalls.
	WriteBufferEntries int
	// VictimTransferCycles is the cost of moving one dirty line to the
	// write buffer (2 cycles in the paper's design).
	VictimTransferCycles int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LatencyCycles < 0 {
		return fmt.Errorf("mem: negative latency %d", c.LatencyCycles)
	}
	if c.BusBytesPerCycle <= 0 {
		return fmt.Errorf("mem: bus bandwidth must be positive, got %d", c.BusBytesPerCycle)
	}
	if c.WriteBufferEntries < 0 {
		return fmt.Errorf("mem: negative write buffer size %d", c.WriteBufferEntries)
	}
	if c.VictimTransferCycles < 0 {
		return fmt.Errorf("mem: negative victim transfer cost %d", c.VictimTransferCycles)
	}
	return nil
}

// DefaultConfig returns the paper's memory parameters.
func DefaultConfig() Config {
	return Config{
		LatencyCycles:        20,
		BusBytesPerCycle:     16,
		WriteBufferEntries:   8,
		VictimTransferCycles: 2,
	}
}

// Stats accumulates memory-side counters.
type Stats struct {
	// BytesFetched is the total number of bytes read from memory.
	BytesFetched uint64
	// LinesFetched is the number of physical lines read from memory.
	LinesFetched uint64
	// Requests is the number of distinct miss requests (a virtual-line
	// fill is one request even when it fetches several lines).
	Requests uint64
	// Writebacks is the number of dirty lines sent to the write buffer.
	Writebacks uint64
	// WritebackStallCycles is the added stall when victim transfers did
	// not fit under the miss latency.
	WritebackStallCycles uint64
	// WriteBufferFullAborts counts operations (bounce-backs onto dirty
	// lines) abandoned because the write buffer was full.
	WriteBufferFullAborts uint64
	// BytesWritten counts write-through traffic posted to memory.
	BytesWritten uint64
	// WriteThroughStalls counts stores that found the write buffer full
	// and had to wait for it to drain.
	WriteThroughStalls uint64
}

// System is the memory + bus + write buffer model. It is not a data store:
// the simulator is trace-driven and only timing and traffic are modelled.
type System struct {
	cfg Config
	// pending is the current write-buffer occupancy. The buffer drains
	// one entry per miss request that reaches memory (a coarse but
	// adequate drain model: the bus is otherwise idle between misses) and,
	// for write-through posting, by elapsed bus time (see PostWrite).
	pending   int
	lastDrain uint64 // cycle of the last time-based drain
	stats     Stats
}

// NewSystem builds a memory system; the configuration must be valid.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{cfg: cfg}, nil
}

// ResetStats clears the accumulated counters; write-buffer occupancy and
// drain state are preserved (they are machine state, not statistics).
func (s *System) ResetStats() { s.stats = Stats{} }

// Config returns the configuration the system was built with.
func (s *System) Config() Config { return s.cfg }

// Stats returns a copy of the accumulated counters.
func (s *System) Stats() Stats { return s.stats }

// TransferCycles returns the bus time for n bytes, rounding up to whole
// cycles.
func (s *System) TransferCycles(bytes int) int {
	if bytes <= 0 {
		return 0
	}
	return (bytes + s.cfg.BusBytesPerCycle - 1) / s.cfg.BusBytesPerCycle
}

// Fetch models a miss request that reads the given physical lines from
// memory while sending dirtyVictims lines to the write buffer. lineBytes is
// the physical line size; lines is the number of lines actually fetched
// (after coherence checks); extraBytes covers odd-sized transfers such as a
// single bypassed word. It returns the miss penalty in cycles (excluding
// the 1-cycle cache probe that discovered the miss).
func (s *System) Fetch(lines, lineBytes, extraBytes, dirtyVictims int) int {
	s.stats.Requests++
	bytes := lines*lineBytes + extraBytes
	s.stats.BytesFetched += uint64(bytes)
	s.stats.LinesFetched += uint64(lines)

	penalty := s.cfg.LatencyCycles + s.TransferCycles(bytes)

	// Victim transfers proceed while the request is outstanding; only the
	// excess beyond the latency window extends the stall (paper §2.1).
	if dirtyVictims > 0 {
		s.stats.Writebacks += uint64(dirtyVictims)
		transfer := dirtyVictims * s.cfg.VictimTransferCycles
		if transfer > s.cfg.LatencyCycles {
			extra := transfer - s.cfg.LatencyCycles
			penalty += extra
			s.stats.WritebackStallCycles += uint64(extra)
		}
		s.bufferPut(dirtyVictims)
	}

	// Each request gives the write buffer a chance to drain.
	if s.pending > 0 {
		s.pending--
	}
	return penalty
}

// PrefetchFetch accounts for lines fetched by the prefetch engine. The
// processor does not wait for them (they ride the idle bus behind a miss or
// a swap), so no penalty is returned, but the traffic is real and shows up
// in fig. 7a-style measurements.
func (s *System) PrefetchFetch(lines, lineBytes int) {
	s.stats.BytesFetched += uint64(lines * lineBytes)
	s.stats.LinesFetched += uint64(lines)
}

// PostWrite records a write-through store of the given size at cycle now.
// The write buffer drains one entry per VictimTransferCycles of elapsed
// time (the bus is free between misses); a store finding it full waits one
// transfer for a slot and that stall is returned in cycles.
func (s *System) PostWrite(bytes int, now uint64) int {
	s.stats.BytesWritten += uint64(bytes)
	// Time-based drain.
	if s.cfg.VictimTransferCycles > 0 && now > s.lastDrain {
		drained := int(now-s.lastDrain) / s.cfg.VictimTransferCycles
		if drained > 0 {
			s.pending -= drained
			if s.pending < 0 {
				s.pending = 0
			}
			s.lastDrain = now
		}
	}
	s.stats.Writebacks++
	if s.cfg.WriteBufferEntries == 0 || s.pending >= s.cfg.WriteBufferEntries {
		s.stats.WriteThroughStalls++
		return s.cfg.VictimTransferCycles
	}
	s.pending++
	return 0
}

// WritebackOutsideMiss records a dirty line sent to the write buffer outside
// a miss window (e.g. a bounce-back evicting a dirty main-cache line). It
// returns false if the write buffer is full, in which case the caller must
// abort the operation (paper §2.2: "the transfer is aborted if the write
// buffer is full").
func (s *System) WritebackOutsideMiss() bool {
	if s.cfg.WriteBufferEntries == 0 || s.pending >= s.cfg.WriteBufferEntries {
		s.stats.WriteBufferFullAborts++
		return false
	}
	s.pending++
	s.stats.Writebacks++
	return true
}

// WriteBufferOccupancy returns the current number of buffered writebacks.
func (s *System) WriteBufferOccupancy() int { return s.pending }

func (s *System) bufferPut(n int) {
	s.pending += n
	if s.cfg.WriteBufferEntries > 0 && s.pending > s.cfg.WriteBufferEntries {
		// Overflow during a miss is already accounted for by the stall
		// model; clamp occupancy to capacity.
		s.pending = s.cfg.WriteBufferEntries
	}
}
