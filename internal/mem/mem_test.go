package mem

import "testing"

func validConfig() Config {
	return Config{
		LatencyCycles:        20,
		BusBytesPerCycle:     16,
		WriteBufferEntries:   2,
		VictimTransferCycles: 2,
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative latency", func(c *Config) { c.LatencyCycles = -1 }},
		{"zero bus", func(c *Config) { c.BusBytesPerCycle = 0 }},
		{"negative write buffer", func(c *Config) { c.WriteBufferEntries = -1 }},
		{"negative transfer", func(c *Config) { c.VictimTransferCycles = -1 }},
	}
	for _, tc := range cases {
		cfg := validConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if _, err := NewSystem(cfg); err == nil {
			t.Fatalf("%s: NewSystem accepted invalid config", tc.name)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestTransferCycles(t *testing.T) {
	s, err := NewSystem(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ bytes, want int }{
		{0, 0}, {-5, 0}, {1, 1}, {16, 1}, {17, 2}, {32, 2}, {64, 4},
	}
	for _, c := range cases {
		if got := s.TransferCycles(c.bytes); got != c.want {
			t.Fatalf("TransferCycles(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestFetchPenalty(t *testing.T) {
	s, _ := NewSystem(validConfig())
	// One 32-byte line: 20 + 2.
	if got := s.Fetch(1, 32, 0, 0); got != 22 {
		t.Fatalf("penalty = %d, want 22", got)
	}
	// Two lines of a virtual fill: 20 + 4 — the paper's t_lat + n*LS/w_b.
	if got := s.Fetch(2, 32, 0, 0); got != 24 {
		t.Fatalf("penalty = %d, want 24", got)
	}
	// A bypassed 8-byte word: 20 + 1.
	if got := s.Fetch(0, 0, 8, 0); got != 21 {
		t.Fatalf("penalty = %d, want 21", got)
	}
	st := s.Stats()
	if st.Requests != 3 || st.BytesFetched != 32+64+8 || st.LinesFetched != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVictimTransfersHiddenUnderLatency(t *testing.T) {
	s, _ := NewSystem(validConfig())
	// 5 dirty victims x 2 cycles = 10 < 20 latency: fully hidden.
	if got := s.Fetch(1, 32, 0, 5); got != 22 {
		t.Fatalf("penalty = %d, want 22 (transfers hidden)", got)
	}
	if s.Stats().WritebackStallCycles != 0 {
		t.Fatal("no stall expected")
	}
	// 15 victims x 2 = 30 > 20: 10 extra cycles.
	if got := s.Fetch(1, 32, 0, 15); got != 32 {
		t.Fatalf("penalty = %d, want 32", got)
	}
	if s.Stats().WritebackStallCycles != 10 {
		t.Fatalf("stall = %d, want 10", s.Stats().WritebackStallCycles)
	}
	if s.Stats().Writebacks != 20 {
		t.Fatalf("writebacks = %d, want 20", s.Stats().Writebacks)
	}
}

func TestWriteBufferOutsideMiss(t *testing.T) {
	s, _ := NewSystem(validConfig()) // capacity 2
	if !s.WritebackOutsideMiss() || !s.WritebackOutsideMiss() {
		t.Fatal("buffer should accept 2 entries")
	}
	if s.WritebackOutsideMiss() {
		t.Fatal("third entry should be rejected")
	}
	if s.Stats().WriteBufferFullAborts != 1 {
		t.Fatalf("aborts = %d", s.Stats().WriteBufferFullAborts)
	}
	// A miss drains one slot.
	s.Fetch(1, 32, 0, 0)
	if !s.WritebackOutsideMiss() {
		t.Fatal("buffer should have drained one slot")
	}
	if s.WriteBufferOccupancy() != 2 {
		t.Fatalf("occupancy = %d", s.WriteBufferOccupancy())
	}
}

func TestZeroCapacityWriteBuffer(t *testing.T) {
	cfg := validConfig()
	cfg.WriteBufferEntries = 0
	s, _ := NewSystem(cfg)
	if s.WritebackOutsideMiss() {
		t.Fatal("zero-capacity buffer must reject writebacks")
	}
}

func TestPrefetchFetchCountsTrafficOnly(t *testing.T) {
	s, _ := NewSystem(validConfig())
	s.PrefetchFetch(2, 32)
	st := s.Stats()
	if st.BytesFetched != 64 || st.LinesFetched != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Requests != 0 {
		t.Fatal("prefetch fetches are not miss requests")
	}
}

func TestWriteBufferClamp(t *testing.T) {
	s, _ := NewSystem(validConfig())
	s.Fetch(1, 32, 0, 10) // more victims than the 2-entry buffer
	if s.WriteBufferOccupancy() > 2 {
		t.Fatalf("occupancy %d exceeds capacity", s.WriteBufferOccupancy())
	}
}

func TestConfigAccessor(t *testing.T) {
	s, _ := NewSystem(validConfig())
	if s.Config() != validConfig() {
		t.Fatal("Config accessor broken")
	}
}

func TestPostWrite(t *testing.T) {
	s, _ := NewSystem(validConfig()) // 2-entry buffer, 2-cycle transfer
	if stall := s.PostWrite(8, 0); stall != 0 {
		t.Fatalf("first post stalled %d", stall)
	}
	if stall := s.PostWrite(8, 0); stall != 0 {
		t.Fatalf("second post stalled %d", stall)
	}
	// Buffer full at the same cycle: the third post stalls one transfer.
	if stall := s.PostWrite(8, 0); stall != 2 {
		t.Fatalf("full-buffer post stalled %d, want 2", stall)
	}
	st := s.Stats()
	if st.BytesWritten != 24 || st.WriteThroughStalls != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Time-based drain: 10 cycles later both entries have drained.
	if stall := s.PostWrite(8, 10); stall != 0 {
		t.Fatal("drained buffer must accept the post")
	}
}
