package trace

import (
	"io"
	"math/rand"
)

// SynthesizeSCTZ streams n synthetic records to w as an open-ended SCTZ
// stream without materialising them, so CI can stage multi-gigabyte
// inputs in O(batch) memory. The mix is deliberately adversarial for the
// compressor — seven of eight records take fresh random addresses and
// refIDs, so they escape to literal form and the stream stays near flat
// size — while the strided eighth keeps the dictionary path exercised.
// The same (name, n, seed) always produces the identical byte stream.
func SynthesizeSCTZ(w io.Writer, name string, n, seed uint64) (uint64, error) {
	sw, err := NewStreamWriter(w, name)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	const sites = 64
	var strideAddr [sites]uint64
	for i := range strideAddr {
		strideAddr[i] = uint64(i) << 32
	}
	batch := make([]Record, sctzChunkRecords)
	var done uint64
	for done < n {
		m := uint64(len(batch))
		if n-done < m {
			m = n - done
		}
		for i := range batch[:m] {
			r := &batch[i]
			seq := done + uint64(i)
			if seq%8 == 0 {
				site := seq / 8 % sites
				strideAddr[site] += 8
				*r = Record{
					Addr:     strideAddr[site],
					RefID:    uint32(site),
					Gap:      1,
					Size:     8,
					Temporal: site%2 == 0,
				}
				continue
			}
			flags := rng.Uint32()
			*r = Record{
				Addr:             rng.Uint64() & (1<<40 - 1),
				RefID:            uint32(rng.Intn(1 << 20)),
				Gap:              uint8(1 + rng.Intn(16)),
				Size:             uint8(4 << rng.Intn(2)),
				Write:            flags&1 != 0,
				Temporal:         flags&2 != 0,
				Spatial:          flags&4 != 0,
				VirtualHint:      uint8(flags >> 3 & 3),
				SoftwarePrefetch: flags&32 != 0,
			}
		}
		if err := sw.Write(batch[:m]); err != nil {
			return done, err
		}
		done += m
	}
	if err := sw.Close(); err != nil {
		return done, err
	}
	return done, nil
}
