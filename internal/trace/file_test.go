package trace

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestOpenFileFormats proves OpenFile decodes the same records from a
// trace regardless of the on-disk format: flat (mmapped), SCTZ (mmapped),
// plain din, and gzipped din.
func TestOpenFileFormats(t *testing.T) {
	dir := t.TempDir()
	tr := randomTrace(5, 10000)
	// Din carries only addr/write/gap/size, so build the expectation by
	// round-tripping through the din text once.
	var dinBuf bytes.Buffer
	if err := WriteDin(&dinBuf, tr); err != nil {
		t.Fatal(err)
	}

	flatPath := filepath.Join(dir, "t.sctr")
	var flat bytes.Buffer
	if err := Write(&flat, tr); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(flatPath, flat.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	sctzPath := filepath.Join(dir, "t.sctz")
	var sctz bytes.Buffer
	if err := WriteSCTZ(&sctz, tr); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sctzPath, sctz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	dinPath := filepath.Join(dir, "t.din")
	if err := os.WriteFile(dinPath, dinBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	dinGzPath := filepath.Join(dir, "t.din.gz")
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(dinBuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dinGzPath, zbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	read := func(path string) (*Trace, bool) {
		t.Helper()
		f, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		got, err := ReadAll(f)
		if err != nil {
			t.Fatal(err)
		}
		return got, f.Mapped()
	}

	fromFlat, flatMapped := read(flatPath)
	fromSCTZ, sctzMapped := read(sctzPath)
	if mmapSupported && (!flatMapped || !sctzMapped) {
		t.Errorf("binary formats not mapped: flat %v, sctz %v", flatMapped, sctzMapped)
	}
	if len(fromFlat.Records) != len(tr.Records) {
		t.Fatalf("flat read %d records, want %d", len(fromFlat.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if fromFlat.Records[i] != tr.Records[i] {
			t.Fatalf("flat record %d mismatch", i)
		}
		if fromSCTZ.Records[i] != tr.Records[i] {
			t.Fatalf("sctz record %d mismatch", i)
		}
	}

	fromDin, dinMapped := read(dinPath)
	fromDinGz, _ := read(dinGzPath)
	if dinMapped {
		t.Error("din input unexpectedly mapped")
	}
	if fromDin.Name != "t" || fromDinGz.Name != "t" {
		t.Errorf("din names %q, %q, want \"t\"", fromDin.Name, fromDinGz.Name)
	}
	if len(fromDin.Records) != len(fromDinGz.Records) {
		t.Fatalf("din %d records, gzipped %d", len(fromDin.Records), len(fromDinGz.Records))
	}
	for i := range fromDin.Records {
		if fromDin.Records[i] != fromDinGz.Records[i] {
			t.Fatalf("din record %d mismatch vs gzip", i)
		}
	}
}

// TestNewAnyReaderSniff pins the dispatch: binary magics select their
// decoders, anything else is din (including a stream too short to sniff).
func TestNewAnyReaderSniff(t *testing.T) {
	tr := randomTrace(6, 500)
	var flat, sctz bytes.Buffer
	if err := Write(&flat, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteSCTZ(&sctz, tr); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		data  []byte
		wantN int
	}{
		{"flat", flat.Bytes(), len(tr.Records)},
		{"sctz", sctz.Bytes(), len(tr.Records)},
		{"din", []byte("0 1000\n1 2000\n"), 2},
		{"short", []byte("0 8"), 1},
		{"empty", nil, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewAnyReader(bytes.NewReader(tc.data), "x")
			if err != nil {
				t.Fatal(err)
			}
			got, err := ReadAll(r)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Records) != tc.wantN {
				t.Fatalf("decoded %d records, want %d", len(got.Records), tc.wantN)
			}
		})
	}
}

// TestOpenFileErrors: missing files and corrupt binary headers surface
// errors naming the path.
func TestOpenFileErrors(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file did not error")
	}
	bad := filepath.Join(t.TempDir(), "bad.sctz")
	if err := os.WriteFile(bad, []byte("SCTZ\xff\xff"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(bad)
	if err == nil {
		got, rerr := ReadAll(f)
		f.Close()
		if rerr == nil {
			t.Fatalf("corrupt sctz header decoded %d records without error", len(got.Records))
		}
	} else if want := fmt.Sprintf("%s:", bad); !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %v does not name the path", err)
	}
}
