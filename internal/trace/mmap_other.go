//go:build !(linux || darwin)

package trace

import (
	"fmt"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, fmt.Errorf("trace: mmap unsupported on this platform")
}

func munmapFile(b []byte) error { return nil }
