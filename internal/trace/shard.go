package trace

import "sync"

// Set-sharded routing support for the parallel kernel
// (core.SimulateSharded): a Router copies a decoded record stream into
// per-shard chunks and hands them to shard workers over bounded
// channels.
//
// Chunks come from their own pool, deliberately distinct from the
// GetBatch/PutBatch decode pool: batch buffers have frame-local
// discipline (the poolescape analyzer forbids them from escaping the
// acquiring function via channels or goroutines), whereas a chunk's
// whole purpose is ownership transfer — the router fills it, sends it,
// and the receiving worker (alone) returns it with PutChunk when done.

// ShardChunkSize is the record capacity of one routed chunk. It matches
// BatchSize so a worker's AccessAll sees the same batch granularity as
// the sequential kernel.
const ShardChunkSize = BatchSize

var chunkPool = sync.Pool{
	New: func() any {
		b := make([]Record, 0, ShardChunkSize)
		return &b
	},
}

// GetChunk returns an empty chunk with capacity ShardChunkSize.
// Ownership is explicit: exactly one goroutine may hold a chunk at a
// time, and the final holder returns it with PutChunk.
func GetChunk() *[]Record {
	return chunkPool.Get().(*[]Record)
}

// PutChunk returns a chunk to the pool. Chunks whose capacity is not
// ShardChunkSize (grown or foreign) are dropped so the pool stays
// homogeneous.
func PutChunk(c *[]Record) {
	if c == nil || cap(*c) != ShardChunkSize {
		return
	}
	*c = (*c)[:0]
	chunkPool.Put(c)
}

// Router partitions a record stream across per-shard queues. It is
// single-producer: one goroutine calls Route then Close; each shard's
// channel has exactly one consumer. No locking is needed — the channels
// are the only shared state.
type Router struct {
	shardOf func(addr uint64) int
	open    []*[]Record      // chunk being filled, per shard (producer-owned)
	out     []chan *[]Record // sealed chunks in flight to the workers
}

// NewRouter builds a router for the given shard count. queueDepth bounds
// how many sealed chunks may queue per shard before Route blocks (back
// pressure onto the decoder). shardOf maps a record address to its shard
// (cache.ShardPlan.ShardOf).
func NewRouter(shards, queueDepth int, shardOf func(addr uint64) int) *Router {
	if shards < 1 {
		panic("trace: NewRouter needs at least one shard")
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	r := &Router{
		shardOf: shardOf,
		open:    make([]*[]Record, shards),
		out:     make([]chan *[]Record, shards),
	}
	for i := range r.out {
		r.open[i] = GetChunk()
		r.out[i] = make(chan *[]Record, queueDepth)
	}
	return r
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.out) }

// Out returns shard i's chunk channel. It is closed by Close; the
// consumer must PutChunk every chunk it receives, even when abandoning
// the run early (draining the channel keeps the producer from blocking).
func (r *Router) Out(i int) <-chan *[]Record { return r.out[i] }

// Route copies recs into the per-shard chunks, sealing and sending each
// chunk as it fills. recs is only read; the caller keeps ownership of
// the backing array (it may be a pooled decode batch).
func (r *Router) Route(recs []Record) {
	for i := range recs {
		s := r.shardOf(recs[i].Addr)
		c := r.open[s]
		*c = append(*c, recs[i])
		if len(*c) == cap(*c) {
			r.out[s] <- c
			r.open[s] = GetChunk()
		}
	}
}

// Close flushes every partial chunk and closes all shard channels. The
// router must not be used afterwards.
func (r *Router) Close() {
	for s, c := range r.open {
		if len(*c) > 0 {
			r.out[s] <- c
		} else {
			PutChunk(c)
		}
		r.open[s] = nil
		close(r.out[s])
	}
}
