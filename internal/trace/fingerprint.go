package trace

// Fingerprint returns a stable 64-bit FNV-1a hash over the trace's name
// and the serialised form of every record. Two traces with the same
// fingerprint are byte-identical when written with Write, so the value
// identifies a trace in failed-run records precisely enough to reproduce a
// crash: regenerate the workload with the recorded seed and compare
// fingerprints before replaying.
func (t *Trace) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	hashByte := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < len(t.Name); i++ {
		hashByte(t.Name[i])
	}
	hashByte(0) // separator between name and records
	for _, r := range t.Records {
		for shift := 0; shift < 64; shift += 8 {
			hashByte(byte(r.Addr >> shift))
		}
		for shift := 0; shift < 32; shift += 8 {
			hashByte(byte(r.RefID >> shift))
		}
		hashByte(r.Gap)
		hashByte(r.Size)
		hashByte(packFlags(r))
	}
	return h
}
