package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDin imports a trace in the classic Dinero ("din") format used by
// generations of cache simulators: one access per line,
//
//	<label> <address-hex>
//
// with label 0 = data read, 1 = data write, 2 = instruction fetch.
// Instruction fetches are skipped (this repository models a data cache, as
// the paper does). Addresses may carry an optional 0x prefix; blank lines
// and lines starting with '#' are ignored.
//
// Imported references carry no software tags — exactly the situation of a
// binary-only workload — so they exercise the Standard/Victim designs, or
// Soft with its tag gates off.
func ReadDin(r io.Reader, name string) (*Trace, error) {
	t := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	lineNo := 0
	first := true
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace: din line %d: want \"<label> <addr>\", got %q", lineNo, line)
		}
		label, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: din line %d: bad label %q", lineNo, fields[0])
		}
		switch label {
		case 0, 1:
		case 2:
			continue // instruction fetch: not a data reference
		default:
			return nil, fmt.Errorf("trace: din line %d: unknown label %d", lineNo, label)
		}
		addrText := strings.TrimPrefix(strings.ToLower(fields[1]), "0x")
		addr, err := strconv.ParseUint(addrText, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: din line %d: bad address %q", lineNo, fields[1])
		}
		gap := uint8(1)
		if first {
			gap = 0
			first = false
		}
		t.Append(Record{
			Addr:  addr,
			Size:  4, // the din format carries no size; one word
			Gap:   gap,
			Write: label == 1,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading din input: %w", err)
	}
	return t, nil
}

// WriteDin exports the trace in Dinero format (software tags and timing are
// lost — the format cannot carry them). Software-prefetch records are
// skipped.
func WriteDin(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, r := range t.Records {
		if r.SoftwarePrefetch {
			continue
		}
		label := byte('0')
		if r.Write {
			label = '1'
		}
		if _, err := fmt.Fprintf(bw, "%c %x\n", label, r.Addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}
