package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// maxDinLineBytes bounds one din input line; real din traces carry two
// short fields, so anything longer is corruption.
const maxDinLineBytes = 64 * 1024

// ReadDin imports a trace in the classic Dinero ("din") format used by
// generations of cache simulators: one access per line,
//
//	<label> <address-hex>
//
// with label 0 = data read, 1 = data write, 2 = instruction fetch.
// Instruction fetches are skipped (this repository models a data cache, as
// the paper does). Addresses may carry an optional 0x prefix; blank lines
// and lines starting with '#' are ignored.
//
// Malformed input fails with an error naming both the line number and the
// byte offset of the offending line; inputs with more than MaxRecords data
// references are rejected (the same budget the binary reader enforces).
//
// Imported references carry no software tags — exactly the situation of a
// binary-only workload — so they exercise the Standard/Victim designs, or
// Soft with its tag gates off.
func ReadDin(r io.Reader, name string) (*Trace, error) {
	t := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, maxDinLineBytes), maxDinLineBytes)
	lineNo := 0
	offset := int64(0) // byte offset of the start of the current line
	first := true
	for sc.Scan() {
		lineNo++
		lineStart := offset
		offset += int64(len(sc.Bytes())) + 1 // +1 for the newline
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace: din line %d (byte offset %d): want \"<label> <addr>\", got %q", lineNo, lineStart, line)
		}
		label, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: din line %d (byte offset %d): bad label %q", lineNo, lineStart, fields[0])
		}
		switch label {
		case 0, 1:
		case 2:
			continue // instruction fetch: not a data reference
		default:
			return nil, fmt.Errorf("trace: din line %d (byte offset %d): unknown label %d", lineNo, lineStart, label)
		}
		addrText := strings.TrimPrefix(strings.ToLower(fields[1]), "0x")
		addr, err := strconv.ParseUint(addrText, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: din line %d (byte offset %d): bad address %q", lineNo, lineStart, fields[1])
		}
		if len(t.Records) >= MaxRecords {
			return nil, fmt.Errorf("%w: din line %d (byte offset %d): more than %d references", ErrTooLarge, lineNo, lineStart, uint64(MaxRecords))
		}
		gap := uint8(1)
		if first {
			gap = 0
			first = false
		}
		t.Append(Record{
			Addr:  addr,
			Size:  4, // the din format carries no size; one word
			Gap:   gap,
			Write: label == 1,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading din input near line %d (byte offset %d): %w", lineNo+1, offset, err)
	}
	return t, nil
}

// WriteDin exports the trace in Dinero format (software tags and timing are
// lost — the format cannot carry them). Software-prefetch records are
// skipped.
func WriteDin(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, r := range t.Records {
		if r.SoftwarePrefetch {
			continue
		}
		label := byte('0')
		if r.Write {
			label = '1'
		}
		if _, err := fmt.Fprintf(bw, "%c %x\n", label, r.Addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}
