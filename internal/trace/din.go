package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// maxDinLineBytes bounds one din input line; real din traces carry two
// short fields, so anything longer is corruption.
const maxDinLineBytes = 64 * 1024

// DinReader streams a trace in the classic Dinero ("din") format used by
// generations of cache simulators: one access per line,
//
//	<label> <address-hex>
//
// with label 0 = data read, 1 = data write, 2 = instruction fetch.
// Instruction fetches are skipped (this repository models a data cache, as
// the paper does). Addresses may carry an optional 0x prefix; blank lines
// and lines starting with '#' are ignored. Gzip-compressed input is
// detected by its magic bytes and decompressed transparently, so captured
// traces go straight from .din.gz to the simulator or to SCTZ without an
// intermediate file.
//
// DinReader implements BatchReader, parsing only as many lines as the
// destination batch holds, so arbitrarily large din captures convert and
// simulate in O(batch) memory. Len is always -1: the format does not
// announce its length. Malformed input fails with an error naming both
// the line number and the byte offset of the offending line (offsets count
// decompressed bytes when the input was gzipped); inputs with more than
// MaxRecords data references are rejected with ErrTooLarge (the same
// budget the binary readers enforce).
//
// Imported references carry no software tags — exactly the situation of a
// binary-only workload — so they exercise the Standard/Victim designs, or
// Soft with its tag gates off.
type DinReader struct {
	sc     *bufio.Scanner
	gz     *gzip.Reader // non-nil when the input was gzip-compressed
	name   string
	lineNo int
	offset int64 // byte offset of the start of the next line
	count  uint64
	first  bool
	done   bool
	err    error // sticky
}

// NewDinReader sniffs r for gzip framing and positions a streaming din
// parser at its first line. The name becomes the trace name (the din
// format has no header to carry one).
func NewDinReader(r io.Reader, name string) (*DinReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var src io.Reader = br
	var gz *gzip.Reader
	if head, _ := br.Peek(2); len(head) == 2 && head[0] == 0x1f && head[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip din input: %w", err)
		}
		src, gz = zr, zr
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, maxDinLineBytes), maxDinLineBytes)
	return &DinReader{sc: sc, gz: gz, name: name, first: true}, nil
}

// Name returns the name the reader was constructed with.
func (r *DinReader) Name() string { return r.name }

// Len returns -1: din input does not announce its record count.
func (r *DinReader) Len() int { return -1 }

// fail records err as the reader's sticky error and returns it.
func (r *DinReader) fail(err error) error {
	r.err = err
	return err
}

// ReadBatch parses up to len(dst) data references into dst and returns the
// number parsed; after the last line the next call returns (0, io.EOF).
func (r *DinReader) ReadBatch(dst []Record) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	if r.done {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) {
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				return n, r.fail(fmt.Errorf("trace: reading din input near line %d (byte offset %d): %w",
					r.lineNo+1, r.offset, err))
			}
			if r.gz != nil {
				// Surface a truncated or corrupt gzip trailer; the scanner
				// swallows only clean EOFs.
				if err := r.gz.Close(); err != nil {
					return n, r.fail(fmt.Errorf("trace: closing gzip din input: %w", err))
				}
			}
			r.done = true
			if n == 0 {
				return 0, io.EOF
			}
			return n, nil
		}
		r.lineNo++
		lineStart := r.offset
		r.offset += int64(len(r.sc.Bytes())) + 1 // +1 for the newline
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return n, r.fail(fmt.Errorf("trace: din line %d (byte offset %d): want \"<label> <addr>\", got %q",
				r.lineNo, lineStart, line))
		}
		label, err := strconv.Atoi(fields[0])
		if err != nil {
			return n, r.fail(fmt.Errorf("trace: din line %d (byte offset %d): bad label %q", r.lineNo, lineStart, fields[0]))
		}
		switch label {
		case 0, 1:
		case 2:
			continue // instruction fetch: not a data reference
		default:
			return n, r.fail(fmt.Errorf("trace: din line %d (byte offset %d): unknown label %d", r.lineNo, lineStart, label))
		}
		addrText := strings.TrimPrefix(strings.ToLower(fields[1]), "0x")
		addr, err := strconv.ParseUint(addrText, 16, 64)
		if err != nil {
			return n, r.fail(fmt.Errorf("trace: din line %d (byte offset %d): bad address %q", r.lineNo, lineStart, fields[1]))
		}
		if r.count >= MaxRecords {
			return n, r.fail(fmt.Errorf("%w: din line %d (byte offset %d): more than %d references",
				ErrTooLarge, r.lineNo, lineStart, uint64(MaxRecords)))
		}
		gap := uint8(1)
		if r.first {
			gap = 0
			r.first = false
		}
		dst[n] = Record{
			Addr:  addr,
			Size:  4, // the din format carries no size; one word
			Gap:   gap,
			Write: label == 1,
		}
		n++
		r.count++
	}
	return n, nil
}

// ReadDin imports a whole din-format trace (see DinReader for the dialect,
// gzip handling and limits).
func ReadDin(r io.Reader, name string) (*Trace, error) {
	dr, err := NewDinReader(r, name)
	if err != nil {
		return nil, err
	}
	return ReadAll(dr)
}

// WriteDin exports the trace in Dinero format (software tags and timing are
// lost — the format cannot carry them). Software-prefetch records are
// skipped.
func WriteDin(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, r := range t.Records {
		if r.SoftwarePrefetch {
			continue
		}
		label := byte('0')
		if r.Write {
			label = '1'
		}
		if _, err := fmt.Fprintf(bw, "%c %x\n", label, r.Addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}
