package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

func randomTrace(seed int64, n int) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Name: "rand"}
	for i := 0; i < n; i++ {
		t.Append(Record{
			Addr:             rng.Uint64() >> 20,
			RefID:            uint32(rng.Intn(1 << 16)),
			Gap:              uint8(rng.Intn(256)),
			Size:             uint8(1 + rng.Intn(16)),
			Write:            rng.Intn(2) == 0,
			Temporal:         rng.Intn(2) == 0,
			Spatial:          rng.Intn(2) == 0,
			VirtualHint:      uint8(rng.Intn(4)),
			SoftwarePrefetch: rng.Intn(8) == 0,
		})
	}
	return t
}

// drainBatch decodes a whole stream through ReadBatch with the given
// destination size.
func drainBatch(t *testing.T, r *Reader, batchLen int) []Record {
	t.Helper()
	var out []Record
	dst := make([]Record, batchLen)
	for {
		n, err := r.ReadBatch(dst)
		out = append(out, dst[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
	}
}

// TestReadBatchMatchesNext is the decode-parity test: every record decoded
// by the batched path must be bit-identical to the one-at-a-time path,
// whatever the destination size and however the reader was constructed.
func TestReadBatchMatchesNext(t *testing.T) {
	tr := randomTrace(7, 10_000)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	nr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for {
		rec, err := nr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	if len(want) != len(tr.Records) {
		t.Fatalf("Next decoded %d records, want %d", len(want), len(tr.Records))
	}

	for _, batchLen := range []int{1, 7, 100, BatchSize, 3 * BatchSize} {
		for _, mk := range []struct {
			name string
			open func() (*Reader, error)
		}{
			{"NewReader", func() (*Reader, error) { return NewReader(bytes.NewReader(data)) }},
			{"NewReaderBytes", func() (*Reader, error) { return NewReaderBytes(data) }},
		} {
			r, err := mk.open()
			if err != nil {
				t.Fatal(err)
			}
			got := drainBatch(t, r, batchLen)
			if len(got) != len(want) {
				t.Fatalf("%s batchLen=%d: decoded %d records, want %d", mk.name, batchLen, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s batchLen=%d: record %d mismatch:\n got %+v\nwant %+v",
						mk.name, batchLen, i, got[i], want[i])
				}
			}
			if r.Offset() != int64(len(data)) {
				t.Errorf("%s batchLen=%d: offset %d after drain, want %d", mk.name, batchLen, r.Offset(), len(data))
			}
		}
	}
}

// TestReadBatchTruncated checks that a stream cut mid-record yields the
// complete records followed by io.ErrUnexpectedEOF, like Next does.
func TestReadBatchTruncated(t *testing.T) {
	tr := randomTrace(11, 100)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	// Cut 40 records plus half a record off the end.
	data := buf.Bytes()
	cut := data[:len(data)-40*15-7]

	for _, mk := range []struct {
		name string
		open func() (*Reader, error)
	}{
		{"NewReader", func() (*Reader, error) { return NewReader(bytes.NewReader(cut)) }},
		{"NewReaderBytes", func() (*Reader, error) { return NewReaderBytes(cut) }},
	} {
		r, err := mk.open()
		if err != nil {
			t.Fatal(err)
		}
		var got []Record
		dst := make([]Record, 32)
		var lastErr error
		for lastErr == nil {
			var n int
			n, lastErr = r.ReadBatch(dst)
			got = append(got, dst[:n]...)
		}
		if len(got) != 59 {
			t.Errorf("%s: decoded %d complete records, want 59", mk.name, len(got))
		}
		if !errors.Is(lastErr, io.ErrUnexpectedEOF) {
			t.Errorf("%s: final error = %v, want io.ErrUnexpectedEOF", mk.name, lastErr)
		}
		for i := range got {
			if got[i] != tr.Records[i] {
				t.Fatalf("%s: record %d mismatch before truncation point", mk.name, i)
			}
		}
	}
}

// TestReadBatchEmptyDst: a zero-length destination must not consume input
// or report EOF early.
func TestReadBatchEmptyDst(t *testing.T) {
	tr := randomTrace(3, 5)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	r, err := NewReaderBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	n, err := r.ReadBatch(nil)
	if n != 0 || err != nil {
		t.Fatalf("ReadBatch(nil) = (%d, %v), want (0, nil)", n, err)
	}
	if got := drainBatch(t, r, 2); len(got) != 5 {
		t.Fatalf("decoded %d records after empty-dst call, want 5", len(got))
	}
}

// TestGetBatchShape: pooled batches always come back full-length.
func TestGetBatchShape(t *testing.T) {
	b := GetBatch()
	defer PutBatch(b)
	if len(*b) != BatchSize {
		t.Fatalf("GetBatch returned %d records, want %d", len(*b), BatchSize)
	}
}

// TestPutBatchRejectsForeignShapes: PutBatch must not poison the pool with
// buffers whose capacity diverges from the BatchSize shape — a later
// GetBatch caller would silently decode short (or blow the cache-resident
// working set). Shortened-but-same-capacity buffers are restored to full
// length instead.
func TestPutBatchRejectsForeignShapes(t *testing.T) {
	// Drain the pool into a private set so the shapes we return are the
	// only candidates GetBatch can hand back (sync.Pool has no Len, so we
	// grab a generous handful).
	held := make([]*[]Record, 32)
	for i := range held {
		held[i] = GetBatch()
	}

	short := make([]Record, 16)
	long := make([]Record, BatchSize+1)
	PutBatch(nil)    // must not panic
	PutBatch(&short) // capacity below the pool shape: dropped
	PutBatch(&long)  // capacity above the pool shape: dropped

	shrunk := held[0]
	*shrunk = (*shrunk)[:7] // same backing array, stale length from a caller
	PutBatch(shrunk)

	for i := 0; i < len(held)+4; i++ {
		b := GetBatch()
		if cap(*b) != BatchSize || len(*b) != BatchSize {
			t.Fatalf("GetBatch returned poisoned batch: len=%d cap=%d, want %d/%d",
				len(*b), cap(*b), BatchSize, BatchSize)
		}
	}
	for _, b := range held[1:] {
		PutBatch(b)
	}
}
