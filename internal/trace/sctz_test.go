package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// sctzBytes encodes t with WriteSCTZ.
func sctzBytes(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSCTZ(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireIdentical fails unless got reproduces want record for record.
func requireIdentical(t *testing.T, want, got *Trace) {
	t.Helper()
	if got.Name != want.Name {
		t.Fatalf("name: got %q want %q", got.Name, want.Name)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("records: got %d want %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if got.Records[i] != want.Records[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got.Records[i], want.Records[i])
		}
	}
}

// TestSCTZRoundTripAdversarial drives the compressed codec over random
// traces that defeat every structural assumption the format exploits —
// full-range address jumps, shuffled refIDs, tag garbage — across sizes
// straddling the chunk boundary.
func TestSCTZRoundTripAdversarial(t *testing.T) {
	sizes := []int{0, 1, 2, 17, sctzChunkRecords - 1, sctzChunkRecords, sctzChunkRecords + 1, 3*sctzChunkRecords + 129}
	for i, n := range sizes {
		tr := randomTrace(int64(100+i), n)
		data := sctzBytes(t, tr)
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		requireIdentical(t, tr, got)
	}
}

// TestSCTZRoundTripWideRefIDs covers sites past the tracked-site cap: such
// records must still round-trip exactly, they just compress worse.
func TestSCTZRoundTripWideRefIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := &Trace{Name: "wide"}
	for i := 0; i < 3000; i++ {
		tr.Append(Record{
			Addr:  rng.Uint64(),
			RefID: rng.Uint32(), // mostly past sctzSiteCap
			Gap:   uint8(rng.Intn(256)),
			Size:  uint8(rng.Intn(256)),
			Write: rng.Intn(2) == 0,
		})
	}
	got, err := Read(bytes.NewReader(sctzBytes(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, tr, got)
}

// TestSCTZStreamWriter exercises the unknown-length path: irregular Write
// slices, Len() == -1 on the reader, and exact reproduction.
func TestSCTZStreamWriter(t *testing.T) {
	tr := randomTrace(42, 2*sctzChunkRecords+77)
	var buf bytes.Buffer
	w, err := NewStreamWriter(&buf, "streamed")
	if err != nil {
		t.Fatal(err)
	}
	for off, step := 0, 1; off < len(tr.Records); step = step*3 + 1 {
		end := min(off+step, len(tr.Records))
		if err := w.Write(tr.Records[off:end]); err != nil {
			t.Fatal(err)
		}
		off = end
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := w.Count(); got != uint64(len(tr.Records)) {
		t.Fatalf("Count: got %d want %d", got, len(tr.Records))
	}
	r, err := NewStreamReaderBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != -1 {
		t.Fatalf("Len of unknown-total stream: got %d want -1", r.Len())
	}
	if r.Name() != "streamed" {
		t.Fatalf("Name: got %q", r.Name())
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	got.Name = tr.Name
	requireIdentical(t, tr, got)
	if r.Chunks() == 0 {
		t.Fatal("Chunks not counted")
	}
}

// TestSCTZReadBatchSizes drains one stream with destination sizes that do
// not divide the chunk size, so batches repeatedly straddle chunk
// boundaries.
func TestSCTZReadBatchSizes(t *testing.T) {
	tr := randomTrace(9, 2*sctzChunkRecords+513)
	data := sctzBytes(t, tr)
	for _, size := range []int{1, 7, 1000, BatchSize, 3 * sctzChunkRecords} {
		r, err := NewStreamReaderBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() != len(tr.Records) {
			t.Fatalf("Len: got %d want %d", r.Len(), len(tr.Records))
		}
		var out []Record
		dst := make([]Record, size)
		for {
			n, err := r.ReadBatch(dst)
			out = append(out, dst[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("size %d: %v", size, err)
			}
		}
		requireIdentical(t, tr, &Trace{Name: tr.Name, Records: out})
		if _, err := r.ReadBatch(dst); err != io.EOF {
			t.Fatalf("post-EOF ReadBatch: %v", err)
		}
	}
}

// TestSCTZEmptyTrace round-trips a zero-record trace.
func TestSCTZEmptyTrace(t *testing.T) {
	tr := &Trace{Name: "empty"}
	got, err := Read(bytes.NewReader(sctzBytes(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, tr, got)
}

// TestSCTZTruncation cuts a healthy stream at every byte and requires a
// clean error — never a panic, never a phantom success (except at cuts
// that happen to end exactly at the final flush, which cannot exist here
// because the end marker is mandatory).
func TestSCTZTruncation(t *testing.T) {
	tr := randomTrace(3, 600)
	data := sctzBytes(t, tr)
	for cut := 0; cut < len(data); cut++ {
		_, err := ReadSCTZ(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("cut at %d of %d: truncated stream accepted", cut, len(data))
		}
	}
}

// TestSCTZChecksumFlip flips single bytes across the stream body: every
// flip that the reader accepts must still decode into some structurally
// valid trace, and flips inside plane bytes must be caught by the plane
// CRCs with an error naming the mismatch.
func TestSCTZChecksumFlip(t *testing.T) {
	tr := randomTrace(5, 300)
	data := sctzBytes(t, tr)
	headerLen := 4 + 2 + 2 + len(tr.Name) + 8
	flips := 0
	for off := headerLen + 8 + 8; off < len(data)-8; off += 11 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		_, err := ReadSCTZ(bytes.NewReader(mut))
		if err == nil {
			continue // flipped a stored CRC and its plane consistently? impossible; a plane byte flip may land in slack
		}
		if strings.Contains(err.Error(), "checksum mismatch") {
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("no byte flip tripped a plane checksum")
	}
}

// TestSCTZBudget proves the cumulative record budget is enforced across
// chunks: a stream under the format's own limits but over the reader's
// budget fails with ErrTooLarge partway in, not after unbounded work.
func TestSCTZBudget(t *testing.T) {
	tr := randomTrace(11, 3*sctzChunkRecords)
	var buf bytes.Buffer
	w, err := NewStreamWriter(&buf, "over")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(tr.Records); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewStreamReaderBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	r.budget = 2 * sctzChunkRecords // the third chunk must trip it
	dst := make([]Record, BatchSize)
	var n int
	for {
		m, err := r.ReadBatch(dst)
		n += m
		if err != nil {
			if !errors.Is(err, ErrTooLarge) {
				t.Fatalf("want ErrTooLarge, got %v", err)
			}
			break
		}
	}
	if n != 2*sctzChunkRecords {
		t.Fatalf("decoded %d records before the budget tripped, want %d", n, 2*sctzChunkRecords)
	}
	// The header-announced total is checked against MaxRecords up front.
	huge := append([]byte(nil), buf.Bytes()...)
	binary.LittleEndian.PutUint64(huge[4+2+2+len("over"):], MaxRecords+1)
	if _, err := NewStreamReaderBytes(huge); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized header total: want ErrTooLarge, got %v", err)
	}
}

// TestSCTZFraming hand-corrupts specific framing invariants.
func TestSCTZFraming(t *testing.T) {
	tr := randomTrace(13, 100)
	data := sctzBytes(t, tr)
	headerLen := 4 + 2 + 2 + len(tr.Name) + 8

	t.Run("end marker with payload", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(mut[len(mut)-4:], 99)
		if _, err := ReadSCTZ(bytes.NewReader(mut)); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("missing end marker", func(t *testing.T) {
		mut := data[:len(data)-8]
		if _, err := ReadSCTZ(bytes.NewReader(mut)); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("short total", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		binary.LittleEndian.PutUint64(mut[headerLen-8:headerLen], uint64(len(tr.Records))+1)
		_, err := ReadSCTZ(bytes.NewReader(mut))
		if !errors.Is(err, ErrBadFormat) || !strings.Contains(err.Error(), "announced") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("records beyond total", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		binary.LittleEndian.PutUint64(mut[headerLen-8:headerLen], uint64(len(tr.Records))-1)
		_, err := ReadSCTZ(bytes.NewReader(mut))
		if !errors.Is(err, ErrBadFormat) || !strings.Contains(err.Error(), "beyond the announced total") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("oversized chunk count", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(mut[headerLen:headerLen+4], maxSCTZChunkRecords+1)
		if _, err := ReadSCTZ(bytes.NewReader(mut)); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		binary.LittleEndian.PutUint16(mut[4:6], 9)
		if _, err := ReadSCTZ(bytes.NewReader(mut)); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("got %v", err)
		}
	})
}

// TestSCTZSniffedRead proves trace.Read dispatches on the magic: the same
// call reads flat and compressed streams, and rejects unknown magics with
// ErrBadFormat (not by misparsing them as din or flat records).
func TestSCTZSniffedRead(t *testing.T) {
	tr := randomTrace(21, 500)
	var flat bytes.Buffer
	if err := Write(&flat, tr); err != nil {
		t.Fatal(err)
	}
	fromFlat, err := Read(bytes.NewReader(flat.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromSCTZ, err := Read(bytes.NewReader(sctzBytes(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, fromFlat, fromSCTZ)
	if _, err := Read(bytes.NewReader([]byte("XXXX????"))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("unknown magic: got %v", err)
	}
}

// TestSCTZStreamingSource runs the reader over a bufio-backed source whose
// chunks cannot be borrowed in one peek (payload larger than the buffered
// window), covering the owned-copy fallback.
func TestSCTZStreamingSource(t *testing.T) {
	// Random records escape almost always: ~16 bytes per record pushes a
	// 4096-record chunk payload past the reader's 64 KiB bufio window.
	tr := randomTrace(31, 2*sctzChunkRecords+100)
	data := sctzBytes(t, tr)
	r, err := NewStreamReader(&dribbleReader{data: data})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, tr, got)
}

// dribbleReader serves its bytes in small odd-sized reads, the worst case
// for any parser that assumes one Read fills its request.
type dribbleReader struct {
	data []byte
	pos  int
	step int
}

func (s *dribbleReader) Read(p []byte) (int, error) {
	if s.pos >= len(s.data) {
		return 0, io.EOF
	}
	s.step = s.step%7 + 1
	n := min(min(s.step, len(p)), len(s.data)-s.pos)
	copy(p, s.data[s.pos:s.pos+n])
	s.pos += n
	return n, nil
}

// TestStoreRecordConvention pins the little-endian word-store fast path to
// the portable field-wise definition of the packed-record convention.
func TestStoreRecordConvention(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		w0 := rng.Uint64()
		// Field bytes hold real values; bool bytes stay 0/1 and the
		// convention's spare bits stay zero, as every encoder of packed
		// words guarantees.
		w1 := rng.Uint64()&0x0000_ffff_ffff_ffff | uint64(rng.Intn(2))<<48 | uint64(rng.Intn(2))<<56
		w2 := uint64(rng.Intn(2)) | uint64(rng.Intn(4))<<8 | uint64(rng.Intn(2))<<16
		var fast, portable Record
		storeRecord(&fast, w0, w1, w2)
		storeRecordPortable(&portable, w0, w1, w2)
		if fast != portable {
			t.Fatalf("packed words %#x %#x %#x: fast %+v portable %+v", w0, w1, w2, fast, portable)
		}
	}
}
