package trace

import (
	"sync"
	"testing"
)

func TestChunkPoolShape(t *testing.T) {
	c := GetChunk()
	if len(*c) != 0 || cap(*c) != ShardChunkSize {
		t.Fatalf("GetChunk: len %d cap %d, want 0/%d", len(*c), cap(*c), ShardChunkSize)
	}
	*c = append(*c, Record{Addr: 1})
	PutChunk(c)
	if got := GetChunk(); len(*got) != 0 {
		t.Fatalf("recycled chunk not reset: len %d", len(*got))
	}
	// Foreign shapes are dropped, and nil is tolerated.
	odd := make([]Record, 0, 3)
	PutChunk(&odd)
	PutChunk(nil)
}

// drainRouter collects every routed record per shard on one goroutine
// per shard, as the sharded kernel does.
func drainRouter(r *Router) [][]Record {
	out := make([][]Record, r.Shards())
	var wg sync.WaitGroup
	wg.Add(r.Shards())
	for i := 0; i < r.Shards(); i++ {
		go func(i int) {
			defer wg.Done()
			for c := range r.Out(i) {
				out[i] = append(out[i], *c...)
				PutChunk(c)
			}
		}(i)
	}
	wg.Wait()
	return out
}

func TestRouterPartitionsAndPreservesOrder(t *testing.T) {
	const shards = 4
	shardOf := func(addr uint64) int { return int(addr % shards) }
	r := NewRouter(shards, 2, shardOf)

	// Enough records to force several sealed chunks plus a partial flush.
	n := ShardChunkSize*3 + 37
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Addr: uint64(i*7 + 3), RefID: uint32(i)}
	}
	done := make(chan [][]Record)
	go func() { done <- drainRouter(r) }()
	// Route in uneven slices, as the decode loop would.
	for off := 0; off < n; {
		end := off + 1000
		if end > n {
			end = n
		}
		r.Route(recs[off:end])
		off = end
	}
	r.Close()
	got := <-done

	want := make([][]Record, shards)
	for _, rec := range recs {
		s := shardOf(rec.Addr)
		want[s] = append(want[s], rec)
	}
	total := 0
	for s := 0; s < shards; s++ {
		total += len(got[s])
		if len(got[s]) != len(want[s]) {
			t.Fatalf("shard %d received %d records, want %d", s, len(got[s]), len(want[s]))
		}
		for i := range got[s] {
			if got[s][i] != want[s][i] {
				t.Fatalf("shard %d record %d = %+v, want %+v (order not preserved)", s, i, got[s][i], want[s][i])
			}
		}
	}
	if total != n {
		t.Fatalf("routed %d records, want %d", total, n)
	}
}

func TestRouterCloseWithoutRecords(t *testing.T) {
	r := NewRouter(3, 1, func(uint64) int { return 0 })
	done := make(chan [][]Record)
	go func() { done <- drainRouter(r) }()
	r.Close()
	for s, recs := range <-done {
		if len(recs) != 0 {
			t.Fatalf("shard %d received %d records from an empty run", s, len(recs))
		}
	}
}

func TestNewRouterRejectsZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRouter(0) did not panic")
		}
	}()
	NewRouter(0, 1, func(uint64) int { return 0 })
}
