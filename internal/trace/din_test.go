package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadDin(t *testing.T) {
	src := `
# a comment
0 1000
1 0x1008
2 4000
0 2000
`
	tr, err := ReadDin(strings.NewReader(src), "din")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 { // the ifetch is skipped
		t.Fatalf("records = %d, want 3", tr.Len())
	}
	if tr.Records[0].Addr != 0x1000 || tr.Records[0].Write {
		t.Fatalf("record 0 = %+v", tr.Records[0])
	}
	if tr.Records[1].Addr != 0x1008 || !tr.Records[1].Write {
		t.Fatalf("record 1 = %+v", tr.Records[1])
	}
	if tr.Records[0].Gap != 0 || tr.Records[1].Gap != 1 {
		t.Fatal("gap assignment wrong")
	}
	if c := tr.CountTags(); c.None != 3 {
		t.Fatal("din imports must carry no tags")
	}
}

func TestReadDinErrors(t *testing.T) {
	cases := []string{
		"0\n",      // missing address
		"x 1000\n", // bad label
		"7 1000\n", // unknown label
		"0 zzzz\n", // bad address
	}
	for _, src := range cases {
		if _, err := ReadDin(strings.NewReader(src), "bad"); err == nil {
			t.Fatalf("input %q should fail", src)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Fatalf("error %q lacks line number", err)
		}
	}
}

func TestDinRoundTrip(t *testing.T) {
	tr := &Trace{Name: "rt", Records: []Record{
		{Addr: 0x10, Size: 8},
		{Addr: 0x20, Size: 8, Write: true, Gap: 2},
		{Addr: 0x30, Size: 8, SoftwarePrefetch: true}, // dropped on export
	}}
	var buf bytes.Buffer
	if err := WriteDin(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDin(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip records = %d, want 2", got.Len())
	}
	if got.Records[0].Addr != 0x10 || got.Records[1].Addr != 0x20 || !got.Records[1].Write {
		t.Fatalf("round trip lost data: %+v", got.Records)
	}
}
