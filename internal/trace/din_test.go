package trace

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"strings"
	"testing"
)

func TestReadDin(t *testing.T) {
	src := `
# a comment
0 1000
1 0x1008
2 4000
0 2000
`
	tr, err := ReadDin(strings.NewReader(src), "din")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 { // the ifetch is skipped
		t.Fatalf("records = %d, want 3", tr.Len())
	}
	if tr.Records[0].Addr != 0x1000 || tr.Records[0].Write {
		t.Fatalf("record 0 = %+v", tr.Records[0])
	}
	if tr.Records[1].Addr != 0x1008 || !tr.Records[1].Write {
		t.Fatalf("record 1 = %+v", tr.Records[1])
	}
	if tr.Records[0].Gap != 0 || tr.Records[1].Gap != 1 {
		t.Fatal("gap assignment wrong")
	}
	if c := tr.CountTags(); c.None != 3 {
		t.Fatal("din imports must carry no tags")
	}
}

func TestReadDinErrors(t *testing.T) {
	cases := []string{
		"0\n",      // missing address
		"x 1000\n", // bad label
		"7 1000\n", // unknown label
		"0 zzzz\n", // bad address
	}
	for _, src := range cases {
		if _, err := ReadDin(strings.NewReader(src), "bad"); err == nil {
			t.Fatalf("input %q should fail", src)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Fatalf("error %q lacks line number", err)
		}
	}
}

func TestDinRoundTrip(t *testing.T) {
	tr := &Trace{Name: "rt", Records: []Record{
		{Addr: 0x10, Size: 8},
		{Addr: 0x20, Size: 8, Write: true, Gap: 2},
		{Addr: 0x30, Size: 8, SoftwarePrefetch: true}, // dropped on export
	}}
	var buf bytes.Buffer
	if err := WriteDin(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDin(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip records = %d, want 2", got.Len())
	}
	if got.Records[0].Addr != 0x10 || got.Records[1].Addr != 0x20 || !got.Records[1].Write {
		t.Fatalf("round trip lost data: %+v", got.Records)
	}
}

// TestDinGzip proves gzip-compressed din input is sniffed and decompressed
// transparently, producing the same records as the plain text.
func TestDinGzip(t *testing.T) {
	var text bytes.Buffer
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&text, "%d %x\n", i%3, 0x1000+i*8)
	}
	plain, err := ReadDin(bytes.NewReader(text.Bytes()), "gz")
	if err != nil {
		t.Fatal(err)
	}
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(text.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	zipped, err := ReadDin(bytes.NewReader(zbuf.Bytes()), "gz")
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Records) != len(zipped.Records) {
		t.Fatalf("plain %d records, gzip %d", len(plain.Records), len(zipped.Records))
	}
	for i := range plain.Records {
		if plain.Records[i] != zipped.Records[i] {
			t.Fatalf("record %d: plain %+v, gzip %+v", i, plain.Records[i], zipped.Records[i])
		}
	}

	// A truncated gzip stream must error, not silently shorten the trace.
	trunc := zbuf.Bytes()[:zbuf.Len()-5]
	if _, err := ReadDin(bytes.NewReader(trunc), "gz"); err == nil {
		t.Fatal("truncated gzip din input did not error")
	}
}

// TestDinReaderBatches proves the streaming reader honors the BatchReader
// contract: unknown length, batch-bounded parsing, io.EOF after the end,
// and a sticky error once parsing fails.
func TestDinReaderBatches(t *testing.T) {
	var text bytes.Buffer
	const want = 3000
	for i := 0; i < want; i++ {
		fmt.Fprintf(&text, "1 %x\n", i)
	}
	text.WriteString("bogus line\n")
	r, err := NewDinReader(bytes.NewReader(text.Bytes()), "b")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != -1 {
		t.Fatalf("Len() = %d, want -1", r.Len())
	}
	dst := make([]Record, 1024)
	got := 0
	var firstErr error
	for firstErr == nil {
		n, err := r.ReadBatch(dst)
		got += n
		firstErr = err
	}
	if got != want {
		t.Fatalf("decoded %d records before the bad line, want %d", got, want)
	}
	if firstErr == nil || !strings.Contains(firstErr.Error(), "din line 3001") {
		t.Fatalf("error %v does not name the bad line", firstErr)
	}
	if _, err := r.ReadBatch(dst); err != firstErr {
		t.Fatalf("sticky error not preserved: %v vs %v", err, firstErr)
	}
}
