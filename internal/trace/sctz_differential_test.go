// Differential coverage for the SCTZ codec against the workload corpus.
// This lives in an external test package so it can import
// internal/workloads (which itself builds on trace) without a cycle.
package trace_test

import (
	"bytes"
	"testing"

	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// TestSCTZDifferentialWorkloads proves the compressed format round-trips
// every workload trace record-identically to the flat format, at test
// scale for all workloads and at paper scale for one loop nest and the
// irregular SpMV (the two structural extremes), unless -short.
func TestSCTZDifferentialWorkloads(t *testing.T) {
	type tc struct {
		name  string
		scale workloads.Scale
	}
	var cases []tc
	for _, n := range workloads.Names() {
		cases = append(cases, tc{n, workloads.ScaleTest})
	}
	if !testing.Short() {
		cases = append(cases, tc{"MV", workloads.ScalePaper}, tc{"SpMV", workloads.ScalePaper})
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr, err := workloads.Trace(c.name, c.scale, 1)
			if err != nil {
				t.Fatal(err)
			}
			var flat, sctz bytes.Buffer
			if err := trace.Write(&flat, tr); err != nil {
				t.Fatal(err)
			}
			if err := trace.WriteSCTZ(&sctz, tr); err != nil {
				t.Fatal(err)
			}
			fromFlat, err := trace.Read(bytes.NewReader(flat.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			fromSCTZ, err := trace.Read(bytes.NewReader(sctz.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if fromFlat.Name != fromSCTZ.Name || len(fromFlat.Records) != len(fromSCTZ.Records) {
				t.Fatalf("shape mismatch: flat %q/%d, sctz %q/%d",
					fromFlat.Name, len(fromFlat.Records), fromSCTZ.Name, len(fromSCTZ.Records))
			}
			for i := range fromFlat.Records {
				if fromFlat.Records[i] != fromSCTZ.Records[i] {
					t.Fatalf("record %d: flat %+v, sctz %+v", i, fromFlat.Records[i], fromSCTZ.Records[i])
				}
			}
		})
	}
}

// TestSCTZCompressionRatio pins the tentpole's size target: across the
// full workload set the compressed encoding must be at least 3x smaller
// than the flat one. (Loop nests individually compress 10x+; the aggregate
// bound keeps the irregular workloads honest too.)
func TestSCTZCompressionRatio(t *testing.T) {
	scale := workloads.ScaleTest
	if !testing.Short() {
		scale = workloads.ScalePaper
	}
	var flatTotal, sctzTotal int
	for _, n := range workloads.Names() {
		tr, err := workloads.Trace(n, scale, 1)
		if err != nil {
			t.Fatal(err)
		}
		var flat, sctz bytes.Buffer
		if err := trace.Write(&flat, tr); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteSCTZ(&sctz, tr); err != nil {
			t.Fatal(err)
		}
		ratio := float64(flat.Len()) / float64(sctz.Len())
		t.Logf("%-12s %9d records  flat %10d B  sctz %9d B  %6.2fx", n, len(tr.Records), flat.Len(), sctz.Len(), ratio)
		flatTotal += flat.Len()
		sctzTotal += sctz.Len()
	}
	if ratio := float64(flatTotal) / float64(sctzTotal); ratio < 3 {
		t.Fatalf("aggregate compression %0.2fx, want >= 3x", ratio)
	}
}
