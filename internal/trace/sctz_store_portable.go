//go:build !(386 || amd64 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm)

package trace

// storeRecord on big-endian targets unpacks the word convention field by
// field; the little-endian build stores the three words directly.
func storeRecord(d *Record, w0, w1, w2 uint64) {
	storeRecordPortable(d, w0, w1, w2)
}
