package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// faultSeeds mirrors the harness fault-injection corpus inline (the
// harness package imports trace, so this test cannot import it back):
// truncations at every framing boundary, corrupted magic/version bytes,
// absurd record counts and flag garbage. They seed both fuzzers so the
// generated corpus starts from the corruption classes the corpus already
// proved interesting.
func faultSeeds(f *testing.F) [][]byte {
	var healthy bytes.Buffer
	if err := Write(&healthy, &Trace{
		Name: "seed",
		Records: []Record{
			{Addr: 0x1000, RefID: 1, Size: 8, Temporal: true},
			{Addr: 0x2000, RefID: 2, Size: 8, Spatial: true, Write: true},
			{Addr: 0x3000, RefID: 3, Size: 4, Gap: 2},
		},
	}); err != nil {
		f.Fatal(err)
	}
	h := healthy.Bytes()
	headerLen := 4 + 2 + 2 + len("seed") + 8
	countOff := headerLen - 8
	clone := func() []byte { return append([]byte(nil), h...) }

	seeds := [][]byte{h}
	// Truncations: mid-magic, mid-version, mid-name, mid-count, mid-record.
	for _, at := range []int{0, 2, 5, 4 + 2 + 2 + 2, countOff + 3, headerLen + 7, len(h) - 1} {
		if at >= 0 && at < len(h) {
			seeds = append(seeds, clone()[:at])
		}
	}
	badMagic := clone()
	badMagic[0] = 'X'
	seeds = append(seeds, badMagic)

	badVersion := clone()
	binary.LittleEndian.PutUint16(badVersion[4:6], 0x7fff)
	seeds = append(seeds, badVersion)

	huge := clone()
	binary.LittleEndian.PutUint64(huge[countOff:countOff+8], ^uint64(0))
	seeds = append(seeds, huge)

	overBudget := clone()
	binary.LittleEndian.PutUint64(overBudget[countOff:countOff+8], MaxRecords+1)
	seeds = append(seeds, overBudget)

	offByOne := clone()
	binary.LittleEndian.PutUint64(offByOne[countOff:countOff+8], 4)
	seeds = append(seeds, offByOne)

	flagGarbage := clone()
	flagGarbage[headerLen+14] = 0xff
	seeds = append(seeds, flagGarbage)

	return seeds
}

// FuzzRead feeds arbitrary bytes to the trace parser: it must never panic
// and must either fail cleanly or return a structurally valid trace.
func FuzzRead(f *testing.F) {
	for _, s := range faultSeeds(f) {
		f.Add(s)
	}
	f.Add([]byte("SCTR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if tr == nil {
			t.Fatal("nil trace with nil error")
		}
		// A parsed trace must be internally consistent.
		if len(tr.Records) != tr.Len() {
			t.Fatal("Len disagrees with Records")
		}
	})
}

// FuzzReadDin feeds arbitrary text to the Dinero importer: it must never
// panic and every rejection must carry the byte offset of the bad line.
func FuzzReadDin(f *testing.F) {
	f.Add("0 1000\n1 2000\n2 3000\n")
	f.Add("0 1000 8\n")
	f.Add("")
	f.Add("# comment\n\n0 1000\n")
	f.Add("9 1000\n") // bad kind
	f.Add("0\n")      // missing address
	f.Add("0 zz\n")   // bad address
	f.Add(strings.Repeat("0 1000\n", 3) + "0 1000")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadDin(strings.NewReader(data), "fuzz")
		if err != nil {
			if !strings.Contains(err.Error(), "byte offset") {
				t.Fatalf("rejection without byte offset: %v", err)
			}
			return
		}
		if tr == nil {
			t.Fatal("nil trace with nil error")
		}
		if len(tr.Records) != tr.Len() {
			t.Fatal("Len disagrees with Records")
		}
	})
}

// sctzFaultSeeds builds the SCTZ corruption corpus: a healthy compressed
// stream plus truncations at every framing boundary, corrupted magic and
// version, hostile chunk counts and payload lengths, flipped plane bytes
// (checksum coverage) and index bytes pointing past the dictionary.
func sctzFaultSeeds(f *testing.F) [][]byte {
	var healthy bytes.Buffer
	tr := &Trace{Name: "seed"}
	for i := 0; i < 600; i++ {
		tr.Append(Record{Addr: 0x1000 + uint64(i)*8, RefID: uint32(i % 5), Size: 8, Gap: 1, Temporal: i%2 == 0})
	}
	if err := WriteSCTZ(&healthy, tr); err != nil {
		f.Fatal(err)
	}
	h := healthy.Bytes()
	headerLen := 4 + 2 + 2 + len("seed") + 8
	clone := func() []byte { return append([]byte(nil), h...) }

	seeds := [][]byte{h}
	// Truncations: mid-magic, mid-header, mid-chunk-header, mid-plane,
	// just before the end marker.
	for _, at := range []int{0, 2, 5, headerLen - 3, headerLen + 4, headerLen + 20, len(h) / 2, len(h) - 9, len(h) - 1} {
		if at >= 0 && at < len(h) {
			seeds = append(seeds, clone()[:at])
		}
	}
	badMagic := clone()
	badMagic[0] = 'X'
	seeds = append(seeds, badMagic)

	badVersion := clone()
	binary.LittleEndian.PutUint16(badVersion[4:6], 0x7fff)
	seeds = append(seeds, badVersion)

	hugeTotal := clone()
	binary.LittleEndian.PutUint64(hugeTotal[headerLen-8:headerLen], MaxRecords+1)
	seeds = append(seeds, hugeTotal)

	hugeChunk := clone()
	binary.LittleEndian.PutUint32(hugeChunk[headerLen:headerLen+4], ^uint32(0))
	seeds = append(seeds, hugeChunk)

	hugePayload := clone()
	binary.LittleEndian.PutUint32(hugePayload[headerLen+4:headerLen+8], ^uint32(0))
	seeds = append(seeds, hugePayload)

	// One flipped byte in each third of the first chunk's payload, so the
	// dict, index and escape planes all see checksum damage.
	for _, frac := range []int{4, 2} {
		flip := clone()
		flip[headerLen+8+len(flip)/frac%64] ^= 0x20
		seeds = append(seeds, flip)
	}
	markerPayload := clone()
	binary.LittleEndian.PutUint32(markerPayload[len(markerPayload)-4:], 7)
	seeds = append(seeds, markerPayload)

	return seeds
}

// FuzzStreamReader feeds arbitrary bytes to the SCTZ decoder: it must
// never panic, never over-read past announced bounds, and either fail
// cleanly or produce a structurally valid trace.
func FuzzStreamReader(f *testing.F) {
	for _, s := range sctzFaultSeeds(f) {
		f.Add(s)
	}
	f.Add([]byte("SCTZ"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewStreamReaderBytes(data)
		if err != nil {
			return
		}
		tr, err := ReadAll(r)
		if err != nil {
			// The sticky error must repeat, not resynchronise.
			if _, err2 := r.ReadBatch(make([]Record, 8)); err2 == nil {
				t.Fatal("decode continued after an error")
			}
			return
		}
		if tr == nil {
			t.Fatal("nil trace with nil error")
		}
		if want := r.Len(); want >= 0 && want != len(tr.Records) {
			t.Fatalf("announced %d records, decoded %d", want, len(tr.Records))
		}
		// The streaming and buffered paths must agree bit for bit.
		tr2, err := ReadSCTZ(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("bufio path rejected what the bytes path accepted: %v", err)
		}
		if len(tr2.Records) != len(tr.Records) {
			t.Fatalf("bufio path decoded %d records, bytes path %d", len(tr2.Records), len(tr.Records))
		}
		for i := range tr.Records {
			if tr.Records[i] != tr2.Records[i] {
				t.Fatalf("record %d differs between paths", i)
			}
		}
	})
}
