package trace

import (
	"bytes"
	"testing"
)

// FuzzRead feeds arbitrary bytes to the trace parser: it must never panic
// and must either fail cleanly or return a structurally valid trace.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, &Trace{
		Name: "seed",
		Records: []Record{
			{Addr: 0x1000, RefID: 1, Size: 8, Temporal: true},
			{Addr: 0x2000, RefID: 2, Size: 8, Spatial: true, Write: true},
		},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("SCTR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if tr == nil {
			t.Fatal("nil trace with nil error")
		}
		// A parsed trace must be internally consistent.
		if len(tr.Records) != tr.Len() {
			t.Fatal("Len disagrees with Records")
		}
	})
}
