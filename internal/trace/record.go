// Package trace defines the memory-reference trace format shared by every
// component of the repository: the workload generators produce traces, the
// cache simulator consumes them, and the metrics package characterises them.
//
// A trace entry corresponds to one dynamic execution of one load/store
// instruction. Following the paper (§3.1), each entry carries, besides the
// address and read/write direction, the two software locality hints
// (temporal bit, spatial bit) and the number of cycles elapsed since the
// previous entry. The time gap is generated when the trace is produced, not
// when it is simulated, so that repeated simulations of the same trace are
// bit-identical (paper, footnote 8).
package trace

import "fmt"

// Record is one dynamic memory reference.
type Record struct {
	// Addr is the byte address of the first byte referenced.
	Addr uint64
	// RefID identifies the static reference site (the load/store
	// instruction) that issued this access. Vector-length analysis
	// (fig. 1b) groups accesses by RefID. Zero means "unknown site".
	RefID uint32
	// Gap is the number of cycles between the issue of the previous
	// reference and this one (at least 1 for every entry but the first,
	// which may be 0).
	Gap uint8
	// Size is the number of bytes referenced (8 for a double).
	Size uint8
	// Write is true for stores.
	Write bool
	// Temporal is the software temporal-locality hint carried by the
	// load/store instruction.
	Temporal bool
	// Spatial is the software spatial-locality hint.
	Spatial bool
	// VirtualHint is the optional 2-bit virtual-line length hint of the
	// §3.2 variable-length extension: 0 selects the design's default
	// virtual line, 1/2/3 request 64/128/256 bytes. Only meaningful when
	// Spatial is set.
	VirtualHint uint8
	// SoftwarePrefetch marks an explicit (non-binding, non-blocking)
	// prefetch instruction inserted by the compiler (§4.4: the prefetch
	// buffer and distinctive load/store instructions the mechanism needs
	// are already part of the design). It occupies an issue slot but the
	// processor never waits for its data, and it is excluded from the
	// AMAT denominator.
	SoftwarePrefetch bool
}

// EncodeVirtualHint converts a requested virtual-line length in bytes to
// the 2-bit hint code (0 = default for unknown or out-of-range lengths).
func EncodeVirtualHint(bytes int) uint8 {
	switch bytes {
	case 64:
		return 1
	case 128:
		return 2
	case 256:
		return 3
	default:
		return 0
	}
}

// VirtualHintBytes converts a hint code back to bytes (0 = default).
func VirtualHintBytes(code uint8) int {
	switch code {
	case 1:
		return 64
	case 2:
		return 128
	case 3:
		return 256
	default:
		return 0
	}
}

func (r Record) String() string {
	dir := "R"
	if r.Write {
		dir = "W"
	}
	if r.SoftwarePrefetch {
		dir = "P"
	}
	t, s := "-", "-"
	if r.Temporal {
		t = "T"
	}
	if r.Spatial {
		s = "S"
	}
	return fmt.Sprintf("%s 0x%08x sz=%d ref=%d gap=%d %s%s", dir, r.Addr, r.Size, r.RefID, r.Gap, t, s)
}

// Trace is an in-memory sequence of records with a name for reporting.
type Trace struct {
	Name    string
	Records []Record
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// Append adds a record.
func (t *Trace) Append(r Record) { t.Records = append(t.Records, r) }

// StripTags returns a copy of the trace with temporal and/or spatial bits
// cleared. It is used to run the software-oblivious baseline configurations
// on exactly the same reference stream.
func (t *Trace) StripTags(stripTemporal, stripSpatial bool) *Trace {
	out := &Trace{Name: t.Name, Records: make([]Record, len(t.Records))}
	copy(out.Records, t.Records)
	for i := range out.Records {
		if stripTemporal {
			out.Records[i].Temporal = false
		}
		if stripSpatial {
			out.Records[i].Spatial = false
		}
	}
	return out
}

// TagCounts summarises how many records fall into each of the four tag
// classes (fig. 4a).
type TagCounts struct {
	None         int // no temporal, no spatial
	SpatialOnly  int
	TemporalOnly int
	Both         int
}

// Total returns the number of records counted.
func (c TagCounts) Total() int { return c.None + c.SpatialOnly + c.TemporalOnly + c.Both }

// CountTags classifies every record of the trace.
func (t *Trace) CountTags() TagCounts {
	var c TagCounts
	c.AddRecords(t.Records)
	return c
}

// AddRecords accumulates the classification of recs into c, so streaming
// consumers can tally tags batch by batch without materialising a trace.
func (c *TagCounts) AddRecords(recs []Record) {
	for i := range recs {
		r := &recs[i]
		switch {
		case r.Temporal && r.Spatial:
			c.Both++
		case r.Temporal:
			c.TemporalOnly++
		case r.Spatial:
			c.SpatialOnly++
		default:
			c.None++
		}
	}
}
