package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Compressed trace format (SCTZ, format version 3):
//
//	header:  magic "SCTZ" | version uint16 | name length uint16 | name bytes |
//	         record count uint64 (all-ones = not known in advance)
//	chunk:   record count uint32 | payload length uint32 | payload
//	payload: dict plane | index plane | escape plane, each framed as
//	         length uint32 | CRC-32C uint32 | bytes
//
// All integers are little-endian. A chunk record count of zero is the
// end-of-stream marker (its payload length must also be zero). Chunks are
// self-delimiting and independently decodable: the decoder state — the
// 256-entry address history ring, the previous refID, the record position
// — resets at every chunk boundary, so streaming, seeking and shard
// routing need no lookahead.
//
// Records compress because the paper's premise holds at the I/O boundary
// too: reference streams walk compiler-visible strides, so the step from a
// site's previous address to its next is constant across loop iterations,
// and a site recurs at the fixed period of its loop body. Each record
// reduces to a step tuple
//
//	(lookback, Δaddr, ΔrefID, gap, size, flags)
//
// where lookback in [1,255] names how many records before this one the
// base address appeared (the site's recurrence period; 1 = the previous
// record) and Δaddr is relative to that base, taken from a 256-entry ring
// of recent addresses that starts zeroed in every chunk. ΔrefID is
// relative to the previous record's refID, wrapping mod 2^32. A per-chunk
// dictionary holds up to 255 step tuples chosen by frequency (Δs
// zigzag-varint encoded, lookback/gap/size/flags raw); the index plane
// spends exactly one byte per record naming a dictionary entry, with 0xFF
// escaping to a literal flat-format record (the 15-byte v2 layout) in the
// escape plane. Loop-nest traces collapse to a handful of dictionary
// entries — about one byte per record, a 10x+ reduction — while irregular
// streams degrade gracefully to escapes that cost one byte more than a
// flat record and decode at flat-format speed.
const (
	sctzMagic   = "SCTZ"
	sctzVersion = 3

	// sctzUnknownTotal in the header's record-count field marks a stream
	// whose length was not known when the header was written (a live
	// capture or a socket): the reader then reports Len() == -1 and relies
	// on the cumulative MaxRecords budget instead of an up-front check.
	sctzUnknownTotal = ^uint64(0)

	// sctzChunkRecords is the records-per-chunk the writer emits. Bigger
	// chunks amortise the dictionary better; smaller ones bound the
	// writer's buffering. 4096 records keep the raw chunk (~164 KiB)
	// cache-friendly while the dictionary converges within the first few
	// dozen records of a loop nest.
	sctzChunkRecords = 4096

	// maxSCTZChunkRecords bounds the per-chunk record count a reader will
	// accept. The writer's chunks are far smaller; the bound exists so a
	// hostile header cannot demand a multi-gigabyte batch allocation.
	maxSCTZChunkRecords = 1 << 20

	// maxSCTZChunkPayload bounds the per-chunk payload bytes a reader will
	// buffer. A maximal legitimate chunk (every record escaped) stays
	// under 17 MiB; the 64 MiB bound leaves headroom without letting a
	// hostile length field demand gigabytes.
	maxSCTZChunkPayload = 1 << 26

	// sctzEscape is the index-plane byte that redirects a record to the
	// escape plane. Dictionary indices therefore run 0..254.
	sctzEscape  = 0xFF
	sctzMaxDict = 255

	// sctzRingSize is the address-history window tuples may look back
	// into: one slot per recent record, power of two so the position masks
	// to a slot without bounds checks. 255 (the widest encodable
	// lookback) covers the recurrence period of any loop body with up to
	// 255 references.
	sctzRingSize = 256

	// sctzSiteCap bounds the encoder's per-site recurrence table. RefIDs
	// are dense small integers (one per reference site), so 64Ki sites is
	// far beyond any generated or captured trace; records with larger
	// refIDs still round-trip, they just fall back to lookback 1.
	sctzSiteCap = 1 << 16
)

// crcTable is the Castagnoli polynomial table used for plane checksums
// (hardware-accelerated on amd64/arm64, unlike the IEEE polynomial).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// zigzag maps a signed delta to an unsigned varint-friendly value
// (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...).
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// stepTuple is the per-record delta representation the dictionary encodes.
// dAddr is the wrapping offset from the ring slot lookback records back;
// dRef is the wrapping uint32 offset from the previous record's refID.
type stepTuple struct {
	dAddr uint64
	dRef  uint32
	look  uint8
	gap   uint8
	size  uint8
	flags uint8
}

// appendTuple serialises one dictionary entry.
func appendTuple(b []byte, t stepTuple) []byte {
	b = append(b, t.look)
	b = binary.AppendUvarint(b, zigzag(int64(t.dAddr)))
	b = binary.AppendUvarint(b, zigzag(int64(int32(t.dRef))))
	return append(b, t.gap, t.size, t.flags)
}

// tupleSize is the serialised size appendTuple will produce.
func tupleSize(t stepTuple) int {
	n := 1 + 3
	for _, u := range [2]uint64{zigzag(int64(t.dAddr)), zigzag(int64(int32(t.dRef)))} {
		for {
			n++
			if u < 0x80 {
				break
			}
			u >>= 7
		}
	}
	return n
}

// decodeTupleEntry reads one dictionary entry from b at pos.
func decodeTupleEntry(b []byte, pos int) (stepTuple, int, error) {
	var t stepTuple
	if pos >= len(b) {
		return t, 0, fmt.Errorf("truncated lookback")
	}
	t.look = b[pos]
	pos++
	ua, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return t, 0, fmt.Errorf("bad Δaddr varint")
	}
	pos += n
	ur, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return t, 0, fmt.Errorf("bad ΔrefID varint")
	}
	pos += n
	if pos+3 > len(b) {
		return t, 0, fmt.Errorf("truncated tuple tail")
	}
	t.dAddr = uint64(unzigzag(ua))
	t.dRef = uint32(unzigzag(ur))
	t.gap, t.size, t.flags = b[pos], b[pos+1], b[pos+2]
	return t, pos + 3, nil
}

// encSite is the encoder's per-refID recurrence record: where the site
// last appeared in the current chunk. The epoch stamp makes the per-chunk
// reset O(1).
type encSite struct {
	pos   int32
	epoch uint32
}

// tupleStat tracks one distinct step tuple during chunk encoding.
type tupleStat struct {
	t     stepTuple
	count int32
	first int32 // record index of first occurrence (deterministic tie-break)
	idx   int16 // assigned dictionary index, -1 = escape
}

// StreamWriter encodes records into an SCTZ stream incrementally, so a
// trace source (a generator, a din import, a capture) can be converted
// without ever materialising it. The header is written immediately with an
// unknown record count; Close flushes the final partial chunk and the
// end-of-stream marker. Not safe for concurrent use.
type StreamWriter struct {
	bw     *bufio.Writer
	pend   []Record
	total  uint64
	sites  []encSite
	epoch  uint32
	ring   [sctzRingSize]uint64
	closed bool
	err    error // sticky: the first write error, returned ever after

	// per-chunk encode scratch, reused across chunks
	stats   []tupleStat
	lookup  map[stepTuple]int32
	recStat []int32 // per record: index into stats
	order   []int32
	dictBuf []byte
	idxBuf  []byte
	escBuf  []byte
}

// NewStreamWriter writes the stream header (with an unknown record count)
// and returns a writer ready for Write calls. The caller must Close it to
// terminate the stream.
func NewStreamWriter(w io.Writer, name string) (*StreamWriter, error) {
	return newStreamWriter(w, name, sctzUnknownTotal)
}

func newStreamWriter(w io.Writer, name string, total uint64) (*StreamWriter, error) {
	if len(name) > 0xffff {
		return nil, fmt.Errorf("trace: name too long (%d bytes)", len(name))
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	hdr := make([]byte, 0, len(sctzMagic)+4+len(name)+8)
	hdr = append(hdr, sctzMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, sctzVersion)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.LittleEndian.AppendUint64(hdr, total)
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	return &StreamWriter{
		bw:     bw,
		pend:   make([]Record, 0, sctzChunkRecords),
		sites:  make([]encSite, sctzSiteCap),
		lookup: make(map[stepTuple]int32),
	}, nil
}

// Write buffers recs and flushes full chunks. The slice may be reused by
// the caller after Write returns.
func (w *StreamWriter) Write(recs []Record) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		w.err = fmt.Errorf("trace: write to closed SCTZ writer")
		return w.err
	}
	for len(recs) > 0 {
		n := min(len(recs), sctzChunkRecords-len(w.pend))
		w.pend = append(w.pend, recs[:n]...)
		recs = recs[n:]
		if len(w.pend) == sctzChunkRecords {
			if err := w.flushChunk(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Count returns the number of records written so far.
func (w *StreamWriter) Count() uint64 { return w.total + uint64(len(w.pend)) }

// Close flushes the final partial chunk, writes the end-of-stream marker
// and flushes the underlying writer. Closing an already-closed writer
// returns the sticky error, if any.
func (w *StreamWriter) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.pend) > 0 {
		if err := w.flushChunk(); err != nil {
			return err
		}
	}
	var marker [8]byte // count 0, payload length 0
	if _, err := w.bw.Write(marker[:]); err != nil {
		w.err = err
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// flushChunk encodes and writes the pending records as one chunk.
func (w *StreamWriter) flushChunk() error {
	recs := w.pend
	w.epoch++
	epoch := w.epoch
	sites := w.sites
	w.ring = [sctzRingSize]uint64{} // the decoder's ring starts zeroed per chunk

	// Pass 1: reduce each record to its step tuple and count distinct
	// tuples. The ring mirrors the decoder's exactly — same zeroed start,
	// same update rule — so any lookback the encoder picks inverts
	// bit-for-bit; the per-site table is only the heuristic for picking a
	// lookback that makes tuples recur.
	w.stats = w.stats[:0]
	clear(w.lookup)
	w.recStat = w.recStat[:0]
	prevRef := uint32(0)
	for i := range recs {
		r := &recs[i]
		look := 1
		if ref := r.RefID; ref < sctzSiteCap {
			if s := &sites[ref]; s.epoch == epoch {
				if d := i - int(s.pos); d <= 0xFF {
					look = d
				}
			}
			sites[ref] = encSite{pos: int32(i), epoch: epoch}
		}
		t := stepTuple{
			dAddr: r.Addr - w.ring[(i-look)&(sctzRingSize-1)],
			dRef:  r.RefID - prevRef,
			look:  uint8(look),
			gap:   r.Gap,
			size:  r.Size,
			flags: packFlags(*r),
		}
		w.ring[i&(sctzRingSize-1)] = r.Addr
		prevRef = r.RefID
		si, ok := w.lookup[t]
		if !ok {
			si = int32(len(w.stats))
			w.stats = append(w.stats, tupleStat{t: t, first: int32(i), idx: -1})
			w.lookup[t] = si
		}
		w.stats[si].count++
		w.recStat = append(w.recStat, si)
	}

	// Dictionary selection: a tuple earns a slot when indexing it beats
	// escaping each occurrence (escape: 15 bytes against the entry's
	// serialised size), best payoff first, first occurrence breaking ties
	// so the encoding stays deterministic, capped at 255 entries.
	benefit := func(s *tupleStat) int32 {
		return s.count*escapeRecordSize - int32(tupleSize(s.t))
	}
	w.order = w.order[:0]
	for i := range w.stats {
		if benefit(&w.stats[i]) > 0 {
			w.order = append(w.order, int32(i))
		}
	}
	sort.Slice(w.order, func(a, b int) bool {
		sa, sb := &w.stats[w.order[a]], &w.stats[w.order[b]]
		if ba, bb := benefit(sa), benefit(sb); ba != bb {
			return ba > bb
		}
		return sa.first < sb.first
	})
	if len(w.order) > sctzMaxDict {
		w.order = w.order[:sctzMaxDict]
	}
	w.dictBuf = append(w.dictBuf[:0], byte(len(w.order)))
	for di, si := range w.order {
		w.stats[si].idx = int16(di)
		w.dictBuf = appendTuple(w.dictBuf, w.stats[si].t)
	}

	// Pass 2: emit the index plane (one byte per record) and the escape
	// plane (literal flat-layout records for dictionary misses).
	w.idxBuf = w.idxBuf[:0]
	w.escBuf = w.escBuf[:0]
	for ri, si := range w.recStat {
		st := &w.stats[si]
		if st.idx >= 0 {
			w.idxBuf = append(w.idxBuf, byte(st.idx))
		} else {
			w.idxBuf = append(w.idxBuf, sctzEscape)
			r := &recs[ri]
			w.escBuf = binary.LittleEndian.AppendUint64(w.escBuf, r.Addr)
			w.escBuf = binary.LittleEndian.AppendUint32(w.escBuf, r.RefID)
			w.escBuf = append(w.escBuf, r.Gap, r.Size, packFlags(*r))
		}
	}

	payloadLen := 3*8 + len(w.dictBuf) + len(w.idxBuf) + len(w.escBuf)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(recs)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(payloadLen))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.err = err
		return err
	}
	for _, plane := range [3][]byte{w.dictBuf, w.idxBuf, w.escBuf} {
		var ph [8]byte
		binary.LittleEndian.PutUint32(ph[0:4], uint32(len(plane)))
		binary.LittleEndian.PutUint32(ph[4:8], crc32.Checksum(plane, crcTable))
		if _, err := w.bw.Write(ph[:]); err != nil {
			w.err = err
			return err
		}
		if _, err := w.bw.Write(plane); err != nil {
			w.err = err
			return err
		}
	}
	w.total += uint64(len(recs))
	w.pend = w.pend[:0]
	return nil
}

// escapeRecordSize is the flat v2 record layout the escape plane reuses.
const escapeRecordSize = recordSize

// WriteSCTZ serialises the trace in the compressed chunked format. The
// header carries the exact record count; use a StreamWriter when the count
// is not known in advance.
func WriteSCTZ(w io.Writer, t *Trace) error {
	sw, err := newStreamWriter(w, t.Name, uint64(len(t.Records)))
	if err != nil {
		return err
	}
	if err := sw.Write(t.Records); err != nil {
		return err
	}
	return sw.Close()
}

// Decoded records travel through the hot loop as three packed 64-bit
// words rather than Record fields:
//
//	w0: Addr
//	w1: RefID (bits 0-31) | Gap (32-39) | Size (40-47) | Write (48-55) |
//	    Temporal (56-63)
//	w2: Spatial (bits 0-7) | VirtualHint (8-15) | SoftwarePrefetch (16-23)
//
// with bools as 0/1 bytes and all other bits zero. The convention is
// defined by these shifts (endian-independent); it is chosen to coincide
// with Record's little-endian memory layout so storeRecord can write a
// record as three word stores on those targets (sctz_store_le.go).

// storeRecordPortable materialises a packed record field by field. It is
// the portable mirror of the little-endian fast path and the executable
// definition of the word convention; a unit test pins the two together.
func storeRecordPortable(d *Record, w0, w1, w2 uint64) {
	*d = Record{
		Addr:             w0,
		RefID:            uint32(w1),
		Gap:              uint8(w1 >> 32),
		Size:             uint8(w1 >> 40),
		Write:            uint8(w1>>48) != 0,
		Temporal:         uint8(w1>>56) != 0,
		Spatial:          uint8(w2) != 0,
		VirtualHint:      uint8(w2 >> 8),
		SoftwarePrefetch: uint8(w2>>16) != 0,
	}
}

// flagPacked maps a wire flags byte to its packed-word contribution:
// [0] is w1's Write/Temporal bits, [1] is the complete w2.
var flagPacked = func() (t [256][2]uint64) {
	b := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	for f := range t {
		p := &flagProto[f]
		t[f][0] = b(p.Write)<<48 | b(p.Temporal)<<56
		t[f][1] = b(p.Spatial) | uint64(p.VirtualHint)<<8 | b(p.SoftwarePrefetch)<<16
	}
	return
}()

// escapeW1Mask keeps a raw escape record's RefID/Gap/Size bits when
// shifting the second escape word into w1 position, dropping the flags
// byte that flagPacked replaces.
const escapeW1Mask = (uint64(1) << 48) - 1

// dictEntry is a decoded dictionary tuple with the flag- and gap/size-
// derived packed words prefilled, so a dictionary hit is two word ORs plus
// the address/refID arithmetic. 32 bytes, so dict indexing is a shift and
// entries never straddle cache lines.
type dictEntry struct {
	w1    uint64 // packed w1 with the RefID bits zero
	w2    uint64
	dAddr uint64
	dRef  uint32
	look  uint8
	_     [3]byte
}

// StreamReader decodes an SCTZ stream chunk by chunk. It implements the
// same ReadBatch contract as the flat Reader (see BatchReader), holding
// only one chunk's planes plus the fixed-size history ring in memory, so
// arbitrarily large traces stream in O(batch) space. Errors carry the byte
// offset into the stream at which the problem was found. The cumulative
// record count across chunks is capped by MaxRecords — a hostile stream
// announcing modest chunks forever hits ErrTooLarge, the same budget the
// flat header check enforces up front.
type StreamReader struct {
	br     peekReader
	name   string
	total  uint64 // sctzUnknownTotal when the header did not say
	read   uint64 // records accepted across chunk headers
	budget uint64 // cumulative record cap, MaxRecords by default
	chunks uint64
	offset int64
	done   bool
	err    error // sticky

	// current chunk state
	dict    []dictEntry
	idx     []byte // one index byte per record; may alias the source buffer
	esc     []byte
	escPos  int
	left    int // records not yet delivered from this chunk
	pos     int // records already delivered from this chunk
	prevRef uint32
	ring    [sctzRingSize]uint64
	payload []byte // owned copy when the source window cannot serve a view
}

// NewStreamReader parses the SCTZ header and positions the reader before
// the first chunk. Headers announcing more than MaxRecords records are
// rejected with ErrTooLarge.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	return newStreamReader(bufio.NewReaderSize(r, 1<<16))
}

// NewStreamReaderBytes is NewStreamReader for a stream already resident in
// memory (or memory-mapped): chunk planes are decoded as views into data
// with no staging copy.
func NewStreamReaderBytes(data []byte) (*StreamReader, error) {
	return newStreamReader(&bytesPeeker{data: data})
}

func newStreamReader(br peekReader) (*StreamReader, error) {
	offset := int64(0)
	head := make([]byte, len(sctzMagic)+4)
	if n, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading sctz header at byte offset %d: %w", offset+int64(n), err)
	}
	offset += int64(len(head))
	if string(head[:4]) != sctzMagic {
		return nil, fmt.Errorf("%w: bad sctz magic at byte offset 0", ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != sctzVersion {
		return nil, fmt.Errorf("%w: unsupported sctz version %d at byte offset 4", ErrBadFormat, v)
	}
	nameLen := int(binary.LittleEndian.Uint16(head[6:8]))
	name := make([]byte, nameLen)
	if n, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading sctz name at byte offset %d: %w", offset+int64(n), err)
	}
	offset += int64(nameLen)
	var cnt [8]byte
	if n, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("trace: reading sctz count at byte offset %d: %w", offset+int64(n), err)
	}
	total := binary.LittleEndian.Uint64(cnt[:])
	if total != sctzUnknownTotal && total > MaxRecords {
		return nil, fmt.Errorf("%w: header at byte offset %d announces %d records (budget %d)",
			ErrTooLarge, offset, total, uint64(MaxRecords))
	}
	offset += int64(len(cnt))
	return &StreamReader{
		br:     br,
		name:   string(name),
		total:  total,
		budget: MaxRecords,
		offset: offset,
	}, nil
}

// Name returns the trace name from the header.
func (r *StreamReader) Name() string { return r.name }

// Len returns the total record count announced by the header, or -1 when
// the stream was written without one (StreamWriter).
func (r *StreamReader) Len() int {
	if r.total == sctzUnknownTotal {
		return -1
	}
	return int(r.total)
}

// Offset returns the number of bytes consumed from the stream so far.
func (r *StreamReader) Offset() int64 { return r.offset }

// Chunks returns the number of chunks decoded so far.
func (r *StreamReader) Chunks() uint64 { return r.chunks }

// fail records err as the reader's sticky error and returns it: after any
// decode error every later ReadBatch call reports the same failure instead
// of resynchronising into a corrupt stream.
func (r *StreamReader) fail(err error) error {
	r.err = err
	return err
}

// nextChunk reads and validates the next chunk header and payload, leaving
// the plane cursors ready for decodeInto. It returns io.EOF (without
// setting the sticky error) at a well-formed end-of-stream marker.
func (r *StreamReader) nextChunk() error {
	var hdr [8]byte
	hdrOff := r.offset
	if n, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // the marker chunk is mandatory
		}
		return r.fail(fmt.Errorf("trace: reading sctz chunk %d header at byte offset %d: %w",
			r.chunks, hdrOff+int64(n), err))
	}
	r.offset += 8
	count := binary.LittleEndian.Uint32(hdr[0:4])
	payloadLen := binary.LittleEndian.Uint32(hdr[4:8])
	if count == 0 {
		if payloadLen != 0 {
			return r.fail(fmt.Errorf("%w: end marker at byte offset %d carries %d payload bytes",
				ErrBadFormat, hdrOff, payloadLen))
		}
		if r.total != sctzUnknownTotal && r.read != r.total {
			return r.fail(fmt.Errorf("%w: stream ended at byte offset %d after %d records; header announced %d",
				ErrBadFormat, hdrOff, r.read, r.total))
		}
		r.done = true
		return io.EOF
	}
	if count > maxSCTZChunkRecords {
		return r.fail(fmt.Errorf("%w: chunk %d at byte offset %d announces %d records (max %d)",
			ErrBadFormat, r.chunks, hdrOff, count, maxSCTZChunkRecords))
	}
	if r.read+uint64(count) > r.budget {
		return r.fail(fmt.Errorf("%w: chunk %d at byte offset %d pushes the cumulative record count to %d (budget %d)",
			ErrTooLarge, r.chunks, hdrOff, r.read+uint64(count), r.budget))
	}
	if r.total != sctzUnknownTotal && r.read+uint64(count) > r.total {
		return r.fail(fmt.Errorf("%w: chunk %d at byte offset %d carries records beyond the announced total %d",
			ErrBadFormat, r.chunks, hdrOff, r.total))
	}
	if payloadLen > maxSCTZChunkPayload {
		return r.fail(fmt.Errorf("%w: chunk %d at byte offset %d announces %d payload bytes (max %d)",
			ErrBadFormat, r.chunks, hdrOff, payloadLen, maxSCTZChunkPayload))
	}
	if payloadLen < 3*8+1+count { // three plane frames, dict count byte, one index byte per record
		return r.fail(fmt.Errorf("%w: chunk %d at byte offset %d announces %d payload bytes, too few for %d records",
			ErrBadFormat, r.chunks, hdrOff, payloadLen, count))
	}

	// Borrow the payload from the source window when it fits (always, for
	// resident bytes), else copy it into the reader-owned buffer. A
	// borrowed view stays valid until the next read from the source, which
	// happens only after this chunk is fully decoded.
	n := int(payloadLen)
	var payload []byte
	raw, peekErr := r.br.Peek(n)
	switch {
	case len(raw) >= n:
		payload = raw[:n]
		if _, err := r.br.Discard(n); err != nil {
			return r.fail(fmt.Errorf("trace: discarding %d peeked bytes: %w", n, err))
		}
	case peekErr == bufio.ErrBufferFull:
		// Copy in bounded steps with geometric growth: a hostile length
		// field backed by a truncated stream costs one step of work, not a
		// maxSCTZChunkPayload allocation.
		r.payload = r.payload[:0]
		for len(r.payload) < n {
			start := len(r.payload)
			step := min(n-start, 1<<20)
			if cap(r.payload) < start+step {
				grown := make([]byte, start+step, min(n, max(2*(start+step), 1<<16)))
				copy(grown, r.payload)
				r.payload = grown
			} else {
				r.payload = r.payload[:start+step]
			}
			if m, err := io.ReadFull(r.br, r.payload[start:]); err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return r.fail(fmt.Errorf("trace: reading sctz chunk %d payload at byte offset %d: %w",
					r.chunks, r.offset+int64(start+m), err))
			}
		}
		payload = r.payload
	default:
		return r.fail(fmt.Errorf("trace: reading sctz chunk %d payload at byte offset %d: %w",
			r.chunks, r.offset+int64(len(raw)), io.ErrUnexpectedEOF))
	}

	// Split the payload into its three checksummed planes.
	var planes [3][]byte
	pos := 0
	for i, name := range [3]string{"dict", "index", "escape"} {
		if pos+8 > n {
			return r.fail(fmt.Errorf("%w: chunk %d at byte offset %d: truncated %s plane header",
				ErrBadFormat, r.chunks, hdrOff, name))
		}
		planeLen := int(binary.LittleEndian.Uint32(payload[pos : pos+4]))
		sum := binary.LittleEndian.Uint32(payload[pos+4 : pos+8])
		pos += 8
		if planeLen > n-pos {
			return r.fail(fmt.Errorf("%w: chunk %d at byte offset %d: %s plane length %d overruns the payload",
				ErrBadFormat, r.chunks, hdrOff, name, planeLen))
		}
		planes[i] = payload[pos : pos+planeLen]
		pos += planeLen
		if got := crc32.Checksum(planes[i], crcTable); got != sum {
			return r.fail(fmt.Errorf("%w: chunk %d at byte offset %d: %s plane checksum mismatch (stored %08x, computed %08x)",
				ErrBadFormat, r.chunks, hdrOff, name, sum, got))
		}
	}
	if pos != n {
		return r.fail(fmt.Errorf("%w: chunk %d at byte offset %d: %d trailing payload bytes after the planes",
			ErrBadFormat, r.chunks, hdrOff, n-pos))
	}
	dictPlane, idxPlane, escPlane := planes[0], planes[1], planes[2]
	if len(idxPlane) != int(count) {
		return r.fail(fmt.Errorf("%w: chunk %d at byte offset %d: index plane is %d bytes for %d records",
			ErrBadFormat, r.chunks, hdrOff, len(idxPlane), count))
	}
	if len(escPlane)%escapeRecordSize != 0 {
		return r.fail(fmt.Errorf("%w: chunk %d at byte offset %d: escape plane is %d bytes, not a whole number of records",
			ErrBadFormat, r.chunks, hdrOff, len(escPlane)))
	}
	if len(dictPlane) < 1 {
		return r.fail(fmt.Errorf("%w: chunk %d at byte offset %d: empty dict plane", ErrBadFormat, r.chunks, hdrOff))
	}
	dictN := int(dictPlane[0])
	r.dict = r.dict[:0]
	dp := 1
	for i := 0; i < dictN; i++ {
		t, next, err := decodeTupleEntry(dictPlane, dp)
		if err != nil {
			return r.fail(fmt.Errorf("%w: chunk %d at byte offset %d: dict entry %d: %v",
				ErrBadFormat, r.chunks, hdrOff, i, err))
		}
		dp = next
		r.dict = append(r.dict, dictEntry{
			w1:    uint64(t.gap)<<32 | uint64(t.size)<<40 | flagPacked[t.flags][0],
			w2:    flagPacked[t.flags][1],
			dAddr: t.dAddr,
			dRef:  t.dRef,
			look:  t.look,
		})
	}
	if dp != len(dictPlane) {
		return r.fail(fmt.Errorf("%w: chunk %d at byte offset %d: %d trailing dict plane bytes",
			ErrBadFormat, r.chunks, hdrOff, len(dictPlane)-dp))
	}

	r.idx = idxPlane
	r.esc = escPlane
	r.escPos = 0
	r.left = int(count)
	r.pos = 0
	r.prevRef = 0
	r.ring = [sctzRingSize]uint64{}
	r.offset += int64(n)
	r.read += uint64(count)
	r.chunks++
	return nil
}

// ReadBatch decodes up to len(dst) records into dst and returns the number
// decoded; after the last record the next call returns (0, io.EOF). The
// contract matches Reader.ReadBatch: n > 0 with err != nil can occur
// together when a chunk boundary reveals corruption or truncation.
func (r *StreamReader) ReadBatch(dst []Record) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n := 0
	for n < len(dst) {
		if r.left == 0 {
			if r.done {
				break
			}
			if err := r.nextChunk(); err != nil {
				if err == io.EOF {
					break
				}
				return n, err
			}
		}
		m, err := r.decodeInto(dst[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	if n == 0 {
		if r.done {
			return 0, io.EOF
		}
		return 0, nil
	}
	return n, nil
}

// decodeInto materialises up to len(dst) records from the current chunk.
// This loop is the streaming pipeline's hot path: the index and
// destination windows are resliced to the same length up front so the
// per-record loads and stores run bounds-check-free; a dictionary hit is
// two prepacked word ORs, one masked ring load and one wrapping add; an
// escape is the flat format's two-overlapping-loads decode shifted into
// packed position. Either way the record lands via storeRecord's three
// word stores — fewer stores per record than the flat decoder's field
// writes, which is where the format wins its decode-rate target. Both
// arms update the ring and the previous refID, and neither needs a
// validity branch: every lookback masks into the ring and refID
// arithmetic wraps mod 2^32, so any checksum-clean chunk decodes
// deterministically.
func (r *StreamReader) decodeInto(dst []Record) (int, error) {
	n := min(len(dst), r.left)
	ip := r.pos
	tail := r.idx[ip : ip+n]
	dst = dst[:n]
	esc, ep := r.esc, r.escPos
	dict := r.dict
	ring := &r.ring
	pos := ip
	prevRef := r.prevRef
	for i := range dst {
		d := &dst[i]
		if k := int(tail[i]); k < len(dict) {
			e := &dict[k]
			ref := prevRef + e.dRef
			addr := ring[(pos-int(e.look))&(sctzRingSize-1)] + e.dAddr
			storeRecord(d, addr, e.w1|uint64(ref), e.w2)
			ring[pos&(sctzRingSize-1)] = addr
			prevRef = ref
		} else if k == sctzEscape {
			if ep+escapeRecordSize > len(esc) {
				r.commitCursor(pos, ep, prevRef)
				return i, r.fail(fmt.Errorf("%w: chunk %d record %d: escape plane exhausted",
					ErrBadFormat, r.chunks-1, pos))
			}
			b := esc[ep : ep+escapeRecordSize]
			w0 := binary.LittleEndian.Uint64(b[:8])
			raw := binary.LittleEndian.Uint64(b[7:15])
			fp := &flagPacked[raw>>56]
			storeRecord(d, w0, raw>>8&escapeW1Mask|fp[0], fp[1])
			ep += escapeRecordSize
			ring[pos&(sctzRingSize-1)] = w0
			prevRef = uint32(raw >> 8)
		} else {
			r.commitCursor(pos, ep, prevRef)
			return i, r.fail(fmt.Errorf("%w: chunk %d record %d: index byte %d beyond the %d-entry dict",
				ErrBadFormat, r.chunks-1, pos, k, len(dict)))
		}
		pos++
	}
	r.commitCursor(pos, ep, prevRef)
	if r.left == 0 && ep != len(esc) {
		return n, r.fail(fmt.Errorf("%w: chunk %d: %d trailing escape plane bytes",
			ErrBadFormat, r.chunks-1, len(esc)-ep))
	}
	return n, nil
}

// commitCursor writes the decode cursor back to the reader.
func (r *StreamReader) commitCursor(pos, ep int, prevRef uint32) {
	r.left = len(r.idx) - pos
	r.pos = pos
	r.escPos = ep
	r.prevRef = prevRef
}

// ReadSCTZ deserialises a whole compressed trace previously written with
// WriteSCTZ or a StreamWriter.
func ReadSCTZ(r io.Reader) (*Trace, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	return ReadAll(sr)
}
