//go:build 386 || amd64 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm

package trace

import "unsafe"

// On little-endian targets the packed-word convention (see storeRecordPortable)
// coincides with Record's in-memory layout, so a decoded record lands in the
// destination slice as three 8-byte stores instead of seven field writes —
// the difference between the SCTZ hot loop beating the flat decoder and
// merely matching it. The asserts below fail the build if the struct ever
// stops lining up; the portable fallback then becomes the fix, not a rewrite.
var (
	_ [24 - unsafe.Sizeof(Record{})]byte
	_ [unsafe.Sizeof(Record{}) - 24]byte
	_ [8 - unsafe.Offsetof(Record{}.RefID)]byte
	_ [unsafe.Offsetof(Record{}.RefID) - 8]byte
	_ [12 - unsafe.Offsetof(Record{}.Gap)]byte
	_ [13 - unsafe.Offsetof(Record{}.Size)]byte
	_ [14 - unsafe.Offsetof(Record{}.Write)]byte
	_ [15 - unsafe.Offsetof(Record{}.Temporal)]byte
	_ [16 - unsafe.Offsetof(Record{}.Spatial)]byte
	_ [17 - unsafe.Offsetof(Record{}.VirtualHint)]byte
	_ [18 - unsafe.Offsetof(Record{}.SoftwarePrefetch)]byte
	_ [unsafe.Offsetof(Record{}.Gap) - 12]byte
	_ [unsafe.Offsetof(Record{}.Size) - 13]byte
	_ [unsafe.Offsetof(Record{}.Write) - 14]byte
	_ [unsafe.Offsetof(Record{}.Temporal) - 15]byte
	_ [unsafe.Offsetof(Record{}.Spatial) - 16]byte
	_ [unsafe.Offsetof(Record{}.VirtualHint) - 17]byte
	_ [unsafe.Offsetof(Record{}.SoftwarePrefetch) - 18]byte
)

// storeRecord writes a packed record (see storeRecordPortable for the word
// convention) into *d as three word stores.
func storeRecord(d *Record, w0, w1, w2 uint64) {
	p := (*[3]uint64)(unsafe.Pointer(d))
	p[0] = w0
	p[1] = w1
	p[2] = w2
}
