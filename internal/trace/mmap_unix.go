//go:build linux || darwin

package trace

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported gates the OpenFile fast path; see mmap_other.go for the
// portable stub.
const mmapSupported = true

// mmapFile maps size bytes of f read-only. The caller owns the mapping and
// must release it with munmapFile.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, fmt.Errorf("trace: cannot map %d bytes", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
}

func munmapFile(b []byte) error { return syscall.Munmap(b) }
