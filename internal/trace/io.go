package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Binary trace format:
//
//	header:  magic "SCTR" | version uint16 | name length uint16 | name bytes |
//	         record count uint64
//	record:  addr uint64 | refID uint32 | gap uint8 | size uint8 | flags uint8
//
// Flags bit layout: bit0 = write, bit1 = temporal, bit2 = spatial,
// bits 3-4 = virtual-line length hint (format v2; always 0 in v1).
// All integers are little-endian. The format is deliberately flat so that a
// multi-million-entry trace streams at memory bandwidth.

const (
	magic = "SCTR"
	// formatVersion 2 added the 2-bit virtual-line hint in flags bits
	// 3-4; version-1 streams (hint always 0) remain readable.
	formatVersion    = 2
	minReadVersion   = 1
	virtualHintShift = 3
	virtualHintMask  = 0b11 << virtualHintShift

	flagWrite      = 1 << 0
	flagTemporal   = 1 << 1
	flagSpatial    = 1 << 2
	flagSWPrefetch = 1 << 5

	recordSize = 8 + 4 + 1 + 1 + 1
)

// MaxRecords is the record-count budget a stream header may announce.
// Corrupt or hostile headers routinely carry absurd counts; rejecting them
// up front bounds both memory (Read's preallocation) and the time a
// streaming consumer can be made to spend before hitting the inevitable
// truncation error.
const MaxRecords = 1 << 31

// ErrBadFormat is returned when a trace stream does not start with the
// expected magic bytes or uses an unsupported version.
var ErrBadFormat = errors.New("trace: bad format")

// ErrTooLarge is returned when a stream header announces more records than
// the MaxRecords budget.
var ErrTooLarge = errors.New("trace: stream exceeds record budget")

// Write serialises the trace to w.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:2], formatVersion)
	if len(t.Name) > 0xffff {
		return fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(len(t.Name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(t.Records)))
	if _, err := bw.Write(cnt[:]); err != nil {
		return err
	}
	var buf [recordSize]byte
	for _, r := range t.Records {
		binary.LittleEndian.PutUint64(buf[0:8], r.Addr)
		binary.LittleEndian.PutUint32(buf[8:12], r.RefID)
		buf[12] = r.Gap
		buf[13] = r.Size
		buf[14] = packFlags(r)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func packFlags(r Record) byte {
	var f byte
	if r.Write {
		f |= flagWrite
	}
	if r.Temporal {
		f |= flagTemporal
	}
	if r.Spatial {
		f |= flagSpatial
	}
	f |= (r.VirtualHint & 0b11) << virtualHintShift
	if r.SoftwarePrefetch {
		f |= flagSWPrefetch
	}
	return f
}

// peekReader is the buffered-source abstraction Reader decodes from: a
// bufio.Reader for streaming sources (NewReader), a bytesPeeker serving a
// resident byte slice with no staging copy (NewReaderBytes).
type peekReader interface {
	io.Reader
	Peek(n int) ([]byte, error)
	Discard(n int) (int, error)
}

// bytesPeeker implements peekReader directly over an in-memory slice. Peek
// returns sub-slices of the original data, so ReadBatch decodes with zero
// copies between the serialised bytes and the Record structs.
type bytesPeeker struct {
	data []byte
	pos  int
}

func (p *bytesPeeker) Read(b []byte) (int, error) {
	n := copy(b, p.data[p.pos:])
	p.pos += n
	if n == 0 && len(b) > 0 {
		return 0, io.EOF
	}
	return n, nil
}

func (p *bytesPeeker) Peek(n int) ([]byte, error) {
	rest := p.data[p.pos:]
	if len(rest) < n {
		return rest, io.EOF
	}
	return rest[:n], nil
}

func (p *bytesPeeker) Discard(n int) (int, error) {
	if rest := len(p.data) - p.pos; n > rest {
		p.pos = len(p.data)
		return rest, io.EOF
	}
	p.pos += n
	return n, nil
}

// Reader streams a serialised trace record by record, so multi-gigabyte
// traces can be simulated without holding them in memory. Create one with
// NewReader (any source) or NewReaderBytes (resident data, no buffer
// copies) and pull records with Next or, for throughput, in chunks with
// ReadBatch, until io.EOF. Errors carry the byte offset into the stream at
// which the problem was found.
type Reader struct {
	br        peekReader
	name      string
	remaining uint64
	total     uint64
	offset    int64 // bytes consumed from the underlying stream
	buf       [recordSize]byte
}

// NewReader parses the stream header and positions the reader at the first
// record. Streams announcing more than MaxRecords records are rejected
// with ErrTooLarge.
func NewReader(r io.Reader) (*Reader, error) {
	return newReader(bufio.NewReaderSize(r, 1<<16))
}

// NewReaderBytes is NewReader for a trace already resident in memory: the
// records are decoded straight from data with no intermediate buffer, the
// fastest way to drive SimulateStream (used by the perf harness, where the
// trace bytes are pinned in RAM so disk speed cannot pollute the kernel
// measurement).
func NewReaderBytes(data []byte) (*Reader, error) {
	return newReader(&bytesPeeker{data: data})
}

func newReader(br peekReader) (*Reader, error) {
	offset := int64(0)
	head := make([]byte, len(magic)+4)
	if n, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header at byte offset %d: %w", offset+int64(n), err)
	}
	offset += int64(len(head))
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic at byte offset 0", ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v < minReadVersion || v > formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d at byte offset 4", ErrBadFormat, v)
	}
	nameLen := int(binary.LittleEndian.Uint16(head[6:8]))
	name := make([]byte, nameLen)
	if n, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name at byte offset %d: %w", offset+int64(n), err)
	}
	offset += int64(nameLen)
	var cnt [8]byte
	if n, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("trace: reading count at byte offset %d: %w", offset+int64(n), err)
	}
	offset += int64(len(cnt))
	n := binary.LittleEndian.Uint64(cnt[:])
	if n > MaxRecords {
		return nil, fmt.Errorf("%w: header at byte offset %d announces %d records (budget %d)",
			ErrTooLarge, offset-int64(len(cnt)), n, uint64(MaxRecords))
	}
	return &Reader{br: br, name: string(name), remaining: n, total: n, offset: offset}, nil
}

// Name returns the trace name from the header.
func (r *Reader) Name() string { return r.name }

// Len returns the total number of records announced by the header.
func (r *Reader) Len() int { return int(r.total) }

// Offset returns the number of bytes consumed from the stream so far.
func (r *Reader) Offset() int64 { return r.offset }

// Next returns the next record, or io.EOF after the last one. A stream
// shorter than its header's count yields io.ErrUnexpectedEOF with the byte
// offset of the truncation.
func (r *Reader) Next() (Record, error) {
	if r.remaining == 0 {
		return Record{}, io.EOF
	}
	if n, err := io.ReadFull(r.br, r.buf[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, fmt.Errorf("trace: reading record %d at byte offset %d: %w",
			r.total-r.remaining, r.offset+int64(n), err)
	}
	r.offset += recordSize
	r.remaining--
	buf := r.buf[:]
	return Record{
		Addr:             binary.LittleEndian.Uint64(buf[0:8]),
		RefID:            binary.LittleEndian.Uint32(buf[8:12]),
		Gap:              buf[12],
		Size:             buf[13],
		Write:            buf[14]&flagWrite != 0,
		Temporal:         buf[14]&flagTemporal != 0,
		Spatial:          buf[14]&flagSpatial != 0,
		VirtualHint:      (buf[14] & virtualHintMask) >> virtualHintShift,
		SoftwarePrefetch: buf[14]&flagSWPrefetch != 0,
	}, nil
}

// flagProto maps a record's flags byte to a Record with the five
// flag-derived fields prefilled, so the ReadBatch decode loop unpacks the
// byte with a single table load (6 KiB, L1-resident) instead of five
// mask-and-branch sequences.
var flagProto = func() (t [256]Record) {
	for f := 0; f < 256; f++ {
		t[f] = Record{
			Write:            f&flagWrite != 0,
			Temporal:         f&flagTemporal != 0,
			Spatial:          f&flagSpatial != 0,
			VirtualHint:      uint8(f&virtualHintMask) >> virtualHintShift,
			SoftwarePrefetch: f&flagSWPrefetch != 0,
		}
	}
	return t
}()

// BatchSize is the record count of the pooled batches handed out by
// GetBatch, and the recommended chunk size for ReadBatch: big enough to
// amortise the per-call overhead to well under a nanosecond per record,
// small enough (2048 records, ~64 KiB decoded) to stay cache-resident.
const BatchSize = 2048

// batchPool recycles ReadBatch destination slices so that streaming
// consumers (core.SimulateStream, Read, the perf harness) perform no
// per-chunk allocations in steady state. Pointers-to-slice avoid the
// allocation that storing a bare slice header in an interface would cost.
var batchPool = sync.Pool{
	New: func() interface{} {
		b := make([]Record, BatchSize)
		return &b
	},
}

// GetBatch returns a pooled BatchSize-record slice for use as a ReadBatch
// destination. Return it with PutBatch when done.
func GetBatch() *[]Record { return batchPool.Get().(*[]Record) }

// PutBatch returns a batch obtained from GetBatch to the pool. Buffers
// whose capacity diverges from the pool's BatchSize shape (nil, resliced
// to a smaller backing array, or grown past it) are dropped rather than
// recycled: a short buffer would silently shrink every later ReadBatch
// that borrows it, and an oversized one defeats the cache-residency the
// batch size was chosen for. The length is reset to the full shape so a
// recycled buffer never leaks a previous caller's n.
func PutBatch(b *[]Record) {
	if b == nil || cap(*b) != BatchSize {
		return
	}
	*b = (*b)[:BatchSize]
	batchPool.Put(b)
}

// ReadBatch decodes up to len(dst) records into dst and returns the number
// decoded, which may be less than len(dst) when the buffered window is
// smaller than the request (callers just loop). After the last record has
// been delivered the next call returns (0, io.EOF). A stream shorter than
// its header's count decodes the complete records present and returns
// their count together with an io.ErrUnexpectedEOF error carrying the byte
// offset of the truncation, so n > 0 and err != nil can occur together.
//
// One ReadBatch call replaces up to len(dst) Next calls: the records are
// decoded straight out of the buffered reader's window (Peek/Discard, no
// staging copy) in a tight loop, which is what lets the streaming simulate
// path run allocation-free at memory bandwidth.
func (r *Reader) ReadBatch(dst []Record) (int, error) {
	if r.remaining == 0 {
		return 0, io.EOF
	}
	want := uint64(len(dst))
	if want > r.remaining {
		want = r.remaining
	}
	if want == 0 {
		return 0, nil
	}
	raw, peekErr := r.br.Peek(int(want) * recordSize)
	complete := len(raw) / recordSize
	if complete > int(want) {
		complete = int(want)
	}
	off := 0
	for i := range dst[:complete] {
		b := raw[off:]
		if len(b) < recordSize {
			break // unreachable; lets the loads below run check-free
		}
		// Two overlapping 8-byte loads cover the whole 15-byte record:
		// w1's bytes are addr[7] | refID[0:4] | gap | size | flags.
		w0 := binary.LittleEndian.Uint64(b[:8])
		w1 := binary.LittleEndian.Uint64(b[7:15])
		// Write the fields straight into dst[i] — building a local Record
		// and copying it makes the compiler bounce the struct through the
		// stack with narrow stores followed by a wide load, a
		// store-forwarding stall that doubles the whole loop's cost. The
		// prototype copy fills the five flag-derived fields in one move.
		d := &dst[i]
		*d = flagProto[w1>>56]
		d.Addr = w0
		d.RefID = uint32(w1 >> 8)
		d.Gap = uint8(w1 >> 40)
		d.Size = uint8(w1 >> 48)
		off += recordSize
	}
	if _, err := r.br.Discard(complete * recordSize); err != nil {
		// Unreachable: the bytes were just peeked.
		return complete, fmt.Errorf("trace: discarding %d decoded bytes: %w", complete*recordSize, err)
	}
	r.offset += int64(complete * recordSize)
	r.remaining -= uint64(complete)
	if complete == int(want) || peekErr == bufio.ErrBufferFull {
		return complete, nil
	}
	if peekErr == io.EOF || peekErr == io.ErrUnexpectedEOF {
		return complete, fmt.Errorf("trace: reading record %d at byte offset %d: %w",
			r.total-r.remaining, r.offset+int64(len(raw)-complete*recordSize), io.ErrUnexpectedEOF)
	}
	if peekErr != nil {
		return complete, fmt.Errorf("trace: reading record %d at byte offset %d: %w",
			r.total-r.remaining, r.offset, peekErr)
	}
	return complete, nil
}

// BatchReader is the streaming decode contract shared by every trace
// source: the flat binary Reader, the compressed StreamReader (sctz.go)
// and the din text importer (DinReader). ReadBatch follows
// Reader.ReadBatch's contract exactly — up to len(dst) records per call,
// (0, io.EOF) after the last one, n > 0 alongside a non-nil error when a
// problem surfaces mid-batch. Len reports the total record count when the
// source announced one, -1 otherwise; consumers must treat it as a
// preallocation hint, never a promise.
type BatchReader interface {
	Name() string
	Len() int
	ReadBatch(dst []Record) (int, error)
}

// Read deserialises a whole trace previously written with Write or
// WriteSCTZ: the leading magic selects the decoder, so every consumer of
// saved binary traces accepts both formats transparently.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, _ := br.Peek(len(magic)) // short or failed peeks fall through to the flat parser's error
	var sr BatchReader
	var err error
	if string(head) == sctzMagic {
		sr, err = newStreamReader(br)
	} else {
		sr, err = newReader(br)
	}
	if err != nil {
		return nil, err
	}
	return ReadAll(sr)
}

// ReadAll drains a BatchReader into a materialised Trace.
func ReadAll(r BatchReader) (*Trace, error) {
	// Cap the preallocation: a corrupt or hostile header must not be able
	// to demand gigabytes before a single record has been read.
	prealloc := r.Len()
	if prealloc < 0 {
		prealloc = 0
	}
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	t := &Trace{Name: r.Name(), Records: make([]Record, 0, prealloc)}
	batch := GetBatch()
	defer PutBatch(batch)
	for {
		n, err := r.ReadBatch(*batch)
		t.Records = append(t.Records, (*batch)[:n]...)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
