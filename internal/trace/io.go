package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format:
//
//	header:  magic "SCTR" | version uint16 | name length uint16 | name bytes |
//	         record count uint64
//	record:  addr uint64 | refID uint32 | gap uint8 | size uint8 | flags uint8
//
// Flags bit layout: bit0 = write, bit1 = temporal, bit2 = spatial,
// bits 3-4 = virtual-line length hint (format v2; always 0 in v1).
// All integers are little-endian. The format is deliberately flat so that a
// multi-million-entry trace streams at memory bandwidth.

const (
	magic = "SCTR"
	// formatVersion 2 added the 2-bit virtual-line hint in flags bits
	// 3-4; version-1 streams (hint always 0) remain readable.
	formatVersion    = 2
	minReadVersion   = 1
	virtualHintShift = 3
	virtualHintMask  = 0b11 << virtualHintShift

	flagWrite      = 1 << 0
	flagTemporal   = 1 << 1
	flagSpatial    = 1 << 2
	flagSWPrefetch = 1 << 5

	recordSize = 8 + 4 + 1 + 1 + 1
)

// MaxRecords is the record-count budget a stream header may announce.
// Corrupt or hostile headers routinely carry absurd counts; rejecting them
// up front bounds both memory (Read's preallocation) and the time a
// streaming consumer can be made to spend before hitting the inevitable
// truncation error.
const MaxRecords = 1 << 31

// ErrBadFormat is returned when a trace stream does not start with the
// expected magic bytes or uses an unsupported version.
var ErrBadFormat = errors.New("trace: bad format")

// ErrTooLarge is returned when a stream header announces more records than
// the MaxRecords budget.
var ErrTooLarge = errors.New("trace: stream exceeds record budget")

// Write serialises the trace to w.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:2], formatVersion)
	if len(t.Name) > 0xffff {
		return fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(len(t.Name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(t.Records)))
	if _, err := bw.Write(cnt[:]); err != nil {
		return err
	}
	var buf [recordSize]byte
	for _, r := range t.Records {
		binary.LittleEndian.PutUint64(buf[0:8], r.Addr)
		binary.LittleEndian.PutUint32(buf[8:12], r.RefID)
		buf[12] = r.Gap
		buf[13] = r.Size
		buf[14] = packFlags(r)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func packFlags(r Record) byte {
	var f byte
	if r.Write {
		f |= flagWrite
	}
	if r.Temporal {
		f |= flagTemporal
	}
	if r.Spatial {
		f |= flagSpatial
	}
	f |= (r.VirtualHint & 0b11) << virtualHintShift
	if r.SoftwarePrefetch {
		f |= flagSWPrefetch
	}
	return f
}

// Reader streams a serialised trace record by record, so multi-gigabyte
// traces can be simulated without holding them in memory. Create one with
// NewReader and pull records with Next until io.EOF. Errors carry the byte
// offset into the stream at which the problem was found.
type Reader struct {
	br        *bufio.Reader
	name      string
	remaining uint64
	total     uint64
	offset    int64 // bytes consumed from the underlying stream
	buf       [recordSize]byte
}

// NewReader parses the stream header and positions the reader at the first
// record. Streams announcing more than MaxRecords records are rejected
// with ErrTooLarge.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	offset := int64(0)
	head := make([]byte, len(magic)+4)
	if n, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header at byte offset %d: %w", offset+int64(n), err)
	}
	offset += int64(len(head))
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic at byte offset 0", ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v < minReadVersion || v > formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d at byte offset 4", ErrBadFormat, v)
	}
	nameLen := int(binary.LittleEndian.Uint16(head[6:8]))
	name := make([]byte, nameLen)
	if n, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name at byte offset %d: %w", offset+int64(n), err)
	}
	offset += int64(nameLen)
	var cnt [8]byte
	if n, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("trace: reading count at byte offset %d: %w", offset+int64(n), err)
	}
	offset += int64(len(cnt))
	n := binary.LittleEndian.Uint64(cnt[:])
	if n > MaxRecords {
		return nil, fmt.Errorf("%w: header at byte offset %d announces %d records (budget %d)",
			ErrTooLarge, offset-int64(len(cnt)), n, uint64(MaxRecords))
	}
	return &Reader{br: br, name: string(name), remaining: n, total: n, offset: offset}, nil
}

// Name returns the trace name from the header.
func (r *Reader) Name() string { return r.name }

// Len returns the total number of records announced by the header.
func (r *Reader) Len() int { return int(r.total) }

// Offset returns the number of bytes consumed from the stream so far.
func (r *Reader) Offset() int64 { return r.offset }

// Next returns the next record, or io.EOF after the last one. A stream
// shorter than its header's count yields io.ErrUnexpectedEOF with the byte
// offset of the truncation.
func (r *Reader) Next() (Record, error) {
	if r.remaining == 0 {
		return Record{}, io.EOF
	}
	if n, err := io.ReadFull(r.br, r.buf[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, fmt.Errorf("trace: reading record %d at byte offset %d: %w",
			r.total-r.remaining, r.offset+int64(n), err)
	}
	r.offset += recordSize
	r.remaining--
	buf := r.buf[:]
	return Record{
		Addr:             binary.LittleEndian.Uint64(buf[0:8]),
		RefID:            binary.LittleEndian.Uint32(buf[8:12]),
		Gap:              buf[12],
		Size:             buf[13],
		Write:            buf[14]&flagWrite != 0,
		Temporal:         buf[14]&flagTemporal != 0,
		Spatial:          buf[14]&flagSpatial != 0,
		VirtualHint:      (buf[14] & virtualHintMask) >> virtualHintShift,
		SoftwarePrefetch: buf[14]&flagSWPrefetch != 0,
	}, nil
}

// Read deserialises a whole trace previously written with Write.
func Read(r io.Reader) (*Trace, error) {
	sr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	// Cap the preallocation: a corrupt or hostile header must not be able
	// to demand gigabytes before a single record has been read.
	prealloc := sr.total
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	t := &Trace{Name: sr.Name(), Records: make([]Record, 0, prealloc)}
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Records = append(t.Records, rec)
	}
}
