package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file holds the streaming format converters: each copies a
// BatchReader to an output format one pooled batch at a time, so a
// multi-gigabyte capture converts in O(batch) memory. The source's
// ReadBatch errors propagate, so a corrupt input fails the conversion
// instead of silently truncating the output.

// CopySCTZ streams r into the compressed SCTZ format. When the source
// knows its length the header announces it; otherwise the stream is
// written open-ended (Len() == -1 for later readers).
func CopySCTZ(w io.Writer, r BatchReader) (uint64, error) {
	total := sctzUnknownTotal
	if n := r.Len(); n >= 0 {
		total = uint64(n)
	}
	sw, err := newStreamWriter(w, r.Name(), total)
	if err != nil {
		return 0, err
	}
	if err := copyBatches(sw.Write, r); err != nil {
		return sw.Count(), err
	}
	if err := sw.Close(); err != nil {
		return sw.Count(), err
	}
	if total != sctzUnknownTotal && sw.Count() != total {
		return sw.Count(), fmt.Errorf("trace: source announced %d records but yielded %d", total, sw.Count())
	}
	return sw.Count(), nil
}

// CopyFlat streams r into the flat SCTR format. The flat header carries
// the record count up front, so the source must know its length; sources
// that do not (din imports, open-ended SCTZ streams) must convert to SCTZ
// instead, or be materialised first.
func CopyFlat(w io.Writer, r BatchReader) (uint64, error) {
	n := r.Len()
	if n < 0 {
		return 0, fmt.Errorf("trace: flat output needs the record count up front and %q does not announce one; convert to sctz instead", r.Name())
	}
	name := r.Name()
	if len(name) > 0xffff {
		return 0, fmt.Errorf("trace: name too long (%d bytes)", len(name))
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	hdr := make([]byte, 0, len(magic)+4+len(name)+8)
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, formatVersion)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(n))
	if _, err := bw.Write(hdr); err != nil {
		return 0, err
	}
	var written uint64
	err := copyBatches(func(recs []Record) error {
		var buf [recordSize]byte
		for i := range recs {
			rec := &recs[i]
			binary.LittleEndian.PutUint64(buf[0:8], rec.Addr)
			binary.LittleEndian.PutUint32(buf[8:12], rec.RefID)
			buf[12] = rec.Gap
			buf[13] = rec.Size
			buf[14] = packFlags(*rec)
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
		written += uint64(len(recs))
		return nil
	}, r)
	if err != nil {
		return written, err
	}
	if written != uint64(n) {
		return written, fmt.Errorf("trace: source announced %d records but yielded %d", n, written)
	}
	return written, bw.Flush()
}

// CopyDin streams r into Dinero text (software tags and timing are lost —
// the format cannot carry them). Software-prefetch records are skipped and
// do not count toward the returned total.
func CopyDin(w io.Writer, r BatchReader) (uint64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var written uint64
	err := copyBatches(func(recs []Record) error {
		for i := range recs {
			rec := &recs[i]
			if rec.SoftwarePrefetch {
				continue
			}
			label := byte('0')
			if rec.Write {
				label = '1'
			}
			if _, err := fmt.Fprintf(bw, "%c %x\n", label, rec.Addr); err != nil {
				return err
			}
			written++
		}
		return nil
	}, r)
	if err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// copyBatches drains r through a pooled batch, handing each chunk to sink.
func copyBatches(sink func([]Record) error, r BatchReader) error {
	batch := GetBatch()
	defer PutBatch(batch)
	for {
		n, rerr := r.ReadBatch(*batch)
		if n > 0 {
			if err := sink((*batch)[:n]); err != nil {
				return err
			}
		}
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			return rerr
		}
	}
}
