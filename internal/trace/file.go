package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// NewAnyReader sniffs the stream's leading bytes and returns a streaming
// BatchReader for whichever trace format they announce: flat SCTR,
// compressed SCTZ, or — when no binary magic matches — din text (plain or
// gzip-compressed, which DinReader sniffs itself). name is used only for
// din input; the binary formats carry their own. This is the one entry
// point CLIs and servers need to accept "a trace" from a file, pipe or
// request body without being told its format.
func NewAnyReader(r io.Reader, name string) (BatchReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, _ := br.Peek(4) // a short stream falls through to the din parser
	switch {
	case string(head) == magic:
		return newReader(br)
	case string(head) == sctzMagic:
		return newStreamReader(br)
	default:
		return NewDinReader(br, name)
	}
}

// File is an open on-disk trace: a BatchReader plus the resources backing
// it. Binary-format files are memory-mapped on platforms that support it,
// so decoding runs over the page cache with no read syscalls or staging
// copies; other files (and other platforms) stream through a buffered
// reader. Close releases the mapping and the descriptor; the File must not
// be used after Close when a mapping was active.
type File struct {
	BatchReader
	f      *os.File
	mapped []byte
}

// OpenFile opens path as a trace in any supported format (see
// NewAnyReader). For din input the trace is named after the file with its
// .gz and format extensions stripped.
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	var head [4]byte
	n, _ := f.ReadAt(head[:], 0)
	if n == 4 && st.Mode().IsRegular() && mmapSupported {
		if s := string(head[:]); s == magic || s == sctzMagic {
			if data, merr := mmapFile(f, st.Size()); merr == nil {
				var br BatchReader
				if s == magic {
					br, err = NewReaderBytes(data)
				} else {
					br, err = NewStreamReaderBytes(data)
				}
				if err != nil {
					munmapFile(data)
					f.Close()
					return nil, fmt.Errorf("%s: %w", path, err)
				}
				return &File{BatchReader: br, f: f, mapped: data}, nil
			}
			// mmap refused (exotic filesystem, too large for the address
			// space): fall through to the streaming path.
		}
	}
	name := strings.TrimSuffix(filepath.Base(path), ".gz")
	name = strings.TrimSuffix(name, filepath.Ext(name))
	br, err := NewAnyReader(f, name)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &File{BatchReader: br, f: f}, nil
}

// Mapped reports whether the file is being decoded from a memory mapping.
func (f *File) Mapped() bool { return f.mapped != nil }

// Close unmaps and closes the underlying file.
func (f *File) Close() error {
	var err error
	if f.mapped != nil {
		err = munmapFile(f.mapped)
		f.mapped = nil
	}
	if cerr := f.f.Close(); err == nil {
		err = cerr
	}
	return err
}
