package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Trace {
	return &Trace{
		Name: "sample",
		Records: []Record{
			{Addr: 0x1000, RefID: 1, Gap: 0, Size: 8, Temporal: true},
			{Addr: 0x1008, RefID: 1, Gap: 2, Size: 8, Spatial: true},
			{Addr: 0x2000, RefID: 2, Gap: 3, Size: 4, Write: true},
			{Addr: 0x3000, RefID: 3, Gap: 25, Size: 8, Temporal: true, Spatial: true},
		},
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Addr: 0x10, Size: 8, Write: true, Temporal: true}
	s := r.String()
	for _, want := range []string{"W", "0x00000010", "T"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	r2 := Record{Addr: 0x10, Size: 8, Spatial: true}
	if !strings.Contains(r2.String(), "R") || !strings.Contains(r2.String(), "S") {
		t.Fatalf("String() = %q", r2.String())
	}
}

func TestCountTags(t *testing.T) {
	c := sample().CountTags()
	if c.None != 1 || c.SpatialOnly != 1 || c.TemporalOnly != 1 || c.Both != 1 {
		t.Fatalf("CountTags = %+v", c)
	}
	if c.Total() != 4 {
		t.Fatalf("Total = %d", c.Total())
	}
}

func TestStripTags(t *testing.T) {
	tr := sample()
	noT := tr.StripTags(true, false)
	if got := noT.CountTags(); got.TemporalOnly != 0 || got.Both != 0 {
		t.Fatalf("temporal tags survived: %+v", got)
	}
	if got := noT.CountTags(); got.SpatialOnly != 2 {
		t.Fatalf("spatial tags should survive: %+v", got)
	}
	// The original is untouched.
	if got := tr.CountTags(); got.Both != 1 {
		t.Fatal("StripTags mutated the original")
	}
	none := tr.StripTags(true, true)
	if got := none.CountTags(); got.None != 4 {
		t.Fatalf("all tags should be gone: %+v", got)
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip: name=%q records=%d", got.Name, len(got.Records))
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Trace{Name: ""}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Name != "" {
		t.Fatalf("empty trace round trip: %+v", got)
	}
}

func TestReadBadMagic(t *testing.T) {
	_, err := Read(strings.NewReader("NOPE\x01\x00\x00\x00"))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}

func TestReadBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // corrupt the version
	_, err := Read(bytes.NewReader(b))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}

func TestReadTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, cut := range []int{3, 7, 10, len(b) - 5} {
		if _, err := Read(bytes.NewReader(b[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint64, flags []byte) bool {
		tr := &Trace{Name: "prop"}
		for i, a := range addrs {
			var fl byte
			if i < len(flags) {
				fl = flags[i]
			}
			tr.Append(Record{
				Addr:     a,
				RefID:    uint32(i),
				Gap:      fl % 26,
				Size:     8,
				Write:    fl&1 != 0,
				Temporal: fl&2 != 0,
				Spatial:  fl&4 != 0,
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.Len() != tr.Len() {
			return false
		}
		for i := range tr.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteNameTooLong(t *testing.T) {
	tr := &Trace{Name: strings.Repeat("x", 70000)}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err == nil {
		t.Fatal("expected error for oversized name")
	}
}

func TestVirtualHintRoundTrip(t *testing.T) {
	tr := &Trace{Name: "hints"}
	for code := uint8(0); code < 4; code++ {
		tr.Append(Record{Addr: uint64(code) * 64, Size: 8, Spatial: true, VirtualHint: code})
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got.Records {
		if r.VirtualHint != uint8(i) {
			t.Fatalf("record %d hint = %d", i, r.VirtualHint)
		}
	}
}

func TestReadVersion1(t *testing.T) {
	// A v1 stream is byte-identical except for the version field and the
	// absence of hint bits; it must still load.
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 1 // pretend version 1
	got, err := Read(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	if got.Len() != sample().Len() {
		t.Fatal("v1 stream truncated")
	}
}

func TestStreamReader(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "sample" || r.Len() != tr.Len() {
		t.Fatalf("header: name=%q len=%d", r.Name(), r.Len())
	}
	for i := range tr.Records {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != tr.Records[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want io.EOF after the last record, got %v", err)
	}
	// EOF is sticky.
	if _, err := r.Next(); err != io.EOF {
		t.Fatal("EOF must be sticky")
	}
}

func TestStreamReaderTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	r, err := NewReader(bytes.NewReader(b[:len(b)-5]))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 10; i++ {
		if _, lastErr = r.Next(); lastErr != nil {
			break
		}
	}
	if lastErr == nil || errors.Is(lastErr, io.EOF) && !errors.Is(lastErr, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body must surface ErrUnexpectedEOF, got %v", lastErr)
	}
}
