package trace

import (
	"bytes"
	"testing"
)

func synthTrace(n int) *Trace {
	t := &Trace{Name: "synth"}
	for i := 0; i < n; i++ {
		t.Append(Record{
			Addr:     uint64(i) * 8,
			RefID:    uint32(i % 97),
			Gap:      uint8(1 + i%3),
			Size:     8,
			Write:    i%4 == 0,
			Temporal: i%3 == 0,
			Spatial:  i%5 == 0,
		})
	}
	return t
}

// BenchmarkNext measures the one-record-at-a-time decode path.
func BenchmarkNext(b *testing.B) {
	t := synthTrace(1 << 20)
	var buf bytes.Buffer
	if err := Write(&buf, t); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(t.Records)) * recordSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReaderBytes(data)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := r.Next(); err != nil {
				break
			}
		}
	}
}

// BenchmarkReadBatch measures the chunked decode path that SimulateStream
// and the perf harness use.
func BenchmarkReadBatch(b *testing.B) {
	t := synthTrace(1 << 20)
	var buf bytes.Buffer
	if err := Write(&buf, t); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	batch := GetBatch()
	defer PutBatch(batch)
	b.SetBytes(int64(len(t.Records)) * recordSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReaderBytes(data)
		if err != nil {
			b.Fatal(err)
		}
		for {
			n, err := r.ReadBatch(*batch)
			if n == 0 && err != nil {
				break
			}
		}
	}
}
