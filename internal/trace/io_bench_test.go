package trace

import (
	"bytes"
	"fmt"
	"testing"
)

func synthTrace(n int) *Trace {
	t := &Trace{Name: "synth"}
	for i := 0; i < n; i++ {
		t.Append(Record{
			Addr:     uint64(i) * 8,
			RefID:    uint32(i % 97),
			Gap:      uint8(1 + i%3),
			Size:     8,
			Write:    i%4 == 0,
			Temporal: i%3 == 0,
			Spatial:  i%5 == 0,
		})
	}
	return t
}

// BenchmarkNext measures the one-record-at-a-time decode path.
func BenchmarkNext(b *testing.B) {
	t := synthTrace(1 << 20)
	var buf bytes.Buffer
	if err := Write(&buf, t); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(t.Records)) * recordSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReaderBytes(data)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := r.Next(); err != nil {
				break
			}
		}
	}
}

// BenchmarkReadBatch measures the chunked decode path that SimulateStream
// and SimulateMany use, across destination sizes bracketing the pooled
// BatchSize: the decode cost per record should be flat once the per-call
// overhead is amortised, which is what justifies 2048 as the pool shape.
func BenchmarkReadBatch(b *testing.B) {
	t := synthTrace(1 << 20)
	var buf bytes.Buffer
	if err := Write(&buf, t); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	for _, size := range []int{256, 1024, 2048} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			dst := make([]Record, size)
			b.SetBytes(int64(len(t.Records)) * recordSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := NewReaderBytes(data)
				if err != nil {
					b.Fatal(err)
				}
				for {
					n, err := r.ReadBatch(dst)
					if n == 0 && err != nil {
						break
					}
				}
			}
		})
	}
}

// BenchmarkStreamReadBatch measures the SCTZ chunked decode against the
// same synthetic stream BenchmarkReadBatch uses, so the two paths compare
// directly (the official gate is the softcache-perf decode matrix).
func BenchmarkStreamReadBatch(b *testing.B) {
	t := synthTrace(1 << 20)
	var buf bytes.Buffer
	if err := WriteSCTZ(&buf, t); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Logf("flat %d B, sctz %d B (%.2fx)", len(t.Records)*recordSize, len(data),
		float64(len(t.Records)*recordSize)/float64(len(data)))
	dst := make([]Record, BatchSize)
	b.SetBytes(int64(len(t.Records)) * recordSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewStreamReaderBytes(data)
		if err != nil {
			b.Fatal(err)
		}
		for {
			n, err := r.ReadBatch(dst)
			if n == 0 && err != nil {
				break
			}
		}
	}
}
