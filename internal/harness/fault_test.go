package harness

import (
	"context"
	"os"
	"testing"

	"softcache/internal/core"
	"softcache/internal/workloads"
)

func appendLine(path, line string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(line + "\n"); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TestFaultCorpusContained is the acceptance check for fault injection:
// every corrupted/truncated/tag-flipped trace must flow through the
// trace→simulate pipeline with zero panics — framing faults rejected by
// the reader with a structured error, semantic faults absorbed by the
// simulator (under runtime invariant checks) or reported as errors.
func TestFaultCorpusContained(t *testing.T) {
	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := Corpus(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) < 10 {
		t.Fatalf("corpus too small: %d cases", len(corpus))
	}
	for _, cfgCase := range []struct {
		name string
		cfg  core.Config
	}{
		{"soft", core.Soft()},
		{"standard", core.Standard()},
		{"soft-variable", core.SoftVariable()},
	} {
		t.Run(cfgCase.name, func(t *testing.T) {
			results, err := RunFaults(context.Background(), corpus, cfgCase.cfg, Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range results {
				if r.Status == StatusPanic {
					t.Errorf("case %s: panic escaped the pipeline:\n%s", corpus[i].Name, r.FailureRecord())
					continue
				}
				if !r.OK() {
					t.Errorf("case %s: %s", corpus[i].Name, r.FailureRecord())
					continue
				}
				if !r.Value.Contained(corpus[i].WantParseError) {
					t.Errorf("case %s: outcome %+v not contained (want parse error: %v)",
						corpus[i].Name, r.Value, corpus[i].WantParseError)
				}
			}
		})
	}
}

// TestFaultCorpusDeterministic: the corpus must be reproducible so that a
// failure report identifies its input exactly.
func TestFaultCorpusDeterministic(t *testing.T) {
	tr, err := workloads.Trace("SpMV", workloads.ScaleTest, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Corpus(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Corpus(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || string(a[i].Data) != string(b[i].Data) {
			t.Fatalf("case %d differs between generations", i)
		}
	}
}

// TestInvariantPanicBecomesFailedRun: a corrupted simulator state detected
// by the runtime invariant checker surfaces as a structured failed-run
// record, not a process crash.
func TestInvariantPanicBecomesFailedRun(t *testing.T) {
	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	units := []Unit[core.Result]{{
		Key:  "sim:corrupt",
		Meta: map[string]string{"workload": "MV", "seed": "1", "fingerprint": "0x0"},
		Run: func(ctx context.Context) (core.Result, error) {
			// Simulate with checks on; then inject an impossible state by
			// panicking the way the checker does.
			_, err := core.SimulateContext(ctx, core.WithRuntimeChecks(core.Soft(), true), tr)
			if err != nil {
				return core.Result{}, err
			}
			panic("cache: invariant \"hit/miss accounting\" violated after 10 references: injected")
		},
	}}
	results, err := Run(context.Background(), units, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Status != StatusPanic {
		t.Fatalf("status = %s, want panic", results[0].Status)
	}
	if results[0].Panic == "" || results[0].Meta["workload"] != "MV" {
		t.Fatalf("failed-run record incomplete: %+v", results[0])
	}
}
