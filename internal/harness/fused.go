package harness

import (
	"context"
	"fmt"
)

// Fused is the journal value of a fused multi-configuration unit: one
// value per configuration of a group that was simulated in a single trace
// pass (core.SimulateMany). The config descriptions ride along in the
// journal so a resume can verify the group behind a key still has the
// same shape and order — without them, editing a sweep axis between runs
// would silently replay stale values under matching keys.
type Fused[T any] struct {
	Configs []string `json:"configs"`
	Values  []T      `json:"values"`
}

// At returns the value for configuration index i.
func (f Fused[T]) At(i int) T { return f.Values[i] }

// FusedUnit builds the harness unit for one fused group: run computes all
// per-config values in a single pass (one value per entry of configs, in
// order), and the journal/resume machinery treats the group as one unit —
// one journal record, one failure domain, one resume decision. The
// returned unit's Validate rejects journal entries whose recorded config
// group differs from configs, so reshaping a sweep axis invalidates
// exactly the units it touches.
func FusedUnit[T any](key string, meta map[string]string, configs []string, run func(ctx context.Context) ([]T, error)) Unit[Fused[T]] {
	return Unit[Fused[T]]{
		Key:  key,
		Meta: meta,
		Run: func(ctx context.Context) (Fused[T], error) {
			values, err := run(ctx)
			if err != nil {
				return Fused[T]{}, err
			}
			if len(values) != len(configs) {
				return Fused[T]{}, fmt.Errorf("harness: fused unit %s produced %d values for %d configs", key, len(values), len(configs))
			}
			return Fused[T]{Configs: configs, Values: values}, nil
		},
		Validate: func(f Fused[T]) error {
			if len(f.Configs) != len(configs) {
				return fmt.Errorf("journaled config group has %d entries, current group has %d", len(f.Configs), len(configs))
			}
			for i, c := range configs {
				if f.Configs[i] != c {
					return fmt.Errorf("journaled config %d is %q, current group has %q", i, f.Configs[i], c)
				}
			}
			if len(f.Values) != len(f.Configs) {
				return fmt.Errorf("journaled fused value has %d values for %d configs", len(f.Values), len(f.Configs))
			}
			return nil
		},
	}
}
