package harness

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func intUnit(key string, v int) Unit[int] {
	return Unit[int]{Key: key, Run: func(context.Context) (int, error) { return v, nil }}
}

func TestRunPreservesSubmissionOrder(t *testing.T) {
	var units []Unit[int]
	for i := 0; i < 50; i++ {
		units = append(units, intUnit(fmt.Sprintf("u%d", i), i))
	}
	results, err := Run(context.Background(), units, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.OK() || r.Value != i {
			t.Fatalf("result %d = %+v, want value %d", i, r, i)
		}
	}
	s := Summarize(results)
	if s.OK != 50 || s.Failures() != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestPanicContainment(t *testing.T) {
	units := []Unit[int]{
		intUnit("ok", 1),
		{
			Key:  "boom",
			Meta: map[string]string{"workload": "MV", "seed": "1"},
			Run:  func(context.Context) (int, error) { panic("state corrupted") },
		},
		intUnit("after", 2),
	}
	results, err := Run(context.Background(), units, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].OK() || !results[2].OK() {
		t.Fatal("healthy units must survive a sibling panic")
	}
	r := results[1]
	if r.Status != StatusPanic {
		t.Fatalf("status = %s, want panic", r.Status)
	}
	if r.Panic != "state corrupted" || !strings.Contains(r.Stack, "harness") {
		t.Fatalf("panic record incomplete: %+v", r)
	}
	rec := r.FailureRecord()
	for _, want := range []string{"boom", "panic", "workload=MV", "seed=1"} {
		if !strings.Contains(rec, want) {
			t.Fatalf("failure record missing %q:\n%s", want, rec)
		}
	}
}

func TestFailedUnitDoesNotStopOthers(t *testing.T) {
	units := []Unit[int]{
		{Key: "bad", Run: func(context.Context) (int, error) { return 0, errors.New("nope") }},
		intUnit("good", 7),
	}
	results, err := Run(context.Background(), units, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Status != StatusFailed || results[0].Err == nil {
		t.Fatalf("results[0] = %+v", results[0])
	}
	if !results[1].OK() || results[1].Value != 7 {
		t.Fatalf("results[1] = %+v", results[1])
	}
}

func TestTimeout(t *testing.T) {
	units := []Unit[int]{{
		Key: "slow",
		Run: func(ctx context.Context) (int, error) {
			<-ctx.Done()
			return 0, ctx.Err()
		},
	}}
	results, err := Run(context.Background(), units, Options{Timeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Status != StatusTimeout {
		t.Fatalf("status = %s, want timeout", results[0].Status)
	}
}

func TestCancellationSkipsPendingUnits(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var ran atomic.Int32
	units := []Unit[int]{
		{Key: "first", Run: func(c context.Context) (int, error) {
			close(started)
			<-c.Done()
			return 0, c.Err()
		}},
	}
	for i := 0; i < 20; i++ {
		i := i
		units = append(units, Unit[int]{Key: fmt.Sprintf("later%d", i), Run: func(context.Context) (int, error) {
			ran.Add(1)
			return i, nil
		}})
	}
	go func() {
		<-started
		cancel()
	}()
	results, err := Run(ctx, units, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Status != StatusCanceled {
		t.Fatalf("first = %s, want canceled", results[0].Status)
	}
	s := Summarize(results)
	if s.Canceled == 0 || int(ran.Load()) != s.OK {
		t.Fatalf("summary = %+v, ran = %d", s, ran.Load())
	}
}

func TestJournalAndResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "runs.jsonl")
	var firstRuns atomic.Int32
	mk := func(counter *atomic.Int32, failEven bool) []Unit[int] {
		var units []Unit[int]
		for i := 0; i < 10; i++ {
			i := i
			units = append(units, Unit[int]{
				Key: fmt.Sprintf("point%d", i),
				Run: func(context.Context) (int, error) {
					counter.Add(1)
					if failEven && i%2 == 0 {
						return 0, fmt.Errorf("transient failure %d", i)
					}
					return i * i, nil
				},
			})
		}
		return units
	}

	// First pass: even points fail, odd points succeed and are journaled.
	results, err := Run(context.Background(), mk(&firstRuns, true), Options{Workers: 3, JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	if s := Summarize(results); s.OK != 5 || s.Failed != 5 {
		t.Fatalf("first pass summary = %+v", s)
	}
	entries, err := ReadEntries(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("journal entries = %d, want 10 (failures are journaled too)", len(entries))
	}

	// Second pass: odd points resume from the journal without re-running;
	// even points (previously failed) are retried and now succeed.
	var secondRuns atomic.Int32
	results, err = Run(context.Background(), mk(&secondRuns, false),
		Options{Workers: 3, JournalPath: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.OK() || r.Value != i*i {
			t.Fatalf("resumed result %d = %+v", i, r)
		}
		wantStatus := StatusResumed
		if i%2 == 0 {
			wantStatus = StatusOK
		}
		if r.Status != wantStatus {
			t.Fatalf("result %d status = %s, want %s", i, r.Status, wantStatus)
		}
	}
	if got := secondRuns.Load(); got != 5 {
		t.Fatalf("second pass executed %d units, want 5 (journaled runs must not recompute)", got)
	}
}

func TestResumeRequiresJournal(t *testing.T) {
	if _, err := Run(context.Background(), []Unit[int]{intUnit("a", 1)}, Options{Resume: true}); err == nil {
		t.Fatal("Resume without JournalPath must fail")
	}
}

func TestDuplicateKeysRejected(t *testing.T) {
	units := []Unit[int]{intUnit("same", 1), intUnit("same", 2)}
	if _, err := Run(context.Background(), units, Options{}); err == nil {
		t.Fatal("duplicate keys must fail")
	}
}

func TestCorruptJournalFailsLoad(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "runs.jsonl")
	if _, err := Run(context.Background(), []Unit[int]{intUnit("a", 1)}, Options{JournalPath: journal}); err != nil {
		t.Fatal(err)
	}
	// Append a broken line; resume must refuse rather than silently skip.
	if err := appendLine(journal, "{not json"); err != nil {
		t.Fatal(err)
	}
	_, err := Run(context.Background(), []Unit[int]{intUnit("a", 1)},
		Options{JournalPath: journal, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want corrupt-journal error naming line 2", err)
	}
}
