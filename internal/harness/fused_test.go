package harness

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

func fusedFloatUnit(key string, configs []string, runs *atomic.Int32) Unit[Fused[float64]] {
	return FusedUnit(key, map[string]string{"workload": "MV"}, configs,
		func(context.Context) ([]float64, error) {
			if runs != nil {
				runs.Add(1)
			}
			out := make([]float64, len(configs))
			for i := range out {
				out[i] = float64(i * i)
			}
			return out, nil
		})
}

func TestFusedUnitRoundTrip(t *testing.T) {
	configs := []string{"std/8K", "std/16K", "std/32K"}
	results, err := Run(context.Background(),
		[]Unit[Fused[float64]]{fusedFloatUnit("row:a", configs, nil)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if !r.OK() {
		t.Fatalf("fused unit failed: %+v", r)
	}
	if len(r.Value.Values) != len(configs) || r.Value.At(2) != 4 {
		t.Fatalf("fused value = %+v", r.Value)
	}
	if strings.Join(r.Value.Configs, ",") != strings.Join(configs, ",") {
		t.Fatalf("configs not journaled alongside values: %+v", r.Value)
	}
}

// TestFusedUnitValueCountMismatch: a runner that returns the wrong number
// of values is an infrastructure bug, surfaced as a failed run rather than
// silently misaligned columns.
func TestFusedUnitValueCountMismatch(t *testing.T) {
	u := FusedUnit("row:bad", nil, []string{"a", "b"},
		func(context.Context) ([]float64, error) { return []float64{1}, nil })
	results, err := Run(context.Background(), []Unit[Fused[float64]]{u}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Status != StatusFailed {
		t.Fatalf("status = %s, want failed", results[0].Status)
	}
}

// TestFusedResumeValidatesConfigGroup: a journaled fused value resumes only
// while the config group behind its key is unchanged; reshaping the group
// (different order, different members, different size) re-runs the unit.
func TestFusedResumeValidatesConfigGroup(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "runs.jsonl")
	configs := []string{"std/8K", "std/16K", "std/32K"}

	var first atomic.Int32
	if _, err := Run(context.Background(),
		[]Unit[Fused[float64]]{fusedFloatUnit("row:a", configs, &first)},
		Options{JournalPath: journal}); err != nil {
		t.Fatal(err)
	}

	// Same group: resumed, not re-run.
	var second atomic.Int32
	results, err := Run(context.Background(),
		[]Unit[Fused[float64]]{fusedFloatUnit("row:a", configs, &second)},
		Options{JournalPath: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Status != StatusResumed || second.Load() != 0 {
		t.Fatalf("unchanged group: status=%s runs=%d, want resumed/0", results[0].Status, second.Load())
	}

	// Reshaped group under the same key: the journal entry is rejected and
	// the unit re-runs with the new shape.
	reshaped := []string{"std/8K", "std/64K"}
	var third atomic.Int32
	var log strings.Builder
	results, err = Run(context.Background(),
		[]Unit[Fused[float64]]{fusedFloatUnit("row:a", reshaped, &third)},
		Options{JournalPath: journal, Resume: true, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Status != StatusOK || third.Load() != 1 {
		t.Fatalf("reshaped group: status=%s runs=%d, want ok/1", results[0].Status, third.Load())
	}
	if len(results[0].Value.Values) != len(reshaped) {
		t.Fatalf("reshaped value = %+v", results[0].Value)
	}
	if !strings.Contains(log.String(), "rejected") {
		t.Fatalf("rejection not logged: %q", log.String())
	}
}

// TestValidateRejectionFallsThroughToRun covers Unit.Validate directly,
// independent of the fused wrapper.
func TestValidateRejectionFallsThroughToRun(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "runs.jsonl")
	mk := func(accept bool, runs *atomic.Int32) Unit[int] {
		return Unit[int]{
			Key: "v",
			Run: func(context.Context) (int, error) {
				runs.Add(1)
				return 7, nil
			},
			Validate: func(v int) error {
				if !accept {
					return fmt.Errorf("value %d no longer acceptable", v)
				}
				return nil
			},
		}
	}
	var a, b, c atomic.Int32
	if _, err := Run(context.Background(), []Unit[int]{mk(true, &a)}, Options{JournalPath: journal}); err != nil {
		t.Fatal(err)
	}
	results, err := Run(context.Background(), []Unit[int]{mk(true, &b)},
		Options{JournalPath: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Status != StatusResumed || b.Load() != 0 {
		t.Fatalf("accepting validator: status=%s runs=%d", results[0].Status, b.Load())
	}
	results, err = Run(context.Background(), []Unit[int]{mk(false, &c)},
		Options{JournalPath: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Status != StatusOK || c.Load() != 1 {
		t.Fatalf("rejecting validator: status=%s runs=%d, want ok/1", results[0].Status, c.Load())
	}
}
