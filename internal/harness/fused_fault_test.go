package harness

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"softcache/internal/core"
	"softcache/internal/trace"
	"softcache/internal/workloads"
)

// TestFaultCorpusFused pushes the fault-injection corpus through the fused
// kernel: each corpus case becomes one FusedUnit whose single trace pass
// drives a whole config group (core.SimulateManyTrace). The containment
// contract is the same as the per-config pipeline's — framing faults are
// rejected by the parser, semantic faults simulate or fail with an error,
// and no case may escape as a panic — but the code path is the fused
// decoder loop the service daemon uses, not the scalar one.
func TestFaultCorpusFused(t *testing.T) {
	tr, err := workloads.Trace("MV", workloads.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := Corpus(tr)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []core.Config{
		core.WithRuntimeChecks(core.Soft(), true),
		core.Standard(),
		core.Victim(),
	}
	descs := make([]string, len(cfgs))
	for i, c := range cfgs {
		descs[i] = core.Describe(c)
	}

	units := make([]Unit[Fused[float64]], len(corpus))
	for i, fc := range corpus {
		fc := fc
		units[i] = FusedUnit("fused-fault:"+fc.Name, map[string]string{"case": fc.Name}, descs,
			func(runCtx context.Context) ([]float64, error) {
				parsed, err := trace.Read(bytes.NewReader(fc.Data))
				if err != nil {
					if fc.WantParseError {
						// Rejection is the contained outcome; report a
						// sentinel row so the unit counts as ok.
						return make([]float64, len(cfgs)), nil
					}
					return nil, fmt.Errorf("unexpected parse rejection: %w", err)
				}
				if fc.WantParseError {
					return nil, fmt.Errorf("corrupt stream accepted by parser")
				}
				results, err := core.SimulateManyTrace(runCtx, cfgs, parsed)
				if err != nil {
					// A structured simulation failure is contained too.
					return make([]float64, len(cfgs)), nil
				}
				row := make([]float64, len(results))
				for j, res := range results {
					row[j] = res.AMAT()
				}
				return row, nil
			})
	}

	results, err := Run(context.Background(), units, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Status == StatusPanic {
			t.Errorf("case %s: panic escaped the fused pipeline:\n%s", corpus[i].Name, r.FailureRecord())
			continue
		}
		if !r.OK() {
			t.Errorf("case %s: %s", corpus[i].Name, r.FailureRecord())
		}
	}
}

// TestValidatePanicContained pins the resume path's panic containment: a
// Validate hook that panics on a journal value (journals are external
// input — old builds, hand edits, corruption) must reject the value and
// re-run the unit, not crash the resumed process.
func TestValidatePanicContained(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	var runs atomic.Int64
	unit := func(validate func(int) error) []Unit[int] {
		return []Unit[int]{{
			Key: "unit:v",
			Run: func(context.Context) (int, error) {
				runs.Add(1)
				return 42, nil
			},
			Validate: validate,
		}}
	}

	// Seed the journal with an ok entry.
	if _, err := Run(context.Background(), unit(nil), Options{JournalPath: journal}); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("seed run ran %d times", runs.Load())
	}

	var log bytes.Buffer
	results, err := Run(context.Background(), unit(func(int) error {
		var m map[string]int
		m["boom"]++ // nil-map write: a realistic Validate bug
		return nil
	}), Options{JournalPath: journal, Resume: true, Log: &log})
	if err != nil {
		t.Fatalf("resume crashed the harness: %v", err)
	}
	if results[0].Status != StatusOK || results[0].Value != 42 {
		t.Fatalf("unit was not re-run after panicking Validate: %+v", results[0])
	}
	if runs.Load() != 2 {
		t.Fatalf("unit ran %d times, want 2 (seed + forced re-run)", runs.Load())
	}
	if !strings.Contains(log.String(), "rejected") || !strings.Contains(log.String(), "panicked") {
		t.Fatalf("rejection not logged: %q", log.String())
	}

	// A healthy Validate still resumes from the same journal.
	results, err = Run(context.Background(), unit(func(v int) error {
		if v != 42 {
			return fmt.Errorf("unexpected value %d", v)
		}
		return nil
	}), Options{JournalPath: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Status != StatusResumed {
		t.Fatalf("status %s, want resumed", results[0].Status)
	}
	if runs.Load() != 2 {
		t.Fatalf("healthy Validate re-ran the unit (%d runs)", runs.Load())
	}
}
